(* benchdiff — the CI perf-regression gate.

   Compares two smod-bench JSON documents (see lib/bench_kit/bench_json.ml)
   row by row and exits non-zero when any per-call mean drifts beyond the
   tolerance, or when nothing could be compared at all.

   Usage: dune exec bin/benchdiff.exe -- bench/baseline.json out.json --tolerance 2% *)

module Json = Smod_util.Json
module Bench_json = Smod_bench_kit.Bench_json

let read_doc path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  try Bench_json.of_string s
  with Json.Parse_error msg ->
    Printf.eprintf "benchdiff: %s: %s\n" path msg;
    exit 2

(* "2%" or "0.02" both mean a 2% relative tolerance. *)
let parse_tolerance s =
  let fail () =
    Printf.eprintf "benchdiff: bad tolerance %S (want e.g. \"2%%\" or \"0.02\")\n" s;
    exit 2
  in
  let v =
    if String.length s > 0 && s.[String.length s - 1] = '%' then
      match float_of_string_opt (String.sub s 0 (String.length s - 1)) with
      | Some p -> p /. 100.0
      | None -> fail ()
    else match float_of_string_opt s with Some v -> v | None -> fail ()
  in
  if v < 0.0 || not (Float.is_finite v) then fail ();
  v

let main baseline_path current_path tolerance abs_eps abs_eps_for =
  let rel_tol = parse_tolerance tolerance in
  let baseline = read_doc baseline_path in
  let current = read_doc current_path in
  let c = Bench_json.compare_docs ~rel_tol ~abs_eps ~abs_eps_for ~baseline ~current () in
  Printf.printf "benchdiff: %s vs %s (tolerance %.4g%%, abs epsilon %g)\n" baseline_path
    current_path (rel_tol *. 100.0) abs_eps;
  List.iter
    (fun (id, eps) -> Printf.printf "  (epsilon override: %s rows judged with %g)\n" id eps)
    abs_eps_for;
  List.iter
    (fun (d : Bench_json.drift) ->
      let delta_pct =
        if d.d_base = 0.0 then Float.abs (d.d_cur -. d.d_base) *. 100.0
        else (d.d_cur -. d.d_base) /. Float.abs d.d_base *. 100.0
      in
      (* Flag the rows judged under a per-experiment epsilon override so a
         reader can tell which tolerance actually applied. *)
      let eps_note = if d.d_abs_eps = abs_eps then "" else Printf.sprintf "  [eps %g]" d.d_abs_eps in
      Printf.printf "  %-4s %-4s %-40s base %12.4f  cur %12.4f  (%+.3f%%)%s\n"
        (if d.d_ok then "ok" else "FAIL")
        d.d_experiment d.d_label d.d_base d.d_cur delta_pct eps_note)
    c.Bench_json.drifts;
  List.iter (fun k -> Printf.printf "  note  only in baseline: %s\n" k) c.Bench_json.missing;
  List.iter (fun k -> Printf.printf "  note  only in current:  %s\n" k) c.Bench_json.extra;
  let failed = List.filter (fun d -> not d.Bench_json.d_ok) c.Bench_json.drifts in
  if c.Bench_json.compared = 0 then begin
    Printf.eprintf "benchdiff: no rows in common between the two documents\n";
    exit 1
  end;
  if failed <> [] then begin
    Printf.printf "benchdiff: %d of %d rows drifted beyond tolerance\n" (List.length failed)
      c.Bench_json.compared;
    exit 1
  end;
  Printf.printf "benchdiff: %d rows compared, all within tolerance\n" c.Bench_json.compared

open Cmdliner

let baseline =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"BASELINE" ~doc:"Baseline bench JSON.")

let current =
  Arg.(required & pos 1 (some file) None & info [] ~docv:"CURRENT" ~doc:"Current bench JSON.")

let tolerance =
  Arg.(
    value
    & opt string "2%"
    & info [ "tolerance" ] ~docv:"TOL"
        ~doc:"Maximum allowed relative drift of any per-row mean: \"2%\" or \"0.02\".")

let abs_eps =
  Arg.(
    value
    & opt float 1e-9
    & info [ "abs-epsilon" ] ~docv:"EPS"
        ~doc:"Additive slack so exact-zero baseline rows don't fail on any change.")

let abs_eps_for =
  Arg.(
    value
    & opt_all (pair ~sep:'=' string float) []
    & info [ "abs-epsilon-for" ] ~docv:"EXP=EPS"
        ~doc:
          "Override the additive epsilon for one experiment id, e.g. \
           $(b,--abs-epsilon-for e18=0.05).  Repeatable; rows judged under an \
           override are flagged in the report.")

let cmd =
  let doc = "Compare two smod-bench JSON documents and gate on drift" in
  Cmd.v (Cmd.info "benchdiff" ~doc)
    Term.(const main $ baseline $ current $ tolerance $ abs_eps $ abs_eps_for)

let () = exit (Cmd.eval cmd)
