(* benchdiff v2 — the CI perf-regression gate.

   Compares two smod-bench JSON documents (any pair of snapshots, by
   path) under per-metric gates: mean rows tighter than p99 rows, with
   thresholds from the checked-in bench/gates.json (--gates), overridable
   per run with flags.  Baseline rows absent from the current document
   are reported as "skip" and counted — never a silent pass.

   Also the trajectory viewer: --trajectory DIR reads every dated
   snapshot under DIR and renders the headline-metric history table.

   Usage:
     dune exec bin/benchdiff.exe -- bench/baseline.json out.json --gates bench/gates.json
     dune exec bin/benchdiff.exe -- --trajectory bench/baselines

   Exit codes: 0 gate passed / trajectory rendered; 1 regression or
   nothing compared; 2 usage or parse error. *)

module Json = Smod_util.Json
module Bench_json = Smod_bench_kit.Bench_json
module Diff = Smod_bench_kit.Diff
module Trajectory = Smod_bench_kit.Trajectory

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let read_doc path =
  try Bench_json.of_string (read_file path)
  with
  | Json.Parse_error msg ->
      Printf.eprintf "benchdiff: %s: %s\n" path msg;
      exit 2
  | Sys_error msg ->
      Printf.eprintf "benchdiff: %s\n" msg;
      exit 2

(* "2%" or "0.02" both mean a 2% relative tolerance. *)
let parse_tolerance s =
  let fail () =
    Printf.eprintf "benchdiff: bad tolerance %S (want e.g. \"2%%\" or \"0.02\")\n" s;
    exit 2
  in
  let v =
    if String.length s > 0 && s.[String.length s - 1] = '%' then
      match float_of_string_opt (String.sub s 0 (String.length s - 1)) with
      | Some p -> p /. 100.0
      | None -> fail ()
    else match float_of_string_opt s with Some v -> v | None -> fail ()
  in
  if v < 0.0 || not (Float.is_finite v) then fail ();
  v

(* Threshold precedence: built-in defaults < --gates file < explicit
   flags, so CI pins bench/gates.json and a developer can still poke at
   one knob without editing it. *)
let resolve_gates gates_path mean_tol p99_tol abs_eps abs_eps_for =
  let g =
    match gates_path with
    | None -> Diff.default_gates
    | Some path -> (
        try Diff.gates_of_string (read_file path)
        with
        | Json.Parse_error msg ->
            Printf.eprintf "benchdiff: %s: %s\n" path msg;
            exit 2
        | Sys_error msg ->
            Printf.eprintf "benchdiff: %s\n" msg;
            exit 2)
  in
  let g =
    match mean_tol with
    | Some t -> { g with Diff.g_mean_rel = parse_tolerance t }
    | None -> g
  in
  let g =
    match p99_tol with Some t -> { g with Diff.g_p99_rel = parse_tolerance t } | None -> g
  in
  let g = match abs_eps with Some e -> { g with Diff.g_abs_eps = e } | None -> g in
  let g =
    match abs_eps_for with
    | [] -> g
    | overrides ->
        (* Flag overrides shadow same-id file entries. *)
        let keep =
          List.filter (fun (id, _) -> not (List.mem_assoc id overrides)) g.Diff.g_abs_eps_for
        in
        { g with Diff.g_abs_eps_for = keep @ overrides }
  in
  if g.Diff.g_mean_rel > g.Diff.g_p99_rel then begin
    Printf.eprintf
      "benchdiff: mean tolerance (%g) must not exceed p99 tolerance (%g) — means are gated \
       tighter\n"
      g.Diff.g_mean_rel g.Diff.g_p99_rel;
    exit 2
  end;
  g

let run_trajectory dir =
  let files =
    match Sys.readdir dir with
    | entries ->
        Array.to_list entries
        |> List.filter (fun f -> Filename.check_suffix f ".json")
        |> List.sort compare
    | exception Sys_error msg ->
        Printf.eprintf "benchdiff: %s\n" msg;
        exit 2
  in
  if files = [] then begin
    Printf.eprintf "benchdiff: no snapshots (*.json) under %s\n" dir;
    exit 1
  end;
  let entries =
    List.map
      (fun f -> Trajectory.entry_of_doc ~snapshot:f (read_doc (Filename.concat dir f)))
      files
  in
  Printf.printf "perf trajectory: %d snapshot(s) under %s\n\n%s" (List.length entries) dir
    (Trajectory.render entries)

let run_compare baseline_path current_path gates =
  let baseline = read_doc baseline_path in
  let current = read_doc current_path in
  let r = Diff.compare_docs ~gates ~baseline ~current () in
  Printf.printf "benchdiff: %s vs %s (mean %.4g%%, p99 %.4g%%, abs epsilon %g)\n" baseline_path
    current_path
    (gates.Diff.g_mean_rel *. 100.0)
    (gates.Diff.g_p99_rel *. 100.0)
    gates.Diff.g_abs_eps;
  List.iter
    (fun (id, eps) -> Printf.printf "  (epsilon override: %s rows judged with %g)\n" id eps)
    gates.Diff.g_abs_eps_for;
  List.iter
    (fun (id, (m, p)) ->
      Printf.printf "  (tolerance override: %s rows judged at mean %.4g%%, p99 %.4g%%)\n" id
        (m *. 100.0) (p *. 100.0))
    gates.Diff.g_rel_for;
  print_string (Diff.render ~gates r);
  if r.Diff.compared = 0 then begin
    Printf.eprintf "benchdiff: no rows in common between the two documents\n";
    exit 1
  end;
  if r.Diff.failed > 0 then exit 1

let main trajectory baseline_path current_path gates_path mean_tol p99_tol abs_eps abs_eps_for
    =
  match (trajectory, baseline_path, current_path) with
  | Some dir, None, None -> run_trajectory dir
  | Some _, _, _ ->
      Printf.eprintf "benchdiff: --trajectory takes no BASELINE/CURRENT positionals\n";
      exit 2
  | None, Some b, Some c ->
      run_compare b c (resolve_gates gates_path mean_tol p99_tol abs_eps abs_eps_for)
  | None, _, _ ->
      Printf.eprintf
        "benchdiff: need BASELINE and CURRENT paths (or --trajectory DIR); see --help\n";
      exit 2

open Cmdliner

let baseline =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"BASELINE" ~doc:"Baseline bench JSON.")

let current =
  Arg.(value & pos 1 (some file) None & info [] ~docv:"CURRENT" ~doc:"Current bench JSON.")

let trajectory =
  Arg.(
    value
    & opt (some dir) None
    & info [ "trajectory" ] ~docv:"DIR"
        ~doc:
          "Render the headline-metric history across every dated snapshot (*.json) under \
           $(docv) instead of comparing two documents.")

let gates =
  Arg.(
    value
    & opt (some file) None
    & info [ "gates" ] ~docv:"PATH"
        ~doc:
          "Per-metric thresholds from a smod-bench-gates JSON file (the checked-in \
           $(b,bench/gates.json)).  Explicit tolerance flags override its values.")

let mean_tolerance =
  Arg.(
    value
    & opt (some string) None
    & info [ "mean-tolerance"; "tolerance" ] ~docv:"TOL"
        ~doc:
          "Maximum relative drift of any mean row: \"2%\" or \"0.02\".  Defaults to the \
           gates file, else 2%.")

let p99_tolerance =
  Arg.(
    value
    & opt (some string) None
    & info [ "p99-tolerance" ] ~docv:"TOL"
        ~doc:
          "Looser maximum relative drift for p99 rows (labels containing \"p99\").  \
           Defaults to the gates file, else 5%.")

let abs_eps =
  Arg.(
    value
    & opt (some float) None
    & info [ "abs-epsilon" ] ~docv:"EPS"
        ~doc:"Additive slack so exact-zero baseline rows don't fail on any change.")

let abs_eps_for =
  Arg.(
    value
    & opt_all (pair ~sep:'=' string float) []
    & info [ "abs-epsilon-for" ] ~docv:"EXP=EPS"
        ~doc:
          "Override the additive epsilon for one experiment id, e.g. \
           $(b,--abs-epsilon-for e18=0.05).  Repeatable; rows judged under an \
           override are flagged in the report.")

let cmd =
  let doc = "Compare smod-bench snapshots under per-metric gates, or render the trajectory" in
  Cmd.v (Cmd.info "benchdiff" ~doc)
    Term.(
      const main $ trajectory $ baseline $ current $ gates $ mean_tolerance $ p99_tolerance
      $ abs_eps $ abs_eps_for)

let () = exit (Cmd.eval cmd)
