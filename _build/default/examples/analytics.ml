(* A multi-function proprietary library: integer statistics over an array
   living in CLIENT memory.

   This exercises the deepest tool-chain path in the reproduction:
   - `Toolchain.assemble_module` assembles several functions whose
     cross-function `call`s become Abs32 relocations;
   - the image is AES-encrypted with the relocation sites left plaintext
     (paper section 4.1 — "still linkable using existing tools");
   - at session setup the kernel decrypts, links (patches every call with
     the address where it mapped the module) and maps the text into the
     handle;
   - the functions then walk an array the client wrote into its own heap,
     through the force-shared pages.

   Run: dune exec examples/analytics.exe *)

module Machine = Smod_kern.Machine
module Proc = Smod_kern.Proc
module Aspace = Smod_vmem.Aspace
open Secmodule

(* Callee convention: helpers take inputs from the operand stack and leave
   one result; locals are a shared register file, so each function uses a
   distinct range (helpers 0-5, none needed by entries). *)
let sq = "dup\nmul\nret\n"

let sum_range =
  (* stack in: [addr; n]  out: [sum of n words at addr] *)
  "localset 2\nlocalset 1\npush 0\nlocalset 0\n\
   loop:\nlocalget 2\njz done\n\
   localget 1\nloadw\nlocalget 0\nadd\nlocalset 0\n\
   localget 1\npush 4\nadd\nlocalset 1\n\
   localget 2\npush 1\nsub\nlocalset 2\njmp loop\n\
   done:\nlocalget 0\nret\n"

let sum_sq_range =
  "localset 5\nlocalset 4\npush 0\nlocalset 3\n\
   loop:\nlocalget 5\njz done\n\
   localget 4\nloadw\ncall sq\nlocalget 3\nadd\nlocalset 3\n\
   localget 4\npush 4\nadd\nlocalset 4\n\
   localget 5\npush 1\nsub\nlocalset 5\njmp loop\n\
   done:\nlocalget 3\nret\n"

(* Entries: (addr, n) arrive on the shared stack as client arguments. *)
let sum = "loadarg 0\nloadarg 1\ncall sum_range\nret\n"
let mean = "loadarg 0\nloadarg 1\ncall sum_range\nloadarg 1\ndivu\nret\n"

(* n^2 * variance = n * sum(x^2) - (sum x)^2, kept integral *)
let var_num =
  "loadarg 0\nloadarg 1\ncall sum_sq_range\nloadarg 1\nmul\n\
   loadarg 0\nloadarg 1\ncall sum_range\ndup\nmul\nsub\nret\n"

let () =
  let machine = Machine.create () in
  let smod = Smod.install machine () in
  let image =
    Toolchain.assemble_module ~name:"analytics" ~version:1
      [
        ("sq", sq);
        ("sum_range", sum_range);
        ("sum_sq_range", sum_sq_range);
        ("sum", sum);
        ("mean", mean);
        ("var_num", var_num);
      ]
  in
  Printf.printf "module: %d functions, %d cross-function relocations, %d text bytes\n"
    (List.length (Smod_modfmt.Smof.function_symbols image))
    (List.length image.Smod_modfmt.Smof.relocs)
    (Bytes.length image.Smod_modfmt.Smof.text);
  ignore (Toolchain.package smod ~image ~protection:Registry.Encrypted ());
  let data = [| 4; 8; 15; 16; 23; 42 |] in
  ignore
    (Machine.spawn machine ~name:"analyst" (fun p ->
         Crt0.run_client smod p ~module_name:"analytics" ~version:1
           ~credential:(Credential.make ~principal:"analyst" ())
           (fun conn ->
             (* The data set lives on the CLIENT heap. *)
             let base = Aspace.heap_base p.Proc.aspace in
             Aspace.obreak p.Proc.aspace (base + 4096);
             Array.iteri
               (fun i v -> Aspace.write_word p.Proc.aspace ~addr:(base + (4 * i)) v)
               data;
             let n = Array.length data in
             let s = Stub.call conn ~func:"sum" [| base; n |] in
             let m = Stub.call conn ~func:"mean" [| base; n |] in
             let v = Stub.call conn ~func:"var_num" [| base; n |] in
             let expect_sum = Array.fold_left ( + ) 0 data in
             let expect_var_num =
               (n * Array.fold_left (fun a x -> a + (x * x)) 0 data) - (expect_sum * expect_sum)
             in
             Printf.printf "sum      = %5d (expected %d)\n" s expect_sum;
             Printf.printf "mean     = %5d (expected %d)\n" m (expect_sum / n);
             Printf.printf "n^2*var  = %5d (expected %d)\n" v expect_var_num;
             (* Show the linker's work: the handle's mapped text has the
                call operands patched to absolute addresses. *)
             let session = Option.get (Smod.session_of_client smod ~client_pid:p.Proc.pid) in
             let handle_as = Smod.handle_aspace smod session in
             let sym = Option.get (Smod_modfmt.Smof.find_symbol image "mean") in
             let mapped =
               Aspace.read_bytes handle_as
                 ~addr:(session.Smod.module_text_base + sym.Smod_modfmt.Smof.sym_offset)
                 ~len:sym.Smod_modfmt.Smof.sym_size
             in
             Printf.printf "\nmean() as linked into the handle (note the patched call):\n%s"
               (Format.asprintf "%a" Smod_svm.Asm.pp_listing mapped))));
  Machine.run machine
