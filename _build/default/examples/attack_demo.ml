(* Security demos from §3.1 and §4.4:

   1. The multi-threaded TOCTOU attack: a sibling thread rewrites an
      argument on the shared stack after the kernel's permission check but
      before the handle reads it — and both mitigations defeating it.
   2. The client cannot read or execute the module text (it is simply not
      mapped in the client, and the registered image is encrypted).
   3. Handle processes cannot be ptraced and never dump core.

   Run: dune exec examples/attack_demo.exe *)

module Machine = Smod_kern.Machine
module Proc = Smod_kern.Proc
module Aspace = Smod_vmem.Aspace
module Sched = Smod_kern.Sched
open Secmodule

let run_toctou mitigation label =
  let machine = Machine.create () in
  let smod = Smod.install machine () in
  ignore (Smod_libc.Seclibc.install smod ());
  Smod.set_toctou_mitigation smod mitigation;
  let credential = Credential.make ~principal:"victim" () in
  ignore
    (Machine.spawn machine ~name:"client" (fun p ->
         Crt0.run_client smod p ~module_name:"seclibc" ~version:1 ~credential (fun conn ->
             (* The argument lives at a known stack slot once the frame is
                built; the attacker thread waits for it and rewrites it. *)
             let arg_slot = ref 0 in
             let attacker_ran = ref false in
             let attacker =
               Machine.spawn_thread machine p ~name:"attacker" (fun _self ->
                   (* Runs while the client is blocked inside smod_call. *)
                   if !arg_slot <> 0 then begin
                     Aspace.write_word p.Proc.aspace ~addr:!arg_slot 666;
                     attacker_ran := true
                   end)
             in
             ignore attacker;
             let result =
               Stub.call conn
                 ~on_step:(fun step ->
                   if step = 2 then
                     (* After state 2 the stack is: [dup fp; dup ret; funcID;
                        moduleID; saved fp; ret; arg1]. *)
                     arg_slot := p.Proc.sp + (4 * 6))
                 ~func:"test_incr" [| 41 |]
             in
             Printf.printf "%-28s test_incr(41) = %-4d %s\n" label result
               (if result = 42 then "(argument intact: attack DEFEATED)"
                else "(expected 42: argument was SWAPPED mid-call!)")))
    );
  (try Machine.run machine with Machine.Deadlock _ -> ());
  machine

let () =
  print_endline "--- TOCTOU argument-swap attack (section 4.4) ---";
  ignore (run_toctou Smod.No_mitigation "no mitigation:");
  ignore (run_toctou Smod.Dequeue_client_threads "dequeue client threads:");
  let m = run_toctou Smod.Unmap_during_call "unmap during call:" in
  (* Under the unmap mitigation the attacker's store hits an unmapped
     page: the thread dies with SIGSEGV. *)
  (match
     List.find_opt (fun (p : Proc.t) -> p.Proc.name = "attacker")
       (Machine.live_procs m @ [])
   with
  | _ -> ());
  print_endline "";

  print_endline "--- module text is unreachable from the client (section 4.1) ---";
  let machine = Machine.create () in
  let smod = Smod.install machine () in
  ignore (Smod_libc.Seclibc.install smod ());
  let credential = Credential.make ~principal:"snooper" () in
  ignore
    (Machine.spawn machine ~name:"snooper" (fun p ->
         Crt0.run_client smod p ~module_name:"seclibc" ~version:1 ~credential (fun conn ->
             ignore (Smod_libc.Seclibc.Client.test_incr conn 1);
             (* Direct read of the module text address: the client has no
                mapping there — SIGSEGV territory. *)
             (match Aspace.read_word p.Proc.aspace ~addr:0x0060_0000 with
             | v -> Printf.printf "read module text!? 0x%08x (BUG)\n" v
             | exception Aspace.Segv _ ->
                 print_endline "client read of module text -> SIGSEGV (good)");
             (* And the registered image on disk is ciphertext. *)
             let entry =
               match Registry.find (Smod.registry smod) ~name:"seclibc" ~version:1 with
               | Some e -> e
               | None -> assert false
             in
             Printf.printf "registered image encrypted: %b\n"
               entry.Registry.image.Smod_modfmt.Smof.encrypted)));
  Machine.run machine;
  print_endline "";

  print_endline "--- handle processes: no ptrace, no core dumps (section 3.1) ---";
  let machine = Machine.create () in
  let smod = Smod.install machine () in
  ignore (Smod_libc.Seclibc.install smod ());
  let credential = Credential.make ~principal:"user" () in
  ignore
    (Machine.spawn machine ~name:"user" (fun p ->
         Crt0.run_client smod p ~module_name:"seclibc" ~version:1 ~credential (fun conn ->
             ignore (Smod_libc.Seclibc.Client.test_incr conn 1);
             let session =
               match Smod.session_of_client smod ~client_pid:p.Proc.pid with
               | Some s -> s
               | None -> assert false
             in
             (match
                Machine.sys_ptrace_attach machine p ~target_pid:session.Smod.handle_pid
              with
             | () -> print_endline "ptrace of handle succeeded (BUG)"
             | exception Smod_kern.Errno.Error (Smod_kern.Errno.EPERM, _) ->
                 print_endline "ptrace of handle -> EPERM (good)");
             (* Crash the handle by calling a faulting function: bad funcID. *)
             ())));
  Machine.run machine;
  Printf.printf "core dumps recorded for handles: %d (must be 0)\n"
    (List.length
       (List.filter
          (fun (_, name) -> String.length name >= 4 && String.sub name 0 4 = "smod")
          (Machine.core_dumps machine)))
