(* The paper's central demo: libc behind SecModule.

   Reproduces, as observable output:
   - Figure 1: the 8-step initialization sequence (traced);
   - Figure 2: the address-space layout of client and handle after the
     handshake (shared data/heap/stack, private text, secret segment);
   - Figure 3: the stack choreography of one call, word by word.

   Run: dune exec examples/secure_libc.exe *)

module Machine = Smod_kern.Machine
module Proc = Smod_kern.Proc
module Aspace = Smod_vmem.Aspace
module Layout = Smod_vmem.Layout
open Secmodule

let section title = Printf.printf "\n===== %s =====\n" title

let () =
  let machine = Machine.create () in
  let smod = Smod.install machine () in
  ignore (Smod_libc.Seclibc.install smod ());
  let credential = Credential.make ~principal:"demo" () in
  ignore
    (Machine.spawn machine ~name:"client" (fun p ->
         section "Figure 1: initialization sequence (see trace below)";
         let conn =
           Stub.connect smod p ~module_name:"seclibc" ~version:1 ~credential
         in
         let session =
           match Smod.session_of_client smod ~client_pid:p.Proc.pid with
           | Some s -> s
           | None -> assert false
         in

         (* First call: malloc through the handle (Figure 1 steps 5-8). *)
         let ptr = Smod_libc.Seclibc.Client.malloc conn 64 in
         Printf.printf "malloc(64) through the handle -> 0x%08x (on the CLIENT heap)\n" ptr;
         Aspace.write_string p.Proc.aspace ~addr:ptr "written by the client directly";
         Printf.printf "strlen through the handle    -> %d\n"
           (Smod_libc.Seclibc.Client.strlen conn ptr);

         section "Figure 2: address-space layout after the handshake";
         Printf.printf "client:\n%s\n"
           (Format.asprintf "%a" Aspace.pp_layout p.Proc.aspace);
         Printf.printf "handle:\n%s\n"
           (Format.asprintf "%a" Aspace.pp_layout (Smod.handle_aspace smod session));
         Printf.printf "shared range: [0x%08x, 0x%08x)\n" Layout.share_lo Layout.share_hi;
         Printf.printf "heap page 0x%08x shared with handle: %b (same frame: %s)\n" ptr
           (Aspace.is_shared_with_peer p.Proc.aspace ptr)
           (match
              ( Aspace.frame_id p.Proc.aspace ptr,
                Aspace.frame_id (Smod.handle_aspace smod session) ptr )
            with
           | Some a, Some b -> Printf.sprintf "client frame %d / handle frame %d" a b
           | _ -> "n/a");

         section "Figure 3: stack choreography of one SMOD call";
         let dump_stack label =
           let sp = p.Proc.sp in
           Printf.printf "%-28s sp=0x%08x:" label sp;
           for i = 0 to 6 do
             Printf.printf " %08x" (Aspace.read_word p.Proc.aspace ~addr:(sp + (4 * i)))
           done;
           print_newline ()
         in
         let result =
           Stub.call conn
             ~on_step:(fun step ->
               match step with
               | 1 -> dump_stack "state 1 (frame built)"
               | 2 -> dump_stack "state 2 (kernel view)"
               | 4 -> dump_stack "state 4 (frame restored)"
               | _ -> ())
             ~func:"test_incr" [| 41 |]
         in
         Printf.printf "test_incr(41) = %d\n" result;
         Stub.close conn));
  Machine.run machine;
  section "Trace (Figure 1 events)";
  Format.printf "%a@." Smod_sim.Trace.pp (Machine.trace machine)
