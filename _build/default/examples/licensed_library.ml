(* The paper's first motivating scenario (§1): a library that "represents
   a significant investment of time, effort and capital" whose vendor
   wants to control who may invoke it.

   The vendor signs KeyNote credentials for paying customers.  The host
   policy trusts the vendor; the vendor delegates to "alice".  "mallory"
   presents no valid delegation and is refused at session establishment;
   a forged credential fails signature verification.

   Run: dune exec examples/licensed_library.exe *)

module Machine = Smod_kern.Machine
module Smof = Smod_modfmt.Smof
module Keystore = Smod_keynote.Keystore
module Parse = Smod_keynote.Parse
open Secmodule

let () =
  let machine = Machine.create () in
  let keystore = Keystore.create () in
  Keystore.add_principal keystore ~name:"acme-vendor" ~secret:"vendor-signing-key";
  let smod = Smod.install machine ~keystore () in

  (* The licensed library: a "premium" cube routine. *)
  let builder = Smof.Builder.create ~name:"premium-math" ~version:3 in
  ignore
    (Smof.Builder.add_function builder ~name:"cube"
       ~code:(Smod_svm.Asm.assemble "loadarg 0\ndup\ndup\nmul\nmul\nret\n")
       ());
  let image = Smof.Builder.finish builder in

  (* Host policy: POLICY trusts acme-vendor for this module. *)
  let policy_assertion =
    Parse.assertion_of_string
      "keynote-version: 2\n\
       authorizer: \"POLICY\"\n\
       licensees: \"acme-vendor\"\n\
       conditions: module == \"premium-math\" -> \"allow\";\n"
  in
  let policy =
    Policy.Keynote
      {
        policy = [ policy_assertion ];
        levels = [| "deny"; "allow" |];
        min_level = "allow";
        attrs = [];
      }
  in
  ignore (Toolchain.package smod ~image ~protection:Registry.Encrypted ~policy ());

  (* The vendor issues alice a signed delegation. *)
  let license_for customer =
    Keystore.sign keystore
      (Parse.assertion_of_string
         (Printf.sprintf
            "keynote-version: 2\n\
             comment: paid license 2006-07\n\
             authorizer: \"acme-vendor\"\n\
             licensees: \"%s\"\n\
             conditions: module == \"premium-math\" -> \"allow\";\n"
            customer))
  in
  let alice_cred =
    Credential.make ~principal:"alice" ~assertions:[ license_for "alice" ] ()
  in
  (* Mallory forges a license: the body names mallory but the signature is
     alice's, so verification fails. *)
  let forged =
    let a = license_for "alice" in
    { a with Smod_keynote.Ast.licensees = Smod_keynote.Ast.L_principal "mallory" }
  in
  let mallory_cred = Credential.make ~principal:"mallory" ~assertions:[ forged ] () in
  let freeloader_cred = Credential.make ~principal:"freeloader" () in

  let try_customer name credential =
    ignore
      (Machine.spawn machine ~name (fun p ->
           match
             Crt0.run_client smod p ~module_name:"premium-math" ~version:3 ~credential
               (fun conn -> Stub.call conn ~func:"cube" [| 7 |])
           with
           | v -> Printf.printf "%-10s cube(7) = %d  (access granted)\n" name v
           | exception Smod_kern.Errno.Error (e, ctx) ->
               Printf.printf "%-10s refused: %s (%s)\n" name
                 (Smod_kern.Errno.to_string e) ctx))
  in
  try_customer "alice" alice_cred;
  try_customer "mallory" mallory_cred;
  try_customer "freeloader" freeloader_cred;
  Machine.run machine
