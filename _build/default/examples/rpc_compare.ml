(* Side-by-side: the same one-integer function served three ways —
   native syscall, SecModule handle, local RPC — on one machine.
   A miniature of the paper's Figure 8 run.

   Run: dune exec examples/rpc_compare.exe *)

module Machine = Smod_kern.Machine
open Smod_bench_kit

let () =
  let world = World.create () in
  let clock = Machine.clock world.World.machine in
  World.spawn_seclibc_client world ~name:"compare" (fun p conn ->
      let rpc = World.rpc_client world p ~client_port:45000 in
      let time label f =
        (* warmup, then measure *)
        for _ = 1 to 50 do
          f ()
        done;
        let n = 2000 in
        let t0 = Smod_sim.Clock.now_cycles clock in
        for _ = 1 to n do
          f ()
        done;
        Printf.printf "  %-18s %8.3f us/call\n" label
          (Smod_sim.Clock.elapsed_us clock ~since:t0 /. float_of_int n)
      in
      print_endline "cost of f(x) = x + 1, three ways:";
      time "native syscall" (fun () -> ignore (Machine.sys_getpid world.World.machine p));
      time "SecModule handle" (fun () ->
          ignore (Smod_libc.Seclibc.Client.test_incr conn 1));
      time "local RPC" (fun () -> ignore (Smod_rpc.Testincr.incr rpc 1)));
  World.run world;
  print_endline
    "\nthe paper's claim (section 4.5): a SecModule dispatch is ~10x a bare\n\
     syscall but ~10x cheaper than the same function behind local RPC."
