examples/attack_demo.ml: Credential Crt0 List Printf Registry Secmodule Smod Smod_kern Smod_libc Smod_modfmt Smod_vmem String Stub
