examples/analytics.ml: Array Bytes Credential Crt0 Format List Option Printf Registry Secmodule Smod Smod_kern Smod_modfmt Smod_svm Smod_vmem Stub Toolchain
