examples/licensed_library.ml: Credential Crt0 Policy Printf Registry Secmodule Smod Smod_kern Smod_keynote Smod_modfmt Smod_svm Stub Toolchain
