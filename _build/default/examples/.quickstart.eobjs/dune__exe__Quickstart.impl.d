examples/quickstart.ml: Bytes Credential Crt0 List Policy Printf Registry Secmodule Smod Smod_kern Smod_modfmt Smod_sim Smod_svm Stub Toolchain
