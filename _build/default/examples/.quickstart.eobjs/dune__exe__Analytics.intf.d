examples/analytics.mli:
