examples/rpc_compare.ml: Printf Smod_bench_kit Smod_kern Smod_libc Smod_rpc Smod_sim World
