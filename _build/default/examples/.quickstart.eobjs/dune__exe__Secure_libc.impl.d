examples/secure_libc.ml: Credential Format Printf Secmodule Smod Smod_kern Smod_libc Smod_sim Smod_vmem Stub
