examples/quickstart.mli:
