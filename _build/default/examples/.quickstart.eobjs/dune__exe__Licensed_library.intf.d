examples/licensed_library.mli:
