examples/systrace_compare.ml: Bytes List Printf Smod_kern Smod_sim Smod_systrace Smod_vmem
