examples/resource_quota.mli:
