examples/secure_libc.mli:
