examples/systrace_compare.mli:
