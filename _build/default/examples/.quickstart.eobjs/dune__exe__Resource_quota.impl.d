examples/resource_quota.ml: Credential Crt0 Option Policy Printf Secmodule Smod Smod_kern Smod_modfmt Smod_sim Smod_svm Stub Toolchain
