examples/rpc_compare.mli:
