(* Quickstart: protect a library with SecModule in ~40 lines.

   1. Write a function (module-VM assembly), pack it into a SMOF image.
   2. Register it with the kernel, AES-encrypted, behind a policy.
   3. A client opens a session with its credential and calls the function
      through the secure handle.

   Run: dune exec examples/quickstart.exe *)

module Machine = Smod_kern.Machine
module Smof = Smod_modfmt.Smof
open Secmodule

let () =
  (* A simulated machine with the SecModule kernel extension. *)
  let machine = Machine.create () in
  let smod = Smod.install machine () in

  (* A tiny proprietary library: double(x) = x * 2. *)
  let builder = Smof.Builder.create ~name:"mathlib" ~version:1 in
  let code = Smod_svm.Asm.assemble "loadarg 0\npush 2\nmul\nret\n" in
  ignore (Smof.Builder.add_function builder ~name:"double" ~code ());
  let image = Smof.Builder.finish builder in

  (* The trusted tool chain encrypts the text (relocation sites preserved)
     and registers it; the AES key never leaves the kernel. *)
  let entry =
    Toolchain.package smod ~image ~protection:Registry.Encrypted
      ~policy:Policy.Session_lifetime ()
  in
  Printf.printf "registered %s v%d as m_id=%d (%d function[s], %d text bytes)\n"
    image.Smof.mod_name image.Smof.mod_version entry.Registry.m_id
    (List.length (Smof.function_symbols image))
    (Bytes.length image.Smof.text);

  (* A client process: open a session and call through the handle. *)
  let credential = Credential.make ~principal:"quickstart-user" () in
  ignore
    (Machine.spawn machine ~name:"client" (fun p ->
         Crt0.run_client smod p ~module_name:"mathlib" ~version:1 ~credential (fun conn ->
             List.iter
               (fun x ->
                 Printf.printf "double(%d) = %d\n" x (Stub.call conn ~func:"double" [| x |]))
               [ 1; 21; 1000 ])));
  Machine.run machine;
  Printf.printf "simulated time elapsed: %.1f us, context switches: %d\n"
    (Smod_sim.Clock.now_us (Machine.clock machine))
    (Machine.context_switches machine)
