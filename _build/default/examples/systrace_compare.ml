(* SecModule vs Systrace — the paper's section 2 argument, executable.

   Three demonstrations:
   1. VERBOSITY: one logical library operation explodes into a stream of
      syscall events under a syscall-level monitor, while SecModule sees
      one semantically-named decision.
   2. MID-SEQUENCE HAZARD: "it may introduce subtle problems if the
      sequence of system calls used for implementing a higher level
      functionality is inadvertently interrupted in the middle by a
      misconfigured system call policy — resulting in the library code
      being in an inconsistent state."  SecModule decides once, before
      the operation starts.
   3. OVERHEAD: what the per-trap rule scan costs a busy process.

   Run: dune exec examples/systrace_compare.exe *)

module Machine = Smod_kern.Machine
module Proc = Smod_kern.Proc
module Aspace = Smod_vmem.Aspace
module Sysno = Smod_kern.Sysno
module Errno = Smod_kern.Errno
module Systrace = Smod_systrace.Systrace

let section title = Printf.printf "\n===== %s =====\n" title

(* One "logical operation" in the traditional model: grab the heap,
   exchange a message with a sibling queue, check identity — the kind of
   multi-syscall dance any library routine performs internally. *)
let logical_operation machine (p : Proc.t) =
  let base = Aspace.heap_base p.Proc.aspace in
  Machine.sys_obreak machine p (base + 4096);
  ignore (Machine.sys_getpid machine p);
  let q = Machine.syscall machine p Sysno.msgget [| 0x77 |] in
  Aspace.write_bytes p.Proc.aspace ~addr:base (Bytes.make 8 'x');
  for _ = 1 to 3 do
    ignore (Machine.syscall machine p Sysno.msgsnd [| q; 1; base; 8 |]);
    ignore (Machine.syscall machine p Sysno.msgrcv [| q; 1; base; 8 |])
  done

let demo_verbosity () =
  section "1. verbosity: syscall events per logical operation";
  let machine = Machine.create () in
  let tracer = Systrace.install machine in
  let permissive = Systrace.parse_policy "policy: permissive\ndefault: permit\n" in
  ignore
    (Machine.spawn machine ~name:"app" (fun p ->
         Systrace.attach tracer ~pid:p.Proc.pid permissive;
         logical_operation machine p));
  Machine.run machine;
  Printf.printf "systrace view: %d syscall events for ONE logical operation:\n"
    (Systrace.audit_count tracer);
  List.iter
    (fun (e : Systrace.event) -> Printf.printf "  native-%s(...)  -> permit\n" e.Systrace.ev_sysname)
    (Systrace.audit tracer);
  print_endline
    "secmodule view of the same thing: 1 decision — (module, function,\n\
     principal, calls_so_far) against the module's policy, before dispatch."

let demo_mid_sequence_hazard () =
  section "2. the mid-sequence interruption hazard";
  let machine = Machine.create () in
  let tracer = Systrace.install machine in
  (* A "misconfigured" policy: the second heap extension trips the limit. *)
  let policy =
    Systrace.parse_policy
      (Printf.sprintf
         "policy: misconfigured\n\
          native-obreak: arg0 <= %d then permit\n\
          native-obreak: deny ENOMEM\n\
          default: permit\n"
         (Smod_vmem.Layout.data_base + (16 * 4096) + 4096))
  in
  ignore
    (Machine.spawn machine ~name:"victim" (fun p ->
         Systrace.attach tracer ~pid:p.Proc.pid policy;
         let base = Aspace.heap_base p.Proc.aspace in
         (* a two-step library operation with a journal *)
         Machine.sys_obreak machine p (base + 2048);
         Aspace.write_string p.Proc.aspace ~addr:base "journal: IN-PROGRESS";
         match Machine.sys_obreak machine p (base + 8192) with
         | () -> Aspace.write_string p.Proc.aspace ~addr:base "journal: COMMITTED"
         | exception Errno.Error (Errno.ENOMEM, _) ->
             Printf.printf "  second obreak denied MID-OPERATION;\n  journal now reads: %S\n"
               (Aspace.read_string p.Proc.aspace ~addr:base ~max_len:64)));
  Machine.run machine;
  print_endline
    "  -> the library's invariant (journal either absent or COMMITTED) is\n\
    \     broken: exactly the section-2 hazard. SecModule's policy check\n\
    \     runs once per call, before any module code executes, so a denial\n\
    \     can never split an operation."

let demo_overhead () =
  section "3. per-trap overhead of the rule scan";
  let time_getpids attach =
    let machine = Machine.create ~jitter:0.0 () in
    let tracer = Systrace.install machine in
    let cost = ref 0.0 in
    ignore
      (Machine.spawn machine ~name:"app" (fun p ->
           if attach then
             Systrace.attach tracer ~pid:p.Proc.pid
               (Systrace.parse_policy
                  "policy: p\n\
                   native-msgsnd: permit\n\
                   native-msgrcv: permit\n\
                   native-obreak: permit\n\
                   native-getpid: permit\n\
                   default: deny\n");
           let clock = Machine.clock machine in
           let t0 = Smod_sim.Clock.now_cycles clock in
           for _ = 1 to 1000 do
             ignore (Machine.sys_getpid machine p)
           done;
           cost := Smod_sim.Clock.elapsed_us clock ~since:t0 /. 1000.0));
    Machine.run machine;
    !cost
  in
  let bare = time_getpids false and traced = time_getpids true in
  Printf.printf "getpid: %.3f us/call bare, %.3f us/call under systrace (+%.0f%%)\n" bare traced
    ((traced -. bare) /. bare *. 100.0)

let () =
  demo_verbosity ();
  demo_mid_sequence_hazard ();
  demo_overhead ()
