(* The paper's second motivating scenario (§1): code that "represents a
   significant drain of computational resources", where the administrator
   wants to keep the host from being flat-lined by over-use — with
   criteria finer than carte-blanche root access.

   A CPU-hungry summation routine is registered under a call quota and a
   rate limit; the example shows the quota running out mid-session and the
   per-call cost of checking it.

   Run: dune exec examples/resource_quota.exe *)

module Machine = Smod_kern.Machine
module Smof = Smod_modfmt.Smof
open Secmodule

(* sum_to_n: an O(n) module-VM loop — each call really burns simulated
   CPU in proportion to its argument. *)
let sum_source =
  "push 0\n\
   localset 0\n\
   loadarg 0\n\
   localset 1\n\
   loop:\n\
   localget 1\n\
   jz done\n\
   localget 0\n\
   localget 1\n\
   add\n\
   localset 0\n\
   localget 1\n\
   push 1\n\
   sub\n\
   localset 1\n\
   jmp loop\n\
   done:\n\
   localget 0\n\
   ret\n"

let () =
  let machine = Machine.create () in
  let smod = Smod.install machine () in
  let builder = Smof.Builder.create ~name:"numerics" ~version:1 in
  ignore
    (Smof.Builder.add_function builder ~name:"sum_to_n"
       ~code:(Smod_svm.Asm.assemble sum_source)
       ());
  let image = Smof.Builder.finish builder in
  ignore
    (Toolchain.package smod ~image
       ~policy:(Policy.All_of [ Policy.Call_quota 3; Policy.Session_lifetime ])
       ());
  let credential = Credential.make ~principal:"batch-user" () in
  ignore
    (Machine.spawn machine ~name:"batch-user" (fun p ->
         Crt0.run_client smod p ~module_name:"numerics" ~version:1 ~credential (fun conn ->
             let clock = Machine.clock machine in
             for i = 1 to 5 do
               let n = i * 1000 in
               let t0 = Smod_sim.Clock.now_cycles clock in
               match Stub.call conn ~func:"sum_to_n" [| n |] with
               | v ->
                   Printf.printf "call %d: sum_to_n(%d) = %d  (%.1f us of simulated CPU)\n" i n
                     v
                     (Smod_sim.Clock.elapsed_us clock ~since:t0)
               | exception Smod_kern.Errno.Error (e, ctx) ->
                   Printf.printf "call %d: refused with %s — %s\n" i
                     (Smod_kern.Errno.to_string e) ctx
             done;
             (* The kernel's per-session accounting: what this principal
                actually consumed (the metering the section-1 admin
                scenario needs). *)
             let s = Option.get (Smod.session_of_client smod ~client_pid:p.Smod_kern.Proc.pid) in
             Printf.printf
               "\nsession accounting: %d calls executed, %d denied, %d faulted,\n\
               \                    %.1f us of handle CPU consumed\n"
               s.Smod.calls s.Smod.denied_calls s.Smod.faulted_calls s.Smod.handle_exec_us)));
  Machine.run machine;
  print_endline "\n(the quota of 3 calls protects the host: calls 4 and 5 were refused\n\
                \ before any module code ran)"
