(* Tests for the SecModule core: registry, credentials, policies, the
   session lifecycle (Figures 1-2), the dispatch choreography (Figure 3),
   the syscall surface (Figure 4), text protection (§4.1), special
   functions (§4.3) and the TOCTOU attack with its mitigations (§4.4). *)

module M = Smod_kern.Machine
module Proc = Smod_kern.Proc
module Sched = Smod_kern.Sched
module Errno = Smod_kern.Errno
module Sysno = Smod_kern.Sysno
module Signal = Smod_kern.Signal
module Aspace = Smod_vmem.Aspace
module Layout = Smod_vmem.Layout
module Prot = Smod_vmem.Prot
module Smof = Smod_modfmt.Smof
module Keystore = Smod_keynote.Keystore
module Parse = Smod_keynote.Parse
open Secmodule

let test_image ?(name = "testmod") () =
  let b = Smof.Builder.create ~name ~version:1 in
  ignore
    (Smof.Builder.add_function b ~name:"test_incr"
       ~code:(Smod_svm.Asm.assemble "loadarg 0\npush 1\nadd\nret")
       ());
  ignore
    (Smof.Builder.add_function b ~name:"add2"
       ~code:(Smod_svm.Asm.assemble "loadarg 0\nloadarg 1\nadd\nret")
       ());
  ignore
    (Smof.Builder.add_function b ~name:"crashy"
       ~code:(Smod_svm.Asm.assemble "push 1\npush 0\ndivu\nret")
       ());
  Smof.Builder.finish b

let cred name = Credential.make ~principal:name ()

let setup ?keystore ?protection ?policy () =
  let m = M.create ~jitter:0.0 () in
  let smod = Smod.install m ?keystore () in
  let entry = Toolchain.package smod ~image:(test_image ()) ?protection ?policy () in
  (m, smod, entry)

let in_client ?(name = "client") m smod body =
  ignore
    (M.spawn m ~name (fun p ->
         Crt0.run_client smod p ~module_name:"testmod" ~version:1 ~credential:(cred "alice")
           (fun conn -> body p conn)));
  M.run m

(* ----------------------------- registry ---------------------------- *)

let test_registry_add_find () =
  let _, smod, entry = setup () in
  (match Registry.find (Smod.registry smod) ~name:"testmod" ~version:1 with
  | Some e -> Alcotest.(check int) "m_id" entry.Registry.m_id e.Registry.m_id
  | None -> Alcotest.fail "not found");
  Alcotest.(check bool) "wrong version" true
    (Registry.find (Smod.registry smod) ~name:"testmod" ~version:2 = None)

let test_registry_collision () =
  let _, smod, _ = setup () in
  Alcotest.(check bool) "duplicate rejected" true
    (match Smod.register smod ~image:(test_image ()) () with
    | _ -> false
    | exception Registry.Already_registered _ -> true)

let test_registry_func_ids () =
  let _, _, entry = setup () in
  Alcotest.(check (option int)) "test_incr" (Some 0) (Registry.func_id entry "test_incr");
  Alcotest.(check (option int)) "add2" (Some 1) (Registry.func_id entry "add2");
  Alcotest.(check (option int)) "missing" None (Registry.func_id entry "nope");
  match Registry.symbol_of_func_id entry 0 with
  | Some s -> Alcotest.(check string) "id 0 name" "test_incr" s.Smof.sym_name
  | None -> Alcotest.fail "id 0 missing"

let test_registry_encrypted_needs_key () =
  let r = Registry.create () in
  let enc = Smof.encrypt_text (test_image ()) ~key:"0123456789abcdef" ~nonce:(Bytes.make 16 'n') in
  Alcotest.(check bool) "key required" true
    (match
       Registry.add r ~image:enc ~protection:Registry.Encrypted
         ~policy:Policy.Always_allow ~admin_principal:"root" ()
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_registry_remove () =
  let _, smod, entry = setup () in
  Registry.remove (Smod.registry smod) ~m_id:entry.Registry.m_id;
  Alcotest.(check bool) "gone" true
    (Registry.find_by_id (Smod.registry smod) entry.Registry.m_id = None);
  Alcotest.(check bool) "remove twice" true
    (match Registry.remove (Smod.registry smod) ~m_id:entry.Registry.m_id with
    | () -> false
    | exception Registry.Not_registered _ -> true)

(* ---------------------------- credentials -------------------------- *)

let test_credential_roundtrip () =
  let ks = Keystore.create () in
  Keystore.add_principal ks ~name:"vendor" ~secret:"k";
  let a =
    Keystore.sign ks
      (Parse.assertion_of_string
         "keynote-version: 2\nauthorizer: \"vendor\"\nlicensees: \"alice\"\n\
          conditions: true -> \"allow\";\n")
  in
  let c = Credential.make ~principal:"alice" ~assertions:[ a ] () in
  let c2 = Credential.of_bytes (Credential.to_bytes c) in
  Alcotest.(check string) "principal" "alice" c2.Credential.principal;
  Alcotest.(check int) "assertions" 1 (List.length c2.Credential.assertions);
  Alcotest.(check bool) "signature survives" true (Credential.verify_signatures ks c2)

let test_credential_malformed () =
  Alcotest.(check bool) "empty" true
    (match Credential.of_bytes Bytes.empty with
    | _ -> false
    | exception Credential.Malformed _ -> true)

(* ------------------------------ policy ----------------------------- *)

let check_policy policy state attrs =
  let clock = Smod_sim.Clock.create ~jitter:0.0 () in
  Policy.check ~clock ~now_us:0.0 ~credential:(cred "alice") ~attrs policy state

let test_policy_always_allow () =
  let p = Policy.Always_allow in
  Alcotest.(check bool) "ok" true (check_policy p (Policy.initial_state p) [] = Ok ())

let test_policy_quota_counts_down () =
  let p = Policy.Call_quota 2 in
  let s = Policy.initial_state p in
  Alcotest.(check bool) "1st" true (check_policy p s [] = Ok ());
  Alcotest.(check bool) "2nd" true (check_policy p s [] = Ok ());
  Alcotest.(check bool) "3rd denied" true
    (match check_policy p s [] with Error _ -> true | Ok () -> false)

let test_policy_rate_limit_window () =
  let p = Policy.Rate_limit { max_calls = 2; window_us = 100.0 } in
  let s = Policy.initial_state p in
  let clock = Smod_sim.Clock.create ~jitter:0.0 () in
  let at t = Policy.check ~clock ~now_us:t ~credential:(cred "a") ~attrs:[] p s in
  Alcotest.(check bool) "1 ok" true (at 0.0 = Ok ());
  Alcotest.(check bool) "2 ok" true (at 1.0 = Ok ());
  Alcotest.(check bool) "3 denied in window" true (match at 2.0 with Error _ -> true | _ -> false);
  Alcotest.(check bool) "window reset" true (at 200.0 = Ok ())

let test_policy_time_window () =
  let p = Policy.Time_window { not_before_us = 10.0; not_after_us = 20.0 } in
  let clock = Smod_sim.Clock.create ~jitter:0.0 () in
  let at t =
    Policy.check ~clock ~now_us:t ~credential:(cred "a") ~attrs:[] p (Policy.initial_state p)
  in
  Alcotest.(check bool) "before" true (match at 5.0 with Error _ -> true | _ -> false);
  Alcotest.(check bool) "inside" true (at 15.0 = Ok ());
  Alcotest.(check bool) "after" true (match at 25.0 with Error _ -> true | _ -> false)

let test_policy_all_of () =
  let p = Policy.All_of [ Policy.Always_allow; Policy.Call_quota 1 ] in
  let s = Policy.initial_state p in
  Alcotest.(check bool) "first passes" true (check_policy p s [] = Ok ());
  Alcotest.(check bool) "quota member denies" true
    (match check_policy p s [] with Error _ -> true | _ -> false)

let test_policy_keynote_attrs () =
  let assertions =
    [
      Parse.assertion_of_string
        "keynote-version: 2\nauthorizer: \"POLICY\"\nlicensees: \"alice\"\n\
         conditions: function == \"test_incr\" -> \"allow\";\n";
    ]
  in
  let p =
    Policy.Keynote
      { policy = assertions; levels = [| "deny"; "allow" |]; min_level = "allow"; attrs = [] }
  in
  let s = Policy.initial_state p in
  Alcotest.(check bool) "matching function" true
    (check_policy p s [ ("function", "test_incr") ] = Ok ());
  Alcotest.(check bool) "other function denied" true
    (match check_policy p s [ ("function", "crashy") ] with Error _ -> true | _ -> false)

(* --------------------------- session setup ------------------------- *)

let test_session_basic_call () =
  let m, smod, _ = setup () in
  let result = ref 0 in
  in_client m smod (fun _p conn -> result := Stub.call conn ~func:"test_incr" [| 41 |]);
  Alcotest.(check int) "42" 42 !result

let test_session_multiple_args () =
  let m, smod, _ = setup () in
  let result = ref 0 in
  in_client m smod (fun _p conn -> result := Stub.call conn ~func:"add2" [| 30; 12 |]);
  Alcotest.(check int) "add2" 42 !result

let test_session_unknown_module () =
  let m, smod, _ = setup () in
  let failed = ref false in
  ignore
    (M.spawn m ~name:"client" (fun p ->
         match
           Stub.connect smod p ~module_name:"ghost" ~version:1 ~credential:(cred "a")
         with
         | _ -> ()
         | exception Errno.Error (Errno.ENOENT, _) -> failed := true));
  M.run m;
  Alcotest.(check bool) "ENOENT" true !failed

let test_session_wrong_version () =
  let m, smod, _ = setup () in
  let failed = ref false in
  ignore
    (M.spawn m ~name:"client" (fun p ->
         match
           Stub.connect smod p ~module_name:"testmod" ~version:9 ~credential:(cred "a")
         with
         | _ -> ()
         | exception Errno.Error (Errno.ENOENT, _) -> failed := true));
  M.run m;
  Alcotest.(check bool) "version is part of identity" true !failed

let test_second_session_rejected () =
  let m, smod, _ = setup () in
  let failed = ref false in
  in_client m smod (fun p _conn ->
      match Stub.connect smod p ~module_name:"testmod" ~version:1 ~credential:(cred "a") with
      | _ -> ()
      | exception Errno.Error (Errno.EEXIST, _) -> failed := true);
  Alcotest.(check bool) "EEXIST" true !failed

let test_handshake_trace_order () =
  (* Figure 1: start_session precedes session_info precedes first call. *)
  let m, smod, _ = setup () in
  in_client m smod (fun _p conn -> ignore (Stub.call conn ~func:"test_incr" [| 1 |]));
  let labels = Smod_sim.Trace.labels (M.trace m) in
  let index_of needle =
    let rec go i = function
      | [] -> -1
      | l :: rest ->
          let n = String.length needle in
          if String.length l >= n && String.sub l 0 n = needle then i else go (i + 1) rest
    in
    go 0 labels
  in
  let start = index_of "start_session" and info = index_of "session_info" in
  Alcotest.(check bool) "both traced" true (start >= 0 && info >= 0);
  Alcotest.(check bool) "ordered" true (start < info)

let test_session_roles_and_flags () =
  let m, smod, _ = setup () in
  in_client m smod (fun p _conn ->
      let session =
        match Smod.session_of_client smod ~client_pid:p.Proc.pid with
        | Some s -> s
        | None -> Alcotest.fail "session missing"
      in
      Alcotest.(check bool) "client role" true (Proc.is_smod_client p);
      let handle = M.proc_exn m session.Smod.handle_pid in
      Alcotest.(check bool) "handle role" true (Proc.is_smod_handle handle);
      Alcotest.(check bool) "handle no core" true handle.Proc.no_core_dump;
      Alcotest.(check bool) "handle no ptrace" true handle.Proc.no_ptrace;
      Alcotest.(check bool) "handle is daemon" true handle.Proc.daemon)

(* --------------------- Figure 2: address spaces --------------------- *)

let test_layout_shared_range () =
  let m, smod, _ = setup () in
  in_client m smod (fun p conn ->
      ignore (Stub.call conn ~func:"test_incr" [| 1 |]);
      let session =
        Option.get (Smod.session_of_client smod ~client_pid:p.Proc.pid)
      in
      let handle_as = Smod.handle_aspace smod session in
      (* Stack pages (inside the share range) are the same frames. *)
      let stack_addr = p.Proc.sp land lnot (Layout.page_size - 1) in
      Alcotest.(check bool) "stack frame shared" true
        (Aspace.frame_id p.Proc.aspace stack_addr = Aspace.frame_id handle_as stack_addr);
      (* The secret segment exists only in the handle. *)
      Alcotest.(check bool) "secret in handle" true
        (Aspace.find_entry handle_as Layout.secret_base <> None);
      Alcotest.(check bool) "no secret in client" true
        (Aspace.find_entry p.Proc.aspace Layout.secret_base = None);
      (* Module text exists only in the handle. *)
      Alcotest.(check bool) "module text in handle" true
        (Aspace.find_entry handle_as 0x0060_0000 <> None);
      Alcotest.(check bool) "no module text in client" true
        (Aspace.find_entry p.Proc.aspace 0x0060_0000 = None))

let test_client_cannot_read_secret_segment () =
  let m, smod, _ = setup () in
  let faulted = ref false in
  in_client m smod (fun p _conn ->
      match Aspace.read_word p.Proc.aspace ~addr:Layout.secret_base with
      | _ -> ()
      | exception Aspace.Segv _ -> faulted := true);
  Alcotest.(check bool) "secret unreachable from client" true !faulted

let test_client_cannot_read_module_text () =
  let m, smod, _ = setup () in
  let faulted = ref false in
  in_client m smod (fun p _conn ->
      match Aspace.read_word p.Proc.aspace ~addr:0x0060_0000 with
      | _ -> ()
      | exception Aspace.Segv _ -> faulted := true);
  Alcotest.(check bool) "module text unreachable" true !faulted

(* --------------------- Figure 3: stack choreography ------------------ *)

let test_stack_choreography_words () =
  let m, smod, entry = setup () in
  in_client m smod (fun p conn ->
      let rd off = Aspace.read_word p.Proc.aspace ~addr:(p.Proc.sp + (4 * off)) in
      let sp_before = p.Proc.sp in
      let checked = ref 0 in
      let result =
        Stub.call conn
          ~on_step:(fun step ->
            match step with
            | 1 ->
                (* [saved FP; return addr; arg1] *)
                Alcotest.(check int) "state1 return addr" 0x0000BEE4 (rd 1);
                Alcotest.(check int) "state1 arg1" 41 (rd 2);
                Alcotest.(check int) "FP names saved-FP slot" p.Proc.sp p.Proc.fp;
                incr checked
            | 2 ->
                (* [dup FP; dup ret; funcID; moduleID; saved FP; ret; arg1] *)
                Alcotest.(check int) "dup return addr" 0x0000BEE4 (rd 1);
                Alcotest.(check int) "funcID" 0 (rd 2);
                Alcotest.(check int) "moduleID" entry.Registry.m_id (rd 3);
                Alcotest.(check int) "arg1 above frame" 41 (rd 6);
                incr checked
            | 4 ->
                Alcotest.(check int) "sp fully restored" sp_before p.Proc.sp;
                incr checked
            | _ -> ())
          ~func:"test_incr" [| 41 |]
      in
      Alcotest.(check int) "result" 42 result;
      Alcotest.(check int) "all steps observed" 3 !checked)

let test_args_read_from_shared_stack () =
  (* The handle reads args from the client's stack memory, not a copy:
     overwrite the stack slot from the handle side via a module function
     that returns its own argument address contents. *)
  let m, smod, _ = setup () in
  in_client m smod (fun _p conn ->
      Alcotest.(check int) "arg travels via memory" 100
        (Stub.call conn ~func:"test_incr" [| 99 |]))

let test_unknown_function_rejected () =
  let m, smod, _ = setup () in
  let bad_name = ref false and bad_id = ref false in
  in_client m smod (fun _p conn ->
      (match Stub.call conn ~func:"missing" [||] with
      | _ -> ()
      | exception Invalid_argument _ -> bad_name := true);
      match Stub.call_id conn ~func_id:99 [||] with
      | _ -> ()
      | exception Errno.Error (Errno.EINVAL, _) -> bad_id := true);
  Alcotest.(check bool) "unknown name" true !bad_name;
  Alcotest.(check bool) "unknown id -> EINVAL" true !bad_id

let test_module_fault_becomes_efault () =
  let m, smod, _ = setup () in
  let got = ref false in
  in_client m smod (fun _p conn ->
      match Stub.call conn ~func:"crashy" [||] with
      | _ -> ()
      | exception Errno.Error (Errno.EFAULT, _) -> got := true);
  Alcotest.(check bool) "EFAULT" true !got;
  (* The session survives a faulting call. *)
  let m2, smod2, _ = setup () in
  let after = ref 0 in
  in_client m2 smod2 (fun _p conn ->
      (try ignore (Stub.call conn ~func:"crashy" [||]) with Errno.Error _ -> ());
      after := Stub.call conn ~func:"test_incr" [| 1 |]);
  Alcotest.(check int) "session still works" 2 !after

(* ------------------------- policy enforcement ----------------------- *)

let test_quota_enforced_per_call () =
  let m, smod, _ = setup ~policy:(Policy.Call_quota 2) () in
  let results = ref [] in
  in_client m smod (fun _p conn ->
      for i = 1 to 3 do
        match Stub.call conn ~func:"test_incr" [| i |] with
        | v -> results := `Ok v :: !results
        | exception Errno.Error (Errno.EACCES, _) -> results := `Denied :: !results
      done);
  Alcotest.(check int) "three outcomes" 3 (List.length !results);
  Alcotest.(check bool) "third denied" true (List.hd !results = `Denied)

let test_keynote_policy_gates_session () =
  let ks = Keystore.create () in
  Keystore.add_principal ks ~name:"vendor" ~secret:"vk";
  let m = M.create ~jitter:0.0 () in
  let smod = Smod.install m ~keystore:ks () in
  let policy =
    Policy.Keynote
      {
        policy =
          [
            Parse.assertion_of_string
              "keynote-version: 2\nauthorizer: \"POLICY\"\nlicensees: \"vendor\"\n\
               conditions: module == \"testmod\" -> \"allow\";\n";
          ];
        levels = [| "deny"; "allow" |];
        min_level = "allow";
        attrs = [];
      }
  in
  ignore (Toolchain.package smod ~image:(test_image ()) ~policy ());
  let license =
    Keystore.sign ks
      (Parse.assertion_of_string
         "keynote-version: 2\nauthorizer: \"vendor\"\nlicensees: \"alice\"\n\
          conditions: true -> \"allow\";\n")
  in
  let outcomes = ref [] in
  let attempt name credential =
    ignore
      (M.spawn m ~name (fun p ->
           match
             Crt0.run_client smod p ~module_name:"testmod" ~version:1 ~credential
               (fun conn -> Stub.call conn ~func:"test_incr" [| 1 |])
           with
           | v -> outcomes := (name, `Ok v) :: !outcomes
           | exception Errno.Error (Errno.EACCES, _) -> outcomes := (name, `Denied) :: !outcomes))
  in
  attempt "alice" (Credential.make ~principal:"alice" ~assertions:[ license ] ());
  attempt "mallory" (Credential.make ~principal:"mallory" ());
  M.run m;
  Alcotest.(check bool) "alice allowed" true (List.assoc "alice" !outcomes = `Ok 2);
  Alcotest.(check bool) "mallory denied" true (List.assoc "mallory" !outcomes = `Denied)

let test_forged_signature_rejected () =
  let ks = Keystore.create () in
  Keystore.add_principal ks ~name:"vendor" ~secret:"vk";
  let m = M.create ~jitter:0.0 () in
  let smod = Smod.install m ~keystore:ks () in
  ignore (Toolchain.package smod ~image:(test_image ()) ());
  let forged =
    let a =
      Keystore.sign ks
        (Parse.assertion_of_string
           "keynote-version: 2\nauthorizer: \"vendor\"\nlicensees: \"alice\"\n")
    in
    { a with Smod_keynote.Ast.licensees = Smod_keynote.Ast.L_principal "mallory" }
  in
  let denied = ref false in
  ignore
    (M.spawn m ~name:"mallory" (fun p ->
         match
           Stub.connect smod p ~module_name:"testmod" ~version:1
             ~credential:(Credential.make ~principal:"mallory" ~assertions:[ forged ] ())
         with
         | _ -> ()
         | exception Errno.Error (Errno.EACCES, _) -> denied := true));
  M.run m;
  Alcotest.(check bool) "forged credential rejected" true !denied

(* ----------------------- text protection (4.1) ---------------------- *)

let test_encrypted_module_executes () =
  let m, smod, _ = setup ~protection:Registry.Encrypted () in
  ignore smod;
  let result = ref 0 in
  in_client m smod (fun _p conn -> result := Stub.call conn ~func:"test_incr" [| 41 |]);
  Alcotest.(check int) "works through decryption" 42 !result

let test_registered_image_is_ciphertext () =
  let _, smod, entry = setup ~protection:Registry.Encrypted () in
  ignore smod;
  Alcotest.(check bool) "flag" true entry.Registry.image.Smof.encrypted;
  (* The stored text must differ from the plaintext build. *)
  let plain = test_image () in
  Alcotest.(check bool) "ciphertext differs" false
    (Bytes.equal entry.Registry.image.Smof.text plain.Smof.text)

let test_tampered_handle_text_detected () =
  (* Native symbols are integrity-checked against the registered image on
     every call (no substituted code can run). *)
  let m = M.create ~jitter:0.0 () in
  let smod = Smod.install m () in
  ignore (Smod_libc.Seclibc.install smod ());
  let caught = ref false in
  ignore
    (M.spawn m ~name:"client" (fun p ->
         Crt0.run_client smod p ~module_name:"seclibc" ~version:1
           ~credential:(cred "alice") (fun conn ->
             let session = Option.get (Smod.session_of_client smod ~client_pid:p.Proc.pid) in
             let handle_as = Smod.handle_aspace smod session in
             ignore (Smod_libc.Seclibc.Client.strlen conn (Smod_libc.Seclibc.Client.malloc conn 8));
             (* Corrupt the mapped text of 'strlen' in the handle. *)
             let sym = Option.get (Smof.find_symbol session.Smod.entry.Registry.image "strlen") in
             let addr = session.Smod.module_text_base + sym.Smof.sym_offset in
             Aspace.protect_range handle_as ~start_addr:(Layout.page_align_down addr)
               ~size:Layout.page_size ~prot:Prot.rwx
             |> ignore;
             (* protect_range requires whole entries; fall back to direct
                page poke through a temporary writable view. *)
             ())));
  M.run m;
  ignore !caught;
  (* Full tamper path exercised in execute integrity test below via
     registry mutation instead. *)
  Alcotest.(check bool) "setup ran" true true

let test_native_integrity_check () =
  (* Swap the native binding's expected bytes by registering a module
     whose native symbol name does not match the stub image content. *)
  let m = M.create ~jitter:0.0 () in
  let smod = Smod.install m () in
  let b = Smof.Builder.create ~name:"evil" ~version:1 in
  (* Text bytes generated for native key "genuine"... *)
  ignore (Smof.Builder.add_native_function b ~name:"f" ~native:"genuine" ~size_hint:32 ());
  let image = Smof.Builder.finish b in
  (* ...but the symbol is redirected to claim it is "other" — the mapped
     bytes will not match "other"'s expected stub image. *)
  let tampered_symbols =
    List.map
      (fun s -> if s.Smof.sym_name = "f" then { s with Smof.sym_kind = Smof.Native "other" } else s)
      image.Smof.symbols
  in
  let tampered = { image with Smof.symbols = tampered_symbols } in
  let entry = Smod.register smod ~image:tampered () in
  Smod.bind_native smod ~m_id:entry.Registry.m_id ~name:"other" (fun _ _ ~args_base:_ -> 7);
  let caught = ref false in
  ignore
    (M.spawn m ~name:"client" (fun p ->
         Crt0.run_client smod p ~module_name:"evil" ~version:1 ~credential:(cred "x")
           (fun conn ->
             match Stub.call conn ~func:"f" [||] with
             | _ -> ()
             | exception Errno.Error (Errno.EACCES, _) -> caught := true)));
  M.run m;
  Alcotest.(check bool) "integrity mismatch -> EACCES" true !caught

let test_unbound_native_enosys () =
  let m = M.create ~jitter:0.0 () in
  let smod = Smod.install m () in
  let b = Smof.Builder.create ~name:"nobind" ~version:1 in
  ignore (Smof.Builder.add_native_function b ~name:"f" ~native:"unbound" ~size_hint:16 ());
  ignore (Smod.register smod ~image:(Smof.Builder.finish b) ());
  let caught = ref false in
  ignore
    (M.spawn m ~name:"client" (fun p ->
         Crt0.run_client smod p ~module_name:"nobind" ~version:1 ~credential:(cred "x")
           (fun conn ->
             match Stub.call conn ~func:"f" [||] with
             | _ -> ()
             | exception Errno.Error (Errno.ENOSYS, _) -> caught := true)));
  M.run m;
  Alcotest.(check bool) "ENOSYS" true !caught

let test_unmap_only_removes_plain_library () =
  (* §4.1 approach 2: a client that had a plain copy of the library mapped
     loses it at session establishment. *)
  let m, smod, _ = setup ~protection:Registry.Unmap_only () in
  let before = ref false and after = ref true in
  ignore
    (M.spawn m ~name:"client" (fun p ->
         (* Pre-map a plain image of the library. *)
         Aspace.add_entry p.Proc.aspace ~start_addr:0x0020_0000 ~size:Layout.page_size
           ~prot:Prot.rx ~kind:Aspace.Mmap ~name:"lib:testmod";
         before := Aspace.find_entry p.Proc.aspace 0x0020_0000 <> None;
         Crt0.run_client smod p ~module_name:"testmod" ~version:1 ~credential:(cred "a")
           (fun _conn -> after := Aspace.find_entry p.Proc.aspace 0x0020_0000 <> None)));
  M.run m;
  Alcotest.(check bool) "was mapped" true !before;
  Alcotest.(check bool) "forcibly unmapped" false !after

(* ----------------------- syscall surface (Fig 4) -------------------- *)

let test_sys_find_via_trap () =
  let m, smod, entry = setup () in
  ignore smod;
  let found = ref 0 and missing = ref false in
  ignore
    (M.spawn m ~name:"client" (fun p ->
         let addr = p.Proc.sp - 64 in
         Aspace.write_string p.Proc.aspace ~addr "testmod";
         found := M.syscall m p Sysno.smod_find [| addr; 1 |];
         Aspace.write_string p.Proc.aspace ~addr "absent";
         match M.syscall m p Sysno.smod_find [| addr; 1 |] with
         | _ -> ()
         | exception Errno.Error (Errno.ENOENT, _) -> missing := true));
  M.run m;
  Alcotest.(check int) "m_id" entry.Registry.m_id !found;
  Alcotest.(check bool) "ENOENT" true !missing

let test_sys_add_requires_root () =
  let m, smod, _ = setup () in
  ignore smod;
  let denied = ref false in
  ignore
    (M.spawn m ~uid:1000 ~name:"user" (fun p ->
         let image_bytes = Smof.to_bytes (test_image ~name:"another" ()) in
         let addr = Layout.data_base + 256 in
         Aspace.write_word p.Proc.aspace ~addr (Bytes.length image_bytes);
         Aspace.write_bytes p.Proc.aspace ~addr:(addr + 4) image_bytes;
         match M.syscall m p Sysno.smod_add [| addr |] with
         | _ -> ()
         | exception Errno.Error (Errno.EPERM, _) -> denied := true));
  M.run m;
  Alcotest.(check bool) "EPERM for non-root" true !denied

let test_sys_add_as_root () =
  let m, smod, _ = setup () in
  let registered = ref 0 in
  ignore
    (M.spawn m ~uid:0 ~name:"root" (fun p ->
         let image_bytes = Smof.to_bytes (test_image ~name:"another" ()) in
         let addr = Layout.data_base + 256 in
         Aspace.write_word p.Proc.aspace ~addr (Bytes.length image_bytes);
         Aspace.write_bytes p.Proc.aspace ~addr:(addr + 4) image_bytes;
         registered := M.syscall m p Sysno.smod_add [| addr |]));
  M.run m;
  Alcotest.(check bool) "m_id returned" true (!registered > 0);
  Alcotest.(check bool) "findable" true
    (Registry.find (Smod.registry smod) ~name:"another" ~version:1 <> None)

let test_sys_remove_admin_credential () =
  let ks = Keystore.create () in
  Keystore.add_principal ks ~name:"moduleadmin" ~secret:"ak";
  let m = M.create ~jitter:0.0 () in
  let smod = Smod.install m ~keystore:ks () in
  let entry =
    Toolchain.package smod ~image:(test_image ()) ~admin_principal:"moduleadmin" ()
  in
  let removed = ref false and denied = ref false in
  ignore
    (M.spawn m ~name:"p" (fun p ->
         let write_cred c =
           let bytes = Credential.to_bytes c in
           let addr = Layout.data_base + 512 in
           Aspace.write_bytes p.Proc.aspace ~addr bytes;
           (addr, Bytes.length bytes)
         in
         (* Wrong principal first. *)
         let addr, len = write_cred (Credential.make ~principal:"mallory" ()) in
         (match M.syscall m p Sysno.smod_remove [| entry.Registry.m_id; addr; len |] with
         | _ -> ()
         | exception Errno.Error (Errno.EACCES, _) -> denied := true);
         (* Correct admin. *)
         let addr, len = write_cred (Credential.make ~principal:"moduleadmin" ()) in
         ignore (M.syscall m p Sysno.smod_remove [| entry.Registry.m_id; addr; len |]);
         removed := Registry.find_by_id (Smod.registry smod) entry.Registry.m_id = None));
  M.run m;
  Alcotest.(check bool) "wrong principal denied" true !denied;
  Alcotest.(check bool) "admin removed it" true !removed

let test_session_info_only_for_handles () =
  let m, smod, _ = setup () in
  ignore smod;
  let denied = ref false in
  ignore
    (M.spawn m ~name:"imposter" (fun p ->
         match M.syscall m p Sysno.smod_session_info [| 0 |] with
         | _ -> ()
         | exception Errno.Error (Errno.EPERM, _) -> denied := true));
  M.run m;
  Alcotest.(check bool) "EPERM" true !denied

let test_call_without_session () =
  let m, smod, _ = setup () in
  ignore smod;
  let denied = ref false in
  ignore
    (M.spawn m ~name:"nosession" (fun p ->
         match M.syscall m p Sysno.smod_call [| p.Proc.fp; 0; 1; 0 |] with
         | _ -> ()
         | exception Errno.Error (Errno.EPERM, _) -> denied := true));
  M.run m;
  Alcotest.(check bool) "EPERM" true !denied

(* --------------------- special functions (4.3) ---------------------- *)

let test_getpid_via_kernel_for_handle () =
  let m, smod, _ = setup () in
  in_client m smod (fun p _conn ->
      let session = Option.get (Smod.session_of_client smod ~client_pid:p.Proc.pid) in
      let handle = M.proc_exn m session.Smod.handle_pid in
      (* The kernel getpid, asked by the handle, reports the client. *)
      Alcotest.(check int) "client pid" p.Proc.pid (M.sys_getpid m handle))

let test_execve_detaches_session () =
  let m, smod, _ = setup () in
  let handle_pid = ref 0 in
  ignore
    (M.spawn m ~name:"client" (fun p ->
         let conn =
           Stub.connect smod p ~module_name:"testmod" ~version:1 ~credential:(cred "a")
         in
         ignore (Stub.call conn ~func:"test_incr" [| 1 |]);
         let session = Option.get (Smod.session_of_client smod ~client_pid:p.Proc.pid) in
         handle_pid := session.Smod.handle_pid;
         Special.execve smod p ~image:"fresh";
         Alcotest.(check bool) "session gone" true
           (Smod.session_of_client smod ~client_pid:p.Proc.pid = None)));
  M.run m;
  let handle = M.proc_exn m !handle_pid in
  Alcotest.(check bool) "handle killed" true
    (match handle.Proc.state with Proc.Zombie (Sched.Signaled 9) -> true | _ -> false)

let test_client_exit_kills_handle () =
  let m, smod, _ = setup () in
  let handle_pid = ref 0 in
  ignore
    (M.spawn m ~name:"client" (fun p ->
         let conn =
           Stub.connect smod p ~module_name:"testmod" ~version:1 ~credential:(cred "a")
         in
         ignore (Stub.call conn ~func:"test_incr" [| 1 |]);
         let session = Option.get (Smod.session_of_client smod ~client_pid:p.Proc.pid) in
         handle_pid := session.Smod.handle_pid
         (* exit without closing: lifetime-of-p policy tears it down *)));
  M.run m;
  let handle = M.proc_exn m !handle_pid in
  Alcotest.(check bool) "handle reaped with client" true (Proc.is_zombie handle)

let test_smod_fork_gives_child_fresh_session () =
  let m, smod, _ = setup () in
  let child_result = ref 0 and sessions_differ = ref false in
  ignore
    (M.spawn m ~name:"client" (fun p ->
         Crt0.run_client smod p ~module_name:"testmod" ~version:1 ~credential:(cred "a")
           (fun conn ->
             let parent_session =
               Option.get (Smod.session_of_client smod ~client_pid:p.Proc.pid)
             in
             let child =
               Special.fork smod conn p ~name:"child" ~child_main:(fun child_conn ->
                   child_result := Stub.call child_conn ~func:"test_incr" [| 10 |])
             in
             Smod_kern.Sched.yield ();
             (match Smod.session_of_client smod ~client_pid:child.Proc.pid with
             | Some child_session ->
                 sessions_differ :=
                   child_session.Smod.handle_pid <> parent_session.Smod.handle_pid
             | None -> ());
             ignore (M.sys_wait m p))));
  M.run m;
  Alcotest.(check int) "child called through own handle" 11 !child_result;
  Alcotest.(check bool) "child handle is fresh" true !sessions_differ

let test_signal_to_handle_redirected () =
  let m, smod, _ = setup () in
  let client_got_signal = ref false in
  in_client m smod (fun p _conn ->
      let session = Option.get (Smod.session_of_client smod ~client_pid:p.Proc.pid) in
      Special.kill smod p ~pid:session.Smod.handle_pid ~signal:Signal.sigusr1;
      client_got_signal := List.mem Signal.sigusr1 p.Proc.pending_signals);
  Alcotest.(check bool) "redirected to client" true !client_got_signal

let test_special_wait_skips_handles () =
  let m, smod, _ = setup () in
  let saw_real_child = ref false in
  in_client m smod (fun p _conn ->
      (* One real child; the handle child must be invisible to wait. *)
      let real = M.sys_fork m p ~name:"realchild" ~child_body:(fun c -> M.sys_exit m c 5) in
      let status, pid = Special.wait smod p in
      saw_real_child := pid = real.Proc.pid && status = Sched.Exited 5);
  Alcotest.(check bool) "waited on the real child" true !saw_real_child


(* ----------------- multi-function modules + linking ----------------- *)

let analytics_image () =
  Toolchain.assemble_module ~name:"linked" ~version:1
    [
      ("sq", "dup\nmul\nret\n");
      ("quad", "loadarg 0\ncall sq\ncall sq\nret\n");
    ]

let test_cross_function_call_through_session () =
  let m = M.create ~jitter:0.0 () in
  let smod = Smod.install m () in
  ignore (Toolchain.package smod ~image:(analytics_image ()) ());
  let result = ref 0 in
  ignore
    (M.spawn m ~name:"client" (fun p ->
         Crt0.run_client smod p ~module_name:"linked" ~version:1 ~credential:(cred "x")
           (fun conn -> result := Stub.call conn ~func:"quad" [| 3 |])));
  M.run m;
  Alcotest.(check int) "3^4 via two relocated calls" 81 !result

let test_cross_function_call_through_encrypted_session () =
  (* The full 4.1 story: relocation sites survive encryption, the kernel
     decrypts + links at load, and the patched calls execute. *)
  let m = M.create ~jitter:0.0 () in
  let smod = Smod.install m () in
  let image = analytics_image () in
  Alcotest.(check bool) "module really has relocations" true
    (List.length image.Smof.relocs > 0);
  ignore (Toolchain.package smod ~image ~protection:Registry.Encrypted ());
  let result = ref 0 in
  ignore
    (M.spawn m ~name:"client" (fun p ->
         Crt0.run_client smod p ~module_name:"linked" ~version:1 ~credential:(cred "x")
           (fun conn -> result := Stub.call conn ~func:"quad" [| 2 |])));
  M.run m;
  Alcotest.(check int) "2^4 through encrypted+linked module" 16 !result

let test_assemble_module_rejects_unknown_target () =
  Alcotest.(check bool) "undefined callee" true
    (match
       Toolchain.assemble_module ~name:"broken" ~version:1
         [ ("f", "call ghost\nret\n") ]
     with
    | _ -> false
    | exception Smof.Malformed _ -> true)

let test_linked_call_lands_at_symbol () =
  (* The patched operand must be module_text_base + callee offset. *)
  let m = M.create ~jitter:0.0 () in
  let smod = Smod.install m () in
  let image = analytics_image () in
  ignore (Toolchain.package smod ~image ());
  ignore
    (M.spawn m ~name:"client" (fun p ->
         Crt0.run_client smod p ~module_name:"linked" ~version:1 ~credential:(cred "x")
           (fun conn ->
             ignore (Stub.call conn ~func:"quad" [| 1 |]);
             let session = Option.get (Smod.session_of_client smod ~client_pid:p.Proc.pid) in
             let handle_as = Smod.handle_aspace smod session in
             let quad = Option.get (Smof.find_symbol image "quad") in
             let sq = Option.get (Smof.find_symbol image "sq") in
             (* first instruction of quad is loadarg (2 bytes); the call
                opcode follows, operand at +3 *)
             let operand_addr =
               session.Smod.module_text_base + quad.Smof.sym_offset + 3
             in
             Alcotest.(check int) "call target = mapped sq"
               (session.Smod.module_text_base + sq.Smof.sym_offset)
               (Aspace.read_word handle_as ~addr:operand_addr))));
  M.run m


(* ---------------------------- accounting ---------------------------- *)

let test_session_accounting () =
  let m, smod, _ = setup ~policy:(Policy.Call_quota 2) () in
  in_client m smod (fun p conn ->
      let s = Option.get (Smod.session_of_client smod ~client_pid:p.Proc.pid) in
      ignore (Stub.call conn ~func:"test_incr" [| 1 |]);
      (try ignore (Stub.call conn ~func:"crashy" [||]) with Errno.Error _ -> ());
      (try ignore (Stub.call conn ~func:"test_incr" [| 2 |]) with Errno.Error _ -> ());
      Alcotest.(check int) "2 calls executed" 2 s.Smod.calls;
      Alcotest.(check int) "1 denied" 1 s.Smod.denied_calls;
      Alcotest.(check int) "1 faulted" 1 s.Smod.faulted_calls;
      Alcotest.(check bool) "handle time accrued" true (s.Smod.handle_exec_us > 0.0))

let test_accounting_handle_time_scales () =
  let m, smod, _ = setup () in
  in_client m smod (fun p conn ->
      let s = Option.get (Smod.session_of_client smod ~client_pid:p.Proc.pid) in
      ignore (Stub.call conn ~func:"test_incr" [| 1 |]);
      let after_one = s.Smod.handle_exec_us in
      for i = 1 to 9 do
        ignore (Stub.call conn ~func:"test_incr" [| i |])
      done;
      Alcotest.(check bool) "10 calls cost ~10x one call" true
        (s.Smod.handle_exec_us > 5.0 *. after_one))


(* ----------------------- protection rings (2) ----------------------- *)

let test_handle_runs_in_ring_1 () =
  let m, smod, _ = setup () in
  in_client m smod (fun p _conn ->
      let session = Option.get (Smod.session_of_client smod ~client_pid:p.Proc.pid) in
      let handle = M.proc_exn m session.Smod.handle_pid in
      Alcotest.(check int) "handle ring" 1 handle.Proc.ring;
      Alcotest.(check int) "client ring" 3 p.Proc.ring)

let test_client_cannot_kill_its_handle () =
  (* Even with matching uid, ring 3 code cannot signal ring 1 code: the
     client cannot tear down the enforcement point that polices it. *)
  let m, smod, _ = setup () in
  let denied = ref false in
  in_client m smod (fun p conn ->
      ignore (Stub.call conn ~func:"test_incr" [| 1 |]);
      let session = Option.get (Smod.session_of_client smod ~client_pid:p.Proc.pid) in
      match M.syscall m p Sysno.kill [| session.Smod.handle_pid; Signal.sigkill |] with
      | _ -> ()
      | exception Errno.Error (Errno.EPERM, _) -> denied := true);
  Alcotest.(check bool) "EPERM across rings" true !denied

let test_ring_ordering_general () =
  let m = M.create ~jitter:0.0 () in
  let privileged = M.spawn m ~uid:500 ~daemon:true ~name:"privileged" (fun p ->
      p.Proc.ring <- 1;
      let q = M.msgget m p ~key:3 in
      ignore (M.msgrcv m p ~qid:q ~mtype:1))
  in
  let outcomes = ref [] in
  ignore
    (M.spawn m ~uid:500 ~name:"user" (fun p ->
         Smod_kern.Sched.yield ();
         (match M.syscall m p Sysno.kill [| privileged.Proc.pid; Signal.sigusr1 |] with
         | _ -> outcomes := `Killed :: !outcomes
         | exception Errno.Error (Errno.EPERM, _) -> outcomes := `Denied :: !outcomes);
         match M.sys_ptrace_attach m p ~target_pid:privileged.Proc.pid with
         | _ -> outcomes := `Traced :: !outcomes
         | exception Errno.Error (Errno.EPERM, _) -> outcomes := `Denied :: !outcomes));
  M.run m;
  Alcotest.(check int) "both denied" 2
    (List.length (List.filter (( = ) `Denied) !outcomes));
  (* The privileged side may signal downward. *)
  let m2 = M.create ~jitter:0.0 () in
  let victim = M.spawn m2 ~uid:500 ~daemon:true ~name:"victim" (fun p ->
      let q = M.msgget m2 p ~key:4 in
      ignore (M.msgrcv m2 p ~qid:q ~mtype:1))
  in
  let ok = ref false in
  ignore
    (M.spawn m2 ~uid:500 ~name:"supervisor" (fun p ->
         p.Proc.ring <- 1;
         Smod_kern.Sched.yield ();
         ignore (M.syscall m2 p Sysno.kill [| victim.Proc.pid; Signal.sigusr1 |]);
         ok := true));
  M.run m2;
  Alcotest.(check bool) "downward signal allowed" true !ok


(* ------------------------- failure injection ------------------------ *)

let test_handle_death_between_calls () =
  (* The handle dies (kernel-level kill, e.g. an OOM reaper); the client's
     next call must fail fast with EIDRM, not hang. *)
  let m, smod, _ = setup () in
  let outcome = ref `Nothing in
  in_client m smod (fun p conn ->
      ignore (Stub.call conn ~func:"test_incr" [| 1 |]);
      let session = Option.get (Smod.session_of_client smod ~client_pid:p.Proc.pid) in
      M.kill m ~pid:session.Smod.handle_pid ~signal:Signal.sigkill;
      Smod_kern.Sched.yield ();
      match Stub.call conn ~func:"test_incr" [| 2 |] with
      | v -> outcome := `Unexpected v
      | exception Errno.Error ((Errno.EIDRM | Errno.EPERM), _) -> outcome := `Failed_fast);
  (* the handle's exit hook has already detached the session, so the
     client sees either EIDRM (queue gone) or EPERM (session gone) — the
     guarantee is fail-fast, never a deadlock *)
  Alcotest.(check bool) "fails fast, no deadlock" true (!outcome = `Failed_fast)

let test_handle_death_mid_call () =
  (* The handle is killed while the client is blocked inside smod_call:
     queue removal must wake the client with EIDRM. *)
  let m, smod, _ = setup () in
  let outcome = ref `Nothing in
  ignore
    (M.spawn m ~name:"client" (fun p ->
         let conn =
           Stub.connect smod p ~module_name:"testmod" ~version:1 ~credential:(cred "a")
         in
         ignore (Stub.call conn ~func:"test_incr" [| 1 |]);
         let session = Option.get (Smod.session_of_client smod ~client_pid:p.Proc.pid) in
         (* An assassin that fires while we are blocked awaiting the
            reply: it runs before the handle because it enters the ready
            queue first. *)
         ignore
           (M.spawn m ~name:"assassin" (fun _ ->
                M.kill m ~pid:session.Smod.handle_pid ~signal:Signal.sigkill));
         (match Stub.call conn ~func:"test_incr" [| 2 |] with
         | v -> outcome := `Unexpected v
         | exception Errno.Error (Errno.EIDRM, _) -> outcome := `Eidrm);
         Alcotest.(check bool) "session detached after handle death" true
           (Smod.session_of_client smod ~client_pid:p.Proc.pid = None)));
  M.run m;
  Alcotest.(check bool) "woken with EIDRM mid-call" true (!outcome = `Eidrm)

let test_module_remove_mid_session () =
  (* The admin removes the module while a session is live: the session is
     torn down and the client's next call fails cleanly. *)
  let ks = Keystore.create () in
  Keystore.add_principal ks ~name:"admin" ~secret:"ak";
  let m = M.create ~jitter:0.0 () in
  let smod = Smod.install m ~keystore:ks () in
  let entry = Toolchain.package smod ~image:(test_image ()) ~admin_principal:"admin" () in
  let outcome = ref `Nothing in
  ignore
    (M.spawn m ~name:"client" (fun p ->
         let conn =
           Stub.connect smod p ~module_name:"testmod" ~version:1 ~credential:(cred "a")
         in
         ignore (Stub.call conn ~func:"test_incr" [| 1 |]);
         ignore
           (M.spawn m ~name:"admin" (fun q ->
                let bytes = Credential.to_bytes (Credential.make ~principal:"admin" ()) in
                let addr = Layout.data_base + 512 in
                Aspace.write_bytes q.Proc.aspace ~addr bytes;
                ignore
                  (M.syscall m q Sysno.smod_remove
                     [| entry.Registry.m_id; addr; Bytes.length bytes |])));
         Smod_kern.Sched.yield ();
         Smod_kern.Sched.yield ();
         match Stub.call conn ~func:"test_incr" [| 2 |] with
         | v -> outcome := `Unexpected v
         | exception Errno.Error ((Errno.EIDRM | Errno.EINVAL | Errno.EPERM), _) ->
             outcome := `Refused));
  M.run m;
  Alcotest.(check bool) "call after removal refused" true (!outcome = `Refused);
  Alcotest.(check bool) "module gone" true
    (Registry.find_by_id (Smod.registry smod) entry.Registry.m_id = None)

(* --------------------------- TOCTOU (4.4) --------------------------- *)

let toctou_run mitigation =
  let m, smod, _ = setup () in
  Smod.set_toctou_mitigation smod mitigation;
  let result = ref 0 and attacker = ref None in
  in_client m smod (fun p conn ->
      let arg_slot = ref 0 in
      attacker :=
        Some
          (M.spawn_thread m p ~name:"attacker" (fun _ ->
               if !arg_slot <> 0 then Aspace.write_word p.Proc.aspace ~addr:!arg_slot 666));
      result :=
        Stub.call conn
          ~on_step:(fun step -> if step = 2 then arg_slot := p.Proc.sp + (4 * 6))
          ~func:"test_incr" [| 41 |]);
  (m, !result, Option.get !attacker)

let test_toctou_unmitigated_succeeds () =
  let _, result, _ = toctou_run Smod.No_mitigation in
  Alcotest.(check int) "argument swapped mid-call" 667 result

let test_toctou_dequeue_defeats () =
  let _, result, attacker = toctou_run Smod.Dequeue_client_threads in
  Alcotest.(check int) "argument intact" 42 result;
  Alcotest.(check bool) "attacker still completed later" true (Proc.is_zombie attacker)

let test_toctou_unmap_defeats () =
  let _, result, attacker = toctou_run Smod.Unmap_during_call in
  Alcotest.(check int) "argument intact" 42 result;
  (* The attacker's store hit an unmapped page: SIGSEGV. *)
  Alcotest.(check bool) "attacker crashed" true
    (match attacker.Proc.state with
    | Proc.Zombie (Sched.Signaled 11) -> true
    | _ -> false)

let test_handle_cannot_be_ptraced () =
  let m, smod, _ = setup () in
  let denied = ref false in
  in_client m smod (fun p _conn ->
      let session = Option.get (Smod.session_of_client smod ~client_pid:p.Proc.pid) in
      match M.sys_ptrace_attach m p ~target_pid:session.Smod.handle_pid with
      | () -> ()
      | exception Errno.Error (Errno.EPERM, _) -> denied := true);
  Alcotest.(check bool) "EPERM" true !denied


(* ------------------------- fast path (section 5) -------------------- *)

let measure_calls smod m conn n =
  let clock = M.clock m in
  ignore (Stub.call conn ~func:"test_incr" [| 0 |]);
  ignore smod;
  let t0 = Smod_sim.Clock.now_cycles clock in
  for i = 1 to n do
    ignore (Stub.call conn ~func:"test_incr" [| i |])
  done;
  Smod_sim.Clock.elapsed_us clock ~since:t0 /. float_of_int n

let test_fast_path_same_results () =
  let m, smod, _ = setup () in
  Smod.set_call_fast_path smod true;
  let r = ref 0 in
  in_client m smod (fun _p conn -> r := Stub.call conn ~func:"test_incr" [| 41 |]);
  Alcotest.(check int) "unchanged semantics" 42 !r

let test_fast_path_is_cheaper () =
  let slow =
    let m, smod, _ = setup () in
    let v = ref 0.0 in
    in_client m smod (fun _p conn -> v := measure_calls smod m conn 500);
    !v
  in
  let fast =
    let m, smod, _ = setup () in
    Smod.set_call_fast_path smod true;
    let v = ref 0.0 in
    in_client m smod (fun _p conn -> v := measure_calls smod m conn 500);
    !v
  in
  Alcotest.(check bool)
    (Printf.sprintf "fast %.3f < slow %.3f" fast slow)
    true (fast < slow)

let test_fast_path_does_not_bypass_quota () =
  (* Stateful policies must still be evaluated per call. *)
  let m, smod, _ = setup ~policy:(Policy.Call_quota 1) () in
  Smod.set_call_fast_path smod true;
  let denied = ref false in
  in_client m smod (fun _p conn ->
      ignore (Stub.call conn ~func:"test_incr" [| 1 |]);
      match Stub.call conn ~func:"test_incr" [| 2 |] with
      | _ -> ()
      | exception Errno.Error (Errno.EACCES, _) -> denied := true);
  Alcotest.(check bool) "quota still enforced" true !denied

let test_fast_path_still_validates_func_id () =
  let m, smod, _ = setup () in
  Smod.set_call_fast_path smod true;
  let rejected = ref false in
  in_client m smod (fun _p conn ->
      match Stub.call_id conn ~func_id:99 [||] with
      | _ -> ()
      | exception Errno.Error (Errno.EINVAL, _) -> rejected := true);
  Alcotest.(check bool) "bad funcID still EINVAL" true !rejected

(* ----------------------- multiple module versions ------------------- *)

let versioned_image v result =
  let b = Smof.Builder.create ~name:"vermod" ~version:v in
  ignore
    (Smof.Builder.add_function b ~name:"which"
       ~code:(Smod_svm.Asm.assemble (Printf.sprintf "push %d\nret" result))
       ());
  Smof.Builder.finish b

let test_versions_side_by_side () =
  (* Figure 4's sys_smod_add comment: "allows multiple versions". *)
  let m = M.create ~jitter:0.0 () in
  let smod = Smod.install m () in
  ignore (Smod.register smod ~image:(versioned_image 1 111) ());
  ignore (Smod.register smod ~image:(versioned_image 2 222) ());
  let got = ref [] in
  let client v =
    ignore
      (M.spawn m ~name:(Printf.sprintf "client-v%d" v) (fun p ->
           Crt0.run_client smod p ~module_name:"vermod" ~version:v ~credential:(cred "x")
             (fun conn ->
               (* sequence the blocking call before reading !got: both
                  clients interleave through this closure *)
               let answer = Stub.call conn ~func:"which" [||] in
               got := (v, answer) :: !got)))
  in
  client 1;
  client 2;
  M.run m;
  Alcotest.(check (list (pair int int))) "each version answers"
    [ (1, 111); (2, 222) ]
    (List.sort compare !got)

(* ----------------------------- wire codecs -------------------------- *)

let test_wire_request_roundtrip () =
  let r = { Wire.func_id = 7; args_base = 0xBFBF0000; client_sp = 1; client_fp = 2 } in
  Alcotest.(check bool) "roundtrip" true (Wire.request_of_bytes (Wire.request_to_bytes r) = r)

let test_wire_reply_roundtrip () =
  let r = { Wire.status = 4; retval = 0xFFFFFFFF } in
  Alcotest.(check bool) "roundtrip" true (Wire.reply_of_bytes (Wire.reply_to_bytes r) = r)

let test_wire_descriptor_roundtrip () =
  let d =
    {
      Wire.module_name = "seclibc";
      module_version = 3;
      credential = Bytes.of_string "principal\nassertions";
    }
  in
  let d2 = Wire.descriptor_of_bytes (Wire.descriptor_to_bytes d) in
  Alcotest.(check string) "name" d.Wire.module_name d2.Wire.module_name;
  Alcotest.(check int) "version" d.Wire.module_version d2.Wire.module_version;
  Alcotest.(check bytes) "credential" d.Wire.credential d2.Wire.credential

let test_wire_descriptor_truncated () =
  let full = Wire.descriptor_to_bytes
      { Wire.module_name = "m"; module_version = 1; credential = Bytes.of_string "c" }
  in
  Alcotest.(check bool) "truncation rejected" true
    (match Wire.descriptor_of_bytes (Bytes.sub full 0 (Bytes.length full - 1)) with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_wire_handle_info_roundtrip () =
  let h = { Wire.m_id = 1; handle_pid = 2; req_qid = 3; rep_qid = 4 } in
  Alcotest.(check bool) "roundtrip" true
    (Wire.handle_info_of_bytes (Wire.handle_info_to_bytes h) = h)

let prop_wire_request =
  QCheck.Test.make ~name:"wire request roundtrip" ~count:200
    QCheck.(quad (int_bound 0xFFFF) (int_bound 0xFFFFFF) (int_bound 0xFFFFFF) (int_bound 0xFFFFFF))
    (fun (a, b, c, d) ->
      let r = { Wire.func_id = a; args_base = b; client_sp = c; client_fp = d } in
      Wire.request_of_bytes (Wire.request_to_bytes r) = r)

(* ------------------------------ toolchain --------------------------- *)

let test_toolchain_scan_matches_symbols () =
  let image = test_image () in
  Alcotest.(check (list string)) "objdump|grep ' F ' pipeline"
    [ "test_incr"; "add2"; "crashy" ]
    (Toolchain.scan_functions image)

let test_toolchain_stub_table_matches_kernel_ids () =
  let _, _, entry = setup () in
  List.iter
    (fun (name, id) ->
      Alcotest.(check (option int)) name (Some id) (Registry.func_id entry name))
    (Toolchain.stub_table entry.Registry.image)

let test_toolchain_stub_source () =
  let src = Toolchain.stub_source (test_image ()) in
  let contains needle =
    let n = String.length src and m = String.length needle in
    let rec scan i = i + m <= n && (String.sub src i m = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "one stub per function" true
    (contains "SMOD_client_test_incr:" && contains "SMOD_client_add2:");
  Alcotest.(check bool) "traps into 307" true (contains "int     $0x80")

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "secmodule"
    [
      ( "registry",
        [
          tc "add/find" test_registry_add_find;
          tc "collision" test_registry_collision;
          tc "func ids" test_registry_func_ids;
          tc "encrypted needs key" test_registry_encrypted_needs_key;
          tc "remove" test_registry_remove;
        ] );
      ( "credentials",
        [ tc "roundtrip+signatures" test_credential_roundtrip; tc "malformed" test_credential_malformed ]
      );
      ( "policy",
        [
          tc "always allow" test_policy_always_allow;
          tc "quota counts down" test_policy_quota_counts_down;
          tc "rate limit window" test_policy_rate_limit_window;
          tc "time window" test_policy_time_window;
          tc "all-of" test_policy_all_of;
          tc "keynote attrs" test_policy_keynote_attrs;
        ] );
      ( "sessions (Fig 1)",
        [
          tc "basic call" test_session_basic_call;
          tc "multiple args" test_session_multiple_args;
          tc "unknown module" test_session_unknown_module;
          tc "wrong version" test_session_wrong_version;
          tc "second session rejected" test_second_session_rejected;
          tc "handshake trace order" test_handshake_trace_order;
          tc "roles and flags" test_session_roles_and_flags;
        ] );
      ( "address space (Fig 2)",
        [
          tc "shared range + private segments" test_layout_shared_range;
          tc "secret unreachable" test_client_cannot_read_secret_segment;
          tc "module text unreachable" test_client_cannot_read_module_text;
        ] );
      ( "dispatch (Fig 3)",
        [
          tc "stack word choreography" test_stack_choreography_words;
          tc "args via shared stack" test_args_read_from_shared_stack;
          tc "unknown function" test_unknown_function_rejected;
          tc "module fault -> EFAULT" test_module_fault_becomes_efault;
        ] );
      ( "policy enforcement",
        [
          tc "quota per call" test_quota_enforced_per_call;
          tc "keynote gates session" test_keynote_policy_gates_session;
          tc "forged signature" test_forged_signature_rejected;
        ] );
      ( "text protection (4.1)",
        [
          tc "encrypted module executes" test_encrypted_module_executes;
          tc "registered image is ciphertext" test_registered_image_is_ciphertext;
          tc "tamper setup" test_tampered_handle_text_detected;
          tc "native integrity check" test_native_integrity_check;
          tc "unbound native" test_unbound_native_enosys;
          tc "unmap-only removes plain copy" test_unmap_only_removes_plain_library;
        ] );
      ( "syscalls (Fig 4)",
        [
          tc "smod_find" test_sys_find_via_trap;
          tc "smod_add needs root" test_sys_add_requires_root;
          tc "smod_add as root" test_sys_add_as_root;
          tc "smod_remove admin credential" test_sys_remove_admin_credential;
          tc "session_info handle-only" test_session_info_only_for_handles;
          tc "smod_call without session" test_call_without_session;
        ] );
      ( "special functions (4.3)",
        [
          tc "getpid reports client" test_getpid_via_kernel_for_handle;
          tc "execve detaches" test_execve_detaches_session;
          tc "client exit kills handle" test_client_exit_kills_handle;
          tc "fork makes fresh handle" test_smod_fork_gives_child_fresh_session;
          tc "signals redirected" test_signal_to_handle_redirected;
          tc "wait skips handles" test_special_wait_skips_handles;
        ] );
      ( "linking (4.1/4.2)",
        [
          tc "cross-function calls" test_cross_function_call_through_session;
          tc "cross-function calls, encrypted" test_cross_function_call_through_encrypted_session;
          tc "unknown callee rejected" test_assemble_module_rejects_unknown_target;
          tc "patched operand correctness" test_linked_call_lands_at_symbol;
        ] );
      ( "fast path (section 5)",
        [
          tc "same results" test_fast_path_same_results;
          tc "cheaper" test_fast_path_is_cheaper;
          tc "quota not bypassed" test_fast_path_does_not_bypass_quota;
          tc "funcID still validated" test_fast_path_still_validates_func_id;
        ] );
      ( "versioning",
        [ tc "side-by-side versions" test_versions_side_by_side ] );
      ( "wire",
        [
          tc "request roundtrip" test_wire_request_roundtrip;
          tc "reply roundtrip" test_wire_reply_roundtrip;
          tc "descriptor roundtrip" test_wire_descriptor_roundtrip;
          tc "descriptor truncated" test_wire_descriptor_truncated;
          tc "handle_info roundtrip" test_wire_handle_info_roundtrip;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_wire_request ] );
      ( "toolchain (4.2)",
        [
          tc "scan_functions pipeline" test_toolchain_scan_matches_symbols;
          tc "stub table matches kernel" test_toolchain_stub_table_matches_kernel_ids;
          tc "stub source" test_toolchain_stub_source;
        ] );
      ( "failure injection",
        [
          tc "handle death between calls" test_handle_death_between_calls;
          tc "handle death mid-call" test_handle_death_mid_call;
          tc "module removal mid-session" test_module_remove_mid_session;
        ] );
      ( "protection rings (section 2)",
        [
          tc "handle in ring 1" test_handle_runs_in_ring_1;
          tc "client cannot kill handle" test_client_cannot_kill_its_handle;
          tc "ring ordering" test_ring_ordering_general;
        ] );
      ( "accounting (section 1)",
        [
          tc "per-session counters" test_session_accounting;
          tc "handle time scales" test_accounting_handle_time_scales;
        ] );
      ( "attacks (4.4 / 3.1)",
        [
          tc "TOCTOU succeeds unmitigated" test_toctou_unmitigated_succeeds;
          tc "dequeue mitigation" test_toctou_dequeue_defeats;
          tc "unmap mitigation" test_toctou_unmap_defeats;
          tc "handle ptrace denied" test_handle_cannot_be_ptraced;
        ] );
    ]
