(* Tests for Smod_svm: ISA encode/decode, assembler, disassembler and the
   interpreter (including memory protection of instruction fetch). *)

module Isa = Smod_svm.Isa
module Asm = Smod_svm.Asm
module Interp = Smod_svm.Interp
module Aspace = Smod_vmem.Aspace
module Layout = Smod_vmem.Layout
module Prot = Smod_vmem.Prot
module Phys = Smod_vmem.Phys
module Clock = Smod_sim.Clock

let code_base = 0x0010_0000
let args_base = Layout.data_base + 0x100

let setup () =
  let phys = Phys.create () in
  let clock = Clock.create ~jitter:0.0 () in
  let a = Aspace.create ~phys ~clock ~name:"svm" in
  Aspace.add_entry a ~start_addr:code_base ~size:(4 * Layout.page_size) ~prot:Prot.rwx
    ~kind:Aspace.Text ~name:"code";
  Aspace.add_entry a ~start_addr:Layout.data_base ~size:(16 * Layout.page_size) ~prot:Prot.rw
    ~kind:Aspace.Data ~name:"data";
  (a, clock)

let run_source ?(args = [||]) ?syscall source =
  let a, clock = setup () in
  let code = Asm.assemble source in
  Aspace.write_bytes a ~addr:code_base code;
  Array.iteri (fun i v -> Aspace.write_word a ~addr:(args_base + (4 * i)) v) args;
  let env = Interp.make_env ~aspace:a ~clock ?syscall () in
  Interp.run env ~code_base ~code_len:(Bytes.length code) ~args_base ()

(* --------------------------- ISA codec ------------------------------ *)

let all_instrs =
  [
    Isa.Nop; Isa.Push 42; Isa.Push 0xFFFFFFFF; Isa.Loadarg 3; Isa.Loadw; Isa.Storew;
    Isa.Loadb; Isa.Storeb; Isa.Add; Isa.Sub; Isa.Mul; Isa.Divu; Isa.And; Isa.Or; Isa.Xor;
    Isa.Shl; Isa.Shr; Isa.Eq; Isa.Lt; Isa.Ltu; Isa.Jmp 5; Isa.Jz (-3); Isa.Jnz 32767;
    Isa.Dup; Isa.Drop; Isa.Swap; Isa.Localget 7; Isa.Localset 15; Isa.Sys (307, 4); Isa.Ret;
  ]

let test_isa_roundtrip () =
  let code = Isa.encode all_instrs in
  let decoded = List.map snd (Asm.disassemble code) in
  Alcotest.(check int) "count" (List.length all_instrs) (List.length decoded);
  List.iter2
    (fun want got ->
      Alcotest.(check string) "instr"
        (Format.asprintf "%a" Isa.pp want)
        (Format.asprintf "%a" Isa.pp got))
    all_instrs decoded

let test_isa_negative_jump () =
  let code = Isa.encode [ Isa.Jmp (-100) ] in
  match Isa.decode_at code 0 with
  | Isa.Jmp d, 3 -> Alcotest.(check int) "displacement" (-100) d
  | _ -> Alcotest.fail "bad decode"

let test_isa_bad_opcode () =
  Alcotest.(check bool) "raises" true
    (match Isa.decode_at (Bytes.make 1 '\xee') 0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_isa_truncated () =
  let code = Bytes.sub (Isa.encode [ Isa.Push 7 ]) 0 3 in
  Alcotest.(check bool) "raises" true
    (match Isa.decode_at code 0 with _ -> false | exception Invalid_argument _ -> true)

let prop_isa_roundtrip =
  let gen_instr =
    QCheck.Gen.(
      oneof
        [
          return Isa.Nop;
          map (fun v -> Isa.Push v) (int_bound 0xFFFFFF);
          map (fun v -> Isa.Loadarg (v land 0xff)) (int_bound 255);
          return Isa.Add;
          return Isa.Loadw;
          return Isa.Storew;
          map (fun v -> Isa.Jmp (v - 1000)) (int_bound 2000);
          map (fun v -> Isa.Localget (v land 15)) (int_bound 15);
          map2 (fun a b -> Isa.Sys (a, b land 7)) (int_bound 400) (int_bound 7);
          return Isa.Ret;
        ])
  in
  QCheck.Test.make ~name:"isa encode/decode roundtrip" ~count:300
    (QCheck.make QCheck.Gen.(list_size (1 -- 40) gen_instr))
    (fun instrs ->
      let code = Isa.encode instrs in
      let decoded = List.map snd (Asm.disassemble code) in
      decoded = instrs)

(* --------------------------- assembler ------------------------------ *)

let test_asm_basic () = Alcotest.(check int) "1 + 2" 3 (run_source "push 1\npush 2\nadd\nret")

let test_asm_comments_and_blank_lines () =
  Alcotest.(check int) "comments ignored" 5
    (run_source "; leading comment\n\npush 5 ; trailing\n\nret\n")

let test_asm_labels_forward_and_back () =
  (* Count down from 3: tests both a backward and a forward reference. *)
  let source =
    "push 3\nlocalset 0\nloop:\nlocalget 0\njz done\nlocalget 0\npush 1\nsub\nlocalset 0\n\
     jmp loop\ndone:\npush 99\nret"
  in
  Alcotest.(check int) "loop terminates" 99 (run_source source)

let test_asm_duplicate_label () =
  Alcotest.(check bool) "duplicate rejected" true
    (match Asm.assemble "x:\nnop\nx:\nret" with
    | _ -> false
    | exception Asm.Error { message; _ } ->
        String.length message > 0)

let test_asm_undefined_label () =
  Alcotest.(check bool) "undefined rejected" true
    (match Asm.assemble "jmp nowhere\nret" with
    | _ -> false
    | exception Asm.Error _ -> true)

let test_asm_unknown_mnemonic () =
  Alcotest.(check bool) "unknown mnemonic" true
    (match Asm.assemble "frobnicate 3" with
    | _ -> false
    | exception Asm.Error { line = 1; _ } -> true)

let test_asm_error_line_number () =
  Alcotest.(check bool) "line number points at offender" true
    (match Asm.assemble "nop\nnop\nbadop\n" with
    | _ -> false
    | exception Asm.Error { line = 3; _ } -> true)

let contains_substring haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec scan i = i + m <= n && (String.sub haystack i m = needle || scan (i + 1)) in
  scan 0

let test_disassemble_listing () =
  let code = Asm.assemble "push 7\nret" in
  let listing = Format.asprintf "%a" Asm.pp_listing code in
  Alcotest.(check bool) "mentions push 7" true (contains_substring listing "push 7");
  Alcotest.(check bool) "mentions ret" true (contains_substring listing "ret")

(* ------------------------- interpreter ------------------------------ *)

let test_arith () =
  Alcotest.(check int) "sub" 38 (run_source "push 42\npush 4\nsub\nret");
  Alcotest.(check int) "mul" 84 (run_source "push 42\npush 2\nmul\nret");
  Alcotest.(check int) "divu" 21 (run_source "push 42\npush 2\ndivu\nret");
  Alcotest.(check int) "and" 8 (run_source "push 12\npush 10\nand\nret");
  Alcotest.(check int) "or" 14 (run_source "push 12\npush 10\nor\nret");
  Alcotest.(check int) "xor" 6 (run_source "push 12\npush 10\nxor\nret");
  Alcotest.(check int) "shl" 48 (run_source "push 12\npush 2\nshl\nret");
  Alcotest.(check int) "shr" 3 (run_source "push 12\npush 2\nshr\nret")

let test_arith_wraps_32bit () =
  Alcotest.(check int) "add wraps" 0
    (run_source "push 4294967295\npush 1\nadd\nret");
  Alcotest.(check int) "sub wraps" 0xFFFFFFFF (run_source "push 0\npush 1\nsub\nret")

let test_compare () =
  Alcotest.(check int) "eq true" 1 (run_source "push 5\npush 5\neq\nret");
  Alcotest.(check int) "eq false" 0 (run_source "push 5\npush 6\neq\nret");
  Alcotest.(check int) "ltu" 1 (run_source "push 3\npush 5\nltu\nret");
  (* signed: -1 < 1 even though unsigned 0xFFFFFFFF > 1 *)
  Alcotest.(check int) "lt signed" 1 (run_source "push 4294967295\npush 1\nlt\nret");
  Alcotest.(check int) "ltu unsigned" 0 (run_source "push 4294967295\npush 1\nltu\nret")

let test_stack_ops () =
  Alcotest.(check int) "dup" 4 (run_source "push 2\ndup\nadd\nret");
  Alcotest.(check int) "swap" 1 (run_source "push 3\npush 4\nswap\nsub\nret");
  Alcotest.(check int) "drop" 7 (run_source "push 7\npush 9\ndrop\nret")

let test_locals () =
  Alcotest.(check int) "localget/set" 10
    (run_source "push 10\nlocalset 5\npush 0\ndrop\nlocalget 5\nret")

let test_loadarg () =
  Alcotest.(check int) "args" 30 (run_source ~args:[| 10; 20 |] "loadarg 0\nloadarg 1\nadd\nret")

let test_memory_access () =
  let addr = Layout.data_base + 0x500 in
  Alcotest.(check int) "storew/loadw" 777
    (run_source (Printf.sprintf "push 777\npush %d\nstorew\npush %d\nloadw\nret" addr addr));
  Alcotest.(check int) "storeb/loadb truncates" 0xcd
    (run_source (Printf.sprintf "push 456141\npush %d\nstoreb\npush %d\nloadb\nret" addr addr))

let test_syscall_hook () =
  let calls = ref [] in
  let syscall ~nr args =
    calls := (nr, Array.to_list args) :: !calls;
    nr + Array.fold_left ( + ) 0 args
  in
  let v = run_source ~syscall "push 10\npush 20\nsys 300 2\nret" in
  Alcotest.(check int) "result" 330 v;
  Alcotest.(check (list (pair int (list int)))) "args in order" [ (300, [ 10; 20 ]) ] !calls

let test_syscall_without_hook_faults () =
  Alcotest.(check bool) "faults" true
    (match run_source "sys 20 0\nret" with
    | _ -> false
    | exception Interp.Fault _ -> true)

let test_stack_underflow () =
  Alcotest.(check bool) "underflow" true
    (match run_source "add\nret" with _ -> false | exception Interp.Fault _ -> true)

let test_division_by_zero () =
  Alcotest.(check bool) "div0" true
    (match run_source "push 1\npush 0\ndivu\nret" with
    | _ -> false
    | exception Interp.Fault _ -> true)

let test_fuel_exhaustion () =
  let a, clock = setup () in
  let code = Asm.assemble "spin:\njmp spin" in
  Aspace.write_bytes a ~addr:code_base code;
  let env = Interp.make_env ~aspace:a ~clock ~fuel:1000 () in
  Alcotest.(check bool) "out of fuel" true
    (match Interp.run env ~code_base ~code_len:(Bytes.length code) ~args_base () with
    | _ -> false
    | exception Interp.Fault { reason; _ } -> reason = "out of fuel")

let test_pc_out_of_range () =
  Alcotest.(check bool) "jump past end" true
    (match run_source "jmp over\nover:" with
    | _ -> false
    | exception Interp.Fault _ -> true)

let test_exec_protection () =
  (* Code placed in a non-executable region must not run. *)
  let a, clock = setup () in
  let code = Asm.assemble "push 1\nret" in
  let data_code = Layout.data_base + 0x1000 in
  Aspace.write_bytes a ~addr:data_code code;
  let env = Interp.make_env ~aspace:a ~clock () in
  Alcotest.(check bool) "prot violation" true
    (match Interp.run env ~code_base:data_code ~code_len:(Bytes.length code) ~args_base () with
    | _ -> false
    | exception Aspace.Prot_violation _ -> true)

let test_unmapped_code_segv () =
  let a, clock = setup () in
  let env = Interp.make_env ~aspace:a ~clock () in
  Alcotest.(check bool) "segv" true
    (match Interp.run env ~code_base:0x7000_0000 ~code_len:16 ~args_base () with
    | _ -> false
    | exception Aspace.Segv _ -> true)

let test_instruction_charging () =
  let a, clock = setup () in
  let code = Asm.assemble "push 1\npush 2\nadd\nret" in
  Aspace.write_bytes a ~addr:code_base code;
  let env = Interp.make_env ~aspace:a ~clock () in
  ignore (Interp.run env ~code_base ~code_len:(Bytes.length code) ~args_base ());
  Alcotest.(check int) "4 instructions executed" 4 (Interp.instructions_executed env)

(* A bigger program: iterative fibonacci. *)
let fib_source =
  "loadarg 0\nlocalset 0\npush 0\nlocalset 1\npush 1\nlocalset 2\nloop:\nlocalget 0\n\
   jz done\nlocalget 1\nlocalget 2\nadd\nlocalget 2\nlocalset 1\nlocalset 2\nlocalget 0\n\
   push 1\nsub\nlocalset 0\njmp loop\ndone:\nlocalget 1\nret"

let test_fibonacci () =
  List.iter
    (fun (n, want) -> Alcotest.(check int) (Printf.sprintf "fib %d" n) want (run_source ~args:[| n |] fib_source))
    [ (0, 0); (1, 1); (2, 1); (3, 2); (10, 55); (20, 6765) ]


(* ------------------------- call / ret nesting ----------------------- *)

let test_call_and_return () =
  (* main: push 7; call helper; ret     helper (at +16): dup; mul; ret *)
  let a, clock = setup () in
  let code =
    Isa.encode
      [
        Isa.Push 7; Isa.Call (code_base + 16); Isa.Ret;
        Isa.Nop; Isa.Nop; Isa.Nop; Isa.Nop; Isa.Nop;
        Isa.Dup; Isa.Mul; Isa.Ret;
      ]
  in
  Aspace.write_bytes a ~addr:code_base code;
  let env = Interp.make_env ~aspace:a ~clock () in
  Alcotest.(check int) "7^2 via helper" 49
    (Interp.run env ~code_base ~code_len:(Bytes.length code) ~args_base ())

let test_call_nested_two_levels () =
  (* main calls f at +16, f calls g at +32: ((3+1)*2) *)
  let a, clock = setup () in
  let code =
    Isa.encode
      [
        Isa.Push 3; Isa.Call (code_base + 16); Isa.Ret;                    (* 0..10 *)
        Isa.Nop; Isa.Nop; Isa.Nop; Isa.Nop; Isa.Nop;                       (* 11..15 *)
        Isa.Call (code_base + 32); Isa.Push 2; Isa.Mul; Isa.Ret;           (* 16..27 *)
        Isa.Nop; Isa.Nop; Isa.Nop; Isa.Nop;                                (* 28..31 *)
        Isa.Push 1; Isa.Add; Isa.Ret;                                      (* 32.. *)
      ]
  in
  Aspace.write_bytes a ~addr:code_base code;
  let env = Interp.make_env ~aspace:a ~clock () in
  Alcotest.(check int) "nested calls" 8
    (Interp.run env ~code_base ~code_len:(Bytes.length code) ~args_base ())

let test_call_target_outside_module () =
  let a, clock = setup () in
  let code = Isa.encode [ Isa.Call 0x7000_0000; Isa.Ret ] in
  Aspace.write_bytes a ~addr:code_base code;
  let env = Interp.make_env ~aspace:a ~clock () in
  Alcotest.(check bool) "fault" true
    (match Interp.run env ~code_base ~code_len:(Bytes.length code) ~args_base () with
    | _ -> false
    | exception Interp.Fault { reason; _ } ->
        String.length reason > 0)

let test_call_depth_overflow () =
  let a, clock = setup () in
  let code = Isa.encode [ Isa.Call code_base; Isa.Ret ] in
  Aspace.write_bytes a ~addr:code_base code;
  let env = Interp.make_env ~aspace:a ~clock () in
  Alcotest.(check bool) "overflow" true
    (match Interp.run env ~code_base ~code_len:(Bytes.length code) ~args_base () with
    | _ -> false
    | exception Interp.Fault { reason = "call depth overflow"; _ } -> true
    | exception Interp.Fault _ -> false)

let test_entry_offset () =
  (* Two functions in one image; run the second via ~entry. *)
  let a, clock = setup () in
  let code = Isa.encode [ Isa.Push 1; Isa.Ret; Isa.Push 2; Isa.Ret ] in
  Aspace.write_bytes a ~addr:code_base code;
  let env = Interp.make_env ~aspace:a ~clock () in
  Alcotest.(check int) "entry 0" 1
    (Interp.run env ~code_base ~code_len:(Bytes.length code) ~args_base ());
  Alcotest.(check int) "entry 6" 2
    (Interp.run env ~code_base ~code_len:(Bytes.length code) ~entry:6 ~args_base ())

let test_entry_out_of_range () =
  let a, clock = setup () in
  let code = Isa.encode [ Isa.Ret ] in
  Aspace.write_bytes a ~addr:code_base code;
  let env = Interp.make_env ~aspace:a ~clock () in
  Alcotest.(check bool) "bad entry" true
    (match Interp.run env ~code_base ~code_len:(Bytes.length code) ~entry:99 ~args_base () with
    | _ -> false
    | exception Interp.Fault _ -> true)

let test_asm_call_requires_relocs () =
  Alcotest.(check bool) "assemble rejects call" true
    (match Asm.assemble "call helper\nret" with
    | _ -> false
    | exception Asm.Error _ -> true);
  let code, relocs = Asm.assemble_function "push 1\ncall helper\nret" in
  Alcotest.(check int) "one reloc" 1 (List.length relocs);
  (match relocs with
  | [ (off, "helper") ] -> Alcotest.(check int) "operand offset" 6 off
  | _ -> Alcotest.fail "reloc shape");
  Alcotest.(check int) "encoded size" 11 (Bytes.length code)


(* ---------------- reference-semantics property ----------------------- *)

(* Random straight-line programs (no jumps/memory/syscalls) evaluated by
   the interpreter must agree with a direct OCaml evaluation of the same
   stack program. *)
let reference_eval instrs args =
  let mask = 0xFFFFFFFF in
  let to_signed v = if v land 0x80000000 <> 0 then v - 0x100000000 else v in
  let stack = ref [] in
  let locals = Array.make 16 0 in
  let push v = stack := v land mask :: !stack in
  let pop () = match !stack with v :: r -> stack := r; v | [] -> raise Exit in
  let binop f = let b = pop () in let a = pop () in push (f a b) in
  try
    List.iter
      (fun i ->
        match i with
        | Isa.Nop -> ()
        | Isa.Push v -> push v
        | Isa.Loadarg k -> push (if k < Array.length args then args.(k) else raise Exit)
        | Isa.Add -> binop ( + )
        | Isa.Sub -> binop ( - )
        | Isa.Mul -> binop ( * )
        | Isa.And -> binop ( land )
        | Isa.Or -> binop ( lor )
        | Isa.Xor -> binop ( lxor )
        | Isa.Shl -> binop (fun a b -> a lsl (b land 31))
        | Isa.Shr -> binop (fun a b -> a lsr (b land 31))
        | Isa.Eq -> binop (fun a b -> if a = b then 1 else 0)
        | Isa.Lt -> binop (fun a b -> if to_signed a < to_signed b then 1 else 0)
        | Isa.Ltu -> binop (fun a b -> if a < b then 1 else 0)
        | Isa.Dup -> (let v = pop () in push v; push v)
        | Isa.Drop -> ignore (pop ())
        | Isa.Swap -> (let b = pop () in let a = pop () in push b; push a)
        | Isa.Localget k -> push locals.(k)
        | Isa.Localset k -> locals.(k) <- pop ()
        | _ -> raise Exit)
      instrs;
    Some (pop ())
  with Exit -> None

let gen_straightline =
  (* Generate programs that track stack depth so they never underflow. *)
  let open QCheck.Gen in
  let step depth =
    if depth = 0 then
      oneof [ map (fun v -> (Isa.Push v, 1)) (int_bound 0xFFFF);
              map (fun k -> (Isa.Loadarg (k land 1), 1)) (int_bound 1) ]
    else if depth = 1 then
      oneof
        [ map (fun v -> (Isa.Push v, depth + 1)) (int_bound 0xFFFF);
          return (Isa.Dup, depth + 1);
          map (fun k -> (Isa.Localget (k land 7), depth + 1)) (int_bound 7);
          map (fun k -> (Isa.Localset (k land 7), depth - 1)) (int_bound 7) ]
    else
      oneof
        [ map (fun v -> (Isa.Push v, depth + 1)) (int_bound 0xFFFF);
          return (Isa.Add, depth - 1); return (Isa.Sub, depth - 1);
          return (Isa.Mul, depth - 1); return (Isa.And, depth - 1);
          return (Isa.Or, depth - 1); return (Isa.Xor, depth - 1);
          return (Isa.Eq, depth - 1); return (Isa.Lt, depth - 1);
          return (Isa.Ltu, depth - 1); return (Isa.Dup, depth + 1);
          return (Isa.Drop, depth - 1); return (Isa.Swap, depth) ]
  in
  let rec build n depth acc =
    if n = 0 then
      (* drain to exactly one value then return *)
      let rec drain depth acc =
        if depth = 0 then return (List.rev (Isa.Ret :: Isa.Push 0 :: acc))
        else if depth = 1 then return (List.rev (Isa.Ret :: acc))
        else drain (depth - 1) (Isa.Drop :: acc)
      in
      drain depth acc
    else step depth >>= fun (i, depth') -> build (n - 1) depth' (i :: acc)
  in
  (0 -- 40) >>= fun n -> build n 0 []

let prop_interpreter_matches_reference =
  QCheck.Test.make ~name:"interpreter agrees with reference semantics" ~count:300
    (QCheck.make gen_straightline) (fun instrs ->
      let args = [| 12345; 67890 |] in
      let expected = reference_eval (List.filter (fun i -> i <> Isa.Ret) instrs) args in
      match expected with
      | None -> QCheck.assume_fail ()
      | Some want ->
          let a, clock = setup () in
          let code = Isa.encode instrs in
          Aspace.write_bytes a ~addr:code_base code;
          Array.iteri (fun i v -> Aspace.write_word a ~addr:(args_base + (4 * i)) v) args;
          let env = Interp.make_env ~aspace:a ~clock () in
          Interp.run env ~code_base ~code_len:(Bytes.length code) ~args_base () = want)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "svm"
    [
      ( "isa",
        [
          tc "roundtrip all instrs" test_isa_roundtrip;
          tc "negative jumps" test_isa_negative_jump;
          tc "bad opcode" test_isa_bad_opcode;
          tc "truncated operand" test_isa_truncated;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_isa_roundtrip ] );
      ( "assembler",
        [
          tc "basic" test_asm_basic;
          tc "comments/blank lines" test_asm_comments_and_blank_lines;
          tc "labels fwd+back" test_asm_labels_forward_and_back;
          tc "duplicate label" test_asm_duplicate_label;
          tc "undefined label" test_asm_undefined_label;
          tc "unknown mnemonic" test_asm_unknown_mnemonic;
          tc "error line numbers" test_asm_error_line_number;
          tc "disassembler listing" test_disassemble_listing;
        ] );
      ( "interpreter",
        [
          tc "arithmetic" test_arith;
          tc "32-bit wraparound" test_arith_wraps_32bit;
          tc "comparisons" test_compare;
          tc "stack ops" test_stack_ops;
          tc "locals" test_locals;
          tc "arguments" test_loadarg;
          tc "memory load/store" test_memory_access;
          tc "syscall hook" test_syscall_hook;
          tc "syscall without hook" test_syscall_without_hook_faults;
          tc "stack underflow" test_stack_underflow;
          tc "division by zero" test_division_by_zero;
          tc "fuel exhaustion" test_fuel_exhaustion;
          tc "pc out of range" test_pc_out_of_range;
          tc "exec protection" test_exec_protection;
          tc "unmapped code" test_unmapped_code_segv;
          tc "instruction accounting" test_instruction_charging;
          tc "fibonacci" test_fibonacci;
        ] );
      ( "call/ret",
        [
          tc "call and return" test_call_and_return;
          tc "nested two levels" test_call_nested_two_levels;
          tc "target outside module" test_call_target_outside_module;
          tc "depth overflow" test_call_depth_overflow;
          tc "entry offsets" test_entry_offset;
          tc "entry out of range" test_entry_out_of_range;
          tc "asm call needs relocs" test_asm_call_requires_relocs;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_interpreter_matches_reference ] );
    ]
