(* Tests for Smod_kern: the coroutine scheduler, process lifecycle,
   SysV message queues, signals, ptrace restrictions and syscall
   dispatch. *)

module M = Smod_kern.Machine
module Proc = Smod_kern.Proc
module Sched = Smod_kern.Sched
module Errno = Smod_kern.Errno
module Signal = Smod_kern.Signal
module Sysno = Smod_kern.Sysno
module Clock = Smod_sim.Clock

let mk () = M.create ~jitter:0.0 ()

(* ---------------------------- lifecycle ---------------------------- *)

let test_spawn_runs_body () =
  let m = mk () in
  let ran = ref false in
  ignore (M.spawn m ~name:"p" (fun _ -> ran := true));
  M.run m;
  Alcotest.(check bool) "body ran" true !ran

let test_spawn_order_fifo () =
  let m = mk () in
  let order = ref [] in
  ignore (M.spawn m ~name:"a" (fun _ -> order := "a" :: !order));
  ignore (M.spawn m ~name:"b" (fun _ -> order := "b" :: !order));
  ignore (M.spawn m ~name:"c" (fun _ -> order := "c" :: !order));
  M.run m;
  Alcotest.(check (list string)) "fifo" [ "a"; "b"; "c" ] (List.rev !order)

let test_exit_status () =
  let m = mk () in
  let p = M.spawn m ~name:"p" (fun p -> M.sys_exit m p 3) in
  M.run m;
  Alcotest.(check bool) "zombie exited 3" true
    (match p.Proc.state with Proc.Zombie (Sched.Exited 3) -> true | _ -> false)

let test_normal_return_is_exit0 () =
  let m = mk () in
  let p = M.spawn m ~name:"p" (fun _ -> ()) in
  M.run m;
  Alcotest.(check bool) "exit 0" true
    (match p.Proc.state with Proc.Zombie (Sched.Exited 0) -> true | _ -> false)

let test_yield_interleaves () =
  let m = mk () in
  let log = ref [] in
  let body tag _ =
    log := (tag ^ "1") :: !log;
    Sched.yield ();
    log := (tag ^ "2") :: !log
  in
  ignore (M.spawn m ~name:"a" (body "a"));
  ignore (M.spawn m ~name:"b" (body "b"));
  M.run m;
  Alcotest.(check (list string)) "interleaved" [ "a1"; "b1"; "a2"; "b2" ] (List.rev !log)

let test_getpid () =
  let m = mk () in
  let seen = ref 0 in
  let p = M.spawn m ~name:"p" (fun p -> seen := M.sys_getpid m p) in
  M.run m;
  Alcotest.(check int) "pid" p.Proc.pid !seen

let test_fork_and_wait () =
  let m = mk () in
  let child_pid = ref 0 and reaped = ref (Sched.Exited (-1), -1) in
  ignore
    (M.spawn m ~name:"parent" (fun p ->
         let child = M.sys_fork m p ~name:"child" ~child_body:(fun c -> M.sys_exit m c 7) in
         child_pid := child.Proc.pid;
         reaped := M.sys_wait m p));
  M.run m;
  let status, pid = !reaped in
  Alcotest.(check int) "reaped pid" !child_pid pid;
  Alcotest.(check bool) "status 7" true (status = Sched.Exited 7);
  Alcotest.(check bool) "child reaped from table" true (M.proc m !child_pid = None)

let test_fork_clones_memory () =
  let m = mk () in
  let ok = ref false in
  ignore
    (M.spawn m ~name:"parent" (fun p ->
         let addr = Smod_vmem.Layout.data_base in
         Smod_vmem.Aspace.write_word p.Proc.aspace ~addr 99;
         let _child =
           M.sys_fork m p ~name:"child" ~child_body:(fun c ->
               let v = Smod_vmem.Aspace.read_word c.Proc.aspace ~addr in
               Smod_vmem.Aspace.write_word c.Proc.aspace ~addr 100;
               M.sys_exit m c v)
         in
         let status, _ = M.sys_wait m p in
         ok :=
           status = Sched.Exited 99 && Smod_vmem.Aspace.read_word p.Proc.aspace ~addr = 99));
  M.run m;
  Alcotest.(check bool) "fork isolation" true !ok

let test_wait_no_children () =
  let m = mk () in
  let got_echild = ref false in
  ignore
    (M.spawn m ~name:"p" (fun p ->
         match M.sys_wait m p with
         | _ -> ()
         | exception Errno.Error (Errno.ECHILD, _) -> got_echild := true));
  M.run m;
  Alcotest.(check bool) "ECHILD" true !got_echild

let test_wait_blocks_until_child_exits () =
  let m = mk () in
  let order = ref [] in
  ignore
    (M.spawn m ~name:"parent" (fun p ->
         let _child =
           M.sys_fork m p ~name:"child" ~child_body:(fun c ->
               order := "child" :: !order;
               M.sys_exit m c 0)
         in
         ignore (M.sys_wait m p);
         order := "parent-after-wait" :: !order));
  M.run m;
  Alcotest.(check (list string)) "child ran before wait returned"
    [ "child"; "parent-after-wait" ] (List.rev !order)

let test_kill_blocked_process () =
  let m = mk () in
  let victim = M.spawn m ~name:"victim" (fun p ->
      let q = M.msgget m p ~key:1 in
      ignore (M.msgrcv m p ~qid:q ~mtype:1))
  in
  ignore
    (M.spawn m ~name:"killer" (fun _ -> M.kill m ~pid:victim.Proc.pid ~signal:Signal.sigkill));
  M.run m;
  Alcotest.(check bool) "victim killed" true
    (match victim.Proc.state with Proc.Zombie (Sched.Signaled 9) -> true | _ -> false)

let test_kill_ready_process () =
  let m = mk () in
  let victim = M.spawn m ~name:"victim" (fun _ -> ()) in
  ignore
    (M.spawn m ~name:"killer" (fun _ -> M.kill m ~pid:victim.Proc.pid ~signal:Signal.sigkill));
  M.run m;
  Alcotest.(check bool) "terminal state" true (Proc.is_zombie victim)

let test_pending_signal_delivery () =
  let m = mk () in
  let victim =
    M.spawn m ~name:"victim" (fun p ->
        Sched.yield ();
        Sched.yield ();
        ignore p)
  in
  ignore
    (M.spawn m ~name:"sender" (fun _ -> M.kill m ~pid:victim.Proc.pid ~signal:Signal.sigusr1));
  M.run m;
  Alcotest.(check bool) "SIGUSR1 pending" true
    (List.mem Signal.sigusr1 victim.Proc.pending_signals)

let test_sigchld_on_exit () =
  let m = mk () in
  let parent =
    M.spawn m ~name:"parent" (fun p ->
        let _ = M.sys_fork m p ~name:"c" ~child_body:(fun c -> M.sys_exit m c 0) in
        Sched.yield ())
  in
  M.run m;
  Alcotest.(check bool) "SIGCHLD pending" true
    (List.mem Signal.sigchld parent.Proc.pending_signals)

let test_kill_permission () =
  let m = mk () in
  let victim = M.spawn m ~uid:1000 ~daemon:true ~name:"victim" (fun p ->
      let q = M.msgget m p ~key:5 in
      ignore (M.msgrcv m p ~qid:q ~mtype:1))
  in
  let denied = ref false in
  ignore
    (M.spawn m ~uid:2000 ~name:"other" (fun p ->
         match M.syscall m p Sysno.kill [| victim.Proc.pid; Signal.sigkill |] with
         | _ -> ()
         | exception Errno.Error (Errno.EPERM, _) -> denied := true));
  M.run m;
  Alcotest.(check bool) "EPERM across uids" true !denied

let test_deadlock_detection () =
  let m = mk () in
  ignore
    (M.spawn m ~name:"stuck" (fun p ->
         let q = M.msgget m p ~key:9 in
         ignore (M.msgrcv m p ~qid:q ~mtype:1)));
  Alcotest.(check bool) "deadlock raised" true
    (match M.run m with () -> false | exception M.Deadlock _ -> true)

let test_daemon_allowed_to_block () =
  let m = mk () in
  ignore
    (M.spawn m ~daemon:true ~name:"daemon" (fun p ->
         let q = M.msgget m p ~key:9 in
         ignore (M.msgrcv m p ~qid:q ~mtype:1)));
  M.run m;
  Alcotest.(check bool) "no deadlock for daemons" true true

let test_crash_segv_records_core () =
  let m = mk () in
  let p =
    M.spawn m ~name:"crasher" (fun p ->
        ignore (Smod_vmem.Aspace.read_word p.Proc.aspace ~addr:0x70000000))
  in
  M.run m;
  Alcotest.(check bool) "signaled SIGSEGV" true
    (match p.Proc.state with Proc.Zombie (Sched.Signaled 11) -> true | _ -> false);
  Alcotest.(check bool) "core dumped" true p.Proc.core_dumped;
  Alcotest.(check int) "machine recorded it" 1 (List.length (M.core_dumps m))

let test_no_core_dump_flag () =
  let m = mk () in
  let p =
    M.spawn m ~name:"crasher" (fun p ->
        p.Proc.no_core_dump <- true;
        ignore (Smod_vmem.Aspace.read_word p.Proc.aspace ~addr:0x70000000))
  in
  M.run m;
  Alcotest.(check bool) "no core" false p.Proc.core_dumped;
  Alcotest.(check int) "none recorded" 0 (List.length (M.core_dumps m))

let test_suspend_resume () =
  let m = mk () in
  let log = ref [] in
  let main =
    M.spawn m ~name:"main" (fun p ->
        let sibling =
          M.spawn_thread m p ~name:"sibling" (fun _ -> log := "sibling" :: !log)
        in
        ignore sibling;
        let suspended = M.suspend_address_space m p.Proc.aspace ~except:p.Proc.pid in
        Sched.yield ();
        log := "main-after-yield" :: !log;
        M.resume_pids m suspended)
  in
  ignore main;
  M.run m;
  Alcotest.(check (list string)) "sibling deferred past resume"
    [ "main-after-yield"; "sibling" ] (List.rev !log)

let test_spawn_thread_shares_memory () =
  let m = mk () in
  let ok = ref false in
  ignore
    (M.spawn m ~name:"main" (fun p ->
         let addr = Smod_vmem.Layout.data_base in
         let _t =
           M.spawn_thread m p ~name:"t" (fun _ ->
               Smod_vmem.Aspace.write_word p.Proc.aspace ~addr 7)
         in
         Sched.yield ();
         ok := Smod_vmem.Aspace.read_word p.Proc.aspace ~addr = 7));
  M.run m;
  Alcotest.(check bool) "thread wrote shared memory" true !ok

(* ------------------------------ msgq ------------------------------- *)

let test_msgq_fifo () =
  let m = mk () in
  let got = ref [] in
  ignore
    (M.spawn m ~name:"p" (fun p ->
         let q = M.msgget m p ~key:1 in
         M.msgsnd m p ~qid:q ~mtype:1 (Bytes.of_string "a");
         M.msgsnd m p ~qid:q ~mtype:1 (Bytes.of_string "b");
         M.msgsnd m p ~qid:q ~mtype:1 (Bytes.of_string "c");
         for _ = 1 to 3 do
           let _, b = M.msgrcv m p ~qid:q ~mtype:0 in
           got := Bytes.to_string b :: !got
         done));
  M.run m;
  Alcotest.(check (list string)) "fifo" [ "a"; "b"; "c" ] (List.rev !got)

let test_msgq_type_filter () =
  let m = mk () in
  let got = ref [] in
  ignore
    (M.spawn m ~name:"p" (fun p ->
         let q = M.msgget m p ~key:1 in
         M.msgsnd m p ~qid:q ~mtype:5 (Bytes.of_string "five");
         M.msgsnd m p ~qid:q ~mtype:2 (Bytes.of_string "two");
         M.msgsnd m p ~qid:q ~mtype:5 (Bytes.of_string "five2");
         let _, b = M.msgrcv m p ~qid:q ~mtype:2 in
         got := Bytes.to_string b :: !got;
         let mt, _ = M.msgrcv m p ~qid:q ~mtype:0 in
         got := string_of_int mt :: !got));
  M.run m;
  Alcotest.(check (list string)) "type filter then head" [ "two"; "5" ] (List.rev !got)

let test_msgq_negative_mtype () =
  let m = mk () in
  let got = ref 0 in
  ignore
    (M.spawn m ~name:"p" (fun p ->
         let q = M.msgget m p ~key:1 in
         M.msgsnd m p ~qid:q ~mtype:7 Bytes.empty;
         M.msgsnd m p ~qid:q ~mtype:3 Bytes.empty;
         M.msgsnd m p ~qid:q ~mtype:5 Bytes.empty;
         let mt, _ = M.msgrcv m p ~qid:q ~mtype:(-6) in
         got := mt));
  M.run m;
  Alcotest.(check int) "lowest <= 6" 3 !got

let test_msgq_blocking_recv () =
  let m = mk () in
  let got = ref "" in
  ignore
    (M.spawn m ~name:"receiver" (fun p ->
         let q = M.msgget m p ~key:1 in
         let _, b = M.msgrcv m p ~qid:q ~mtype:1 in
         got := Bytes.to_string b));
  ignore
    (M.spawn m ~name:"sender" (fun p ->
         let q = M.msgget m p ~key:1 in
         M.msgsnd m p ~qid:q ~mtype:1 (Bytes.of_string "wake up")));
  M.run m;
  Alcotest.(check string) "blocked receiver woken" "wake up" !got

let test_msgq_full_blocks_sender () =
  let m = mk () in
  let sent = ref 0 in
  ignore
    (M.spawn m ~name:"sender" (fun p ->
         let q = M.msgget m p ~key:1 in
         for _ = 1 to 5 do
           M.msgsnd m p ~qid:q ~mtype:1 (Bytes.create 4000);
           incr sent
         done));
  ignore
    (M.spawn m ~name:"drainer" (fun p ->
         let q = M.msgget m p ~key:1 in
         for _ = 1 to 5 do
           ignore (M.msgrcv m p ~qid:q ~mtype:1)
         done));
  M.run m;
  Alcotest.(check int) "all five sent after drain" 5 !sent

let test_msgq_oversized_message () =
  let m = mk () in
  let rejected = ref false in
  ignore
    (M.spawn m ~name:"p" (fun p ->
         let q = M.msgget m p ~key:1 in
         match M.msgsnd m p ~qid:q ~mtype:1 (Bytes.create 999999) with
         | () -> ()
         | exception Errno.Error (Errno.EINVAL, _) -> rejected := true));
  M.run m;
  Alcotest.(check bool) "EINVAL" true !rejected

let test_msgq_bad_mtype () =
  let m = mk () in
  let rejected = ref false in
  ignore
    (M.spawn m ~name:"p" (fun p ->
         let q = M.msgget m p ~key:1 in
         match M.msgsnd m p ~qid:q ~mtype:0 Bytes.empty with
         | () -> ()
         | exception Errno.Error (Errno.EINVAL, _) -> rejected := true));
  M.run m;
  Alcotest.(check bool) "mtype must be positive" true !rejected

let test_msgq_remove_wakes_with_eidrm () =
  let m = mk () in
  let got_eidrm = ref false in
  ignore
    (M.spawn m ~name:"receiver" (fun p ->
         let q = M.msgget m p ~key:1 in
         match M.msgrcv m p ~qid:q ~mtype:1 with
         | _ -> ()
         | exception Errno.Error (Errno.EIDRM, _) -> got_eidrm := true));
  ignore
    (M.spawn m ~name:"remover" (fun p ->
         let q = M.msgget m p ~key:1 in
         M.msgctl_remove m p ~qid:q));
  M.run m;
  Alcotest.(check bool) "EIDRM" true !got_eidrm

let test_msgq_same_key_same_queue () =
  let m = mk () in
  let q1 = ref 0 and q2 = ref 0 in
  ignore
    (M.spawn m ~name:"p" (fun p ->
         q1 := M.msgget m p ~key:77;
         q2 := M.msgget m p ~key:77));
  M.run m;
  Alcotest.(check int) "same qid" !q1 !q2

let test_msgq_depth () =
  let m = mk () in
  let depth = ref (-1) in
  ignore
    (M.spawn m ~name:"p" (fun p ->
         let q = M.msgget m p ~key:1 in
         M.msgsnd m p ~qid:q ~mtype:1 Bytes.empty;
         M.msgsnd m p ~qid:q ~mtype:1 Bytes.empty;
         depth := M.msgq_depth m ~qid:q));
  M.run m;
  Alcotest.(check int) "two queued" 2 !depth

(* ----------------------------- syscalls ---------------------------- *)

let test_enosys () =
  let m = mk () in
  let got = ref false in
  ignore
    (M.spawn m ~name:"p" (fun p ->
         match M.syscall m p 999 [||] with
         | _ -> ()
         | exception Errno.Error (Errno.ENOSYS, _) -> got := true));
  M.run m;
  Alcotest.(check bool) "ENOSYS" true !got

let test_register_syscall () =
  let m = mk () in
  M.register_syscall m 400 ~name:"double" (fun _ _ args -> args.(0) * 2);
  let got = ref 0 in
  ignore (M.spawn m ~name:"p" (fun p -> got := M.syscall m p 400 [| 21 |]));
  M.run m;
  Alcotest.(check int) "custom syscall" 42 !got

let test_register_syscall_collision () =
  let m = mk () in
  Alcotest.(check bool) "collision rejected" true
    (match M.register_syscall m Sysno.getpid ~name:"dup" (fun _ _ _ -> 0) with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_syscall_charges_traps () =
  let m = mk () in
  ignore
    (M.spawn m ~name:"p" (fun p ->
         let clock = M.clock m in
         let t0 = Clock.now_cycles clock in
         ignore (M.sys_getpid m p);
         let dt = Clock.now_cycles clock -. t0 in
         Alcotest.(check bool) "charged ~394 cycles" true (dt > 300.0 && dt < 500.0)));
  M.run m

let test_obreak_syscall () =
  let m = mk () in
  let ok = ref false in
  ignore
    (M.spawn m ~name:"p" (fun p ->
         let base = Smod_vmem.Aspace.heap_base p.Proc.aspace in
         M.sys_obreak m p (base + 8192);
         Smod_vmem.Aspace.write_word p.Proc.aspace ~addr:(base + 4096) 5;
         ok := Smod_vmem.Aspace.read_word p.Proc.aspace ~addr:(base + 4096) = 5));
  M.run m;
  Alcotest.(check bool) "heap grown via syscall" true !ok

let test_obreak_enomem () =
  let m = mk () in
  let got = ref false in
  ignore
    (M.spawn m ~name:"p" (fun p ->
         match M.sys_obreak m p 0 with
         | () -> ()
         | exception Errno.Error (Errno.ENOMEM, _) -> got := true));
  M.run m;
  Alcotest.(check bool) "ENOMEM" true !got

let test_ptrace_allowed_same_uid () =
  let m = mk () in
  let target = M.spawn m ~uid:500 ~daemon:true ~name:"target" (fun p ->
      let q = M.msgget m p ~key:2 in
      ignore (M.msgrcv m p ~qid:q ~mtype:1))
  in
  ignore
    (M.spawn m ~uid:500 ~name:"tracer" (fun p ->
         Sched.yield ();
         M.sys_ptrace_attach m p ~target_pid:target.Proc.pid));
  M.run m;
  Alcotest.(check bool) "traced" true (target.Proc.traced_by <> None)

let test_ptrace_denied_no_ptrace_flag () =
  let m = mk () in
  let target = M.spawn m ~uid:500 ~daemon:true ~name:"target" (fun p ->
      p.Proc.no_ptrace <- true;
      let q = M.msgget m p ~key:2 in
      ignore (M.msgrcv m p ~qid:q ~mtype:1))
  in
  let denied = ref false in
  ignore
    (M.spawn m ~uid:500 ~name:"tracer" (fun p ->
         Sched.yield ();
         match M.sys_ptrace_attach m p ~target_pid:target.Proc.pid with
         | () -> ()
         | exception Errno.Error (Errno.EPERM, _) -> denied := true));
  M.run m;
  Alcotest.(check bool) "EPERM for protected target" true !denied

let test_execve_resets_address_space () =
  let m = mk () in
  let hook_hit = ref false in
  M.add_exec_hook m (fun _ _ image -> if image = "newimage" then hook_hit := true);
  let ok = ref false in
  ignore
    (M.spawn m ~name:"p" (fun p ->
         let addr = Smod_vmem.Layout.data_base in
         Smod_vmem.Aspace.write_word p.Proc.aspace ~addr 42;
         M.sys_execve m p ~image:"newimage";
         ok := Smod_vmem.Aspace.read_word p.Proc.aspace ~addr = 0));
  M.run m;
  Alcotest.(check bool) "exec hook ran" true !hook_hit;
  Alcotest.(check bool) "address space reset" true !ok

let test_context_switch_accounting () =
  let m = mk () in
  ignore (M.spawn m ~name:"a" (fun _ -> Sched.yield ()));
  ignore (M.spawn m ~name:"b" (fun _ -> Sched.yield ()));
  M.run m;
  Alcotest.(check bool) "switches counted" true (M.context_switches m >= 3)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "kern"
    [
      ( "lifecycle",
        [
          tc "spawn runs body" test_spawn_runs_body;
          tc "fifo order" test_spawn_order_fifo;
          tc "exit status" test_exit_status;
          tc "normal return = exit 0" test_normal_return_is_exit0;
          tc "yield interleaves" test_yield_interleaves;
          tc "getpid" test_getpid;
          tc "fork and wait" test_fork_and_wait;
          tc "fork clones memory" test_fork_clones_memory;
          tc "wait with no children" test_wait_no_children;
          tc "wait blocks" test_wait_blocks_until_child_exits;
          tc "kill blocked process" test_kill_blocked_process;
          tc "kill ready process" test_kill_ready_process;
          tc "pending signals" test_pending_signal_delivery;
          tc "SIGCHLD on exit" test_sigchld_on_exit;
          tc "kill permission" test_kill_permission;
          tc "deadlock detection" test_deadlock_detection;
          tc "daemons may block" test_daemon_allowed_to_block;
          tc "segv crash dumps core" test_crash_segv_records_core;
          tc "no_core_dump flag" test_no_core_dump_flag;
          tc "suspend/resume threads" test_suspend_resume;
          tc "threads share memory" test_spawn_thread_shares_memory;
        ] );
      ( "msgq",
        [
          tc "fifo" test_msgq_fifo;
          tc "type filter" test_msgq_type_filter;
          tc "negative mtype" test_msgq_negative_mtype;
          tc "blocking recv" test_msgq_blocking_recv;
          tc "full queue blocks sender" test_msgq_full_blocks_sender;
          tc "oversized message EINVAL" test_msgq_oversized_message;
          tc "bad mtype EINVAL" test_msgq_bad_mtype;
          tc "remove wakes EIDRM" test_msgq_remove_wakes_with_eidrm;
          tc "same key same queue" test_msgq_same_key_same_queue;
          tc "depth introspection" test_msgq_depth;
        ] );
      ( "syscalls",
        [
          tc "ENOSYS" test_enosys;
          tc "register custom" test_register_syscall;
          tc "registration collision" test_register_syscall_collision;
          tc "trap cost charged" test_syscall_charges_traps;
          tc "obreak" test_obreak_syscall;
          tc "obreak ENOMEM" test_obreak_enomem;
          tc "ptrace same uid" test_ptrace_allowed_same_uid;
          tc "ptrace denied (no_ptrace)" test_ptrace_denied_no_ptrace_flag;
          tc "execve resets + hooks" test_execve_resets_address_space;
          tc "context switch accounting" test_context_switch_accounting;
        ] );
    ]
