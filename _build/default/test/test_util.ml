(* Unit and property tests for Smod_util. *)

module Rng = Smod_util.Rng
module Stats = Smod_util.Stats
module Table = Smod_util.Table
module Hexdump = Smod_util.Hexdump

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------- Rng ------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1L and b = Rng.create 2L in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.next_int64 a = Rng.next_int64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_zero_seed () =
  let r = Rng.create 0L in
  let v = Rng.next_int64 r in
  Alcotest.(check bool) "produces output from zero seed" true (v <> 0L || Rng.next_int64 r <> 0L)

let test_rng_int_bounds () =
  let r = Rng.create 7L in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17)
  done

let test_rng_int_in () =
  let r = Rng.create 9L in
  for _ = 1 to 1000 do
    let v = Rng.int_in r (-5) 5 in
    Alcotest.(check bool) "in [-5,5]" true (v >= -5 && v <= 5)
  done

let test_rng_unit_float () =
  let r = Rng.create 11L in
  for _ = 1 to 1000 do
    let v = Rng.unit_float r in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_rng_jitter_range () =
  let r = Rng.create 13L in
  for _ = 1 to 1000 do
    let v = Rng.jitter r 0.02 in
    Alcotest.(check bool) "within 2%" true (v >= 0.98 && v <= 1.02)
  done

let test_rng_gaussian_moments () =
  let r = Rng.create 17L in
  let n = 20000 in
  let samples = Array.init n (fun _ -> Rng.gaussian r ~mu:5.0 ~sigma:2.0) in
  let s = Stats.summarize samples in
  Alcotest.(check bool) "mean near 5" true (Float.abs (s.Stats.mean -. 5.0) < 0.1);
  Alcotest.(check bool) "stdev near 2" true (Float.abs (s.Stats.stdev -. 2.0) < 0.1)

let test_rng_shuffle_permutation () =
  let r = Rng.create 21L in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_rng_split_independent () =
  let parent = Rng.create 1L in
  let child = Rng.split parent in
  Alcotest.(check bool) "split differs from parent stream" true
    (Rng.next_int64 child <> Rng.next_int64 parent)

let test_rng_copy () =
  let a = Rng.create 5L in
  ignore (Rng.next_int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.next_int64 a) (Rng.next_int64 b)

let test_rng_bytes () =
  let r = Rng.create 3L in
  let b = Rng.bytes r 100 in
  Alcotest.(check int) "length" 100 (Bytes.length b)

(* ------------------------------ Stats ------------------------------ *)

let test_stats_mean () = check_float "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |])
let test_stats_mean_empty () = check_float "empty mean" 0.0 (Stats.mean [||])

let test_stats_variance () =
  check_float "sample variance" (35.0 /. 12.0) (Stats.variance [| 1.0; 2.0; 3.0; 5.0 |])

let test_stats_variance_small () =
  check_float "variance of singleton" 0.0 (Stats.variance [| 42.0 |])

let test_stats_stdev () = check_float "stdev" 2.0 (Stats.stdev [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] *. sqrt (7.0 /. 8.0))

let test_stats_median_odd () = check_float "median odd" 3.0 (Stats.median [| 5.0; 1.0; 3.0 |])

let test_stats_median_even () =
  check_float "median even" 2.5 (Stats.median [| 1.0; 2.0; 3.0; 4.0 |])

let test_stats_percentile () =
  let xs = Array.init 101 float_of_int in
  check_float "p0" 0.0 (Stats.percentile xs 0.0);
  check_float "p50" 50.0 (Stats.percentile xs 50.0);
  check_float "p100" 100.0 (Stats.percentile xs 100.0);
  check_float "p25" 25.0 (Stats.percentile xs 25.0)

let test_stats_percentile_interpolates () =
  check_float "interpolated" 1.5 (Stats.percentile [| 1.0; 2.0 |] 50.0)

let test_stats_percentile_empty () =
  Alcotest.check_raises "empty percentile" (Invalid_argument "Stats.percentile: empty sample")
    (fun () -> ignore (Stats.percentile [||] 50.0))

let test_stats_regression () =
  let pts = Array.init 10 (fun i -> (float_of_int i, (3.0 *. float_of_int i) +. 7.0)) in
  let slope, intercept = Stats.linear_regression pts in
  check_float "slope" 3.0 slope;
  check_float "intercept" 7.0 intercept

let test_stats_regression_flat () =
  let slope, intercept = Stats.linear_regression [| (1.0, 5.0); (1.0, 5.0) |] in
  check_float "flat slope" 0.0 slope;
  check_float "flat intercept" 5.0 intercept

let test_stats_online_matches_batch () =
  let xs = Array.init 1000 (fun i -> sin (float_of_int i)) in
  let o = Stats.Online.create () in
  Array.iter (Stats.Online.add o) xs;
  Alcotest.(check int) "count" 1000 (Stats.Online.count o);
  Alcotest.(check (float 1e-9)) "mean" (Stats.mean xs) (Stats.Online.mean o);
  Alcotest.(check (float 1e-9)) "variance" (Stats.variance xs) (Stats.Online.variance o)

let test_stats_summary () =
  let s = Stats.summarize [| 4.0; 1.0; 3.0; 2.0 |] in
  Alcotest.(check int) "n" 4 s.Stats.n;
  check_float "min" 1.0 s.Stats.min;
  check_float "max" 4.0 s.Stats.max;
  check_float "median" 2.5 s.Stats.median

(* ------------------------------ Table ------------------------------ *)

let test_table_render () =
  let t = Table.create [ "name"; "value" ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_row t [ "long-name"; "23" ];
  let s = Table.render t in
  Alcotest.(check bool) "contains header" true
    (String.length s > 0 && String.index_opt s 'n' <> None);
  (* All lines equal width. *)
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' s) in
  let widths = List.map String.length lines in
  Alcotest.(check bool) "aligned" true (List.for_all (fun w -> w = List.hd widths) widths)

let test_table_pads_short_rows () =
  let t = Table.create [ "a"; "b"; "c" ] in
  Table.add_row t [ "only-one" ];
  let s = Table.render t in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let test_table_rejects_long_rows () =
  let t = Table.create [ "a" ] in
  Alcotest.check_raises "too many cells" (Invalid_argument "Table.add_row: too many cells")
    (fun () -> Table.add_row t [ "1"; "2" ])

let test_table_no_columns () =
  Alcotest.check_raises "no columns" (Invalid_argument "Table.create: no columns") (fun () ->
      ignore (Table.create []))

let test_table_alignment () =
  let t = Table.create ~aligns:[ Table.Left; Table.Right ] [ "l"; "r" ] in
  Table.add_row t [ "ab"; "1" ];
  Table.add_row t [ "c"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "right column right-aligned" true
    (let lines = String.split_on_char '\n' s in
     List.exists (fun l -> String.length l > 3 && String.index_opt l '1' <> None) lines)

(* ----------------------------- Hexdump ----------------------------- *)

let test_hex_roundtrip () =
  let b = Bytes.of_string "\x00\x01\xfe\xff SecModule" in
  Alcotest.(check bytes) "roundtrip" b (Hexdump.of_hex (Hexdump.to_hex b))

let test_hex_known () =
  Alcotest.(check string) "encoding" "00ff10" (Hexdump.to_hex (Bytes.of_string "\x00\xff\x10"))

let test_hex_odd_length () =
  Alcotest.check_raises "odd" (Invalid_argument "Hexdump.of_hex: odd length") (fun () ->
      ignore (Hexdump.of_hex "abc"))

let test_hex_bad_digit () =
  Alcotest.check_raises "bad digit" (Invalid_argument "Hexdump.of_hex: not a hex digit")
    (fun () -> ignore (Hexdump.of_hex "zz"))

let test_hexdump_format () =
  let d = Hexdump.dump (Bytes.of_string "ABCDEFGHIJKLMNOPQRSTUVWX") in
  Alcotest.(check bool) "has offset column" true
    (String.length d >= 8 && String.sub d 0 8 = "00000000");
  Alcotest.(check bool) "has ascii gutter" true (String.contains d '|')

(* --------------------------- properties ---------------------------- *)

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex roundtrip" ~count:500
    QCheck.(string_of_size Gen.(0 -- 200))
    (fun s -> Bytes.to_string (Hexdump.of_hex (Hexdump.to_hex (Bytes.of_string s))) = s)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone in p" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_bound_inclusive 1000.0)) (pair (float_bound_inclusive 100.0) (float_bound_inclusive 100.0)))
    (fun (xs, (p1, p2)) ->
      let xs = Array.of_list xs in
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.percentile xs lo <= Stats.percentile xs hi +. 1e-9)

let prop_mean_bounded =
  QCheck.Test.make ~name:"mean within min/max" ~count:200
    QCheck.(list_of_size Gen.(1 -- 60) (float_bound_inclusive 100.0))
    (fun xs ->
      let a = Array.of_list xs in
      let s = Stats.summarize a in
      s.Stats.min -. 1e-9 <= s.Stats.mean && s.Stats.mean <= s.Stats.max +. 1e-9)

let prop_online_mean =
  QCheck.Test.make ~name:"online mean = batch mean" ~count:200
    QCheck.(list_of_size Gen.(1 -- 100) (float_bound_inclusive 50.0))
    (fun xs ->
      let o = Stats.Online.create () in
      List.iter (Stats.Online.add o) xs;
      Float.abs (Stats.Online.mean o -. Stats.mean (Array.of_list xs)) < 1e-6)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "util"
    [
      ( "rng",
        [
          tc "deterministic" test_rng_deterministic;
          tc "seed sensitivity" test_rng_seed_sensitivity;
          tc "zero seed" test_rng_zero_seed;
          tc "int bounds" test_rng_int_bounds;
          tc "int_in bounds" test_rng_int_in;
          tc "unit float range" test_rng_unit_float;
          tc "jitter range" test_rng_jitter_range;
          tc "gaussian moments" test_rng_gaussian_moments;
          tc "shuffle permutes" test_rng_shuffle_permutation;
          tc "split independent" test_rng_split_independent;
          tc "copy" test_rng_copy;
          tc "bytes length" test_rng_bytes;
        ] );
      ( "stats",
        [
          tc "mean" test_stats_mean;
          tc "mean empty" test_stats_mean_empty;
          tc "variance" test_stats_variance;
          tc "variance singleton" test_stats_variance_small;
          tc "stdev" test_stats_stdev;
          tc "median odd" test_stats_median_odd;
          tc "median even" test_stats_median_even;
          tc "percentiles" test_stats_percentile;
          tc "percentile interpolation" test_stats_percentile_interpolates;
          tc "percentile empty" test_stats_percentile_empty;
          tc "linear regression" test_stats_regression;
          tc "regression degenerate" test_stats_regression_flat;
          tc "online = batch" test_stats_online_matches_batch;
          tc "summary" test_stats_summary;
        ] );
      ( "table",
        [
          tc "render aligned" test_table_render;
          tc "pads short rows" test_table_pads_short_rows;
          tc "rejects long rows" test_table_rejects_long_rows;
          tc "rejects zero columns" test_table_no_columns;
          tc "alignment option" test_table_alignment;
        ] );
      ( "hexdump",
        [
          tc "roundtrip" test_hex_roundtrip;
          tc "known encoding" test_hex_known;
          tc "odd length" test_hex_odd_length;
          tc "bad digit" test_hex_bad_digit;
          tc "dump format" test_hexdump_format;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_hex_roundtrip; prop_percentile_monotone; prop_mean_bounded; prop_online_mean ]
      );
    ]
