(* Tests for Smod_sim (clock, cost model, trace) and the Smod_bench_kit
   harness (trial runner, benchmark world). *)

module Clock = Smod_sim.Clock
module Cost = Smod_sim.Cost_model
module Trace = Smod_sim.Trace
open Smod_bench_kit

(* ---------------------------- cost model ---------------------------- *)

let test_calibration_anchor () =
  (* DESIGN.md's anchor: native getpid = 394 cycles = 0.658 us. *)
  let total = Cost.cycles Cost.Trap_enter +. Cost.cycles Cost.Getpid_body +. Cost.cycles Cost.Trap_exit in
  Alcotest.(check (float 0.001)) "394 cycles" 394.0 total;
  Alcotest.(check (float 0.0005)) "0.658 us" 0.658 (Cost.us_of_cycles total)

let test_cycles_per_us () =
  Alcotest.(check (float 1e-9)) "599 MHz" 599.0 Cost.cycles_per_us;
  Alcotest.(check (float 1e-9)) "1 us" 1.0 (Cost.us_of_cycles 599.0)

let test_copy_cost_linear () =
  let c n = Cost.cycles (Cost.Copy_bytes n) in
  Alcotest.(check bool) "monotone" true (c 100 < c 1000 && c 1000 < c 10000);
  Alcotest.(check (float 1e-6)) "linear increment" (c 2000 -. c 1000) (c 3000 -. c 2000)

let test_all_costs_positive () =
  List.iter
    (fun op ->
      Alcotest.(check bool) (Cost.describe op ^ " > 0") true (Cost.cycles op > 0.0))
    [
      Cost.Trap_enter; Cost.Trap_exit; Cost.Getpid_body; Cost.Getpid_client_fixup;
      Cost.Context_switch; Cost.Sched_enqueue; Cost.Sched_wakeup; Cost.Msgq_send;
      Cost.Msgq_recv; Cost.Copy_bytes 1; Cost.Page_map; Cost.Page_unmap; Cost.Page_protect;
      Cost.Tlb_flush; Cost.Page_fault_resolve; Cost.Peer_share_fault; Cost.Cred_check;
      Cost.Registry_lookup; Cost.Policy_always_allow; Cost.Policy_counter_check;
      Cost.Keynote_assertion_eval; Cost.Stub_push_args 1; Cost.Stub_receive; Cost.Stub_return;
      Cost.Fork_base; Cost.Exec_base; Cost.Aes_block; Cost.Aes_key_schedule;
      Cost.Sha256_block; Cost.Xdr_encode_word; Cost.Xdr_decode_word; Cost.Xdr_bytes 1;
      Cost.Udp_send_stack; Cost.Udp_recv_stack; Cost.Socket_op; Cost.Rpc_dispatch;
      Cost.Svm_instr; Cost.Native_call_overhead;
    ]

let test_describe_distinct () =
  let names = List.map Cost.describe [ Cost.Trap_enter; Cost.Trap_exit; Cost.Msgq_send ] in
  Alcotest.(check int) "distinct labels" 3 (List.length (List.sort_uniq compare names))

(* ------------------------------ clock ------------------------------- *)

let test_clock_exact_when_jitter_zero () =
  let c = Clock.create ~jitter:0.0 () in
  Clock.charge c Cost.Trap_enter;
  Clock.charge c Cost.Trap_exit;
  Alcotest.(check (float 1e-9)) "sum exact" 340.0 (Clock.now_cycles c)

let test_clock_jitter_bounded () =
  let c = Clock.create ~jitter:0.02 () in
  for _ = 1 to 100 do
    Clock.charge c Cost.Trap_enter
  done;
  let total = Clock.now_cycles c in
  Alcotest.(check bool) "within jitter band" true
    (total > 170.0 *. 100.0 *. 0.98 && total < 170.0 *. 100.0 *. 1.02)

let test_clock_charge_n_batches () =
  let a = Clock.create ~jitter:0.0 () and b = Clock.create ~jitter:0.0 () in
  Clock.charge_n a Cost.Svm_instr 1000;
  for _ = 1 to 1000 do
    Clock.charge b Cost.Svm_instr
  done;
  Alcotest.(check (float 1e-6)) "same total" (Clock.now_cycles b) (Clock.now_cycles a)

let test_clock_reset_and_elapsed () =
  let c = Clock.create ~jitter:0.0 () in
  Clock.charge c Cost.Context_switch;
  let mark = Clock.now_cycles c in
  Clock.charge c Cost.Context_switch;
  Alcotest.(check (float 1e-9)) "elapsed" (Cost.us_of_cycles 800.0) (Clock.elapsed_us c ~since:mark);
  Clock.reset c;
  Alcotest.(check (float 1e-9)) "reset" 0.0 (Clock.now_cycles c)

let test_clock_deterministic_across_runs () =
  let run () =
    let c = Clock.create ~seed:99L ~jitter:0.02 () in
    for _ = 1 to 50 do
      Clock.charge c Cost.Msgq_send
    done;
    Clock.now_cycles c
  in
  Alcotest.(check (float 1e-12)) "same seed same time" (run ()) (run ())

(* ------------------------------ trace ------------------------------- *)

let test_trace_order_and_labels () =
  let c = Clock.create ~jitter:0.0 () in
  let t = Trace.create () in
  Trace.emit t ~clock:c ~actor:"a" "first";
  Clock.charge c Cost.Trap_enter;
  Trace.emitf t ~clock:c ~actor:"b" "second %d" 2;
  Alcotest.(check (list string)) "labels in order" [ "first"; "second 2" ] (Trace.labels t);
  let events = Trace.events t in
  Alcotest.(check bool) "timestamps increase" true
    ((List.nth events 0).Trace.timestamp_us < (List.nth events 1).Trace.timestamp_us)

let test_trace_capacity_drops_oldest () =
  let c = Clock.create () in
  let t = Trace.create ~capacity:3 () in
  List.iter (fun l -> Trace.emit t ~clock:c ~actor:"x" l) [ "1"; "2"; "3"; "4"; "5" ];
  Alcotest.(check (list string)) "last three" [ "3"; "4"; "5" ] (Trace.labels t)

let test_trace_disable () =
  let c = Clock.create () in
  let t = Trace.create ~enabled:false () in
  Trace.emit t ~clock:c ~actor:"x" "ignored";
  Alcotest.(check (list string)) "nothing recorded" [] (Trace.labels t);
  Trace.enable t;
  Trace.emit t ~clock:c ~actor:"x" "kept";
  Alcotest.(check (list string)) "recorded after enable" [ "kept" ] (Trace.labels t)

let test_trace_clear () =
  let c = Clock.create () in
  let t = Trace.create () in
  Trace.emit t ~clock:c ~actor:"x" "gone";
  Trace.clear t;
  Alcotest.(check (list string)) "cleared" [] (Trace.labels t)

(* ------------------------------ trial ------------------------------- *)

let test_trial_mean_of_constant_charge () =
  let clock = Clock.create ~jitter:0.0 () in
  let spec = { Trial.name = "x"; calls_per_trial = 100; trials = 5; warmup = 10 } in
  let row = Trial.run ~clock ~noise:0.0 spec (fun _ -> Clock.charge clock Cost.Trap_enter) in
  Alcotest.(check (float 1e-6)) "mean = one trap" (Cost.us_of_cycles 170.0) row.Trial.mean_us;
  Alcotest.(check (float 1e-9)) "no noise, no spread" 0.0 row.Trial.stdev_us;
  Alcotest.(check int) "trials recorded" 5 (Array.length row.Trial.trial_means)

let test_trial_noise_gives_spread () =
  let clock = Clock.create ~jitter:0.0 () in
  let spec = { Trial.name = "x"; calls_per_trial = 50; trials = 10; warmup = 0 } in
  let row = Trial.run ~clock ~noise:0.05 spec (fun _ -> Clock.charge clock Cost.Trap_enter) in
  Alcotest.(check bool) "nonzero stdev" true (row.Trial.stdev_us > 0.0);
  Alcotest.(check bool) "stdev below 20% of mean" true
    (row.Trial.stdev_us < 0.2 *. row.Trial.mean_us)

let test_trial_warmup_not_measured () =
  let clock = Clock.create ~jitter:0.0 () in
  let calls = ref [] in
  let spec = { Trial.name = "x"; calls_per_trial = 3; trials = 1; warmup = 2 } in
  ignore (Trial.run ~clock ~noise:0.0 spec (fun i -> calls := i :: !calls));
  (* warmup indices are negative by convention *)
  Alcotest.(check (list int)) "warmup then trial" [ -1; -2; 0; 1; 2 ] (List.rev !calls)

let test_figure8_table_format () =
  let clock = Clock.create ~jitter:0.0 () in
  let spec = { Trial.name = "getpid()"; calls_per_trial = 1_000_000; trials = 10; warmup = 0 } in
  let row = Trial.run ~clock ~noise:0.0 { spec with Trial.calls_per_trial = 10 } (fun _ -> ()) in
  let row = { row with Trial.spec } in
  let s = Trial.figure8_table [ row ] in
  let contains needle =
    let n = String.length s and m = String.length needle in
    let rec scan i = i + m <= n && (String.sub s i m = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "comma formatting" true (contains "1,000,000");
  Alcotest.(check bool) "header" true (contains "microsec/CALL");
  Alcotest.(check bool) "stdev column" true (contains "stdev(microsec)")

(* ------------------------------ world ------------------------------- *)

let test_world_smoke () =
  let world = World.create ~jitter:0.0 () in
  let ran = ref false in
  World.spawn_seclibc_client world ~name:"w" (fun _p conn ->
      ran := Smod_libc.Seclibc.Client.test_incr conn 1 = 2);
  World.run world;
  Alcotest.(check bool) "client ran through seclibc" true !ran

let test_world_rpc_available () =
  let world = World.create ~jitter:0.0 () in
  let got = ref 0 in
  World.spawn_seclibc_client world ~name:"w" (fun p _conn ->
      let c = World.rpc_client world p ~client_port:46000 in
      got := Smod_rpc.Testincr.incr c 9);
  World.run world;
  Alcotest.(check int) "rpc server answers" 10 !got

let test_world_without_rpc () =
  let world = World.create ~with_rpc:false () in
  World.run world;
  Alcotest.(check bool) "no daemons to run" true true

(* ----------------------------- fast path ---------------------------- *)

let test_e14_fast_path_gain () =
  let entries = Ablations.fast_path ~calls:400 ~trials:3 () in
  match entries with
  | [ slow; fast ] ->
      Alcotest.(check bool)
        (Printf.sprintf "fast %.3f < slow %.3f" fast.Ablations.mean_us slow.Ablations.mean_us)
        true
        (fast.Ablations.mean_us < slow.Ablations.mean_us);
      (* the gain is the hoisted cred-check + policy charge, a few hundred
         nanoseconds — visible but not transformative, as §5 implies *)
      let gain = slow.Ablations.mean_us -. fast.Ablations.mean_us in
      Alcotest.(check bool) (Printf.sprintf "gain %.3f in (0.1, 1.0) us" gain) true
        (gain > 0.1 && gain < 1.0)
  | _ -> Alcotest.fail "expected two entries"

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "sim"
    [
      ( "cost model",
        [
          tc "getpid calibration anchor" test_calibration_anchor;
          tc "cycles per us" test_cycles_per_us;
          tc "copy cost linear" test_copy_cost_linear;
          tc "all costs positive" test_all_costs_positive;
          tc "describe labels" test_describe_distinct;
        ] );
      ( "clock",
        [
          tc "exact with zero jitter" test_clock_exact_when_jitter_zero;
          tc "jitter bounded" test_clock_jitter_bounded;
          tc "charge_n batches" test_clock_charge_n_batches;
          tc "reset and elapsed" test_clock_reset_and_elapsed;
          tc "deterministic per seed" test_clock_deterministic_across_runs;
        ] );
      ( "trace",
        [
          tc "order and labels" test_trace_order_and_labels;
          tc "capacity ring" test_trace_capacity_drops_oldest;
          tc "disable/enable" test_trace_disable;
          tc "clear" test_trace_clear;
        ] );
      ( "trial runner",
        [
          tc "mean of constant charge" test_trial_mean_of_constant_charge;
          tc "noise gives spread" test_trial_noise_gives_spread;
          tc "warmup not measured" test_trial_warmup_not_measured;
          tc "figure8 table format" test_figure8_table_format;
        ] );
      ( "world",
        [
          tc "seclibc client" test_world_smoke;
          tc "rpc baseline up" test_world_rpc_available;
          tc "without rpc" test_world_without_rpc;
        ] );
      ("fast path (E14)", [ tc "measurable gain" test_e14_fast_path_gain ]);
    ]
