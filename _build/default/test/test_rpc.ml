(* Tests for Smod_rpc: XDR codecs, RPC message format, the loopback
   transport, the portmapper, and end-to-end calls to test-incr. *)

module M = Smod_kern.Machine
module Proc = Smod_kern.Proc
module Errno = Smod_kern.Errno
module Xdr = Smod_rpc.Xdr
module Rpc_msg = Smod_rpc.Rpc_msg
module Transport = Smod_rpc.Transport
module Portmap = Smod_rpc.Portmap
module Server = Smod_rpc.Server
module Client = Smod_rpc.Client
module Testincr = Smod_rpc.Testincr

(* ------------------------------- XDR ------------------------------- *)

let enc_dec enc_fn dec_fn v =
  let e = Xdr.Encoder.create () in
  enc_fn e v;
  dec_fn (Xdr.Decoder.of_bytes (Xdr.Encoder.to_bytes e))

let test_xdr_int_roundtrip () =
  List.iter
    (fun v -> Alcotest.(check int) "int" v (enc_dec Xdr.Encoder.int Xdr.Decoder.int v))
    [ 0; 1; -1; 42; -42; 0x7FFFFFFF; -0x80000000 ]

let test_xdr_uint_roundtrip () =
  List.iter
    (fun v -> Alcotest.(check int) "uint" v (enc_dec Xdr.Encoder.uint Xdr.Decoder.uint v))
    [ 0; 1; 0xDEADBEEF; 0xFFFFFFFF ]

let test_xdr_hyper_roundtrip () =
  List.iter
    (fun v ->
      Alcotest.(check int64) "hyper" v (enc_dec Xdr.Encoder.hyper Xdr.Decoder.hyper v))
    [ 0L; 1L; -1L; Int64.max_int; Int64.min_int; 0x123456789ABCDEFL ]

let test_xdr_bool_roundtrip () =
  Alcotest.(check bool) "true" true (enc_dec Xdr.Encoder.bool Xdr.Decoder.bool true);
  Alcotest.(check bool) "false" false (enc_dec Xdr.Encoder.bool Xdr.Decoder.bool false)

let test_xdr_bool_invalid () =
  let e = Xdr.Encoder.create () in
  Xdr.Encoder.uint e 7;
  Alcotest.(check bool) "bad bool" true
    (match Xdr.Decoder.bool (Xdr.Decoder.of_bytes (Xdr.Encoder.to_bytes e)) with
    | _ -> false
    | exception Xdr.Decode_error _ -> true)

let test_xdr_string_padding () =
  List.iter
    (fun s ->
      let e = Xdr.Encoder.create () in
      Xdr.Encoder.string e s;
      let encoded = Xdr.Encoder.to_bytes e in
      Alcotest.(check int) "padded to 4" 0 (Bytes.length encoded mod 4);
      Alcotest.(check string) "roundtrip" s
        (Xdr.Decoder.string (Xdr.Decoder.of_bytes encoded)))
    [ ""; "a"; "ab"; "abc"; "abcd"; "hello world" ]

let test_xdr_opaque_roundtrip () =
  let b = Bytes.of_string "\x00\x01\x02\xff binary" in
  Alcotest.(check bytes) "opaque" b (enc_dec Xdr.Encoder.opaque Xdr.Decoder.opaque b)

let test_xdr_array_roundtrip () =
  let e = Xdr.Encoder.create () in
  Xdr.Encoder.array e (Xdr.Encoder.int e) [ 1; 2; 3; 4; 5 ];
  let d = Xdr.Decoder.of_bytes (Xdr.Encoder.to_bytes e) in
  Alcotest.(check (list int)) "array" [ 1; 2; 3; 4; 5 ] (Xdr.Decoder.array d Xdr.Decoder.int)

let test_xdr_truncation () =
  let e = Xdr.Encoder.create () in
  Xdr.Encoder.string e "truncate me please";
  let full = Xdr.Encoder.to_bytes e in
  let cut = Bytes.sub full 0 (Bytes.length full - 4) in
  Alcotest.(check bool) "decode error" true
    (match Xdr.Decoder.string (Xdr.Decoder.of_bytes cut) with
    | _ -> false
    | exception Xdr.Decode_error _ -> true)

let test_xdr_remaining () =
  let e = Xdr.Encoder.create () in
  Xdr.Encoder.int e 1;
  Xdr.Encoder.int e 2;
  let d = Xdr.Decoder.of_bytes (Xdr.Encoder.to_bytes e) in
  Alcotest.(check int) "8 bytes" 8 (Xdr.Decoder.remaining d);
  ignore (Xdr.Decoder.int d);
  Alcotest.(check int) "4 left" 4 (Xdr.Decoder.remaining d)

let prop_xdr_string =
  QCheck.Test.make ~name:"xdr string roundtrip" ~count:300
    QCheck.(string_of_size Gen.(0 -- 200))
    (fun s ->
      let e = Xdr.Encoder.create () in
      Xdr.Encoder.string e s;
      Xdr.Decoder.string (Xdr.Decoder.of_bytes (Xdr.Encoder.to_bytes e)) = s)

let prop_xdr_int_list =
  QCheck.Test.make ~name:"xdr int array roundtrip" ~count:300
    QCheck.(list_of_size Gen.(0 -- 50) int32)
    (fun xs ->
      let xs = List.map Int32.to_int xs in
      let e = Xdr.Encoder.create () in
      Xdr.Encoder.array e (Xdr.Encoder.int e) xs;
      Xdr.Decoder.array (Xdr.Decoder.of_bytes (Xdr.Encoder.to_bytes e)) Xdr.Decoder.int = xs)

(* ---------------------------- RPC messages ------------------------- *)

let sample_call cred =
  {
    Rpc_msg.xid = 0xCAFE;
    prog = 100003;
    vers = 3;
    proc = 7;
    cred;
    args = Bytes.of_string "argument bytes";
  }

let test_call_roundtrip_auth_none () =
  let c = sample_call Rpc_msg.Auth_none in
  let c2 = Rpc_msg.decode_call (Rpc_msg.encode_call c) in
  Alcotest.(check int) "xid" c.Rpc_msg.xid c2.Rpc_msg.xid;
  Alcotest.(check int) "prog" c.Rpc_msg.prog c2.Rpc_msg.prog;
  Alcotest.(check int) "proc" c.Rpc_msg.proc c2.Rpc_msg.proc;
  Alcotest.(check bytes) "args" c.Rpc_msg.args c2.Rpc_msg.args

let test_call_roundtrip_auth_sys () =
  let cred = Rpc_msg.Auth_sys { uid = 1000; gid = 100; machine = "testhost" } in
  let c2 = Rpc_msg.decode_call (Rpc_msg.encode_call (sample_call cred)) in
  match c2.Rpc_msg.cred with
  | Rpc_msg.Auth_sys { uid = 1000; gid = 100; machine = "testhost" } -> ()
  | _ -> Alcotest.fail "auth_sys mismatch"

let test_reply_roundtrips () =
  let cases =
    [
      Rpc_msg.Success (Bytes.of_string "results");
      Rpc_msg.Prog_unavail;
      Rpc_msg.Prog_mismatch { low = 2; high = 3 };
      Rpc_msg.Proc_unavail;
      Rpc_msg.Garbage_args;
    ]
  in
  List.iter
    (fun stat ->
      let r = { Rpc_msg.rxid = 7; stat } in
      let r2 = Rpc_msg.decode_reply (Rpc_msg.encode_reply r) in
      Alcotest.(check int) "xid" 7 r2.Rpc_msg.rxid;
      Alcotest.(check bool) "stat" true (r2.Rpc_msg.stat = stat))
    cases

let test_reply_not_a_call () =
  let r = Rpc_msg.encode_reply { Rpc_msg.rxid = 1; stat = Rpc_msg.Prog_unavail } in
  Alcotest.(check bool) "decode_call rejects reply" true
    (match Rpc_msg.decode_call r with
    | _ -> false
    | exception Rpc_msg.Bad_message _ -> true)

let test_garbage_bytes_rejected () =
  Alcotest.(check bool) "garbage" true
    (match Rpc_msg.decode_call (Bytes.of_string "hi") with
    | _ -> false
    | exception Rpc_msg.Bad_message _ -> true)

(* ----------------------------- transport --------------------------- *)

let test_transport_delivery () =
  let m = M.create ~jitter:0.0 () in
  let t = Transport.create m in
  let got = ref (0, Bytes.empty) in
  ignore
    (M.spawn m ~name:"receiver" (fun p ->
         Transport.bind t p ~port:100;
         got := Transport.recvfrom t p ~port:100));
  ignore
    (M.spawn m ~name:"sender" (fun p ->
         Transport.sendto t p ~dst_port:100 ~src_port:200 (Bytes.of_string "datagram")));
  M.run m;
  let src, payload = !got in
  Alcotest.(check int) "source port" 200 src;
  Alcotest.(check string) "payload" "datagram" (Bytes.to_string payload)

let test_transport_port_collision () =
  let m = M.create () in
  let t = Transport.create m in
  let denied = ref false in
  ignore
    (M.spawn m ~name:"a" (fun p ->
         Transport.bind t p ~port:9;
         match Transport.bind t p ~port:9 with
         | () -> ()
         | exception Errno.Error (Errno.EEXIST, _) -> denied := true));
  M.run m;
  Alcotest.(check bool) "EEXIST" true !denied

let test_transport_send_to_unbound () =
  let m = M.create () in
  let t = Transport.create m in
  let failed = ref false in
  ignore
    (M.spawn m ~name:"a" (fun p ->
         match Transport.sendto t p ~dst_port:4242 ~src_port:1 Bytes.empty with
         | () -> ()
         | exception Errno.Error (Errno.ENOENT, _) -> failed := true));
  M.run m;
  Alcotest.(check bool) "ENOENT" true !failed

let test_transport_foreign_recv_denied () =
  let m = M.create () in
  let t = Transport.create m in
  let owner = M.spawn m ~daemon:true ~name:"owner" (fun p ->
      Transport.bind t p ~port:5;
      ignore (Transport.recvfrom t p ~port:5))
  in
  ignore owner;
  let denied = ref false in
  ignore
    (M.spawn m ~name:"thief" (fun p ->
         Smod_kern.Sched.yield ();
         match Transport.recvfrom t p ~port:5 with
         | _ -> ()
         | exception Errno.Error (Errno.EACCES, _) -> denied := true));
  M.run m;
  Alcotest.(check bool) "EACCES" true !denied

let test_transport_queues_multiple () =
  let m = M.create () in
  let t = Transport.create m in
  let got = ref [] in
  ignore
    (M.spawn m ~name:"r" (fun p ->
         Transport.bind t p ~port:7;
         Smod_kern.Sched.yield ();
         for _ = 1 to 3 do
           let _, b = Transport.recvfrom t p ~port:7 in
           got := Bytes.to_string b :: !got
         done));
  ignore
    (M.spawn m ~name:"s" (fun p ->
         List.iter
           (fun s -> Transport.sendto t p ~dst_port:7 ~src_port:8 (Bytes.of_string s))
           [ "1"; "2"; "3" ]));
  M.run m;
  Alcotest.(check (list string)) "in order" [ "1"; "2"; "3" ] (List.rev !got)

(* ----------------------------- portmap ----------------------------- *)

let test_portmap () =
  let pm = Portmap.create () in
  let clock = Smod_sim.Clock.create () in
  Portmap.set pm ~prog:100 ~vers:1 ~port:2049;
  Alcotest.(check (option int)) "lookup" (Some 2049)
    (Portmap.lookup pm ~clock ~prog:100 ~vers:1);
  Alcotest.(check (option int)) "wrong version" None
    (Portmap.lookup pm ~clock ~prog:100 ~vers:2);
  Portmap.unset pm ~prog:100 ~vers:1;
  Alcotest.(check (option int)) "after unset" None
    (Portmap.lookup pm ~clock ~prog:100 ~vers:1);
  Alcotest.(check int) "entries empty" 0 (List.length (Portmap.entries pm))

(* ---------------------------- end to end --------------------------- *)

let with_service f =
  let m = M.create ~jitter:0.0 () in
  let t = Transport.create m in
  let pm = Portmap.create () in
  ignore
    (M.spawn m ~daemon:true ~name:"rpcd" (fun p ->
         Server.serve_forever t pm p ~port:2049 (Testincr.service ())));
  ignore (M.spawn m ~name:"client" (fun p -> f m t pm p));
  M.run m

let test_incr_end_to_end () =
  let results = ref [] in
  with_service (fun _m t pm p ->
      let c = Client.create t pm p ~client_port:40000 in
      List.iter (fun v -> results := Testincr.incr c v :: !results) [ 0; 41; -2; 1000 ]);
  Alcotest.(check (list int)) "increments" [ 1; 42; -1; 1001 ] (List.rev !results)

let test_null_procedure () =
  let ok = ref false in
  with_service (fun _m t pm p ->
      let c = Client.create t pm p ~client_port:40000 in
      Testincr.null c;
      ok := true);
  Alcotest.(check bool) "null returns" true !ok

let test_unknown_program () =
  let failed = ref false in
  with_service (fun _m t pm p ->
      let c = Client.create t pm p ~client_port:40000 in
      match
        Client.call c ~prog:0xBAD ~vers:1 ~proc:0
          ~encode_args:(fun _ -> ())
          ~decode_result:(fun _ -> ())
          ()
      with
      | () -> ()
      | exception Client.Rpc_failure _ -> failed := true);
  Alcotest.(check bool) "not registered" true !failed

let test_unknown_procedure () =
  let failed = ref false in
  with_service (fun _m t pm p ->
      let c = Client.create t pm p ~client_port:40000 in
      match
        Client.call c ~prog:Testincr.program ~vers:Testincr.version ~proc:99
          ~encode_args:(fun _ -> ())
          ~decode_result:(fun _ -> ())
          ()
      with
      | () -> ()
      | exception Client.Rpc_failure msg -> failed := msg = "PROC_UNAVAIL");
  Alcotest.(check bool) "PROC_UNAVAIL" true !failed

let test_version_mismatch () =
  let failed = ref false in
  with_service (fun _m t pm p ->
      Portmap.set pm ~prog:Testincr.program ~vers:99 ~port:2049;
      let c = Client.create t pm p ~client_port:40000 in
      match
        Client.call c ~prog:Testincr.program ~vers:99 ~proc:Testincr.proc_incr
          ~encode_args:(fun e -> Xdr.Encoder.int e 1)
          ~decode_result:Xdr.Decoder.int ()
      with
      | _ -> ()
      | exception Client.Rpc_failure msg -> failed := msg = "PROG_MISMATCH");
  Alcotest.(check bool) "PROG_MISMATCH" true !failed

let test_garbage_args () =
  let failed = ref false in
  with_service (fun _m t pm p ->
      let c = Client.create t pm p ~client_port:40000 in
      match
        (* incr expects an int; send nothing *)
        Client.call c ~prog:Testincr.program ~vers:Testincr.version ~proc:Testincr.proc_incr
          ~encode_args:(fun _ -> ())
          ~decode_result:Xdr.Decoder.int ()
      with
      | _ -> ()
      | exception Client.Rpc_failure msg -> failed := msg = "GARBAGE_ARGS");
  Alcotest.(check bool) "GARBAGE_ARGS" true !failed

let test_rpc_cost_structure () =
  (* The simulated cost of one local RPC must sit in the tens of
     microseconds — an order of magnitude over a SecModule dispatch. *)
  let cost = ref 0.0 in
  with_service (fun m t pm p ->
      let c = Client.create t pm p ~client_port:40000 in
      ignore (Testincr.incr c 1);
      let clock = M.clock m in
      let t0 = Smod_sim.Clock.now_cycles clock in
      for _ = 1 to 50 do
        ignore (Testincr.incr c 1)
      done;
      cost := Smod_sim.Clock.elapsed_us clock ~since:t0 /. 50.0);
  Alcotest.(check bool)
    (Printf.sprintf "40us < %.1f < 90us" !cost)
    true
    (!cost > 40.0 && !cost < 90.0)


(* ------------------------------ rpcgen ----------------------------- *)

module Rpcgen = Smod_rpc.Rpcgen

let calc_idl =
  "# demo program\n\
   program CALC 0x20061234 version 2 {\n\
     void ping(void) = 0;\n\
     int add(int, int) = 1;\n\
     string greet(string) = 2;\n\
     bool check(opaque, uint) = 3;\n\
   }\n"

let test_rpcgen_parse () =
  let spec = Rpcgen.parse calc_idl in
  Alcotest.(check string) "name" "CALC" spec.Rpcgen.spec_name;
  Alcotest.(check int) "prog" 0x20061234 spec.Rpcgen.prog;
  Alcotest.(check int) "vers" 2 spec.Rpcgen.vers;
  Alcotest.(check int) "procs" 4 (List.length spec.Rpcgen.procs);
  match Rpcgen.find_proc spec "add" with
  | Some p ->
      Alcotest.(check int) "add num" 1 p.Rpcgen.proc_num;
      Alcotest.(check int) "add arity" 2 (List.length p.Rpcgen.args)
  | None -> Alcotest.fail "add missing"

let test_rpcgen_parse_errors () =
  let rejects src =
    match Rpcgen.parse src with
    | _ -> false
    | exception Rpcgen.Syntax_error _ -> true
  in
  Alcotest.(check bool) "garbage" true (rejects "not an idl");
  Alcotest.(check bool) "duplicate name" true
    (rejects "program X 1 version 1 { int f(int) = 1; int f(int) = 2; }");
  Alcotest.(check bool) "duplicate number" true
    (rejects "program X 1 version 1 { int f(int) = 1; int g(int) = 1; }");
  Alcotest.(check bool) "void argument" true
    (rejects "program X 1 version 1 { int f(int, void) = 1; }");
  Alcotest.(check bool) "unknown type" true
    (rejects "program X 1 version 1 { float f(int) = 1; }");
  Alcotest.(check bool) "trailing input" true
    (rejects "program X 1 version 1 { } extra")

let calc_impl name (args : Rpcgen.value list) =
  match (name, args) with
  | "ping", [] -> Rpcgen.V_void
  | "add", [ Rpcgen.V_int a; Rpcgen.V_int b ] -> Rpcgen.V_int (a + b)
  | "greet", [ Rpcgen.V_string s ] -> Rpcgen.V_string ("hello " ^ s)
  | "check", [ Rpcgen.V_opaque b; Rpcgen.V_uint n ] -> Rpcgen.V_bool (Bytes.length b = n)
  | "badtype", _ -> Rpcgen.V_string "not an int"
  | _ -> raise (Rpcgen.Type_error "no such procedure")

let with_calc f =
  let m = M.create ~jitter:0.0 () in
  let t = Transport.create m in
  let pm = Portmap.create () in
  let spec = Rpcgen.parse calc_idl in
  ignore
    (M.spawn m ~daemon:true ~name:"calcd" (fun p ->
         Server.serve_forever t pm p ~port:3000 (Rpcgen.service spec ~impl:calc_impl)));
  ignore
    (M.spawn m ~name:"client" (fun p ->
         let c = Client.create t pm p ~client_port:41000 in
         f spec c));
  M.run m

let test_rpcgen_end_to_end () =
  let results = ref [] in
  with_calc (fun spec c ->
      results := Rpcgen.call spec c ~proc:"ping" [] :: !results;
      results := Rpcgen.call spec c ~proc:"add" [ Rpcgen.V_int 20; Rpcgen.V_int 22 ] :: !results;
      results := Rpcgen.call spec c ~proc:"greet" [ Rpcgen.V_string "world" ] :: !results;
      results :=
        Rpcgen.call spec c ~proc:"check" [ Rpcgen.V_opaque (Bytes.create 3); Rpcgen.V_uint 3 ]
        :: !results);
  match List.rev !results with
  | [ Rpcgen.V_void; Rpcgen.V_int 42; Rpcgen.V_string "hello world"; Rpcgen.V_bool true ] -> ()
  | _ -> Alcotest.fail "unexpected results"

let test_rpcgen_client_type_checking () =
  let raised = ref false and unknown = ref false in
  with_calc (fun spec c ->
      (match Rpcgen.call spec c ~proc:"add" [ Rpcgen.V_string "not"; Rpcgen.V_int 1 ] with
      | _ -> ()
      | exception Rpcgen.Type_error _ -> raised := true);
      match Rpcgen.call spec c ~proc:"nothere" [] with
      | _ -> ()
      | exception Not_found -> unknown := true);
  Alcotest.(check bool) "argument type mismatch" true !raised;
  Alcotest.(check bool) "unknown procedure" true !unknown

let test_rpcgen_server_result_type_enforced () =
  (* A buggy implementation returning the wrong type yields GARBAGE_ARGS,
     not a wire-corrupting reply. *)
  let m = M.create ~jitter:0.0 () in
  let t = Transport.create m in
  let pm = Portmap.create () in
  let spec = Rpcgen.parse "program BUGGY 77 version 1 { int badtype(int) = 1; }" in
  ignore
    (M.spawn m ~daemon:true ~name:"buggyd" (fun p ->
         Server.serve_forever t pm p ~port:3001 (Rpcgen.service spec ~impl:calc_impl)));
  let failed = ref false in
  ignore
    (M.spawn m ~name:"client" (fun p ->
         let c = Client.create t pm p ~client_port:41001 in
         match Rpcgen.call spec c ~proc:"badtype" [ Rpcgen.V_int 1 ] with
         | _ -> ()
         | exception Client.Rpc_failure msg -> failed := msg = "GARBAGE_ARGS"));
  M.run m;
  Alcotest.(check bool) "GARBAGE_ARGS" true !failed

let test_rpcgen_header () =
  let spec = Rpcgen.parse calc_idl in
  let header = Rpcgen.header_source spec in
  let contains needle =
    let n = String.length header and m = String.length needle in
    let rec scan i = i + m <= n && (String.sub header i m = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "prog define" true (contains "#define CALC_PROG");
  Alcotest.(check bool) "proc define" true (contains "#define CALC_ADD 1");
  Alcotest.(check bool) "prototype" true (contains "int32_t add_2(int32_t, int32_t);")

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "rpc"
    [
      ( "xdr",
        [
          tc "int roundtrip" test_xdr_int_roundtrip;
          tc "uint roundtrip" test_xdr_uint_roundtrip;
          tc "hyper roundtrip" test_xdr_hyper_roundtrip;
          tc "bool roundtrip" test_xdr_bool_roundtrip;
          tc "bool invalid" test_xdr_bool_invalid;
          tc "string padding" test_xdr_string_padding;
          tc "opaque roundtrip" test_xdr_opaque_roundtrip;
          tc "array roundtrip" test_xdr_array_roundtrip;
          tc "truncation" test_xdr_truncation;
          tc "remaining" test_xdr_remaining;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_xdr_string; prop_xdr_int_list ] );
      ( "messages",
        [
          tc "call roundtrip auth_none" test_call_roundtrip_auth_none;
          tc "call roundtrip auth_sys" test_call_roundtrip_auth_sys;
          tc "reply roundtrips" test_reply_roundtrips;
          tc "reply is not a call" test_reply_not_a_call;
          tc "garbage rejected" test_garbage_bytes_rejected;
        ] );
      ( "transport",
        [
          tc "delivery" test_transport_delivery;
          tc "port collision" test_transport_port_collision;
          tc "send to unbound" test_transport_send_to_unbound;
          tc "foreign recv denied" test_transport_foreign_recv_denied;
          tc "queues multiple" test_transport_queues_multiple;
        ] );
      ("portmap", [ tc "set/lookup/unset" test_portmap ]);
      ( "rpcgen",
        [
          tc "parse" test_rpcgen_parse;
          tc "parse errors" test_rpcgen_parse_errors;
          tc "end to end" test_rpcgen_end_to_end;
          tc "client type checking" test_rpcgen_client_type_checking;
          tc "server result types" test_rpcgen_server_result_type_enforced;
          tc "header generation" test_rpcgen_header;
        ] );
      ( "end-to-end",
        [
          tc "test-incr" test_incr_end_to_end;
          tc "null proc" test_null_procedure;
          tc "unknown program" test_unknown_program;
          tc "unknown procedure" test_unknown_procedure;
          tc "version mismatch" test_version_mismatch;
          tc "garbage args" test_garbage_args;
          tc "cost structure ~60us" test_rpc_cost_structure;
        ] );
    ]
