(* Tests for Smod_crypto: FIPS-197 / FIPS 180-4 / RFC 4231 vectors plus
   algebraic properties of the GF(2^8) field and the cipher modes. *)

module Gf = Smod_crypto.Gf256
module Aes = Smod_crypto.Aes
module Sha256 = Smod_crypto.Sha256
module Hmac = Smod_crypto.Hmac
module Hex = Smod_util.Hexdump

let hex = Hex.of_hex
let to_hex = Hex.to_hex

(* ------------------------------ GF(2^8) ---------------------------- *)

let test_gf_xtime () =
  Alcotest.(check int) "xtime 0x57" 0xae (Gf.xtime 0x57);
  Alcotest.(check int) "xtime 0xae" 0x47 (Gf.xtime 0xae);
  Alcotest.(check int) "xtime 0x80 reduces" 0x1b (Gf.xtime 0x80)

let test_gf_mul_fips_example () =
  (* FIPS-197 section 4.2.1: {57} * {13} = {fe} *)
  Alcotest.(check int) "57*13" 0xfe (Gf.mul 0x57 0x13);
  Alcotest.(check int) "57*83" 0xc1 (Gf.mul 0x57 0x83)

let test_gf_identity () =
  for a = 0 to 255 do
    Alcotest.(check int) "a*1 = a" a (Gf.mul a 1)
  done

let test_gf_inverse () =
  for a = 1 to 255 do
    Alcotest.(check int) (Printf.sprintf "a * inv a = 1 (a=%d)" a) 1 (Gf.mul a (Gf.inv a))
  done;
  Alcotest.(check int) "inv 0 = 0 (AES convention)" 0 (Gf.inv 0)

let prop_gf_commutative =
  QCheck.Test.make ~name:"gf mul commutative" ~count:1000
    QCheck.(pair (int_bound 255) (int_bound 255))
    (fun (a, b) -> Gf.mul a b = Gf.mul b a)

let prop_gf_associative =
  QCheck.Test.make ~name:"gf mul associative" ~count:1000
    QCheck.(triple (int_bound 255) (int_bound 255) (int_bound 255))
    (fun (a, b, c) -> Gf.mul a (Gf.mul b c) = Gf.mul (Gf.mul a b) c)

let prop_gf_distributive =
  QCheck.Test.make ~name:"gf mul distributes over xor" ~count:1000
    QCheck.(triple (int_bound 255) (int_bound 255) (int_bound 255))
    (fun (a, b, c) -> Gf.mul a (b lxor c) = Gf.mul a b lxor Gf.mul a c)

(* ------------------------------- AES ------------------------------- *)

let aes_vector ~key ~plain ~cipher =
  let k = Aes.expand (Bytes.to_string (hex key)) in
  let pt = hex plain in
  let out = Bytes.create 16 in
  Aes.encrypt_block k pt ~src_off:0 out ~dst_off:0;
  Alcotest.(check string) "encrypt" cipher (to_hex out);
  let back = Bytes.create 16 in
  Aes.decrypt_block k out ~src_off:0 back ~dst_off:0;
  Alcotest.(check string) "decrypt" plain (to_hex back)

let test_aes128_fips () =
  (* FIPS-197 Appendix C.1 *)
  aes_vector ~key:"000102030405060708090a0b0c0d0e0f"
    ~plain:"00112233445566778899aabbccddeeff" ~cipher:"69c4e0d86a7b0430d8cdb78070b4c55a"

let test_aes192_fips () =
  aes_vector ~key:"000102030405060708090a0b0c0d0e0f1011121314151617"
    ~plain:"00112233445566778899aabbccddeeff" ~cipher:"dda97ca4864cdfe06eaf70a0ec0d7191"

let test_aes256_fips () =
  aes_vector ~key:"000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
    ~plain:"00112233445566778899aabbccddeeff" ~cipher:"8ea2b7ca516745bfeafc49904b496089"

let test_aes128_appendix_b () =
  (* FIPS-197 Appendix B *)
  aes_vector ~key:"2b7e151628aed2a6abf7158809cf4f3c"
    ~plain:"3243f6a8885a308d313198a2e0370734" ~cipher:"3925841d02dc09fbdc118597196a0b32"

let test_aes_key_lengths () =
  Alcotest.(check int) "128" 128 (Aes.key_bits (Aes.expand (String.make 16 'k')));
  Alcotest.(check int) "192" 192 (Aes.key_bits (Aes.expand (String.make 24 'k')));
  Alcotest.(check int) "256" 256 (Aes.key_bits (Aes.expand (String.make 32 'k')));
  Alcotest.(check int) "10 rounds" 10 (Aes.rounds (Aes.expand (String.make 16 'k')));
  Alcotest.(check int) "14 rounds" 14 (Aes.rounds (Aes.expand (String.make 32 'k')))

let test_aes_bad_key () =
  Alcotest.check_raises "bad key length" (Aes.Bad_key_length 7) (fun () ->
      ignore (Aes.expand "short<<"))

let test_sbox_involution () =
  for i = 0 to 255 do
    Alcotest.(check int) "inv_sbox(sbox(x)) = x" i (Aes.inv_sbox (Aes.sbox i))
  done

let test_sbox_known () =
  (* FIPS-197 figure 7 spot checks *)
  Alcotest.(check int) "sbox 0x00" 0x63 (Aes.sbox 0x00);
  Alcotest.(check int) "sbox 0x53" 0xed (Aes.sbox 0x53);
  Alcotest.(check int) "sbox 0xff" 0x16 (Aes.sbox 0xff)

let key16 = Aes.expand "0123456789abcdef"
let iv16 = Bytes.of_string "fedcba9876543210"

let test_ecb_roundtrip () =
  let data =
    Bytes.of_string (String.concat "" (List.init 4 (fun i -> Printf.sprintf "block %06d data." i)))
  in
  let data = Bytes.sub data 0 64 in
  Alcotest.(check bytes) "roundtrip" data
    (Aes.Mode.ecb_decrypt key16 (Aes.Mode.ecb_encrypt key16 data))

let test_ecb_bad_length () =
  Alcotest.check_raises "not multiple of 16" (Aes.Mode.Bad_input_length 10) (fun () ->
      ignore (Aes.Mode.ecb_encrypt key16 (Bytes.create 10)))

let test_cbc_roundtrip () =
  let data = Bytes.init 80 (fun i -> Char.chr (i * 3 land 0xff)) in
  Alcotest.(check bytes) "roundtrip" data
    (Aes.Mode.cbc_decrypt key16 ~iv:iv16 (Aes.Mode.cbc_encrypt key16 ~iv:iv16 data))

let test_cbc_chains () =
  (* Identical plaintext blocks must yield distinct ciphertext blocks. *)
  let data = Bytes.make 32 'A' in
  let ct = Aes.Mode.cbc_encrypt key16 ~iv:iv16 data in
  Alcotest.(check bool) "blocks differ" false
    (Bytes.equal (Bytes.sub ct 0 16) (Bytes.sub ct 16 16))

let test_ecb_leaks_patterns () =
  (* The well-known ECB weakness — and why SecModule text uses CTR. *)
  let data = Bytes.make 32 'A' in
  let ct = Aes.Mode.ecb_encrypt key16 data in
  Alcotest.(check bytes) "identical blocks encrypt identically" (Bytes.sub ct 0 16)
    (Bytes.sub ct 16 16)

let test_ctr_roundtrip_odd_length () =
  let data = Bytes.of_string "seventeen bytes!!" in
  Alcotest.(check int) "odd length preserved" 17 (Bytes.length data);
  let ct = Aes.Mode.ctr_transform key16 ~nonce:iv16 data in
  Alcotest.(check bool) "changed" false (Bytes.equal ct data);
  Alcotest.(check bytes) "self-inverse" data (Aes.Mode.ctr_transform key16 ~nonce:iv16 ct)

let test_ctr_counter_increments () =
  (* Two identical blocks produce different keystream blocks. *)
  let data = Bytes.make 32 '\000' in
  let ks = Aes.Mode.ctr_transform key16 ~nonce:iv16 data in
  Alcotest.(check bool) "keystream blocks differ" false
    (Bytes.equal (Bytes.sub ks 0 16) (Bytes.sub ks 16 16))

let test_ctr_counter_carry () =
  (* A counter ending at 0xff must carry into the next byte. *)
  let nonce = Bytes.cat (Bytes.make 14 '\000') (Bytes.of_string "\x00\xff") in
  let data = Bytes.make 48 '\000' in
  let ks = Aes.Mode.ctr_transform key16 ~nonce data in
  let blocks = List.init 3 (fun i -> Bytes.sub ks (i * 16) 16) in
  let distinct = List.sort_uniq compare (List.map Bytes.to_string blocks) in
  Alcotest.(check int) "three distinct keystream blocks" 3 (List.length distinct)

let test_pkcs7_roundtrip () =
  List.iter
    (fun n ->
      let data = Bytes.init n (fun i -> Char.chr (i land 0xff)) in
      let padded = Aes.Mode.pkcs7_pad data in
      Alcotest.(check int) "padded multiple of 16" 0 (Bytes.length padded mod 16);
      Alcotest.(check bool) "pad grows" true (Bytes.length padded > n);
      Alcotest.(check bytes) "roundtrip" data (Aes.Mode.pkcs7_unpad padded))
    [ 0; 1; 15; 16; 17; 31; 32; 100 ]

let test_pkcs7_bad () =
  Alcotest.check_raises "empty" Aes.Mode.Bad_padding (fun () ->
      ignore (Aes.Mode.pkcs7_unpad Bytes.empty));
  Alcotest.check_raises "bad trailer" Aes.Mode.Bad_padding (fun () ->
      ignore (Aes.Mode.pkcs7_unpad (Bytes.make 16 '\x00')));
  let tampered = Aes.Mode.pkcs7_pad (Bytes.make 5 'x') in
  Bytes.set tampered 10 '\x07';
  Alcotest.check_raises "inconsistent pad bytes" Aes.Mode.Bad_padding (fun () ->
      ignore (Aes.Mode.pkcs7_unpad tampered))

let prop_ctr_self_inverse =
  QCheck.Test.make ~name:"ctr self-inverse" ~count:200
    QCheck.(string_of_size Gen.(0 -- 200))
    (fun s ->
      let data = Bytes.of_string s in
      Bytes.equal data
        (Aes.Mode.ctr_transform key16 ~nonce:iv16 (Aes.Mode.ctr_transform key16 ~nonce:iv16 data)))

let prop_cbc_roundtrip =
  QCheck.Test.make ~name:"cbc roundtrip (padded)" ~count:200
    QCheck.(string_of_size Gen.(0 -- 200))
    (fun s ->
      let data = Aes.Mode.pkcs7_pad (Bytes.of_string s) in
      Bytes.equal data
        (Aes.Mode.cbc_decrypt key16 ~iv:iv16 (Aes.Mode.cbc_encrypt key16 ~iv:iv16 data)))

(* ------------------------------ SHA-256 ---------------------------- *)

let sha_hex s = Sha256.hex_digest_string s

let test_sha256_empty () =
  Alcotest.(check string) "empty"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855" (sha_hex "")

let test_sha256_abc () =
  Alcotest.(check string) "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad" (sha_hex "abc")

let test_sha256_448bits () =
  Alcotest.(check string) "two-block message"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (sha_hex "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")

let test_sha256_million_a () =
  Alcotest.(check string) "million 'a'"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (sha_hex (String.make 1_000_000 'a'))

let test_sha256_incremental () =
  let whole = sha_hex "the quick brown fox jumps over the lazy dog" in
  let ctx = Sha256.init () in
  Sha256.update_string ctx "the quick brown fox ";
  Sha256.update_string ctx "jumps over ";
  Sha256.update_string ctx "the lazy dog";
  Alcotest.(check string) "incremental = one-shot" whole (to_hex (Sha256.finalize ctx))

let test_sha256_block_boundaries () =
  (* Lengths straddling the 55/56/64-byte padding boundaries, fed one
     byte at a time. *)
  List.iter
    (fun n ->
      let s = String.make n 'x' in
      let ctx = Sha256.init () in
      String.iter (fun c -> Sha256.update_string ctx (String.make 1 c)) s;
      Alcotest.(check string)
        (Printf.sprintf "len %d byte-at-a-time" n)
        (sha_hex s)
        (to_hex (Sha256.finalize ctx)))
    [ 54; 55; 56; 57; 63; 64; 65; 127; 128; 129 ]

(* ------------------------------- HMAC ------------------------------ *)

let test_hmac_rfc4231_case1 () =
  Alcotest.(check string) "case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Hmac.mac_hex ~key:(String.make 20 '\x0b') "Hi There")

let test_hmac_rfc4231_case2 () =
  Alcotest.(check string) "case 2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Hmac.mac_hex ~key:"Jefe" "what do ya want for nothing?")

let test_hmac_rfc4231_case3 () =
  Alcotest.(check string) "case 3"
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (Hmac.mac_hex ~key:(String.make 20 '\xaa') (String.make 50 '\xdd'))

let test_hmac_rfc4231_case6_long_key () =
  Alcotest.(check string) "case 6 (key > block size)"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Hmac.mac_hex
       ~key:(String.make 131 '\xaa')
       "Test Using Larger Than Block-Size Key - Hash Key First")

let test_hmac_verify () =
  let tag = Hmac.mac ~key:"secret" "message" in
  Alcotest.(check bool) "valid" true (Hmac.verify ~key:"secret" ~tag "message");
  Alcotest.(check bool) "wrong message" false (Hmac.verify ~key:"secret" ~tag "messagf");
  Alcotest.(check bool) "wrong key" false (Hmac.verify ~key:"Secret" ~tag "message");
  Alcotest.(check bool) "truncated tag" false
    (Hmac.verify ~key:"secret" ~tag:(Bytes.sub tag 0 16) "message")

let prop_hmac_distinct_keys =
  QCheck.Test.make ~name:"distinct keys give distinct tags" ~count:200
    QCheck.(pair (string_of_size Gen.(1 -- 40)) (string_of_size Gen.(1 -- 40)))
    (fun (k1, k2) ->
      QCheck.assume (k1 <> k2);
      Hmac.mac_hex ~key:k1 "fixed message" <> Hmac.mac_hex ~key:k2 "fixed message")

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "crypto"
    [
      ( "gf256",
        [
          tc "xtime" test_gf_xtime;
          tc "FIPS mul examples" test_gf_mul_fips_example;
          tc "multiplicative identity" test_gf_identity;
          tc "inverses" test_gf_inverse;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_gf_commutative; prop_gf_associative; prop_gf_distributive ] );
      ( "aes",
        [
          tc "FIPS-197 C.1 (128)" test_aes128_fips;
          tc "FIPS-197 C.2 (192)" test_aes192_fips;
          tc "FIPS-197 C.3 (256)" test_aes256_fips;
          tc "FIPS-197 B" test_aes128_appendix_b;
          tc "key lengths/rounds" test_aes_key_lengths;
          tc "bad key length" test_aes_bad_key;
          tc "sbox involution" test_sbox_involution;
          tc "sbox known values" test_sbox_known;
        ] );
      ( "modes",
        [
          tc "ecb roundtrip" test_ecb_roundtrip;
          tc "ecb bad length" test_ecb_bad_length;
          tc "ecb leaks patterns" test_ecb_leaks_patterns;
          tc "cbc roundtrip" test_cbc_roundtrip;
          tc "cbc chains" test_cbc_chains;
          tc "ctr roundtrip odd len" test_ctr_roundtrip_odd_length;
          tc "ctr keystream advances" test_ctr_counter_increments;
          tc "ctr counter carry" test_ctr_counter_carry;
          tc "pkcs7 roundtrip" test_pkcs7_roundtrip;
          tc "pkcs7 malformed" test_pkcs7_bad;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_ctr_self_inverse; prop_cbc_roundtrip ] );
      ( "sha256",
        [
          tc "empty" test_sha256_empty;
          tc "abc" test_sha256_abc;
          tc "two-block" test_sha256_448bits;
          tc "million a" test_sha256_million_a;
          tc "incremental" test_sha256_incremental;
          tc "padding boundaries" test_sha256_block_boundaries;
        ] );
      ( "hmac",
        [
          tc "rfc4231 case 1" test_hmac_rfc4231_case1;
          tc "rfc4231 case 2" test_hmac_rfc4231_case2;
          tc "rfc4231 case 3" test_hmac_rfc4231_case3;
          tc "rfc4231 case 6" test_hmac_rfc4231_case6_long_key;
          tc "verify" test_hmac_verify;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_hmac_distinct_keys ] );
    ]
