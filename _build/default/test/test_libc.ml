(* Tests for Smod_libc: the in-simulated-memory allocator and the string
   functions, plus the seclibc module called through a real SecModule
   session. *)

module M = Smod_kern.Machine
module Proc = Smod_kern.Proc
module Aspace = Smod_vmem.Aspace
module Layout = Smod_vmem.Layout
module Alloc = Smod_libc.Alloc
module Str_ = Smod_libc.Str
open Secmodule

let mk_space () =
  let m = M.create ~jitter:0.0 () in
  let a = M.standard_aspace m ~name:"libc-test" in
  (m, a)

(* ------------------------------ alloc ------------------------------ *)

let test_malloc_basic () =
  let _, a = mk_space () in
  let p = Alloc.malloc a 100 in
  Alcotest.(check bool) "non-null" true (p <> 0);
  Alcotest.(check int) "8-aligned" 0 (p mod 8);
  (* The payload is usable memory. *)
  Aspace.write_word a ~addr:p 0xFEED;
  Aspace.write_word a ~addr:(p + 96) 0xF00D;
  Alcotest.(check int) "stores work" 0xFEED (Aspace.read_word a ~addr:p)

let test_malloc_zero_and_negative () =
  let _, a = mk_space () in
  Alcotest.(check int) "size 0" 0 (Alloc.malloc a 0);
  Alcotest.(check int) "negative" 0 (Alloc.malloc a (-5))

let test_malloc_distinct_blocks () =
  let _, a = mk_space () in
  let p1 = Alloc.malloc a 32 and p2 = Alloc.malloc a 32 in
  Alcotest.(check bool) "disjoint" true (p2 >= p1 + 32 || p1 >= p2 + 32)

let test_free_and_reuse () =
  let _, a = mk_space () in
  let p1 = Alloc.malloc a 64 in
  Alloc.free a p1;
  let p2 = Alloc.malloc a 64 in
  Alcotest.(check int) "block reused" p1 p2

let test_free_null_ok () =
  let _, a = mk_space () in
  Alloc.free a 0

let test_double_free_detected () =
  let _, a = mk_space () in
  let p = Alloc.malloc a 64 in
  Alloc.free a p;
  Alcotest.(check bool) "double free raises" true
    (match Alloc.free a p with () -> false | exception Invalid_argument _ -> true)

let test_wild_free_detected () =
  let _, a = mk_space () in
  let p = Alloc.malloc a 64 in
  Alcotest.(check bool) "pointer inside a block" true
    (match Alloc.free a (p + 4) with
    | () -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "pointer outside arena" true
    (match Alloc.free a 8 with () -> false | exception Invalid_argument _ -> true)

let test_coalescing () =
  let _, a = mk_space () in
  let p1 = Alloc.malloc a 64 in
  let p2 = Alloc.malloc a 64 in
  let p3 = Alloc.malloc a 64 in
  ignore (Alloc.malloc a 16) (* keep the tail allocated *);
  Alloc.free a p1;
  Alloc.free a p3;
  Alloc.free a p2;
  (* All three must have merged into one block. *)
  (match Alloc.check_invariants a with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let big = Alloc.malloc a 200 in
  Alcotest.(check int) "merged region satisfies big request" p1 big

let test_split_leaves_remainder_usable () =
  let _, a = mk_space () in
  let p = Alloc.malloc a 4000 in
  Alloc.free a p;
  let small = Alloc.malloc a 16 in
  let rest = Alloc.malloc a 3000 in
  Alcotest.(check bool) "both satisfied from split" true (small <> 0 && rest <> 0);
  match Alloc.check_invariants a with Ok () -> () | Error e -> Alcotest.fail e

let test_calloc_zeroes () =
  let _, a = mk_space () in
  let p = Alloc.malloc a 64 in
  Aspace.write_word a ~addr:p 0xDEAD;
  Alloc.free a p;
  let q = Alloc.calloc a ~count:16 ~size:4 in
  Alcotest.(check int) "reused block zeroed" 0 (Aspace.read_word a ~addr:q)

let test_realloc_grow_preserves () =
  let _, a = mk_space () in
  let p = Alloc.malloc a 16 in
  Aspace.write_word a ~addr:p 111;
  Aspace.write_word a ~addr:(p + 12) 222;
  let q = Alloc.realloc a p 4000 in
  Alcotest.(check int) "word 0" 111 (Aspace.read_word a ~addr:q);
  Alcotest.(check int) "word 3" 222 (Aspace.read_word a ~addr:(q + 12))

let test_realloc_shrink_in_place () =
  let _, a = mk_space () in
  let p = Alloc.malloc a 100 in
  Alcotest.(check int) "shrink keeps pointer" p (Alloc.realloc a p 50)

let test_realloc_null_is_malloc () =
  let _, a = mk_space () in
  Alcotest.(check bool) "realloc NULL" true (Alloc.realloc a 0 32 <> 0)

let test_realloc_zero_is_free () =
  let _, a = mk_space () in
  let p = Alloc.malloc a 32 in
  Alcotest.(check int) "returns null" 0 (Alloc.realloc a p 0);
  Alcotest.(check int) "freed" 0 (Alloc.allocated_bytes a)

let test_allocated_bytes_accounting () =
  let _, a = mk_space () in
  Alcotest.(check int) "empty arena" 0 (Alloc.allocated_bytes a);
  let p = Alloc.malloc a 100 in
  Alcotest.(check bool) "tracks live bytes" true (Alloc.allocated_bytes a >= 100);
  Alloc.free a p;
  Alcotest.(check int) "back to zero" 0 (Alloc.allocated_bytes a)

let test_heap_grows_on_demand () =
  let _, a = mk_space () in
  let brk0 = Aspace.brk a in
  let p = Alloc.malloc a 100_000 in
  Alcotest.(check bool) "satisfied" true (p <> 0);
  Alcotest.(check bool) "brk advanced" true (Aspace.brk a > brk0 + 100_000)

let prop_alloc_random_ops =
  (* Random malloc/free interleavings keep the free-list invariants and
     never hand out overlapping blocks. *)
  QCheck.Test.make ~name:"random malloc/free keeps invariants" ~count:60
    QCheck.(list_of_size Gen.(1 -- 60) (pair bool (int_bound 400)))
    (fun ops ->
      let _, a = mk_space () in
      let live = ref [] in
      List.iter
        (fun (do_free, size) ->
          if do_free && !live <> [] then begin
            match !live with
            | (p, _) :: rest ->
                Alloc.free a p;
                live := rest
            | [] -> ()
          end
          else begin
            let p = Alloc.malloc a (size + 1) in
            if p <> 0 then live := (p, size + 1) :: !live
          end)
        ops;
      (* no overlaps among live blocks *)
      let sorted = List.sort compare !live in
      let rec no_overlap = function
        | (p1, s1) :: ((p2, _) :: _ as rest) -> p1 + s1 <= p2 && no_overlap rest
        | _ -> true
      in
      no_overlap sorted && Alloc.check_invariants a = Ok ())

(* ----------------------------- strings ----------------------------- *)

let put _m a s =
  let p = Alloc.malloc a (String.length s + 1) in
  Aspace.write_string a ~addr:p s;
  p

let test_strlen () =
  let m, a = mk_space () in
  Alcotest.(check int) "hello" 5 (Str_.strlen a (put m a "hello"));
  Alcotest.(check int) "empty" 0 (Str_.strlen a (put m a ""))

let test_strcpy_strcmp () =
  let m, a = mk_space () in
  let src = put m a "copy me" in
  let dst = Alloc.malloc a 32 in
  Alcotest.(check int) "returns dst" dst (Str_.strcpy a ~dst ~src);
  Alcotest.(check int) "equal" 0 (Str_.strcmp a src dst);
  Alcotest.(check string) "content" "copy me" (Aspace.read_string a ~addr:dst ~max_len:32)

let test_strcmp_ordering () =
  let m, a = mk_space () in
  let abc = put m a "abc" and abd = put m a "abd" and ab = put m a "ab" in
  Alcotest.(check bool) "abc < abd" true (Str_.strcmp a abc abd < 0);
  Alcotest.(check bool) "abd > abc" true (Str_.strcmp a abd abc > 0);
  Alcotest.(check bool) "prefix is smaller" true (Str_.strcmp a ab abc < 0)

let test_strncmp () =
  let m, a = mk_space () in
  let s1 = put m a "prefix_one" and s2 = put m a "prefix_two" in
  Alcotest.(check int) "equal up to 7" 0 (Str_.strncmp a s1 s2 ~n:7);
  Alcotest.(check bool) "differ at 8" true (Str_.strncmp a s1 s2 ~n:8 <> 0)

let test_strncpy_pads () =
  let m, a = mk_space () in
  let src = put m a "ab" in
  let dst = Alloc.malloc a 8 in
  Aspace.write_bytes a ~addr:dst (Bytes.make 8 'x');
  ignore (Str_.strncpy a ~dst ~src ~n:6);
  Alcotest.(check string) "copied" "ab" (Aspace.read_string a ~addr:dst ~max_len:8);
  (* NUL padding to n *)
  Alcotest.(check int) "padded" 0 (Aspace.read_u8 a ~addr:(dst + 5))

let test_strchr () =
  let m, a = mk_space () in
  let s = put m a "find the f" in
  Alcotest.(check int) "first f" s (Str_.strchr a s 'f');
  Alcotest.(check int) "the t" (s + 5) (Str_.strchr a s 't');
  Alcotest.(check int) "missing" 0 (Str_.strchr a s 'z')

let test_strcat () =
  let m, a = mk_space () in
  let dst = Alloc.malloc a 32 in
  Aspace.write_string a ~addr:dst "hello ";
  let src = put m a "world" in
  ignore (Str_.strcat a ~dst ~src);
  Alcotest.(check string) "concatenated" "hello world"
    (Aspace.read_string a ~addr:dst ~max_len:32)

let test_memcpy_memcmp_memset () =
  let _, a = mk_space () in
  let src = Alloc.malloc a 64 and dst = Alloc.malloc a 64 in
  Aspace.write_bytes a ~addr:src (Bytes.init 64 (fun i -> Char.chr (i land 0xff)));
  ignore (Str_.memcpy a ~dst ~src ~n:64);
  Alcotest.(check int) "memcmp equal" 0 (Str_.memcmp a src dst ~n:64);
  ignore (Str_.memset a ~dst:(dst + 32) ~byte:0xAB ~n:8);
  Alcotest.(check bool) "memcmp differs after memset" true (Str_.memcmp a src dst ~n:64 <> 0);
  Alcotest.(check int) "memset wrote" 0xAB (Aspace.read_u8 a ~addr:(dst + 35))

let test_atoi () =
  let m, a = mk_space () in
  List.iter
    (fun (s, want) -> Alcotest.(check int) s want (Str_.atoi a (put m a s)))
    [ ("0", 0); ("42", 42); ("-17", -17); ("+8", 8); ("  12x", 12); ("junk", 0); ("", 0) ]

let prop_str_matches_ocaml =
  QCheck.Test.make ~name:"strlen/strcmp agree with OCaml" ~count:150
    (let str_gen = QCheck.Gen.(string_size ~gen:(char_range 'a' 'z') (0 -- 50)) in
     QCheck.(pair (make str_gen) (make str_gen)))
    (fun (s1, s2) ->
      let m, a = mk_space () in
      let p1 = put m a s1 and p2 = put m a s2 in
      Str_.strlen a p1 = String.length s1
      && compare (Str_.strcmp a p1 p2) 0 = compare (compare s1 s2) 0)

(* --------------------- seclibc through a session -------------------- *)

let with_session f =
  let m = M.create ~jitter:0.0 () in
  let smod = Smod.install m () in
  ignore (Smod_libc.Seclibc.install smod ());
  ignore
    (M.spawn m ~name:"client" (fun p ->
         Crt0.run_client smod p ~module_name:"seclibc" ~version:1
           ~credential:(Credential.make ~principal:"tester" ())
           (fun conn -> f m p conn)));
  M.run m

let test_seclibc_malloc_on_client_heap () =
  with_session (fun _m p conn ->
      let module C = Smod_libc.Seclibc.Client in
      let ptr = C.malloc conn 64 in
      Alcotest.(check bool) "allocated" true (ptr <> 0);
      (* The pointer is in the CLIENT's heap region and directly usable. *)
      Alcotest.(check bool) "in heap range" true
        (ptr >= Aspace.heap_base p.Proc.aspace && ptr < Layout.share_hi);
      Aspace.write_string p.Proc.aspace ~addr:ptr "direct client write";
      Alcotest.(check int) "handle strlen sees it" 19 (C.strlen conn ptr))

let test_seclibc_malloc_free_cycles () =
  with_session (fun _m p conn ->
      let module C = Smod_libc.Seclibc.Client in
      let ptrs = List.init 10 (fun i -> C.malloc conn ((i + 1) * 24)) in
      List.iter (fun ptr -> C.free conn ptr) ptrs;
      Alcotest.(check int) "all freed" 0 (Alloc.allocated_bytes p.Proc.aspace);
      match Alloc.check_invariants p.Proc.aspace with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)

let test_seclibc_string_functions_cross_process () =
  with_session (fun _m p conn ->
      let module C = Smod_libc.Seclibc.Client in
      let s1 = C.malloc conn 32 and s2 = C.malloc conn 32 in
      Aspace.write_string p.Proc.aspace ~addr:s1 "compare";
      ignore (C.strcpy conn ~dst:s2 ~src:s1);
      Alcotest.(check int) "strcmp equal" 0 (C.strcmp conn s1 s2);
      Aspace.write_string p.Proc.aspace ~addr:s2 "compared";
      Alcotest.(check bool) "strcmp detects difference" true (C.strcmp conn s1 s2 <> 0))

let test_seclibc_memops () =
  with_session (fun _m p conn ->
      let module C = Smod_libc.Seclibc.Client in
      let src = C.malloc conn 64 and dst = C.calloc conn ~count:16 ~size:4 in
      Aspace.write_bytes p.Proc.aspace ~addr:src (Bytes.make 64 'Q');
      ignore (C.memcpy conn ~dst ~src ~n:64);
      Alcotest.(check int) "memcmp equal" 0 (C.memcmp conn src dst ~n:64);
      ignore (C.memset conn ~dst ~byte:0 ~n:64);
      Alcotest.(check bool) "memcmp differs" true (C.memcmp conn src dst ~n:64 <> 0))

let test_seclibc_bytecode_members () =
  with_session (fun _m _p conn ->
      let module C = Smod_libc.Seclibc.Client in
      Alcotest.(check int) "test_incr" 42 (C.test_incr conn 41);
      Alcotest.(check int) "abs(-9)" 9 (C.abs conn (-9));
      Alcotest.(check int) "abs(9)" 9 (C.abs conn 9);
      Alcotest.(check int) "atoi via module" (-321)
        (let ptr = C.malloc conn 8 in
         Aspace.write_string _p.Proc.aspace ~addr:ptr "-321";
         C.atoi conn ptr))

let test_seclibc_getpid_is_client () =
  with_session (fun _m p conn ->
      Alcotest.(check int) "client pid" p.Proc.pid (Smod_libc.Seclibc.Client.getpid conn))

let test_seclibc_image_inventory () =
  let image = Smod_libc.Seclibc.image () in
  let names =
    List.map (fun s -> s.Smod_modfmt.Smof.sym_name) (Smod_modfmt.Smof.function_symbols image)
  in
  List.iter
    (fun wanted ->
      Alcotest.(check bool) (wanted ^ " present") true (List.mem wanted names))
    [ "malloc"; "free"; "calloc"; "realloc"; "memcpy"; "strlen"; "strcmp"; "getpid"; "abs" ]


(* --------------------------- new string ops ------------------------- *)

let test_memmove_overlap () =
  let _, a = mk_space () in
  let buf = Alloc.malloc a 32 in
  Aspace.write_bytes a ~addr:buf (Bytes.of_string "0123456789");
  (* overlapping shift right by 3 *)
  ignore (Str_.memmove a ~dst:(buf + 3) ~src:buf ~n:10);
  Alcotest.(check string) "shifted" "0120123456789"
    (Bytes.to_string (Aspace.read_bytes a ~addr:buf ~len:13));
  (* overlapping shift left *)
  ignore (Str_.memmove a ~dst:buf ~src:(buf + 3) ~n:10);
  Alcotest.(check string) "shifted back" "0123456789"
    (Bytes.to_string (Aspace.read_bytes a ~addr:buf ~len:10))

let test_memchr () =
  let _, a = mk_space () in
  let buf = Alloc.malloc a 16 in
  Aspace.write_bytes a ~addr:buf (Bytes.of_string "ab\x00cdc");
  Alcotest.(check int) "finds byte" (buf + 3) (Str_.memchr a buf ~byte:(Char.code 'c') ~n:6);
  Alcotest.(check int) "respects n" 0 (Str_.memchr a buf ~byte:(Char.code 'd') ~n:3);
  Alcotest.(check int) "finds NUL" (buf + 2) (Str_.memchr a buf ~byte:0 ~n:6)

let test_strstr () =
  let m, a = mk_space () in
  let hay = put m a "the quick brown fox" in
  Alcotest.(check int) "found" (hay + 4) (Str_.strstr a ~haystack:hay ~needle:(put m a "quick"));
  Alcotest.(check int) "missing" 0 (Str_.strstr a ~haystack:hay ~needle:(put m a "wolf"));
  Alcotest.(check int) "empty needle" hay (Str_.strstr a ~haystack:hay ~needle:(put m a ""));
  Alcotest.(check int) "suffix" (hay + 16) (Str_.strstr a ~haystack:hay ~needle:(put m a "fox"))

let test_strrchr () =
  let m, a = mk_space () in
  let s = put m a "abcabc" in
  Alcotest.(check int) "last b" (s + 4) (Str_.strrchr a s 'b');
  Alcotest.(check int) "missing" 0 (Str_.strrchr a s 'z');
  Alcotest.(check int) "NUL searchable" (s + 6) (Str_.strrchr a s '\000')

let test_strncat () =
  let m, a = mk_space () in
  let dst = Alloc.malloc a 32 in
  Aspace.write_string a ~addr:dst "ab";
  ignore (Str_.strncat a ~dst ~src:(put m a "cdefgh") ~n:3);
  Alcotest.(check string) "limited concat" "abcde" (Aspace.read_string a ~addr:dst ~max_len:32)

let test_strtol () =
  let m, a = mk_space () in
  let case s base want want_consumed =
    let ptr = put m a s in
    let v, endp = Str_.strtol a ptr ~base in
    Alcotest.(check int) (s ^ " value") want v;
    Alcotest.(check int) (s ^ " end") (ptr + want_consumed) endp
  in
  case "123" 10 123 3;
  case "  -42xyz" 10 (-42) 5;
  case "ff" 16 255 2;
  case "0x1A" 0 26 4;
  case "0755" 0 493 4;
  case "101" 2 5 3;
  case "z" 36 35 1;
  case "junk" 10 0 0

let test_itoa () =
  let _, a = mk_space () in
  let buf = Alloc.malloc a 48 in
  let case value base want =
    ignore (Str_.itoa a ~value ~buf ~base);
    Alcotest.(check string) (Printf.sprintf "%d base %d" value base) want
      (Aspace.read_string a ~addr:buf ~max_len:48)
  in
  case 0 10 "0";
  case 1234 10 "1234";
  case (-17) 10 "-17";
  case 255 16 "ff";
  case 5 2 "101";
  (* base 16 is unsigned: -1 is 0xffffffff *)
  case (-1) 16 "ffffffff"

let prop_strtol_matches_ocaml =
  QCheck.Test.make ~name:"strtol base 10 matches int_of_string" ~count:200
    QCheck.(int_range (-1000000) 1000000)
    (fun v ->
      let m, a = mk_space () in
      let ptr = put m a (string_of_int v) in
      fst (Str_.strtol a ptr ~base:10) = v)

let prop_itoa_strtol_roundtrip =
  QCheck.Test.make ~name:"itoa/strtol roundtrip across bases" ~count:200
    QCheck.(pair (int_range 0 0xFFFFFF) (int_range 2 36))
    (fun (v, base) ->
      let _, a = mk_space () in
      let buf = Alloc.malloc a 64 in
      ignore (Str_.itoa a ~value:v ~buf ~base);
      fst (Str_.strtol a buf ~base) = v)

(* ------------------------------- sort -------------------------------- *)

module Sort_ = Smod_libc.Sort

let write_words a base xs = List.iteri (fun i v -> Aspace.write_word a ~addr:(base + (4 * i)) v) xs

let read_words a base n = List.init n (fun i -> Aspace.read_word a ~addr:(base + (4 * i)))

let test_qsort_words () =
  let _, a = mk_space () in
  let base = Alloc.malloc a 64 in
  write_words a base [ 5; 3; 9; 1; 7; 3; 0; 8 ];
  Sort_.qsort a ~base ~nmemb:8 ~size:4 ~cmp:Sort_.Words_unsigned;
  Alcotest.(check (list int)) "sorted" [ 0; 1; 3; 3; 5; 7; 8; 9 ] (read_words a base 8);
  Alcotest.(check bool) "is_sorted" true
    (Sort_.is_sorted a ~base ~nmemb:8 ~size:4 ~cmp:Sort_.Words_unsigned)

let test_qsort_signed_vs_unsigned () =
  let _, a = mk_space () in
  let base = Alloc.malloc a 16 in
  write_words a base [ 0xFFFFFFFF (* -1 *); 1; 0 ];
  Sort_.qsort a ~base ~nmemb:3 ~size:4 ~cmp:Sort_.Words_signed;
  Alcotest.(check (list int)) "signed order" [ 0xFFFFFFFF; 0; 1 ] (read_words a base 3);
  Sort_.qsort a ~base ~nmemb:3 ~size:4 ~cmp:Sort_.Words_unsigned;
  Alcotest.(check (list int)) "unsigned order" [ 0; 1; 0xFFFFFFFF ] (read_words a base 3)

let test_qsort_descending () =
  let _, a = mk_space () in
  let base = Alloc.malloc a 32 in
  write_words a base [ 2; 9; 4; 1 ];
  Sort_.qsort a ~base ~nmemb:4 ~size:4 ~cmp:Sort_.Words_unsigned_desc;
  Alcotest.(check (list int)) "descending" [ 9; 4; 2; 1 ] (read_words a base 4)

let test_qsort_lexicographic () =
  let _, a = mk_space () in
  let base = Alloc.malloc a 64 in
  let rows = [ "delta."; "alpha."; "chess."; "bravo." ] in
  List.iteri
    (fun i s -> Aspace.write_bytes a ~addr:(base + (6 * i)) (Bytes.of_string s))
    rows;
  Sort_.qsort a ~base ~nmemb:4 ~size:6 ~cmp:Sort_.Lexicographic;
  let got = List.init 4 (fun i -> Bytes.to_string (Aspace.read_bytes a ~addr:(base + (6 * i)) ~len:6)) in
  Alcotest.(check (list string)) "lex order" [ "alpha."; "bravo."; "chess."; "delta." ] got

let test_qsort_edge_cases () =
  let _, a = mk_space () in
  let base = Alloc.malloc a 16 in
  Sort_.qsort a ~base ~nmemb:0 ~size:4 ~cmp:Sort_.Words_unsigned;
  write_words a base [ 42 ];
  Sort_.qsort a ~base ~nmemb:1 ~size:4 ~cmp:Sort_.Words_unsigned;
  Alcotest.(check (list int)) "singleton untouched" [ 42 ] (read_words a base 1);
  Alcotest.(check bool) "word cmp needs size 4" true
    (match Sort_.qsort a ~base ~nmemb:2 ~size:8 ~cmp:Sort_.Words_unsigned with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_bsearch () =
  let _, a = mk_space () in
  let base = Alloc.malloc a 64 in
  write_words a base [ 2; 5; 9; 14; 20; 31 ];
  let key = Alloc.malloc a 8 in
  let find v =
    Aspace.write_word a ~addr:key v;
    Sort_.bsearch a ~key ~base ~nmemb:6 ~size:4 ~cmp:Sort_.Words_unsigned
  in
  Alcotest.(check int) "first" base (find 2);
  Alcotest.(check int) "middle" (base + 12) (find 14);
  Alcotest.(check int) "last" (base + 20) (find 31);
  Alcotest.(check int) "absent" 0 (find 13);
  Alcotest.(check int) "empty array" 0
    (Sort_.bsearch a ~key ~base ~nmemb:0 ~size:4 ~cmp:Sort_.Words_unsigned)

let prop_qsort_matches_list_sort =
  QCheck.Test.make ~name:"qsort matches List.sort" ~count:100
    QCheck.(list_of_size Gen.(0 -- 80) (int_bound 100000))
    (fun xs ->
      let _, a = mk_space () in
      let n = List.length xs in
      let base = Alloc.malloc a (max 4 (4 * n)) in
      write_words a base xs;
      Sort_.qsort a ~base ~nmemb:n ~size:4 ~cmp:Sort_.Words_unsigned;
      read_words a base n = List.sort compare xs)

let prop_bsearch_finds_all_members =
  QCheck.Test.make ~name:"bsearch finds every member of a sorted array" ~count:100
    QCheck.(list_of_size Gen.(1 -- 40) (int_bound 10000))
    (fun xs ->
      let _, a = mk_space () in
      let xs = List.sort_uniq compare xs in
      let n = List.length xs in
      let base = Alloc.malloc a (4 * n) in
      write_words a base xs;
      let key = Alloc.malloc a 8 in
      List.for_all
        (fun v ->
          Aspace.write_word a ~addr:key v;
          let hit = Sort_.bsearch a ~key ~base ~nmemb:n ~size:4 ~cmp:Sort_.Words_unsigned in
          hit <> 0 && Aspace.read_word a ~addr:hit = v)
        xs)

(* --------------------- new functions over SecModule ------------------ *)

let test_seclibc_qsort_bsearch () =
  with_session (fun _m p conn ->
      let module C = Smod_libc.Seclibc.Client in
      let base = C.malloc conn 64 in
      write_words p.Proc.aspace base [ 31; 2; 20; 9; 5; 14 ];
      C.qsort conn ~base ~nmemb:6 ~size:4 ~cmp_code:0;
      Alcotest.(check (list int)) "sorted via handle" [ 2; 5; 9; 14; 20; 31 ]
        (read_words p.Proc.aspace base 6);
      let key = C.malloc conn 8 in
      Aspace.write_word p.Proc.aspace ~addr:key 20;
      Alcotest.(check int) "bsearch via handle" (base + 16)
        (C.bsearch conn ~key ~base ~nmemb:6 ~size:4 ~cmp_code:0))

let test_seclibc_strtol_endptr () =
  with_session (fun _m p conn ->
      let module C = Smod_libc.Seclibc.Client in
      let s = C.malloc conn 16 and endptr = C.malloc conn 8 in
      Aspace.write_string p.Proc.aspace ~addr:s "-123xy";
      Alcotest.(check int) "value" (-123) (C.strtol conn s ~endptr ~base:10);
      Alcotest.(check int) "endptr written by handle" (s + 4)
        (Aspace.read_word p.Proc.aspace ~addr:endptr))

let test_seclibc_itoa_strstr () =
  with_session (fun _m p conn ->
      let module C = Smod_libc.Seclibc.Client in
      let buf = C.malloc conn 32 in
      ignore (C.itoa conn ~value:48879 ~buf ~base:16);
      Alcotest.(check string) "beef" "beef" (Aspace.read_string p.Proc.aspace ~addr:buf ~max_len:8);
      let hay = C.malloc conn 32 and needle = C.malloc conn 8 in
      Aspace.write_string p.Proc.aspace ~addr:hay "dead beef cafe";
      Aspace.write_string p.Proc.aspace ~addr:needle "beef";
      Alcotest.(check int) "strstr via handle" (hay + 5)
        (C.strstr conn ~haystack:hay ~needle))

let test_seclibc_memmove_overlap () =
  with_session (fun _m p conn ->
      let module C = Smod_libc.Seclibc.Client in
      let buf = C.malloc conn 32 in
      Aspace.write_bytes p.Proc.aspace ~addr:buf (Bytes.of_string "0123456789");
      ignore (C.memmove conn ~dst:(buf + 2) ~src:buf ~n:8);
      Alcotest.(check string) "overlap-safe via handle" "0101234567"
        (Bytes.to_string (Aspace.read_bytes p.Proc.aspace ~addr:buf ~len:10)))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "libc"
    [
      ( "alloc",
        [
          tc "malloc basic" test_malloc_basic;
          tc "malloc size<=0" test_malloc_zero_and_negative;
          tc "distinct blocks" test_malloc_distinct_blocks;
          tc "free and reuse" test_free_and_reuse;
          tc "free NULL" test_free_null_ok;
          tc "double free" test_double_free_detected;
          tc "wild free" test_wild_free_detected;
          tc "coalescing" test_coalescing;
          tc "split remainder" test_split_leaves_remainder_usable;
          tc "calloc zeroes" test_calloc_zeroes;
          tc "realloc grow" test_realloc_grow_preserves;
          tc "realloc shrink in place" test_realloc_shrink_in_place;
          tc "realloc NULL" test_realloc_null_is_malloc;
          tc "realloc to zero" test_realloc_zero_is_free;
          tc "allocated_bytes" test_allocated_bytes_accounting;
          tc "heap grows" test_heap_grows_on_demand;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_alloc_random_ops ] );
      ( "strings",
        [
          tc "strlen" test_strlen;
          tc "strcpy/strcmp" test_strcpy_strcmp;
          tc "strcmp ordering" test_strcmp_ordering;
          tc "strncmp" test_strncmp;
          tc "strncpy pads" test_strncpy_pads;
          tc "strchr" test_strchr;
          tc "strcat" test_strcat;
          tc "mem ops" test_memcpy_memcmp_memset;
          tc "atoi" test_atoi;
          tc "memmove overlap" test_memmove_overlap;
          tc "memchr" test_memchr;
          tc "strstr" test_strstr;
          tc "strrchr" test_strrchr;
          tc "strncat" test_strncat;
          tc "strtol" test_strtol;
          tc "itoa" test_itoa;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_str_matches_ocaml; prop_strtol_matches_ocaml; prop_itoa_strtol_roundtrip ] );
      ( "sort",
        [
          tc "qsort words" test_qsort_words;
          tc "signed vs unsigned" test_qsort_signed_vs_unsigned;
          tc "descending" test_qsort_descending;
          tc "lexicographic" test_qsort_lexicographic;
          tc "edge cases" test_qsort_edge_cases;
          tc "bsearch" test_bsearch;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_qsort_matches_list_sort; prop_bsearch_finds_all_members ] );
      ( "seclibc over SecModule",
        [
          tc "malloc on client heap" test_seclibc_malloc_on_client_heap;
          tc "malloc/free cycles" test_seclibc_malloc_free_cycles;
          tc "strings cross-process" test_seclibc_string_functions_cross_process;
          tc "mem ops" test_seclibc_memops;
          tc "bytecode members" test_seclibc_bytecode_members;
          tc "getpid is client's" test_seclibc_getpid_is_client;
          tc "image inventory" test_seclibc_image_inventory;
          tc "qsort/bsearch" test_seclibc_qsort_bsearch;
          tc "strtol endptr" test_seclibc_strtol_endptr;
          tc "itoa + strstr" test_seclibc_itoa_strstr;
          tc "memmove overlap" test_seclibc_memmove_overlap;
        ] );
    ]
