test/test_systrace.ml: Alcotest Bytes Lazy List Printf Smod_kern Smod_sim Smod_systrace Smod_vmem
