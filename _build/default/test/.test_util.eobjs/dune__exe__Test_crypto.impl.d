test/test_crypto.ml: Alcotest Bytes Char Gen List Printf QCheck QCheck_alcotest Smod_crypto Smod_util String
