test/test_keynote.ml: Alcotest Gen List Printf QCheck QCheck_alcotest Smod_keynote
