test/test_modfmt.ml: Alcotest Bytes Char Gen List Printf QCheck QCheck_alcotest Smod_modfmt String
