test/test_keynote.mli:
