test/test_util.ml: Alcotest Array Bytes Float Fun Gen List QCheck QCheck_alcotest Smod_util String
