test/test_vmem.ml: Alcotest Bytes Gen List QCheck QCheck_alcotest Smod_sim Smod_vmem
