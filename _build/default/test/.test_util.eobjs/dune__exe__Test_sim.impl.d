test/test_sim.ml: Ablations Alcotest Array List Printf Smod_bench_kit Smod_libc Smod_rpc Smod_sim String Trial World
