test/test_libc.ml: Alcotest Bytes Char Credential Crt0 Gen List Printf QCheck QCheck_alcotest Secmodule Smod Smod_kern Smod_libc Smod_modfmt Smod_vmem String
