test/test_rpc.ml: Alcotest Bytes Gen Int32 Int64 List Printf QCheck QCheck_alcotest Smod_kern Smod_rpc Smod_sim String
