test/test_systrace.mli:
