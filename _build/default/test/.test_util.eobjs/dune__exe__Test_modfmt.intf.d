test/test_modfmt.mli:
