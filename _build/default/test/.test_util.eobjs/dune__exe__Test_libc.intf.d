test/test_libc.mli:
