test/test_integration.ml: Ablations Alcotest Figure8 Float Lazy List Printf Smod_bench_kit Smod_kern Smod_libc Smod_sim Smod_vmem String Trial World
