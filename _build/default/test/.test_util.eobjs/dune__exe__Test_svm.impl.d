test/test_svm.ml: Alcotest Array Bytes Format List Printf QCheck QCheck_alcotest Smod_sim Smod_svm Smod_vmem String
