test/test_kern.ml: Alcotest Array Bytes List Smod_kern Smod_sim Smod_vmem
