test/test_secmodule.mli:
