(* Tests for the Systrace substrate (paper §2's comparison point):
   policy parsing, first-match decisions, enforcement through the kernel
   trap path, auditing, and the interposition cost. *)

module M = Smod_kern.Machine
module Proc = Smod_kern.Proc
module Errno = Smod_kern.Errno
module Sysno = Smod_kern.Sysno
module Aspace = Smod_vmem.Aspace
module Systrace = Smod_systrace.Systrace

let simple_policy =
  "# comments are fine\n\
   policy: demo\n\
   native-getpid: permit\n\
   native-obreak: arg0 < 1000 then deny ENOMEM\n\
   native-obreak: permit\n\
   default: deny EACCES\n"

(* ------------------------------ parsing ----------------------------- *)

let test_parse_basic () =
  let p = Systrace.parse_policy simple_policy in
  Alcotest.(check string) "name" "demo" p.Systrace.policy_name;
  Alcotest.(check int) "rules" 3 (List.length p.Systrace.rules);
  Alcotest.(check bool) "default" true (p.Systrace.default = Systrace.Deny Errno.EACCES)

let test_parse_default_deny () =
  let p = Systrace.parse_policy "policy: x\n" in
  Alcotest.(check bool) "implicit default deny" true
    (p.Systrace.default = Systrace.Deny Errno.EPERM)

let test_parse_errors () =
  let rejects src =
    match Systrace.parse_policy src with
    | _ -> false
    | exception Systrace.Policy_error _ -> true
  in
  Alcotest.(check bool) "missing header" true (rejects "native-getpid: permit\n");
  Alcotest.(check bool) "bad field" true (rejects "policy: x\ngetpid: permit\n");
  Alcotest.(check bool) "bad action" true (rejects "policy: x\nnative-getpid: maybe\n");
  Alcotest.(check bool) "bad errno" true (rejects "policy: x\nnative-getpid: deny EWHAT\n");
  Alcotest.(check bool) "bad arg ref" true
    (rejects "policy: x\nnative-obreak: argzz < 5 then permit\n");
  Alcotest.(check bool) "bad comparison" true
    (rejects "policy: x\nnative-obreak: arg0 ~ 5 then permit\n")

let test_parse_error_line () =
  Alcotest.(check bool) "line number" true
    (match Systrace.parse_policy "policy: x\nnative-getpid: permit\nnonsense line\n" with
    | _ -> false
    | exception Systrace.Policy_error { line = 3; _ } -> true)

(* ----------------------------- decisions ---------------------------- *)

let policy = lazy (Systrace.parse_policy simple_policy)

let test_decide_first_match_wins () =
  let p = Lazy.force policy in
  Alcotest.(check bool) "small obreak denied" true
    (fst (Systrace.decide p ~sysname:"obreak" ~args:[| 500 |]) = Systrace.Deny Errno.ENOMEM);
  Alcotest.(check bool) "large obreak permitted" true
    (fst (Systrace.decide p ~sysname:"obreak" ~args:[| 5000 |]) = Systrace.Permit)

let test_decide_default_applies () =
  let p = Lazy.force policy in
  Alcotest.(check bool) "unlisted syscall hits default" true
    (fst (Systrace.decide p ~sysname:"fork" ~args:[||]) = Systrace.Deny Errno.EACCES)

let test_decide_condition_ops () =
  let mk op =
    Systrace.parse_policy
      (Printf.sprintf "policy: p\nnative-getpid: arg0 %s 10 then permit\ndefault: deny\n" op)
  in
  let allowed p v = fst (Systrace.decide p ~sysname:"getpid" ~args:[| v |]) = Systrace.Permit in
  Alcotest.(check bool) "<" true (allowed (mk "<") 9 && not (allowed (mk "<") 10));
  Alcotest.(check bool) "<=" true (allowed (mk "<=") 10 && not (allowed (mk "<=") 11));
  Alcotest.(check bool) ">" true (allowed (mk ">") 11 && not (allowed (mk ">") 10));
  Alcotest.(check bool) ">=" true (allowed (mk ">=") 10 && not (allowed (mk ">=") 9));
  Alcotest.(check bool) "==" true (allowed (mk "==") 10 && not (allowed (mk "==") 9));
  Alcotest.(check bool) "!=" true (allowed (mk "!=") 9 && not (allowed (mk "!=") 10))

let test_decide_missing_arg_reads_zero () =
  let p =
    Systrace.parse_policy "policy: p\nnative-getpid: arg3 == 0 then permit\ndefault: deny\n"
  in
  Alcotest.(check bool) "absent arg treated as 0" true
    (fst (Systrace.decide p ~sysname:"getpid" ~args:[||]) = Systrace.Permit)

let test_decide_counts_scanned () =
  let p = Lazy.force policy in
  let _, scanned = Systrace.decide p ~sysname:"fork" ~args:[||] in
  Alcotest.(check int) "scanned all rules" 3 scanned

(* ---------------------------- enforcement --------------------------- *)

let test_enforcement_denies () =
  let m = M.create ~jitter:0.0 () in
  let tracer = Systrace.install m in
  let denied = ref false and allowed = ref false in
  ignore
    (M.spawn m ~name:"app" (fun p ->
         Systrace.attach tracer ~pid:p.Proc.pid
           (Systrace.parse_policy "policy: p\nnative-getpid: permit\ndefault: deny EACCES\n");
         allowed := M.sys_getpid m p = p.Proc.pid;
         match M.syscall m p Sysno.kill [| p.Proc.pid; 0 |] with
         | _ -> ()
         | exception Errno.Error (Errno.EACCES, _) -> denied := true));
  M.run m;
  Alcotest.(check bool) "permitted syscall works" true !allowed;
  Alcotest.(check bool) "unlisted syscall denied" true !denied

let test_enforcement_only_attached () =
  let m = M.create ~jitter:0.0 () in
  let tracer = Systrace.install m in
  ignore tracer;
  let ok = ref false in
  ignore (M.spawn m ~name:"free-proc" (fun p -> ok := M.sys_getpid m p > 0));
  M.run m;
  Alcotest.(check bool) "unattached unaffected" true !ok

let test_detach_restores () =
  let m = M.create ~jitter:0.0 () in
  let tracer = Systrace.install m in
  let after_detach = ref false in
  ignore
    (M.spawn m ~name:"app" (fun p ->
         Systrace.attach tracer ~pid:p.Proc.pid
           (Systrace.parse_policy "policy: p\ndefault: deny\n");
         (try ignore (M.sys_getpid m p) with Errno.Error _ -> ());
         Systrace.detach tracer ~pid:p.Proc.pid;
         after_detach := M.sys_getpid m p > 0));
  M.run m;
  Alcotest.(check bool) "detach lifts policy" true !after_detach

let test_audit_records_everything () =
  let m = M.create ~jitter:0.0 () in
  let tracer = Systrace.install m in
  ignore
    (M.spawn m ~name:"app" (fun p ->
         Systrace.attach tracer ~pid:p.Proc.pid
           (Systrace.parse_policy "policy: p\nnative-getpid: permit\ndefault: deny\n");
         ignore (M.sys_getpid m p);
         try ignore (M.syscall m p Sysno.kill [| p.Proc.pid; 0 |]) with Errno.Error _ -> ()));
  M.run m;
  let events = Systrace.audit tracer in
  Alcotest.(check int) "two events" 2 (List.length events);
  (match events with
  | [ a; b ] ->
      Alcotest.(check string) "first" "getpid" a.Systrace.ev_sysname;
      Alcotest.(check bool) "first allowed" true a.Systrace.ev_allowed;
      Alcotest.(check string) "second" "kill" b.Systrace.ev_sysname;
      Alcotest.(check bool) "second denied" false b.Systrace.ev_allowed
  | _ -> Alcotest.fail "shape");
  Systrace.clear_audit tracer;
  Alcotest.(check int) "cleared" 0 (Systrace.audit_count tracer)

let test_uninstall_releases_hook () =
  let m = M.create ~jitter:0.0 () in
  let tracer = Systrace.install m in
  let ok = ref false in
  ignore
    (M.spawn m ~name:"app" (fun p ->
         Systrace.attach tracer ~pid:p.Proc.pid
           (Systrace.parse_policy "policy: p\ndefault: deny\n");
         Systrace.uninstall tracer;
         ok := M.sys_getpid m p > 0));
  M.run m;
  Alcotest.(check bool) "hook released" true !ok

let test_interposition_costs_time () =
  let run attach =
    let m = M.create ~jitter:0.0 () in
    let tracer = Systrace.install m in
    let cost = ref 0.0 in
    ignore
      (M.spawn m ~name:"app" (fun p ->
           if attach then
             Systrace.attach tracer ~pid:p.Proc.pid
               (Systrace.parse_policy "policy: p\nnative-getpid: permit\ndefault: deny\n");
           let clock = M.clock m in
           let t0 = Smod_sim.Clock.now_cycles clock in
           for _ = 1 to 100 do
             ignore (M.sys_getpid m p)
           done;
           cost := Smod_sim.Clock.elapsed_us clock ~since:t0));
    M.run m;
    !cost
  in
  Alcotest.(check bool) "rule scan charged" true (run true > run false)

let test_trap_level_msg_syscalls () =
  (* The msgsnd/msgrcv syscalls move payloads through user memory. *)
  let m = M.create ~jitter:0.0 () in
  let got = ref "" in
  ignore
    (M.spawn m ~name:"p" (fun p ->
         let base = Aspace.heap_base p.Proc.aspace in
         M.sys_obreak m p (base + 4096);
         Aspace.write_string p.Proc.aspace ~addr:base "payload!";
         let q = M.syscall m p Sysno.msgget [| 5 |] in
         ignore (M.syscall m p Sysno.msgsnd [| q; 1; base; 8 |]);
         let n = M.syscall m p Sysno.msgrcv [| q; 1; base + 64; 64 |] in
         got := Bytes.to_string (Aspace.read_bytes p.Proc.aspace ~addr:(base + 64) ~len:n)));
  M.run m;
  Alcotest.(check string) "payload through memory" "payload!" !got

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "systrace"
    [
      ( "parsing",
        [
          tc "basic" test_parse_basic;
          tc "implicit default" test_parse_default_deny;
          tc "errors" test_parse_errors;
          tc "error line numbers" test_parse_error_line;
        ] );
      ( "decisions",
        [
          tc "first match wins" test_decide_first_match_wins;
          tc "default applies" test_decide_default_applies;
          tc "condition operators" test_decide_condition_ops;
          tc "missing arg reads 0" test_decide_missing_arg_reads_zero;
          tc "scan counting" test_decide_counts_scanned;
        ] );
      ( "enforcement",
        [
          tc "denies per policy" test_enforcement_denies;
          tc "only attached procs" test_enforcement_only_attached;
          tc "detach restores" test_detach_restores;
          tc "audit log" test_audit_records_everything;
          tc "uninstall" test_uninstall_releases_hook;
          tc "interposition cost" test_interposition_costs_time;
          tc "trap-level msg syscalls" test_trap_level_msg_syscalls;
        ] );
    ]
