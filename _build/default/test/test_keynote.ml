(* Tests for Smod_keynote: parsing, guard evaluation, the compliance
   checker's delegation semantics, and assertion signatures. *)

module Ast = Smod_keynote.Ast
module Parse = Smod_keynote.Parse
module Eval = Smod_keynote.Eval
module Keystore = Smod_keynote.Keystore

let levels = [| "deny"; "review"; "allow" |]

let parse = Parse.assertion_of_string
let expr = Parse.expr_of_string

let eval_true e attrs = Eval.eval_expr ~attrs (expr e)

(* ------------------------------ parser ----------------------------- *)

let test_parse_minimal () =
  let a = parse "keynote-version: 2\nauthorizer: \"POLICY\"\n" in
  Alcotest.(check string) "authorizer" "POLICY" a.Ast.authorizer;
  Alcotest.(check bool) "no licensees" true (a.Ast.licensees = Ast.L_empty)

let test_parse_full () =
  let a =
    parse
      "keynote-version: 2\n\
       comment: a full assertion\n\
       authorizer: \"vendor\"\n\
       licensees: \"alice\" || \"bob\"\n\
       conditions: module == \"libc\" -> \"allow\"; calls < 100 -> \"review\";\n"
  in
  Alcotest.(check (option string)) "comment" (Some "a full assertion") a.Ast.comment;
  Alcotest.(check int) "two clauses" 2 (List.length a.Ast.conditions);
  match a.Ast.licensees with
  | Ast.L_or (Ast.L_principal "alice", Ast.L_principal "bob") -> ()
  | _ -> Alcotest.fail "licensees shape"

let test_parse_continuation_lines () =
  let a =
    parse
      "keynote-version: 2\nauthorizer: \"POLICY\"\nconditions: module == \"libc\"\n\
      \    && version >= 2 -> \"allow\";\n"
  in
  Alcotest.(check int) "clause parsed across lines" 1 (List.length a.Ast.conditions)

let test_parse_kof () =
  match Parse.licensees_of_string "2-of(\"a\", \"b\", \"c\")" with
  | Ast.L_kof (2, [ _; _; _ ]) -> ()
  | _ -> Alcotest.fail "k-of shape"

let test_parse_kof_threshold_bounds () =
  Alcotest.(check bool) "k too large" true
    (match Parse.licensees_of_string "4-of(\"a\", \"b\")" with
    | _ -> false
    | exception Parse.Parse_error _ -> true)

let test_parse_nested_licensees () =
  match Parse.licensees_of_string "(\"a\" && \"b\") || \"c\"" with
  | Ast.L_or (Ast.L_and _, Ast.L_principal "c") -> ()
  | _ -> Alcotest.fail "nesting"

let test_parse_errors_carry_line () =
  Alcotest.(check bool) "line number" true
    (match parse "keynote-version: 2\nauthorizer: \"P\"\nconditions: == -> \"x\";\n" with
    | _ -> false
    | exception Parse.Parse_error { line = 3; _ } -> true)

let test_parse_unknown_field () =
  Alcotest.(check bool) "unknown field" true
    (match parse "keynote-version: 2\nauthorizer: \"P\"\nfrobnicator: yes\n" with
    | _ -> false
    | exception Parse.Parse_error _ -> true)

let test_parse_bad_version () =
  Alcotest.(check bool) "version 3 rejected" true
    (match parse "keynote-version: 3\nauthorizer: \"P\"\n" with
    | _ -> false
    | exception Parse.Parse_error _ -> true)

let test_parse_missing_authorizer () =
  Alcotest.(check bool) "no authorizer" true
    (match parse "keynote-version: 2\ncomment: nothing else\n" with
    | _ -> false
    | exception Parse.Parse_error _ -> true)

let test_parse_multiple_assertions () =
  let text =
    "keynote-version: 2\nauthorizer: \"POLICY\"\nlicensees: \"v\"\n\n\
     keynote-version: 2\nauthorizer: \"v\"\nlicensees: \"alice\"\n"
  in
  Alcotest.(check int) "two assertions" 2 (List.length (Parse.assertions_of_string text))

let test_canonical_body_reparses () =
  let a =
    parse
      "keynote-version: 2\n\
       authorizer: \"vendor\"\n\
       licensees: 2-of(\"a\", \"b\" && \"c\", \"d\")\n\
       conditions: x == \"y\" && !(n < 5) -> \"allow\"; true -> \"review\";\n\
       comment: round trip me\n"
  in
  let b = parse (Ast.canonical_body a) in
  Alcotest.(check string) "authorizer" a.Ast.authorizer b.Ast.authorizer;
  Alcotest.(check int) "clauses" (List.length a.Ast.conditions) (List.length b.Ast.conditions);
  (* Canonicalisation must be a fixpoint. *)
  Alcotest.(check string) "canonical fixpoint" (Ast.canonical_body a) (Ast.canonical_body b)


let test_parse_local_constants () =
  (* dialect: local-constants: NAME "value" pairs *)
  let a =
    parse
      "keynote-version: 2\n\
       local-constants: VENDOR \"acme-vendor-key-2006\" MOD \"seclibc\"\n\
       authorizer: \"POLICY\"\n\
       licensees: VENDOR\n\
       conditions: module == MOD -> \"allow\";\n"
  in
  (match a.Ast.licensees with
  | Ast.L_principal "acme-vendor-key-2006" -> ()
  | _ -> Alcotest.fail "constant not substituted in licensees");
  match a.Ast.conditions with
  | [ { Ast.guard = Ast.Cmp (Ast.Attr "module", Ast.Eq, Ast.Str "seclibc"); _ } ] -> ()
  | _ -> Alcotest.fail "constant not substituted in conditions"

let test_local_constants_order_independent () =
  (* constants declared after the fields that use them still apply *)
  let a =
    parse
      "keynote-version: 2\n\
       authorizer: \"POLICY\"\n\
       licensees: KEY\n\
       local-constants: KEY \"the-real-principal\"\n"
  in
  match a.Ast.licensees with
  | Ast.L_principal "the-real-principal" -> ()
  | _ -> Alcotest.fail "late constants must still substitute"

let test_local_constants_bad_value () =
  Alcotest.(check bool) "unquoted value rejected" true
    (match parse "keynote-version: 2\nauthorizer: \"P\"\nlocal-constants: KEY 42\n" with
    | _ -> false
    | exception Parse.Parse_error _ -> true)

(* --------------------------- expressions --------------------------- *)

let test_expr_string_compare () =
  Alcotest.(check bool) "eq" true (eval_true "app == \"secmodule\"" [ ("app", "secmodule") ]);
  Alcotest.(check bool) "ne" true (eval_true "app != \"other\"" [ ("app", "secmodule") ]);
  Alcotest.(check bool) "missing attr is empty" true (eval_true "ghost == \"\"" [])

let test_expr_numeric_compare () =
  Alcotest.(check bool) "lt numeric" true (eval_true "calls < 100" [ ("calls", "99") ]);
  Alcotest.(check bool) "9 < 10 numerically" true (eval_true "calls < 10" [ ("calls", "9") ]);
  Alcotest.(check bool) "lexicographic when non-numeric" true
    (eval_true "name < \"zzz\"" [ ("name", "abc") ]);
  Alcotest.(check bool) "ge" true (eval_true "v >= 2" [ ("v", "2") ])

let test_expr_boolean_structure () =
  let attrs = [ ("a", "1"); ("b", "2") ] in
  Alcotest.(check bool) "and" true (eval_true "a == 1 && b == 2" attrs);
  Alcotest.(check bool) "or short" true (eval_true "a == 9 || b == 2" attrs);
  Alcotest.(check bool) "not" true (eval_true "!(a == 9)" attrs);
  Alcotest.(check bool) "precedence: && binds tighter" true
    (eval_true "a == 9 && b == 9 || b == 2" attrs);
  Alcotest.(check bool) "literals" true (eval_true "true && !false" [])

let test_expr_negative_numbers () =
  Alcotest.(check bool) "negative literal" true (eval_true "t > -5" [ ("t", "-3") ])

(* ------------------------ compliance checker ----------------------- *)

let query ~policy ~credentials ~attrs ~requesters =
  (Eval.query ~policy ~credentials ~attrs ~requesters ~levels).Eval.level

let policy_trusting ?(conds = "true -> \"allow\";") who =
  parse
    (Printf.sprintf "keynote-version: 2\nauthorizer: \"POLICY\"\nlicensees: %s\nconditions: %s\n"
       who conds)

let delegation ~from ~to_ ?(conds = "true -> \"allow\";") () =
  parse
    (Printf.sprintf
       "keynote-version: 2\nauthorizer: \"%s\"\nlicensees: \"%s\"\nconditions: %s\n" from to_
       conds)

let test_local_constants_in_query () =
  let policy =
    [
      parse
        "keynote-version: 2\n\
         local-constants: OWNER \"alice\"\n\
         authorizer: \"POLICY\"\n\
         licensees: OWNER\n\
         conditions: true -> \"allow\";\n";
    ]
  in
  Alcotest.(check string) "constant principal authorized" "allow"
    (query ~policy ~credentials:[] ~attrs:[] ~requesters:[ "alice" ])

let test_query_direct_grant () =
  Alcotest.(check string) "direct licensee" "allow"
    (query ~policy:[ policy_trusting "\"alice\"" ] ~credentials:[] ~attrs:[]
       ~requesters:[ "alice" ])

let test_query_no_grant () =
  Alcotest.(check string) "stranger denied" "deny"
    (query ~policy:[ policy_trusting "\"alice\"" ] ~credentials:[] ~attrs:[]
       ~requesters:[ "mallory" ])

let test_query_delegation_chain () =
  let policy = [ policy_trusting "\"vendor\"" ] in
  let credentials = [ delegation ~from:"vendor" ~to_:"alice" () ] in
  Alcotest.(check string) "one hop" "allow"
    (query ~policy ~credentials ~attrs:[] ~requesters:[ "alice" ]);
  let credentials2 = credentials @ [ delegation ~from:"alice" ~to_:"bob" () ] in
  Alcotest.(check string) "two hops" "allow"
    (query ~policy ~credentials:credentials2 ~attrs:[] ~requesters:[ "bob" ])

let test_query_chain_min_semantics () =
  (* The middle link only grants "review": min() caps the chain. *)
  let policy = [ policy_trusting "\"vendor\"" ] in
  let credentials =
    [ delegation ~from:"vendor" ~to_:"alice" ~conds:"true -> \"review\";" () ]
  in
  Alcotest.(check string) "capped at review" "review"
    (query ~policy ~credentials ~attrs:[] ~requesters:[ "alice" ])

let test_query_conditions_gate () =
  let policy = [ policy_trusting ~conds:"module == \"libc\" -> \"allow\";" "\"alice\"" ] in
  Alcotest.(check string) "matching attrs" "allow"
    (query ~policy ~credentials:[] ~attrs:[ ("module", "libc") ] ~requesters:[ "alice" ]);
  Alcotest.(check string) "non-matching attrs" "deny"
    (query ~policy ~credentials:[] ~attrs:[ ("module", "othr") ] ~requesters:[ "alice" ])

let test_query_and_licensees () =
  let policy = [ policy_trusting "\"a\" && \"b\"" ] in
  Alcotest.(check string) "both present" "allow"
    (query ~policy ~credentials:[] ~attrs:[] ~requesters:[ "a"; "b" ]);
  Alcotest.(check string) "one missing" "deny"
    (query ~policy ~credentials:[] ~attrs:[] ~requesters:[ "a" ])

let test_query_kof_threshold () =
  let policy = [ policy_trusting "2-of(\"a\", \"b\", \"c\")" ] in
  Alcotest.(check string) "two of three" "allow"
    (query ~policy ~credentials:[] ~attrs:[] ~requesters:[ "a"; "c" ]);
  Alcotest.(check string) "one of three" "deny"
    (query ~policy ~credentials:[] ~attrs:[] ~requesters:[ "b" ])

let test_query_cycle_safe () =
  (* a delegates to b, b delegates to a: must terminate, grant nothing. *)
  let policy = [ policy_trusting "\"a\"" ] in
  let credentials =
    [ delegation ~from:"a" ~to_:"b" (); delegation ~from:"b" ~to_:"a" () ]
  in
  Alcotest.(check string) "cycle terminates, stranger denied" "deny"
    (query ~policy ~credentials ~attrs:[] ~requesters:[ "mallory" ])

let test_query_best_clause_wins () =
  let policy =
    [ policy_trusting ~conds:"true -> \"review\"; x == 1 -> \"allow\";" "\"alice\"" ]
  in
  Alcotest.(check string) "max matching clause" "allow"
    (query ~policy ~credentials:[] ~attrs:[ ("x", "1") ] ~requesters:[ "alice" ])

let test_query_counts_evaluations () =
  let policy = List.init 5 (fun _ -> policy_trusting "\"alice\"") in
  let r = Eval.query ~policy ~credentials:[] ~attrs:[] ~requesters:[ "alice" ] ~levels in
  Alcotest.(check int) "five assertions evaluated" 5 r.Eval.assertions_evaluated

let test_query_unknown_level () =
  let policy = [ policy_trusting ~conds:"true -> \"sudo\";" "\"alice\"" ] in
  Alcotest.(check bool) "invalid level" true
    (match Eval.query ~policy ~credentials:[] ~attrs:[] ~requesters:[ "alice" ] ~levels with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_query_empty_levels () =
  Alcotest.(check bool) "empty levels" true
    (match Eval.query ~policy:[] ~credentials:[] ~attrs:[] ~requesters:[] ~levels:[||] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_non_policy_assertions_ignored_at_root () =
  (* An attacker-authored assertion granting itself everything is not a
     POLICY assertion and must not contribute at the root. *)
  let rogue = delegation ~from:"mallory" ~to_:"mallory" () in
  Alcotest.(check string) "rogue root ignored" "deny"
    (query ~policy:[ rogue ] ~credentials:[] ~attrs:[] ~requesters:[ "mallory" ])

(* ----------------------------- keystore ---------------------------- *)

let test_sign_and_verify () =
  let ks = Keystore.create () in
  Keystore.add_principal ks ~name:"vendor" ~secret:"s3cret";
  let a = delegation ~from:"vendor" ~to_:"alice" () in
  let signed = Keystore.sign ks a in
  Alcotest.(check bool) "has signature" true (signed.Ast.signature <> None);
  Alcotest.(check bool) "verifies" true (Keystore.verify ks signed)

let test_verify_rejects_tamper () =
  let ks = Keystore.create () in
  Keystore.add_principal ks ~name:"vendor" ~secret:"s3cret";
  let signed = Keystore.sign ks (delegation ~from:"vendor" ~to_:"alice" ()) in
  let tampered = { signed with Ast.licensees = Ast.L_principal "mallory" } in
  Alcotest.(check bool) "tampered body fails" false (Keystore.verify ks tampered)

let test_verify_unsigned_fails () =
  let ks = Keystore.create () in
  Keystore.add_principal ks ~name:"vendor" ~secret:"s3cret";
  Alcotest.(check bool) "unsigned fails" false
    (Keystore.verify ks (delegation ~from:"vendor" ~to_:"alice" ()))

let test_verify_unknown_principal_fails () =
  let ks = Keystore.create () in
  Keystore.add_principal ks ~name:"vendor" ~secret:"s3cret";
  let signed = Keystore.sign ks (delegation ~from:"vendor" ~to_:"alice" ()) in
  let ks2 = Keystore.create () in
  Alcotest.(check bool) "no key registered" false (Keystore.verify ks2 signed)

let test_policy_assertions_locally_trusted () =
  let ks = Keystore.create () in
  Alcotest.(check bool) "POLICY needs no signature" true
    (Keystore.verify ks (policy_trusting "\"alice\""))

let test_sign_unknown_principal () =
  let ks = Keystore.create () in
  Alcotest.check_raises "Not_found" Not_found (fun () ->
      ignore (Keystore.sign ks (delegation ~from:"ghost" ~to_:"x" ())))

(* --------------------------- properties ---------------------------- *)

let prop_requesters_monotone =
  (* Adding a requester can never lower the compliance level. *)
  QCheck.Test.make ~name:"more requesters never lower compliance" ~count:100
    QCheck.(pair (list_of_size Gen.(0 -- 3) (int_bound 2)) (int_bound 2))
    (fun (reqs, extra) ->
      let name i = Printf.sprintf "p%d" i in
      let policy = [ policy_trusting "2-of(\"p0\", \"p1\", \"p2\")" ] in
      let base = List.map name reqs in
      let more = name extra :: base in
      let level l =
        (Eval.query ~policy ~credentials:[] ~attrs:[] ~requesters:l ~levels).Eval.index
      in
      level more >= level base)


(* --------------------------- properties ----------------------------- *)

(* Random assertion ASTs: canonical_body must be re-parseable and a
   fixpoint (parse (canonical a) canonicalises identically). *)
let gen_assertion =
  let open QCheck.Gen in
  (* prefix with 'k' so generated identifiers can never collide with the
     'true'/'false' keywords *)
  let gen_name = map (( ^ ) "k") (string_size ~gen:(char_range 'a' 'z') (1 -- 7)) in
  let gen_term =
    oneof
      [ map (fun n -> Ast.Attr n) gen_name;
        map (fun s -> Ast.Str s) gen_name;
        map (fun i -> Ast.Int (i - 500)) (int_bound 1000) ]
  in
  let gen_cmp = oneofl [ Ast.Eq; Ast.Ne; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge ] in
  let rec gen_expr n =
    if n = 0 then
      oneof
        [ return Ast.True; return Ast.False;
          map3 (fun a o b -> Ast.Cmp (a, o, b)) gen_term gen_cmp gen_term ]
    else
      oneof
        [ map3 (fun a o b -> Ast.Cmp (a, o, b)) gen_term gen_cmp gen_term;
          map (fun e -> Ast.Not e) (gen_expr (n - 1));
          map2 (fun a b -> Ast.And (a, b)) (gen_expr (n - 1)) (gen_expr (n - 1));
          map2 (fun a b -> Ast.Or (a, b)) (gen_expr (n - 1)) (gen_expr (n - 1)) ]
  in
  let rec gen_lic n =
    if n = 0 then map (fun p -> Ast.L_principal p) gen_name
    else
      oneof
        [ map (fun p -> Ast.L_principal p) gen_name;
          map2 (fun a b -> Ast.L_and (a, b)) (gen_lic (n - 1)) (gen_lic (n - 1));
          map2 (fun a b -> Ast.L_or (a, b)) (gen_lic (n - 1)) (gen_lic (n - 1));
          (list_size (2 -- 4) (gen_lic (n - 1)) >>= fun ls ->
           int_range 1 (List.length ls) >|= fun k -> Ast.L_kof (k, ls)) ]
  in
  gen_name >>= fun authorizer ->
  gen_lic 2 >>= fun licensees ->
  list_size (0 -- 3) (pair (gen_expr 2) (oneofl [ "deny"; "review"; "allow" ]))
  >>= fun clauses ->
  return
    {
      Ast.authorizer;
      licensees;
      conditions = List.map (fun (guard, value) -> { Ast.guard; value }) clauses;
      comment = None;
      signature = None;
    }

let prop_canonical_fixpoint =
  QCheck.Test.make ~name:"canonical body is a re-parseable fixpoint" ~count:300
    (QCheck.make gen_assertion) (fun a ->
      let b = Parse.assertion_of_string (Ast.canonical_body a) in
      Ast.canonical_body b = Ast.canonical_body a)

let prop_signature_covers_body =
  QCheck.Test.make ~name:"any body change breaks the signature" ~count:100
    (QCheck.make (QCheck.Gen.pair gen_assertion gen_assertion)) (fun (a, b) ->
      QCheck.assume (Ast.canonical_body a <> Ast.canonical_body b);
      let ks = Keystore.create () in
      Keystore.add_principal ks ~name:a.Ast.authorizer ~secret:"s";
      Keystore.add_principal ks ~name:b.Ast.authorizer ~secret:"s";
      let signed = Keystore.sign ks a in
      let swapped = { b with Ast.signature = signed.Ast.signature } in
      Keystore.verify ks signed && not (Keystore.verify ks swapped))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "keynote"
    [
      ( "parser",
        [
          tc "minimal" test_parse_minimal;
          tc "full assertion" test_parse_full;
          tc "continuation lines" test_parse_continuation_lines;
          tc "k-of" test_parse_kof;
          tc "k-of bounds" test_parse_kof_threshold_bounds;
          tc "nested licensees" test_parse_nested_licensees;
          tc "errors carry line" test_parse_errors_carry_line;
          tc "unknown field" test_parse_unknown_field;
          tc "bad version" test_parse_bad_version;
          tc "missing authorizer" test_parse_missing_authorizer;
          tc "multiple assertions" test_parse_multiple_assertions;
          tc "canonical body reparses" test_canonical_body_reparses;
          tc "local-constants" test_parse_local_constants;
          tc "local-constants order-free" test_local_constants_order_independent;
          tc "local-constants bad value" test_local_constants_bad_value;
        ] );
      ( "expressions",
        [
          tc "string compare" test_expr_string_compare;
          tc "numeric compare" test_expr_numeric_compare;
          tc "boolean structure" test_expr_boolean_structure;
          tc "negative numbers" test_expr_negative_numbers;
        ] );
      ( "compliance",
        [
          tc "direct grant" test_query_direct_grant;
          tc "local-constants in query" test_local_constants_in_query;
          tc "stranger denied" test_query_no_grant;
          tc "delegation chains" test_query_delegation_chain;
          tc "chain min semantics" test_query_chain_min_semantics;
          tc "conditions gate" test_query_conditions_gate;
          tc "&& licensees" test_query_and_licensees;
          tc "k-of threshold" test_query_kof_threshold;
          tc "cycle safety" test_query_cycle_safe;
          tc "best clause wins" test_query_best_clause_wins;
          tc "evaluation counting" test_query_counts_evaluations;
          tc "unknown level" test_query_unknown_level;
          tc "empty levels" test_query_empty_levels;
          tc "rogue root ignored" test_non_policy_assertions_ignored_at_root;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_requesters_monotone ] );
      ( "keystore",
        [
          tc "sign and verify" test_sign_and_verify;
          tc "tamper detected" test_verify_rejects_tamper;
          tc "unsigned fails" test_verify_unsigned_fails;
          tc "unknown principal fails" test_verify_unknown_principal_fails;
          tc "POLICY locally trusted" test_policy_assertions_locally_trusted;
          tc "sign without key" test_sign_unknown_principal;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_canonical_fixpoint; prop_signature_covers_body ] );
    ]
