(* Tests for Smod_vmem: frames, address spaces, faults, and — centrally —
   the three UVM modifications from the paper's Figure 6. *)

module Layout = Smod_vmem.Layout
module Phys = Smod_vmem.Phys
module Prot = Smod_vmem.Prot
module Aspace = Smod_vmem.Aspace
module Clock = Smod_sim.Clock

let mk_clock () = Clock.create ~jitter:0.0 ()

let mk_space ?(name = "t") phys clock =
  let a = Aspace.create ~phys ~clock ~name in
  Aspace.add_entry a ~start_addr:Layout.text_base ~size:(16 * Layout.page_size) ~prot:Prot.rx
    ~kind:Aspace.Text ~name:"text";
  Aspace.add_entry a ~start_addr:Layout.data_base ~size:(16 * Layout.page_size) ~prot:Prot.rw
    ~kind:Aspace.Data ~name:"data";
  let stack = Layout.default_stack_pages * Layout.page_size in
  Aspace.add_entry a ~start_addr:(Layout.stack_top - stack) ~size:stack ~prot:Prot.rw
    ~kind:Aspace.Stack ~name:"stack";
  Aspace.set_heap_base a (Layout.data_base + (16 * Layout.page_size));
  a

let fresh () =
  let phys = Phys.create () in
  let clock = mk_clock () in
  (phys, clock, mk_space phys clock)

(* ------------------------------ layout ----------------------------- *)

let test_layout_alignment () =
  Alcotest.(check int) "align down" 0x4000 (Layout.page_align_down 0x4fff);
  Alcotest.(check int) "align up" 0x5000 (Layout.page_align_up 0x4001);
  Alcotest.(check int) "align up exact" 0x4000 (Layout.page_align_up 0x4000);
  Alcotest.(check bool) "aligned" true (Layout.is_page_aligned 0x8000);
  Alcotest.(check bool) "unaligned" false (Layout.is_page_aligned 0x8004);
  Alcotest.(check int) "vpn" 4 (Layout.vpn_of_addr 0x4abc);
  Alcotest.(check int) "addr of vpn" 0x4000 (Layout.addr_of_vpn 4)

let test_layout_share_range () =
  Alcotest.(check bool) "share range covers data..stack" true
    (Layout.share_lo = Layout.data_base && Layout.share_hi = Layout.stack_top);
  Alcotest.(check bool) "secret above stack top" true (Layout.secret_base >= Layout.stack_top)

(* ------------------------------- phys ------------------------------ *)

let test_phys_alloc_zeroed () =
  let phys = Phys.create () in
  let f = Phys.alloc phys in
  Alcotest.(check int) "refcount 1" 1 f.Phys.refcount;
  Alcotest.(check bool) "zeroed" true
    (Bytes.for_all (fun c -> c = '\000') f.Phys.data)

let test_phys_recycle () =
  let phys = Phys.create () in
  let f = Phys.alloc phys in
  Bytes.set f.Phys.data 0 'x';
  Phys.decref phys f;
  Alcotest.(check int) "live back to 0" 0 (Phys.live_frames phys);
  let g = Phys.alloc phys in
  Alcotest.(check bool) "recycled frame is zeroed" true
    (Bytes.get g.Phys.data 0 = '\000')

let test_phys_refcounting () =
  let phys = Phys.create () in
  let f = Phys.alloc phys in
  Phys.incref f;
  Phys.decref phys f;
  Alcotest.(check int) "still live" 1 (Phys.live_frames phys);
  Phys.decref phys f;
  Alcotest.(check int) "freed" 0 (Phys.live_frames phys)

let test_phys_out_of_frames () =
  let phys = Phys.create ~limit_frames:2 () in
  let _a = Phys.alloc phys and _b = Phys.alloc phys in
  Alcotest.check_raises "limit" Phys.Out_of_frames (fun () -> ignore (Phys.alloc phys))

(* ------------------------------ aspace ----------------------------- *)

let test_entry_overlap_rejected () =
  let _, _, a = fresh () in
  Alcotest.(check bool) "overlap raises" true
    (match
       Aspace.add_entry a ~start_addr:Layout.data_base ~size:Layout.page_size ~prot:Prot.rw
         ~kind:Aspace.Mmap ~name:"clash"
     with
    | () -> false
    | exception Aspace.Overlap _ -> true)

let test_entry_unaligned_rejected () =
  let _, _, a = fresh () in
  Alcotest.(check bool) "unaligned raises" true
    (match
       Aspace.add_entry a ~start_addr:(Layout.data_base + 123) ~size:Layout.page_size
         ~prot:Prot.rw ~kind:Aspace.Mmap ~name:"bad"
     with
    | () -> false
    | exception Aspace.Bad_range _ -> true)

let test_demand_paging () =
  let _, _, a = fresh () in
  Alcotest.(check int) "no pages yet" 0 (Aspace.mapped_page_count a);
  Aspace.write_word a ~addr:Layout.data_base 0xdeadbeef;
  Alcotest.(check int) "one page materialised" 1 (Aspace.mapped_page_count a);
  Alcotest.(check int) "read back" 0xdeadbeef (Aspace.read_word a ~addr:Layout.data_base)

let test_segv_outside_entries () =
  let _, _, a = fresh () in
  Alcotest.(check bool) "segv" true
    (match Aspace.read_word a ~addr:0x7000_0000 with
    | _ -> false
    | exception Aspace.Segv _ -> true)

let test_prot_violation_write_text () =
  let _, _, a = fresh () in
  Alcotest.(check bool) "write to r-x faults" true
    (match Aspace.write_word a ~addr:Layout.text_base 1 with
    | () -> false
    | exception Aspace.Prot_violation _ -> true)

let test_prot_violation_exec_data () =
  let _, _, a = fresh () in
  Aspace.write_word a ~addr:Layout.data_base 0;
  Alcotest.(check bool) "exec of rw- page faults" true
    (match Aspace.fault a ~addr:Layout.data_base ~access:Prot.Exec with
    | () -> false
    | exception Aspace.Prot_violation _ -> true)

let test_cross_page_readwrite () =
  let _, _, a = fresh () in
  let addr = Layout.data_base + Layout.page_size - 3 in
  let data = Bytes.of_string "spans a page boundary" in
  Aspace.write_bytes a ~addr data;
  Alcotest.(check bytes) "roundtrip" data
    (Aspace.read_bytes a ~addr ~len:(Bytes.length data));
  Alcotest.(check int) "two pages" 2 (Aspace.mapped_page_count a)

let test_word_at_page_boundary () =
  let _, _, a = fresh () in
  let addr = Layout.data_base + Layout.page_size - 2 in
  Aspace.write_word a ~addr 0x11223344;
  Alcotest.(check int) "straddling word" 0x11223344 (Aspace.read_word a ~addr)

let test_word_masking () =
  let _, _, a = fresh () in
  Aspace.write_word a ~addr:Layout.data_base (-1);
  Alcotest.(check int) "truncated to 32 bits" 0xFFFFFFFF (Aspace.read_word a ~addr:Layout.data_base)

let test_strings () =
  let _, _, a = fresh () in
  Aspace.write_string a ~addr:Layout.data_base "hello";
  Alcotest.(check string) "read back" "hello"
    (Aspace.read_string a ~addr:Layout.data_base ~max_len:100);
  Alcotest.(check string) "max_len truncates" "he"
    (Aspace.read_string a ~addr:Layout.data_base ~max_len:2)

let test_remove_range_unmaps () =
  let phys, _, a = fresh () in
  Aspace.write_word a ~addr:Layout.data_base 1;
  let live = Phys.live_frames phys in
  Aspace.remove_range a ~start_addr:Layout.data_base ~size:(16 * Layout.page_size);
  Alcotest.(check int) "frame released" (live - 1) (Phys.live_frames phys);
  Alcotest.(check bool) "entry gone" true (Aspace.find_entry a Layout.data_base = None)

let test_remove_range_splits () =
  let _, _, a = fresh () in
  let mid = Layout.data_base + (4 * Layout.page_size) in
  Aspace.remove_range a ~start_addr:mid ~size:Layout.page_size;
  (match Aspace.find_entry a Layout.data_base with
  | Some e -> Alcotest.(check int) "left piece truncated" mid e.Aspace.end_addr
  | None -> Alcotest.fail "left piece missing");
  match Aspace.find_entry a (mid + Layout.page_size) with
  | Some e ->
      Alcotest.(check int) "right piece starts after hole" (mid + Layout.page_size)
        e.Aspace.start_addr
  | None -> Alcotest.fail "right piece missing"

let test_protect_range () =
  let _, _, a = fresh () in
  Aspace.write_word a ~addr:Layout.data_base 7;
  Aspace.protect_range a ~start_addr:Layout.data_base ~size:(16 * Layout.page_size)
    ~prot:Prot.r;
  Alcotest.(check int) "read still works" 7 (Aspace.read_word a ~addr:Layout.data_base);
  Alcotest.(check bool) "write now faults" true
    (match Aspace.write_word a ~addr:Layout.data_base 8 with
    | () -> false
    | exception Aspace.Prot_violation _ -> true)

let test_obreak_grow_and_shrink () =
  let _, _, a = fresh () in
  let base = Aspace.heap_base a in
  Aspace.obreak a (base + 10000);
  Aspace.write_word a ~addr:(base + 8192) 42;
  Alcotest.(check int) "heap usable" 42 (Aspace.read_word a ~addr:(base + 8192));
  Aspace.obreak a (base + 4096);
  Alcotest.(check bool) "shrunk region faults" true
    (match Aspace.read_word a ~addr:(base + 8192) with
    | _ -> false
    | exception Aspace.Segv _ -> true)

let test_obreak_below_base_rejected () =
  let _, _, a = fresh () in
  Alcotest.(check bool) "below base" true
    (match Aspace.obreak a (Aspace.heap_base a - 1) with
    | () -> false
    | exception Aspace.Bad_range _ -> true)

let test_obreak_into_stack_rejected () =
  let _, _, a = fresh () in
  Alcotest.(check bool) "collides with stack" true
    (match Aspace.obreak a Layout.stack_top with
    | () -> false
    | exception Aspace.Bad_range _ -> true)

(* --------------------- force_share (Figure 6) ---------------------- *)

let make_pair () =
  let phys = Phys.create () in
  let clock = mk_clock () in
  let client = mk_space ~name:"client" phys clock in
  let handle = mk_space ~name:"handle" phys clock in
  (phys, clock, client, handle)

let test_force_share_same_frames () =
  let _, _, client, handle = make_pair () in
  Aspace.write_word client ~addr:Layout.data_base 0xabc;
  Aspace.force_share ~client ~handle ~lo:Layout.share_lo ~hi:Layout.share_hi;
  Alcotest.(check bool) "same frame" true
    (Aspace.frame_id client Layout.data_base = Aspace.frame_id handle Layout.data_base);
  Alcotest.(check int) "handle reads client data" 0xabc
    (Aspace.read_word handle ~addr:Layout.data_base)

let test_force_share_write_through () =
  let _, _, client, handle = make_pair () in
  Aspace.force_share ~client ~handle ~lo:Layout.share_lo ~hi:Layout.share_hi;
  Aspace.write_word handle ~addr:(Layout.data_base + 64) 123;
  Alcotest.(check int) "client sees handle write" 123
    (Aspace.read_word client ~addr:(Layout.data_base + 64));
  Aspace.write_word client ~addr:(Layout.data_base + 64) 456;
  Alcotest.(check int) "handle sees client write" 456
    (Aspace.read_word handle ~addr:(Layout.data_base + 64))

let test_force_share_drops_handle_pages () =
  let phys, _, client, handle = make_pair () in
  (* The handle has private data pages before the share; they must be
     unmapped and replaced. *)
  Aspace.write_word handle ~addr:Layout.data_base 111;
  Aspace.write_word client ~addr:Layout.data_base 222;
  let live_before = Phys.live_frames phys in
  Aspace.force_share ~client ~handle ~lo:Layout.share_lo ~hi:Layout.share_hi;
  Alcotest.(check int) "handle sees client value" 222
    (Aspace.read_word handle ~addr:Layout.data_base);
  Alcotest.(check int) "handle's private frame freed" (live_before - 1)
    (Phys.live_frames phys)

let test_force_share_outside_range_private () =
  let _, _, client, handle = make_pair () in
  Aspace.force_share ~client ~handle ~lo:Layout.share_lo ~hi:Layout.share_hi;
  (* Text is below share_lo: stays private. *)
  Aspace.fault handle ~addr:Layout.text_base ~access:Prot.Read;
  Alcotest.(check bool) "text not shared" false
    (Aspace.is_shared_with_peer handle Layout.text_base)

let test_fault_consults_peer_lazily () =
  let _, _, client, handle = make_pair () in
  Aspace.force_share ~client ~handle ~lo:Layout.share_lo ~hi:Layout.share_hi;
  (* Client materialises a page AFTER the force-share; the handle's later
     fault must find and share it (modified uvm_fault). *)
  let addr = Layout.data_base + (8 * Layout.page_size) in
  Aspace.write_word client ~addr 77;
  Alcotest.(check bool) "handle not yet mapped" false (Aspace.is_mapped handle addr);
  Alcotest.(check int) "handle faults into the shared page" 77
    (Aspace.read_word handle ~addr);
  Alcotest.(check bool) "now same frame" true
    (Aspace.frame_id client addr = Aspace.frame_id handle addr)

let test_fault_peer_entry_only () =
  let _, _, client, handle = make_pair () in
  Aspace.force_share ~client ~handle ~lo:Layout.share_lo ~hi:Layout.share_hi;
  (* Client grows its heap; the handle touches the new range FIRST: its
     fault resolves through the peer's entry, then the client's own fault
     shares the same frame. *)
  Aspace.obreak client (Aspace.heap_base client + 4096);
  let addr = Aspace.heap_base client in
  Aspace.write_word handle ~addr 31337;
  Alcotest.(check int) "client reads handle-allocated heap" 31337
    (Aspace.read_word client ~addr);
  Alcotest.(check bool) "same frame" true
    (Aspace.frame_id client addr = Aspace.frame_id handle addr)

let test_obreak_propagates_to_peer () =
  let _, _, client, handle = make_pair () in
  Aspace.force_share ~client ~handle ~lo:Layout.share_lo ~hi:Layout.share_hi;
  Aspace.obreak handle (Aspace.heap_base handle + 8192);
  Alcotest.(check int) "peer brk converged" (Aspace.brk handle) (Aspace.brk client);
  (* Both can use the new heap and see each other's data. *)
  let addr = Aspace.heap_base client + 4096 in
  Aspace.write_word client ~addr 5;
  Alcotest.(check int) "handle sees it" 5 (Aspace.read_word handle ~addr)

let test_set_peer_none_stops_sharing () =
  let _, _, client, handle = make_pair () in
  Aspace.force_share ~client ~handle ~lo:Layout.share_lo ~hi:Layout.share_hi;
  Aspace.set_peer client None;
  Aspace.set_peer handle None;
  let addr = Layout.data_base + (12 * Layout.page_size) in
  Aspace.write_word client ~addr 9;
  Aspace.fault handle ~addr ~access:Prot.Read;
  Alcotest.(check int) "handle gets a private zero page now" 0
    (Aspace.read_word handle ~addr)

let test_shared_page_count () =
  let _, _, client, handle = make_pair () in
  Aspace.write_word client ~addr:Layout.data_base 1;
  Aspace.write_word client ~addr:(Layout.data_base + Layout.page_size) 2;
  Aspace.force_share ~client ~handle ~lo:Layout.share_lo ~hi:Layout.share_hi;
  Alcotest.(check int) "two pages shared into handle" 2 (Aspace.shared_page_count handle)

(* ------------------------------ clone ------------------------------ *)

let test_clone_copies_private () =
  let _, _, a = fresh () in
  Aspace.write_word a ~addr:Layout.data_base 42;
  let b = Aspace.clone a ~name:"child" in
  Alcotest.(check int) "child sees value" 42 (Aspace.read_word b ~addr:Layout.data_base);
  Aspace.write_word b ~addr:Layout.data_base 43;
  Alcotest.(check int) "parent unaffected" 42 (Aspace.read_word a ~addr:Layout.data_base)

let test_clone_preserves_brk () =
  let _, _, a = fresh () in
  Aspace.obreak a (Aspace.heap_base a + 12288);
  let b = Aspace.clone a ~name:"child" in
  Alcotest.(check int) "brk" (Aspace.brk a) (Aspace.brk b)

let test_destroy_releases_frames () =
  let phys, clock, _ = fresh () in
  let a = mk_space phys clock in
  Aspace.write_word a ~addr:Layout.data_base 1;
  Aspace.write_word a ~addr:(Layout.stack_top - 8) 2;
  let live = Phys.live_frames phys in
  Aspace.destroy a;
  Alcotest.(check int) "frames released" (live - 2) (Phys.live_frames phys)

(* --------------------------- properties ---------------------------- *)

(* Random write/read roundtrip across the data region. *)
let prop_write_read =
  QCheck.Test.make ~name:"write/read roundtrip at random offsets" ~count:300
    QCheck.(pair (int_bound ((16 * 4096) - 8)) (int_bound 0xFFFF))
    (fun (off, v) ->
      let _, _, a = fresh () in
      let addr = Layout.data_base + off in
      Aspace.write_word a ~addr v;
      Aspace.read_word a ~addr = v)

(* Sharing invariant: after any interleaving of client/handle writes in
   the shared range, both sides read identical values everywhere. *)
let prop_share_convergence =
  QCheck.Test.make ~name:"paired spaces converge under random writes" ~count:100
    QCheck.(list_of_size Gen.(1 -- 40) (triple bool (int_bound ((16 * 4096) - 8)) (int_bound 10000)))
    (fun ops ->
      let _, _, client, handle = make_pair () in
      Aspace.force_share ~client ~handle ~lo:Layout.share_lo ~hi:Layout.share_hi;
      List.iter
        (fun (use_handle, off, v) ->
          let space = if use_handle then handle else client in
          Aspace.write_word space ~addr:(Layout.data_base + off) v)
        ops;
      List.for_all
        (fun (_, off, _) ->
          Aspace.read_word client ~addr:(Layout.data_base + off)
          = Aspace.read_word handle ~addr:(Layout.data_base + off))
        ops)

(* obreak keeps the pair's breaks equal through any grow/shrink dance. *)
let prop_obreak_convergence =
  QCheck.Test.make ~name:"obreak keeps pair converged" ~count:100
    QCheck.(list_of_size Gen.(1 -- 20) (pair bool (int_bound 100)))
    (fun moves ->
      let _, _, client, handle = make_pair () in
      Aspace.force_share ~client ~handle ~lo:Layout.share_lo ~hi:Layout.share_hi;
      List.iter
        (fun (use_handle, pages) ->
          let space = if use_handle then handle else client in
          Aspace.obreak space (Aspace.heap_base space + (pages * Layout.page_size)))
        moves;
      Aspace.brk client = Aspace.brk handle)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "vmem"
    [
      ( "layout",
        [ tc "alignment helpers" test_layout_alignment; tc "share range" test_layout_share_range ]
      );
      ( "phys",
        [
          tc "alloc zeroed" test_phys_alloc_zeroed;
          tc "recycle zeroes" test_phys_recycle;
          tc "refcounting" test_phys_refcounting;
          tc "out of frames" test_phys_out_of_frames;
        ] );
      ( "aspace",
        [
          tc "entry overlap rejected" test_entry_overlap_rejected;
          tc "unaligned entry rejected" test_entry_unaligned_rejected;
          tc "demand paging" test_demand_paging;
          tc "segv outside entries" test_segv_outside_entries;
          tc "write to text faults" test_prot_violation_write_text;
          tc "exec of data faults" test_prot_violation_exec_data;
          tc "cross-page read/write" test_cross_page_readwrite;
          tc "word at page boundary" test_word_at_page_boundary;
          tc "word masking" test_word_masking;
          tc "strings" test_strings;
          tc "remove_range unmaps" test_remove_range_unmaps;
          tc "remove_range splits entries" test_remove_range_splits;
          tc "protect_range" test_protect_range;
          tc "obreak grow/shrink" test_obreak_grow_and_shrink;
          tc "obreak below base" test_obreak_below_base_rejected;
          tc "obreak into stack" test_obreak_into_stack_rejected;
        ] );
      ( "force_share (paper Figure 6)",
        [
          tc "same frames" test_force_share_same_frames;
          tc "write-through both ways" test_force_share_write_through;
          tc "handle pages dropped" test_force_share_drops_handle_pages;
          tc "outside range stays private" test_force_share_outside_range_private;
          tc "modified uvm_fault shares lazily" test_fault_consults_peer_lazily;
          tc "fault through peer entry" test_fault_peer_entry_only;
          tc "modified sys_obreak propagates" test_obreak_propagates_to_peer;
          tc "unpairing stops sharing" test_set_peer_none_stops_sharing;
          tc "shared page accounting" test_shared_page_count;
        ] );
      ( "clone/destroy",
        [
          tc "clone deep-copies private pages" test_clone_copies_private;
          tc "clone preserves brk" test_clone_preserves_brk;
          tc "destroy releases frames" test_destroy_releases_frames;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_write_read; prop_share_convergence; prop_obreak_convergence ] );
    ]
