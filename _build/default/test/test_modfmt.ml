(* Tests for Smod_modfmt: the SMOF object format — builder, symbol
   table, objdump listing, serialisation, relocation patching and the
   relocation-hole text encryption of paper §4.1. *)

module Smof = Smod_modfmt.Smof

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec scan i = i + m <= n && (String.sub haystack i m = needle || scan (i + 1)) in
  scan 0

let sample_code = Bytes.of_string "\x01\x2a\x00\x00\x00\x1c"
(* push 42; ret *)

let build_sample () =
  let b = Smof.Builder.create ~name:"sample" ~version:2 in
  let off1 = Smof.Builder.add_function b ~name:"alpha" ~code:sample_code () in
  let off2 =
    Smof.Builder.add_function b ~name:"beta" ~global:false
      ~relocs:[ (1, "alpha") ]
      ~code:(Bytes.cat sample_code sample_code) ()
  in
  let doff = Smof.Builder.add_data b (Bytes.of_string "static data") in
  ignore (Smof.Builder.add_native_function b ~name:"gamma" ~native:"native_gamma" ~size_hint:40 ());
  (Smof.Builder.finish b, off1, off2, doff)

(* ------------------------------ builder ---------------------------- *)

let test_builder_alignment () =
  let image, off1, off2, _ = build_sample () in
  Alcotest.(check int) "first at 0" 0 off1;
  Alcotest.(check int) "16-byte aligned" 0 (off2 mod 16);
  Alcotest.(check bool) "text covers both" true (Bytes.length image.Smof.text >= off2 + 12)

let test_builder_symbols () =
  let image, _, off2, _ = build_sample () in
  (match Smof.find_symbol image "alpha" with
  | Some s ->
      Alcotest.(check int) "alpha size" 6 s.Smof.sym_size;
      Alcotest.(check bool) "alpha global" true s.Smof.sym_global
  | None -> Alcotest.fail "alpha missing");
  (match Smof.find_symbol image "beta" with
  | Some s ->
      Alcotest.(check int) "beta offset" off2 s.Smof.sym_offset;
      Alcotest.(check bool) "beta local" false s.Smof.sym_global
  | None -> Alcotest.fail "beta missing");
  Alcotest.(check bool) "no such symbol" true (Smof.find_symbol image "delta" = None)

let test_builder_data_section () =
  let image, _, _, doff = build_sample () in
  Alcotest.(check string) "data" "static data"
    (Bytes.sub_string image.Smof.data doff 11)

let test_function_symbols_ordered () =
  let image, _, _, _ = build_sample () in
  let names = List.map (fun s -> s.Smof.sym_name) (Smof.function_symbols image) in
  Alcotest.(check (list string)) "text order" [ "alpha"; "beta"; "gamma" ] names

let test_reloc_out_of_function_rejected () =
  let b = Smof.Builder.create ~name:"bad" ~version:1 in
  Alcotest.(check bool) "rejected" true
    (match
       Smof.Builder.add_function b ~name:"f" ~relocs:[ (100, "x") ] ~code:sample_code ()
     with
    | _ -> false
    | exception Smof.Malformed _ -> true)

(* ------------------------------ objdump ---------------------------- *)

let test_objdump_has_F_lines () =
  let image, _, _, _ = build_sample () in
  let dump = Smof.objdump_t image in
  (* The paper greps for lines containing " F ". *)
  let f_lines =
    List.filter (fun l -> contains l " F ") (String.split_on_char '\n' dump)
  in
  Alcotest.(check int) "one F line per function" 3 (List.length f_lines);
  Alcotest.(check bool) "mentions alpha" true (contains dump "alpha")

let test_objdump_scope_letters () =
  let image, _, _, _ = build_sample () in
  let dump = Smof.objdump_t image in
  Alcotest.(check bool) "global marker" true (contains dump "g     F");
  Alcotest.(check bool) "local marker" true (contains dump "l     F")

(* --------------------------- serialisation ------------------------- *)

let test_serialisation_roundtrip () =
  let image, _, _, _ = build_sample () in
  let image2 = Smof.of_bytes (Smof.to_bytes image) in
  Alcotest.(check string) "name" image.Smof.mod_name image2.Smof.mod_name;
  Alcotest.(check int) "version" image.Smof.mod_version image2.Smof.mod_version;
  Alcotest.(check bytes) "text" image.Smof.text image2.Smof.text;
  Alcotest.(check bytes) "data" image.Smof.data image2.Smof.data;
  Alcotest.(check bytes) "digest" image.Smof.text_digest image2.Smof.text_digest;
  Alcotest.(check int) "symbols" (List.length image.Smof.symbols)
    (List.length image2.Smof.symbols);
  Alcotest.(check int) "relocs" (List.length image.Smof.relocs)
    (List.length image2.Smof.relocs);
  Alcotest.(check bool) "encrypted flag" image.Smof.encrypted image2.Smof.encrypted

let test_bad_magic () =
  Alcotest.(check bool) "rejected" true
    (match Smof.of_bytes (Bytes.of_string "ELF\x7f the wrong thing entirely") with
    | _ -> false
    | exception Smof.Malformed _ -> true)

let test_truncation_rejected () =
  let image, _, _, _ = build_sample () in
  let full = Smof.to_bytes image in
  (* Every strict prefix must be rejected, never crash. *)
  List.iter
    (fun frac ->
      let n = Bytes.length full * frac / 10 in
      match Smof.of_bytes (Bytes.sub full 0 n) with
      | _ -> Alcotest.fail (Printf.sprintf "accepted %d-byte prefix" n)
      | exception Smof.Malformed _ -> ())
    [ 0; 3; 5; 7; 9 ]

let prop_serialisation_roundtrip =
  let gen =
    QCheck.Gen.(
      map2
        (fun name funcs -> (name, funcs))
        (string_size ~gen:(char_range 'a' 'z') (1 -- 12))
        (list_size (1 -- 6)
           (pair (string_size ~gen:(char_range 'a' 'z') (1 -- 10)) (string_size (1 -- 64)))))
  in
  QCheck.Test.make ~name:"serialisation roundtrip (random modules)" ~count:100 (QCheck.make gen)
    (fun (name, funcs) ->
      let b = Smof.Builder.create ~name ~version:1 in
      List.iteri
        (fun i (fname, code) ->
          ignore
            (Smof.Builder.add_function b
               ~name:(Printf.sprintf "%s_%d" fname i)
               ~code:(Bytes.of_string code) ()))
        funcs;
      let image = Smof.Builder.finish b in
      let image2 = Smof.of_bytes (Smof.to_bytes image) in
      Bytes.equal image.Smof.text image2.Smof.text
      && image.Smof.mod_name = image2.Smof.mod_name
      && List.length image.Smof.symbols = List.length image2.Smof.symbols)

(* ---------------------------- encryption --------------------------- *)

let key = "0123456789abcdef"
let nonce = Bytes.make 16 'n'

let build_with_relocs () =
  let b = Smof.Builder.create ~name:"enc" ~version:1 in
  ignore
    (Smof.Builder.add_function b ~name:"f"
       ~relocs:[ (4, "f"); (12, "g") ]
       ~code:(Bytes.of_string "0123456789abcdefghij") ());
  ignore (Smof.Builder.add_function b ~name:"g" ~code:(Bytes.of_string "GGGGGGGG") ());
  Smof.Builder.finish b

let test_encrypt_changes_text () =
  let image = build_with_relocs () in
  let enc = Smof.encrypt_text image ~key ~nonce in
  Alcotest.(check bool) "flag set" true enc.Smof.encrypted;
  Alcotest.(check bool) "text differs" false (Bytes.equal enc.Smof.text image.Smof.text)

let test_encrypt_preserves_reloc_sites () =
  let image = build_with_relocs () in
  let enc = Smof.encrypt_text image ~key ~nonce in
  List.iter
    (fun r ->
      Alcotest.(check bytes)
        (Printf.sprintf "site at %d intact" r.Smof.rel_offset)
        (Bytes.sub image.Smof.text r.Smof.rel_offset 4)
        (Bytes.sub enc.Smof.text r.Smof.rel_offset 4))
    image.Smof.relocs

let test_decrypt_roundtrip () =
  let image = build_with_relocs () in
  let back = Smof.decrypt_text (Smof.encrypt_text image ~key ~nonce) ~key ~nonce in
  Alcotest.(check bytes) "text restored" image.Smof.text back.Smof.text;
  Alcotest.(check bool) "flag cleared" false back.Smof.encrypted

let test_decrypt_wrong_key () =
  let image = build_with_relocs () in
  let enc = Smof.encrypt_text image ~key ~nonce in
  Alcotest.(check bool) "digest catches wrong key" true
    (match Smof.decrypt_text enc ~key:"fedcba9876543210" ~nonce with
    | _ -> false
    | exception Smof.Malformed _ -> true)

let test_double_encrypt_rejected () =
  let image = build_with_relocs () in
  let enc = Smof.encrypt_text image ~key ~nonce in
  Alcotest.(check bool) "double encrypt" true
    (match Smof.encrypt_text enc ~key ~nonce with
    | _ -> false
    | exception Smof.Malformed _ -> true);
  Alcotest.(check bool) "decrypt plaintext" true
    (match Smof.decrypt_text image ~key ~nonce with
    | _ -> false
    | exception Smof.Malformed _ -> true)

(* The property the paper designs for: the encrypted image is still
   LINKABLE — patching relocations commutes with encryption. *)
let test_relocation_commutes_with_encryption () =
  let image = build_with_relocs () in
  let resolve = function "f" -> 0x1000 | "g" -> 0x2000 | _ -> 0 in
  let patch_then_encrypt =
    Smof.encrypt_text (Smof.apply_relocations image ~resolve) ~key ~nonce
  in
  let encrypt_then_patch =
    Smof.apply_relocations (Smof.encrypt_text image ~key ~nonce) ~resolve
  in
  Alcotest.(check bytes) "same bytes either way" patch_then_encrypt.Smof.text
    encrypt_then_patch.Smof.text;
  (* And decrypting the encrypt-then-patch image gives the patched text. *)
  let decrypted = Smof.decrypt_text encrypt_then_patch ~key ~nonce in
  Alcotest.(check bytes) "decrypts to patched plaintext"
    (Smof.apply_relocations image ~resolve).Smof.text decrypted.Smof.text

let test_apply_relocations_patches_abs32 () =
  let image = build_with_relocs () in
  let patched = Smof.apply_relocations image ~resolve:(fun _ -> 0xAABBCCDD) in
  List.iter
    (fun r ->
      let word =
        Char.code (Bytes.get patched.Smof.text r.Smof.rel_offset)
        lor (Char.code (Bytes.get patched.Smof.text (r.Smof.rel_offset + 1)) lsl 8)
        lor (Char.code (Bytes.get patched.Smof.text (r.Smof.rel_offset + 2)) lsl 16)
        lor (Char.code (Bytes.get patched.Smof.text (r.Smof.rel_offset + 3)) lsl 24)
      in
      Alcotest.(check int) "patched LE word" 0xAABBCCDD word)
    patched.Smof.relocs

let test_native_stub_deterministic () =
  let a = Smof.native_stub_image ~name:"malloc" ~size:100 in
  let b = Smof.native_stub_image ~name:"malloc" ~size:100 in
  let c = Smof.native_stub_image ~name:"free" ~size:100 in
  Alcotest.(check bytes) "same name same bytes" a b;
  Alcotest.(check bool) "different name different bytes" false (Bytes.equal a c);
  Alcotest.(check int) "size respected" 100 (Bytes.length a)

let prop_encrypt_roundtrip =
  QCheck.Test.make ~name:"encrypt/decrypt roundtrip (random text)" ~count:100
    QCheck.(string_of_size Gen.(1 -- 300))
    (fun code ->
      let b = Smof.Builder.create ~name:"p" ~version:1 in
      ignore (Smof.Builder.add_function b ~name:"f" ~code:(Bytes.of_string code) ());
      let image = Smof.Builder.finish b in
      let back = Smof.decrypt_text (Smof.encrypt_text image ~key ~nonce) ~key ~nonce in
      Bytes.equal image.Smof.text back.Smof.text)


let prop_corruption_never_crashes =
  (* Flipping any byte of a serialised image must yield either a valid
     parse or Malformed — never an unguarded exception or a hang. *)
  QCheck.Test.make ~name:"byte corruption yields Malformed or a parse" ~count:300
    QCheck.(pair (int_bound 10_000) (int_bound 255))
    (fun (pos_seed, new_byte) ->
      let image, _, _, _ = build_sample () in
      let data = Smof.to_bytes image in
      let pos = pos_seed mod Bytes.length data in
      let corrupt = Bytes.copy data in
      Bytes.set corrupt pos (Char.chr new_byte);
      match Smof.of_bytes corrupt with
      | _ -> true
      | exception Smof.Malformed _ -> true)

let test_hostile_counts_capped () =
  (* A crafted image claiming 2^31 symbols must fail fast. *)
  let image, _, _, _ = build_sample () in
  let data = Smof.to_bytes image in
  (* locate the symbol-count word: magic(4) + ver(4) + flags(4) +
     name(2+len) + modver(4) + text(4+len) + data(4+len) + digest(32) *)
  let name_len = String.length image.Smof.mod_name in
  let off =
    4 + 4 + 4 + (2 + name_len) + 4
    + (4 + Bytes.length image.Smof.text)
    + (4 + Bytes.length image.Smof.data)
    + 32
  in
  let hostile = Bytes.copy data in
  Bytes.set hostile off '\xff';
  Bytes.set hostile (off + 1) '\xff';
  Bytes.set hostile (off + 2) '\xff';
  Bytes.set hostile (off + 3) '\x7f';
  Alcotest.(check bool) "rejected without allocation blowup" true
    (match Smof.of_bytes hostile with
    | _ -> false
    | exception Smof.Malformed _ -> true)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "modfmt"
    [
      ( "builder",
        [
          tc "alignment" test_builder_alignment;
          tc "symbols" test_builder_symbols;
          tc "data section" test_builder_data_section;
          tc "function order" test_function_symbols_ordered;
          tc "reloc bounds checked" test_reloc_out_of_function_rejected;
        ] );
      ( "objdump",
        [ tc "' F ' lines" test_objdump_has_F_lines; tc "scope letters" test_objdump_scope_letters ]
      );
      ( "serialisation",
        [
          tc "roundtrip" test_serialisation_roundtrip;
          tc "bad magic" test_bad_magic;
          tc "truncation" test_truncation_rejected;
          tc "hostile counts capped" test_hostile_counts_capped;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_serialisation_roundtrip; prop_corruption_never_crashes ] );
      ( "encryption (paper 4.1)",
        [
          tc "changes text" test_encrypt_changes_text;
          tc "preserves reloc sites" test_encrypt_preserves_reloc_sites;
          tc "decrypt roundtrip" test_decrypt_roundtrip;
          tc "wrong key detected" test_decrypt_wrong_key;
          tc "double encrypt rejected" test_double_encrypt_rejected;
          tc "linking commutes with encryption" test_relocation_commutes_with_encryption;
          tc "abs32 patching" test_apply_relocations_patches_abs32;
          tc "native stubs deterministic" test_native_stub_deterministic;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_encrypt_roundtrip ] );
    ]
