module Machine = Smod_kern.Machine
module Proc = Smod_kern.Proc
module Errno = Smod_kern.Errno
module Sysno = Smod_kern.Sysno

let fork smod conn (p : Proc.t) ~name ~child_main =
  let machine = Smod.machine smod in
  let session =
    match Smod.session_of_client smod ~client_pid:p.Proc.pid with
    | Some s -> s
    | None -> Errno.raise_errno Errno.EPERM "smod fork: caller has no session"
  in
  ignore conn;
  let module_name = session.Smod.entry.Registry.image.Smod_modfmt.Smof.mod_name in
  let version = session.Smod.entry.Registry.image.Smod_modfmt.Smof.mod_version in
  let credential = session.Smod.credential in
  Machine.sys_fork machine p ~name ~child_body:(fun child ->
      (* The heavy lifting for fork sits outside the kernel (§4.3): the
         child re-runs the crt0 sequence, which forcibly forks its own
         private handle. *)
      let child_conn =
        Stub.connect smod child ~module_name ~version ~credential
      in
      Fun.protect ~finally:(fun () -> Stub.close child_conn) (fun () -> child_main child_conn))

let execve smod (p : Proc.t) ~image = Machine.sys_execve (Smod.machine smod) p ~image

let kill smod (p : Proc.t) ~pid ~signal =
  let machine = Smod.machine smod in
  let target_pid =
    match Smod.session_of_handle smod ~handle_pid:pid with
    | Some session -> session.Smod.client_pid
    | None -> pid
  in
  ignore (Machine.syscall machine p Sysno.kill [| target_pid; signal |])

let getpid smod (p : Proc.t) = Machine.sys_getpid (Smod.machine smod) p

let wait smod (p : Proc.t) =
  (* Handle children are forced forks the client never reaps; filter them
     out of the visible child list for the duration of the wait. *)
  let machine = Smod.machine smod in
  let visible pid = Smod.session_of_handle smod ~handle_pid:pid = None in
  let hidden = List.filter (fun c -> not (visible c)) p.Proc.children in
  p.Proc.children <- List.filter visible p.Proc.children;
  Fun.protect
    ~finally:(fun () -> p.Proc.children <- p.Proc.children @ hidden)
    (fun () -> Machine.sys_wait machine p)
