(** The §4.3 special functions.

    Calls that "involve scheduling, signals or processes" need dedicated
    treatment when a library is converted: process identity must follow
    the client, forking a client must produce a fresh handle for the
    child, exec must tear the session down first, and signals aimed at a
    handle must land on its client instead. *)

val fork :
  Smod.t ->
  Stub.conn ->
  Smod_kern.Proc.t ->
  name:string ->
  child_main:(Stub.conn -> unit) ->
  Smod_kern.Proc.t
(** SecModule fork: duplicate the client, then "duplicate the child
    process twice, and force the first child to be the handle for the
    second" — realised as a fresh session (new handle) established in the
    child before [child_main] runs.  Returns the child proc. *)

val execve : Smod.t -> Smod_kern.Proc.t -> image:string -> unit
(** Detaches any session and kills its handle before the exec proceeds
    (done by the exec hook {!Smod.install} registers), then resets the
    image. *)

val kill : Smod.t -> Smod_kern.Proc.t -> pid:int -> signal:int -> unit
(** Like [sys_kill], but a signal aimed at a handle process is redirected
    to its client — "signals ... must be modified such that they effect
    the client, not the handle". *)

val getpid : Smod.t -> Smod_kern.Proc.t -> int
(** The kernel getpid (already client-correct for handles, see
    {!Smod_kern.Machine.sys_getpid}); provided here for symmetry. *)

val wait : Smod.t -> Smod_kern.Proc.t -> Smod_kern.Sched.exit_status * int
(** Waits for a child of the {e client}; handle children (forced forks)
    are invisible to it. *)
