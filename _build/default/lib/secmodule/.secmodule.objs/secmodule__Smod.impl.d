lib/secmodule/smod.ml: Array Bytes Credential Effect Hashtbl List Policy Printf Registry Smod_kern Smod_keynote Smod_modfmt Smod_sim Smod_svm Smod_vmem Wire
