lib/secmodule/crt0.ml: Fun Stub
