lib/secmodule/registry.ml: Array Hashtbl Policy Printf Smod_kern Smod_modfmt
