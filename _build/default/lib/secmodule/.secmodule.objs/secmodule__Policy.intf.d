lib/secmodule/policy.mli: Credential Smod_keynote Smod_sim
