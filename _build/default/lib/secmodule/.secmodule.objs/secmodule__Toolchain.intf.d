lib/secmodule/toolchain.mli: Policy Registry Smod Smod_modfmt
