lib/secmodule/stub.mli: Credential Smod Smod_kern Wire
