lib/secmodule/policy.ml: Array Credential List Printf Smod_keynote Smod_sim String
