lib/secmodule/smod.mli: Credential Policy Registry Smod_kern Smod_keynote Smod_modfmt Smod_vmem
