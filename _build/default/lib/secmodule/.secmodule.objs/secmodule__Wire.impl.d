lib/secmodule/wire.ml: Bytes Char
