lib/secmodule/credential.mli: Smod_keynote
