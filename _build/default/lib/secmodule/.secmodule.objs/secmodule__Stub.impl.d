lib/secmodule/stub.ml: Array Bytes Credential Hashtbl List Printf Registry Smod Smod_kern Smod_modfmt Smod_sim Smod_vmem Wire
