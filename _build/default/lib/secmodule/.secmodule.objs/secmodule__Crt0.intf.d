lib/secmodule/crt0.mli: Credential Smod Smod_kern Stub
