lib/secmodule/special.ml: Fun List Registry Smod Smod_kern Smod_modfmt Stub
