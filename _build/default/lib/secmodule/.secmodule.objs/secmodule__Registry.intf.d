lib/secmodule/registry.mli: Hashtbl Policy Smod_kern Smod_modfmt
