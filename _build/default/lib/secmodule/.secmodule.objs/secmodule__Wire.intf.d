lib/secmodule/wire.mli:
