lib/secmodule/credential.ml: Buffer Bytes List Printf Smod_keynote String
