lib/secmodule/toolchain.ml: Buffer Bytes List Policy Printf Registry Smod Smod_crypto Smod_modfmt Smod_svm String
