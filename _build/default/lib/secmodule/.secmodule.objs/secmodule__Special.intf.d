lib/secmodule/special.mli: Smod Smod_kern Stub
