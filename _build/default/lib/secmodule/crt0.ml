let run_client smod proc ~module_name ~version ~credential main =
  let conn = Stub.connect smod proc ~module_name ~version ~credential in
  Fun.protect ~finally:(fun () -> Stub.close conn) (fun () -> main conn)
