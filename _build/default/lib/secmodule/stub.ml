module Machine = Smod_kern.Machine
module Proc = Smod_kern.Proc
module Sysno = Smod_kern.Sysno
module Aspace = Smod_vmem.Aspace
module Clock = Smod_sim.Clock
module Cost = Smod_sim.Cost_model
module Smof = Smod_modfmt.Smof

type conn = {
  smod : Smod.t;
  proc : Proc.t;
  info : Wire.handle_info;
  stub_table : (string, int) Hashtbl.t;
  session : Smod.session;
}

(* A recognisable synthetic return address for the frames the stub builds. *)
let synthetic_return_address = 0x0000BEE4

let write_to_stack (p : Proc.t) data =
  p.Proc.sp <- p.Proc.sp - ((Bytes.length data + 3) land lnot 3);
  Aspace.write_bytes p.Proc.aspace ~addr:p.Proc.sp data;
  p.Proc.sp

let connect smod proc ~module_name ~version ~credential =
  let machine = Smod.machine smod in
  (* Step 1 (Figure 1): ask the kernel whether the module exists. *)
  let saved_sp = proc.Proc.sp in
  let name_addr = write_to_stack proc (Bytes.of_string (module_name ^ "\000")) in
  let m_id = Machine.syscall machine proc Sysno.smod_find [| name_addr; version |] in
  ignore m_id;
  (* Write the session descriptor into client memory and start the
     session; the kernel forcibly forks the handle. *)
  let desc =
    Wire.descriptor_to_bytes
      {
        Wire.module_name;
        module_version = version;
        credential = Credential.to_bytes credential;
      }
  in
  let desc_addr = write_to_stack proc desc in
  let _sid = Machine.syscall machine proc Sysno.smod_start_session [| desc_addr |] in
  (* Complete the handshake; the kernel writes the handle info back. *)
  let info_addr = write_to_stack proc (Bytes.make Wire.handle_info_size '\000') in
  ignore (Machine.syscall machine proc Sysno.smod_handle_info [| info_addr |]);
  let info =
    Wire.handle_info_of_bytes
      (Aspace.read_bytes proc.Proc.aspace ~addr:info_addr ~len:Wire.handle_info_size)
  in
  proc.Proc.sp <- saved_sp;
  let session =
    match Smod.session_of_client smod ~client_pid:proc.Proc.pid with
    | Some s -> s
    | None -> assert false
  in
  (* Stub table: one client stub per ' F ' symbol (§4.2). *)
  let stub_table = Hashtbl.create 32 in
  List.iteri
    (fun id (sym : Smof.symbol) -> Hashtbl.replace stub_table sym.Smof.sym_name id)
    (Smof.function_symbols session.Smod.entry.Registry.image);
  { smod; proc; info; stub_table; session }

let conn_info c = c.info
let session_id c = c.session.Smod.sid
let func_id c name = Hashtbl.find_opt c.stub_table name

let call_id ?on_step c ~func_id args =
  let machine = Smod.machine c.smod in
  let clock = Machine.clock machine in
  let p = c.proc in
  let nargs = Array.length args in
  Clock.charge clock (Cost.Stub_push_args nargs);
  let entry_sp = p.Proc.sp and entry_fp = p.Proc.fp in
  (* State 1: argN..arg1, return address, saved FP (which FP now names). *)
  for i = nargs - 1 downto 0 do
    Proc.push_word p args.(i)
  done;
  Proc.push_word p synthetic_return_address;
  Proc.push_word p entry_fp;
  p.Proc.fp <- p.Proc.sp;
  (match on_step with Some f -> f 1 | None -> ());
  (* State 2: moduleID, funcID, then the duplicated return address and
     client FP so the kernel sees the relevant words at the stack top. *)
  Proc.push_word p c.info.Wire.m_id;
  Proc.push_word p func_id;
  Proc.push_word p synthetic_return_address;
  Proc.push_word p entry_fp;
  (match on_step with Some f -> f 2 | None -> ());
  let result =
    Machine.syscall machine p Sysno.smod_call
      [| p.Proc.fp; synthetic_return_address; c.info.Wire.m_id; func_id |]
  in
  (* Unwind: drop the duplicates and ids, restore FP, drop the frame. *)
  ignore (Proc.pop_word p);
  ignore (Proc.pop_word p);
  ignore (Proc.pop_word p);
  ignore (Proc.pop_word p);
  let saved_fp = Proc.pop_word p in
  ignore (Proc.pop_word p) (* return address *);
  p.Proc.sp <- p.Proc.sp + (4 * nargs);
  p.Proc.fp <- saved_fp;
  (match on_step with Some f -> f 4 | None -> ());
  assert (p.Proc.sp = entry_sp);
  result

let call ?on_step c ~func args =
  match func_id c func with
  | Some id -> call_id ?on_step c ~func_id:id args
  | None -> invalid_arg (Printf.sprintf "Stub.call: no function %S in module" func)

let close c = Smod.detach_session c.smod c.session
