(** The SecModule-aware C runtime entry (§4.2): a client linked against a
    converted library starts through this crt0, which opens the session
    before handing control to [smod_client_main] and tears it down
    afterwards. *)

val run_client :
  Smod.t ->
  Smod_kern.Proc.t ->
  module_name:string ->
  version:int ->
  credential:Credential.t ->
  (Stub.conn -> 'a) ->
  'a
(** Connect, run the client main, close the session even on exceptions. *)
