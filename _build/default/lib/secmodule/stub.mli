(** Client-side stubs.

    {!connect} performs the crt0 initialization sequence of Figure 1
    (find → start_session → handle_info); {!call} performs the stack
    choreography of Figure 3: push the arguments, the return address and
    the saved frame pointer, push the [(moduleID, funcID)] pair, duplicate
    the two words the kernel needs, then trap into [sys_smod_call].
    On return the stub unwinds exactly what it pushed. *)

type conn

val connect :
  Smod.t ->
  Smod_kern.Proc.t ->
  module_name:string ->
  version:int ->
  credential:Credential.t ->
  conn
(** Raises {!Smod_kern.Errno.Error} as the underlying syscalls do
    (ENOENT unknown module, EACCES bad credential, ...). *)

val conn_info : conn -> Wire.handle_info
val session_id : conn -> int
val func_id : conn -> string -> int option
(** From the stub table generated off the module's symbol table. *)

val call : ?on_step:(int -> unit) -> conn -> func:string -> int array -> int
(** Invoke a module function with word arguments.  [on_step] fires after
    Figure 3 states 1 (frame built), 2 (kernel view pushed) and 4
    (frame restored) so tests can inspect the simulated stack.  Raises
    [Invalid_argument] for an unknown function name and
    {!Smod_kern.Errno.Error} for kernel-side failures. *)

val call_id : ?on_step:(int -> unit) -> conn -> func_id:int -> int array -> int
val close : conn -> unit
(** Detach the session (kills the handle). *)
