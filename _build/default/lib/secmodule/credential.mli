(** Client credentials.

    A credential names the requesting principal and carries zero or more
    signed KeyNote assertions establishing a delegation chain from some
    policy-trusted principal down to the requester.  Credentials travel
    through simulated memory across the user/kernel boundary, so they have
    a byte serialisation. *)

type t = {
  principal : string;
  assertions : Smod_keynote.Ast.assertion list;
}

exception Malformed of string

val make : principal:string -> ?assertions:Smod_keynote.Ast.assertion list -> unit -> t
val to_bytes : t -> bytes
val of_bytes : bytes -> t
(** Raises {!Malformed}. *)

val verify_signatures : Smod_keynote.Keystore.t -> t -> bool
(** Every carried assertion must verify against the keystore. *)
