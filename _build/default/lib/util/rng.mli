(** Deterministic pseudo-random number generation.

    All randomness in the simulator flows through this module so that every
    run is reproducible from a single seed.  The generator is xoshiro256**
    (Blackman & Vigna), seeded through splitmix64. *)

type t

val create : int64 -> t
(** [create seed] builds a generator from a 64-bit seed.  Any seed is
    acceptable, including [0L]. *)

val copy : t -> t
(** Independent copy of the current state. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val bits64 : t -> int64
(** Alias of {!next_int64}. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val unit_float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal deviate via Box–Muller. *)

val jitter : t -> float -> float
(** [jitter t p] is a multiplicative noise factor uniform in
    [\[1 -. p, 1 +. p\]]; used by the cost model to give measurements a
    realistic spread. *)

val bytes : t -> int -> bytes
(** [bytes t n] is [n] random bytes. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val split : t -> t
(** Derive an independent child generator; advances the parent. *)
