type align = Left | Right
type row = Cells of string list | Separator
type t = { headers : string list; aligns : align array; mutable rows : row list }

let create ?aligns headers =
  let ncols = List.length headers in
  if ncols = 0 then invalid_arg "Table.create: no columns";
  let aligns =
    match aligns with
    | Some l ->
        if List.length l <> ncols then invalid_arg "Table.create: aligns/headers mismatch";
        Array.of_list l
    | None -> Array.init ncols (fun i -> if i = 0 then Left else Right)
  in
  { headers; aligns; rows = [] }

let ncols t = List.length t.headers

let add_row t cells =
  let n = List.length cells in
  if n > ncols t then invalid_arg "Table.add_row: too many cells";
  let padded = cells @ List.init (ncols t - n) (fun _ -> "") in
  t.rows <- Cells padded :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let render t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.headers) in
  let note_row = function
    | Separator -> ()
    | Cells cells -> List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  List.iter note_row rows;
  let buf = Buffer.create 256 in
  let pad i cell =
    let w = widths.(i) in
    let gap = w - String.length cell in
    match t.aligns.(i) with
    | Left -> cell ^ String.make gap ' '
    | Right -> String.make gap ' ' ^ cell
  in
  let emit_cells cells =
    Buffer.add_string buf "| ";
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf (pad i c))
      cells;
    Buffer.add_string buf " |\n"
  in
  let emit_sep () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  emit_sep ();
  emit_cells t.headers;
  emit_sep ();
  List.iter (function Separator -> emit_sep () | Cells cells -> emit_cells cells) rows;
  emit_sep ();
  Buffer.contents buf

let print t = print_string (render t)
