type summary = {
  n : int;
  mean : float;
  stdev : float;
  min : float;
  max : float;
  median : float;
}

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = ref 0.0 in
    Array.iter (fun x -> acc := !acc +. ((x -. m) *. (x -. m))) xs;
    !acc /. float_of_int (n - 1)
  end

let stdev xs = sqrt (variance xs)

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty sample";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let median xs = percentile xs 50.0

let summarize xs =
  let n = Array.length xs in
  if n = 0 then { n = 0; mean = 0.0; stdev = 0.0; min = 0.0; max = 0.0; median = 0.0 }
  else
    {
      n;
      mean = mean xs;
      stdev = stdev xs;
      min = Array.fold_left min xs.(0) xs;
      max = Array.fold_left max xs.(0) xs;
      median = median xs;
    }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.6f stdev=%.6f min=%.6f median=%.6f max=%.6f" s.n s.mean
    s.stdev s.min s.median s.max

let linear_regression pts =
  let n = Array.length pts in
  if n = 0 then invalid_arg "Stats.linear_regression: empty sample";
  let fn = float_of_int n in
  let sx = ref 0.0 and sy = ref 0.0 and sxx = ref 0.0 and sxy = ref 0.0 in
  Array.iter
    (fun (x, y) ->
      sx := !sx +. x;
      sy := !sy +. y;
      sxx := !sxx +. (x *. x);
      sxy := !sxy +. (x *. y))
    pts;
  let denom = (fn *. !sxx) -. (!sx *. !sx) in
  if Float.abs denom < 1e-12 then (0.0, !sy /. fn)
  else begin
    let slope = ((fn *. !sxy) -. (!sx *. !sy)) /. denom in
    let intercept = (!sy -. (slope *. !sx)) /. fn in
    (slope, intercept)
  end

module Online = struct
  type t = { mutable count : int; mutable mean : float; mutable m2 : float }

  let create () = { count = 0; mean = 0.0; m2 = 0.0 }

  let add t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = t.count
  let mean t = t.mean
  let variance t = if t.count < 2 then 0.0 else t.m2 /. float_of_int (t.count - 1)
  let stdev t = sqrt (variance t)
end
