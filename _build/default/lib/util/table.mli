(** Plain-text aligned tables, used by the benchmark harness to print
    Figure-8-style result tables. *)

type align = Left | Right

type t

val create : ?aligns:align list -> string list -> t
(** [create headers] starts a table.  [aligns] defaults to left for the
    first column and right for the rest, which suits name-then-numbers
    benchmark rows. *)

val add_row : t -> string list -> unit
(** Rows shorter than the header are padded with empty cells; longer rows
    raise [Invalid_argument]. *)

val add_separator : t -> unit
val render : t -> string
val print : t -> unit
