let hex_digits = "0123456789abcdef"

let to_hex b =
  let n = Bytes.length b in
  let out = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let v = Char.code (Bytes.get b i) in
    Bytes.set out (2 * i) hex_digits.[v lsr 4];
    Bytes.set out ((2 * i) + 1) hex_digits.[v land 0xf]
  done;
  Bytes.unsafe_to_string out

let digit_value c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Hexdump.of_hex: not a hex digit"

let of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then invalid_arg "Hexdump.of_hex: odd length";
  let out = Bytes.create (n / 2) in
  for i = 0 to (n / 2) - 1 do
    let hi = digit_value s.[2 * i] and lo = digit_value s.[(2 * i) + 1] in
    Bytes.set out i (Char.chr ((hi lsl 4) lor lo))
  done;
  out

let pp ppf b =
  let n = Bytes.length b in
  let lines = (n + 15) / 16 in
  for line = 0 to lines - 1 do
    let base = line * 16 in
    Format.fprintf ppf "%08x  " base;
    for i = 0 to 15 do
      if base + i < n then Format.fprintf ppf "%02x " (Char.code (Bytes.get b (base + i)))
      else Format.fprintf ppf "   ";
      if i = 7 then Format.fprintf ppf " "
    done;
    Format.fprintf ppf " |";
    for i = 0 to min 15 (n - base - 1) do
      let c = Bytes.get b (base + i) in
      let printable = if Char.code c >= 0x20 && Char.code c < 0x7f then c else '.' in
      Format.fprintf ppf "%c" printable
    done;
    Format.fprintf ppf "|";
    if line < lines - 1 then Format.fprintf ppf "@\n"
  done

let dump b = Format.asprintf "%a" pp b
