lib/util/rng.mli:
