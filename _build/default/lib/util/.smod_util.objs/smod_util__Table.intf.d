lib/util/table.mli:
