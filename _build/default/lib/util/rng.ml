type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* splitmix64: used only to expand the user seed into four state words. *)
let splitmix64 state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed =
  let state = ref seed in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  (* xoshiro256** must not start from the all-zero state. *)
  if Int64.logor (Int64.logor s0 s1) (Int64.logor s2 s3) = 0L then
    { s0 = 1L; s1 = 2L; s2 = 3L; s3 = 4L }
  else { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let next_int64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let bits64 = next_int64

let int t bound =
  assert (bound > 0);
  let mask = Int64.shift_right_logical (next_int64 t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let unit_float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let float t bound = unit_float t *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let gaussian t ~mu ~sigma =
  let rec draw () =
    let u = unit_float t in
    if u <= 1e-12 then draw () else u
  in
  let u1 = draw () in
  let u2 = unit_float t in
  let r = sqrt (-2.0 *. log u1) in
  mu +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

let jitter t p = 1.0 -. p +. (unit_float t *. 2.0 *. p)

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set b i (Char.chr (int t 256))
  done;
  b

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let split t = create (next_int64 t)
