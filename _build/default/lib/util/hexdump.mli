(** Hex encoding and classic hexdump formatting. *)

val to_hex : bytes -> string
(** Lowercase hex, two characters per byte. *)

val of_hex : string -> bytes
(** Inverse of {!to_hex}.  Raises [Invalid_argument] on odd length or
    non-hex characters. *)

val pp : Format.formatter -> bytes -> unit
(** 16-bytes-per-line dump with offsets and an ASCII gutter. *)

val dump : bytes -> string
