(** Descriptive statistics over float samples. *)

type summary = {
  n : int;
  mean : float;
  stdev : float;  (** sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
  median : float;
}

val mean : float array -> float
val variance : float array -> float
(** Sample variance (n-1 denominator); 0 for fewer than two samples. *)

val stdev : float array -> float
val median : float array -> float
val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0, 100\]]; linear interpolation. *)

val summarize : float array -> summary
val pp_summary : Format.formatter -> summary -> unit

val linear_regression : (float * float) array -> float * float
(** [(slope, intercept)] of the least-squares fit. *)

(** Numerically stable streaming mean/variance (Welford). *)
module Online : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stdev : t -> float
end
