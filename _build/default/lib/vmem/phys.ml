exception Out_of_frames

type frame = { id : int; data : Bytes.t; mutable refcount : int }

type t = {
  mutable free : frame list;
  mutable next_id : int;
  mutable live : int;
  limit_frames : int;
}

let create ?(limit_frames = 131072) () = { free = []; next_id = 0; live = 0; limit_frames }

let alloc t =
  match t.free with
  | f :: rest ->
      t.free <- rest;
      t.live <- t.live + 1;
      Bytes.fill f.data 0 (Bytes.length f.data) '\000';
      f.refcount <- 1;
      f
  | [] ->
      if t.live >= t.limit_frames then raise Out_of_frames;
      let f = { id = t.next_id; data = Bytes.create Layout.page_size; refcount = 1 } in
      t.next_id <- t.next_id + 1;
      t.live <- t.live + 1;
      f

let incref frame = frame.refcount <- frame.refcount + 1

let decref t frame =
  assert (frame.refcount > 0);
  frame.refcount <- frame.refcount - 1;
  if frame.refcount = 0 then begin
    t.live <- t.live - 1;
    t.free <- frame :: t.free
  end

let live_frames t = t.live
let limit t = t.limit_frames
