(** Page protection bits. *)

type t = private int

val none : t
val r : t
val rw : t
val rx : t
val rwx : t
val w : t
val x : t

val union : t -> t -> t
val can_read : t -> bool
val can_write : t -> bool
val can_exec : t -> bool

type access = Read | Write | Exec

val allows : t -> access -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
