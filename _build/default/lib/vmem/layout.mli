(** Address-space layout constants, mirroring the paper's Figure 2.

    The client and handle share everything from just above the traditional
    text segment to the stack top; the handle additionally owns a secret
    stack/heap segment that the client can never map. *)

val page_size : int
val page_shift : int
val vpn_of_addr : int -> int
val addr_of_vpn : int -> int
val page_align_down : int -> int
val page_align_up : int -> int
val is_page_aligned : int -> bool

val text_base : int
(** Base of the traditional code segment (just above the unmapped NULL
    page region). *)

val text_limit : int
(** Exclusive upper bound available for text images. *)

val data_base : int
(** Start of the traditional data segment — and of the SecModule shared
    range ("just below the traditional OpenBSD data segment"). *)

val stack_top : int
(** Exclusive top of the user stack — end of the SecModule shared range. *)

val default_stack_pages : int

val secret_base : int
(** Handle-only secret stack/heap segment (never shared, never visible to
    the client). *)

val secret_pages : int

val share_lo : int
(** The forced-share range is [\[share_lo, share_hi)]. *)

val share_hi : int
