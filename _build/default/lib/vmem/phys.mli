(** Physical page frames.

    Frames are reference counted; a frame shared between a SecModule client
    and its handle has refcount 2.  The default frame budget corresponds to
    the paper's testbed (512 MB real memory, Figure 7). *)

exception Out_of_frames

type frame = private {
  id : int;
  data : Bytes.t;  (** exactly one page *)
  mutable refcount : int;
}

type t

val create : ?limit_frames:int -> unit -> t
(** Default limit: 131072 frames = 512 MB of 4 KB pages. *)

val alloc : t -> frame
(** Zero-filled frame with refcount 1. *)

val incref : frame -> unit

val decref : t -> frame -> unit
(** Frees (recycles) the frame when the count reaches zero. *)

val live_frames : t -> int
(** Frames currently referenced at least once. *)

val limit : t -> int
