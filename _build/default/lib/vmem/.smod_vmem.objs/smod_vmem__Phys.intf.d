lib/vmem/phys.mli: Bytes
