lib/vmem/layout.ml:
