lib/vmem/phys.ml: Bytes Layout
