lib/vmem/layout.mli:
