lib/vmem/aspace.mli: Format Phys Prot Smod_sim
