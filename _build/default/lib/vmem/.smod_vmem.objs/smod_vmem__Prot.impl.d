lib/vmem/prot.ml: Format
