lib/vmem/aspace.ml: Buffer Bytes Char Format Hashtbl Layout List Option Phys Prot Smod_sim
