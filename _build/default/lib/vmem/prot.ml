type t = int

let read_bit = 1
let write_bit = 2
let exec_bit = 4
let none = 0
let r = read_bit
let w = write_bit
let x = exec_bit
let rw = read_bit lor write_bit
let rx = read_bit lor exec_bit
let rwx = read_bit lor write_bit lor exec_bit
let union = ( lor )
let can_read t = t land read_bit <> 0
let can_write t = t land write_bit <> 0
let can_exec t = t land exec_bit <> 0

type access = Read | Write | Exec

let allows t = function
  | Read -> can_read t
  | Write -> can_write t
  | Exec -> can_exec t

let to_string t =
  let c cond ch = if cond then ch else "-" in
  c (can_read t) "r" ^ c (can_write t) "w" ^ c (can_exec t) "x"

let pp ppf t = Format.pp_print_string ppf (to_string t)
