let page_size = 4096
let page_shift = 12
let vpn_of_addr a = a lsr page_shift
let addr_of_vpn v = v lsl page_shift
let page_align_down a = a land lnot (page_size - 1)
let page_align_up a = (a + page_size - 1) land lnot (page_size - 1)
let is_page_aligned a = a land (page_size - 1) = 0

(* A 32-bit-flavoured layout in the spirit of OpenBSD/i386 3.6. *)
let text_base = 0x0000_1000
let text_limit = 0x03F0_0000
let data_base = 0x0400_0000
let stack_top = 0xBFC0_0000
let default_stack_pages = 64
let secret_base = 0xC000_0000
let secret_pages = 16
let share_lo = data_base
let share_hi = stack_top
