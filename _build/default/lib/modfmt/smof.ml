type impl_kind = Bytecode | Native of string

type symbol = {
  sym_name : string;
  sym_offset : int;
  sym_size : int;
  sym_kind : impl_kind;
  sym_global : bool;
}

type reloc_kind = Abs32

type reloc = { rel_offset : int; rel_size : int; rel_kind : reloc_kind; rel_target : string }

type t = {
  mod_name : string;
  mod_version : int;
  text : bytes;
  data : bytes;
  symbols : symbol list;
  relocs : reloc list;
  text_digest : bytes;
  encrypted : bool;
}

exception Malformed of string

let fail fmt = Format.kasprintf (fun m -> raise (Malformed m)) fmt

(* The digest covers the plaintext text with every relocation site zeroed,
   so it stays valid after the linker patches those sites. *)
let masked_digest text relocs =
  let masked = Bytes.copy text in
  List.iter
    (fun r ->
      for i = r.rel_offset to r.rel_offset + r.rel_size - 1 do
        if i < Bytes.length masked then Bytes.set masked i '\000'
      done)
    relocs;
  Smod_crypto.Sha256.digest masked

(* Deterministic pseudo-text for native symbols: an expanding SHA-256
   stream seeded by the name.  Looks like opaque machine code, verifiable
   byte-for-byte, and gives the encryption/unmap machinery real bytes. *)
let native_stub_image ~name ~size =
  let out = Bytes.create size in
  let pos = ref 0 in
  let counter = ref 0 in
  while !pos < size do
    let block =
      Smod_crypto.Sha256.digest_string (Printf.sprintf "smof-native:%s:%d" name !counter)
    in
    let chunk = min 32 (size - !pos) in
    Bytes.blit block 0 out !pos chunk;
    pos := !pos + chunk;
    incr counter
  done;
  out

module Builder = struct
  type builder = {
    name : string;
    version : int;
    text_buf : Buffer.t;
    data_buf : Buffer.t;
    mutable syms : symbol list;
    mutable rels : reloc list;
  }

  let create ~name ~version =
    {
      name;
      version;
      text_buf = Buffer.create 1024;
      data_buf = Buffer.create 256;
      syms = [];
      rels = [];
    }

  let align16 b =
    while Buffer.length b.text_buf land 15 <> 0 do
      Buffer.add_char b.text_buf '\000'
    done

  let add_function b ~name ?(global = true) ?(relocs = []) ~code () =
    align16 b;
    let off = Buffer.length b.text_buf in
    Buffer.add_bytes b.text_buf code;
    b.syms <-
      {
        sym_name = name;
        sym_offset = off;
        sym_size = Bytes.length code;
        sym_kind = Bytecode;
        sym_global = global;
      }
      :: b.syms;
    List.iter
      (fun (rel_off, target) ->
        if rel_off < 0 || rel_off + 4 > Bytes.length code then
          fail "relocation at %d outside function %s" rel_off name;
        b.rels <-
          { rel_offset = off + rel_off; rel_size = 4; rel_kind = Abs32; rel_target = target }
          :: b.rels)
      relocs;
    off

  let add_native_function b ~name ?(global = true) ~native ~size_hint () =
    align16 b;
    let off = Buffer.length b.text_buf in
    let size = max 16 size_hint in
    Buffer.add_bytes b.text_buf (native_stub_image ~name:native ~size);
    b.syms <-
      {
        sym_name = name;
        sym_offset = off;
        sym_size = size;
        sym_kind = Native native;
        sym_global = global;
      }
      :: b.syms;
    off

  let add_data b data =
    let off = Buffer.length b.data_buf in
    Buffer.add_bytes b.data_buf data;
    off

  let finish b =
    let text = Buffer.to_bytes b.text_buf in
    let relocs = List.rev b.rels in
    {
      mod_name = b.name;
      mod_version = b.version;
      text;
      data = Buffer.to_bytes b.data_buf;
      symbols = List.rev b.syms;
      relocs;
      text_digest = masked_digest text relocs;
      encrypted = false;
    }
end

let find_symbol t name = List.find_opt (fun s -> s.sym_name = name) t.symbols

let function_symbols t =
  List.sort (fun a b -> compare a.sym_offset b.sym_offset) t.symbols

let objdump_t t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "\n%s.smof:     file format smof-v1\n\n" t.mod_name);
  Buffer.add_string buf "SYMBOL TABLE:\n";
  List.iter
    (fun s ->
      let scope = if s.sym_global then "g" else "l" in
      Buffer.add_string buf
        (Printf.sprintf "%08x %s     F .text\t%08x %s\n" s.sym_offset scope s.sym_size
           s.sym_name))
    (function_symbols t);
  Buffer.contents buf

(* --------------------------------------------------------------- *)
(* Encryption with relocation holes                                 *)
(* --------------------------------------------------------------- *)

let preserve_reloc_sites ~from_text ~into_text relocs =
  List.iter
    (fun r ->
      let n = min r.rel_size (Bytes.length from_text - r.rel_offset) in
      if n > 0 then Bytes.blit from_text r.rel_offset into_text r.rel_offset n)
    relocs

let encrypt_text t ~key ~nonce =
  if t.encrypted then fail "module %s already encrypted" t.mod_name;
  let k = Smod_crypto.Aes.expand key in
  let ct = Smod_crypto.Aes.Mode.ctr_transform k ~nonce t.text in
  preserve_reloc_sites ~from_text:t.text ~into_text:ct t.relocs;
  { t with text = ct; encrypted = true }

let decrypt_text t ~key ~nonce =
  if not t.encrypted then fail "module %s is not encrypted" t.mod_name;
  let k = Smod_crypto.Aes.expand key in
  let pt = Smod_crypto.Aes.Mode.ctr_transform k ~nonce t.text in
  preserve_reloc_sites ~from_text:t.text ~into_text:pt t.relocs;
  let recovered = { t with text = pt; encrypted = false } in
  if not (Bytes.equal (masked_digest pt t.relocs) t.text_digest) then
    fail "module %s: text digest mismatch after decryption (wrong key?)" t.mod_name;
  recovered

let apply_relocations t ~resolve =
  let text = Bytes.copy t.text in
  List.iter
    (fun r ->
      match r.rel_kind with
      | Abs32 ->
          let v = resolve r.rel_target land 0xFFFFFFFF in
          Bytes.set text r.rel_offset (Char.chr (v land 0xff));
          Bytes.set text (r.rel_offset + 1) (Char.chr ((v lsr 8) land 0xff));
          Bytes.set text (r.rel_offset + 2) (Char.chr ((v lsr 16) land 0xff));
          Bytes.set text (r.rel_offset + 3) (Char.chr ((v lsr 24) land 0xff)))
    t.relocs;
  { t with text }

(* --------------------------------------------------------------- *)
(* Serialisation                                                    *)
(* --------------------------------------------------------------- *)

let magic = "SMOF"
let format_version = 1

let to_bytes t =
  let buf = Buffer.create (Bytes.length t.text + 512) in
  let u8 v = Buffer.add_char buf (Char.chr (v land 0xff)) in
  let u16 v =
    u8 v;
    u8 (v lsr 8)
  in
  let u32 v =
    u16 v;
    u16 (v lsr 16)
  in
  let str16 s =
    u16 (String.length s);
    Buffer.add_string buf s
  in
  let bytes32 b =
    u32 (Bytes.length b);
    Buffer.add_bytes buf b
  in
  Buffer.add_string buf magic;
  u32 format_version;
  u32 (if t.encrypted then 1 else 0);
  str16 t.mod_name;
  u32 t.mod_version;
  bytes32 t.text;
  bytes32 t.data;
  Buffer.add_bytes buf t.text_digest;
  u32 (List.length t.symbols);
  List.iter
    (fun s ->
      str16 s.sym_name;
      u32 s.sym_offset;
      u32 s.sym_size;
      (match s.sym_kind with
      | Bytecode -> u8 0
      | Native n ->
          u8 1;
          str16 n);
      u8 (if s.sym_global then 1 else 0))
    t.symbols;
  u32 (List.length t.relocs);
  List.iter
    (fun r ->
      u32 r.rel_offset;
      u32 r.rel_size;
      u8 (match r.rel_kind with Abs32 -> 0);
      str16 r.rel_target)
    t.relocs;
  Buffer.to_bytes buf

let of_bytes data =
  let pos = ref 0 in
  let len = Bytes.length data in
  let need n = if !pos + n > len then fail "truncated image (need %d at %d)" n !pos in
  let u8 () =
    need 1;
    let v = Char.code (Bytes.get data !pos) in
    incr pos;
    v
  in
  let u16 () =
    let a = u8 () in
    let b = u8 () in
    a lor (b lsl 8)
  in
  let u32 () =
    let a = u16 () in
    let b = u16 () in
    a lor (b lsl 16)
  in
  let str16 () =
    let n = u16 () in
    need n;
    let s = Bytes.sub_string data !pos n in
    pos := !pos + n;
    s
  in
  let bytes32 () =
    let n = u32 () in
    need n;
    let b = Bytes.sub data !pos n in
    pos := !pos + n;
    b
  in
  need 4;
  let m = Bytes.sub_string data 0 4 in
  pos := 4;
  if m <> magic then fail "bad magic %S" m;
  let v = u32 () in
  if v <> format_version then fail "unsupported format version %d" v;
  let flags = u32 () in
  let mod_name = str16 () in
  let mod_version = u32 () in
  let text = bytes32 () in
  let data_section = bytes32 () in
  need 32;
  let text_digest = Bytes.sub data !pos 32 in
  pos := !pos + 32;
  let nsyms = u32 () in
  (* Sanity-cap table sizes before allocating: a corrupt or hostile count
     must fail cleanly, not exhaust memory. *)
  if nsyms > 65536 then fail "implausible symbol count %d" nsyms;
  let symbols =
    List.init nsyms (fun _ ->
        let sym_name = str16 () in
        let sym_offset = u32 () in
        let sym_size = u32 () in
        let sym_kind = match u8 () with 0 -> Bytecode | 1 -> Native (str16 ()) | k -> fail "bad symbol kind %d" k in
        let sym_global = u8 () = 1 in
        if sym_offset + sym_size > Bytes.length text then
          fail "symbol %s outside text" sym_name;
        { sym_name; sym_offset; sym_size; sym_kind; sym_global })
  in
  let nrels = u32 () in
  if nrels > 1_000_000 then fail "implausible relocation count %d" nrels;
  let relocs =
    List.init nrels (fun _ ->
        let rel_offset = u32 () in
        let rel_size = u32 () in
        let rel_kind = match u8 () with 0 -> Abs32 | k -> fail "bad reloc kind %d" k in
        let rel_target = str16 () in
        if rel_offset + rel_size > Bytes.length text then fail "relocation outside text";
        { rel_offset; rel_size; rel_kind; rel_target })
  in
  {
    mod_name;
    mod_version;
    text;
    data = data_section;
    symbols;
    relocs;
    text_digest;
    encrypted = flags land 1 = 1;
  }
