lib/modfmt/smof.mli:
