lib/modfmt/smof.ml: Buffer Bytes Char Format List Printf Smod_crypto String
