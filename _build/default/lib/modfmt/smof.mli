(** SMOF — the SecModule object format.

    A library destined for SecModule protection is packed into one of
    these images: a text section holding every function's code, a symbol
    table (the paper builds its stub list from [objdump -t | grep ' F '] —
    {!objdump_t} reproduces that listing), and a relocation table.  Text
    encryption deliberately skips relocation sites so the encrypted image
    remains linkable by ordinary tools (paper §4.1, approach 1).

    SMOF is pure data: execution semantics are bound when the module is
    registered with the SecModule kernel side. *)

type impl_kind =
  | Bytecode  (** text bytes are module-VM code, executed by {!Smod_svm.Interp} *)
  | Native of string
      (** text bytes are a deterministic stand-in image; execution is
          delegated to a host-registered native body of this name (used by
          the converted libc, whose [malloc] is implemented against the
          simulated heap rather than in bytecode) *)

type symbol = {
  sym_name : string;
  sym_offset : int;  (** into the text section *)
  sym_size : int;
  sym_kind : impl_kind;
  sym_global : bool;
}

type reloc_kind = Abs32  (** absolute 32-bit slot patched at link time *)

type reloc = {
  rel_offset : int;  (** into the text section *)
  rel_size : int;
  rel_kind : reloc_kind;
  rel_target : string;  (** symbol the linker resolves *)
}

type t = {
  mod_name : string;
  mod_version : int;
  text : bytes;
  data : bytes;
  symbols : symbol list;
  relocs : reloc list;
  text_digest : bytes;  (** SHA-256 of the {e plaintext} text section *)
  encrypted : bool;
}

exception Malformed of string

(** {1 Building} *)

module Builder : sig
  type builder

  val create : name:string -> version:int -> builder

  val add_function :
    builder ->
    name:string ->
    ?global:bool ->
    ?relocs:(int * string) list ->
    code:bytes ->
    unit ->
    int
  (** Appends [code] to the text section (16-byte aligned) and registers
      the symbol.  [relocs] are (offset-within-code, target) pairs.
      Returns the symbol's text offset. *)

  val add_native_function :
    builder -> name:string -> ?global:bool -> native:string -> size_hint:int -> unit -> int
  (** Registers a native-backed symbol.  The text bytes are a deterministic
      pseudo-image derived from the name (so encryption and unmap
      protection operate on real bytes). *)

  val add_data : builder -> bytes -> int
  (** Appends to the data section, returning its offset. *)

  val finish : builder -> t
end

(** {1 Introspection} *)

val find_symbol : t -> string -> symbol option
val function_symbols : t -> symbol list
(** Symbols of function kind, in text order. *)

val objdump_t : t -> string
(** An [objdump -t]-style listing; function lines contain [" F "] so the
    paper's grep pipeline works on it verbatim. *)

val native_stub_image : name:string -> size:int -> bytes
(** The deterministic pseudo-text used for native symbols (exposed so the
    dispatcher can verify a mapped image byte-for-byte). *)

(** {1 Encryption (paper §4.1 approach 1)} *)

val encrypt_text : t -> key:string -> nonce:bytes -> t
(** AES-CTR the text section, then restore plaintext at every relocation
    site so the image stays linkable.  The [key] is 16/24/32 raw bytes and
    never travels with the image.  Raises {!Malformed} if already
    encrypted. *)

val decrypt_text : t -> key:string -> nonce:bytes -> t
(** Inverse of {!encrypt_text}; verifies the recovered text against
    [text_digest] and raises {!Malformed} on mismatch (wrong key). *)

val apply_relocations : t -> resolve:(string -> int) -> t
(** Patch every Abs32 site with the resolved address.  Works identically
    on encrypted and plaintext images — that is the point of skipping the
    sites. *)

(** {1 Serialisation} *)

val to_bytes : t -> bytes
val of_bytes : bytes -> t
(** Raises {!Malformed} on bad magic, truncation or corrupt tables. *)
