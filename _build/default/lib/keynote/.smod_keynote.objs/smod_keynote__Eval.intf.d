lib/keynote/eval.mli: Ast
