lib/keynote/ast.mli: Format
