lib/keynote/parse.mli: Ast
