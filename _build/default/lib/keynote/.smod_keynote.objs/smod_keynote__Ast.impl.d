lib/keynote/ast.ml: Buffer Format List Printf
