lib/keynote/parse.ml: Ast Buffer Format List Printf String
