lib/keynote/keystore.ml: Ast Hashtbl Smod_crypto Smod_util String
