lib/keynote/eval.ml: Array Ast Hashtbl List Printf
