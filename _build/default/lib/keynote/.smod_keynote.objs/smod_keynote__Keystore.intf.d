lib/keynote/keystore.mli: Ast
