(** Parser for the assertion surface syntax.

    An assertion is a sequence of [field: value] lines; a line beginning
    with whitespace continues the previous field.  Fields: [keynote-version]
    (must be 2), [authorizer], [licensees], [conditions], [comment],
    [signature].  Multiple assertions in one string are separated by blank
    lines.

    Conditions dialect: [guard -> "level";] clauses where a guard is a
    boolean expression over comparisons of action attributes (bare
    identifiers), string literals and integer literals, combined with
    [&&], [||], [!] and parentheses.  Comparisons are numeric when both
    sides are integers and lexicographic otherwise.

    Licensees dialect: quoted principal names combined with [&&], [||],
    parentheses, and [k-of(a, b, ...)] threshold groups. *)

exception Parse_error of { line : int; message : string }

val assertion_of_string : string -> Ast.assertion
val assertions_of_string : string -> Ast.assertion list
val expr_of_string : string -> Ast.expr
(** Parse a bare conditions guard (used by tests and policy builders). *)

val licensees_of_string : string -> Ast.licensees
