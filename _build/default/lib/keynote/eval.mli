(** The KeyNote compliance checker.

    [query] computes the compliance value the policy grants to a set of
    requesting principals for an action described by attribute bindings.
    Levels are ordered from least to most trusted; index 0 (conventionally
    ["deny"] or [_MIN_TRUST]) is returned when nothing applies.

    Assertion semantics follow RFC 2704: an assertion's value is the
    minimum of its conditions value (the highest level among clauses whose
    guard holds) and its licensees value ([&&] = min, [||] = max,
    [k-of] = k-th largest); a principal's value is the maximum over the
    credential assertions it authorizes, with requesters at maximum trust;
    delegation cycles evaluate safely to minimum trust. *)

type result = {
  level : string;
  index : int;  (** into the [levels] array *)
  assertions_evaluated : int;
      (** how many assertion evaluations the query performed — the cost
          driver for the paper's "complex policy ⇒ proportional slowdown"
          prediction (§5) *)
}

val eval_expr : attrs:(string * string) list -> Ast.expr -> bool
(** Guard evaluation: comparisons are numeric when both sides are integer
    literals or attribute values that parse as integers, lexicographic
    otherwise; absent attributes read as [""]. *)

val query :
  policy:Ast.assertion list ->
  credentials:Ast.assertion list ->
  attrs:(string * string) list ->
  requesters:string list ->
  levels:string array ->
  result
(** [policy] assertions must have authorizer "POLICY".  Raises
    [Invalid_argument] if [levels] is empty or a clause names an unknown
    level. *)
