(** Abstract syntax of KeyNote-style assertions (RFC 2704 subset).

    The paper names KeyNote as the intended policy language for SecModule
    (§5); this library implements enough of it to express and evaluate the
    module-access policies the paper discusses: principals, delegation via
    licensees expressions (with [&&], [||] and [k-of]), and a conditions
    language over action attributes yielding ordered compliance values. *)

type term =
  | Attr of string  (** action-attribute reference; absent attributes read as "" *)
  | Str of string
  | Int of int

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type expr =
  | True
  | False
  | Cmp of term * cmp * term
  | Not of expr
  | And of expr * expr
  | Or of expr * expr

type clause = { guard : expr; value : string }
(** [guard -> "value";] — on a true guard the assertion can contribute
    compliance level [value]. *)

type licensees =
  | L_empty  (** no licensees: the assertion authorizes nobody *)
  | L_principal of string
  | L_and of licensees * licensees
  | L_or of licensees * licensees
  | L_kof of int * licensees list

type assertion = {
  authorizer : string;  (** "POLICY" for root-of-trust assertions *)
  licensees : licensees;
  conditions : clause list;
  comment : string option;
  signature : string option;  (** hex HMAC tag over {!canonical_body} *)
}

val canonical_body : assertion -> string
(** Deterministic serialisation of everything except the signature — the
    string that gets MACed. *)

val pp_expr : Format.formatter -> expr -> unit
val pp_licensees : Format.formatter -> licensees -> unit
val pp_assertion : Format.formatter -> assertion -> unit
