type term = Attr of string | Str of string | Int of int

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type expr =
  | True
  | False
  | Cmp of term * cmp * term
  | Not of expr
  | And of expr * expr
  | Or of expr * expr

type clause = { guard : expr; value : string }

type licensees =
  | L_empty
  | L_principal of string
  | L_and of licensees * licensees
  | L_or of licensees * licensees
  | L_kof of int * licensees list

type assertion = {
  authorizer : string;
  licensees : licensees;
  conditions : clause list;
  comment : string option;
  signature : string option;
}

let cmp_to_string = function
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let pp_term ppf = function
  | Attr a -> Format.pp_print_string ppf a
  | Str s -> Format.fprintf ppf "%S" s
  | Int i -> Format.pp_print_int ppf i

let rec pp_expr ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Cmp (a, op, b) -> Format.fprintf ppf "%a %s %a" pp_term a (cmp_to_string op) pp_term b
  | Not e -> Format.fprintf ppf "!(%a)" pp_expr e
  | And (a, b) -> Format.fprintf ppf "(%a && %a)" pp_expr a pp_expr b
  | Or (a, b) -> Format.fprintf ppf "(%a || %a)" pp_expr a pp_expr b

let rec pp_licensees ppf = function
  | L_empty -> Format.pp_print_string ppf "<none>"
  | L_principal p -> Format.fprintf ppf "%S" p
  | L_and (a, b) -> Format.fprintf ppf "(%a && %a)" pp_licensees a pp_licensees b
  | L_or (a, b) -> Format.fprintf ppf "(%a || %a)" pp_licensees a pp_licensees b
  | L_kof (k, ls) ->
      Format.fprintf ppf "%d-of(%a)" k
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp_licensees)
        ls

let canonical_body a =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "keynote-version: 2\n";
  Buffer.add_string buf (Printf.sprintf "authorizer: %S\n" a.authorizer);
  Buffer.add_string buf (Format.asprintf "licensees: %a\n" pp_licensees a.licensees);
  if a.conditions <> [] then begin
    Buffer.add_string buf "conditions:";
    List.iter
      (fun c ->
        Buffer.add_string buf (Format.asprintf " %a -> %S;" pp_expr c.guard c.value))
      a.conditions;
    Buffer.add_char buf '\n'
  end;
  (match a.comment with
  | Some c -> Buffer.add_string buf (Printf.sprintf "comment: %s\n" c)
  | None -> ());
  Buffer.contents buf

let pp_assertion ppf a =
  Format.fprintf ppf "%s" (canonical_body a);
  match a.signature with
  | Some s -> Format.fprintf ppf "signature: %S@\n" s
  | None -> ()
