(** Two-pass assembler and disassembler for the module VM.

    Syntax: one instruction per line, [;] starts a comment, [label:] on a
    line of its own (or before an instruction) defines a jump target.
    Jump instructions take a label name. *)

exception Error of { line : int; message : string }

val assemble : string -> bytes
(** Raises {!Error} with a 1-based source line on any problem, including
    use of [call] (which needs relocations — use {!assemble_function}). *)

val assemble_function : string -> bytes * (int * string) list
(** Like {!assemble} but supports [call <symbol>]: each call's 4-byte
    operand is emitted as zero and reported as a relocation
    [(operand offset, symbol name)] for {!Smod_modfmt.Smof.Builder} to
    register — the linker patches the absolute address at load time. *)

val disassemble : bytes -> (int * Isa.instr) list
(** [(offset, instruction)] pairs covering the whole image. *)

val pp_listing : Format.formatter -> bytes -> unit
