exception Error of { line : int; message : string }

let fail line fmt = Format.kasprintf (fun message -> raise (Error { line; message })) fmt

type stmt = { line : int; labels : string list; instr : pre_instr option }

(* Jumps reference labels before resolution. *)
and pre_instr = Resolved of Isa.instr | Jump of jump_kind * string | Call_sym of string
and jump_kind = Kjmp | Kjz | Kjnz

let parse_int line s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail line "bad integer %S" s

let split_words s =
  String.split_on_char ' ' s |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let parse_line lineno raw =
  let text = match String.index_opt raw ';' with Some i -> String.sub raw 0 i | None -> raw in
  let text = String.trim text in
  if text = "" then { line = lineno; labels = []; instr = None }
  else begin
    (* Leading "name:" prefixes are labels. *)
    let rec strip_labels acc text =
      match String.index_opt text ':' with
      | Some i
        when i > 0
             && String.for_all
                  (fun c -> c = '_' || c = '.' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9'))
                  (String.sub text 0 i) ->
          strip_labels (String.sub text 0 i :: acc) (String.trim (String.sub text (i + 1) (String.length text - i - 1)))
      | _ -> (List.rev acc, text)
    in
    let labels, rest = strip_labels [] text in
    if rest = "" then { line = lineno; labels; instr = None }
    else begin
      let instr =
        match split_words rest with
        | [ "nop" ] -> Resolved Isa.Nop
        | [ "push"; v ] -> Resolved (Isa.Push (parse_int lineno v))
        | [ "loadarg"; k ] -> Resolved (Isa.Loadarg (parse_int lineno k))
        | [ "loadw" ] -> Resolved Isa.Loadw
        | [ "storew" ] -> Resolved Isa.Storew
        | [ "loadb" ] -> Resolved Isa.Loadb
        | [ "storeb" ] -> Resolved Isa.Storeb
        | [ "add" ] -> Resolved Isa.Add
        | [ "sub" ] -> Resolved Isa.Sub
        | [ "mul" ] -> Resolved Isa.Mul
        | [ "divu" ] -> Resolved Isa.Divu
        | [ "and" ] -> Resolved Isa.And
        | [ "or" ] -> Resolved Isa.Or
        | [ "xor" ] -> Resolved Isa.Xor
        | [ "shl" ] -> Resolved Isa.Shl
        | [ "shr" ] -> Resolved Isa.Shr
        | [ "eq" ] -> Resolved Isa.Eq
        | [ "lt" ] -> Resolved Isa.Lt
        | [ "ltu" ] -> Resolved Isa.Ltu
        | [ "call"; sym ] -> Call_sym sym
        | [ "jmp"; l ] -> Jump (Kjmp, l)
        | [ "jz"; l ] -> Jump (Kjz, l)
        | [ "jnz"; l ] -> Jump (Kjnz, l)
        | [ "dup" ] -> Resolved Isa.Dup
        | [ "drop" ] -> Resolved Isa.Drop
        | [ "swap" ] -> Resolved Isa.Swap
        | [ "localget"; k ] -> Resolved (Isa.Localget (parse_int lineno k))
        | [ "localset"; k ] -> Resolved (Isa.Localset (parse_int lineno k))
        | [ "sys"; nr; nargs ] -> Resolved (Isa.Sys (parse_int lineno nr, parse_int lineno nargs))
        | [ "ret" ] -> Resolved Isa.Ret
        | w :: _ -> fail lineno "unknown mnemonic %S" w
        | [] -> assert false
      in
      { line = lineno; labels; instr = Some instr }
    end
  end

let placeholder_of_jump = function
  | Kjmp -> Isa.Jmp 0
  | Kjz -> Isa.Jz 0
  | Kjnz -> Isa.Jnz 0

let jump_with_disp kind disp =
  match kind with Kjmp -> Isa.Jmp disp | Kjz -> Isa.Jz disp | Kjnz -> Isa.Jnz disp

let assemble_function source =
  let stmts = List.mapi (fun i raw -> parse_line (i + 1) raw) (String.split_on_char '\n' source) in
  (* Pass 1: lay out offsets and record label positions. *)
  let labels = Hashtbl.create 16 in
  let offset = ref 0 in
  let placed =
    List.filter_map
      (fun s ->
        List.iter
          (fun l ->
            if Hashtbl.mem labels l then fail s.line "duplicate label %S" l;
            Hashtbl.replace labels l !offset)
          s.labels;
        match s.instr with
        | None -> None
        | Some pre ->
            let size =
              Isa.length
                (match pre with
                | Resolved i -> i
                | Jump (k, _) -> placeholder_of_jump k
                | Call_sym _ -> Isa.Call 0)
            in
            let this = (!offset, s.line, pre) in
            offset := !offset + size;
            Some this)
      stmts
  in
  (* Pass 2: resolve jumps (displacement is relative to the next
     instruction, as the interpreter expects); record a relocation for
     every cross-function call. *)
  let relocs = ref [] in
  let resolved =
    List.map
      (fun (off, line, pre) ->
        match pre with
        | Resolved i -> i
        | Call_sym sym ->
            (* operand starts one byte past the opcode *)
            relocs := (off + 1, sym) :: !relocs;
            Isa.Call 0
        | Jump (kind, label) -> (
            match Hashtbl.find_opt labels label with
            | None -> fail line "undefined label %S" label
            | Some target ->
                let next = off + Isa.length (placeholder_of_jump kind) in
                let disp = target - next in
                if disp < -32768 || disp > 32767 then fail line "jump to %S out of range" label;
                jump_with_disp kind disp))
      placed
  in
  (Isa.encode resolved, List.rev !relocs)

let assemble source =
  match assemble_function source with
  | code, [] -> code
  | _, _ :: _ ->
      raise
        (Error
           {
             line = 0;
             message = "source uses 'call': assemble_function is required for relocations";
           })

let disassemble code =
  let n = Bytes.length code in
  let rec loop off acc =
    if off >= n then List.rev acc
    else begin
      let instr, next = Isa.decode_at code off in
      loop next ((off, instr) :: acc)
    end
  in
  loop 0 []

let pp_listing ppf code =
  List.iter
    (fun (off, instr) -> Format.fprintf ppf "%04x: %a@\n" off Isa.pp instr)
    (disassemble code)
