lib/svm/interp.ml: Array Bytes Hashtbl Isa List Printf Smod_sim Smod_vmem
