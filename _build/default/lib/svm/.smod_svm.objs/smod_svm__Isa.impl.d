lib/svm/isa.ml: Bytes Char Format List Printf
