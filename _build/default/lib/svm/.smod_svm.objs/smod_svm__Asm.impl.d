lib/svm/asm.ml: Bytes Format Hashtbl Isa List String
