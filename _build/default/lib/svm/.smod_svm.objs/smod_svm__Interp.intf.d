lib/svm/interp.mli: Smod_sim Smod_vmem
