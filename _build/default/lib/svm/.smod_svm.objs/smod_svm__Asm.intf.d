lib/svm/asm.mli: Format Isa
