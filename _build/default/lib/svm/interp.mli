(** The module-VM interpreter.

    Code is fetched from the executing process's simulated address space
    with execute access, so a process that does not have the module text
    mapped executable cannot run it — this is exactly the property
    SecModule's text protection relies on.  Data loads and stores likewise
    go through the address space, faulting and page-sharing on demand. *)

exception
  Fault of {
    pc : int;
    reason : string;
  }

type env

val make_env :
  aspace:Smod_vmem.Aspace.t ->
  clock:Smod_sim.Clock.t ->
  ?syscall:(nr:int -> int array -> int) ->
  ?fuel:int ->
  unit ->
  env
(** [fuel] caps executed instructions (default 10_000_000) so buggy module
    code cannot hang the simulated machine. *)

val run : env -> code_base:int -> code_len:int -> ?entry:int -> args_base:int -> unit -> int
(** Execute from [code_base + entry] (default entry 0) until a final
    [Ret]; [args_base] is the address of argument word 0 (Figure 3's
    [arg1] slot).  [Call] targets must be absolute addresses inside
    [\[code_base, code_base + code_len)] — normally relocation-patched
    symbol addresses within the same module.  Returns the popped return
    value.  Raises {!Fault} on bad opcodes, stack underflow, division by
    zero, out-of-range pc or call target, call-depth overflow, or fuel
    exhaustion; address-space exceptions ({!Smod_vmem.Aspace.Segv} etc.)
    propagate unchanged. *)

val instructions_executed : env -> int
