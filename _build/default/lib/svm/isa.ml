type instr =
  | Nop
  | Push of int
  | Loadarg of int
  | Loadw
  | Storew
  | Loadb
  | Storeb
  | Add
  | Sub
  | Mul
  | Divu
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Eq
  | Lt
  | Ltu
  | Jmp of int
  | Jz of int
  | Jnz of int
  | Dup
  | Drop
  | Swap
  | Localget of int
  | Localset of int
  | Sys of int * int
  | Call of int
  | Ret

let length = function
  | Push _ | Call _ -> 5
  | Loadarg _ | Localget _ | Localset _ -> 2
  | Jmp _ | Jz _ | Jnz _ -> 3
  | Sys _ -> 4
  | Nop | Loadw | Storew | Loadb | Storeb | Add | Sub | Mul | Divu | And | Or | Xor | Shl
  | Shr | Eq | Lt | Ltu | Dup | Drop | Swap | Ret ->
      1

let opcode = function
  | Nop -> 0x00
  | Push _ -> 0x01
  | Loadarg _ -> 0x02
  | Loadw -> 0x03
  | Storew -> 0x04
  | Loadb -> 0x05
  | Storeb -> 0x06
  | Add -> 0x07
  | Sub -> 0x08
  | Mul -> 0x09
  | Divu -> 0x0A
  | And -> 0x0B
  | Or -> 0x0C
  | Xor -> 0x0D
  | Shl -> 0x0E
  | Shr -> 0x0F
  | Eq -> 0x10
  | Lt -> 0x11
  | Ltu -> 0x12
  | Jmp _ -> 0x13
  | Jz _ -> 0x14
  | Jnz _ -> 0x15
  | Dup -> 0x16
  | Drop -> 0x17
  | Swap -> 0x18
  | Localget _ -> 0x19
  | Localset _ -> 0x1A
  | Sys _ -> 0x1B
  | Ret -> 0x1C
  | Call _ -> 0x1D

let encode instrs =
  let total = List.fold_left (fun acc i -> acc + length i) 0 instrs in
  let out = Bytes.create total in
  let pos = ref 0 in
  let put_u8 v =
    Bytes.set out !pos (Char.chr (v land 0xff));
    incr pos
  in
  let put_u32 v =
    put_u8 v;
    put_u8 (v lsr 8);
    put_u8 (v lsr 16);
    put_u8 (v lsr 24)
  in
  let put_s16 v =
    let v = v land 0xffff in
    put_u8 v;
    put_u8 (v lsr 8)
  in
  List.iter
    (fun i ->
      put_u8 (opcode i);
      match i with
      | Push v | Call v -> put_u32 v
      | Loadarg k | Localget k | Localset k -> put_u8 k
      | Jmp d | Jz d | Jnz d -> put_s16 d
      | Sys (nr, nargs) ->
          put_u8 nr;
          put_u8 (nr lsr 8);
          put_u8 nargs
      | Nop | Loadw | Storew | Loadb | Storeb | Add | Sub | Mul | Divu | And | Or | Xor
      | Shl | Shr | Eq | Lt | Ltu | Dup | Drop | Swap | Ret ->
          ())
    instrs;
  out

let decode_at code off =
  let n = Bytes.length code in
  if off >= n then invalid_arg "Isa.decode_at: past end of code";
  let u8 i =
    if i >= n then invalid_arg "Isa.decode_at: truncated instruction";
    Char.code (Bytes.get code i)
  in
  let u32 i = u8 i lor (u8 (i + 1) lsl 8) lor (u8 (i + 2) lsl 16) lor (u8 (i + 3) lsl 24) in
  let s16 i =
    let raw = u8 i lor (u8 (i + 1) lsl 8) in
    if raw land 0x8000 <> 0 then raw - 0x10000 else raw
  in
  let op = u8 off in
  let simple instr = (instr, off + 1) in
  match op with
  | 0x00 -> simple Nop
  | 0x01 -> (Push (u32 (off + 1)), off + 5)
  | 0x02 -> (Loadarg (u8 (off + 1)), off + 2)
  | 0x03 -> simple Loadw
  | 0x04 -> simple Storew
  | 0x05 -> simple Loadb
  | 0x06 -> simple Storeb
  | 0x07 -> simple Add
  | 0x08 -> simple Sub
  | 0x09 -> simple Mul
  | 0x0A -> simple Divu
  | 0x0B -> simple And
  | 0x0C -> simple Or
  | 0x0D -> simple Xor
  | 0x0E -> simple Shl
  | 0x0F -> simple Shr
  | 0x10 -> simple Eq
  | 0x11 -> simple Lt
  | 0x12 -> simple Ltu
  | 0x13 -> (Jmp (s16 (off + 1)), off + 3)
  | 0x14 -> (Jz (s16 (off + 1)), off + 3)
  | 0x15 -> (Jnz (s16 (off + 1)), off + 3)
  | 0x16 -> simple Dup
  | 0x17 -> simple Drop
  | 0x18 -> simple Swap
  | 0x19 -> (Localget (u8 (off + 1)), off + 2)
  | 0x1A -> (Localset (u8 (off + 1)), off + 2)
  | 0x1B -> (Sys (u8 (off + 1) lor (u8 (off + 2) lsl 8), u8 (off + 3)), off + 4)
  | 0x1C -> simple Ret
  | 0x1D -> (Call (u32 (off + 1)), off + 5)
  | bad -> invalid_arg (Printf.sprintf "Isa.decode_at: bad opcode 0x%02x at %d" bad off)

let pp ppf = function
  | Nop -> Format.pp_print_string ppf "nop"
  | Push v -> Format.fprintf ppf "push %d" v
  | Loadarg k -> Format.fprintf ppf "loadarg %d" k
  | Loadw -> Format.pp_print_string ppf "loadw"
  | Storew -> Format.pp_print_string ppf "storew"
  | Loadb -> Format.pp_print_string ppf "loadb"
  | Storeb -> Format.pp_print_string ppf "storeb"
  | Add -> Format.pp_print_string ppf "add"
  | Sub -> Format.pp_print_string ppf "sub"
  | Mul -> Format.pp_print_string ppf "mul"
  | Divu -> Format.pp_print_string ppf "divu"
  | And -> Format.pp_print_string ppf "and"
  | Or -> Format.pp_print_string ppf "or"
  | Xor -> Format.pp_print_string ppf "xor"
  | Shl -> Format.pp_print_string ppf "shl"
  | Shr -> Format.pp_print_string ppf "shr"
  | Eq -> Format.pp_print_string ppf "eq"
  | Lt -> Format.pp_print_string ppf "lt"
  | Ltu -> Format.pp_print_string ppf "ltu"
  | Jmp d -> Format.fprintf ppf "jmp %+d" d
  | Jz d -> Format.fprintf ppf "jz %+d" d
  | Jnz d -> Format.fprintf ppf "jnz %+d" d
  | Dup -> Format.pp_print_string ppf "dup"
  | Drop -> Format.pp_print_string ppf "drop"
  | Swap -> Format.pp_print_string ppf "swap"
  | Localget k -> Format.fprintf ppf "localget %d" k
  | Localset k -> Format.fprintf ppf "localset %d" k
  | Sys (nr, nargs) -> Format.fprintf ppf "sys %d/%d" nr nargs
  | Call a -> Format.fprintf ppf "call 0x%x" a
  | Ret -> Format.pp_print_string ppf "ret"
