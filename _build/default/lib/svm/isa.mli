(** The SecModule VM instruction set.

    Module functions are compiled to this little stack-machine bytecode;
    the text bytes are what SecModule encrypts, unmaps and protects.  The
    operand stack models the register file; loads and stores go through
    the owning process's simulated address space, so memory protection and
    page sharing apply to module code exactly as they would to machine
    code. *)

type instr =
  | Nop
  | Push of int  (** push a 32-bit immediate *)
  | Loadarg of int  (** push the k-th argument word (0-based) *)
  | Loadw  (** pop addr, push mem32\[addr\] *)
  | Storew  (** pop addr, pop value, store *)
  | Loadb
  | Storeb
  | Add
  | Sub
  | Mul
  | Divu  (** unsigned; division by zero faults *)
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Eq  (** push 1 if equal else 0 *)
  | Lt  (** signed compare *)
  | Ltu  (** unsigned compare *)
  | Jmp of int  (** relative to the next instruction, in bytes *)
  | Jz of int
  | Jnz of int
  | Dup
  | Drop
  | Swap
  | Localget of int  (** 16 scratch locals *)
  | Localset of int
  | Sys of int * int  (** (syscall number, arg count): trap from module code *)
  | Call of int
      (** call another function in the module at this {e absolute} address
          — the operand is a relocation site patched by the linker, so
          cross-function calls survive text encryption (the site is left
          plaintext) and land wherever the kernel maps the module.  The
          callee takes its inputs from the operand stack and [Ret]urns its
          result there; [Loadarg] always refers to the original client
          arguments. *)
  | Ret
      (** pop the return value: returns to the caller when inside a
          [Call], otherwise ends execution *)

val encode : instr list -> bytes
(** Flat bytecode image. *)

val decode_at : bytes -> int -> instr * int
(** [decode_at code off] is the instruction at [off] and the offset of the
    next one.  Raises [Invalid_argument] on a bad opcode or truncation. *)

val length : instr -> int
(** Encoded size in bytes. *)

val pp : Format.formatter -> instr -> unit
