(** Signal numbers (the OpenBSD subset the simulator needs). *)

val sighup : int
val sigint : int
val sigkill : int
val sigsegv : int
val sigterm : int
val sigchld : int
val sigusr1 : int
val sigusr2 : int
val name : int -> string
