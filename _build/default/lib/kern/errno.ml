type t =
  | EPERM
  | ENOENT
  | ESRCH
  | EINTR
  | ENOMEM
  | EACCES
  | EFAULT
  | EINVAL
  | ENOSYS
  | EAGAIN
  | EIDRM
  | ECHILD
  | EEXIST
  | E2BIG
  | ENOEXEC

exception Error of t * string

let raise_errno e ctx = raise (Error (e, ctx))

let to_string = function
  | EPERM -> "EPERM"
  | ENOENT -> "ENOENT"
  | ESRCH -> "ESRCH"
  | EINTR -> "EINTR"
  | ENOMEM -> "ENOMEM"
  | EACCES -> "EACCES"
  | EFAULT -> "EFAULT"
  | EINVAL -> "EINVAL"
  | ENOSYS -> "ENOSYS"
  | EAGAIN -> "EAGAIN"
  | EIDRM -> "EIDRM"
  | ECHILD -> "ECHILD"
  | EEXIST -> "EEXIST"
  | E2BIG -> "E2BIG"
  | ENOEXEC -> "ENOEXEC"

let pp ppf e = Format.pp_print_string ppf (to_string e)

let () =
  Printexc.register_printer (function
    | Error (e, ctx) -> Some (Printf.sprintf "Kern.Errno.Error(%s, %s)" (to_string e) ctx)
    | _ -> None)
