(** Process control blocks. *)

type role =
  | Standalone
  | Smod_client of { mutable handle_pid : int }
      (** a client attached to a SecModule session *)
  | Smod_handle of { client_pid : int }
      (** a handle co-process serving exactly one client *)

type resume_cell =
  | Start of (unit -> unit)
  | Cont of (unit, unit) Effect.Deep.continuation
  | Finished

type state =
  | Ready
  | Running
  | Blocked of Sched.wait_reason
  | Zombie of Sched.exit_status

type t = {
  pid : int;
  mutable ppid : int;
  name : string;
  mutable aspace : Smod_vmem.Aspace.t;
  mutable state : state;
  mutable resume : resume_cell;
  mutable killed : int option;  (** pending forced termination signal *)
  mutable sp : int;  (** simulated stack pointer *)
  mutable fp : int;  (** simulated frame pointer *)
  mutable uid : int;
  mutable gid : int;
  mutable no_core_dump : bool;  (** paper §3.1 item 3 *)
  mutable no_ptrace : bool;  (** paper §3.1 item 4 *)
  mutable ring : int;
      (** 80386-style privilege ring (paper §2): 0 = kernel tools, 1 =
          periphery (SecModule handles), 3 = ordinary user code.  A process
          may signal or trace only processes of an equal or {e less}
          privileged ring (numerically >=). *)
  mutable role : role;
  mutable daemon : bool;
      (** daemons may stay blocked when the machine drains — handle
          processes waiting for calls are daemons *)
  mutable pending_signals : int list;
  mutable children : int list;
  mutable traced_by : int option;
  mutable core_dumped : bool;
  mutable exit_hooks : (t -> unit) list;
}

val is_zombie : t -> bool
val is_blocked : t -> bool
val is_smod_handle : t -> bool
val is_smod_client : t -> bool
val push_word : t -> int -> unit
(** Decrement [sp] by 4 and store a 32-bit word at the new [sp]. *)

val pop_word : t -> int
val peek_word : t -> offset_words:int -> int
val pp_state : Format.formatter -> state -> unit
