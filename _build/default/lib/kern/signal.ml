let sighup = 1
let sigint = 2
let sigkill = 9
let sigsegv = 11
let sigterm = 15
let sigchld = 20
let sigusr1 = 30
let sigusr2 = 31

let name = function
  | 1 -> "SIGHUP"
  | 2 -> "SIGINT"
  | 9 -> "SIGKILL"
  | 11 -> "SIGSEGV"
  | 15 -> "SIGTERM"
  | 20 -> "SIGCHLD"
  | 30 -> "SIGUSR1"
  | 31 -> "SIGUSR2"
  | n -> Printf.sprintf "SIG#%d" n
