(** Kernel error codes, raised by syscalls as {!Error}. *)

type t =
  | EPERM
  | ENOENT
  | ESRCH
  | EINTR
  | ENOMEM
  | EACCES
  | EFAULT
  | EINVAL
  | ENOSYS
  | EAGAIN
  | EIDRM  (** message queue removed *)
  | ECHILD
  | EEXIST
  | E2BIG
  | ENOEXEC

exception Error of t * string
(** The string names the syscall or subsystem that failed. *)

val raise_errno : t -> string -> 'a
val to_string : t -> string
val pp : Format.formatter -> t -> unit
