module Aspace = Smod_vmem.Aspace

type role =
  | Standalone
  | Smod_client of { mutable handle_pid : int }
  | Smod_handle of { client_pid : int }

type resume_cell =
  | Start of (unit -> unit)
  | Cont of (unit, unit) Effect.Deep.continuation
  | Finished

type state =
  | Ready
  | Running
  | Blocked of Sched.wait_reason
  | Zombie of Sched.exit_status

type t = {
  pid : int;
  mutable ppid : int;
  name : string;
  mutable aspace : Aspace.t;
  mutable state : state;
  mutable resume : resume_cell;
  mutable killed : int option;
  mutable sp : int;
  mutable fp : int;
  mutable uid : int;
  mutable gid : int;
  mutable no_core_dump : bool;
  mutable no_ptrace : bool;
  mutable ring : int;
  mutable role : role;
  mutable daemon : bool;
  mutable pending_signals : int list;
  mutable children : int list;
  mutable traced_by : int option;
  mutable core_dumped : bool;
  mutable exit_hooks : (t -> unit) list;
}

let is_zombie t = match t.state with Zombie _ -> true | _ -> false
let is_blocked t = match t.state with Blocked _ -> true | _ -> false
let is_smod_handle t = match t.role with Smod_handle _ -> true | _ -> false
let is_smod_client t = match t.role with Smod_client _ -> true | _ -> false

let push_word t v =
  t.sp <- t.sp - 4;
  Aspace.write_word t.aspace ~addr:t.sp v

let pop_word t =
  let v = Aspace.read_word t.aspace ~addr:t.sp in
  t.sp <- t.sp + 4;
  v

let peek_word t ~offset_words = Aspace.read_word t.aspace ~addr:(t.sp + (4 * offset_words))

let pp_state ppf = function
  | Ready -> Format.pp_print_string ppf "ready"
  | Running -> Format.pp_print_string ppf "running"
  | Blocked r -> Format.fprintf ppf "blocked(%a)" Sched.pp_wait_reason r
  | Zombie s -> Format.fprintf ppf "zombie(%a)" Sched.pp_exit_status s
