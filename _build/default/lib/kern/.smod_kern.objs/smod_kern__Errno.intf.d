lib/kern/errno.mli: Format
