lib/kern/proc.ml: Effect Format Sched Smod_vmem
