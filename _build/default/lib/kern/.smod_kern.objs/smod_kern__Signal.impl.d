lib/kern/signal.ml: Printf
