lib/kern/sched.ml: Effect Format Signal
