lib/kern/signal.mli:
