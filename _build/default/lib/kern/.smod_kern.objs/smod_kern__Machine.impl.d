lib/kern/machine.ml: Array Bytes Effect Errno Format Fun Hashtbl List Option Printf Proc Queue Sched Signal Smod_sim Smod_vmem String Sysno
