lib/kern/sched.mli: Effect Format
