lib/kern/machine.mli: Errno Format Proc Sched Smod_sim Smod_vmem
