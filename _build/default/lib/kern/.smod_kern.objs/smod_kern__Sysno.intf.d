lib/kern/sysno.mli:
