lib/kern/errno.ml: Format Printexc Printf
