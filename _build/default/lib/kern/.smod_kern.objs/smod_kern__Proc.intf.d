lib/kern/proc.mli: Effect Format Sched Smod_vmem
