lib/bench_kit/trial.ml: Array Buffer Float List Printf Smod_sim Smod_util String
