lib/bench_kit/ablations.mli:
