lib/bench_kit/world.ml: Credential Crt0 Registry Secmodule Smod Smod_kern Smod_libc Smod_rpc
