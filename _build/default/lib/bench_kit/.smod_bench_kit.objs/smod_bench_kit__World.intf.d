lib/bench_kit/world.mli: Secmodule Smod_kern Smod_rpc
