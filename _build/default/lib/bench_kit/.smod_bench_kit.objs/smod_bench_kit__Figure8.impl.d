lib/bench_kit/figure8.ml: List Smod_kern Smod_libc Smod_rpc Trial World
