lib/bench_kit/trial.mli: Smod_sim
