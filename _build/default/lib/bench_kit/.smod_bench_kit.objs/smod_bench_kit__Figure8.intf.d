lib/bench_kit/figure8.mli: Trial World
