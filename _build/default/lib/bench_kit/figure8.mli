(** Reproduction of the paper's Figure 8: the four-row microbenchmark
    comparing native getpid, SMOD(SMOD-getpid), SMOD(test-incr) and
    RPC(test-incr). *)

type config = {
  smod_calls : int;  (** paper: 1_000_000 *)
  rpc_calls : int;  (** paper: 100_000 *)
  trials : int;  (** paper: 10 *)
  noise : float;  (** per-trial load-factor sigma; 0.0 disables *)
}

val paper_config : config
(** The paper's exact counts (slow under simulation: ~3×10^7 dispatches). *)

val quick_config : config
(** Scaled-down counts (per-call means are unaffected by trial length). *)

val run : World.t -> config -> Trial.row list
(** Rows in paper order: getpid, SMOD(SMOD-getpid), SMOD(test-incr),
    RPC(test-incr). *)

val render : Trial.row list -> string
