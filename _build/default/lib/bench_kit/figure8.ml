module Machine = Smod_kern.Machine

type config = { smod_calls : int; rpc_calls : int; trials : int; noise : float }

let paper_config = { smod_calls = 1_000_000; rpc_calls = 100_000; trials = 10; noise = 0.012 }
let quick_config = { smod_calls = 20_000; rpc_calls = 4_000; trials = 10; noise = 0.012 }

let run (world : World.t) config =
  let clock = Machine.clock world.World.machine in
  let results = ref [] in
  let push row = results := row :: !results in
  (* All four rows run sequentially in one client process: the simulated
     clock is global, so concurrent measurement processes would bill each
     other's work to the row being timed. *)
  World.spawn_seclibc_client world ~name:"fig8-client" (fun p conn ->
      let spec name calls =
        { Trial.name; calls_per_trial = calls; trials = config.trials; warmup = 100 }
      in
      push
        (Trial.run ~clock ~noise:config.noise
           (spec "getpid()" config.smod_calls)
           (fun _ -> ignore (Machine.sys_getpid world.World.machine p)));
      push
        (Trial.run ~clock ~noise:config.noise
           (spec "SMOD(SMOD-getpid)" config.smod_calls)
           (fun _ -> ignore (Smod_libc.Seclibc.Client.getpid conn)));
      push
        (Trial.run ~clock ~noise:config.noise
           (spec "SMOD(test-incr)" config.smod_calls)
           (fun i -> ignore (Smod_libc.Seclibc.Client.test_incr conn i)));
      let client = World.rpc_client world p ~client_port:41000 in
      push
        (Trial.run ~clock ~noise:config.noise
           {
             Trial.name = "RPC(test-incr)";
             calls_per_trial = config.rpc_calls;
             trials = config.trials;
             warmup = 20;
           }
           (fun i -> ignore (Smod_rpc.Testincr.incr client i))));
  World.run world;
  (* Paper order: getpid, SMOD-getpid, SMOD(test-incr), RPC. *)
  let order = [ "getpid()"; "SMOD(SMOD-getpid)"; "SMOD(test-incr)"; "RPC(test-incr)" ] in
  List.filter_map
    (fun name -> List.find_opt (fun (r : Trial.row) -> r.Trial.spec.Trial.name = name) !results)
    order

let render = Trial.figure8_table
