(** The converted libc's [qsort] and [bsearch], over simulated memory.

    C's qsort takes a comparator {e function pointer} — but under
    SecModule the comparator would be client code, and the whole point of
    the framework is that the handle never executes anything the client
    controls (§3.1: "there can be no trust placed on any memory portion
    directly under the control of p").  The conversion therefore offers a
    fixed comparator menu instead of a callback. *)

type comparator =
  | Words_unsigned  (** elements are 4-byte words, ascending unsigned *)
  | Words_signed  (** 4-byte words, ascending two's-complement *)
  | Words_unsigned_desc
  | Lexicographic  (** arbitrary [size]-byte elements, memcmp order *)

val comparator_of_code : int -> comparator option
(** Wire encoding for the module interface: 0, 1, 2, 3 in declaration
    order. *)

val qsort :
  Smod_vmem.Aspace.t -> base:int -> nmemb:int -> size:int -> cmp:comparator -> unit
(** In-place quicksort (median-of-three, insertion sort below 8
    elements).  Word comparators require [size = 4]; raises
    [Invalid_argument] otherwise or on a non-positive size. *)

val bsearch :
  Smod_vmem.Aspace.t -> key:int -> base:int -> nmemb:int -> size:int -> cmp:comparator -> int
(** Address of a matching element in a sorted array, or 0.  [key] is the
    address of the probe element. *)

val is_sorted :
  Smod_vmem.Aspace.t -> base:int -> nmemb:int -> size:int -> cmp:comparator -> bool
