module Aspace = Smod_vmem.Aspace
module Clock = Smod_sim.Clock
module Cost = Smod_sim.Cost_model

let magic = 0x11BC0DE

(* Arena anchor at the heap base:
     +0  magic
     +4  free-list head (0 = empty)
     +8  arena end (exclusive; every byte in [start, end) is in a block)
     +12 reserved
   Blocks: u32 size (including the 8-byte header), u32 next (free blocks
   only).  All sizes 8-aligned, so the arena tiles contiguously. *)

let anchor_size = 16
let header_size = 8
let min_block = 16

let align8 v = (v + 7) land lnot 7

let magic_addr a = Aspace.heap_base a
let head_addr a = Aspace.heap_base a + 4
let arena_end_addr a = Aspace.heap_base a + 8
let arena_start a = Aspace.heap_base a + anchor_size

let rd a addr = Aspace.read_word a ~addr
let wr a addr v = Aspace.write_word a ~addr v

let init a =
  if Aspace.brk a < arena_start a then Aspace.obreak a (arena_start a);
  if rd a (magic_addr a) <> magic then begin
    wr a (magic_addr a) magic;
    wr a (head_addr a) 0;
    wr a (arena_end_addr a) (arena_start a)
  end

let ensure_init a =
  if Aspace.brk a < arena_start a || rd a (magic_addr a) <> magic then init a

(* Pull a block out of the free list given the address of the link slot
   pointing at it. *)
let unlink a slot block = wr a slot (rd a (block + 4))

let grow_arena a want =
  let arena_end = rd a (arena_end_addr a) in
  (* Extend by at least a page to amortise obreak traffic. *)
  let grow = max want 4096 in
  (match Aspace.obreak a (arena_end + grow) with
  | () -> ()
  | exception Aspace.Bad_range _ -> raise Exit);
  wr a (arena_end_addr a) (arena_end + grow);
  wr a arena_end grow;
  arena_end

(* Sorted insert by address, coalescing both neighbours.  Shared by
   [free] and the arena-growth remainder path. *)
let insert_free a block =
  let size = rd a block in
  let rec find_slot slot =
    let next = rd a slot in
    if next = 0 || next > block then slot else find_slot (next + 4)
  in
  let slot = find_slot (head_addr a) in
  let next = rd a slot in
  if next = block then invalid_arg "free: double free";
  let prev = if slot = head_addr a then 0 else slot - 4 in
  if prev <> 0 && prev + rd a prev > block then invalid_arg "free: pointer inside free block";
  if next <> 0 && block + size > next then invalid_arg "free: block overlaps free list";
  if next <> 0 && block + size = next then begin
    (* Coalesce with the following block. *)
    wr a block (size + rd a next);
    wr a (block + 4) (rd a (next + 4))
  end
  else wr a (block + 4) next;
  if prev <> 0 && prev + rd a prev = block then
    (* Coalesce with the preceding block. *)
    begin
      wr a prev (rd a prev + rd a block);
      wr a (prev + 4) (rd a (block + 4))
    end
  else wr a slot block

let malloc a size =
  if size <= 0 then 0
  else begin
    ensure_init a;
    Clock.charge (Aspace.clock a) Cost.Native_call_overhead;
    let want = align8 (size + header_size) in
    let rec fit slot =
      let block = rd a slot in
      if block = 0 then None
      else begin
        let bsize = rd a block in
        if bsize >= want then Some (slot, block, bsize) else fit (block + 4)
      end
    in
    let carve (slot, block, bsize) =
      if bsize - want >= min_block then begin
        (* Split: the tail stays free. *)
        let rest = block + want in
        wr a rest (bsize - want);
        wr a (rest + 4) (rd a (block + 4));
        wr a slot rest;
        wr a block want
      end
      else unlink a slot block;
      block + header_size
    in
    match fit (head_addr a) with
    | Some found -> carve found
    | None -> (
        match grow_arena a want with
        | block ->
            let bsize = rd a block in
            if bsize - want >= min_block then begin
              let rest = block + want in
              wr a rest (bsize - want);
              wr a (rest + 4) 0;
              wr a block want;
              insert_free a rest
            end;
            block + header_size
        | exception Exit -> 0)
  end

let block_sane a block =
  let arena_end = rd a (arena_end_addr a) in
  block >= arena_start a
  && block < arena_end
  &&
  let size = rd a block in
  size >= min_block && size land 7 = 0 && block + size <= arena_end

let free a ptr =
  if ptr <> 0 then begin
    ensure_init a;
    Clock.charge (Aspace.clock a) Cost.Native_call_overhead;
    let block = ptr - header_size in
    if not (block_sane a block) then invalid_arg "free: bad pointer";
    insert_free a block
  end

let calloc a ~count ~size =
  if count <= 0 || size <= 0 then 0
  else begin
    let total = count * size in
    let ptr = malloc a total in
    if ptr <> 0 then begin
      Aspace.write_bytes a ~addr:ptr (Bytes.make total '\000');
      Clock.charge (Aspace.clock a) (Cost.Copy_bytes total)
    end;
    ptr
  end

let realloc a ptr size =
  if ptr = 0 then malloc a size
  else if size <= 0 then begin
    free a ptr;
    0
  end
  else begin
    let block = ptr - header_size in
    if not (block_sane a block) then invalid_arg "realloc: bad pointer";
    let old_payload = rd a block - header_size in
    if old_payload >= size then ptr
    else begin
      let fresh = malloc a size in
      if fresh = 0 then 0
      else begin
        let data = Aspace.read_bytes a ~addr:ptr ~len:old_payload in
        Aspace.write_bytes a ~addr:fresh data;
        Clock.charge (Aspace.clock a) (Cost.Copy_bytes old_payload);
        free a ptr;
        fresh
      end
    end
  end

let free_list_blocks a =
  ensure_init a;
  let rec walk block acc =
    if block = 0 then List.rev acc else walk (rd a (block + 4)) ((block, rd a block) :: acc)
  in
  walk (rd a (head_addr a)) []

let allocated_bytes a =
  ensure_init a;
  let free_set = List.map fst (free_list_blocks a) in
  let arena_end = rd a (arena_end_addr a) in
  let rec walk addr acc =
    if addr >= arena_end then acc
    else begin
      let size = rd a addr in
      if size < min_block || size land 7 <> 0 then acc (* corrupt: stop *)
      else begin
        let live = if List.mem addr free_set then 0 else size - header_size in
        walk (addr + size) (acc + live)
      end
    end
  in
  walk (arena_start a) 0

let check_invariants a =
  ensure_init a;
  let arena_end = rd a (arena_end_addr a) in
  let rec check block prev_end =
    if block = 0 then Ok ()
    else if block < arena_start a || block >= arena_end then
      Error (Printf.sprintf "free block 0x%x outside arena" block)
    else begin
      let size = rd a block in
      if size < min_block || size land 7 <> 0 then
        Error (Printf.sprintf "free block 0x%x has bad size %d" block size)
      else if block + size > arena_end then
        Error (Printf.sprintf "free block 0x%x overruns arena" block)
      else if block < prev_end then Error "free list not sorted / overlapping"
      else if block = prev_end && prev_end > 0 then
        Error (Printf.sprintf "adjacent free blocks not coalesced at 0x%x" block)
      else check (rd a (block + 4)) (block + size)
    end
  in
  check (rd a (head_addr a)) 0
