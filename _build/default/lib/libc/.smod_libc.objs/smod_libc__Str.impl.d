lib/libc/str.ml: Bytes Char List Smod_sim Smod_vmem String
