lib/libc/seclibc.ml: Alloc Char List Registry Secmodule Smod Smod_kern Smod_modfmt Smod_sim Smod_svm Smod_vmem Sort Str Stub Toolchain
