lib/libc/seclibc.mli: Secmodule Smod_modfmt
