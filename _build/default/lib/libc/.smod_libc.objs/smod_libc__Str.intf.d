lib/libc/str.mli: Smod_vmem
