lib/libc/sort.ml: Smod_sim Smod_vmem
