lib/libc/alloc.ml: Bytes List Printf Smod_sim Smod_vmem
