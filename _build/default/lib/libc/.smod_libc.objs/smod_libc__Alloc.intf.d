lib/libc/alloc.mli: Smod_vmem
