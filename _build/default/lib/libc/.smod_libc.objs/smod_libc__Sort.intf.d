lib/libc/sort.mli: Smod_vmem
