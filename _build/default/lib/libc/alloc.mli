(** The converted libc's [malloc]: a K&R-style first-fit free-list
    allocator whose entire state — arena anchor, free-list links, block
    headers — lives in {e simulated memory} on the process heap.

    Because the state is in the shared data/heap range, a handle process
    executing [malloc] on the client's behalf manipulates exactly the heap
    the client sees, "working identically to its man-page specification
    within the SecModule framework" (§3).  Heap growth goes through
    {!Smod_vmem.Aspace.obreak}, whose SecModule modification keeps the
    paired address space converged.

    Block layout: an 8-byte header (u32 size including header, u32 next
    free block) precedes every payload; payloads are 8-byte aligned. *)

val magic : int

val init : Smod_vmem.Aspace.t -> unit
(** Idempotent; stamps the arena anchor at the heap base and reserves the
    first 16 bytes. *)

val malloc : Smod_vmem.Aspace.t -> int -> int
(** Returns the payload address, or 0 for a non-positive size or when the
    heap cannot grow. *)

val free : Smod_vmem.Aspace.t -> int -> unit
(** Accepts 0 as a no-op.  Raises [Invalid_argument] on a pointer that is
    not currently an allocated payload (double free / wild free). *)

val calloc : Smod_vmem.Aspace.t -> count:int -> size:int -> int
val realloc : Smod_vmem.Aspace.t -> int -> int -> int

val allocated_bytes : Smod_vmem.Aspace.t -> int
(** Sum of live payload sizes (walks the arena; test instrumentation). *)

val free_list_blocks : Smod_vmem.Aspace.t -> (int * int) list
(** (block address, block size) of each free block, address order. *)

val check_invariants : Smod_vmem.Aspace.t -> (unit, string) result
(** Free list sorted, non-overlapping, fully coalesced, inside the
    arena. *)
