module Smof = Smod_modfmt.Smof
module Aspace = Smod_vmem.Aspace
module Proc = Smod_kern.Proc
module Machine = Smod_kern.Machine
module Clock = Smod_sim.Clock
module Cost = Smod_sim.Cost_model
open Secmodule

let module_name = "seclibc"
let version = 1

(* Pure bytecode members: they exercise the module VM through the whole
   encrypted-text path. *)
let test_incr_source = "loadarg 0\npush 1\nadd\nret\n"

let abs_source =
  "loadarg 0\ndup\npush 2147483648\nltu\njnz positive\npush 0\nswap\nsub\nret\npositive:\nret\n"

let natives =
  (* (symbol, native key, size hint) *)
  [
    ("malloc", "libc_malloc", 208);
    ("free", "libc_free", 176);
    ("calloc", "libc_calloc", 96);
    ("realloc", "libc_realloc", 144);
    ("memcpy", "libc_memcpy", 112);
    ("memset", "libc_memset", 96);
    ("memcmp", "libc_memcmp", 96);
    ("strlen", "libc_strlen", 64);
    ("strcpy", "libc_strcpy", 80);
    ("strncpy", "libc_strncpy", 96);
    ("strcmp", "libc_strcmp", 80);
    ("strncmp", "libc_strncmp", 96);
    ("strchr", "libc_strchr", 64);
    ("strcat", "libc_strcat", 80);
    ("atoi", "libc_atoi", 112);
    ("getpid", "libc_getpid", 48);
    ("memmove", "libc_memmove", 128);
    ("memchr", "libc_memchr", 64);
    ("strstr", "libc_strstr", 112);
    ("strrchr", "libc_strrchr", 64);
    ("strncat", "libc_strncat", 96);
    ("strtol", "libc_strtol", 160);
    ("itoa", "libc_itoa", 128);
    ("qsort", "libc_qsort", 320);
    ("bsearch", "libc_bsearch", 160);
  ]

let image () =
  let b = Smof.Builder.create ~name:module_name ~version in
  ignore
    (Smof.Builder.add_function b ~name:"test_incr"
       ~code:(Smod_svm.Asm.assemble test_incr_source)
       ());
  ignore (Smof.Builder.add_function b ~name:"abs" ~code:(Smod_svm.Asm.assemble abs_source) ());
  List.iter
    (fun (name, native, size_hint) ->
      ignore (Smof.Builder.add_native_function b ~name ~native ~size_hint ()))
    natives;
  Smof.Builder.finish b

let arg aspace args_base k = Aspace.read_word aspace ~addr:(args_base + (4 * k))

let bind_all smod m_id =
  let bind name fn = Smod.bind_native smod ~m_id ~name fn in
  bind "libc_malloc" (fun _m (h : Proc.t) ~args_base ->
      Alloc.malloc h.Proc.aspace (arg h.Proc.aspace args_base 0));
  bind "libc_free" (fun _m h ~args_base ->
      Alloc.free h.Proc.aspace (arg h.Proc.aspace args_base 0);
      0);
  bind "libc_calloc" (fun _m h ~args_base ->
      let a = h.Proc.aspace in
      Alloc.calloc a ~count:(arg a args_base 0) ~size:(arg a args_base 1));
  bind "libc_realloc" (fun _m h ~args_base ->
      let a = h.Proc.aspace in
      Alloc.realloc a (arg a args_base 0) (arg a args_base 1));
  bind "libc_memcpy" (fun _m h ~args_base ->
      let a = h.Proc.aspace in
      Str.memcpy a ~dst:(arg a args_base 0) ~src:(arg a args_base 1) ~n:(arg a args_base 2));
  bind "libc_memset" (fun _m h ~args_base ->
      let a = h.Proc.aspace in
      Str.memset a ~dst:(arg a args_base 0) ~byte:(arg a args_base 1) ~n:(arg a args_base 2));
  bind "libc_memcmp" (fun _m h ~args_base ->
      let a = h.Proc.aspace in
      Str.memcmp a (arg a args_base 0) (arg a args_base 1) ~n:(arg a args_base 2) land 0xFFFFFFFF);
  bind "libc_strlen" (fun _m h ~args_base ->
      Str.strlen h.Proc.aspace (arg h.Proc.aspace args_base 0));
  bind "libc_strcpy" (fun _m h ~args_base ->
      let a = h.Proc.aspace in
      Str.strcpy a ~dst:(arg a args_base 0) ~src:(arg a args_base 1));
  bind "libc_strncpy" (fun _m h ~args_base ->
      let a = h.Proc.aspace in
      Str.strncpy a ~dst:(arg a args_base 0) ~src:(arg a args_base 1) ~n:(arg a args_base 2));
  bind "libc_strcmp" (fun _m h ~args_base ->
      let a = h.Proc.aspace in
      Str.strcmp a (arg a args_base 0) (arg a args_base 1) land 0xFFFFFFFF);
  bind "libc_strncmp" (fun _m h ~args_base ->
      let a = h.Proc.aspace in
      Str.strncmp a (arg a args_base 0) (arg a args_base 1) ~n:(arg a args_base 2)
      land 0xFFFFFFFF);
  bind "libc_strchr" (fun _m h ~args_base ->
      let a = h.Proc.aspace in
      Str.strchr a (arg a args_base 0) (Char.chr (arg a args_base 1 land 0xff)));
  bind "libc_strcat" (fun _m h ~args_base ->
      let a = h.Proc.aspace in
      Str.strcat a ~dst:(arg a args_base 0) ~src:(arg a args_base 1));
  bind "libc_atoi" (fun _m h ~args_base ->
      Str.atoi h.Proc.aspace (arg h.Proc.aspace args_base 0) land 0xFFFFFFFF);
  bind "libc_memmove" (fun _m h ~args_base ->
      let a = h.Proc.aspace in
      Str.memmove a ~dst:(arg a args_base 0) ~src:(arg a args_base 1) ~n:(arg a args_base 2));
  bind "libc_memchr" (fun _m h ~args_base ->
      let a = h.Proc.aspace in
      Str.memchr a (arg a args_base 0) ~byte:(arg a args_base 1) ~n:(arg a args_base 2));
  bind "libc_strstr" (fun _m h ~args_base ->
      let a = h.Proc.aspace in
      Str.strstr a ~haystack:(arg a args_base 0) ~needle:(arg a args_base 1));
  bind "libc_strrchr" (fun _m h ~args_base ->
      let a = h.Proc.aspace in
      Str.strrchr a (arg a args_base 0) (Char.chr (arg a args_base 1 land 0xff)));
  bind "libc_strncat" (fun _m h ~args_base ->
      let a = h.Proc.aspace in
      Str.strncat a ~dst:(arg a args_base 0) ~src:(arg a args_base 1) ~n:(arg a args_base 2));
  bind "libc_strtol" (fun _m h ~args_base ->
      let a = h.Proc.aspace in
      let value, end_addr = Str.strtol a (arg a args_base 0) ~base:(arg a args_base 2) in
      let endptr = arg a args_base 1 in
      if endptr <> 0 then Aspace.write_word a ~addr:endptr end_addr;
      value land 0xFFFFFFFF);
  bind "libc_itoa" (fun _m h ~args_base ->
      let a = h.Proc.aspace in
      Str.itoa a ~value:(arg a args_base 0) ~buf:(arg a args_base 1) ~base:(arg a args_base 2));
  bind "libc_qsort" (fun _m h ~args_base ->
      let a = h.Proc.aspace in
      match Sort.comparator_of_code (arg a args_base 3) with
      | None -> 0xFFFFFFFF
      | Some cmp ->
          Sort.qsort a ~base:(arg a args_base 0) ~nmemb:(arg a args_base 1)
            ~size:(arg a args_base 2) ~cmp;
          0);
  bind "libc_bsearch" (fun _m h ~args_base ->
      let a = h.Proc.aspace in
      match Sort.comparator_of_code (arg a args_base 4) with
      | None -> 0
      | Some cmp ->
          Sort.bsearch a ~key:(arg a args_base 0) ~base:(arg a args_base 1)
            ~nmemb:(arg a args_base 2) ~size:(arg a args_base 3) ~cmp);
  bind "libc_getpid" (fun m (h : Proc.t) ~args_base:_ ->
      (* §4.3: the converted getpid reports the client.  The kernel cached
         the client pid in the secret segment at session setup, so this is
         a protected memory read plus the fix-up bookkeeping — no nested
         trap. *)
      let clock = Machine.clock m in
      Clock.charge clock Cost.Getpid_body;
      Clock.charge clock Cost.Getpid_client_fixup;
      Aspace.read_word h.Proc.aspace ~addr:Smod.client_pid_cache_addr)

let install smod ?(protection = Registry.Encrypted) ?policy () =
  let entry = Toolchain.package smod ~image:(image ()) ~protection ?policy () in
  bind_all smod entry.Registry.m_id;
  entry

module Client = struct
  let call1 conn func a = Stub.call conn ~func [| a |]
  let call2 conn func a b = Stub.call conn ~func [| a; b |]
  let call3 conn func a b c = Stub.call conn ~func [| a; b; c |]

  let to_signed v = if v land 0x80000000 <> 0 then v - 0x100000000 else v

  let malloc conn size = call1 conn "malloc" size
  let free conn ptr = ignore (call1 conn "free" ptr)
  let calloc conn ~count ~size = call2 conn "calloc" count size
  let realloc conn ptr size = call2 conn "realloc" ptr size
  let memcpy conn ~dst ~src ~n = call3 conn "memcpy" dst src n
  let memset conn ~dst ~byte ~n = call3 conn "memset" dst byte n
  let memcmp conn p q ~n = to_signed (call3 conn "memcmp" p q n)
  let strlen conn ptr = call1 conn "strlen" ptr
  let strcpy conn ~dst ~src = call2 conn "strcpy" dst src
  let strcmp conn p q = to_signed (call2 conn "strcmp" p q)
  let strchr conn ptr c = call2 conn "strchr" ptr (Char.code c)
  let atoi conn ptr = to_signed (call1 conn "atoi" ptr)
  let call4 conn func a b c d = Stub.call conn ~func [| a; b; c; d |]
  let call5 conn func a b c d e = Stub.call conn ~func [| a; b; c; d; e |]
  let memmove conn ~dst ~src ~n = call3 conn "memmove" dst src n
  let memchr conn ptr ~byte ~n = call3 conn "memchr" ptr byte n
  let strstr conn ~haystack ~needle = call2 conn "strstr" haystack needle
  let strrchr conn ptr c = call2 conn "strrchr" ptr (Char.code c)
  let strncat conn ~dst ~src ~n = call3 conn "strncat" dst src n

  let strtol conn ptr ~endptr ~base =
    to_signed (call3 conn "strtol" ptr endptr base)

  let itoa conn ~value ~buf ~base = call3 conn "itoa" (value land 0xFFFFFFFF) buf base

  let qsort conn ~base ~nmemb ~size ~cmp_code = ignore (call4 conn "qsort" base nmemb size cmp_code)
  let bsearch conn ~key ~base ~nmemb ~size ~cmp_code = call5 conn "bsearch" key base nmemb size cmp_code
  let getpid conn = Stub.call conn ~func:"getpid" [||]
  let abs conn v = call1 conn "abs" (v land 0xFFFFFFFF)
  let test_incr conn v = call1 conn "test_incr" v
end
