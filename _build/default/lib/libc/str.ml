module Aspace = Smod_vmem.Aspace
module Clock = Smod_sim.Clock
module Cost = Smod_sim.Cost_model

let max_str = 1 lsl 20

let strlen a ptr =
  let rec loop i =
    if i >= max_str then invalid_arg "strlen: unterminated string"
    else if Aspace.read_u8 a ~addr:(ptr + i) = 0 then i
    else loop (i + 1)
  in
  loop 0

let strcpy a ~dst ~src =
  let n = strlen a src in
  let data = Aspace.read_bytes a ~addr:src ~len:(n + 1) in
  Aspace.write_bytes a ~addr:dst data;
  Clock.charge (Aspace.clock a) (Cost.Copy_bytes (n + 1));
  dst

let strncpy a ~dst ~src ~n =
  let len = min (strlen a src) n in
  let data = Aspace.read_bytes a ~addr:src ~len in
  Aspace.write_bytes a ~addr:dst data;
  if len < n then Aspace.write_bytes a ~addr:(dst + len) (Bytes.make (n - len) '\000');
  Clock.charge (Aspace.clock a) (Cost.Copy_bytes n);
  dst

let strcmp a p q =
  let rec loop i =
    let ca = Aspace.read_u8 a ~addr:(p + i) and cb = Aspace.read_u8 a ~addr:(q + i) in
    if ca <> cb then compare ca cb else if ca = 0 then 0 else loop (i + 1)
  in
  loop 0

let strncmp a p q ~n =
  let rec loop i =
    if i >= n then 0
    else begin
      let ca = Aspace.read_u8 a ~addr:(p + i) and cb = Aspace.read_u8 a ~addr:(q + i) in
      if ca <> cb then compare ca cb else if ca = 0 then 0 else loop (i + 1)
    end
  in
  loop 0

let strchr a ptr c =
  let target = Char.code c in
  let rec loop i =
    if i >= max_str then 0
    else begin
      let v = Aspace.read_u8 a ~addr:(ptr + i) in
      if v = target then ptr + i else if v = 0 then 0 else loop (i + 1)
    end
  in
  loop 0

let strcat a ~dst ~src =
  let end_of_dst = dst + strlen a dst in
  ignore (strcpy a ~dst:end_of_dst ~src);
  dst

let memcpy a ~dst ~src ~n =
  if n > 0 then begin
    let data = Aspace.read_bytes a ~addr:src ~len:n in
    Aspace.write_bytes a ~addr:dst data;
    Clock.charge (Aspace.clock a) (Cost.Copy_bytes n)
  end;
  dst

let memset a ~dst ~byte ~n =
  if n > 0 then begin
    Aspace.write_bytes a ~addr:dst (Bytes.make n (Char.chr (byte land 0xff)));
    Clock.charge (Aspace.clock a) (Cost.Copy_bytes n)
  end;
  dst

let memcmp a p q ~n =
  let rec loop i =
    if i >= n then 0
    else begin
      let ca = Aspace.read_u8 a ~addr:(p + i) and cb = Aspace.read_u8 a ~addr:(q + i) in
      if ca <> cb then compare ca cb else loop (i + 1)
    end
  in
  loop 0

let strncat a ~dst ~src ~n =
  let end_of_dst = dst + strlen a dst in
  let len = min (strlen a src) n in
  let data = Aspace.read_bytes a ~addr:src ~len in
  Aspace.write_bytes a ~addr:end_of_dst data;
  Aspace.write_u8 a ~addr:(end_of_dst + len) 0;
  Clock.charge (Aspace.clock a) (Cost.Copy_bytes (len + 1));
  dst

let strstr a ~haystack ~needle =
  let nlen = strlen a needle in
  if nlen = 0 then haystack
  else begin
    let hlen = strlen a haystack in
    let rec scan i =
      if i + nlen > hlen then 0
      else begin
        let rec matches j =
          j >= nlen
          || Aspace.read_u8 a ~addr:(haystack + i + j) = Aspace.read_u8 a ~addr:(needle + j)
             && matches (j + 1)
        in
        if matches 0 then haystack + i else scan (i + 1)
      end
    in
    scan 0
  end

let strrchr a ptr c =
  let target = Char.code c in
  let len = strlen a ptr in
  let rec scan i = if i < 0 then 0 else if Aspace.read_u8 a ~addr:(ptr + i) = target then ptr + i else scan (i - 1) in
  (* the terminating NUL is searchable, as in C *)
  if target = 0 then ptr + len else scan (len - 1)

let memmove a ~dst ~src ~n =
  (* [read_bytes] stages the whole source before any write, so this is
     overlap-safe by construction. *)
  if n > 0 then begin
    let data = Aspace.read_bytes a ~addr:src ~len:n in
    Aspace.write_bytes a ~addr:dst data;
    Clock.charge (Aspace.clock a) (Cost.Copy_bytes n)
  end;
  dst

let memchr a ptr ~byte ~n =
  let target = byte land 0xff in
  let rec scan i =
    if i >= n then 0 else if Aspace.read_u8 a ~addr:(ptr + i) = target then ptr + i else scan (i + 1)
  in
  scan 0

let digit_value c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'z' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'Z' -> Char.code c - Char.code 'A' + 10
  | _ -> 99

let strtol a ptr ~base =
  let len = strlen a ptr in
  let s = Bytes.to_string (Aspace.read_bytes a ~addr:ptr ~len) in
  let i = ref 0 in
  while !i < len && (s.[!i] = ' ' || s.[!i] = '\t') do
    incr i
  done;
  let negative =
    if !i < len && (s.[!i] = '-' || s.[!i] = '+') then begin
      let neg = s.[!i] = '-' in
      incr i;
      neg
    end
    else false
  in
  let base =
    if base = 0 then begin
      if !i + 1 < len && s.[!i] = '0' && (s.[!i + 1] = 'x' || s.[!i + 1] = 'X') then begin
        i := !i + 2;
        16
      end
      else if !i < len && s.[!i] = '0' then 8
      else 10
    end
    else if base = 16 && !i + 1 < len && s.[!i] = '0' && (s.[!i + 1] = 'x' || s.[!i + 1] = 'X')
    then begin
      i := !i + 2;
      16
    end
    else if base >= 2 && base <= 36 then base
    else 10
  in
  let value = ref 0 in
  let consumed = ref false in
  let continue_ = ref true in
  while !continue_ && !i < len do
    let d = digit_value s.[!i] in
    if d < base then begin
      value := (!value * base) + d;
      consumed := true;
      incr i
    end
    else continue_ := false
  done;
  let v = if negative then - !value else !value in
  ignore !consumed;
  (v, ptr + !i)

let itoa a ~value ~buf ~base =
  let base = if base >= 2 && base <= 36 then base else 10 in
  let digits = "0123456789abcdefghijklmnopqrstuvwxyz" in
  let signed = base = 10 in
  let v32 = value land 0xFFFFFFFF in
  let negative = signed && v32 land 0x80000000 <> 0 in
  let magnitude = if negative then 0x100000000 - v32 else v32 in
  let rec render acc m = if m = 0 then acc else render (digits.[m mod base] :: acc) (m / base) in
  let chars = if magnitude = 0 then [ '0' ] else render [] magnitude in
  let chars = if negative then '-' :: chars else chars in
  let s = String.init (List.length chars) (List.nth chars) in
  Aspace.write_string a ~addr:buf s;
  Clock.charge (Aspace.clock a) (Cost.Copy_bytes (String.length s + 1));
  buf

let atoi a ptr =
  let len = strlen a ptr in
  let s = Bytes.to_string (Aspace.read_bytes a ~addr:ptr ~len) in
  let s = String.trim s in
  let rec digits i acc seen =
    if i >= String.length s then if seen then acc else 0
    else begin
      match s.[i] with
      | '0' .. '9' -> digits (i + 1) ((acc * 10) + (Char.code s.[i] - Char.code '0')) true
      | _ -> if seen then acc else 0
    end
  in
  match s with
  | "" -> 0
  | _ when s.[0] = '-' -> -digits 1 0 false
  | _ when s.[0] = '+' -> digits 1 0 false
  | _ -> digits 0 0 false
