(** The SecModule conversion of libc (§4, §4.2–4.3).

    {!image} packs a representative slice of libc — the allocator, memory
    and string functions, [getpid], plus a few pure bytecode routines —
    into a SMOF module.  {!install} registers it with a SecModule kernel
    and binds every native body.  The {!Client} wrappers mirror the
    overriding header of §4.2: a converted program calls
    [Seclibc.Client.malloc conn 32] where it previously called
    [malloc(32)], and the call travels the full handle dispatch path while
    manipulating the {e client's} heap through the shared pages. *)

val module_name : string
val version : int

val image : unit -> Smod_modfmt.Smof.t

val install :
  Secmodule.Smod.t ->
  ?protection:Secmodule.Registry.protection ->
  ?policy:Secmodule.Policy.t ->
  unit ->
  Secmodule.Registry.entry
(** Package (default: [Encrypted]) and bind all native bodies. *)

(** Client-side wrappers (what the overriding include would generate). *)
module Client : sig
  val malloc : Secmodule.Stub.conn -> int -> int
  val free : Secmodule.Stub.conn -> int -> unit
  val calloc : Secmodule.Stub.conn -> count:int -> size:int -> int
  val realloc : Secmodule.Stub.conn -> int -> int -> int
  val memcpy : Secmodule.Stub.conn -> dst:int -> src:int -> n:int -> int
  val memset : Secmodule.Stub.conn -> dst:int -> byte:int -> n:int -> int
  val memcmp : Secmodule.Stub.conn -> int -> int -> n:int -> int
  val strlen : Secmodule.Stub.conn -> int -> int
  val strcpy : Secmodule.Stub.conn -> dst:int -> src:int -> int
  val strcmp : Secmodule.Stub.conn -> int -> int -> int
  val strchr : Secmodule.Stub.conn -> int -> char -> int
  val atoi : Secmodule.Stub.conn -> int -> int
  val memmove : Secmodule.Stub.conn -> dst:int -> src:int -> n:int -> int
  val memchr : Secmodule.Stub.conn -> int -> byte:int -> n:int -> int
  val strstr : Secmodule.Stub.conn -> haystack:int -> needle:int -> int
  val strrchr : Secmodule.Stub.conn -> int -> char -> int
  val strncat : Secmodule.Stub.conn -> dst:int -> src:int -> n:int -> int

  val strtol : Secmodule.Stub.conn -> int -> endptr:int -> base:int -> int
  (** [endptr] is an address to receive the end pointer (0 to skip). *)

  val itoa : Secmodule.Stub.conn -> value:int -> buf:int -> base:int -> int

  val qsort :
    Secmodule.Stub.conn -> base:int -> nmemb:int -> size:int -> cmp_code:int -> unit
  (** [cmp_code] selects from {!Sort.comparator_of_code}'s menu — a
      callback comparator cannot cross the protection boundary (see
      {!Sort}). *)

  val bsearch :
    Secmodule.Stub.conn -> key:int -> base:int -> nmemb:int -> size:int -> cmp_code:int -> int

  val getpid : Secmodule.Stub.conn -> int
  val abs : Secmodule.Stub.conn -> int -> int
  (** Pure bytecode, runs on the module VM. *)

  val test_incr : Secmodule.Stub.conn -> int -> int
  (** The paper's benchmark function (§4.5). *)
end
