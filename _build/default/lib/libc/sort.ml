module Aspace = Smod_vmem.Aspace
module Clock = Smod_sim.Clock
module Cost = Smod_sim.Cost_model

type comparator = Words_unsigned | Words_signed | Words_unsigned_desc | Lexicographic

let comparator_of_code = function
  | 0 -> Some Words_unsigned
  | 1 -> Some Words_signed
  | 2 -> Some Words_unsigned_desc
  | 3 -> Some Lexicographic
  | _ -> None

let to_signed v = if v land 0x80000000 <> 0 then v - 0x100000000 else v

let check_args ~nmemb ~size ~cmp =
  if size <= 0 then invalid_arg "qsort: size";
  if nmemb < 0 then invalid_arg "qsort: nmemb";
  match cmp with
  | Words_unsigned | Words_signed | Words_unsigned_desc ->
      if size <> 4 then invalid_arg "qsort: word comparators need size 4"
  | Lexicographic -> ()

(* Compare the elements at indices i and j. *)
let compare_elems a ~base ~size ~cmp i j =
  match cmp with
  | Words_unsigned ->
      compare (Aspace.read_word a ~addr:(base + (4 * i))) (Aspace.read_word a ~addr:(base + (4 * j)))
  | Words_unsigned_desc ->
      compare (Aspace.read_word a ~addr:(base + (4 * j))) (Aspace.read_word a ~addr:(base + (4 * i)))
  | Words_signed ->
      compare
        (to_signed (Aspace.read_word a ~addr:(base + (4 * i))))
        (to_signed (Aspace.read_word a ~addr:(base + (4 * j))))
  | Lexicographic ->
      compare
        (Aspace.read_bytes a ~addr:(base + (size * i)) ~len:size)
        (Aspace.read_bytes a ~addr:(base + (size * j)) ~len:size)

let swap_elems a ~base ~size i j =
  if i <> j then begin
    let ei = Aspace.read_bytes a ~addr:(base + (size * i)) ~len:size in
    let ej = Aspace.read_bytes a ~addr:(base + (size * j)) ~len:size in
    Aspace.write_bytes a ~addr:(base + (size * i)) ej;
    Aspace.write_bytes a ~addr:(base + (size * j)) ei;
    Clock.charge (Aspace.clock a) (Cost.Copy_bytes (2 * size))
  end

let qsort a ~base ~nmemb ~size ~cmp =
  check_args ~nmemb ~size ~cmp;
  let cmp_ij = compare_elems a ~base ~size ~cmp in
  let swap = swap_elems a ~base ~size in
  let insertion lo hi =
    for i = lo + 1 to hi do
      let j = ref i in
      while !j > lo && cmp_ij !j (!j - 1) < 0 do
        swap !j (!j - 1);
        decr j
      done
    done
  in
  let rec sort lo hi =
    if hi - lo < 8 then insertion lo hi
    else begin
      (* median-of-three pivot placed at hi *)
      let mid = (lo + hi) / 2 in
      if cmp_ij mid lo < 0 then swap mid lo;
      if cmp_ij hi lo < 0 then swap hi lo;
      if cmp_ij hi mid < 0 then swap hi mid;
      swap mid hi;
      let pivot = hi in
      let store = ref lo in
      for i = lo to hi - 1 do
        if cmp_ij i pivot < 0 then begin
          swap i !store;
          incr store
        end
      done;
      swap !store hi;
      if !store > lo then sort lo (!store - 1);
      if !store < hi then sort (!store + 1) hi
    end
  in
  if nmemb > 1 then sort 0 (nmemb - 1)

let compare_key a ~key ~base ~size ~cmp i =
  match cmp with
  | Words_unsigned ->
      compare (Aspace.read_word a ~addr:key) (Aspace.read_word a ~addr:(base + (4 * i)))
  | Words_unsigned_desc ->
      compare (Aspace.read_word a ~addr:(base + (4 * i))) (Aspace.read_word a ~addr:key)
  | Words_signed ->
      compare
        (to_signed (Aspace.read_word a ~addr:key))
        (to_signed (Aspace.read_word a ~addr:(base + (4 * i))))
  | Lexicographic ->
      compare (Aspace.read_bytes a ~addr:key ~len:size)
        (Aspace.read_bytes a ~addr:(base + (size * i)) ~len:size)

let bsearch a ~key ~base ~nmemb ~size ~cmp =
  check_args ~nmemb ~size ~cmp;
  let rec search lo hi =
    if lo > hi then 0
    else begin
      let mid = (lo + hi) / 2 in
      let c = compare_key a ~key ~base ~size ~cmp mid in
      if c = 0 then base + (size * mid)
      else if c < 0 then search lo (mid - 1)
      else search (mid + 1) hi
    end
  in
  if nmemb = 0 then 0 else search 0 (nmemb - 1)

let is_sorted a ~base ~nmemb ~size ~cmp =
  check_args ~nmemb ~size ~cmp;
  let cmp_ij = compare_elems a ~base ~size ~cmp in
  let rec go i = i >= nmemb - 1 || (cmp_ij i (i + 1) <= 0 && go (i + 1)) in
  nmemb <= 1 || go 0
