(** The converted libc's string and memory functions, operating on
    simulated process memory.  Semantics follow the C man pages; addresses
    are simulated virtual addresses. *)

val strlen : Smod_vmem.Aspace.t -> int -> int
val strcpy : Smod_vmem.Aspace.t -> dst:int -> src:int -> int
(** Returns [dst]. *)

val strncpy : Smod_vmem.Aspace.t -> dst:int -> src:int -> n:int -> int
val strcmp : Smod_vmem.Aspace.t -> int -> int -> int
(** -1 / 0 / 1. *)

val strncmp : Smod_vmem.Aspace.t -> int -> int -> n:int -> int
val strchr : Smod_vmem.Aspace.t -> int -> char -> int
(** Address of the first occurrence, or 0. *)

val strcat : Smod_vmem.Aspace.t -> dst:int -> src:int -> int
val strncat : Smod_vmem.Aspace.t -> dst:int -> src:int -> n:int -> int
val strstr : Smod_vmem.Aspace.t -> haystack:int -> needle:int -> int
(** Address of the first occurrence, or 0. *)

val strrchr : Smod_vmem.Aspace.t -> int -> char -> int
val memcpy : Smod_vmem.Aspace.t -> dst:int -> src:int -> n:int -> int
val memmove : Smod_vmem.Aspace.t -> dst:int -> src:int -> n:int -> int
(** Overlap-safe (the source is staged before any destination write). *)

val memchr : Smod_vmem.Aspace.t -> int -> byte:int -> n:int -> int
val memset : Smod_vmem.Aspace.t -> dst:int -> byte:int -> n:int -> int
val memcmp : Smod_vmem.Aspace.t -> int -> int -> n:int -> int
val atoi : Smod_vmem.Aspace.t -> int -> int

val strtol : Smod_vmem.Aspace.t -> int -> base:int -> int * int
(** [(value, end address)] — the end address points at the first
    unconsumed character, as C's [endptr].  Base 0 auto-detects 0x/0
    prefixes; bases 2–36 accepted, others behave as base 10. *)

val itoa : Smod_vmem.Aspace.t -> value:int -> buf:int -> base:int -> int
(** Writes the NUL-terminated representation (lowercase digits) and
    returns [buf].  The value is interpreted as signed 32-bit for base
    10 and unsigned otherwise, matching the classic libc extension. *)
