lib/systrace/systrace.ml: Array Format Hashtbl List Smod_kern Smod_sim String
