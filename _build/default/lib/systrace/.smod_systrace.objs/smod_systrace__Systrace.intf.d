lib/systrace/systrace.mli: Smod_kern
