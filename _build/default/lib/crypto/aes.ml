exception Bad_key_length of int

(* ------------------------------------------------------------------ *)
(* S-box construction: byte -> affine(inverse(byte)).                  *)
(* ------------------------------------------------------------------ *)

let rotl8 x k = ((x lsl k) lor (x lsr (8 - k))) land 0xff

let affine x = x lxor rotl8 x 1 lxor rotl8 x 2 lxor rotl8 x 3 lxor rotl8 x 4 lxor 0x63

let sbox_table =
  Array.init 256 (fun i -> affine (Gf256.inv i))

let inv_sbox_table =
  let t = Array.make 256 0 in
  Array.iteri (fun i v -> t.(v) <- i) sbox_table;
  t

let sbox i = sbox_table.(i land 0xff)
let inv_sbox i = inv_sbox_table.(i land 0xff)

(* ------------------------------------------------------------------ *)
(* Key schedule.  Round keys are stored as a flat array of 32-bit      *)
(* words (big-endian byte order within a word, as in FIPS-197).        *)
(* ------------------------------------------------------------------ *)

type key = { w : int array; nr : int; bits : int }

let mask32 = 0xFFFFFFFF

let sub_word w =
  (sbox ((w lsr 24) land 0xff) lsl 24)
  lor (sbox ((w lsr 16) land 0xff) lsl 16)
  lor (sbox ((w lsr 8) land 0xff) lsl 8)
  lor sbox (w land 0xff)

let rot_word w = ((w lsl 8) lor (w lsr 24)) land mask32

let rcon =
  let t = Array.make 15 0 in
  let v = ref 1 in
  for i = 1 to 14 do
    t.(i) <- !v lsl 24;
    v := Gf256.xtime !v
  done;
  t

let expand raw =
  let nk =
    match String.length raw with
    | 16 -> 4
    | 24 -> 6
    | 32 -> 8
    | n -> raise (Bad_key_length n)
  in
  let nr = nk + 6 in
  let nwords = 4 * (nr + 1) in
  let w = Array.make nwords 0 in
  for i = 0 to nk - 1 do
    w.(i) <-
      (Char.code raw.[4 * i] lsl 24)
      lor (Char.code raw.[(4 * i) + 1] lsl 16)
      lor (Char.code raw.[(4 * i) + 2] lsl 8)
      lor Char.code raw.[(4 * i) + 3]
  done;
  for i = nk to nwords - 1 do
    let temp = w.(i - 1) in
    let temp =
      if i mod nk = 0 then sub_word (rot_word temp) lxor rcon.(i / nk)
      else if nk > 6 && i mod nk = 4 then sub_word temp
      else temp
    in
    w.(i) <- w.(i - nk) lxor temp
  done;
  { w; nr; bits = nk * 32 }

let key_bits k = k.bits
let rounds k = k.nr

(* ------------------------------------------------------------------ *)
(* Block transforms.  The state is kept as 16 ints in FIPS order:      *)
(* state.(r + 4*c) = byte r of column c.                               *)
(* ------------------------------------------------------------------ *)

let add_round_key state key round =
  for c = 0 to 3 do
    let w = key.w.((4 * round) + c) in
    state.((4 * c) + 0) <- state.((4 * c) + 0) lxor ((w lsr 24) land 0xff);
    state.((4 * c) + 1) <- state.((4 * c) + 1) lxor ((w lsr 16) land 0xff);
    state.((4 * c) + 2) <- state.((4 * c) + 2) lxor ((w lsr 8) land 0xff);
    state.((4 * c) + 3) <- state.((4 * c) + 3) lxor (w land 0xff)
  done

let sub_bytes state = for i = 0 to 15 do state.(i) <- sbox_table.(state.(i)) done
let inv_sub_bytes state = for i = 0 to 15 do state.(i) <- inv_sbox_table.(state.(i)) done

(* Row r rotates left by r; in our layout row r is indices r, r+4, r+8, r+12. *)
let shift_rows state =
  let tmp = Array.copy state in
  for r = 1 to 3 do
    for c = 0 to 3 do
      state.(r + (4 * c)) <- tmp.(r + (4 * ((c + r) mod 4)))
    done
  done

let inv_shift_rows state =
  let tmp = Array.copy state in
  for r = 1 to 3 do
    for c = 0 to 3 do
      state.(r + (4 * ((c + r) mod 4))) <- tmp.(r + (4 * c))
    done
  done

let mix_columns state =
  for c = 0 to 3 do
    let b = 4 * c in
    let s0 = state.(b) and s1 = state.(b + 1) and s2 = state.(b + 2) and s3 = state.(b + 3) in
    let m = Gf256.mul in
    state.(b) <- m 2 s0 lxor m 3 s1 lxor s2 lxor s3;
    state.(b + 1) <- s0 lxor m 2 s1 lxor m 3 s2 lxor s3;
    state.(b + 2) <- s0 lxor s1 lxor m 2 s2 lxor m 3 s3;
    state.(b + 3) <- m 3 s0 lxor s1 lxor s2 lxor m 2 s3
  done

let inv_mix_columns state =
  for c = 0 to 3 do
    let b = 4 * c in
    let s0 = state.(b) and s1 = state.(b + 1) and s2 = state.(b + 2) and s3 = state.(b + 3) in
    let m = Gf256.mul in
    state.(b) <- m 14 s0 lxor m 11 s1 lxor m 13 s2 lxor m 9 s3;
    state.(b + 1) <- m 9 s0 lxor m 14 s1 lxor m 11 s2 lxor m 13 s3;
    state.(b + 2) <- m 13 s0 lxor m 9 s1 lxor m 14 s2 lxor m 11 s3;
    state.(b + 3) <- m 11 s0 lxor m 13 s1 lxor m 9 s2 lxor m 14 s3
  done

let load_state state src off =
  for i = 0 to 15 do state.(i) <- Char.code (Bytes.get src (off + i)) done

let store_state state dst off =
  for i = 0 to 15 do Bytes.set dst (off + i) (Char.chr state.(i)) done

let encrypt_block key src ~src_off dst ~dst_off =
  let state = Array.make 16 0 in
  load_state state src src_off;
  add_round_key state key 0;
  for round = 1 to key.nr - 1 do
    sub_bytes state;
    shift_rows state;
    mix_columns state;
    add_round_key state key round
  done;
  sub_bytes state;
  shift_rows state;
  add_round_key state key key.nr;
  store_state state dst dst_off

let decrypt_block key src ~src_off dst ~dst_off =
  let state = Array.make 16 0 in
  load_state state src src_off;
  add_round_key state key key.nr;
  for round = key.nr - 1 downto 1 do
    inv_shift_rows state;
    inv_sub_bytes state;
    add_round_key state key round;
    inv_mix_columns state
  done;
  inv_shift_rows state;
  inv_sub_bytes state;
  add_round_key state key 0;
  store_state state dst dst_off

module Mode = struct
  exception Bad_input_length of int
  exception Bad_padding

  let block = 16

  let check_blocked data =
    let n = Bytes.length data in
    if n mod block <> 0 then raise (Bad_input_length n)

  let check_iv iv = if Bytes.length iv <> block then raise (Bad_input_length (Bytes.length iv))

  let ecb_encrypt key data =
    check_blocked data;
    let out = Bytes.create (Bytes.length data) in
    let nblocks = Bytes.length data / block in
    for i = 0 to nblocks - 1 do
      encrypt_block key data ~src_off:(i * block) out ~dst_off:(i * block)
    done;
    out

  let ecb_decrypt key data =
    check_blocked data;
    let out = Bytes.create (Bytes.length data) in
    let nblocks = Bytes.length data / block in
    for i = 0 to nblocks - 1 do
      decrypt_block key data ~src_off:(i * block) out ~dst_off:(i * block)
    done;
    out

  let xor_into dst dst_off src src_off n =
    for i = 0 to n - 1 do
      Bytes.set dst (dst_off + i)
        (Char.chr
           (Char.code (Bytes.get dst (dst_off + i))
           lxor Char.code (Bytes.get src (src_off + i))))
    done

  let cbc_encrypt key ~iv data =
    check_blocked data;
    check_iv iv;
    let out = Bytes.create (Bytes.length data) in
    let prev = Bytes.copy iv in
    let nblocks = Bytes.length data / block in
    for i = 0 to nblocks - 1 do
      let off = i * block in
      let tmp = Bytes.sub data off block in
      xor_into tmp 0 prev 0 block;
      encrypt_block key tmp ~src_off:0 out ~dst_off:off;
      Bytes.blit out off prev 0 block
    done;
    out

  let cbc_decrypt key ~iv data =
    check_blocked data;
    check_iv iv;
    let out = Bytes.create (Bytes.length data) in
    let prev = Bytes.copy iv in
    let nblocks = Bytes.length data / block in
    for i = 0 to nblocks - 1 do
      let off = i * block in
      decrypt_block key data ~src_off:off out ~dst_off:off;
      xor_into out off prev 0 block;
      Bytes.blit data off prev 0 block
    done;
    out

  let ctr_transform key ~nonce data =
    check_iv nonce;
    let n = Bytes.length data in
    let out = Bytes.copy data in
    let counter = Bytes.copy nonce in
    let keystream = Bytes.create block in
    let incr_counter () =
      (* Big-endian increment over the whole 16-byte counter block. *)
      let rec bump i =
        if i >= 0 then begin
          let v = (Char.code (Bytes.get counter i) + 1) land 0xff in
          Bytes.set counter i (Char.chr v);
          if v = 0 then bump (i - 1)
        end
      in
      bump (block - 1)
    in
    let off = ref 0 in
    while !off < n do
      encrypt_block key counter ~src_off:0 keystream ~dst_off:0;
      let chunk = min block (n - !off) in
      xor_into out !off keystream 0 chunk;
      incr_counter ();
      off := !off + chunk
    done;
    out

  let pkcs7_pad data =
    let n = Bytes.length data in
    let pad = block - (n mod block) in
    let out = Bytes.create (n + pad) in
    Bytes.blit data 0 out 0 n;
    Bytes.fill out n pad (Char.chr pad);
    out

  let pkcs7_unpad data =
    let n = Bytes.length data in
    if n = 0 || n mod block <> 0 then raise Bad_padding;
    let pad = Char.code (Bytes.get data (n - 1)) in
    if pad = 0 || pad > block then raise Bad_padding;
    for i = n - pad to n - 1 do
      if Char.code (Bytes.get data i) <> pad then raise Bad_padding
    done;
    Bytes.sub data 0 (n - pad)
end
