let xtime a =
  let shifted = a lsl 1 in
  if a land 0x80 <> 0 then (shifted lxor 0x1b) land 0xff else shifted land 0xff

let mul a b =
  (* Russian-peasant multiplication over GF(2^8). *)
  let rec loop a b acc =
    if b = 0 then acc
    else begin
      let acc = if b land 1 <> 0 then acc lxor a else acc in
      loop (xtime a) (b lsr 1) acc
    end
  in
  loop (a land 0xff) (b land 0xff) 0

(* The multiplicative group of GF(2^8) has order 255, so a^254 = a^-1. *)
let inv a =
  if a = 0 then 0
  else begin
    let rec pow base e acc =
      if e = 0 then acc
      else begin
        let acc = if e land 1 = 1 then mul acc base else acc in
        pow (mul base base) (e lsr 1) acc
      end
    in
    pow a 254 1
  end
