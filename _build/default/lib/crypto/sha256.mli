(** SHA-256 (FIPS 180-4), implemented from scratch.

    Used for credential fingerprints, module image integrity checks and as
    the compression function under {!Hmac}. *)

type ctx

val init : unit -> ctx
val update : ctx -> bytes -> unit
val update_string : ctx -> string -> unit
val finalize : ctx -> bytes
(** 32-byte digest.  The context must not be reused afterwards. *)

val digest : bytes -> bytes
val digest_string : string -> bytes
val hex_digest_string : string -> string
