(** HMAC-SHA256 (RFC 2104).

    SecModule credentials and signed KeyNote assertions are authenticated
    with HMAC tags: in the simulated single-host deployment, the kernel
    plays the trusted party holding the MAC keys (paper §4.4: "the
    operating system which hosts m has to be a trusted party"). *)

val mac : key:string -> string -> bytes
(** 32-byte tag. *)

val mac_hex : key:string -> string -> string

val verify : key:string -> tag:bytes -> string -> bool
(** Constant-shape comparison (always scans the full tag). *)
