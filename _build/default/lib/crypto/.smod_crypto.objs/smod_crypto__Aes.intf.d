lib/crypto/aes.mli:
