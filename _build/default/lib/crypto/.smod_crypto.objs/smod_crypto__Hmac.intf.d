lib/crypto/hmac.mli:
