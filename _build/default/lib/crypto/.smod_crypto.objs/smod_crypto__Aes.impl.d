lib/crypto/aes.ml: Array Bytes Char Gf256 String
