lib/crypto/hmac.ml: Bytes Char Sha256 Smod_util String
