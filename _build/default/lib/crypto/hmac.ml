let block_size = 64

let normalize_key key =
  let k = if String.length key > block_size then Bytes.to_string (Sha256.digest_string key) else key in
  let padded = Bytes.make block_size '\000' in
  Bytes.blit_string k 0 padded 0 (String.length k);
  padded

let xor_pad key byte =
  let out = Bytes.create block_size in
  for i = 0 to block_size - 1 do
    Bytes.set out i (Char.chr (Char.code (Bytes.get key i) lxor byte))
  done;
  out

let mac ~key msg =
  let k = normalize_key key in
  let ipad = xor_pad k 0x36 and opad = xor_pad k 0x5c in
  let inner = Sha256.init () in
  Sha256.update inner ipad;
  Sha256.update_string inner msg;
  let inner_digest = Sha256.finalize inner in
  let outer = Sha256.init () in
  Sha256.update outer opad;
  Sha256.update outer inner_digest;
  Sha256.finalize outer

let mac_hex ~key msg = Smod_util.Hexdump.to_hex (mac ~key msg)

let verify ~key ~tag msg =
  let expected = mac ~key msg in
  if Bytes.length tag <> Bytes.length expected then false
  else begin
    let diff = ref 0 in
    for i = 0 to Bytes.length tag - 1 do
      diff := !diff lor (Char.code (Bytes.get tag i) lxor Char.code (Bytes.get expected i))
    done;
    !diff = 0
  end
