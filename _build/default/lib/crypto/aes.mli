(** AES (FIPS-197) implemented from scratch.

    The S-box is derived at module initialisation from the GF(2^8) inverse
    plus the affine transform rather than pasted in as a table; test vectors
    from FIPS-197 Appendix B/C verify the construction.

    SecModule uses this cipher to protect module text segments: every text
    byte outside a relocation site is encrypted with a key that lives only
    in (simulated) kernel space (paper §4.1, §4.4). *)

type key
(** Expanded key schedule. *)

exception Bad_key_length of int

val expand : string -> key
(** [expand raw] accepts a 16-, 24- or 32-byte raw key. *)

val key_bits : key -> int
(** 128, 192 or 256. *)

val rounds : key -> int
(** 10, 12 or 14. *)

val encrypt_block : key -> bytes -> src_off:int -> bytes -> dst_off:int -> unit
(** Encrypt one 16-byte block from [src] at [src_off] into [dst] at
    [dst_off].  [src] and [dst] may alias. *)

val decrypt_block : key -> bytes -> src_off:int -> bytes -> dst_off:int -> unit

val sbox : int -> int
(** The forward S-box, exposed for tests. *)

val inv_sbox : int -> int

(** Block-cipher modes of operation.  CBC and CTR take a 16-byte IV/nonce. *)
module Mode : sig
  exception Bad_input_length of int
  exception Bad_padding

  val ecb_encrypt : key -> bytes -> bytes
  (** Input length must be a multiple of 16. *)

  val ecb_decrypt : key -> bytes -> bytes

  val cbc_encrypt : key -> iv:bytes -> bytes -> bytes
  val cbc_decrypt : key -> iv:bytes -> bytes -> bytes

  val ctr_transform : key -> nonce:bytes -> bytes -> bytes
  (** CTR mode keystream XOR; works for any input length and is its own
      inverse.  This is the mode SecModule uses for text segments because it
      preserves length and allows leaving relocation holes in place. *)

  val pkcs7_pad : bytes -> bytes
  (** Pad to a 16-byte multiple (always appends at least one byte). *)

  val pkcs7_unpad : bytes -> bytes
  (** Raises [Bad_padding] if the trailer is malformed. *)
end
