(** Arithmetic in GF(2^8) with the AES reduction polynomial
    x^8 + x^4 + x^3 + x + 1 (0x11b).  Exposed for tests and for the S-box
    construction in {!Aes}. *)

val xtime : int -> int
(** Multiplication by x (i.e. by 2). *)

val mul : int -> int -> int
(** Full carry-less multiply-and-reduce.  Arguments and result in
    [\[0, 255\]]. *)

val inv : int -> int
(** Multiplicative inverse; [inv 0 = 0] by AES convention. *)
