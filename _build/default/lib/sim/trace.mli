(** Event tracing for the simulated machine.

    Used to reproduce the paper's sequence diagrams (Figure 1's
    initialization handshake, Figure 3's stack choreography) as observable,
    testable event streams. *)

type event = { timestamp_us : float; actor : string; label : string }

type t

val create : ?capacity:int -> ?enabled:bool -> unit -> t
(** Ring buffer of at most [capacity] events (default 4096). *)

val enable : t -> unit
val disable : t -> unit
val emit : t -> clock:Clock.t -> actor:string -> string -> unit
val emitf : t -> clock:Clock.t -> actor:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
val events : t -> event list
(** Oldest first. *)

val labels : t -> string list
val clear : t -> unit
val pp : Format.formatter -> t -> unit
