lib/sim/trace.ml: Clock Format List
