lib/sim/clock.mli: Cost_model
