lib/sim/clock.ml: Cost_model Smod_util
