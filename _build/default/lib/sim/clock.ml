type t = {
  mutable cycles : float;
  jitter : float;
  rng : Smod_util.Rng.t;
}

let create ?(seed = 0x5EC40D2006L) ?(jitter = 0.015) () =
  { cycles = 0.0; jitter; rng = Smod_util.Rng.create seed }

let noise t = if t.jitter = 0.0 then 1.0 else Smod_util.Rng.jitter t.rng t.jitter

let charge t op = t.cycles <- t.cycles +. (Cost_model.cycles op *. noise t)

let charge_n t op k =
  if k > 0 then t.cycles <- t.cycles +. (Cost_model.cycles op *. float_of_int k *. noise t)

let charge_cycles t c = t.cycles <- t.cycles +. c
let now_cycles t = t.cycles
let now_us t = Cost_model.us_of_cycles t.cycles
let reset t = t.cycles <- 0.0
let elapsed_us t ~since = Cost_model.us_of_cycles (t.cycles -. since)
