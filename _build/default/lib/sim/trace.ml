type event = { timestamp_us : float; actor : string; label : string }

type t = {
  capacity : int;
  mutable enabled : bool;
  mutable events : event list;  (* newest first *)
  mutable count : int;
}

let create ?(capacity = 4096) ?(enabled = true) () =
  { capacity; enabled; events = []; count = 0 }

let enable t = t.enabled <- true
let disable t = t.enabled <- false

let emit t ~clock ~actor label =
  if t.enabled then begin
    let e = { timestamp_us = Clock.now_us clock; actor; label } in
    t.events <- e :: t.events;
    t.count <- t.count + 1;
    if t.count > t.capacity then begin
      (* Drop the oldest event; the list is newest-first. *)
      t.events <- List.filteri (fun i _ -> i < t.capacity) t.events;
      t.count <- t.capacity
    end
  end

let emitf t ~clock ~actor fmt = Format.kasprintf (fun s -> emit t ~clock ~actor s) fmt
let events t = List.rev t.events
let labels t = List.map (fun e -> e.label) (events t)

let clear t =
  t.events <- [];
  t.count <- 0

let pp ppf t =
  List.iter
    (fun e -> Format.fprintf ppf "[%10.3f us] %-8s %s@\n" e.timestamp_us e.actor e.label)
    (events t)
