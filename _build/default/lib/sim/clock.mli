(** The simulated CPU clock.

    All simulated components charge their work here.  Charges carry small
    multiplicative jitter (deterministic, from the clock's own generator) so
    repeated measurements have a realistic nonzero spread, as in the
    paper's stdev column. *)

type t

val create : ?seed:int64 -> ?jitter:float -> unit -> t
(** [jitter] is the half-width of the per-charge noise factor
    (default 0.015, i.e. each charge is scaled by a uniform draw from
    [\[0.985, 1.015\]]).  Pass [0.0] for exact, noise-free accounting. *)

val charge : t -> Cost_model.op -> unit
val charge_n : t -> Cost_model.op -> int -> unit
(** [charge_n t op k] charges [k] occurrences (one jitter draw for the
    batch, to keep million-iteration loops cheap). *)

val charge_cycles : t -> float -> unit
(** Raw cycle charge, no jitter.  For cost already aggregated elsewhere. *)

val now_cycles : t -> float
val now_us : t -> float
val reset : t -> unit
(** Zero the elapsed time (the RNG state is preserved). *)

val elapsed_us : t -> since:float -> float
(** [elapsed_us t ~since] where [since] is a previous [now_cycles]. *)
