let program = 0x20060455
let version = 1
let proc_null = 0
let proc_incr = 1

let service () =
  let svc = Server.service ~prog:program ~vers:version in
  Server.register_proc svc ~proc:proc_null (fun _dec _enc -> ());
  Server.register_proc svc ~proc:proc_incr (fun dec enc ->
      let v = Xdr.Decoder.int dec in
      Xdr.Encoder.int enc (v + 1));
  svc

let incr client v =
  Client.call client ~prog:program ~vers:version ~proc:proc_incr
    ~encode_args:(fun enc -> Xdr.Encoder.int enc v)
    ~decode_result:Xdr.Decoder.int ()

let null client =
  Client.call client ~prog:program ~vers:version ~proc:proc_null
    ~encode_args:(fun _ -> ())
    ~decode_result:(fun _ -> ())
    ()
