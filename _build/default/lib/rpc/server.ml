module Machine = Smod_kern.Machine
module Clock = Smod_sim.Clock
module Cost = Smod_sim.Cost_model

type handler = Xdr.Decoder.t -> Xdr.Encoder.t -> unit

type service = { prog : int; vers : int; procs : (int, handler) Hashtbl.t }

let service ~prog ~vers = { prog; vers; procs = Hashtbl.create 8 }
let register_proc svc ~proc handler = Hashtbl.replace svc.procs proc handler

let dispatch ~clock svc (call : Rpc_msg.call) =
  Clock.charge clock Cost.Rpc_dispatch;
  if call.prog <> svc.prog then Rpc_msg.Prog_unavail
  else if call.vers <> svc.vers then Rpc_msg.Prog_mismatch { low = svc.vers; high = svc.vers }
  else begin
    match Hashtbl.find_opt svc.procs call.proc with
    | None -> Rpc_msg.Proc_unavail
    | Some handler -> (
        let dec = Xdr.Decoder.of_bytes ~clock call.args in
        let enc = Xdr.Encoder.create ~clock () in
        match handler dec enc with
        | () -> Rpc_msg.Success (Xdr.Encoder.to_bytes enc)
        | exception Xdr.Decode_error _ -> Rpc_msg.Garbage_args)
  end

let handle_one transport p ~port svc =
  let clock = Machine.clock (Transport.machine transport) in
  let src_port, payload = Transport.recvfrom transport p ~port in
  let reply =
    match Rpc_msg.decode_call ~clock payload with
    | call -> { Rpc_msg.rxid = call.xid; stat = dispatch ~clock svc call }
    | exception Rpc_msg.Bad_message _ -> { Rpc_msg.rxid = 0; stat = Rpc_msg.Garbage_args }
  in
  Transport.sendto transport p ~dst_port:src_port ~src_port:port
    (Rpc_msg.encode_reply ~clock reply)

let serve_forever transport portmap p ~port svc =
  Transport.bind transport p ~port;
  Portmap.set portmap ~prog:svc.prog ~vers:svc.vers ~port;
  let rec loop () =
    handle_one transport p ~port svc;
    loop ()
  in
  loop ()
