(** ONC RPC message format (RFC 1831 subset): CALL and REPLY headers with
    AUTH_NONE/AUTH_SYS credentials, encoded over {!Xdr}. *)

type auth = Auth_none | Auth_sys of { uid : int; gid : int; machine : string }

type call = {
  xid : int;
  prog : int;
  vers : int;
  proc : int;
  cred : auth;
  args : bytes;  (** procedure-specific, already XDR-encoded *)
}

type accept_stat =
  | Success of bytes  (** procedure results, XDR-encoded *)
  | Prog_unavail
  | Prog_mismatch of { low : int; high : int }
  | Proc_unavail
  | Garbage_args

type reply = { rxid : int; stat : accept_stat }

exception Bad_message of string

val encode_call : ?clock:Smod_sim.Clock.t -> call -> bytes
val decode_call : ?clock:Smod_sim.Clock.t -> bytes -> call
val encode_reply : ?clock:Smod_sim.Clock.t -> reply -> bytes
val decode_reply : ?clock:Smod_sim.Clock.t -> bytes -> reply
