(** XDR — External Data Representation (RFC 1832 subset).

    The marshaling layer of the paper's RPC baseline.  All quantities are
    big-endian and padded to 4-byte units.  When built with a clock, every
    operation charges the cost model, so marshaling shows up in the
    simulated microseconds exactly where the paper's RPC numbers pay for
    it. *)

exception Decode_error of string

module Encoder : sig
  type t

  val create : ?clock:Smod_sim.Clock.t -> unit -> t
  val int : t -> int -> unit
  (** 32-bit signed. *)

  val uint : t -> int -> unit
  val hyper : t -> int64 -> unit
  val bool : t -> bool -> unit
  val opaque : t -> bytes -> unit
  (** Variable-length opaque: length word + payload + padding. *)

  val string : t -> string -> unit
  val array : t -> ('a -> unit) -> 'a list -> unit
  (** Counted array: length word then each element via the callback. *)

  val to_bytes : t -> bytes
end

module Decoder : sig
  type t

  val of_bytes : ?clock:Smod_sim.Clock.t -> bytes -> t
  val int : t -> int
  val uint : t -> int
  val hyper : t -> int64
  val bool : t -> bool
  val opaque : t -> bytes
  val string : t -> string
  val array : t -> (t -> 'a) -> 'a list
  val remaining : t -> int
end
