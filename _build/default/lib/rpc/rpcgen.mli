(** An rpcgen analogue.

    The paper notes (§3) that the SecModule argument-marshaling problem
    "develops the same flavor as that of the XDR Protocol used in RPC, and
    we were considering the generation of tools akin to rpcgen".  This is
    that tool for the RPC baseline: parse a small IDL, then derive both
    the server dispatch (argument decoding, result encoding) and typed
    client calls from the same specification.

    IDL example:
    {v
      program CALC 0x20061234 version 2 {
        void ping(void) = 0;
        int add(int, int) = 1;
        string greet(string) = 2;
        bool check(opaque, uint) = 3;
      }
    v} *)

type ty = T_void | T_int | T_uint | T_bool | T_string | T_opaque

type proc_spec = { proc_name : string; proc_num : int; args : ty list; ret : ty }

type spec = { spec_name : string; prog : int; vers : int; procs : proc_spec list }

exception Syntax_error of { line : int; message : string }

val parse : string -> spec
(** Raises {!Syntax_error}; also rejects duplicate procedure names or
    numbers. *)

val find_proc : spec -> string -> proc_spec option

(** Dynamically typed argument/result values. *)
type value =
  | V_void
  | V_int of int
  | V_uint of int
  | V_bool of bool
  | V_string of string
  | V_opaque of bytes

exception Type_error of string

val type_of_value : value -> ty

val service : spec -> impl:(string -> value list -> value) -> Server.service
(** Build a server: for each procedure, decode the arguments per the
    spec, apply [impl proc_name args], type-check the result against the
    declared return type and encode it.  A {!Type_error} from the
    implementation (or a result of the wrong type) yields GARBAGE_ARGS to
    the caller rather than killing the server. *)

val call : spec -> Client.t -> proc:string -> value list -> value
(** Typed client call.  Raises {!Type_error} locally if the arguments do
    not match the spec, [Not_found] for an unknown procedure, and
    {!Client.Rpc_failure} for server-side failures. *)

val header_source : spec -> string
(** Generated C-style header, as rpcgen would emit (illustrative). *)
