(** RPC server: per-program procedure dispatch over the loopback
    transport. *)

type handler = Xdr.Decoder.t -> Xdr.Encoder.t -> unit
(** Decode arguments from the first, encode results into the second.
    Raising {!Xdr.Decode_error} yields a GARBAGE_ARGS reply. *)

type service

val service : prog:int -> vers:int -> service
val register_proc : service -> proc:int -> handler -> unit

val serve_forever : Transport.t -> Portmap.t -> Smod_kern.Proc.t -> port:int -> service -> 'a
(** Bind the port, publish in the portmapper, then loop: receive a call,
    dispatch, reply.  Run inside a daemon process. *)

val handle_one : Transport.t -> Smod_kern.Proc.t -> port:int -> service -> unit
(** Process exactly one request (blocks for it). *)
