module Machine = Smod_kern.Machine

exception Rpc_failure of string

type t = {
  transport : Transport.t;
  portmap : Portmap.t;
  proc : Smod_kern.Proc.t;
  client_port : int;
  mutable next_xid : int;
}

let create transport portmap proc ~client_port =
  Transport.bind transport proc ~port:client_port;
  { transport; portmap; proc; client_port; next_xid = 1 }

let call t ~prog ~vers ~proc ?(cred = Rpc_msg.Auth_none) ~encode_args ~decode_result () =
  let clock = Machine.clock (Transport.machine t.transport) in
  let server_port =
    match Portmap.lookup t.portmap ~clock ~prog ~vers with
    | Some port -> port
    | None -> raise (Rpc_failure (Printf.sprintf "program %d.%d not registered" prog vers))
  in
  let xid = t.next_xid in
  t.next_xid <- t.next_xid + 1;
  let args_enc = Xdr.Encoder.create ~clock () in
  encode_args args_enc;
  let call_msg =
    { Rpc_msg.xid; prog; vers; proc; cred; args = Xdr.Encoder.to_bytes args_enc }
  in
  Transport.sendto t.transport t.proc ~dst_port:server_port ~src_port:t.client_port
    (Rpc_msg.encode_call ~clock call_msg);
  let _, payload = Transport.recvfrom t.transport t.proc ~port:t.client_port in
  let reply =
    try Rpc_msg.decode_reply ~clock payload
    with Rpc_msg.Bad_message m -> raise (Rpc_failure ("bad reply: " ^ m))
  in
  if reply.rxid <> xid then
    raise (Rpc_failure (Printf.sprintf "xid mismatch: sent %d got %d" xid reply.rxid));
  match reply.stat with
  | Rpc_msg.Success results -> decode_result (Xdr.Decoder.of_bytes ~clock results)
  | Rpc_msg.Prog_unavail -> raise (Rpc_failure "PROG_UNAVAIL")
  | Rpc_msg.Prog_mismatch _ -> raise (Rpc_failure "PROG_MISMATCH")
  | Rpc_msg.Proc_unavail -> raise (Rpc_failure "PROC_UNAVAIL")
  | Rpc_msg.Garbage_args -> raise (Rpc_failure "GARBAGE_ARGS")
