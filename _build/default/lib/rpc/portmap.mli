(** Port mapper (RFC 1833 flavour): (program, version) → port. *)

type t

val create : unit -> t
val set : t -> prog:int -> vers:int -> port:int -> unit
val unset : t -> prog:int -> vers:int -> unit
val lookup : t -> clock:Smod_sim.Clock.t -> prog:int -> vers:int -> int option
(** Charges a registry-lookup cost. *)

val entries : t -> (int * int * int) list
(** (prog, vers, port), unordered. *)
