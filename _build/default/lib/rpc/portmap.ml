type t = { table : (int * int, int) Hashtbl.t }

let create () = { table = Hashtbl.create 16 }
let set t ~prog ~vers ~port = Hashtbl.replace t.table (prog, vers) port
let unset t ~prog ~vers = Hashtbl.remove t.table (prog, vers)

let lookup t ~clock ~prog ~vers =
  Smod_sim.Clock.charge clock Smod_sim.Cost_model.Registry_lookup;
  Hashtbl.find_opt t.table (prog, vers)

let entries t = Hashtbl.fold (fun (prog, vers) port acc -> (prog, vers, port) :: acc) t.table []
