(** RPC client stubs. *)

exception Rpc_failure of string
(** Raised on PROG_UNAVAIL / PROC_UNAVAIL / GARBAGE_ARGS / xid mismatch. *)

type t

val create :
  Transport.t -> Portmap.t -> Smod_kern.Proc.t -> client_port:int -> t
(** Binds [client_port] for replies. *)

val call :
  t ->
  prog:int ->
  vers:int ->
  proc:int ->
  ?cred:Rpc_msg.auth ->
  encode_args:(Xdr.Encoder.t -> unit) ->
  decode_result:(Xdr.Decoder.t -> 'a) ->
  unit ->
  'a
(** Look up the server port, send the CALL, block for the matching REPLY
    and decode the results. *)
