lib/rpc/testincr.ml: Client Server Xdr
