lib/rpc/transport.ml: Bytes Effect Hashtbl List Printf Smod_kern Smod_sim
