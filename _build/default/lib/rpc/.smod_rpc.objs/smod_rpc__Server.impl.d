lib/rpc/server.ml: Hashtbl Portmap Rpc_msg Smod_kern Smod_sim Transport Xdr
