lib/rpc/client.ml: Portmap Printf Rpc_msg Smod_kern Transport Xdr
