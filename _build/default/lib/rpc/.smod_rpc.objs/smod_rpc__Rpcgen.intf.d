lib/rpc/rpcgen.mli: Client Server
