lib/rpc/server.mli: Portmap Smod_kern Transport Xdr
