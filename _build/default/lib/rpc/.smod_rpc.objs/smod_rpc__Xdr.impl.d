lib/rpc/xdr.ml: Buffer Bytes Char Int64 List Printf Smod_sim
