lib/rpc/rpcgen.ml: Buffer Client Format List Printf Server String Xdr
