lib/rpc/rpc_msg.ml: Bytes Printf Xdr
