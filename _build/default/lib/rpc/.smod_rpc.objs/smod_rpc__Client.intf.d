lib/rpc/client.mli: Portmap Rpc_msg Smod_kern Transport Xdr
