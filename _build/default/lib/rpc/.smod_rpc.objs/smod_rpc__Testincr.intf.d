lib/rpc/testincr.mli: Client Server
