lib/rpc/portmap.mli: Smod_sim
