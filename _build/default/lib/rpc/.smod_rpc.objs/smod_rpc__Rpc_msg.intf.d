lib/rpc/rpc_msg.mli: Smod_sim
