lib/rpc/transport.mli: Smod_kern
