lib/rpc/xdr.mli: Smod_sim
