lib/rpc/portmap.ml: Hashtbl Smod_sim
