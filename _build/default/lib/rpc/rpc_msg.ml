type auth = Auth_none | Auth_sys of { uid : int; gid : int; machine : string }

type call = { xid : int; prog : int; vers : int; proc : int; cred : auth; args : bytes }

type accept_stat =
  | Success of bytes
  | Prog_unavail
  | Prog_mismatch of { low : int; high : int }
  | Proc_unavail
  | Garbage_args

type reply = { rxid : int; stat : accept_stat }

exception Bad_message of string

let msg_call = 0
let msg_reply = 1
let rpc_version = 2
let reply_accepted = 0

let encode_auth enc = function
  | Auth_none ->
      Xdr.Encoder.uint enc 0;
      Xdr.Encoder.opaque enc Bytes.empty
  | Auth_sys { uid; gid; machine } ->
      Xdr.Encoder.uint enc 1;
      let body = Xdr.Encoder.create () in
      Xdr.Encoder.uint body 0 (* stamp *);
      Xdr.Encoder.string body machine;
      Xdr.Encoder.uint body uid;
      Xdr.Encoder.uint body gid;
      Xdr.Encoder.array body (Xdr.Encoder.uint body) [] (* gids *);
      Xdr.Encoder.opaque enc (Xdr.Encoder.to_bytes body)

let decode_auth dec =
  let flavor = Xdr.Decoder.uint dec in
  let body = Xdr.Decoder.opaque dec in
  match flavor with
  | 0 -> Auth_none
  | 1 ->
      let b = Xdr.Decoder.of_bytes body in
      let _stamp = Xdr.Decoder.uint b in
      let machine = Xdr.Decoder.string b in
      let uid = Xdr.Decoder.uint b in
      let gid = Xdr.Decoder.uint b in
      let _gids = Xdr.Decoder.array b Xdr.Decoder.uint in
      Auth_sys { uid; gid; machine }
  | f -> raise (Bad_message (Printf.sprintf "unsupported auth flavor %d" f))

let encode_call ?clock c =
  let enc = Xdr.Encoder.create ?clock () in
  Xdr.Encoder.uint enc c.xid;
  Xdr.Encoder.uint enc msg_call;
  Xdr.Encoder.uint enc rpc_version;
  Xdr.Encoder.uint enc c.prog;
  Xdr.Encoder.uint enc c.vers;
  Xdr.Encoder.uint enc c.proc;
  encode_auth enc c.cred;
  encode_auth enc Auth_none (* verifier *);
  Xdr.Encoder.opaque enc c.args;
  Xdr.Encoder.to_bytes enc

let decode_call ?clock data =
  try
    let dec = Xdr.Decoder.of_bytes ?clock data in
    let xid = Xdr.Decoder.uint dec in
    let mtype = Xdr.Decoder.uint dec in
    if mtype <> msg_call then raise (Bad_message "not a CALL");
    let rv = Xdr.Decoder.uint dec in
    if rv <> rpc_version then raise (Bad_message "bad RPC version");
    let prog = Xdr.Decoder.uint dec in
    let vers = Xdr.Decoder.uint dec in
    let proc = Xdr.Decoder.uint dec in
    let cred = decode_auth dec in
    let _verf = decode_auth dec in
    let args = Xdr.Decoder.opaque dec in
    { xid; prog; vers; proc; cred; args }
  with Xdr.Decode_error m -> raise (Bad_message m)

let encode_reply ?clock r =
  let enc = Xdr.Encoder.create ?clock () in
  Xdr.Encoder.uint enc r.rxid;
  Xdr.Encoder.uint enc msg_reply;
  Xdr.Encoder.uint enc reply_accepted;
  encode_auth enc Auth_none (* verifier *);
  (match r.stat with
  | Success results ->
      Xdr.Encoder.uint enc 0;
      Xdr.Encoder.opaque enc results
  | Prog_unavail -> Xdr.Encoder.uint enc 1
  | Prog_mismatch { low; high } ->
      Xdr.Encoder.uint enc 2;
      Xdr.Encoder.uint enc low;
      Xdr.Encoder.uint enc high
  | Proc_unavail -> Xdr.Encoder.uint enc 3
  | Garbage_args -> Xdr.Encoder.uint enc 4);
  Xdr.Encoder.to_bytes enc

let decode_reply ?clock data =
  try
    let dec = Xdr.Decoder.of_bytes ?clock data in
    let rxid = Xdr.Decoder.uint dec in
    let mtype = Xdr.Decoder.uint dec in
    if mtype <> msg_reply then raise (Bad_message "not a REPLY");
    let rstat = Xdr.Decoder.uint dec in
    if rstat <> reply_accepted then raise (Bad_message "reply denied");
    let _verf = decode_auth dec in
    let stat =
      match Xdr.Decoder.uint dec with
      | 0 -> Success (Xdr.Decoder.opaque dec)
      | 1 -> Prog_unavail
      | 2 ->
          let low = Xdr.Decoder.uint dec in
          let high = Xdr.Decoder.uint dec in
          Prog_mismatch { low; high }
      | 3 -> Proc_unavail
      | 4 -> Garbage_args
      | s -> raise (Bad_message (Printf.sprintf "bad accept_stat %d" s))
    in
    { rxid; stat }
  with Xdr.Decode_error m -> raise (Bad_message m)
