(** The paper's RPC benchmark service: [test-incr] returns its integer
    argument incremented by one (§4.5: "The function tested for both RPC
    and SecModule returns the argument value incremented by one"). *)

val program : int
val version : int
val proc_null : int
val proc_incr : int

val service : unit -> Server.service
val incr : Client.t -> int -> int
val null : Client.t -> unit
