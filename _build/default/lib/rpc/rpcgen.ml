type ty = T_void | T_int | T_uint | T_bool | T_string | T_opaque

type proc_spec = { proc_name : string; proc_num : int; args : ty list; ret : ty }

type spec = { spec_name : string; prog : int; vers : int; procs : proc_spec list }

exception Syntax_error of { line : int; message : string }

let fail line fmt = Format.kasprintf (fun message -> raise (Syntax_error { line; message })) fmt

(* ------------------------------------------------------------------ *)
(* IDL parsing                                                         *)
(* ------------------------------------------------------------------ *)

type token = { line : int; text : string }

let tokenize source =
  let toks = ref [] in
  List.iteri
    (fun lineno raw ->
      let line = lineno + 1 in
      (* strip comments *)
      let text =
        match String.index_opt raw '#' with Some i -> String.sub raw 0 i | None -> raw
      in
      let buf = Buffer.create 8 in
      let flush () =
        if Buffer.length buf > 0 then begin
          toks := { line; text = Buffer.contents buf } :: !toks;
          Buffer.clear buf
        end
      in
      String.iter
        (fun c ->
          match c with
          | ' ' | '\t' | '\r' -> flush ()
          | '{' | '}' | '(' | ')' | ',' | ';' | '=' ->
              flush ();
              toks := { line; text = String.make 1 c } :: !toks
          | c -> Buffer.add_char buf c)
        text;
      flush ())
    (String.split_on_char '\n' source);
  List.rev !toks

let ty_of_string line = function
  | "void" -> T_void
  | "int" -> T_int
  | "uint" -> T_uint
  | "bool" -> T_bool
  | "string" -> T_string
  | "opaque" -> T_opaque
  | other -> fail line "unknown type %S" other

let ty_to_string = function
  | T_void -> "void"
  | T_int -> "int"
  | T_uint -> "uint"
  | T_bool -> "bool"
  | T_string -> "string"
  | T_opaque -> "opaque"

let int_of_token t =
  match int_of_string_opt t.text with
  | Some v -> v
  | None -> fail t.line "expected a number, found %S" t.text

let parse source =
  let toks = ref (tokenize source) in
  let peek () = match !toks with t :: _ -> Some t | [] -> None in
  let next what =
    match !toks with
    | t :: rest ->
        toks := rest;
        t
    | [] -> fail 0 "unexpected end of input (expected %s)" what
  in
  let expect text =
    let t = next (Printf.sprintf "%S" text) in
    if t.text <> text then fail t.line "expected %S, found %S" text t.text
  in
  expect "program";
  let name_tok = next "program name" in
  let prog = int_of_token (next "program number") in
  expect "version";
  let vers = int_of_token (next "version number") in
  expect "{";
  let procs = ref [] in
  let rec parse_procs () =
    match peek () with
    | Some { text = "}"; _ } -> expect "}"
    | Some _ ->
        let ret_tok = next "return type" in
        let ret = ty_of_string ret_tok.line ret_tok.text in
        let pname = next "procedure name" in
        expect "(";
        let rec parse_args acc =
          let t = next "argument type" in
          match t.text with
          | ")" -> List.rev acc
          | "," -> parse_args acc
          | word -> parse_args (ty_of_string t.line word :: acc)
        in
        let args = parse_args [] in
        let args = match args with [ T_void ] -> [] | args -> args in
        List.iter
          (fun a -> if a = T_void then fail pname.line "void is not a valid argument type")
          args;
        expect "=";
        let num = int_of_token (next "procedure number") in
        expect ";";
        if List.exists (fun p -> p.proc_name = pname.text) !procs then
          fail pname.line "duplicate procedure name %S" pname.text;
        if List.exists (fun p -> p.proc_num = num) !procs then
          fail pname.line "duplicate procedure number %d" num;
        procs := { proc_name = pname.text; proc_num = num; args; ret } :: !procs;
        parse_procs ()
    | None -> fail 0 "unexpected end of input (expected '}')"
  in
  parse_procs ();
  (match peek () with
  | Some t -> fail t.line "trailing input %S" t.text
  | None -> ());
  { spec_name = name_tok.text; prog; vers; procs = List.rev !procs }

let find_proc spec name = List.find_opt (fun p -> p.proc_name = name) spec.procs

(* ------------------------------------------------------------------ *)
(* Values                                                              *)
(* ------------------------------------------------------------------ *)

type value =
  | V_void
  | V_int of int
  | V_uint of int
  | V_bool of bool
  | V_string of string
  | V_opaque of bytes

exception Type_error of string

let type_of_value = function
  | V_void -> T_void
  | V_int _ -> T_int
  | V_uint _ -> T_uint
  | V_bool _ -> T_bool
  | V_string _ -> T_string
  | V_opaque _ -> T_opaque

let encode_value enc v =
  match v with
  | V_void -> ()
  | V_int i -> Xdr.Encoder.int enc i
  | V_uint i -> Xdr.Encoder.uint enc i
  | V_bool b -> Xdr.Encoder.bool enc b
  | V_string s -> Xdr.Encoder.string enc s
  | V_opaque b -> Xdr.Encoder.opaque enc b

let decode_value dec = function
  | T_void -> V_void
  | T_int -> V_int (Xdr.Decoder.int dec)
  | T_uint -> V_uint (Xdr.Decoder.uint dec)
  | T_bool -> V_bool (Xdr.Decoder.bool dec)
  | T_string -> V_string (Xdr.Decoder.string dec)
  | T_opaque -> V_opaque (Xdr.Decoder.opaque dec)

let check_types ~what declared values =
  if List.length declared <> List.length values then
    raise
      (Type_error
         (Printf.sprintf "%s: expected %d values, got %d" what (List.length declared)
            (List.length values)));
  List.iter2
    (fun ty v ->
      if type_of_value v <> ty then
        raise
          (Type_error
             (Printf.sprintf "%s: expected %s, got %s" what (ty_to_string ty)
                (ty_to_string (type_of_value v)))))
    declared values

(* ------------------------------------------------------------------ *)
(* Derived server and client                                           *)
(* ------------------------------------------------------------------ *)

let service spec ~impl =
  let svc = Server.service ~prog:spec.prog ~vers:spec.vers in
  List.iter
    (fun p ->
      Server.register_proc svc ~proc:p.proc_num (fun dec enc ->
          let args = List.map (decode_value dec) p.args in
          try
            let result = impl p.proc_name args in
            check_types ~what:(p.proc_name ^ " result") [ p.ret ] [ result ];
            encode_value enc result
          with Type_error _ ->
            (* Surface as GARBAGE_ARGS via the decode-error path. *)
            raise (Xdr.Decode_error "implementation type error")))
    spec.procs;
  svc

let call spec client ~proc args =
  match find_proc spec proc with
  | None -> raise Not_found
  | Some p ->
      check_types ~what:(proc ^ " arguments") p.args args;
      Client.call client ~prog:spec.prog ~vers:spec.vers ~proc:p.proc_num
        ~encode_args:(fun enc -> List.iter (encode_value enc) args)
        ~decode_result:(fun dec -> decode_value dec p.ret)
        ()

let header_source spec =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "/* generated by smod-rpcgen: do not edit */\n#define %s_PROG 0x%x\n#define %s_VERS %d\n\n"
       spec.spec_name spec.prog spec.spec_name spec.vers);
  List.iter
    (fun p ->
      let c_ty = function
        | T_void -> "void"
        | T_int -> "int32_t"
        | T_uint -> "uint32_t"
        | T_bool -> "bool_t"
        | T_string -> "char *"
        | T_opaque -> "struct opaque"
      in
      Buffer.add_string buf
        (Printf.sprintf "#define %s_%s %d\nextern %s %s_%d(%s);\n\n"
           spec.spec_name
           (String.uppercase_ascii p.proc_name)
           p.proc_num (c_ty p.ret) p.proc_name spec.vers
           (if p.args = [] then "void" else String.concat ", " (List.map c_ty p.args))))
    spec.procs;
  Buffer.contents buf
