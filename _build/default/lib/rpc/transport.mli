(** Loopback datagram transport.

    Models the path a localhost UDP datagram takes on the paper's testbed:
    socket syscall, copy into the kernel, trip down and back up the IP
    stack via the loopback driver, copy out to the receiver, plus the
    scheduler hand-off to the receiving process.  Each leg charges the cost
    model, which is what makes local RPC roughly an order of magnitude more
    expensive than a SecModule dispatch, as in Figure 8. *)

type t

val create : Smod_kern.Machine.t -> t
val machine : t -> Smod_kern.Machine.t

val bind : t -> Smod_kern.Proc.t -> port:int -> unit
(** Raises {!Smod_kern.Errno.Error} EEXIST if the port is taken. *)

val unbind : t -> port:int -> unit

val sendto : t -> Smod_kern.Proc.t -> dst_port:int -> src_port:int -> bytes -> unit
(** Fire-and-forget datagram; wakes the receiver if it is blocked in
    {!recvfrom}.  ENOENT if nothing is bound to [dst_port]. *)

val recvfrom : t -> Smod_kern.Proc.t -> port:int -> int * bytes
(** Blocks until a datagram arrives on [port]; returns (source port,
    payload).  Only the binding process may receive. *)

val pending : t -> port:int -> int
