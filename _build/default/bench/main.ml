(* Benchmark harness: regenerates every quantitative artifact of the paper.

   The primary output is SIMULATED microseconds from the calibrated cycle
   model (see lib/sim/cost_model.ml and DESIGN.md §2); a bechamel section
   cross-checks that the relative wall-clock cost of each simulated path
   moves in the same direction. *)

module Machine = Smod_kern.Machine
module Clock = Smod_sim.Clock
module Cost = Smod_sim.Cost_model
open Smod_bench_kit

let print_testbed () =
  print_endline "=== Simulated testbed (paper Figure 7) ===";
  Printf.printf "cpu: Pentium III class, %.0f MHz (%.0f cycles/us)\n" Cost.mhz
    Cost.cycles_per_us;
  Printf.printf "os:  simulated OpenBSD 3.6 kernel (SecModule syscalls 301-320)\n";
  Printf.printf "mem: 512 MB simulated, 4 KB pages\n\n"

let run_figure8 ~full =
  let config = if full then Figure8.paper_config else Figure8.quick_config in
  Printf.printf "=== Figure 8: Performance Comparisons (%s counts) ===\n"
    (if full then "paper-exact" else "scaled");
  if not full then
    print_endline
      "(per-call means are independent of trial length; use --full for the\n\
      \ paper's 1,000,000-call trials)";
  let world = World.create () in
  let rows = Figure8.run world config in
  print_endline (Figure8.render rows);
  (* Headline ratios the paper calls out in section 4.5 / section 5. *)
  match rows with
  | [ getpid; smod_getpid; smod_incr; rpc ] ->
      Printf.printf "SMOD(test-incr) / getpid()        = %5.2fx (paper: %.2fx)\n"
        (smod_incr.Trial.mean_us /. getpid.Trial.mean_us)
        (6.407 /. 0.658);
      Printf.printf
        "RPC(test-incr)  / SMOD(test-incr) = %5.2fx (paper: %.2fx, \"factor of 10\")\n"
        (rpc.Trial.mean_us /. smod_incr.Trial.mean_us)
        (63.23 /. 6.407);
      Printf.printf "SMOD(SMOD-getpid) - SMOD(test-incr) = %+.3f us (paper: %+.3f us)\n\n"
        (smod_getpid.Trial.mean_us -. smod_incr.Trial.mean_us)
        (6.532 -. 6.407)
  | _ -> ()

let run_ablation name entries = print_endline (Ablations.render ~title:name entries)

let run_ablations ~full =
  let scale n = if full then n * 5 else n in
  run_ablation "E9: per-call policy complexity (section 5 prediction)"
    (Ablations.policy_ablation ~calls:(scale 2000) ());
  run_ablation "E10: shared stack vs copy-based marshaling (section 3)"
    (Ablations.marshal_ablation ~calls:(scale 500) ());
  run_ablation "E11: session establishment, encrypted vs unmap-only (section 4.1)"
    (Ablations.protection_ablation ());
  print_endline
    (Ablations.render
       ~title:"E12: shared-handle bottleneck, queued requests at service (section 4.3)"
       ~unit_header:"mean queue depth" (Ablations.handle_sharing ()));
  run_ablation "E13: per-call cost of TOCTOU mitigations (section 4.4)"
    (Ablations.toctou_cost ~calls:(scale 1000) ());
  run_ablation "E14: the section-5 future-work fast path"
    (Ablations.fast_path ~calls:(scale 2000) ())

(* ------------------------------------------------------------------ *)
(* Wall-clock cross-check via bechamel                                 *)
(* ------------------------------------------------------------------ *)

(* Each "step world" parks a client coroutine that performs exactly one
   operation per wakeup, so a bechamel run measures the wall-clock cost of
   one simulated dispatch. *)
let make_stepper ~op =
  let world = World.create () in
  let machine = world.World.machine in
  let client_pid = ref 0 in
  World.spawn_seclibc_client world ~name:"bench-step" (fun p conn ->
      client_pid := p.Smod_kern.Proc.pid;
      (* The stepper parks between iterations; that idle block is expected,
         not a deadlock. *)
      p.Smod_kern.Proc.daemon <- true;
      let rpc = World.rpc_client world p ~client_port:42000 in
      let rec loop i =
        Effect.perform (Smod_kern.Sched.Block (Smod_kern.Sched.Custom "bench-idle"));
        (match op with
        | `Getpid -> ignore (Machine.sys_getpid machine p)
        | `Smod_getpid -> ignore (Smod_libc.Seclibc.Client.getpid conn)
        | `Smod_incr -> ignore (Smod_libc.Seclibc.Client.test_incr conn i)
        | `Rpc_incr -> ignore (Smod_rpc.Testincr.incr rpc i));
        loop (i + 1)
      in
      loop 0);
  Machine.run machine;
  fun () ->
    Machine.wakeup machine !client_pid;
    Machine.run machine

let wallclock () =
  let open Bechamel in
  let open Toolkit in
  print_endline "=== Wall-clock cross-check (bechamel, ns per simulated dispatch) ===";
  let test name op = Test.make ~name (Staged.stage (make_stepper ~op)) in
  let grouped =
    Test.make_grouped ~name:"fig8"
      [
        test "native-getpid" `Getpid;
        test "smod-getpid" `Smod_getpid;
        test "smod-test-incr" `Smod_incr;
        test "rpc-test-incr" `Rpc_incr;
      ]
  in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.3) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name est acc ->
        let ns = match Analyze.OLS.estimates est with Some (e :: _) -> e | _ -> nan in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  List.iter (fun (name, ns) -> Printf.printf "  %-24s %12.1f ns/dispatch\n" name ns) rows;
  print_endline
    "  (absolute wall-clock is the OCaml simulator's speed, not the paper's\n\
    \   hardware; only the ordering is meaningful here)\n"

let main full no_wallclock only =
  print_testbed ();
  (match only with
  | None ->
      run_figure8 ~full;
      run_ablations ~full
  | Some "figure8" -> run_figure8 ~full
  | Some "ablations" -> run_ablations ~full
  | Some "e9" -> run_ablation "E9" (Ablations.policy_ablation ())
  | Some "e10" -> run_ablation "E10" (Ablations.marshal_ablation ())
  | Some "e11" -> run_ablation "E11" (Ablations.protection_ablation ())
  | Some "e12" -> run_ablation "E12" (Ablations.handle_sharing ())
  | Some "e13" -> run_ablation "E13" (Ablations.toctou_cost ())
  | Some "e14" -> run_ablation "E14" (Ablations.fast_path ())
  | Some "wallclock" -> ()
  | Some other -> Printf.eprintf "unknown --only section %S\n" other);
  let wallclock_wanted = only = None || only = Some "wallclock" in
  if (not no_wallclock) && wallclock_wanted then wallclock ()

open Cmdliner

let full =
  Arg.(value & flag & info [ "full" ] ~doc:"Run the paper-exact call counts (slow).")

let no_wallclock =
  Arg.(value & flag & info [ "no-wallclock" ] ~doc:"Skip the bechamel wall-clock section.")

let only =
  Arg.(
    value
    & opt (some string) None
    & info [ "only" ] ~docv:"BENCH"
        ~doc:"Run only one section: figure8, ablations, e9..e14, wallclock.")

let cmd =
  let doc = "Regenerate the paper's tables and figures on the simulated testbed" in
  Cmd.v (Cmd.info "smod-bench" ~doc) Term.(const main $ full $ no_wallclock $ only)

let () = exit (Cmd.eval cmd)
