(* Benchmark harness: regenerates every quantitative artifact of the paper.

   The primary output is SIMULATED microseconds from the calibrated cycle
   model (see lib/sim/cost_model.ml and DESIGN.md §2); a bechamel section
   cross-checks that the relative wall-clock cost of each simulated path
   moves in the same direction.

   With --json PATH every experiment row (E1, E9..E15) plus a snapshot of
   the metric registry is also written as a versioned smod-bench JSON
   document — the artifact bin/benchdiff.exe gates CI on. *)

module Machine = Smod_kern.Machine
module Clock = Smod_sim.Clock
module Cost = Smod_sim.Cost_model
open Smod_bench_kit

let print_testbed () =
  print_endline "=== Simulated testbed (paper Figure 7) ===";
  Printf.printf "cpu: Pentium III class, %.0f MHz (%.0f cycles/us)\n" Cost.mhz
    Cost.cycles_per_us;
  Printf.printf "os:  simulated OpenBSD 3.6 kernel (SecModule syscalls 301-320)\n";
  Printf.printf "mem: 512 MB simulated, 4 KB pages\n\n"

(* Experiments recorded for the --json document, in run order. *)
let recorded : Bench_json.experiment list ref = ref []

let record ~id ~title rows =
  recorded := Bench_json.experiment ~id ~title rows :: !recorded

let run_figure8 ~full =
  let config = if full then Figure8.paper_config else Figure8.quick_config in
  Printf.printf "=== Figure 8: Performance Comparisons (%s counts) ===\n"
    (if full then "paper-exact" else "scaled");
  if not full then
    print_endline
      "(per-call means are independent of trial length; use --full for the\n\
      \ paper's 1,000,000-call trials)";
  let world = World.create () in
  let rows = Figure8.run world config in
  print_endline (Figure8.render rows);
  record ~id:"e1" ~title:"Figure 8: performance comparisons"
    (List.map Bench_json.row_of_trial rows);
  (* Headline ratios the paper calls out in section 4.5 / section 5. *)
  match rows with
  | [ getpid; smod_getpid; smod_incr; rpc ] ->
      Printf.printf "SMOD(test-incr) / getpid()        = %5.2fx (paper: %.2fx)\n"
        (smod_incr.Trial.mean_us /. getpid.Trial.mean_us)
        (6.407 /. 0.658);
      Printf.printf
        "RPC(test-incr)  / SMOD(test-incr) = %5.2fx (paper: %.2fx, \"factor of 10\")\n"
        (rpc.Trial.mean_us /. smod_incr.Trial.mean_us)
        (63.23 /. 6.407);
      Printf.printf "SMOD(SMOD-getpid) - SMOD(test-incr) = %+.3f us (paper: %+.3f us)\n\n"
        (smod_getpid.Trial.mean_us -. smod_incr.Trial.mean_us)
        (6.532 -. 6.407)
  | _ -> ()

type ablation_section = {
  a_id : string;
  a_title : string;
  a_unit : string;
  a_run : full:bool -> Ablations.entry list;
}

let ablation_sections =
  let scale ~full n = if full then n * 5 else n in
  [
    {
      a_id = "e9";
      a_title = "E9: per-call policy complexity (section 5 prediction)";
      a_unit = "us/call";
      a_run = (fun ~full -> Ablations.policy_ablation ~calls:(scale ~full 2000) ());
    };
    {
      a_id = "e10";
      a_title = "E10: shared stack vs copy-based marshaling (section 3)";
      a_unit = "us/call";
      a_run = (fun ~full -> Ablations.marshal_ablation ~calls:(scale ~full 500) ());
    };
    {
      a_id = "e11";
      a_title = "E11: session establishment, encrypted vs unmap-only (section 4.1)";
      a_unit = "us/session";
      a_run = (fun ~full:_ -> Ablations.protection_ablation ());
    };
    {
      a_id = "e12";
      a_title = "E12: shared-handle bottleneck, queued requests at service (section 4.3)";
      a_unit = "mean queue depth";
      a_run = (fun ~full:_ -> Ablations.handle_sharing ());
    };
    {
      a_id = "e13";
      a_title = "E13: per-call cost of TOCTOU mitigations (section 4.4)";
      a_unit = "us/call";
      a_run = (fun ~full -> Ablations.toctou_cost ~calls:(scale ~full 1000) ());
    };
    {
      a_id = "e14";
      a_title = "E14: the section-5 future-work fast path";
      a_unit = "us/call";
      a_run = (fun ~full -> Ablations.fast_path ~calls:(scale ~full 2000) ());
    };
    {
      a_id = "e15";
      a_title = "E15: per-trap overhead of syscall interposition (section 2)";
      a_unit = "us/call";
      a_run = (fun ~full -> Ablations.systrace_overhead ~calls:(scale ~full 1000) ());
    };
    {
      a_id = "e16";
      a_title = "E16: smodd session pooling, cold fork vs pooled attach (lib/pool)";
      a_unit = "us/session (throughput rows: kcalls/s)";
      a_run = (fun ~full -> Ablations.pooling ~calls:(scale ~full 150) ());
    };
    {
      a_id = "e18";
      a_title = "E18: dispatch rings vs msgq transport, per-call latency by batch size (lib/ring)";
      a_unit = "us/call";
      a_run = (fun ~full -> Ablations.ring_dispatch ~rounds:(scale ~full 200) ());
    };
    {
      a_id = "e19";
      a_title =
        "E19: compiled decision programs vs interpreted KeyNote, per-call latency by \
         assertion count (lib/keynote/compile)";
      a_unit = "us/call";
      a_run = (fun ~full -> Ablations.policy_compile_dispatch ~rounds:(scale ~full 100) ());
    };
  ]

let run_ablation_section ~full s =
  let entries = s.a_run ~full in
  print_endline (Ablations.render ~title:s.a_title ~unit_header:s.a_unit entries);
  record ~id:s.a_id ~title:s.a_title (Bench_json.rows_of_entries ~unit_:s.a_unit entries)

let run_ablations ~full = List.iter (run_ablation_section ~full) ablation_sections

(* ------------------------------------------------------------------ *)
(* Wall-clock cross-check via bechamel                                 *)
(* ------------------------------------------------------------------ *)

(* Each "step world" parks a client coroutine that performs exactly one
   operation per wakeup, so a bechamel run measures the wall-clock cost of
   one simulated dispatch. *)
let make_stepper ~op =
  let world = World.create () in
  let machine = world.World.machine in
  let client_pid = ref 0 in
  World.spawn_seclibc_client world ~name:"bench-step" (fun p conn ->
      client_pid := p.Smod_kern.Proc.pid;
      (* The stepper parks between iterations; that idle block is expected,
         not a deadlock. *)
      p.Smod_kern.Proc.daemon <- true;
      let rpc = World.rpc_client world p ~client_port:42000 in
      let rec loop i =
        Effect.perform (Smod_kern.Sched.Block (Smod_kern.Sched.Custom "bench-idle"));
        (match op with
        | `Getpid -> ignore (Machine.sys_getpid machine p)
        | `Smod_getpid -> ignore (Smod_libc.Seclibc.Client.getpid conn)
        | `Smod_incr -> ignore (Smod_libc.Seclibc.Client.test_incr conn i)
        | `Rpc_incr -> ignore (Smod_rpc.Testincr.incr rpc i));
        loop (i + 1)
      in
      loop 0);
  Machine.run machine;
  fun () ->
    Machine.wakeup machine !client_pid;
    Machine.run machine

let wallclock () =
  let open Bechamel in
  let open Toolkit in
  print_endline "=== Wall-clock cross-check (bechamel, ns per simulated dispatch) ===";
  let test name op = Test.make ~name (Staged.stage (make_stepper ~op)) in
  let grouped =
    Test.make_grouped ~name:"fig8"
      [
        test "native-getpid" `Getpid;
        test "smod-getpid" `Smod_getpid;
        test "smod-test-incr" `Smod_incr;
        test "rpc-test-incr" `Rpc_incr;
      ]
  in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.3) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name est acc ->
        let ns = match Analyze.OLS.estimates est with Some (e :: _) -> e | _ -> nan in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  List.iter (fun (name, ns) -> Printf.printf "  %-24s %12.1f ns/dispatch\n" name ns) rows;
  print_endline
    "  (absolute wall-clock is the OCaml simulator's speed, not the paper's\n\
    \   hardware; only the ordering is meaningful here)\n"

let write_json ~full path =
  let doc =
    {
      Bench_json.mode = (if full then "full" else "quick");
      experiments = List.rev !recorded;
      metrics = Smod_metrics.snapshot ();
    }
  in
  let oc = open_out path in
  output_string oc (Bench_json.to_string doc);
  close_out oc;
  Printf.printf "wrote %s (%d experiments, %d metrics)\n" path
    (List.length doc.Bench_json.experiments)
    (List.length doc.Bench_json.metrics)

let main full no_wallclock only json_path =
  print_testbed ();
  let ablation_section id =
    match List.find_opt (fun s -> s.a_id = id) ablation_sections with
    | Some s ->
        run_ablation_section ~full s;
        true
    | None -> false
  in
  (* --only accepts a comma-separated list of sections: --only e1,e16 *)
  let run_section = function
    | "figure8" | "e1" ->
        run_figure8 ~full;
        true
    | "ablations" ->
        run_ablations ~full;
        true
    | "wallclock" -> true
    | other -> ablation_section other
  in
  let sections =
    match only with
    | None -> []
    | Some s -> String.split_on_char ',' s |> List.map String.trim |> List.filter (( <> ) "")
  in
  (match only with
  | None ->
      run_figure8 ~full;
      run_ablations ~full
  | Some _ ->
      List.iter
        (fun id ->
          if not (run_section id) then begin
            Printf.eprintf "unknown --only section %S\n" id;
            exit 2
          end)
        sections);
  let wallclock_wanted = only = None || List.mem "wallclock" sections in
  if (not no_wallclock) && wallclock_wanted then wallclock ();
  Option.iter (write_json ~full) json_path

open Cmdliner

let full =
  Arg.(value & flag & info [ "full" ] ~doc:"Run the paper-exact call counts (slow).")

let no_wallclock =
  Arg.(value & flag & info [ "no-wallclock" ] ~doc:"Skip the bechamel wall-clock section.")

let only =
  Arg.(
    value
    & opt (some string) None
    & info [ "only" ] ~docv:"BENCH"
        ~doc:
          "Run only the given comma-separated sections: figure8 (alias e1), ablations, \
           e9..e19, wallclock.  Example: --only e1,e16,e18,e19.")

let json_path =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"PATH"
        ~doc:
          "Write every experiment row plus a metric-registry snapshot to $(docv) as a \
           versioned smod-bench JSON document (compare with benchdiff).")

let cmd =
  let doc = "Regenerate the paper's tables and figures on the simulated testbed" in
  Cmd.v
    (Cmd.info "smod-bench" ~doc)
    Term.(const main $ full $ no_wallclock $ only $ json_path)

let () = exit (Cmd.eval cmd)
