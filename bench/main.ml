(* Benchmark harness: regenerates every quantitative artifact of the paper.

   The experiment catalog lives in lib/bench_kit/experiments.ml; this file
   is only the CLI around it — section selection, the --jobs domain-parallel
   runner, JSON emission and the bechamel wall-clock cross-check.

   The primary output is SIMULATED microseconds from the calibrated cycle
   model (see lib/sim/cost_model.ml and DESIGN.md §2); the bechamel section
   cross-checks that the relative wall-clock cost of each simulated path
   moves in the same direction.

   With --json PATH every experiment row (E1, E9..E20) plus a snapshot of
   the metric registry is also written as a versioned smod-bench JSON
   document — the artifact bin/benchdiff.exe gates CI on.  The document is
   identical for any --jobs value: each task runs in a private world with
   coordinate-derived seeds and a fresh metric registry, and snapshots
   merge in task order. *)

module Machine = Smod_kern.Machine
module Cost = Smod_sim.Cost_model
open Smod_bench_kit

let print_testbed () =
  print_endline "=== Simulated testbed (paper Figure 7) ===";
  Printf.printf "cpu: Pentium III class, %.0f MHz (%.0f cycles/us)\n" Cost.mhz
    Cost.cycles_per_us;
  Printf.printf "os:  simulated OpenBSD 3.6 kernel (SecModule syscalls 301-320)\n";
  Printf.printf "mem: 512 MB simulated, 4 KB pages\n\n"

let all_ids = List.map (fun s -> s.Experiments.s_id) Experiments.sections

(* --only accepts catalog ids plus a few aliases. *)
let resolve_section = function
  | "figure8" -> Some [ "e1" ]
  | "ablations" ->
      Some (List.filter (fun id -> id <> "e1") all_ids)
  | "wallclock" -> Some []
  | id -> if Experiments.find id <> None then Some [ id ] else None

let list_sections ~full ~jobs =
  Printf.printf "%-5s %-6s %10s %10s  %s\n" "id" "tasks" "est-seq" "est-par" "title";
  List.iter
    (fun s ->
      let est = Experiments.estimate_seconds ~full s in
      let tasks = s.Experiments.s_tasks ~full in
      Printf.printf "%-5s %-6d %9.1fs %9.1fs  %s\n" s.Experiments.s_id tasks est
        (est /. float_of_int (min jobs tasks))
        s.Experiments.s_title)
    Experiments.sections;
  Printf.printf "\n(estimates assume ~%.0fk simulated dispatches/s per core; --jobs %d)\n"
    (450_000.0 /. 1_000.0) jobs

(* ------------------------------------------------------------------ *)
(* Wall-clock cross-check via bechamel                                 *)
(* ------------------------------------------------------------------ *)

(* Each "step world" parks a client coroutine that performs exactly one
   operation per wakeup, so a bechamel run measures the wall-clock cost of
   one simulated dispatch. *)
let make_stepper ~op =
  let world = World.create () in
  let machine = world.World.machine in
  let client_pid = ref 0 in
  World.spawn_seclibc_client world ~name:"bench-step" (fun p conn ->
      client_pid := p.Smod_kern.Proc.pid;
      (* The stepper parks between iterations; that idle block is expected,
         not a deadlock. *)
      p.Smod_kern.Proc.daemon <- true;
      let rpc = World.rpc_client world p ~client_port:42000 in
      let rec loop i =
        Effect.perform (Smod_kern.Sched.Block (Smod_kern.Sched.Custom "bench-idle"));
        (match op with
        | `Getpid -> ignore (Machine.sys_getpid machine p)
        | `Smod_getpid -> ignore (Smod_libc.Seclibc.Client.getpid conn)
        | `Smod_incr -> ignore (Smod_libc.Seclibc.Client.test_incr conn i)
        | `Rpc_incr -> ignore (Smod_rpc.Testincr.incr rpc i));
        loop (i + 1)
      in
      loop 0);
  Machine.run machine;
  fun () ->
    Machine.wakeup machine !client_pid;
    Machine.run machine

let wallclock () =
  let open Bechamel in
  let open Toolkit in
  print_endline "=== Wall-clock cross-check (bechamel, ns per simulated dispatch) ===";
  let test name op = Test.make ~name (Staged.stage (make_stepper ~op)) in
  let grouped =
    Test.make_grouped ~name:"fig8"
      [
        test "native-getpid" `Getpid;
        test "smod-getpid" `Smod_getpid;
        test "smod-test-incr" `Smod_incr;
        test "rpc-test-incr" `Rpc_incr;
      ]
  in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.3) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name est acc ->
        let ns = match Analyze.OLS.estimates est with Some (e :: _) -> e | _ -> nan in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  List.iter (fun (name, ns) -> Printf.printf "  %-24s %12.1f ns/dispatch\n" name ns) rows;
  print_endline
    "  (absolute wall-clock is the OCaml simulator's speed, not the paper's\n\
    \   hardware; only the ordering is meaningful here)\n"

let write_json path doc =
  let oc = open_out path in
  output_string oc (Bench_json.to_string doc);
  close_out oc;
  Printf.printf "wrote %s (%d experiments, %d metrics)\n" path
    (List.length doc.Bench_json.experiments)
    (List.length doc.Bench_json.metrics)

let print_section (s : Experiments.section) (o : Experiments.outcome) =
  if s.Experiments.s_id = "e1" then print_string o.Experiments.rendered
  else print_endline o.Experiments.rendered;
  print_newline ()

let main full no_wallclock only jobs list json_path =
  let jobs =
    match jobs with Some j when j >= 1 -> j | Some _ | None -> Runner.default_jobs ()
  in
  if list then begin
    list_sections ~full ~jobs;
    exit 0
  end;
  print_testbed ();
  let requested =
    match only with
    | None -> all_ids @ [ "wallclock" ]
    | Some s -> String.split_on_char ',' s |> List.map String.trim |> List.filter (( <> ) "")
  in
  let ids =
    List.concat_map
      (fun id ->
        match resolve_section id with
        | Some ids -> ids
        | None ->
            Printf.eprintf "unknown --only section %S\n" id;
            exit 2)
      requested
  in
  let wallclock_wanted = (not no_wallclock) && List.mem "wallclock" requested in
  if (not full) && List.mem "e1" ids then
    print_endline
      "(per-call means are independent of trial length; use --full for the\n\
      \ paper's 1,000,000-call trials)\n";
  let runner = Runner.create ~jobs in
  let doc =
    Experiments.run_document ~on_section:print_section ~full ~runner ids
  in
  (* The JSON artifact must be written before the bechamel section: the
     wall-clock steppers dispatch through instrumented paths and would
     perturb the metric snapshot nondeterministically. *)
  Option.iter (fun path -> write_json path doc) json_path;
  if wallclock_wanted then wallclock ()

open Cmdliner

let full =
  Arg.(value & flag & info [ "full" ] ~doc:"Run the paper-exact call counts (slow).")

let no_wallclock =
  Arg.(value & flag & info [ "no-wallclock" ] ~doc:"Skip the bechamel wall-clock section.")

let only =
  Arg.(
    value
    & opt (some string) None
    & info [ "only" ] ~docv:"BENCH"
        ~doc:
          "Run only the given comma-separated sections: figure8 (alias e1), ablations, \
           e9..e24, wallclock.  Example: --only e1,e16,e18,e19,e20,e24.")

let jobs =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Run benchmark tasks on $(docv) domains (default: the number of cores).  \
           Results are identical for any value; --jobs 1 restores fully sequential \
           execution.")

let list =
  Arg.(
    value & flag
    & info [ "list" ]
        ~doc:"List the experiment catalog with task counts and wall-clock estimates.")

let json_path =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"PATH"
        ~doc:
          "Write every experiment row plus a metric-registry snapshot to $(docv) as a \
           versioned smod-bench JSON document (compare with benchdiff).")

let cmd =
  let doc = "Regenerate the paper's tables and figures on the simulated testbed" in
  Cmd.v
    (Cmd.info "smod-bench" ~doc)
    Term.(const main $ full $ no_wallclock $ only $ jobs $ list $ json_path)

let () = exit (Cmd.eval cmd)
