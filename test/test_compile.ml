(* The compiled policy engine (PR 4): randomized differential testing of
   Compile.run against Eval.query, Policy.check_compiled against
   Policy.check, the fail-closed divergences (unknown levels, unverified
   chains), hostile-input parser hardening, and the cache-invalidation
   story — keystore rotation must evict compiled programs and pooled
   decisions in the same step, including between session establishment
   and the first batched call. *)

module M = Smod_kern.Machine
module Proc = Smod_kern.Proc
module Errno = Smod_kern.Errno
module Clock = Smod_sim.Clock
module Ast = Smod_keynote.Ast
module Parse = Smod_keynote.Parse
module Eval = Smod_keynote.Eval
module Compile = Smod_keynote.Compile
module Fuse = Smod_keynote.Fuse
module Vexec = Smod_keynote.Vexec
module Keystore = Smod_keynote.Keystore
module World = Smod_bench_kit.World
module Smodd = Smod_pool.Smodd
open Secmodule

let levels = [| "deny"; "review"; "allow" |]

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Randomized differential: Compile.run ≡ Eval.query                   *)
(* ------------------------------------------------------------------ *)

(* A small closed world of principals and attributes so generated
   delegation graphs actually connect (and cycle), and generated guards
   actually flip on the generated attrs. *)
let principals = [ "alice"; "kp0"; "kp1"; "kp2" ]

let gen_query =
  let open QCheck.Gen in
  let gen_principal = oneofl principals in
  let gen_attr_name =
    oneofl
      [ "a"; "b"; "c"; "module"; "function"; "calls_so_far";
        "origin_module"; "origin_ring"; "origin_transport" ]
  in
  let gen_value = oneof [ map string_of_int (int_range (-2) 3); oneofl [ "x"; "libc"; "" ] ] in
  let gen_term =
    oneof
      [
        map (fun n -> Ast.Attr n) gen_attr_name;
        map (fun s -> Ast.Str s) gen_value;
        map (fun i -> Ast.Int i) (int_range (-2) 3);
      ]
  in
  let gen_cmp = oneofl [ Ast.Eq; Ast.Ne; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge ] in
  let rec gen_expr n =
    if n = 0 then
      oneof
        [
          return Ast.True;
          return Ast.False;
          map3 (fun a o b -> Ast.Cmp (a, o, b)) gen_term gen_cmp gen_term;
        ]
    else
      oneof
        [
          map3 (fun a o b -> Ast.Cmp (a, o, b)) gen_term gen_cmp gen_term;
          map (fun e -> Ast.Not e) (gen_expr (n - 1));
          map2 (fun a b -> Ast.And (a, b)) (gen_expr (n - 1)) (gen_expr (n - 1));
          map2 (fun a b -> Ast.Or (a, b)) (gen_expr (n - 1)) (gen_expr (n - 1));
        ]
  in
  let rec gen_lic n =
    if n = 0 then
      oneof [ map (fun p -> Ast.L_principal p) gen_principal; return Ast.L_empty ]
    else
      oneof
        [
          map (fun p -> Ast.L_principal p) gen_principal;
          map2 (fun a b -> Ast.L_and (a, b)) (gen_lic (n - 1)) (gen_lic (n - 1));
          map2 (fun a b -> Ast.L_or (a, b)) (gen_lic (n - 1)) (gen_lic (n - 1));
          ( list_size (2 -- 4) (gen_lic (n - 1)) >>= fun ls ->
            int_range 1 (List.length ls) >|= fun k -> Ast.L_kof (k, ls) );
        ]
  in
  let gen_clauses =
    list_size (0 -- 3)
      (map2
         (fun guard value -> { Ast.guard; value })
         (gen_expr 2)
         (oneofl [ "deny"; "review"; "allow" ]))
  in
  let gen_assertion authorizer =
    map2
      (fun licensees conditions ->
        { Ast.authorizer; licensees; conditions; comment = None; signature = None })
      (gen_lic 2) gen_clauses
  in
  list_size (1 -- 3) (gen_assertion "POLICY") >>= fun policy ->
  list_size (0 -- 4) (gen_principal >>= gen_assertion) >>= fun credentials ->
  list_size (0 -- 3) (pair gen_attr_name gen_value) >>= fun attrs ->
  list_size (1 -- 2) gen_principal >|= fun requesters ->
  (policy, credentials, attrs, requesters)

let print_query (policy, credentials, attrs, requesters) =
  Printf.sprintf "policy:\n%s\ncredentials:\n%s\nattrs: %s\nrequesters: %s"
    (String.concat "---\n" (List.map Ast.canonical_body policy))
    (String.concat "---\n" (List.map Ast.canonical_body credentials))
    (String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) attrs))
    (String.concat ", " requesters)

let prop_compiled_matches_interpreted =
  QCheck.Test.make ~name:"compiled verdict = interpreted verdict" ~count:2000
    (QCheck.make ~print:print_query gen_query)
    (fun (policy, credentials, attrs, requesters) ->
      let r = Eval.query ~policy ~credentials ~attrs ~requesters ~levels in
      match Compile.compile ~policy ~credentials ~requesters ~levels () with
      | Error e -> QCheck.Test.fail_reportf "compile failed on valid levels: %s" e
      | Ok prog ->
          let o = Compile.run prog ~attrs in
          if o.Compile.index <> r.Eval.index || o.Compile.level <> r.Eval.level then
            QCheck.Test.fail_reportf "compiled (%s,%d) <> interpreted (%s,%d)"
              o.Compile.level o.Compile.index r.Eval.level r.Eval.index
          else true)

(* One program, many attribute sets: re-running a cached program must not
   leak evaluation state between runs. *)
let prop_program_reusable_across_attrs =
  QCheck.Test.make ~name:"one compiled program serves many attr sets" ~count:500
    (QCheck.make ~print:print_query gen_query)
    (fun (policy, credentials, attrs, requesters) ->
      match Compile.compile ~policy ~credentials ~requesters ~levels () with
      | Error e -> QCheck.Test.fail_reportf "compile failed: %s" e
      | Ok prog ->
          List.for_all
            (fun attrs' ->
              let r = Eval.query ~policy ~credentials ~attrs:attrs' ~requesters ~levels in
              let o = Compile.run prog ~attrs:attrs' in
              o.Compile.index = r.Eval.index)
            [ attrs; []; [ ("a", "1") ]; attrs @ attrs ])

(* The E9 bench ladder, exactly as lib/bench_kit/ablations.ml builds it:
   n non-matching assertions behind one matching one. *)
let e9_policy n =
  let non_matching =
    List.init n (fun i ->
        Parse.assertion_of_string
          (Printf.sprintf
             "keynote-version: 2\n\
              authorizer: \"POLICY\"\n\
              licensees: \"client\"\n\
              conditions: module == \"seclibc\" && clause == %d -> \"allow\";\n"
             i))
  in
  Parse.assertion_of_string
    "keynote-version: 2\n\
     authorizer: \"POLICY\"\n\
     licensees: \"client\"\n\
     conditions: module == \"seclibc\" -> \"allow\";\n"
  :: non_matching

let test_e9_ladder_differential () =
  let levels = [| "deny"; "allow" |] in
  List.iter
    (fun n ->
      let policy = e9_policy n in
      List.iter
        (fun attrs ->
          let r =
            Eval.query ~policy ~credentials:[] ~attrs ~requesters:[ "client" ] ~levels
          in
          match Compile.compile ~policy ~credentials:[] ~requesters:[ "client" ] ~levels () with
          | Error e -> Alcotest.failf "keynote-%d failed to compile: %s" (n + 1) e
          | Ok prog ->
              let o = Compile.run prog ~attrs in
              Alcotest.(check int)
                (Printf.sprintf "keynote-%d index" (n + 1))
                r.Eval.index o.Compile.index;
              Alcotest.(check string)
                (Printf.sprintf "keynote-%d level" (n + 1))
                r.Eval.level o.Compile.level)
        [
          [ ("phase", "call"); ("function", "test_incr"); ("module", "seclibc");
            ("calls_so_far", "5") ];
          [ ("module", "other") ];
          [];
        ])
    [ 0; 3; 15 ]

(* The compiled E9 slope: a non-matching ladder assertion costs a handful
   of fused opcodes, not a 420-cycle interpreted walk.  Pin the per-
   assertion op growth so the >= 4x slope cut in bench E9 cannot silently
   regress to interpreted-shaped costs. *)
let test_e9_op_slope () =
  let levels = [| "deny"; "allow" |] in
  let attrs = [ ("module", "seclibc"); ("calls_so_far", "5") ] in
  let ops n =
    match Compile.compile ~policy:(e9_policy n) ~credentials:[] ~requesters:[ "client" ]
            ~levels ()
    with
    | Ok prog -> (Compile.run prog ~attrs).Compile.ops
    | Error e -> Alcotest.failf "compile: %s" e
  in
  let o1 = ops 0 and o16 = ops 15 in
  let per_assertion = float_of_int (o16 - o1) /. 15.0 in
  Alcotest.(check bool)
    (Printf.sprintf "per-assertion op growth %.1f stays under 8" per_assertion)
    true (per_assertion <= 8.0)

(* ------------------------------------------------------------------ *)
(* Fused batch engine (E24): Fuse.run_slot ≡ Compile.run ≡ Eval.query  *)
(* ------------------------------------------------------------------ *)

let origin_pairs (o : Fuse.origin) =
  [
    ("origin_module", o.Fuse.o_module);
    ("origin_ring", string_of_int o.Fuse.o_ring);
    ("origin_transport", o.Fuse.o_transport);
  ]

let gen_origin =
  let open QCheck.Gen in
  map3
    (fun m r t -> { Fuse.o_module = m; o_ring = r; o_transport = t })
    (oneofl [ "user"; "seclibc"; "kp0" ])
    (int_range 0 3)
    (oneofl [ "msgq"; "ring"; "poller"; "attach" ])

let print_fused_query (q, (o : Fuse.origin)) =
  Printf.sprintf "%s\norigin: %s ring %d via %s" (print_query q) o.Fuse.o_module
    o.Fuse.o_ring o.Fuse.o_transport

let strip k l = List.filter (fun (k', _) -> k' <> k) l

(* A batch of attribute sets differing only in the varying attributes —
   exactly what sys_smod_call_batch presents slot to slot. *)
let batch_slots base =
  [
    base;
    ("function", "f1") :: strip "function" base;
    ("calls_so_far", "2") :: strip "calls_so_far" base;
    ("function", "g") :: ("calls_so_far", "-1")
    :: strip "function" (strip "calls_so_far" base);
  ]

(* The tentpole's correctness contract: one snapshot per batch, residue
   replayed per slot, and every slot's verdict equals both the per-slot
   compiled pass and the interpreted checker — including programs with
   origin predicates (resolved from the kernel origin record on the fused
   engine, from the appended attr pairs on the other two) and varying
   attributes.  Residue op counts must never exceed the full pass. *)
let prop_fused_matches_compiled_and_interpreted =
  QCheck.Test.make ~name:"fused verdict = per-slot = interpreted (batch)" ~count:2000
    (QCheck.make ~print:print_fused_query (QCheck.Gen.pair gen_query gen_origin))
    (fun ((policy, credentials, attrs0, requesters), origin) ->
      (* Attrs must agree with the kernel origin record, as the dispatcher
         guarantees: drop any generated origin pair, append the real ones. *)
      let base =
        List.filter (fun (k, _) -> not (List.mem k Compile.origin_attrs)) attrs0
        @ origin_pairs origin
      in
      match Compile.compile ~policy ~credentials ~requesters ~levels () with
      | Error e -> QCheck.Test.fail_reportf "compile failed on valid levels: %s" e
      | Ok prog ->
          let plan = Fuse.plan prog ~varying:Policy.batch_varying_attrs in
          let invariant =
            List.filter
              (fun (k, _) -> not (List.mem k Policy.batch_varying_attrs))
              base
          in
          let snap = Fuse.begin_batch plan ~origin ~attrs:invariant in
          List.for_all
            (fun attrs ->
              let r = Eval.query ~policy ~credentials ~attrs ~requesters ~levels in
              let c = Compile.run prog ~attrs in
              let f = Fuse.run_slot plan snap ~origin ~attrs in
              if
                f.Compile.index <> c.Compile.index
                || f.Compile.level <> c.Compile.level
                || c.Compile.index <> r.Eval.index
                || c.Compile.level <> r.Eval.level
              then
                QCheck.Test.fail_reportf
                  "slot [%s]: fused (%s,%d) per-slot (%s,%d) interpreted (%s,%d)"
                  (String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) attrs))
                  f.Compile.level f.Compile.index c.Compile.level c.Compile.index
                  r.Eval.level r.Eval.index
              else if f.Compile.ops > c.Compile.ops then
                QCheck.Test.fail_reportf "residue ops %d exceed full pass %d"
                  f.Compile.ops c.Compile.ops
              else true)
            (batch_slots base))

(* Snapshot reuse across batches: re-arming must be unnecessary as long
   as the program is live.  Run the same slot through two snapshots and a
   shared one many times — verdicts and op counts must be stable. *)
let prop_snapshot_reusable =
  QCheck.Test.make ~name:"snapshot reusable across batches" ~count:300
    (QCheck.make ~print:print_fused_query (QCheck.Gen.pair gen_query gen_origin))
    (fun ((policy, credentials, attrs0, requesters), origin) ->
      let base =
        List.filter (fun (k, _) -> not (List.mem k Compile.origin_attrs)) attrs0
        @ origin_pairs origin
      in
      match Compile.compile ~policy ~credentials ~requesters ~levels () with
      | Error e -> QCheck.Test.fail_reportf "compile failed: %s" e
      | Ok prog ->
          let plan = Fuse.plan prog ~varying:Policy.batch_varying_attrs in
          let snap1 = Fuse.begin_batch plan ~origin ~attrs:base in
          let snap2 = Fuse.begin_batch plan ~origin ~attrs:base in
          let o1 = Fuse.run_slot plan snap1 ~origin ~attrs:base in
          List.for_all
            (fun slot ->
              let a = Fuse.run_slot plan snap1 ~origin ~attrs:slot in
              let b = Fuse.run_slot plan snap2 ~origin ~attrs:slot in
              a.Compile.index = b.Compile.index && a.Compile.ops = b.Compile.ops)
            (batch_slots base @ [ base; base ])
          &&
          let o1' = Fuse.run_slot plan snap1 ~origin ~attrs:base in
          o1'.Compile.index = o1.Compile.index && o1'.Compile.ops = o1.Compile.ops)

(* ------------------------------------------------------------------ *)
(* Vectorized batch engine (E25): Vexec ≡ run_slot ≡ Compile ≡ Eval    *)
(* ------------------------------------------------------------------ *)

(* The four-way differential: the min-pc uniform walk over SoA lanes
   computes, per lane, exactly the verdict of the slot-major fused
   replay, the per-slot compiled pass, and the interpreted checker —
   over generated programs that include origin predicates, per-lane
   attribute divergence (different functions, calls_so_far extremes) and
   the early-deny short-circuits fused test+jf produces.  At one lane
   the walk must also charge exactly the scalar residue op count: the
   honest fallback the batch-1 bench row relies on. *)
let prop_vectorized_matches_all =
  QCheck.Test.make ~name:"vectorized = fused = per-slot = interpreted (batch)"
    ~count:2000
    (QCheck.make ~print:print_fused_query (QCheck.Gen.pair gen_query gen_origin))
    (fun ((policy, credentials, attrs0, requesters), origin) ->
      let base =
        List.filter (fun (k, _) -> not (List.mem k Compile.origin_attrs)) attrs0
        @ origin_pairs origin
      in
      match Compile.compile ~policy ~credentials ~requesters ~levels () with
      | Error e -> QCheck.Test.fail_reportf "compile failed on valid levels: %s" e
      | Ok prog ->
          let plan = Fuse.plan prog ~varying:Policy.batch_varying_attrs in
          let invariant =
            List.filter
              (fun (k, _) -> not (List.mem k Policy.batch_varying_attrs))
              base
          in
          let snap = Fuse.begin_batch plan ~origin ~attrs:invariant in
          let slots = Array.of_list (batch_slots base) in
          let lanes =
            Array.map
              (fun attrs -> { Vexec.l_origin = origin; l_attrs = attrs })
              slots
          in
          let res = Vexec.run_residue plan snap ~width:Vexec.default_width ~lanes in
          Array.length res.Vexec.vr_indices = Array.length slots
          && Array.for_all Fun.id
               (Array.mapi
                  (fun k attrs ->
                    let r = Eval.query ~policy ~credentials ~attrs ~requesters ~levels in
                    let f = Fuse.run_slot plan snap ~origin ~attrs in
                    let v = res.Vexec.vr_indices.(k) in
                    if v <> f.Compile.index || f.Compile.index <> r.Eval.index then
                      QCheck.Test.fail_reportf
                        "lane %d [%s]: vectorized %d fused (%s,%d) interpreted (%s,%d)"
                        k
                        (String.concat "," (List.map (fun (a, b) -> a ^ "=" ^ b) attrs))
                        v f.Compile.level f.Compile.index r.Eval.level r.Eval.index
                    else
                      (* Scalar fallback: one lane, any width — same
                         verdict, and unit count = the scalar residue
                         replay's op count. *)
                      let solo =
                        Vexec.run_residue plan snap ~width:1 ~lanes:[| lanes.(k) |]
                      in
                      if solo.Vexec.vr_indices.(0) <> f.Compile.index then
                        QCheck.Test.fail_reportf "lane %d solo verdict diverges" k
                      else if solo.Vexec.vr_units <> f.Compile.ops then
                        QCheck.Test.fail_reportf
                          "lane %d solo units %d <> scalar residue ops %d" k
                          solo.Vexec.vr_units f.Compile.ops
                      else true)
                  slots))

(* The lane-mask accounting, pinned on a hand-built ladder: a lane that
   fails the matching rung's first test jumps forward to the join point
   and sleeps; every position it needs is one the allowed lane visits
   too, so inside one width-W group the divergent lane costs no extra
   units.  An all-denying batch shrinks the walk itself (the skipped
   stretch is never visited). *)
let test_vexec_divergent_lane_rides_free () =
  let levels = [| "deny"; "allow" |] in
  let policy =
    [
      Parse.assertion_of_string
        "keynote-version: 2\nauthorizer: \"POLICY\"\nlicensees: \"client\"\n\
         conditions: function == \"f\" && a == \"1\" && b == \"2\" -> \"allow\";\n";
    ]
  in
  match Compile.compile ~policy ~credentials:[] ~requesters:[ "client" ] ~levels () with
  | Error e -> Alcotest.failf "compile: %s" e
  | Ok prog -> (
      let plan = Fuse.plan prog ~varying:Policy.batch_varying_attrs in
      let origin = Fuse.no_origin in
      let slot_attrs = [ ("a", "1"); ("b", "2") ] in
      let snap = Fuse.begin_batch plan ~origin ~attrs:slot_attrs in
      let lane f = { Vexec.l_origin = origin; l_attrs = ("function", f) :: slot_attrs } in
      let allow = Vexec.run_residue plan snap ~width:8 ~lanes:[| lane "f" |] in
      let deny = Vexec.run_residue plan snap ~width:8 ~lanes:[| lane "zzz" |] in
      let both = Vexec.run_residue plan snap ~width:8 ~lanes:[| lane "f"; lane "zzz" |] in
      Alcotest.(check (array int))
        "verdicts per lane" [| 1; 0 |] both.Vexec.vr_indices;
      Alcotest.(check int) "divergent lane rides free inside one width group"
        allow.Vexec.vr_units both.Vexec.vr_units;
      Alcotest.(check bool)
        (Printf.sprintf "all-deny walk skips the stretch (%d < %d passes)"
           deny.Vexec.vr_passes allow.Vexec.vr_passes)
        true
        (deny.Vexec.vr_passes < allow.Vexec.vr_passes);
      match Vexec.run_residue plan snap ~width:0 ~lanes:[| lane "f" |] with
      | _ -> Alcotest.fail "width 0 must be rejected"
      | exception Invalid_argument _ -> ())

let mk_clock () = M.clock (M.create ~jitter:0.0 ())

let vendor_keystore () =
  let ks = Keystore.create () in
  Keystore.add_principal ks ~name:"vendor" ~secret:"vk";
  ks

let signed_license ks ?(conds = "true -> \"allow\";") () =
  Keystore.sign ks
    (Parse.assertion_of_string
       (Printf.sprintf
          "keynote-version: 2\nauthorizer: \"vendor\"\nlicensees: \"alice\"\n\
           conditions: %s\n"
          conds))

let policy_trusting_vendor ?(conds = "calls_so_far < 3 -> \"allow\";") () =
  Policy.Keynote
    {
      policy =
        [
          Parse.assertion_of_string
            (Printf.sprintf
               "keynote-version: 2\nauthorizer: \"POLICY\"\nlicensees: \"vendor\"\n\
                conditions: %s\n"
               conds);
        ];
      levels;
      min_level = "allow";
      attrs = [ ("color", "red") ];
    }

(* Which armed trees the dispatcher may evaluate batch-major: volatile
   residues (calls_so_far makes lane k's input depend on earlier
   verdicts) and clock-dependent arms must fall back slot-major; quota
   composites and function-varying ladders are fair game. *)
let test_vector_eligibility () =
  let clock = mk_clock () in
  let ks = vendor_keystore () in
  let credential =
    Credential.make ~principal:"alice" ~assertions:[ signed_license ks () ] ()
  in
  let keynote_arm conds = policy_trusting_vendor ~conds () in
  let ctx_of policy =
    let compiled = Policy.compile ~fuse:true ~clock ~keystore:ks ~credential policy in
    Policy.begin_fused ~clock ~origin:Fuse.no_origin
      ~attrs:(origin_pairs Fuse.no_origin) compiled
  in
  let eligible p = Policy.vector_eligible (ctx_of p) in
  Alcotest.(check bool) "function-varying arm eligible" true
    (eligible (keynote_arm "function != \"x\" -> \"allow\";"));
  Alcotest.(check bool) "volatile residue ineligible" false
    (eligible (keynote_arm "calls_so_far < 3 -> \"allow\";"));
  Alcotest.(check bool) "quota composite eligible" true
    (eligible
       (Policy.All_of
          [ Policy.Call_quota 9; keynote_arm "function != \"x\" -> \"allow\";" ]));
  Alcotest.(check bool) "rate limit ineligible" false
    (eligible
       (Policy.All_of
          [
            Policy.Rate_limit { max_calls = 5; window_us = 1000.0 };
            keynote_arm "function != \"x\" -> \"allow\";";
          ]));
  Alcotest.(check bool) "time window ineligible" false
    (eligible
       (Policy.All_of
          [
            Policy.Time_window { not_before_us = 0.0; not_after_us = 1e12 };
            keynote_arm "function != \"x\" -> \"allow\";";
          ]))

(* Arm-major evaluation of a quota + KeyNote composite: one check_vector
   call over six lanes must hand back, lane for lane, the verdicts (and
   denial reasons) six sequential check_fused calls produce against a
   twin state — quota consumed in lane order, the KeyNote arm evaluated
   batch-major through Vexec with lane compaction. *)
let test_policy_vector_parity () =
  let clock = mk_clock () in
  let ks = vendor_keystore () in
  let credential =
    Credential.make ~principal:"alice" ~assertions:[ signed_license ks () ] ()
  in
  let policy =
    Policy.All_of
      [
        Policy.Call_quota 4;
        policy_trusting_vendor ~conds:"function != \"blocked\" -> \"allow\";" ();
      ]
  in
  let compiled = Policy.compile ~fuse:true ~clock ~keystore:ks ~credential policy in
  let origin = Fuse.no_origin in
  let ctx =
    Policy.begin_fused ~clock ~origin ~attrs:(origin_pairs origin) compiled
  in
  Alcotest.(check bool) "composite is vector eligible" true
    (Policy.vector_eligible ctx);
  let funcs = [| "f0"; "blocked"; "f1"; "f2"; "f3"; "f4" |] in
  let attrs_of f = ("function", f) :: origin_pairs origin in
  let lanes =
    Array.map
      (fun f -> { Policy.vl_origin = origin; vl_attrs = attrs_of f })
      funcs
  in
  let s_vec = Policy.initial_state policy in
  let s_seq = Policy.initial_state policy in
  let vec =
    Policy.check_vector ~clock ~now_us:0.0 ~credential ~width:8 ~lanes ctx s_vec
  in
  Alcotest.(check int) "one verdict per lane" (Array.length funcs)
    (Array.length vec);
  Array.iteri
    (fun i f ->
      let seq =
        Policy.check_fused ~clock ~now_us:0.0 ~credential ~origin
          ~attrs:(attrs_of f) ctx s_seq
      in
      match (vec.(i), seq) with
      | Ok (), Ok () -> ()
      | Error a, Error b ->
          Alcotest.(check string)
            (Printf.sprintf "lane %d (%s) denial reason" i f)
            b.Policy.reason a.Policy.reason
      | Ok (), Error b ->
          Alcotest.failf "lane %d (%s): vector allowed, slot-major denied (%s)" i
            f b.Policy.reason
      | Error a, Ok () ->
          Alcotest.failf "lane %d (%s): vector denied (%s), slot-major allowed" i
            f a.Policy.reason)
    funcs;
  (* Pin the composite semantics: the keynote arm rejects "blocked", and
     the quota arm consumes on its own pass — including for the lane the
     keynote arm later denies — so only three keynote-approved lanes fit
     before the counter starves the tail, exactly as slot-major does. *)
  let verdict i = match vec.(i) with Ok () -> "allow" | Error _ -> "deny" in
  Alcotest.(check (list string))
    "verdict pattern"
    [ "allow"; "deny"; "allow"; "allow"; "deny"; "deny" ]
    (List.init (Array.length funcs) verdict)

(* Policy-layer parity: a stateful composite (quota over a volatile
   keynote arm) armed once per batch must consume quota per slot exactly
   like the interpreted and per-slot compiled engines. *)
let test_policy_fused_parity () =
  let clock = mk_clock () in
  let ks = vendor_keystore () in
  let credential =
    Credential.make ~principal:"alice" ~assertions:[ signed_license ks () ] ()
  in
  let policy = Policy.All_of [ Policy.Call_quota 4; policy_trusting_vendor () ] in
  let s_interp = Policy.initial_state policy in
  let s_fused = Policy.initial_state policy in
  let compiled = Policy.compile ~fuse:true ~clock ~keystore:ks ~credential policy in
  Alcotest.(check bool) "composite is fusible" true (Policy.fusible compiled);
  let origin = Fuse.no_origin in
  let ctx =
    Policy.begin_fused ~clock ~origin ~attrs:(origin_pairs origin) compiled
  in
  for i = 0 to 5 do
    let attrs = ("calls_so_far", string_of_int i) :: origin_pairs origin in
    let a = Policy.check ~clock ~now_us:0.0 ~credential ~attrs policy s_interp in
    let b =
      Policy.check_fused ~clock ~now_us:0.0 ~credential ~origin ~attrs ctx s_fused
    in
    match (a, b) with
    | Ok (), Ok () ->
        Alcotest.(check bool) (Printf.sprintf "call %d allowed" i) true (i < 3)
    | Error da, Error db ->
        Alcotest.(check bool) (Printf.sprintf "call %d denied" i) true (i >= 3);
        Alcotest.(check string)
          (Printf.sprintf "call %d same reason" i)
          da.Policy.reason db.Policy.reason
    | Ok (), Error d ->
        Alcotest.failf "call %d: interpreted allowed, fused denied (%s)" i
          d.Policy.reason
    | Error d, Ok () ->
        Alcotest.failf "call %d: interpreted denied (%s), fused allowed" i
          d.Policy.reason
  done

(* ------------------------------------------------------------------ *)
(* Origin predicates: fail-closed compilation (satellite b)            *)
(* ------------------------------------------------------------------ *)

let compile_origin_conds ?(env = { Compile.known_modules = [ "seclibc" ] }) conds =
  let policy =
    [
      Parse.assertion_of_string
        (Printf.sprintf
           "keynote-version: 2\nauthorizer: \"POLICY\"\nlicensees: \"client\"\n\
            conditions: %s\n"
           conds);
    ]
  in
  Compile.compile ~origin:env ~policy ~credentials:[] ~requesters:[ "client" ]
    ~levels:[| "deny"; "allow" |] ()

let test_origin_validation_fails_closed () =
  (match
     compile_origin_conds
       "origin_module == \"seclibc\" && origin_ring <= 2 && origin_transport != \
        \"poller\" -> \"allow\";"
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "valid origin predicate rejected: %s" e);
  (match compile_origin_conds "origin_module == \"user\" -> \"allow\";" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "\"user\" must always be a known origin: %s" e);
  (* origin-vs-origin comparisons carry no literal to validate *)
  (match compile_origin_conds "origin_module == origin_transport -> \"allow\";" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "attr-vs-attr origin comparison rejected: %s" e);
  (match compile_origin_conds "origin_module == \"ghost\" -> \"allow\";" with
  | Error e ->
      Alcotest.(check bool) "diagnostic names the module" true (contains e "ghost")
  | Ok _ -> Alcotest.fail "unknown origin module must not compile");
  (match compile_origin_conds "origin_ring == 7 -> \"allow\";" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "ring 7 must not compile");
  (match compile_origin_conds "origin_ring == \"x\" -> \"allow\";" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-numeric ring must not compile");
  match compile_origin_conds "origin_transport == \"carrier-pigeon\" -> \"allow\";" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown transport must not compile"

(* Same discipline one layer up: Policy.compile with an origin
   environment turns the validation error into a deny-all stub, exactly
   like unknown compliance levels. *)
let test_origin_unknown_denies_at_policy_layer () =
  let clock = mk_clock () in
  let ks = vendor_keystore () in
  let credential = Credential.make ~principal:"client" () in
  let policy =
    Policy.Keynote
      {
        policy =
          [
            Parse.assertion_of_string
              "keynote-version: 2\nauthorizer: \"POLICY\"\nlicensees: \"client\"\n\
               conditions: origin_module == \"ghost\" -> \"allow\";\n";
          ];
        levels = [| "deny"; "allow" |];
        min_level = "allow";
        attrs = [];
      }
  in
  let compiled =
    Policy.compile ~fuse:true
      ~origin_env:{ Compile.known_modules = [] }
      ~clock ~keystore:ks ~credential policy
  in
  (match Policy.compiled_stats compiled with
  | { Policy.denied = Some r; programs = 0; _ } ->
      Alcotest.(check bool) "reason names the module" true (contains r "ghost")
  | _ -> Alcotest.fail "expected a deny-all stub with no program");
  match
    Policy.check_compiled ~clock ~now_us:0.0 ~credential ~attrs:[] compiled
      (Policy.initial_state policy)
  with
  | Ok () -> Alcotest.fail "deny-all stub must deny"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Structural sharing: compile memory sublinear (satellite c)          *)
(* ------------------------------------------------------------------ *)

(* 10k single-assertion-unique policies over a shared 10-assertion
   suffix: the arena must intern the suffix (and root) segments once, so
   distinct segment storage grows with the unique clauses only — not with
   the naive sum of every plan's segments. *)
let test_arena_sharing_sublinear () =
  Fuse.arena_reset ();
  let lv = [| "deny"; "allow" |] in
  let shared =
    List.init 10 (fun i ->
        Parse.assertion_of_string
          (Printf.sprintf
             "keynote-version: 2\nauthorizer: \"POLICY\"\nlicensees: \"client\"\n\
              conditions: module == \"seclibc\" && tier == \"t%d\" -> \"allow\";\n"
             i))
  in
  let n = 10_000 in
  let naive_segments = ref 0 in
  for i = 0 to n - 1 do
    let unique =
      Parse.assertion_of_string
        (Printf.sprintf
           "keynote-version: 2\nauthorizer: \"POLICY\"\nlicensees: \"client\"\n\
            conditions: clause == %d -> \"allow\";\n"
           i)
    in
    match
      Compile.compile ~policy:(unique :: shared) ~credentials:[]
        ~requesters:[ "client" ] ~levels:lv ()
    with
    | Error e -> Alcotest.failf "policy %d failed to compile: %s" i e
    | Ok prog ->
        let plan = Fuse.plan prog ~varying:Policy.batch_varying_attrs in
        let st = Fuse.stats plan in
        naive_segments := !naive_segments + st.Fuse.segments
  done;
  let a = Fuse.arena_stats () in
  Alcotest.(check bool)
    (Printf.sprintf "distinct segments %d stay near the %d unique clauses" a.Fuse.a_segments n)
    true
    (a.Fuse.a_segments < n + 64);
  Alcotest.(check bool)
    (Printf.sprintf "arena %d segments ≪ naive %d" a.Fuse.a_segments !naive_segments)
    true
    (!naive_segments > 8 * a.Fuse.a_segments);
  Alcotest.(check bool) "sharing measured in bytes" true (a.Fuse.a_bytes_saved > 0);
  Alcotest.(check bool) "hits dominate misses" true (a.Fuse.a_hits > a.Fuse.a_misses)

(* ------------------------------------------------------------------ *)
(* Policy.check ≡ Policy.check_compiled                                *)
(* ------------------------------------------------------------------ *)

(* Stateful composite over a volatile keynote arm: verdict-for-verdict
   (and reason-for-reason) parity across a call sequence, with each path
   consuming its own quota state. *)
let test_policy_check_parity () =
  let clock = mk_clock () in
  let ks = vendor_keystore () in
  let credential =
    Credential.make ~principal:"alice" ~assertions:[ signed_license ks () ] ()
  in
  let policy = Policy.All_of [ Policy.Call_quota 4; policy_trusting_vendor () ] in
  let s_interp = Policy.initial_state policy in
  let s_comp = Policy.initial_state policy in
  let compiled = Policy.compile ~clock ~keystore:ks ~credential policy in
  for i = 0 to 5 do
    let attrs = [ ("calls_so_far", string_of_int i) ] in
    let a = Policy.check ~clock ~now_us:0.0 ~credential ~attrs policy s_interp in
    let b = Policy.check_compiled ~clock ~now_us:0.0 ~credential ~attrs compiled s_comp in
    match (a, b) with
    | Ok (), Ok () -> Alcotest.(check bool) (Printf.sprintf "call %d allowed" i) true (i < 3)
    | Error da, Error db ->
        Alcotest.(check bool) (Printf.sprintf "call %d denied" i) true (i >= 3);
        Alcotest.(check string)
          (Printf.sprintf "call %d same reason" i)
          da.Policy.reason db.Policy.reason
    | Ok (), Error d ->
        Alcotest.failf "call %d: interpreted allowed, compiled denied (%s)" i d.Policy.reason
    | Error d, Ok () ->
        Alcotest.failf "call %d: interpreted denied (%s), compiled allowed" i d.Policy.reason
  done

(* Deliberate divergence 1: a clause naming an unknown compliance level
   makes the interpreter raise lazily; the compiler validates up front
   and the compiled policy denies instead. *)
let test_unknown_level_fails_closed () =
  let clock = mk_clock () in
  let ks = vendor_keystore () in
  let credential =
    Credential.make ~principal:"alice" ~assertions:[ signed_license ks () ] ()
  in
  let policy = policy_trusting_vendor ~conds:"true -> \"sudo\";" () in
  let compiled = Policy.compile ~clock ~keystore:ks ~credential policy in
  (match Policy.check_compiled ~clock ~now_us:0.0 ~credential ~attrs:[] compiled
           (Policy.initial_state policy)
   with
  | Ok () -> Alcotest.fail "unknown level must deny"
  | Error d ->
      Alcotest.(check bool) "reason names the level" true
        (contains d.Policy.reason "sudo"));
  match Policy.compiled_stats compiled with
  | { Policy.denied = Some _; programs = 0; _ } -> ()
  | _ -> Alcotest.fail "expected a deny-all stub with no program"

(* Deliberate divergence 2: compilation hoists the signature check, so a
   credential whose chain does not verify compiles to a deny-all stub
   (the interpreted per-call path trusts establishment to have done
   this). *)
let test_unverified_chain_fails_closed () =
  let clock = mk_clock () in
  let ks = vendor_keystore () in
  let unsigned =
    Parse.assertion_of_string
      "keynote-version: 2\nauthorizer: \"vendor\"\nlicensees: \"alice\"\n\
       conditions: true -> \"allow\";\n"
  in
  let credential = Credential.make ~principal:"alice" ~assertions:[ unsigned ] () in
  let policy = policy_trusting_vendor () in
  let compiled = Policy.compile ~clock ~keystore:ks ~credential policy in
  match Policy.check_compiled ~clock ~now_us:0.0 ~credential
          ~attrs:[ ("calls_so_far", "0") ]
          compiled (Policy.initial_state policy)
  with
  | Ok () -> Alcotest.fail "unverified chain must deny"
  | Error d ->
      Alcotest.(check bool) "reason names verification" true
        (contains d.Policy.reason "verification")

(* Compiling charges the hoisted work; running charges per opcode.  The
   steady state (one compile, many runs) must be cheaper than the
   interpreter for the 16-assertion ladder. *)
let test_compiled_cycles_cheaper () =
  let machine = M.create ~jitter:0.0 () in
  let clock = M.clock machine in
  let ks = vendor_keystore () in
  let credential = Credential.make ~principal:"client" () in
  let policy =
    Policy.Keynote
      { policy = e9_policy 15; levels = [| "deny"; "allow" |]; min_level = "allow"; attrs = [] }
  in
  let attrs = [ ("module", "seclibc") ] in
  let state = Policy.initial_state policy in
  let interp_t0 = Clock.now_us clock in
  for _ = 1 to 100 do
    match Policy.check ~clock ~now_us:0.0 ~credential ~attrs policy state with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "interpreted denied"
  done;
  let interp_us = Clock.now_us clock -. interp_t0 in
  let compiled = Policy.compile ~clock ~keystore:ks ~credential policy in
  let comp_t0 = Clock.now_us clock in
  for _ = 1 to 100 do
    match Policy.check_compiled ~clock ~now_us:0.0 ~credential ~attrs compiled state with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "compiled denied"
  done;
  let comp_us = Clock.now_us clock -. comp_t0 in
  Alcotest.(check bool)
    (Printf.sprintf "compiled %.1fus < a quarter of interpreted %.1fus" comp_us interp_us)
    true
    (comp_us *. 4.0 < interp_us)

(* ------------------------------------------------------------------ *)
(* Hostile input: the parser is total (satellite 1)                    *)
(* ------------------------------------------------------------------ *)

let test_parse_huge_int_literal () =
  let text = "x < 99999999999999999999999999999999999999" in
  (match Parse.expr_of_string text with
  | _ -> Alcotest.fail "overflowing literal must not parse"
  | exception Parse.Parse_error _ -> ()
  | exception e -> Alcotest.failf "escaped as %s" (Printexc.to_string e));
  match Parse.expr_of_string_res text with
  | Error { Parse.message; _ } ->
      Alcotest.(check bool) "diagnostic names the range" true
        (contains message "range")
  | Ok _ -> Alcotest.fail "res variant must report the error"

let test_parse_deep_nesting_bounded () =
  let bomb = String.concat "" (List.init 400 (fun _ -> "!(")) ^ "true"
             ^ String.concat "" (List.init 400 (fun _ -> ")")) in
  (match Parse.expr_of_string_res bomb with
  | Error { Parse.message; _ } ->
      Alcotest.(check bool) "diagnostic names nesting" true
        (contains message "nesting")
  | Ok _ -> Alcotest.fail "400-deep nesting must be rejected");
  let lic_bomb =
    String.concat "" (List.init 400 (fun _ -> "(")) ^ "\"a\""
    ^ String.concat "" (List.init 400 (fun _ -> ")"))
  in
  match Parse.licensees_of_string_res lic_bomb with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "400-deep licensee nesting must be rejected"

let test_parse_shallow_nesting_still_works () =
  let ok = String.concat "" (List.init 100 (fun _ -> "!(")) ^ "true"
           ^ String.concat "" (List.init 100 (fun _ -> ")")) in
  match Parse.expr_of_string_res ok with
  | Ok e -> Alcotest.(check bool) "evaluates" true (Eval.eval_expr ~attrs:[] e)
  | Error d -> Alcotest.failf "100-deep rejected at line %d: %s" d.Parse.line d.Parse.message

let test_parse_long_chains_iterative () =
  (* Right-recursive descent would blow the stack here; the chain
     collector must stay iterative. *)
  let n = 20_000 in
  let chain = String.concat " && " (List.init n (fun _ -> "true")) in
  (match Parse.expr_of_string_res chain with
  | Ok e -> Alcotest.(check bool) "all-true chain" true (Eval.eval_expr ~attrs:[] e)
  | Error d -> Alcotest.failf "chain rejected: line %d" d.Parse.line);
  let lic_chain = String.concat " || " (List.init n (fun _ -> "\"p\"")) in
  match Parse.licensees_of_string_res lic_chain with
  | Ok _ -> ()
  | Error d -> Alcotest.failf "licensee chain rejected: line %d" d.Parse.line

let test_parse_res_reports_line () =
  match
    Parse.assertions_of_string_res
      "keynote-version: 2\nauthorizer: \"P\"\nconditions: == -> \"x\";\n"
  with
  | Error { Parse.line = 3; _ } -> ()
  | Error { Parse.line; _ } -> Alcotest.failf "wrong line %d" line
  | Ok _ -> Alcotest.fail "malformed assertion accepted"

(* A credential carrying an assertion that names a level outside the
   module policy's ordering: the compiled path must deny with EACCES at
   dispatch, never crash the kernel. *)
let test_hostile_credential_denied_not_crash () =
  let world =
    World.create ~with_rpc:false
      ~policy:
        (Policy.Keynote
           {
             policy =
               [
                 Parse.assertion_of_string
                   "keynote-version: 2\nauthorizer: \"POLICY\"\nlicensees: \"vendor\"\n\
                    conditions: module == \"seclibc\" -> \"allow\";\n";
               ];
             levels = [| "deny"; "allow" |];
             min_level = "allow";
             attrs = [];
           })
      ()
  in
  let smod = world.World.smod in
  Smod.set_policy_compile smod true;
  let ks = Smod.keystore smod in
  Keystore.add_principal ks ~name:"vendor" ~secret:"vk";
  (* The hostile clause only fires at call time, so establishment (which
     still interprets) succeeds and the compiled path is what meets it. *)
  let license =
    Keystore.sign ks
      (Parse.assertion_of_string
         "keynote-version: 2\nauthorizer: \"vendor\"\nlicensees: \"alice\"\n\
          conditions: phase == \"call\" -> \"sudo\"; true -> \"allow\";\n")
  in
  let credential = Credential.make ~principal:"alice" ~assertions:[ license ] () in
  let outcome = ref `Unset in
  ignore
    (M.spawn world.World.machine ~name:"hostile" (fun p ->
         Crt0.run_client smod p ~module_name:Smod_libc.Seclibc.module_name
           ~version:Smod_libc.Seclibc.version ~credential (fun conn ->
             match Stub.call conn ~func:"test_incr" [| 1 |] with
             | v -> outcome := `Allowed v
             | exception Errno.Error (Errno.EACCES, _) -> outcome := `Denied)));
  World.run world;
  Alcotest.(check bool) "EACCES, not a crash" true (!outcome = `Denied)

(* ------------------------------------------------------------------ *)
(* Dispatch integration: compiled programs on the call paths           *)
(* ------------------------------------------------------------------ *)

let client_keynote_policy ?(volatile = false) () =
  let conds =
    if volatile then "module == \"seclibc\" && calls_so_far < 3 -> \"allow\";"
    else "module == \"seclibc\" -> \"allow\";"
  in
  Policy.Keynote
    {
      policy =
        [
          Parse.assertion_of_string
            (Printf.sprintf
               "keynote-version: 2\nauthorizer: \"POLICY\"\nlicensees: \"client\"\n\
                conditions: %s\n"
               conds);
        ];
      levels = [| "deny"; "allow" |];
      min_level = "allow";
      attrs = [];
    }

let test_compiled_dispatch_end_to_end () =
  let world =
    World.create ~pool:Smodd.default_config ~with_rpc:false
      ~policy:(client_keynote_policy ()) ()
  in
  let smod = world.World.smod in
  Smod.set_policy_compile smod true;
  Alcotest.(check bool) "toggle visible" true (Smod.policy_compile_enabled smod);
  let results = ref [] in
  World.spawn_seclibc_client world ~name:"compiled-client" (fun _p conn ->
      for i = 1 to 5 do
        results := Smod_libc.Seclibc.Client.test_incr conn i :: !results
      done);
  World.run world;
  Alcotest.(check (list int)) "all calls answered" [ 6; 5; 4; 3; 2 ] !results;
  let entry = world.World.libc_entry in
  Alcotest.(check int) "one program cached registry-side" 1
    (Hashtbl.length entry.Registry.compiled_cache);
  Alcotest.(check int) "one compile miss" 1 entry.Registry.compile_misses;
  let st = Smodd.status (Option.get world.World.pool) in
  Alcotest.(check (option int)) "program cached pool-side" (Some 1) st.Smodd.st_cache_compiled;
  match Smod.policy_compile_status smod with
  | [ cs ] ->
      Alcotest.(check string) "module name" "seclibc" cs.Smod.cs_module;
      Alcotest.(check int) "cached" 1 cs.Smod.cs_cached;
      (match cs.Smod.cs_stats with
      | Some stats ->
          Alcotest.(check int) "one program" 1 stats.Policy.programs;
          Alcotest.(check bool) "has opcodes" true (stats.Policy.opcodes > 0)
      | None -> Alcotest.fail "no stats for a cached program")
  | l -> Alcotest.failf "expected one status row, got %d" (List.length l)

(* The batch path evaluates volatile compiled programs per slot with the
   same verdicts the interpreter produces: 3 allowed, then denials as
   calls_so_far crosses the threshold. *)
let batch_statuses ?(fuse = false) ~compile () =
  let world =
    World.create ~with_rpc:false ~policy:(client_keynote_policy ~volatile:true ()) ()
  in
  Smod.set_policy_compile world.World.smod compile;
  Smod.set_policy_fuse world.World.smod fuse;
  let results = ref [] in
  World.spawn_seclibc_client world ~name:"batch-client" (fun _p conn ->
      results := Stub.call_batch conn ~func:"test_incr" (List.init 5 (fun i -> [| i |])));
  World.run world;
  List.map (function Ok _ -> `Ok | Error (e, _) -> `Err e) !results

let test_batch_volatile_compiled_per_slot () =
  let compiled = batch_statuses ~compile:true () in
  let interpreted = batch_statuses ~compile:false () in
  Alcotest.(check int) "5 slots" 5 (List.length compiled);
  Alcotest.(check bool) "same verdict sequence as interpreted" true
    (compiled = interpreted);
  List.iteri
    (fun i s ->
      if i < 3 then
        Alcotest.(check bool) (Printf.sprintf "slot %d allowed" i) true (s = `Ok)
      else
        Alcotest.(check bool) (Printf.sprintf "slot %d denied" i) true (s = `Err Errno.EACCES))
    compiled

(* The fused batch path: same stateful per-slot verdicts (quota opcodes
   stay per slot even when the keynote prefix is hoisted). *)
let test_batch_volatile_fused_per_slot () =
  let fused = batch_statuses ~compile:true ~fuse:true () in
  let interpreted = batch_statuses ~compile:false () in
  Alcotest.(check int) "5 slots" 5 (List.length fused);
  Alcotest.(check bool) "same verdict sequence as interpreted" true
    (fused = interpreted);
  List.iteri
    (fun i s ->
      if i < 3 then
        Alcotest.(check bool) (Printf.sprintf "slot %d allowed" i) true (s = `Ok)
      else
        Alcotest.(check bool) (Printf.sprintf "slot %d denied" i) true
          (s = `Err Errno.EACCES))
    fused

(* Origin predicates at dispatch: the kernel resolves the caller's
   transport, so the same session is admitted over msgq and refused over
   the ring batch path — and the client has no attribute to forge. *)
let origin_world conds =
  World.create ~with_rpc:false
    ~policy:
      (Policy.Keynote
         {
           policy =
             [
               Parse.assertion_of_string
                 (Printf.sprintf
                    "keynote-version: 2\nauthorizer: \"POLICY\"\n\
                     licensees: \"client\"\nconditions: %s\n"
                    conds);
             ];
           levels = [| "deny"; "allow" |];
           min_level = "allow";
           attrs = [];
         })
    ()

let test_origin_transport_gates_paths () =
  let world =
    origin_world
      "phase == \"session\" -> \"allow\"; origin_transport == \"msgq\" && module \
       == \"seclibc\" -> \"allow\";"
  in
  Smod.set_policy_compile world.World.smod true;
  Smod.set_policy_fuse world.World.smod true;
  let scalar = ref `Unset and batch = ref [] in
  World.spawn_seclibc_client world ~name:"transport-client" (fun _p conn ->
      (scalar :=
         match Stub.call conn ~func:"test_incr" [| 1 |] with
         | v -> `Allowed v
         | exception Errno.Error (Errno.EACCES, _) -> `Denied);
      batch :=
        List.map
          (function Ok _ -> `Ok | Error (e, _) -> `Err e)
          (Stub.call_batch conn ~func:"test_incr" [ [| 1 |]; [| 2 |] ]));
  World.run world;
  Alcotest.(check bool) "msgq call admitted" true (!scalar = `Allowed 2);
  Alcotest.(check int) "2 ring slots" 2 (List.length !batch);
  List.iteri
    (fun i s ->
      Alcotest.(check bool)
        (Printf.sprintf "ring slot %d denied by transport" i)
        true
        (s = `Err Errno.EACCES))
    !batch

let test_origin_module_ring_admits () =
  let world =
    origin_world "origin_module == \"user\" && origin_ring >= 3 -> \"allow\";"
  in
  Smod.set_policy_compile world.World.smod true;
  Smod.set_policy_fuse world.World.smod true;
  let scalar = ref `Unset and batch = ref [] in
  World.spawn_seclibc_client world ~name:"user-ring3" (fun _p conn ->
      (scalar :=
         match Stub.call conn ~func:"test_incr" [| 1 |] with
         | v -> `Allowed v
         | exception Errno.Error (Errno.EACCES, _) -> `Denied);
      batch :=
        List.map
          (function Ok v -> `Ok v | Error (e, _) -> `Err e)
          (Stub.call_batch conn ~func:"test_incr" [ [| 1 |]; [| 2 |] ]));
  World.run world;
  Alcotest.(check bool) "scalar admitted" true (!scalar = `Allowed 2);
  Alcotest.(check bool) "batch admitted" true (!batch = [ `Ok 2; `Ok 3 ]);
  (* The fused plan actually carries origin opcodes. *)
  match Smod.policy_compile_status world.World.smod with
  | [ cs ] -> (
      match cs.Smod.cs_fusion with
      | Some fs ->
          Alcotest.(check bool) "origin fops present" true (fs.Fuse.origin_fops > 0);
          Alcotest.(check bool) "plan nonempty" true (fs.Fuse.total_fops > 0)
      | None -> Alcotest.fail "fused policy reports no fusion stats")
  | l -> Alcotest.failf "expected one status row, got %d" (List.length l)

(* Satellite b at dispatch: a policy clause naming an origin module the
   registry has never seen compiles to a deny-all stub — EACCES on every
   call, never an allow, never a crash.  Establishment still interprets
   (origin_module resolves to "user" there, so the hostile clause simply
   never fires). *)
let test_unknown_origin_module_fails_closed_at_dispatch () =
  let world =
    origin_world
      "phase == \"session\" -> \"allow\"; origin_module == \"ghost\" -> \"allow\";"
  in
  Smod.set_policy_compile world.World.smod true;
  Smod.set_policy_fuse world.World.smod true;
  let outcome = ref `Unset in
  World.spawn_seclibc_client world ~name:"ghost-chaser" (fun _p conn ->
      outcome :=
        match Stub.call conn ~func:"test_incr" [| 1 |] with
        | v -> `Allowed v
        | exception Errno.Error (Errno.EACCES, _) -> `Denied);
  World.run world;
  Alcotest.(check bool) "EACCES, not a crash" true (!outcome = `Denied);
  match Smod.policy_compile_status world.World.smod with
  | [ cs ] -> (
      match cs.Smod.cs_stats with
      | Some stats -> (
          match stats.Policy.denied with
          | Some r ->
              Alcotest.(check bool) "stub reason names the module" true
                (contains r "ghost")
          | None -> Alcotest.fail "expected a deny-all stub")
      | None -> Alcotest.fail "no stats for the cached stub")
  | l -> Alcotest.failf "expected one status row, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* Invalidation: rotation evicts everything in the same step           *)
(* ------------------------------------------------------------------ *)

let test_rotation_evicts_same_step () =
  let world =
    World.create ~pool:Smodd.default_config ~with_rpc:false
      ~policy:(client_keynote_policy ()) ()
  in
  let smod = world.World.smod in
  Smod.set_policy_compile smod true;
  World.spawn_seclibc_client world ~name:"warm" (fun _p conn ->
      ignore (Stub.call conn ~func:"test_incr" [| 1 |]));
  World.run world;
  let entry = world.World.libc_entry in
  let pool = Option.get world.World.pool in
  Alcotest.(check int) "program cached" 1 (Hashtbl.length entry.Registry.compiled_cache);
  let st = Smodd.status pool in
  Alcotest.(check bool) "decision cached" true (st.Smodd.st_cache_size > Some 0);
  Alcotest.(check (option int)) "program cached pool-side" (Some 1) st.Smodd.st_cache_compiled;
  (* The rotation itself: hooks fire synchronously inside add_principal,
     so by the next statement every layer is already empty. *)
  Keystore.add_principal (Smod.keystore smod) ~name:"rotated-in" ~secret:"s";
  Alcotest.(check int) "registry programs evicted in the same step" 0
    (Hashtbl.length entry.Registry.compiled_cache);
  Alcotest.(check bool) "invalidation counted" true (entry.Registry.compile_invalidations >= 1);
  let st = Smodd.status pool in
  Alcotest.(check (option int)) "pool decisions evicted in the same step" (Some 0)
    st.Smodd.st_cache_size;
  Alcotest.(check (option int)) "pool programs evicted in the same step" (Some 0)
    st.Smodd.st_cache_compiled;
  (* The world keeps working: the next session recompiles. *)
  let misses0 = world.World.libc_entry.Registry.compile_misses in
  World.spawn_seclibc_client world ~name:"after-rotation" (fun _p conn ->
      ignore (Stub.call conn ~func:"test_incr" [| 2 |]));
  World.run world;
  Alcotest.(check int) "recompiled once" (misses0 + 1) entry.Registry.compile_misses

(* Satellite 2's exact scenario: the keystore rotates between
   sys_smod_start_session and the session's first sys_smod_call_batch.
   The program compiled for an earlier session of the same credential
   must be evicted in the same step as the rotation, and the batch must
   re-verify under the new generation — denying every slot, since the
   license was signed under the old key. *)
let test_rotation_between_session_and_first_batch () =
  let world =
    World.create ~pool:Smodd.default_config ~with_rpc:false
      ~policy:
        (Policy.Keynote
           {
             policy =
               [
                 Parse.assertion_of_string
                   "keynote-version: 2\nauthorizer: \"POLICY\"\nlicensees: \"vendor\"\n\
                    conditions: module == \"seclibc\" -> \"allow\";\n";
               ];
             levels = [| "deny"; "allow" |];
             min_level = "allow";
             attrs = [];
           })
      ()
  in
  let smod = world.World.smod in
  Smod.set_policy_compile smod true;
  let ks = Smod.keystore smod in
  Keystore.add_principal ks ~name:"vendor" ~secret:"vk1";
  let license = signed_license ks () in
  let credential = Credential.make ~principal:"alice" ~assertions:[ license ] () in
  let entry = world.World.libc_entry in
  let pool = Option.get world.World.pool in
  let spawn name body =
    ignore
      (M.spawn world.World.machine ~name (fun p ->
           Crt0.run_client smod p ~module_name:Smod_libc.Seclibc.module_name
             ~version:Smod_libc.Seclibc.version ~credential body))
  in
  (* Warm: an earlier session of the same credential leaves a compiled
     program in both caches. *)
  spawn "warm" (fun conn -> ignore (Stub.call conn ~func:"test_incr" [| 1 |]));
  World.run world;
  Alcotest.(check int) "program cached before rotation" 1
    (Hashtbl.length entry.Registry.compiled_cache);
  let same_step_ok = ref false in
  let statuses = ref [] in
  spawn "victim" (fun conn ->
      (* Established under the old generation; rotate before the first
         batched call of this session. *)
      Keystore.add_principal ks ~name:"vendor" ~secret:"vk2";
      let st = Smodd.status pool in
      same_step_ok :=
        Hashtbl.length entry.Registry.compiled_cache = 0
        && st.Smodd.st_cache_size = Some 0
        && st.Smodd.st_cache_compiled = Some 0;
      let rs = Stub.call_batch conn ~func:"test_incr" (List.init 4 (fun i -> [| i |])) in
      statuses := List.map (function Ok _ -> `Ok | Error (e, _) -> `Err e) rs);
  World.run world;
  Alcotest.(check bool) "all caches empty in the rotation step" true !same_step_ok;
  Alcotest.(check int) "4 slots" 4 (List.length !statuses);
  List.iteri
    (fun i s ->
      Alcotest.(check bool)
        (Printf.sprintf "slot %d re-verified and denied" i)
        true
        (s = `Err Errno.EACCES))
    !statuses

(* The fused analogue of the between-establishment-and-first-batch race:
   a snapshot armed for batch 1 must not survive a keystore rotation into
   batch 2.  The rotation hook clears the session's fused memo alongside
   the compiled one; the re-armed context re-verifies the chain under the
   new generation and denies every slot. *)
let test_fused_rotation_between_batches () =
  let world =
    World.create ~with_rpc:false
      ~policy:
        (Policy.Keynote
           {
             policy =
               [
                 Parse.assertion_of_string
                   "keynote-version: 2\nauthorizer: \"POLICY\"\nlicensees: \"vendor\"\n\
                    conditions: module == \"seclibc\" -> \"allow\";\n";
               ];
             levels = [| "deny"; "allow" |];
             min_level = "allow";
             attrs = [];
           })
      ()
  in
  let smod = world.World.smod in
  Smod.set_policy_compile smod true;
  Smod.set_policy_fuse smod true;
  let ks = Smod.keystore smod in
  Keystore.add_principal ks ~name:"vendor" ~secret:"vk1";
  let credential =
    Credential.make ~principal:"alice" ~assertions:[ signed_license ks () ] ()
  in
  let before = ref [] and after = ref [] in
  ignore
    (M.spawn world.World.machine ~name:"rotated-mid-stream" (fun p ->
         Crt0.run_client smod p ~module_name:Smod_libc.Seclibc.module_name
           ~version:Smod_libc.Seclibc.version ~credential (fun conn ->
             let classify rs =
               List.map (function Ok _ -> `Ok | Error (e, _) -> `Err e) rs
             in
             before :=
               classify
                 (Stub.call_batch conn ~func:"test_incr" (List.init 3 (fun i -> [| i |])));
             Keystore.add_principal ks ~name:"vendor" ~secret:"vk2";
             after :=
               classify
                 (Stub.call_batch conn ~func:"test_incr" (List.init 3 (fun i -> [| i |]))))));
  World.run world;
  Alcotest.(check bool) "batch before rotation fully admitted" true
    (!before = [ `Ok; `Ok; `Ok ]);
  Alcotest.(check bool) "batch after rotation fully denied" true
    (!after = [ `Err Errno.EACCES; `Err Errno.EACCES; `Err Errno.EACCES ])

(* The vectorized admission path end to end: a mixed-function ring batch
   under a function-discriminating policy must produce the exact verdict
   sequence the slot-major fused path produces, and the keynote vector
   counters must prove the batch actually went batch-major (at least two
   distinct funcIDs, fused, eligible — nothing to decline on). *)
let mixed_batch_statuses ~vectorize () =
  let world =
    origin_world
      "phase == \"session\" -> \"allow\"; function != \"abs\" && module == \
       \"seclibc\" -> \"allow\";"
  in
  let smod = world.World.smod in
  Smod.set_policy_compile smod true;
  Smod.set_policy_fuse smod true;
  Smod.set_policy_vectorize smod vectorize;
  let statuses = ref [] in
  World.spawn_seclibc_client world ~name:"mixed-batch-client" (fun _p conn ->
      ignore (Stub.arm_ring conn);
      let id f = Option.get (Stub.func_id conn f) in
      let rs =
        Stub.call_batch_funcs conn
          [
            (id "test_incr", [| 1 |]);
            (id "abs", [| 7 |]);
            (id "getpid", [||]);
            (id "test_incr", [| 5 |]);
          ]
      in
      statuses := List.map (function Ok v -> `Ok v | Error (e, _) -> `Err e) rs);
  World.run world;
  !statuses

let test_vectorized_dispatch_end_to_end () =
  let counter name =
    Option.value ~default:0 (Smod_metrics.counter_value name)
  in
  let batches0 = counter "keynote.vector_batches" in
  let scalar = mixed_batch_statuses ~vectorize:false () in
  let batches1 = counter "keynote.vector_batches" in
  Alcotest.(check int) "scalar run spawns no vector batch" batches0 batches1;
  let vectorized = mixed_batch_statuses ~vectorize:true () in
  let batches2 = counter "keynote.vector_batches" in
  Alcotest.(check bool) "vector path actually ran" true (batches2 > batches1);
  Alcotest.(check bool) "lanes counted" true
    (counter "keynote.vector_lanes" >= 4);
  Alcotest.(check int) "4 slots" 4 (List.length vectorized);
  Alcotest.(check bool) "same verdicts as the slot-major fused path" true
    (vectorized = scalar);
  (match vectorized with
  | [ `Ok 2; `Err e; `Ok _pid; `Ok 6 ] ->
      Alcotest.(check bool) "abs denied with EACCES" true (e = Errno.EACCES)
  | _ -> Alcotest.fail "unexpected verdict shape for the mixed batch")

(* Satellite: establishment-phase clauses under the attach transport
   crossing a rotation.  A policy that admits sessions via an
   origin_transport == "attach" clause (and calls via the ring clause)
   must re-verify the credential chain when the keystore rotates: the
   session established before the rotation keeps its armed ring batches
   denied, and a second session's establishment — same attach clause,
   same credential — is refused outright because the vendor signature no
   longer verifies under the new generation. *)
let test_attach_clause_across_rotation () =
  let world =
    World.create ~with_rpc:false
      ~policy:
        (Policy.Keynote
           {
             policy =
               [
                 Parse.assertion_of_string
                   "keynote-version: 2\nauthorizer: \"POLICY\"\nlicensees: \"vendor\"\n\
                    conditions: origin_transport == \"attach\" -> \"allow\"; \
                    origin_transport == \"ring\" -> \"allow\"; origin_transport \
                    == \"msgq\" -> \"allow\";\n";
               ];
             levels = [| "deny"; "allow" |];
             min_level = "allow";
             attrs = [];
           })
      ()
  in
  let smod = world.World.smod in
  Smod.set_policy_compile smod true;
  Smod.set_policy_fuse smod true;
  let ks = Smod.keystore smod in
  Keystore.add_principal ks ~name:"vendor" ~secret:"vk1";
  let credential =
    Credential.make ~principal:"alice" ~assertions:[ signed_license ks () ] ()
  in
  let spawn name body =
    ignore
      (M.spawn world.World.machine ~name (fun p ->
           Crt0.run_client smod p ~module_name:Smod_libc.Seclibc.module_name
             ~version:Smod_libc.Seclibc.version ~credential body))
  in
  let before = ref [] and after = ref [] and second = ref `Unset in
  spawn "attach-admitted" (fun conn ->
      let classify rs =
        List.map (function Ok _ -> `Ok | Error (e, _) -> `Err e) rs
      in
      before :=
        classify
          (Stub.call_batch conn ~func:"test_incr" (List.init 2 (fun i -> [| i |])));
      Keystore.add_principal ks ~name:"vendor" ~secret:"vk2";
      after :=
        classify
          (Stub.call_batch conn ~func:"test_incr" (List.init 2 (fun i -> [| i |]))));
  World.run world;
  Alcotest.(check bool) "attach clause admitted the session, ring clause the batch"
    true
    (!before = [ `Ok; `Ok ]);
  Alcotest.(check bool) "armed batches denied after rotation" true
    (!after = [ `Err Errno.EACCES; `Err Errno.EACCES ]);
  (* The second establishment re-runs the attach-phase check under the
     new generation: the same signed license no longer verifies. *)
  ignore
    (M.spawn world.World.machine ~name:"attach-refused" (fun p ->
         match
           Crt0.run_client smod p ~module_name:Smod_libc.Seclibc.module_name
             ~version:Smod_libc.Seclibc.version ~credential (fun _conn ->
               second := `Admitted)
         with
         | () -> ()
         | exception Errno.Error (Errno.EACCES, _) -> second := `Denied));
  World.run world;
  Alcotest.(check bool) "second establishment denied under new generation" true
    (!second = `Denied)

(* Satellite: the arena hit-rate introspection smodctl renders must
   distinguish "no interning yet" (None — the CLI prints "-") from a
   real 0%. *)
let test_arena_hit_rate_introspection () =
  Fuse.arena_reset ();
  Alcotest.(check bool) "empty arena has no rate" true
    (Fuse.arena_hit_rate_pct () = None);
  (match
     Compile.compile
       ~policy:
         [
           Parse.assertion_of_string
             "keynote-version: 2\nauthorizer: \"POLICY\"\nlicensees: \"client\"\n\
              conditions: a == \"1\" -> \"allow\";\n";
         ]
       ~credentials:[] ~requesters:[ "client" ] ~levels:[| "deny"; "allow" |] ()
   with
  | Error e -> Alcotest.failf "compile: %s" e
  | Ok prog ->
      ignore (Fuse.plan prog ~varying:Policy.batch_varying_attrs);
      ignore (Fuse.plan prog ~varying:Policy.batch_varying_attrs));
  match Fuse.arena_hit_rate_pct () with
  | Some pct ->
      Alcotest.(check bool)
        (Printf.sprintf "rate in range after interning (%.0f%%)" pct)
        true
        (pct >= 0.0 && pct <= 100.0)
  | None -> Alcotest.fail "arena populated but rate still None"

(* set_policy on a live entry must drop its programs too. *)
let test_set_policy_evicts () =
  let world =
    World.create ~with_rpc:false ~policy:(client_keynote_policy ()) ()
  in
  let smod = world.World.smod in
  Smod.set_policy_compile smod true;
  World.spawn_seclibc_client world ~name:"warm" (fun _p conn ->
      ignore (Stub.call conn ~func:"test_incr" [| 1 |]));
  World.run world;
  let entry = world.World.libc_entry in
  Alcotest.(check int) "cached" 1 (Hashtbl.length entry.Registry.compiled_cache);
  let rev0 = entry.Registry.policy_rev in
  Registry.set_policy entry Policy.Always_allow;
  Alcotest.(check int) "evicted" 0 (Hashtbl.length entry.Registry.compiled_cache);
  Alcotest.(check int) "revision bumped" (rev0 + 1) entry.Registry.policy_rev

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "compile"
    [
      ( "differential",
        [
          tc "E9 ladder" test_e9_ladder_differential;
          tc "E9 op slope" test_e9_op_slope;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_compiled_matches_interpreted; prop_program_reusable_across_attrs ] );
      ( "fused",
        [
          tc "policy fused parity over stateful sequence" test_policy_fused_parity;
          tc "arena sharing sublinear" test_arena_sharing_sublinear;
          tc "arena hit-rate introspection" test_arena_hit_rate_introspection;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_fused_matches_compiled_and_interpreted; prop_snapshot_reusable ] );
      ( "vectorized",
        [
          tc "divergent lane rides free" test_vexec_divergent_lane_rides_free;
          tc "vector eligibility" test_vector_eligibility;
          tc "policy vector parity over quota composite" test_policy_vector_parity;
          tc "vectorized dispatch end to end" test_vectorized_dispatch_end_to_end;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_vectorized_matches_all ] );
      ( "origin",
        [
          tc "origin validation fails closed" test_origin_validation_fails_closed;
          tc "unknown origin denies at policy layer"
            test_origin_unknown_denies_at_policy_layer;
          tc "transport gates paths" test_origin_transport_gates_paths;
          tc "module and ring admit" test_origin_module_ring_admits;
          tc "unknown module fails closed at dispatch"
            test_unknown_origin_module_fails_closed_at_dispatch;
        ] );
      ( "policy",
        [
          tc "check parity over stateful sequence" test_policy_check_parity;
          tc "unknown level fails closed" test_unknown_level_fails_closed;
          tc "unverified chain fails closed" test_unverified_chain_fails_closed;
          tc "compiled cycles cheaper" test_compiled_cycles_cheaper;
        ] );
      ( "hostile input",
        [
          tc "huge int literal" test_parse_huge_int_literal;
          tc "deep nesting bounded" test_parse_deep_nesting_bounded;
          tc "shallow nesting works" test_parse_shallow_nesting_still_works;
          tc "long chains iterative" test_parse_long_chains_iterative;
          tc "res reports line" test_parse_res_reports_line;
          tc "hostile credential EACCES" test_hostile_credential_denied_not_crash;
        ] );
      ( "dispatch",
        [
          tc "end to end with caches" test_compiled_dispatch_end_to_end;
          tc "batch volatile per slot" test_batch_volatile_compiled_per_slot;
          tc "batch volatile fused per slot" test_batch_volatile_fused_per_slot;
        ] );
      ( "invalidation",
        [
          tc "rotation evicts same step" test_rotation_evicts_same_step;
          tc "rotation before first batch" test_rotation_between_session_and_first_batch;
          tc "fused snapshot dropped on rotation" test_fused_rotation_between_batches;
          tc "attach clause across rotation" test_attach_clause_across_rotation;
          tc "set_policy evicts" test_set_policy_evicts;
        ] );
    ]
