(* The sharded control plane (lib/cluster): placement invariants the
   E21 numbers rely on — consistent-hash reshard churn bounded by the
   arcs the new shard gains, power-of-two-choices balance under Zipf
   skew, placement purity across domains — and the coherence guarantees:
   a rotation published on the cluster is seen by every shard before its
   next admission (eagerly at publish, lazily within one epoch check),
   and no dispatch ever runs under a revoked keystore generation, batch
   slots included.  Migration is exercised end to end: drain, scrub,
   override, pooled re-attach, phase transitions, and greedy
   rebalancing. *)

module M = Smod_kern.Machine
module Proc = Smod_kern.Proc
module Sched = Smod_kern.Sched
module Errno = Smod_kern.Errno
module Keystore = Smod_keynote.Keystore
module Parse = Smod_keynote.Parse
module World = Smod_bench_kit.World
module Smodd = Smod_pool.Smodd
module Placement = Smod_cluster.Placement
module Coordinator = Smod_cluster.Coordinator
module Migrate = Smod_cluster.Migrate
open Secmodule

let tenant_names n = List.init n (Printf.sprintf "tenant-%03d")

(* ------------------------------------------------------------------ *)
(* Placement invariants                                                *)
(* ------------------------------------------------------------------ *)

let test_reshard_churn () =
  let pop = tenant_names 300 in
  let r4 = Placement.create [ 0; 1; 2; 3 ] in
  let r5 = Placement.add_shard r4 4 in
  let moved =
    List.filter (fun k -> Placement.place r4 k <> Placement.place r5 k) pop
  in
  (* ~1/(K+1) of the keys in expectation; 40% is the acceptance bound. *)
  Alcotest.(check bool)
    (Printf.sprintf "consistent hash moved %d/300 < 120" (List.length moved))
    true
    (List.length moved < 120);
  (* Stronger: a moved key can only have been captured by the new
     shard's arcs, so every mover lands on shard 4. *)
  List.iter
    (fun k ->
      Alcotest.(check int) (k ^ " moved to the new shard") 4 (Placement.place r5 k))
    moved;
  Alcotest.(check int) "Placement.moved agrees" (List.length moved)
    (Placement.moved ~before:r4 ~after:r5 pop);
  (* The router FNV mod-K remaps the bulk of the population on K=4->5. *)
  let moved_fnv =
    List.length
      (List.filter
         (fun k -> Smod_pool.Shard.place ~shards:4 k <> Smod_pool.Shard.place ~shards:5 k)
         pop)
  in
  Alcotest.(check bool)
    (Printf.sprintf "fnv mod-K moved %d/300 >= 150" moved_fnv)
    true (moved_fnv >= 150)

let test_remove_inverts_add () =
  (* Rings are pure values: removing the shard just added restores the
     original placement for every key. *)
  let pop = tenant_names 128 in
  let r4 = Placement.create [ 0; 1; 2; 3 ] in
  let back = Placement.remove_shard (Placement.add_shard r4 4) 4 in
  Alcotest.(check (list int)) "placements restored"
    (List.map (Placement.place r4) pop)
    (List.map (Placement.place back) pop)

let zipf_weights pop =
  List.mapi (fun i k -> (k, 1.0 /. ((float_of_int i +. 1.0) ** 0.9))) pop

let test_p2c_balance () =
  let pop = tenant_names 256 in
  let ring = Placement.create (List.init 8 Fun.id) in
  let weights = zipf_weights pop in
  let total = List.fold_left (fun a (_, w) -> a +. w) 0.0 weights in
  let ideal = total /. 8.0 in
  let loads_hash = Array.make 8 0.0 in
  List.iter
    (fun (k, w) ->
      let s = Placement.place ring k in
      loads_hash.(s) <- loads_hash.(s) +. w)
    weights;
  let loads_p2c = Array.make 8 0.0 in
  List.iter
    (fun (k, w) ->
      let s =
        Placement.place_p2c ring ~load:(fun i -> int_of_float (loads_p2c.(i) *. 1e6)) k
      in
      loads_p2c.(s) <- loads_p2c.(s) +. w)
    (List.sort (fun (_, a) (_, b) -> compare b a) weights);
  let max_of = Array.fold_left max 0.0 in
  let ratio_hash = max_of loads_hash /. ideal in
  let ratio_p2c = max_of loads_p2c /. ideal in
  Alcotest.(check bool)
    (Printf.sprintf "p2c %.3f beats hash-only %.3f" ratio_p2c ratio_hash)
    true (ratio_p2c < ratio_hash);
  Alcotest.(check bool)
    (Printf.sprintf "p2c max/ideal %.3f within 1.5" ratio_p2c)
    true (ratio_p2c <= 1.5)

let test_pure_across_domains () =
  (* Router replicas on different domains must agree with zero
     coordination: placement is a function of (key, ring) alone. *)
  let keys = tenant_names 64 in
  let compute () =
    let ring = Placement.create [ 0; 1; 2; 3; 4 ] in
    List.map (Placement.place ring) keys
  in
  let here = compute () in
  let there = Domain.join (Domain.spawn compute) in
  Alcotest.(check (list int)) "same placement on every domain" here there

(* ------------------------------------------------------------------ *)
(* Coherence                                                           *)
(* ------------------------------------------------------------------ *)

let vendor_policy () =
  Policy.Keynote
    {
      policy =
        [
          Parse.assertion_of_string
            "keynote-version: 2\nauthorizer: \"POLICY\"\nlicensees: \"vendor\"\n\
             conditions: module == \"seclibc\" -> \"allow\";\n";
        ];
      levels = [| "deny"; "allow" |];
      min_level = "allow";
      attrs = [];
    }

let signed_license ks =
  Keystore.sign ks
    (Parse.assertion_of_string
       "keynote-version: 2\nauthorizer: \"vendor\"\nlicensees: \"alice\"\n\
        conditions: true -> \"allow\";\n")

(* Two shard kernels under the vendor-trusting policy, both knowing the
   vendor key, joined to one coordinator. *)
let two_shard_cluster ~mode ?pool () =
  let coord = Coordinator.create ~mode () in
  let mk () =
    let world = World.create ?pool ~with_rpc:false ~policy:(vendor_policy ()) () in
    Keystore.add_principal (Smod.keystore world.World.smod) ~name:"vendor" ~secret:"vk1";
    ignore (Coordinator.add_shard coord world.World.smod);
    world
  in
  let w0 = mk () in
  let w1 = mk () in
  (coord, w0, w1)

let licensed_credential (world : World.t) =
  Credential.make ~principal:"alice"
    ~assertions:[ signed_license (Smod.keystore world.World.smod) ]
    ()

let spawn_licensed (world : World.t) ~name ~credential body =
  let smod = world.World.smod in
  ignore
    (M.spawn world.World.machine ~name (fun p ->
         match
           Crt0.run_client smod p ~module_name:Smod_libc.Seclibc.module_name
             ~version:Smod_libc.Seclibc.version ~credential (fun conn ->
               ignore (Stub.call conn ~func:"test_incr" [| 1 |]);
               body `Called)
         with
         | () -> ()
         | exception Errno.Error (e, _) -> body (`Denied e)))

let test_eager_rotation_before_next_admission () =
  let coord, _w0, w1 = two_shard_cluster ~mode:Coordinator.Eager () in
  let ks1 = Smod.keystore w1.World.smod in
  (* Signed under the pre-rotation vendor key; reused verbatim after the
     publish so the denial is the rotation's doing. *)
  let credential = licensed_credential w1 in
  (* Sanity: the licensed credential works before the rotation. *)
  let before = ref `None in
  spawn_licensed w1 ~name:"before" ~credential (fun r ->
      before := (r :> [ `None | `Called | `Denied of Errno.t ]));
  World.run w1;
  Alcotest.(check bool) "licensed call allowed pre-rotation" true (!before = `Called);
  let gen0 = Keystore.generation ks1 in
  Coordinator.publish coord (Coordinator.Rotate_key { name = "vendor"; secret = "vk2" });
  (* Eager broadcast: applied at publish on every shard, before anything
     dispatches — generation bumped, epochs current, propagation sampled. *)
  Alcotest.(check int) "shard B generation bumped at publish" (gen0 + 1)
    (Keystore.generation ks1);
  List.iter
    (fun sh ->
      Alcotest.(check int) "shard epoch current" (Coordinator.epoch coord)
        (Coordinator.shard_epoch sh);
      Alcotest.(check bool) "propagation sample recorded" true
        (Coordinator.propagation_us sh <> []))
    (Coordinator.shards coord);
  (* The next admission on shard B already sees the new generation: the
     old-signed license fails signature verification at establishment. *)
  let after = ref `None in
  spawn_licensed w1 ~name:"after" ~credential (fun r ->
      after := (r :> [ `None | `Called | `Denied of Errno.t ]));
  World.run w1;
  Alcotest.(check bool) "old license denied on shard B" true
    (!after = `Denied Errno.EACCES)

let test_lazy_settles_within_one_epoch_check () =
  let coord, _w0, w1 = two_shard_cluster ~mode:Coordinator.Lazy () in
  let ks1 = Smod.keystore w1.World.smod in
  let sh1 = List.nth (Coordinator.shards coord) 1 in
  let credential = licensed_credential w1 in
  let gen0 = Keystore.generation ks1 in
  Coordinator.publish coord (Coordinator.Rotate_key { name = "vendor"; secret = "vk2" });
  (* Lazy: nothing applied yet — the shard is visibly stale. *)
  Alcotest.(check int) "generation unchanged at publish" gen0 (Keystore.generation ks1);
  Alcotest.(check bool) "shard epoch stale" true
    (Coordinator.shard_epoch sh1 < Coordinator.epoch coord);
  Alcotest.(check bool) "no propagation sample yet" true
    (Coordinator.propagation_us sh1 = []);
  (* The first dispatch after the publish — the admission itself — pays
     the epoch check, syncs, and therefore already runs under the new
     generation: the old license must be denied, never admitted. *)
  let after = ref `None in
  spawn_licensed w1 ~name:"stale" ~credential (fun r ->
      after := (r :> [ `None | `Called | `Denied of Errno.t ]));
  World.run w1;
  Alcotest.(check bool) "stale shard denies old license on first dispatch" true
    (!after = `Denied Errno.EACCES);
  Alcotest.(check int) "settled to the cluster epoch" (Coordinator.epoch coord)
    (Coordinator.shard_epoch sh1);
  Alcotest.(check int) "generation bumped by the sync" (gen0 + 1)
    (Keystore.generation ks1);
  Alcotest.(check bool) "propagation sampled at the sync" true
    (Coordinator.propagation_us sh1 <> [])

let test_no_batch_under_revoked_generation () =
  (* test_compile's establishment-vs-first-batch scenario, with the
     rotation arriving as a cluster publish in lazy mode: the victim's
     batch is the shard's first dispatch after the publish, so the gate
     syncs first and every slot re-verifies under the new generation. *)
  let coord, w0, _w1 =
    two_shard_cluster ~mode:Coordinator.Lazy ~pool:Smodd.default_config ()
  in
  let smod = w0.World.smod in
  Smod.set_policy_compile smod true;
  let entry = w0.World.libc_entry in
  let credential =
    Credential.make ~principal:"alice"
      ~assertions:[ signed_license (Smod.keystore smod) ]
      ()
  in
  let spawn name body =
    ignore
      (M.spawn w0.World.machine ~name (fun p ->
           Crt0.run_client smod p ~module_name:Smod_libc.Seclibc.module_name
             ~version:Smod_libc.Seclibc.version ~credential body))
  in
  spawn "warm" (fun conn -> ignore (Stub.call conn ~func:"test_incr" [| 1 |]));
  World.run w0;
  Alcotest.(check int) "program cached before the publish" 1
    (Hashtbl.length entry.Registry.compiled_cache);
  let inv0 = entry.Registry.compile_invalidations in
  let statuses = ref [] in
  spawn "victim" (fun conn ->
      (* Session established under the old generation; the publish lands
         before this session's first batch. *)
      Coordinator.publish coord
        (Coordinator.Rotate_key { name = "vendor"; secret = "vk2" });
      let rs = Stub.call_batch conn ~func:"test_incr" (List.init 4 (fun i -> [| i |])) in
      statuses := List.map (function Ok _ -> `Ok | Error (e, _) -> `Err e) rs);
  World.run w0;
  Alcotest.(check int) "4 slots" 4 (List.length !statuses);
  List.iteri
    (fun i s ->
      Alcotest.(check bool)
        (Printf.sprintf "slot %d denied under the revoked generation" i)
        true
        (s = `Err Errno.EACCES))
    !statuses;
  (* The sync evicted the warm program (the batch then recompiled under
     the new generation, so the cache is warm again — with a program
     that denies). *)
  Alcotest.(check bool) "eviction counted by the sync" true
    (entry.Registry.compile_invalidations > inv0)

(* ------------------------------------------------------------------ *)
(* Migration                                                           *)
(* ------------------------------------------------------------------ *)

let pool_config =
  {
    Smodd.default_config with
    max_handles_per_module = 8;
    max_total_handles = 8;
    max_queue_depth = 32;
  }

let park () = Effect.perform (Sched.Block (Sched.Custom "test-park"))

let test_migration_protocol () =
  let coord = Coordinator.create ~mode:Coordinator.Lazy () in
  let mk () =
    let world = World.create ~pool:pool_config ~with_rpc:false () in
    ignore (Coordinator.add_shard coord world.World.smod);
    world
  in
  let w0 = mk () in
  let w1 = mk () in
  let tenant =
    List.find (fun n -> Coordinator.route coord n = 0) (tenant_names 32)
  in
  for i = 1 to 3 do
    World.spawn_seclibc_client w0
      ~name:(Printf.sprintf "%s-c%d" tenant i)
      ~principal:tenant
      (fun p conn ->
        ignore (Smod_libc.Seclibc.Client.test_incr conn i);
        p.Proc.daemon <- true;
        park ())
  done;
  World.run w0;
  let sessions = Migrate.tenant_sessions w0.World.smod tenant in
  Alcotest.(check int) "3 live sessions on the source" 3 (List.length sessions);
  let mg = Migrate.start coord ~tenant ~to_shard:1 in
  Alcotest.(check string) "phase reattaching after start" "reattaching"
    (Coordinator.phase_name mg.Coordinator.mg_phase);
  Alcotest.(check int) "3 sessions drained" 3 mg.Coordinator.mg_sessions;
  Alcotest.(check int) "from shard 0" 0 mg.Coordinator.mg_from;
  Alcotest.(check int) "to shard 1" 1 mg.Coordinator.mg_to;
  Alcotest.(check int) "routers now point at the destination" 1
    (Coordinator.route coord tenant);
  Alcotest.(check bool) "override recorded" true
    (Coordinator.overrides coord = [ (tenant, 1) ]);
  Alcotest.(check int) "migration in flight" 1 (List.length (Coordinator.in_flight coord));
  (* Drain is the client-exit teardown — already idempotent. *)
  Smod.detach_session w0.World.smod (List.hd sessions);
  (* Let the pooled handles scrub and park; the tenant is gone. *)
  World.run w0;
  Alcotest.(check int) "source fully drained" 0
    (List.length (Migrate.tenant_sessions w0.World.smod tenant));
  (* Re-attach on the destination through ordinary pooled admission. *)
  let ok = ref false in
  World.spawn_seclibc_client w1 ~name:(tenant ^ "-moved") ~principal:tenant
    (fun _p conn ->
      ignore (Smod_libc.Seclibc.Client.test_incr conn 1);
      ok := true);
  World.run w1;
  Alcotest.(check bool) "re-attached on the destination" true !ok;
  Migrate.finish coord mg;
  Alcotest.(check string) "phase done" "done" (Coordinator.phase_name mg.Coordinator.mg_phase);
  Alcotest.(check int) "nothing in flight" 0 (List.length (Coordinator.in_flight coord));
  Alcotest.(check int) "history kept" 1 (List.length (Coordinator.migrations coord));
  (* Migrating to the shard the tenant is already on is refused. *)
  Alcotest.(check bool) "same-shard migration refused" true
    (match Migrate.start coord ~tenant ~to_shard:1 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_rebalance_shrinks_gap () =
  let coord = Coordinator.create ~mode:Coordinator.Lazy () in
  let mk () =
    let world = World.create ~with_rpc:false () in
    ignore (Coordinator.add_shard coord world.World.smod);
    world
  in
  let _w0 = mk () in
  let _w1 = mk () in
  let tenants = tenant_names 32 in
  (* All the weight on shard 0's ring-placed tenants: the greedy pass
     must move load-1 tenants to shard 1 until within one move of
     balance (each move shrinks the gap by 2). *)
  let load t = if Placement.place (Coordinator.ring coord) t = 0 then 1.0 else 0.0 in
  let gap () =
    let w = Array.make 2 0.0 in
    List.iter (fun t -> w.(Coordinator.route coord t) <- w.(Coordinator.route coord t) +. load t) tenants;
    Float.abs (w.(0) -. w.(1))
  in
  let gap0 = gap () in
  Alcotest.(check bool) "skewed to start" true (gap0 > 2.0);
  let migs = Migrate.rebalance coord ~tenants ~load in
  Alcotest.(check bool) "migrations started" true (migs <> []);
  Alcotest.(check bool)
    (Printf.sprintf "gap %.1f -> %.1f, within one move of balance" gap0 (gap ()))
    true
    (gap () <= 2.0);
  (* Conservative: re-running on the balanced cluster moves nothing. *)
  Alcotest.(check int) "idempotent once balanced" 0
    (List.length (Migrate.rebalance coord ~tenants ~load))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "cluster"
    [
      ( "placement",
        [
          tc "reshard churn bounded, movers land on the new shard" test_reshard_churn;
          tc "remove_shard inverts add_shard" test_remove_inverts_add;
          tc "p2c balance under zipf skew" test_p2c_balance;
          tc "pure across domains" test_pure_across_domains;
        ] );
      ( "coherence",
        [
          tc "eager: rotation visible before the next admission"
            test_eager_rotation_before_next_admission;
          tc "lazy: stale shard settles within one epoch check"
            test_lazy_settles_within_one_epoch_check;
          tc "no batch slot runs under a revoked generation"
            test_no_batch_under_revoked_generation;
        ] );
      ( "migration",
        [
          tc "drain, scrub, override, pooled re-attach" test_migration_protocol;
          tc "greedy rebalance shrinks the gap, then stops" test_rebalance_shrinks_gap;
        ] );
    ]
