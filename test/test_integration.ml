(* Integration tests: the paper's quantitative claims, asserted as shape
   constraints on the simulated measurements (see EXPERIMENTS.md for the
   paper-vs-measured record). *)

module M = Smod_kern.Machine
open Smod_bench_kit

let mini_config = { Figure8.smod_calls = 3_000; rpc_calls = 600; trials = 4; noise = 0.0 }

let figure8_rows = lazy (Figure8.run mini_config)

let row name =
  match
    List.find_opt (fun (r : Trial.row) -> r.Trial.spec.Trial.name = name) (Lazy.force figure8_rows)
  with
  | Some r -> r
  | None -> Alcotest.failf "row %s missing" name

let test_figure8_has_four_rows () =
  Alcotest.(check int) "rows" 4 (List.length (Lazy.force figure8_rows))

let test_getpid_near_paper () =
  let r = row "getpid()" in
  (* paper: 0.658 us; accept +-10% *)
  Alcotest.(check bool)
    (Printf.sprintf "%.3f in [0.59,0.73]" r.Trial.mean_us)
    true
    (r.Trial.mean_us > 0.59 && r.Trial.mean_us < 0.73)

let test_smod_vs_getpid_ratio () =
  let smod = row "SMOD(test-incr)" and getpid = row "getpid()" in
  let ratio = smod.Trial.mean_us /. getpid.Trial.mean_us in
  (* paper: 9.74x; the claim is "about 10x a syscall" *)
  Alcotest.(check bool) (Printf.sprintf "ratio %.2f in [7,13]" ratio) true
    (ratio > 7.0 && ratio < 13.0)

let test_rpc_vs_smod_ratio () =
  let rpc = row "RPC(test-incr)" and smod = row "SMOD(test-incr)" in
  let ratio = rpc.Trial.mean_us /. smod.Trial.mean_us in
  (* paper: 9.87x — "roughly 10 times faster than ... RPC" *)
  Alcotest.(check bool) (Printf.sprintf "ratio %.2f in [7,13]" ratio) true
    (ratio > 7.0 && ratio < 13.0)

let test_smod_getpid_slightly_slower () =
  let g = row "SMOD(SMOD-getpid)" and i = row "SMOD(test-incr)" in
  let gap = g.Trial.mean_us -. i.Trial.mean_us in
  (* paper: +0.125 us; assert positive and under 1 us *)
  Alcotest.(check bool) (Printf.sprintf "gap %.3f in (0, 1)" gap) true (gap > 0.0 && gap < 1.0)

let test_smod_absolute_band () =
  let smod = row "SMOD(test-incr)" in
  (* paper: 6.407 us; accept +-15% *)
  Alcotest.(check bool)
    (Printf.sprintf "%.3f in [5.4,7.4]" smod.Trial.mean_us)
    true
    (smod.Trial.mean_us > 5.4 && smod.Trial.mean_us < 7.4)

let test_rpc_absolute_band () =
  let rpc = row "RPC(test-incr)" in
  (* paper: 63.23 us; accept +-15% *)
  Alcotest.(check bool)
    (Printf.sprintf "%.2f in [53,73]" rpc.Trial.mean_us)
    true
    (rpc.Trial.mean_us > 53.0 && rpc.Trial.mean_us < 73.0)

let test_stdev_small_relative_to_mean () =
  List.iter
    (fun (r : Trial.row) ->
      Alcotest.(check bool)
        (r.Trial.spec.Trial.name ^ " cv < 10%")
        true
        (r.Trial.stdev_us /. r.Trial.mean_us < 0.10))
    (Lazy.force figure8_rows)

(* ------------------------------- E9 -------------------------------- *)

let test_policy_ablation_monotone () =
  let entries = Ablations.policy_ablation ~calls:400 ~trials:3 () in
  let find label =
    (List.find (fun (e : Ablations.entry) -> e.Ablations.label = label) entries)
      .Ablations.mean_us
  in
  Alcotest.(check bool) "quota >= always" true (find "call-quota" >= find "always-allow");
  Alcotest.(check bool) "keynote-1 > always" true (find "keynote-1" > find "always-allow");
  Alcotest.(check bool) "keynote-4 > keynote-1" true (find "keynote-4" > find "keynote-1");
  Alcotest.(check bool) "keynote-16 > keynote-4" true (find "keynote-16" > find "keynote-4");
  (* The section-5 prediction: the slowdown is roughly proportional to the
     number of assertions evaluated. *)
  let k1 = find "keynote-1" and k4 = find "keynote-4" and k16 = find "keynote-16" in
  let base = find "always-allow" in
  let per_assertion_4 = (k4 -. k1) /. 3.0 and per_assertion_16 = (k16 -. k4) /. 12.0 in
  ignore base;
  Alcotest.(check bool) "linear-ish in assertions" true
    (Float.abs (per_assertion_4 -. per_assertion_16) /. per_assertion_4 < 0.3)

(* ------------------------------- E10 ------------------------------- *)

let test_marshal_crossover () =
  let entries = Ablations.marshal_ablation ~calls:200 ~payload_sizes:[ 64; 65536 ] () in
  let find label =
    (List.find (fun (e : Ablations.entry) -> e.Ablations.label = label) entries)
      .Ablations.mean_us
  in
  let shared_small = find "shared-stack     64 B" and shared_big = find "shared-stack  65536 B" in
  let copy_small = find "copy-marshal     64 B" and copy_big = find "copy-marshal  65536 B" in
  (* Sharing is size-independent; copying grows dramatically. *)
  Alcotest.(check bool) "shared flat" true
    (Float.abs (shared_big -. shared_small) /. shared_small < 0.15);
  Alcotest.(check bool) "copying grows >10x" true (copy_big > copy_small *. 10.0);
  Alcotest.(check bool) "copying loses at 64k" true (copy_big > shared_big *. 5.0)

(* ------------------------------- E11 ------------------------------- *)

let test_protection_establishment_costs () =
  let entries = Ablations.protection_ablation ~text_sizes:[ 4096; 262144 ] ~trials:2 () in
  let find prefix size =
    (List.find
       (fun (e : Ablations.entry) ->
         e.Ablations.label = Printf.sprintf "%s %7d B text" prefix size)
       entries)
      .Ablations.mean_us
  in
  Alcotest.(check bool) "encryption costs more" true
    (find "encrypted" 4096 > find "unmap-only" 4096);
  (* AES work scales with text size much faster than the unmap path. *)
  let enc_growth = find "encrypted" 262144 /. find "encrypted" 4096 in
  let unmap_growth = find "unmap-only" 262144 /. find "unmap-only" 4096 in
  Alcotest.(check bool) "encrypted scales worse" true (enc_growth > unmap_growth *. 2.0)

(* ------------------------------- E12 ------------------------------- *)

let test_handle_sharing_queue_depth () =
  let entries = Ablations.handle_sharing ~clients:[ 1; 4 ] ~calls_per_client:100 () in
  let find label =
    (List.find (fun (e : Ablations.entry) -> e.Ablations.label = label) entries)
      .Ablations.mean_us
  in
  Alcotest.(check (float 0.001)) "private handles never queue" 0.0
    (find "4 clients, own handles");
  Alcotest.(check bool) "shared handle queues" true (find "4 clients, shared handle" > 0.5)

(* ------------------------------- E13 ------------------------------- *)

let test_toctou_costs_ordered () =
  let entries = Ablations.toctou_cost ~calls:300 ~trials:3 () in
  let find label =
    (List.find (fun (e : Ablations.entry) -> e.Ablations.label = label) entries)
      .Ablations.mean_us
  in
  let none = find "no mitigation" in
  let dequeue = find "dequeue client threads" in
  let unmap = find "unmap during call" in
  Alcotest.(check bool) "both mitigations cost something" true
    (dequeue > none && unmap > none);
  (* §4.4: dequeuing "has the benefit of lesser overhead for the kernel". *)
  Alcotest.(check bool) "dequeue cheaper than unmap" true (dequeue < unmap)

(* --------------------------- whole-system --------------------------- *)

let test_trace_example_sequence () =
  (* The Figure-1 sequence as an assertable event stream. *)
  let world = World.create ~with_rpc:false () in
  World.spawn_seclibc_client world ~name:"it-client" (fun _p conn ->
      ignore (Smod_libc.Seclibc.Client.malloc conn 16));
  World.run world;
  let labels = Smod_sim.Trace.labels (M.trace world.World.machine) in
  let has prefix =
    List.exists
      (fun l -> String.length l >= String.length prefix && String.sub l 0 (String.length prefix) = prefix)
      labels
  in
  Alcotest.(check bool) "forced fork traced" true (has "forced fork");
  Alcotest.(check bool) "start_session traced" true (has "start_session");
  Alcotest.(check bool) "session_info traced" true (has "session_info");
  Alcotest.(check bool) "detach traced" true (has "detach session")

let test_one_dispatch_metric_deltas () =
  (* One steady-state SMOD dispatch, counted by the lib/metrics
     instrumentation: the client traps once, the request and reply each
     cross a message queue (2 sends + 2 receives), the scheduler switches
     client->handle->client, the policy is checked once, and the handle
     runs at least one VM instruction. *)
  let counter name =
    match Smod_metrics.counter_value name with
    | Some v -> v
    | None -> Alcotest.failf "counter %s not registered" name
  in
  let watched =
    [
      "kern.context_switches";
      "kern.msgq_sends";
      "kern.msgq_recvs";
      "kern.syscalls";
      "secmodule.calls";
      "secmodule.policy_checks";
      "svm.instructions";
    ]
  in
  let deltas = ref [] in
  let world = World.create ~with_rpc:false () in
  World.spawn_seclibc_client world ~name:"metrics-client" (fun _p conn ->
      (* Warm up: session handshake and first-touch page faults happen
         here, leaving the measured call in steady state. *)
      ignore (Smod_libc.Seclibc.Client.test_incr conn 1);
      let before = List.map (fun n -> (n, counter n)) watched in
      ignore (Smod_libc.Seclibc.Client.test_incr conn 2);
      deltas := List.map (fun (n, b) -> (n, counter n - b)) before);
  World.run world;
  let delta name =
    match List.assoc_opt name !deltas with
    | Some d -> d
    | None -> Alcotest.failf "no delta for %s" name
  in
  Alcotest.(check int) "2 context switches" 2 (delta "kern.context_switches");
  Alcotest.(check int) "2 msgq sends" 2 (delta "kern.msgq_sends");
  Alcotest.(check int) "2 msgq recvs" 2 (delta "kern.msgq_recvs");
  Alcotest.(check int) "1 kernel trap" 1 (delta "kern.syscalls");
  Alcotest.(check int) "1 dispatched call" 1 (delta "secmodule.calls");
  Alcotest.(check int) "1 policy evaluation" 1 (delta "secmodule.policy_checks");
  Alcotest.(check bool)
    (Printf.sprintf "%d svm instructions > 0" (delta "svm.instructions"))
    true
    (delta "svm.instructions" > 0);
  (* The histogram saw exactly the calls this world dispatched. *)
  match Smod_metrics.histogram_sample "secmodule.call_us" with
  | None -> Alcotest.fail "secmodule.call_us not registered"
  | Some h -> Alcotest.(check bool) "call_us populated" true (h.Smod_metrics.hs_count >= 2)

let test_one_batch_metric_deltas () =
  (* The ring twin of "one dispatch, counted": a steady-state 16-call
     batch through the dispatch ring pays ONE trap, at most two context
     switches (client->handle->client), ONE policy evaluation, and zero
     message-queue traffic — the per-call costs the msgq path pays 16
     times over are amortised across the batch. *)
  let counter name =
    match Smod_metrics.counter_value name with
    | Some v -> v
    | None -> Alcotest.failf "counter %s not registered" name
  in
  let watched =
    [
      "kern.context_switches";
      "kern.msgq_sends";
      "kern.msgq_recvs";
      "kern.syscalls";
      "secmodule.calls";
      "secmodule.policy_checks";
      "ring.batches";
      "ring.submits";
    ]
  in
  let batch = 16 in
  let argss = List.init batch (fun i -> [| i |]) in
  let deltas = ref [] in
  let world = World.create ~with_rpc:false () in
  World.spawn_seclibc_client world ~name:"ring-metrics-client" (fun _p conn ->
      (* Warm up: arm the ring, bounce the handle out of the legacy
         msgrcv loop and fault in the pages; the measured batch then
         runs pure fast path. *)
      ignore (Secmodule.Stub.call_batch conn ~func:"test_incr" argss);
      let before = List.map (fun n -> (n, counter n)) watched in
      let results = Secmodule.Stub.call_batch conn ~func:"test_incr" argss in
      deltas := List.map (fun (n, b) -> (n, counter n - b)) before;
      List.iteri
        (fun i r ->
          match r with
          | Ok v -> Alcotest.(check int) (Printf.sprintf "slot %d" i) (i + 1) v
          | Error (_, m) -> Alcotest.failf "slot %d failed: %s" i m)
        results);
  World.run world;
  let delta name =
    match List.assoc_opt name !deltas with
    | Some d -> d
    | None -> Alcotest.failf "no delta for %s" name
  in
  Alcotest.(check int) "1 kernel trap for the whole batch" 1 (delta "kern.syscalls");
  Alcotest.(check bool)
    (Printf.sprintf "%d context switches <= 2" (delta "kern.context_switches"))
    true
    (delta "kern.context_switches" <= 2);
  Alcotest.(check int) "0 msgq sends on the fast path" 0 (delta "kern.msgq_sends");
  Alcotest.(check int) "0 msgq recvs on the fast path" 0 (delta "kern.msgq_recvs");
  Alcotest.(check int) "16 dispatched calls" batch (delta "secmodule.calls");
  Alcotest.(check int) "1 policy evaluation per batch" 1 (delta "secmodule.policy_checks");
  Alcotest.(check int) "1 ring batch" 1 (delta "ring.batches");
  Alcotest.(check int) "16 ring submits" batch (delta "ring.submits")

let test_ring_beats_msgq () =
  (* The E18 headline, asserted as a test: at batch 16 the ring is at
     least 3x faster per call than the legacy msgq transport, in the
     same world on the same clock. *)
  let world = World.create ~with_rpc:false () in
  let clock = M.clock world.World.machine in
  let batch = 16 and rounds = 30 in
  let argss = List.init batch (fun i -> [| i |]) in
  let msgq_us = ref 0.0 and ring_us = ref 0.0 in
  World.spawn_seclibc_client world ~name:"ring-race-client" (fun _p conn ->
      let time f =
        let t0 = Smod_sim.Clock.now_cycles clock in
        for _ = 1 to rounds do
          f ()
        done;
        Smod_sim.Clock.elapsed_us clock ~since:t0 /. float_of_int (rounds * batch)
      in
      (* Warm both paths before timing either. *)
      ignore (Smod_libc.Seclibc.Client.test_incr conn 1);
      msgq_us :=
        time (fun () ->
            List.iter
              (fun args -> ignore (Secmodule.Stub.call conn ~func:"test_incr" args))
              argss);
      ignore (Secmodule.Stub.call_batch conn ~func:"test_incr" argss);
      ring_us :=
        time (fun () -> ignore (Secmodule.Stub.call_batch conn ~func:"test_incr" argss)));
  World.run world;
  let ratio = !msgq_us /. !ring_us in
  Alcotest.(check bool)
    (Printf.sprintf "msgq %.3f us / ring %.3f us = %.2fx >= 3x" !msgq_us !ring_us ratio)
    true (ratio >= 3.0)

let test_many_sessions_frames_released () =
  (* Repeated session open/close must not leak physical frames. *)
  let world = World.create ~with_rpc:false () in
  let m = world.World.machine in
  let baseline = ref 0 in
  for round = 1 to 5 do
    World.spawn_seclibc_client world ~name:(Printf.sprintf "round-%d" round)
      (fun _p conn -> ignore (Smod_libc.Seclibc.Client.malloc conn 128));
    World.run world;
    let live = Smod_vmem.Phys.live_frames (M.phys m) in
    if round = 1 then baseline := live
    else
      Alcotest.(check bool)
        (Printf.sprintf "round %d: %d frames vs baseline %d" round live !baseline)
        true
        (live <= !baseline + 8)
  done

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "integration"
    [
      ( "figure8 shape",
        [
          tc "four rows" test_figure8_has_four_rows;
          tc "getpid near paper" test_getpid_near_paper;
          tc "SMOD ~10x getpid" test_smod_vs_getpid_ratio;
          tc "RPC ~10x SMOD" test_rpc_vs_smod_ratio;
          tc "SMOD-getpid slightly slower" test_smod_getpid_slightly_slower;
          tc "SMOD absolute band" test_smod_absolute_band;
          tc "RPC absolute band" test_rpc_absolute_band;
          tc "stdev sane" test_stdev_small_relative_to_mean;
        ] );
      ( "ablations",
        [
          tc "E9 policy monotone + linear" test_policy_ablation_monotone;
          tc "E10 marshal crossover" test_marshal_crossover;
          tc "E11 protection costs" test_protection_establishment_costs;
          tc "E12 shared-handle queueing" test_handle_sharing_queue_depth;
          tc "E13 mitigation costs ordered" test_toctou_costs_ordered;
        ] );
      ( "whole system",
        [
          tc "figure-1 trace sequence" test_trace_example_sequence;
          tc "one dispatch, counted" test_one_dispatch_metric_deltas;
          tc "one batch, counted (ring twin)" test_one_batch_metric_deltas;
          tc "ring >= 3x msgq at batch 16" test_ring_beats_msgq;
          tc "no frame leaks across sessions" test_many_sessions_frames_released;
        ] );
    ]
