(* Dispatch-ring tests (PR 3): SPSC slot lifecycle and wrap handling at
   the unit level, then the end-to-end batched fast path — including the
   trust-model cases (kernel re-zero at setup, forged verdicts, denied
   slots failing alone) and the setup syscall's validation. *)

module M = Smod_kern.Machine
module Proc = Smod_kern.Proc
module Errno = Smod_kern.Errno
module Sysno = Smod_kern.Sysno
module Aspace = Smod_vmem.Aspace
module Layout = Smod_vmem.Layout
module Ring = Smod_ring.Ring
open Smod_bench_kit
open Secmodule

(* ---------------------------- unit level ---------------------------- *)

let mk_aspace ?(nslots = 4) () =
  let m = M.create () in
  let a = M.standard_aspace m ~name:"ring-test" in
  let base = (Aspace.brk a + 63) land lnot 63 in
  Aspace.obreak a (base + Ring.size_bytes ~nslots);
  (a, base)

let test_slot_lifecycle () =
  let a, base = mk_aspace () in
  let r = Ring.init a ~base ~nslots:4 in
  Alcotest.(check int) "empty" 0 (Ring.occupancy r);
  let seq = Ring.try_submit r ~m_id:1 ~func_id:7 ~client_sp:0 ~client_fp:0 ~args:[| 41 |] in
  Alcotest.(check (option int)) "first seq is 0" (Some 0) seq;
  Ring.stamp r ~seq:0 ~allow:true;
  (* The handle claims with the identity the kernel recorded at stamp
     time (here: the test playing the kernel) — never from the slot. *)
  let slot = Ring.claim_stamped r ~seq:0 ~m_id:1 ~func_id:7 in
  Alcotest.(check int) "func id" 7 slot.Ring.func_id;
  Alcotest.(check int) "nargs" 1 slot.Ring.nargs;
  Alcotest.(check int) "arg inline" 41 (Aspace.read_word a ~addr:slot.Ring.args_base);
  Ring.complete r ~seq:slot.Ring.seq ~status:0 ~retval:42;
  (match Ring.reap r with
  | Some (0, 0, 42) -> ()
  | Some (seq, st, rv) -> Alcotest.failf "reap got (%d,%d,%d)" seq st rv
  | None -> Alcotest.fail "reap found nothing");
  Alcotest.(check int) "empty again" 0 (Ring.occupancy r)

let test_wrap_and_full () =
  let a, base = mk_aspace () in
  let r = Ring.init a ~base ~nslots:4 in
  (* Push 10 calls through a 4-slot ring, one in flight at a time past
     the first fill: sequence numbers grow monotonically while slot
     indices wrap. *)
  for seq = 0 to 9 do
    (match Ring.try_submit r ~m_id:1 ~func_id:0 ~client_sp:0 ~client_fp:0 ~args:[| seq |] with
    | Some s -> Alcotest.(check int) "monotonic seq" seq s
    | None -> Alcotest.failf "ring full at seq %d" seq);
    Ring.stamp r ~seq ~allow:true;
    let slot = Ring.claim_stamped r ~seq ~m_id:1 ~func_id:0 in
    Ring.complete r ~seq:slot.Ring.seq ~status:0 ~retval:(100 + seq);
    match Ring.reap r with
    | Some (s, 0, rv) ->
        Alcotest.(check int) "in-order reap" seq s;
        Alcotest.(check int) "retval" (100 + seq) rv
    | _ -> Alcotest.failf "reap failed at seq %d" seq
  done;
  (* Fill it completely: the 5th concurrent submit must refuse. *)
  for i = 0 to 3 do
    match Ring.try_submit r ~m_id:1 ~func_id:0 ~client_sp:0 ~client_fp:0 ~args:[| i |] with
    | Some _ -> ()
    | None -> Alcotest.failf "submit %d refused with space left" i
  done;
  Alcotest.(check bool) "full ring refuses" true
    (Ring.try_submit r ~m_id:1 ~func_id:0 ~client_sp:0 ~client_fp:0 ~args:[||] = None);
  Alcotest.(check int) "stale submissions visible" 4 (Ring.stale_submitted r)

let test_kernel_complete_skipped_by_claim () =
  let a, base = mk_aspace () in
  let r = Ring.init a ~base ~nslots:4 in
  ignore (Ring.try_submit r ~m_id:1 ~func_id:0 ~client_sp:0 ~client_fp:0 ~args:[||]);
  ignore (Ring.try_submit r ~m_id:1 ~func_id:1 ~client_sp:0 ~client_fp:0 ~args:[||]);
  (* Kernel denies slot 0, allows slot 1: the denied slot never reaches
     the handle (its claim walks the kernel shadow, which skips it), yet
     the client still reaps both in order, the denial first. *)
  Ring.kernel_complete r ~seq:0 ~status:6;
  Ring.stamp r ~seq:1 ~allow:true;
  let slot = Ring.claim_stamped r ~seq:1 ~m_id:1 ~func_id:1 in
  Alcotest.(check int) "claimed past denial" 1 slot.Ring.seq;
  Ring.complete r ~seq:1 ~status:0 ~retval:0;
  (match Ring.reap r with
  | Some (0, 6, _) -> ()
  | _ -> Alcotest.fail "denied slot not reaped first");
  match Ring.reap r with
  | Some (1, 0, _) -> ()
  | _ -> Alcotest.fail "completed slot not reaped second"

(* The claim discipline — refuse unstamped, skip denied, never hand out
   the same seq twice — lives in the kernel-private shadow, where a
   client rewriting ring words (or rewinding the shared claim-cursor
   word) cannot reach it. *)
let test_shadow_claim_discipline () =
  let machine = M.create () in
  let checked = ref false in
  ignore
    (M.spawn machine ~name:"shadow-probe" (fun p ->
         let base = (Aspace.brk p.Proc.aspace + 63) land lnot 63 in
         Aspace.obreak p.Proc.aspace (base + Ring.size_bytes ~nslots:4);
         ignore (M.syscall machine p Sysno.smod_ring_setup [| base; 4 |]);
         let pid = p.Proc.pid in
         Alcotest.(check bool) "nothing claimable before any stamp" false
           (M.ring_claimable machine ~pid);
         Alcotest.(check bool) "claim refuses unstamped" true
           (M.ring_claim_next machine ~pid = None);
         (* Kernel denies seq 0 and allows seq 1. *)
         M.ring_record_stamp machine ~pid ~seq:0 ~m_id:1 ~func_id:9 ~allow:false;
         M.ring_record_stamp machine ~pid ~seq:1 ~m_id:1 ~func_id:7 ~allow:true;
         Alcotest.(check bool) "work visible" true (M.ring_claimable machine ~pid);
         (match M.ring_claim_next machine ~pid with
         | Some (1, 1, 7) -> ()
         | Some (s, m, f) -> Alcotest.failf "claimed (%d,%d,%d)" s m f
         | None -> Alcotest.fail "allow-stamped slot not claimable");
         (* Replay: the claim cursor is kernel-private and only moves
            forward — an executed seq can never be handed out again. *)
         Alcotest.(check bool) "no replay" true (M.ring_claim_next machine ~pid = None);
         Alcotest.(check bool) "drained" false (M.ring_claimable machine ~pid);
         checked := true));
  M.run machine;
  Alcotest.(check bool) "probe ran" true !checked

(* ------------------------- setup validation ------------------------- *)

let setup_errno body =
  let machine = M.create () in
  let result = ref None in
  ignore
    (M.spawn machine ~name:"setup-probe" (fun p ->
         result :=
           Some
             (try
                ignore (M.syscall machine p Sysno.smod_ring_setup (body p));
                Ok ()
              with Errno.Error (e, _) -> Error e)));
  M.run machine;
  match !result with Some r -> r | None -> Alcotest.fail "probe never ran"

let test_setup_validation () =
  (* Outside the share window: the kernel would be stamping into memory
     the handle can never see. *)
  Alcotest.(check bool) "text-segment base refused" true
    (setup_errno (fun _p -> [| Layout.text_base; 8 |]) = Error Errno.EINVAL);
  Alcotest.(check bool) "misaligned base refused" true
    (setup_errno (fun _p -> [| Layout.data_base + 2; 8 |]) = Error Errno.EINVAL);
  Alcotest.(check bool) "zero slots refused" true
    (setup_errno (fun _p -> [| Layout.data_base; 0 |]) = Error Errno.EINVAL);
  Alcotest.(check bool) "oversized ring refused" true
    (setup_errno (fun _p -> [| Layout.data_base; M.max_ring_slots + 1 |]) = Error Errno.EINVAL);
  (* Inside the window but unmapped. *)
  Alcotest.(check bool) "unmapped base refused" true
    (setup_errno (fun _p -> [| Layout.data_base + 0x0100_0000; 8 |]) = Error Errno.EFAULT);
  (* A mapped, aligned, in-window ring registers fine. *)
  Alcotest.(check bool) "valid ring accepted" true
    (setup_errno (fun p ->
         let base = (Aspace.brk p.Proc.aspace + 63) land lnot 63 in
         Aspace.obreak p.Proc.aspace (base + Ring.size_bytes ~nslots:8);
         [| base; 8 |])
    = Ok ())

let test_setup_rezeroes () =
  (* Nothing the client pre-writes into the ring region survives
     registration: a pre-faked head/verdict is erased kernel-side. *)
  let machine = M.create () in
  let checked = ref false in
  ignore
    (M.spawn machine ~name:"rezero-probe" (fun p ->
         let base = (Aspace.brk p.Proc.aspace + 63) land lnot 63 in
         Aspace.obreak p.Proc.aspace (base + Ring.size_bytes ~nslots:8);
         let r = Ring.init p.Proc.aspace ~base ~nslots:8 in
         ignore (Ring.try_submit r ~m_id:9 ~func_id:9 ~client_sp:0 ~client_fp:0 ~args:[| 9 |]);
         Aspace.write_word p.Proc.aspace ~addr:(base + 8) 5 (* forged head *);
         ignore (M.syscall machine p Sysno.smod_ring_setup [| base; 8 |]);
         (match Ring.attach p.Proc.aspace ~base with
         | None -> Alcotest.fail "re-armed ring header unreadable"
         | Some r' ->
             Alcotest.(check int) "head reset" 0 (Ring.head r');
             Alcotest.(check int) "occupancy reset" 0 (Ring.occupancy r'));
         Alcotest.(check int) "stamped cursor starts at 0" 0
           (M.ring_stamped machine ~pid:p.Proc.pid);
         checked := true));
  M.run machine;
  Alcotest.(check bool) "probe ran" true !checked

(* ------------------------- end-to-end batches ------------------------ *)

let ok_or_fail i = function
  | Ok v -> v
  | Error (_, m) -> Alcotest.failf "slot %d failed: %s" i m

let test_batch_end_to_end () =
  let world = World.create ~with_rpc:false () in
  let results = ref [] in
  World.spawn_seclibc_client world ~name:"ring-client" (fun _p conn ->
      let inputs = List.init 16 (fun i -> [| i |]) in
      results := Stub.call_batch conn ~func:"test_incr" inputs);
  World.run world;
  Alcotest.(check int) "16 results" 16 (List.length !results);
  List.iteri
    (fun i r -> Alcotest.(check int) (Printf.sprintf "slot %d" i) (i + 1) (ok_or_fail i r))
    !results

let test_batch_chunks_over_small_ring () =
  (* 10 calls through a 4-slot ring: three traps, same results. *)
  let world = World.create ~with_rpc:false () in
  let results = ref [] in
  World.spawn_seclibc_client world ~name:"chunk-client" (fun _p conn ->
      ignore (Stub.arm_ring ~nslots:4 conn);
      results := Stub.call_batch conn ~func:"test_incr" (List.init 10 (fun i -> [| i * 3 |])));
  World.run world;
  Alcotest.(check int) "10 results" 10 (List.length !results);
  List.iteri
    (fun i r ->
      Alcotest.(check int) (Printf.sprintf "slot %d" i) ((i * 3) + 1) (ok_or_fail i r))
    !results

let test_mixed_ring_and_msgq () =
  (* A ring-engaged handle still serves plain msgq calls: batch, then a
     legacy call, then another batch, all on one session. *)
  let world = World.create ~with_rpc:false () in
  let ok = ref false in
  World.spawn_seclibc_client world ~name:"mixed-client" (fun _p conn ->
      let r1 = Stub.call_batch conn ~func:"test_incr" [ [| 1 |]; [| 2 |] ] in
      let legacy = Stub.call conn ~func:"test_incr" [| 10 |] in
      let r2 = Stub.call_batch conn ~func:"test_incr" [ [| 20 |] ] in
      Alcotest.(check (list int)) "first batch" [ 2; 3 ]
        (List.mapi ok_or_fail r1);
      Alcotest.(check int) "legacy call between batches" 11 legacy;
      Alcotest.(check (list int)) "second batch" [ 21 ] (List.mapi ok_or_fail r2);
      ok := true);
  World.run world;
  Alcotest.(check bool) "client finished" true !ok

let test_stateful_policy_denies_per_slot () =
  (* Call_quota is stateful, so the batch path evaluates it per slot:
     the first 3 slots pass, the last 2 fail alone with EACCES — the
     batch itself succeeds. *)
  let world = World.create ~with_rpc:false ~policy:(Policy.Call_quota 3) () in
  let results = ref [] in
  World.spawn_seclibc_client world ~name:"quota-client" (fun _p conn ->
      results := Stub.call_batch conn ~func:"test_incr" (List.init 5 (fun i -> [| i |])));
  World.run world;
  let statuses =
    List.map (function Ok _ -> `Ok | Error (e, _) -> `Err e) !results
  in
  Alcotest.(check int) "5 results" 5 (List.length statuses);
  List.iteri
    (fun i s ->
      if i < 3 then Alcotest.(check bool) (Printf.sprintf "slot %d allowed" i) true (s = `Ok)
      else
        Alcotest.(check bool)
          (Printf.sprintf "slot %d denied EACCES" i)
          true
          (s = `Err Errno.EACCES))
    statuses

let test_forged_verdict_overwritten () =
  (* The client stamps its own slot "allowed" before trapping; the
     session's quota is already exhausted, so policy denies the slot.
     The kernel must rewrite the verdict: the forged allow never reaches
     the handle. *)
  let world = World.create ~with_rpc:false ~policy:(Policy.Call_quota 1) () in
  let results = ref [] in
  World.spawn_seclibc_client world ~name:"forger" (fun p conn ->
      (* Consume the quota on the legacy path. *)
      ignore (Stub.call conn ~func:"test_incr" [| 0 |]);
      (* Submit one slot by hand so we can forge before the trap. *)
      let r = Stub.arm_ring conn in
      ignore
        (Ring.try_submit r
           ~m_id:(Stub.conn_info conn).Wire.m_id
           ~func_id:0 ~client_sp:p.Proc.sp ~client_fp:p.Proc.fp ~args:[| 1 |]);
      (* verdict word of slot 0: header (32 B) + 4 words in. *)
      Aspace.write_word p.Proc.aspace ~addr:(Ring.base r + 32 + 16) 1;
      ignore
        (M.syscall world.World.machine p Sysno.smod_call_batch
           [| (Stub.conn_info conn).Wire.m_id; 1 |]);
      match Ring.reap r with
      | Some (_, status, _) -> results := [ status ]
      | None -> ());
  World.run world;
  Alcotest.(check (list int)) "forged slot denied kernel-side" [ 6 ] !results

(* Busy-reap from a raw client ring view, yielding so the handle runs. *)
let rec reap_yielding r budget =
  if budget = 0 then Alcotest.fail "no completion arrived"
  else
    match Ring.reap r with
    | Some (_seq, status, retval) -> (status, retval)
    | None ->
        Smod_kern.Sched.yield ();
        reap_yielding r (budget - 1)

let test_func_swap_after_stamp_ignored () =
  (* TOCTOU on the identity words: the client submits test_incr (func 0),
     lets the kernel stamp it allowed, then rewrites the slot to abs
     (func 1) and re-forges verdict/state before the handle runs.  The
     handle must execute what was admitted — test_incr(41) = 42, not
     abs(41) = 41. *)
  let world = World.create ~with_rpc:false () in
  let results = ref [] in
  World.spawn_seclibc_client world ~name:"func-swapper" (fun p conn ->
      let r = Stub.arm_ring conn in
      let m_id = (Stub.conn_info conn).Wire.m_id in
      Alcotest.(check (option int)) "abs is func 1" (Some 1) (Stub.func_id conn "abs");
      ignore
        (Ring.try_submit r ~m_id ~func_id:0 ~client_sp:p.Proc.sp ~client_fp:p.Proc.fp
           ~args:[| 41 |]);
      ignore
        (M.syscall world.World.machine p Sysno.smod_call_batch [| m_id; 1 |]);
      (* Slot 0 sits at header (32 B): state +0, func +12, verdict +16;
         shared claim-cursor word is header word 3. *)
      Aspace.write_word p.Proc.aspace ~addr:(Ring.base r + 32 + 12) 1;
      Aspace.write_word p.Proc.aspace ~addr:(Ring.base r + 32 + 16) 1;
      Aspace.write_word p.Proc.aspace ~addr:(Ring.base r + 32) 1;
      Aspace.write_word p.Proc.aspace ~addr:(Ring.base r + 12) 0;
      results := [ reap_yielding r 10_000 ]);
  World.run world;
  match !results with
  | [ (0, 42) ] -> ()
  | [ (st, rv) ] -> Alcotest.failf "swapped slot returned (%d,%d), wanted (0,42)" st rv
  | _ -> Alcotest.fail "no result"

let test_header_nslots_forgery_rejected () =
  (* Growing the header's nslots word after setup must not widen the
     kernel/handle view past the registered, validated region: the batch
     trap refuses the mismatched header outright. *)
  let world = World.create ~with_rpc:false () in
  let err = ref None in
  World.spawn_seclibc_client world ~name:"geom-forger" (fun p conn ->
      let r = Stub.arm_ring conn in
      let m_id = (Stub.conn_info conn).Wire.m_id in
      ignore
        (Ring.try_submit r ~m_id ~func_id:0 ~client_sp:p.Proc.sp ~client_fp:p.Proc.fp
           ~args:[| 1 |]);
      Aspace.write_word p.Proc.aspace ~addr:(Ring.base r + 4) 65536;
      match M.syscall world.World.machine p Sysno.smod_call_batch [| m_id; 1 |] with
      | _ -> err := Some `No_error
      | exception Errno.Error (e, _) -> err := Some (`Errno e));
  World.run world;
  Alcotest.(check bool) "batch refused with EINVAL" true
    (!err = Some (`Errno Errno.EINVAL))

let test_forged_head_bounded () =
  (* A forged head of 2^20 plus a huge max_slots must not drive one trap
     through a 2^20-iteration kernel loop: per-trap work is clamped by
     the registered slot count. *)
  let world = World.create ~with_rpc:false () in
  let stamped = ref (-1) in
  World.spawn_seclibc_client world ~name:"head-forger" (fun p conn ->
      let r = Stub.arm_ring ~nslots:4 conn in
      let m_id = (Stub.conn_info conn).Wire.m_id in
      ignore
        (Ring.try_submit r ~m_id ~func_id:0 ~client_sp:p.Proc.sp ~client_fp:p.Proc.fp
           ~args:[| 1 |]);
      Aspace.write_word p.Proc.aspace ~addr:(Ring.base r + 8) 0x100000;
      stamped :=
        M.syscall world.World.machine p Sysno.smod_call_batch [| m_id; 0x40000000 |]);
  World.run world;
  Alcotest.(check int) "one trap covers at most nslots slots" 4 !stamped

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ring"
    [
      ( "spsc ring",
        [
          tc "slot lifecycle" test_slot_lifecycle;
          tc "wrap + full" test_wrap_and_full;
          tc "claim skips kernel-completed" test_kernel_complete_skipped_by_claim;
          tc "shadow claim discipline" test_shadow_claim_discipline;
        ] );
      ( "setup syscall",
        [
          tc "validation" test_setup_validation;
          tc "re-zeroes client writes" test_setup_rezeroes;
        ] );
      ( "batched dispatch",
        [
          tc "end-to-end" test_batch_end_to_end;
          tc "chunking over a small ring" test_batch_chunks_over_small_ring;
          tc "mixed ring + msgq" test_mixed_ring_and_msgq;
          tc "stateful policy denies per-slot" test_stateful_policy_denies_per_slot;
          tc "forged verdict overwritten" test_forged_verdict_overwritten;
          tc "func swap after stamp ignored" test_func_swap_after_stamp_ignored;
          tc "header nslots forgery rejected" test_header_nslots_forgery_rejected;
          tc "forged head bounded" test_forged_head_bounded;
        ] );
    ]
