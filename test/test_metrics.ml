(* lib/metrics semantics, the hand-rolled JSON layer underneath the bench
   artifacts, and the benchdiff drift gate. *)

module Metrics = Smod_metrics
module Json = Smod_util.Json
module Bench_json = Smod_bench_kit.Bench_json

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

let test_counter_basics () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "test.counter" in
  Alcotest.(check int) "starts at zero" 0 (Metrics.Counter.value c);
  Metrics.Counter.incr c;
  Metrics.Counter.add c 41;
  Alcotest.(check int) "incr + add" 42 (Metrics.Counter.value c);
  Alcotest.check_raises "negative add rejected"
    (Invalid_argument "Counter.add test.counter: counters are monotonic") (fun () ->
      Metrics.Counter.add c (-1))

let test_counter_find_or_create () =
  let r = Metrics.create () in
  let a = Metrics.counter ~registry:r "x.same" in
  Metrics.Counter.add a 7;
  let b = Metrics.counter ~registry:r "x.same" in
  Alcotest.(check int) "same instrument" 7 (Metrics.Counter.value b);
  Alcotest.(check bool) "cross-kind rejected" true
    (try
       ignore (Metrics.histogram ~registry:r "x.same");
       false
     with Invalid_argument _ -> true)

let test_scope_naming () =
  let r = Metrics.create () in
  let s = Metrics.Scope.sub (Metrics.scope ~registry:r "kern") "msgq" in
  let c = Metrics.Scope.counter s "sends" in
  Metrics.Counter.incr c;
  Alcotest.(check (option int)) "dotted name" (Some 1)
    (Metrics.counter_value ~registry:r "kern.msgq.sends")

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

let test_histogram_buckets () =
  let r = Metrics.create () in
  let h = Metrics.histogram ~registry:r ~edges:[| 1.0; 10.0; 100.0 |] "test.hist" in
  (* bucket i holds v <= edges.(i); the last bucket is overflow *)
  List.iter (Metrics.Histogram.observe h) [ 0.5; 1.0; 5.0; 100.0; 1000.0 ];
  Alcotest.(check (array int)) "bucket counts" [| 2; 1; 1; 1 |] (Metrics.Histogram.bucket_counts h);
  Alcotest.(check int) "count" 5 (Metrics.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 1106.5 (Metrics.Histogram.sum h);
  Alcotest.(check (float 1e-9)) "mean" (1106.5 /. 5.0) (Metrics.Histogram.mean h)

let test_snapshot_delta_reset () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "a.count" in
  let h = Metrics.histogram ~registry:r ~edges:[| 1.0 |] "b.hist" in
  Metrics.Counter.add c 5;
  Metrics.Histogram.observe h 0.5;
  let before = Metrics.snapshot ~registry:r () in
  Metrics.Counter.add c 3;
  Metrics.Histogram.observe h 2.0;
  let after = Metrics.snapshot ~registry:r () in
  (match Metrics.delta ~before ~after with
  | [ ("a.count", Metrics.Counter_sample d); ("b.hist", Metrics.Histogram_sample hs) ] ->
      Alcotest.(check int) "counter delta" 3 d;
      Alcotest.(check int) "histogram count delta" 1 hs.Metrics.hs_count;
      Alcotest.(check (array int)) "histogram bucket delta" [| 0; 1 |] hs.Metrics.hs_counts
  | _ -> Alcotest.fail "unexpected delta shape");
  Metrics.reset ~registry:r ();
  Alcotest.(check (option int)) "reset keeps registration" (Some 0)
    (Metrics.counter_value ~registry:r "a.count");
  Alcotest.(check int) "live handle still works" 0 (Metrics.Counter.value c)

(* ------------------------------------------------------------------ *)
(* Merge (the parallel-runner combining step)                          *)
(* ------------------------------------------------------------------ *)

let test_merge_counters () =
  let worker = Metrics.create () in
  Metrics.Counter.add (Metrics.counter ~registry:worker "m.calls") 7;
  Metrics.Counter.add (Metrics.counter ~registry:worker "m.fresh") 3;
  let root = Metrics.create () in
  Metrics.Counter.add (Metrics.counter ~registry:root "m.calls") 10;
  Metrics.merge ~registry:root (Metrics.snapshot ~registry:worker ());
  Alcotest.(check (option int)) "existing counter sums" (Some 17)
    (Metrics.counter_value ~registry:root "m.calls");
  Alcotest.(check (option int)) "absent counter created" (Some 3)
    (Metrics.counter_value ~registry:root "m.fresh")

let test_merge_histograms () =
  let edges = [| 1.0; 2.0; 4.0 |] in
  let worker = Metrics.create () in
  let hw = Metrics.histogram ~registry:worker ~edges "m.lat" in
  List.iter (Metrics.Histogram.observe hw) [ 0.5; 1.5; 3.0; 10.0 ];
  let root = Metrics.create () in
  let hr = Metrics.histogram ~registry:root ~edges "m.lat" in
  List.iter (Metrics.Histogram.observe hr) [ 0.5; 0.7 ];
  Metrics.merge ~registry:root (Metrics.snapshot ~registry:worker ());
  Alcotest.(check (array int)) "buckets add element-wise" [| 3; 1; 1; 1 |]
    (Metrics.Histogram.bucket_counts hr);
  Alcotest.(check int) "count adds" 6 (Metrics.Histogram.count hr);
  Alcotest.(check (float 1e-9)) "sum adds" 16.2 (Metrics.Histogram.sum hr)

let test_merge_quantile_agrees () =
  (* Quantiles over a merged histogram equal quantiles over one histogram
     fed the union of observations. *)
  let edges = [| 1.0; 2.0; 4.0 |] in
  let obs_a = [ 0.2; 0.4; 1.2; 1.4 ] and obs_b = [ 0.6; 0.8; 1.6; 1.8; 2.5; 3.5 ] in
  let part name obs =
    let r = Metrics.create () in
    List.iter (Metrics.Histogram.observe (Metrics.histogram ~registry:r ~edges name)) obs;
    r
  in
  let root = Metrics.create () in
  Metrics.merge ~registry:root (Metrics.snapshot ~registry:(part "q" obs_a) ());
  Metrics.merge ~registry:root (Metrics.snapshot ~registry:(part "q" obs_b) ());
  let whole = Metrics.create () in
  let hw = Metrics.histogram ~registry:whole ~edges "q" in
  List.iter (Metrics.Histogram.observe hw) (obs_a @ obs_b);
  let merged = Option.get (Metrics.histogram_sample ~registry:root "q") in
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "p%.0f" (p *. 100.0))
        (Metrics.Histogram.quantile hw p)
        (Metrics.snapshot_quantile merged p))
    [ 0.1; 0.5; 0.9; 0.99 ]

let test_merge_rejects_mismatched_edges () =
  let worker = Metrics.create () in
  ignore (Metrics.histogram ~registry:worker ~edges:[| 1.0; 2.0 |] "m.lat");
  let root = Metrics.create () in
  ignore (Metrics.histogram ~registry:root ~edges:[| 1.0; 8.0 |] "m.lat");
  Alcotest.(check bool) "edge mismatch raises" true
    (try
       Metrics.merge ~registry:root (Metrics.snapshot ~registry:worker ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Domain-local registries and the single-owner discipline             *)
(* ------------------------------------------------------------------ *)

let test_with_registry_swaps_current () =
  let outer = Metrics.current () in
  let r = Metrics.create () in
  Metrics.with_registry r (fun () ->
      Alcotest.(check bool) "current is the wrapped registry" true (Metrics.current () == r);
      (* A dynamic handle resolves against the swapped-in registry. *)
      Metrics.Counter.incr (Metrics.counter "dls.count"));
  Alcotest.(check bool) "current restored" true (Metrics.current () == outer);
  Alcotest.(check (option int)) "update landed in the wrapped registry" (Some 1)
    (Metrics.counter_value ~registry:r "dls.count");
  Alcotest.(check (option int)) "outer registry untouched" None
    (Metrics.counter_value "dls.count");
  (* The restore also runs on exceptions. *)
  (try Metrics.with_registry (Metrics.create ()) (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check bool) "restored after raise" true (Metrics.current () == outer)

let test_fresh_domain_gets_own_registry () =
  let c = Metrics.counter "domain.count" in
  Metrics.Counter.add c 5;
  let worker_snapshot =
    Domain.join
      (Domain.spawn (fun () ->
           (* Same module-level handle, different domain: a fresh registry,
              so the counter restarts at zero here. *)
           Alcotest.(check int) "worker sees zero" 0 (Metrics.Counter.value c);
           Metrics.Counter.incr c;
           Metrics.snapshot ()))
  in
  Alcotest.(check int) "main domain unaffected" 5 (Metrics.Counter.value c);
  (match worker_snapshot with
  | [ ("domain.count", Metrics.Counter_sample 1) ] -> ()
  | _ -> Alcotest.fail "unexpected worker snapshot");
  Metrics.merge worker_snapshot;
  Alcotest.(check int) "merge combines the worlds" 6 (Metrics.Counter.value c)

let test_cross_domain_mutation_rejected () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "owned.count" in
  Metrics.Counter.incr c;
  (* The main domain owns [r] now; a pinned handle used from another
     domain must raise rather than race. *)
  let raised =
    Domain.join
      (Domain.spawn (fun () ->
           try
             Metrics.Counter.incr c;
             false
           with Invalid_argument _ -> true))
  in
  Alcotest.(check bool) "other domain rejected" true raised;
  Alcotest.(check int) "count unchanged" 1 (Metrics.Counter.value c);
  (* Ownership transfers only through a release: exiting with_registry on
     the owner leaves the registry unclaimed, another domain may then
     claim it, and its own exit hands it back. *)
  Metrics.with_registry r (fun () -> ());
  let ok =
    Domain.join
      (Domain.spawn (fun () ->
           Metrics.with_registry r (fun () ->
               Metrics.Counter.incr c;
               Metrics.Counter.value c)))
  in
  Alcotest.(check int) "ownership transferred" 2 ok;
  Metrics.Counter.incr c;
  Alcotest.(check int) "ownership returned" 3 (Metrics.Counter.value c)

(* ------------------------------------------------------------------ *)
(* Runner                                                              *)
(* ------------------------------------------------------------------ *)

module Runner = Smod_bench_kit.Runner

let test_runner_order_and_metrics () =
  List.iter
    (fun jobs ->
      Metrics.with_registry (Metrics.create ()) (fun () ->
          let tasks = List.init 13 (fun i -> i) in
          let results =
            Runner.map (Runner.create ~jobs) tasks (fun i ->
                (* Dynamic handle: lands in this task's fresh registry and
                   reaches the caller only via the merge. *)
                Metrics.Counter.add (Metrics.counter "runner.work") (i + 1);
                i * i)
          in
          Alcotest.(check (list int))
            (Printf.sprintf "results in task order (jobs=%d)" jobs)
            (List.map (fun i -> i * i) tasks)
            results;
          Alcotest.(check (option int))
            (Printf.sprintf "task metrics merged (jobs=%d)" jobs)
            (Some 91)
            (Metrics.counter_value "runner.work")))
    [ 1; 4 ]

let test_runner_propagates_failure () =
  Metrics.with_registry (Metrics.create ()) (fun () ->
      let raised =
        try
          ignore
            (Runner.map (Runner.create ~jobs:4) [ 0; 1; 2; 3; 4 ] (fun i ->
                 if i = 2 then failwith "task-2";
                 Metrics.Counter.incr (Metrics.counter "runner.ok");
                 i));
          None
        with Failure m -> Some m
      in
      Alcotest.(check (option string)) "lowest failed task re-raised" (Some "task-2") raised;
      (* Successful tasks still contributed their metrics. *)
      Alcotest.(check (option int)) "survivor metrics merged" (Some 4)
        (Metrics.counter_value "runner.ok"))

let test_runner_rejects_bad_jobs () =
  Alcotest.(check bool) "jobs=0 rejected" true
    (try
       ignore (Runner.create ~jobs:0);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Shard placement                                                     *)
(* ------------------------------------------------------------------ *)

module Shard = Smod_pool.Shard

let test_shard_placement () =
  let keys = List.init 32 (fun i -> Printf.sprintf "tenant-%03d" i) in
  List.iter
    (fun shards ->
      List.iter
        (fun k ->
          let s = Shard.place ~shards k in
          Alcotest.(check bool)
            (Printf.sprintf "%s in range for K=%d" k shards)
            true
            (s >= 0 && s < shards);
          Alcotest.(check int) (Printf.sprintf "%s stable" k) s (Shard.place ~shards k))
        keys)
    [ 1; 2; 4; 8 ];
  Alcotest.(check bool) "K=1 is the identity shard" true
    (List.for_all (fun k -> Shard.place ~shards:1 k = 0) keys);
  (* Every shard gets someone for the E20 population sizes. *)
  List.iter
    (fun shards ->
      let buckets = Shard.partition ~shards keys in
      Alcotest.(check int) "bucket count" shards (Array.length buckets);
      Alcotest.(check int) "partition covers every key" 32
        (Array.fold_left (fun acc b -> acc + List.length b) 0 buckets);
      Array.iteri
        (fun i b ->
          Alcotest.(check bool)
            (Printf.sprintf "shard %d/%d non-empty" i shards)
            true (b <> []))
        buckets)
    [ 2; 4; 8 ];
  Alcotest.(check bool) "shards=0 rejected" true
    (try
       ignore (Shard.place ~shards:0 "x");
       false
     with Invalid_argument _ -> true)

let test_shard_hash_is_fnv1a () =
  (* Spot-check against independently computed FNV-1a 64 values so the
     placement stays compatible with an external router implementation. *)
  Alcotest.(check int64) "empty string" 0xcbf29ce484222325L (Shard.hash "");
  Alcotest.(check int64) "single byte" 0xaf63dc4c8601ec8cL (Shard.hash "a")

(* ------------------------------------------------------------------ *)
(* Determinism across job counts                                       *)
(* ------------------------------------------------------------------ *)

let test_bench_document_job_invariant () =
  let module Experiments = Smod_bench_kit.Experiments in
  (* The cheap sections keep the test fast; every section uses the same
     task pipeline, so invariance here covers the mechanism. *)
  let ids = [ "e11"; "e12"; "e15" ] in
  let doc_for jobs =
    Metrics.with_registry (Metrics.create ()) (fun () ->
        Experiments.run_document ~full:false ~runner:(Runner.create ~jobs) ids)
  in
  let d1 = Bench_json.to_string (doc_for 1) and d4 = Bench_json.to_string (doc_for 4) in
  Alcotest.(check string) "jobs=1 and jobs=4 emit identical documents" d1 d4

(* ------------------------------------------------------------------ *)
(* JSON emitter / parser                                               *)
(* ------------------------------------------------------------------ *)

let test_json_round_trip () =
  let doc =
    Json.Obj
      [
        ("s", Json.String "quote \" slash \\ newline \n tab \t unicode \xc3\xa9");
        ("i", Json.Int 1_579);
        ("f", Json.Float 6.40700000000000003);
        ("zero", Json.Float 0.0);
        ("neg", Json.Int (-42));
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("arr", Json.Arr [ Json.Int 1; Json.Float 0.5; Json.String "" ]);
        ("empty_obj", Json.Obj []);
        ("empty_arr", Json.Arr []);
      ]
  in
  Alcotest.(check bool) "pretty round-trip" true (Json.of_string (Json.to_string doc) = doc);
  Alcotest.(check bool) "minified round-trip" true
    (Json.of_string (Json.to_string ~minify:true doc) = doc)

let test_json_float_fidelity () =
  (* The bench means are arbitrary doubles; emission must parse back to
     the bit-identical value or baseline comparisons would drift. *)
  List.iter
    (fun f ->
      match Json.of_string (Json.to_string (Json.Float f)) with
      | Json.Float g ->
          Alcotest.(check bool) (Printf.sprintf "%h survives" f) true (Int64.bits_of_float f = Int64.bits_of_float g)
      | _ -> Alcotest.fail "float did not parse back as float")
    [ 6.3715460403545432; 0.65453278710851048; 1e-9; 1.0 /. 3.0; 63.651549932924389; 1e17 ]

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      Alcotest.(check bool) (Printf.sprintf "%S rejected" s) true
        (try
           ignore (Json.of_string s);
           false
         with Json.Parse_error _ -> true))
    [ ""; "{"; "[1,]"; "{\"a\":1,}"; "tru"; "1 2"; "\"unterminated"; "{\"a\" 1}"; "nan" ]

(* ------------------------------------------------------------------ *)
(* Bench documents and the drift gate                                  *)
(* ------------------------------------------------------------------ *)

let sample_doc ?(smod_mean = 6.407) () =
  {
    Bench_json.mode = "quick";
    meta = None;
    experiments =
      [
        Bench_json.experiment ~id:"e1" ~title:"Figure 8"
          [
            Bench_json.row ~label:"getpid()" ~mean:0.658 ~stdev:0.005 ();
            Bench_json.row ~label:"SMOD(test-incr)" ~mean:smod_mean ~stdev:0.06 ();
          ];
        Bench_json.experiment ~id:"e12" ~title:"queueing"
          [ Bench_json.row ~label:"1 clients, own handles" ~unit_:"depth" ~mean:0.0 ~stdev:0.0 () ];
      ];
    metrics =
      [
        ("kern.syscalls", Metrics.Counter_sample 12345);
        ( "secmodule.call_us",
          Metrics.Histogram_sample
            { Metrics.hs_edges = [| 1.0; 8.0 |]; hs_counts = [| 0; 3; 1 |]; hs_count = 4; hs_sum = 26.2 } );
      ];
  }

let test_bench_json_round_trip () =
  let doc = sample_doc () in
  let doc' = Bench_json.of_string (Bench_json.to_string doc) in
  Alcotest.(check bool) "round-trips" true (doc = doc')

let test_bench_json_rejects_wrong_schema () =
  Alcotest.(check bool) "wrong schema tag rejected" true
    (try
       ignore (Bench_json.of_string "{\"schema\": \"other\", \"schema_version\": 1}");
       false
     with Json.Parse_error _ -> true);
  Alcotest.(check bool) "future version rejected" true
    (try
       ignore
         (Bench_json.of_string
            "{\"schema\": \"smod-bench\", \"schema_version\": 999, \"mode\": \"quick\", \
             \"experiments\": [], \"metrics\": []}");
       false
     with Json.Parse_error _ -> true)

(* The drift-comparison tests that used to live here moved with the
   comparison core to lib/bench_kit/diff.ml — see test/test_benchdiff.ml. *)

let test_quantiles () =
  (* 10 observations spread as 4 in (0,1], 4 in (1,2], 2 in (2,4]:
     ranks interpolate linearly inside their bucket. *)
  let r = Metrics.create () in
  let h = Metrics.histogram ~registry:r ~edges:[| 1.0; 2.0; 4.0 |] "q" in
  List.iter (Metrics.Histogram.observe h)
    [ 0.2; 0.4; 0.6; 0.8; 1.2; 1.4; 1.6; 1.8; 2.5; 3.5 ];
  let q p = Metrics.Histogram.quantile h p in
  (* p50: rank 5 is the 1st of 4 observations in (1,2] -> 1 + 1/4. *)
  Alcotest.(check (float 1e-9)) "p50" 1.25 (q 0.5);
  (* p90: rank 9 is the 1st of 2 observations in (2,4] -> 2 + 2/2. *)
  Alcotest.(check (float 1e-9)) "p90" 3.0 (q 0.9);
  (* p10: rank 1 is the 1st of 4 in the first bucket, lower bound 0. *)
  Alcotest.(check (float 1e-9)) "p10" 0.25 (q 0.1);
  (* q clamps to [0,1]. *)
  Alcotest.(check (float 1e-9)) "q>1 clamps" (q 1.0) (q 2.5)

let test_quantile_overflow_and_empty () =
  let r = Metrics.create () in
  let h = Metrics.histogram ~registry:r ~edges:[| 1.0; 2.0 |] "q" in
  Alcotest.(check (float 1e-9)) "empty histogram reports 0" 0.0
    (Metrics.Histogram.quantile h 0.5);
  (* Everything lands in the overflow bucket: the estimate clamps to the
     last edge — the histogram cannot see past it. *)
  List.iter (Metrics.Histogram.observe h) [ 10.0; 20.0; 30.0 ];
  Alcotest.(check (float 1e-9)) "overflow clamps to last edge" 2.0
    (Metrics.Histogram.quantile h 0.99);
  (* Snapshot-side computation agrees with the live instrument. *)
  match Metrics.histogram_sample ~registry:r "q" with
  | Some hs ->
      Alcotest.(check (float 1e-9)) "snapshot_quantile agrees"
        (Metrics.Histogram.quantile h 0.5)
        (Metrics.snapshot_quantile hs 0.5)
  | None -> Alcotest.fail "histogram not registered"

let test_bench_json_emits_quantiles () =
  (* Histogram metrics in the artifact carry p50/p90/p99 fields derived
     from the buckets; of_json ignores them (counts stay the source of
     truth), so the round-trip test above is unaffected. *)
  let doc = sample_doc () in
  let j = Bench_json.to_json doc in
  let metric =
    match Json.member_exn "metrics" j with
    | Json.Arr ms ->
        List.find
          (fun m -> Json.get_string (Json.member_exn "name" m) = "secmodule.call_us")
          ms
    | _ -> Alcotest.fail "metrics not an array"
  in
  let hs =
    { Metrics.hs_edges = [| 1.0; 8.0 |]; hs_counts = [| 0; 3; 1 |]; hs_count = 4; hs_sum = 26.2 }
  in
  List.iter
    (fun (field, q) ->
      Alcotest.(check (float 1e-9))
        field
        (Metrics.snapshot_quantile hs q)
        (Json.get_float (Json.member_exn field metric)))
    [ ("p50", 0.5); ("p90", 0.9); ("p99", 0.99) ]

(* A v2 document with a meta header round-trips it intact; undated
   documents keep emitting no "meta" key at all. *)
let test_bench_json_meta_round_trip () =
  let meta =
    {
      Bench_json.mt_date = "2026-08-08";
      mt_commit = "ab12cd3";
      mt_jobs = 4;
      mt_sections = [ "e1"; "e16" ];
    }
  in
  let doc = { (sample_doc ()) with Bench_json.meta = Some meta } in
  let doc' = Bench_json.of_string (Bench_json.to_string doc) in
  Alcotest.(check bool) "meta round-trips" true (doc = doc');
  let undated = Bench_json.to_json (sample_doc ()) in
  Alcotest.(check bool) "no meta key when undated" true (Json.member "meta" undated = None)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "metrics"
    [
      ( "counters",
        [
          tc "basics" test_counter_basics;
          tc "find-or-create" test_counter_find_or_create;
          tc "scopes" test_scope_naming;
        ] );
      ( "histograms",
        [
          tc "buckets" test_histogram_buckets;
          tc "snapshot/delta/reset" test_snapshot_delta_reset;
          tc "quantiles interpolate" test_quantiles;
          tc "quantile overflow and empty" test_quantile_overflow_and_empty;
        ] );
      ( "merge",
        [
          tc "counters sum" test_merge_counters;
          tc "histograms add bucket-wise" test_merge_histograms;
          tc "quantile after merge" test_merge_quantile_agrees;
          tc "mismatched edges rejected" test_merge_rejects_mismatched_edges;
        ] );
      ( "domains",
        [
          tc "with_registry swaps current" test_with_registry_swaps_current;
          tc "fresh domain, fresh registry" test_fresh_domain_gets_own_registry;
          tc "cross-domain mutation rejected" test_cross_domain_mutation_rejected;
        ] );
      ( "runner",
        [
          tc "order and merged metrics" test_runner_order_and_metrics;
          tc "failure propagation" test_runner_propagates_failure;
          tc "rejects jobs=0" test_runner_rejects_bad_jobs;
        ] );
      ( "sharding",
        [
          tc "placement" test_shard_placement;
          tc "fnv-1a vectors" test_shard_hash_is_fnv1a;
        ] );
      ( "determinism",
        [ tc "bench document is --jobs invariant" test_bench_document_job_invariant ] );
      ( "json",
        [
          tc "round-trip" test_json_round_trip;
          tc "float fidelity" test_json_float_fidelity;
          tc "rejects garbage" test_json_rejects_garbage;
        ] );
      ( "bench documents",
        [
          tc "round-trip" test_bench_json_round_trip;
          tc "meta header round-trip" test_bench_json_meta_round_trip;
          tc "schema guard" test_bench_json_rejects_wrong_schema;
          tc "emits quantiles" test_bench_json_emits_quantiles;
        ] );
    ]
