(* lib/metrics semantics, the hand-rolled JSON layer underneath the bench
   artifacts, and the benchdiff drift gate. *)

module Metrics = Smod_metrics
module Json = Smod_util.Json
module Bench_json = Smod_bench_kit.Bench_json

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

let test_counter_basics () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "test.counter" in
  Alcotest.(check int) "starts at zero" 0 (Metrics.Counter.value c);
  Metrics.Counter.incr c;
  Metrics.Counter.add c 41;
  Alcotest.(check int) "incr + add" 42 (Metrics.Counter.value c);
  Alcotest.check_raises "negative add rejected"
    (Invalid_argument "Counter.add test.counter: counters are monotonic") (fun () ->
      Metrics.Counter.add c (-1))

let test_counter_find_or_create () =
  let r = Metrics.create () in
  let a = Metrics.counter ~registry:r "x.same" in
  Metrics.Counter.add a 7;
  let b = Metrics.counter ~registry:r "x.same" in
  Alcotest.(check int) "same instrument" 7 (Metrics.Counter.value b);
  Alcotest.(check bool) "cross-kind rejected" true
    (try
       ignore (Metrics.histogram ~registry:r "x.same");
       false
     with Invalid_argument _ -> true)

let test_scope_naming () =
  let r = Metrics.create () in
  let s = Metrics.Scope.sub (Metrics.scope ~registry:r "kern") "msgq" in
  let c = Metrics.Scope.counter s "sends" in
  Metrics.Counter.incr c;
  Alcotest.(check (option int)) "dotted name" (Some 1)
    (Metrics.counter_value ~registry:r "kern.msgq.sends")

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

let test_histogram_buckets () =
  let r = Metrics.create () in
  let h = Metrics.histogram ~registry:r ~edges:[| 1.0; 10.0; 100.0 |] "test.hist" in
  (* bucket i holds v <= edges.(i); the last bucket is overflow *)
  List.iter (Metrics.Histogram.observe h) [ 0.5; 1.0; 5.0; 100.0; 1000.0 ];
  Alcotest.(check (array int)) "bucket counts" [| 2; 1; 1; 1 |] (Metrics.Histogram.bucket_counts h);
  Alcotest.(check int) "count" 5 (Metrics.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 1106.5 (Metrics.Histogram.sum h);
  Alcotest.(check (float 1e-9)) "mean" (1106.5 /. 5.0) (Metrics.Histogram.mean h)

let test_snapshot_delta_reset () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "a.count" in
  let h = Metrics.histogram ~registry:r ~edges:[| 1.0 |] "b.hist" in
  Metrics.Counter.add c 5;
  Metrics.Histogram.observe h 0.5;
  let before = Metrics.snapshot ~registry:r () in
  Metrics.Counter.add c 3;
  Metrics.Histogram.observe h 2.0;
  let after = Metrics.snapshot ~registry:r () in
  (match Metrics.delta ~before ~after with
  | [ ("a.count", Metrics.Counter_sample d); ("b.hist", Metrics.Histogram_sample hs) ] ->
      Alcotest.(check int) "counter delta" 3 d;
      Alcotest.(check int) "histogram count delta" 1 hs.Metrics.hs_count;
      Alcotest.(check (array int)) "histogram bucket delta" [| 0; 1 |] hs.Metrics.hs_counts
  | _ -> Alcotest.fail "unexpected delta shape");
  Metrics.reset ~registry:r ();
  Alcotest.(check (option int)) "reset keeps registration" (Some 0)
    (Metrics.counter_value ~registry:r "a.count");
  Alcotest.(check int) "live handle still works" 0 (Metrics.Counter.value c)

(* ------------------------------------------------------------------ *)
(* JSON emitter / parser                                               *)
(* ------------------------------------------------------------------ *)

let test_json_round_trip () =
  let doc =
    Json.Obj
      [
        ("s", Json.String "quote \" slash \\ newline \n tab \t unicode \xc3\xa9");
        ("i", Json.Int 1_579);
        ("f", Json.Float 6.40700000000000003);
        ("zero", Json.Float 0.0);
        ("neg", Json.Int (-42));
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("arr", Json.Arr [ Json.Int 1; Json.Float 0.5; Json.String "" ]);
        ("empty_obj", Json.Obj []);
        ("empty_arr", Json.Arr []);
      ]
  in
  Alcotest.(check bool) "pretty round-trip" true (Json.of_string (Json.to_string doc) = doc);
  Alcotest.(check bool) "minified round-trip" true
    (Json.of_string (Json.to_string ~minify:true doc) = doc)

let test_json_float_fidelity () =
  (* The bench means are arbitrary doubles; emission must parse back to
     the bit-identical value or baseline comparisons would drift. *)
  List.iter
    (fun f ->
      match Json.of_string (Json.to_string (Json.Float f)) with
      | Json.Float g ->
          Alcotest.(check bool) (Printf.sprintf "%h survives" f) true (Int64.bits_of_float f = Int64.bits_of_float g)
      | _ -> Alcotest.fail "float did not parse back as float")
    [ 6.3715460403545432; 0.65453278710851048; 1e-9; 1.0 /. 3.0; 63.651549932924389; 1e17 ]

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      Alcotest.(check bool) (Printf.sprintf "%S rejected" s) true
        (try
           ignore (Json.of_string s);
           false
         with Json.Parse_error _ -> true))
    [ ""; "{"; "[1,]"; "{\"a\":1,}"; "tru"; "1 2"; "\"unterminated"; "{\"a\" 1}"; "nan" ]

(* ------------------------------------------------------------------ *)
(* Bench documents and the drift gate                                  *)
(* ------------------------------------------------------------------ *)

let sample_doc ?(smod_mean = 6.407) () =
  {
    Bench_json.mode = "quick";
    experiments =
      [
        Bench_json.experiment ~id:"e1" ~title:"Figure 8"
          [
            Bench_json.row ~label:"getpid()" ~mean:0.658 ~stdev:0.005 ();
            Bench_json.row ~label:"SMOD(test-incr)" ~mean:smod_mean ~stdev:0.06 ();
          ];
        Bench_json.experiment ~id:"e12" ~title:"queueing"
          [ Bench_json.row ~label:"1 clients, own handles" ~unit_:"depth" ~mean:0.0 ~stdev:0.0 () ];
      ];
    metrics =
      [
        ("kern.syscalls", Metrics.Counter_sample 12345);
        ( "secmodule.call_us",
          Metrics.Histogram_sample
            { Metrics.hs_edges = [| 1.0; 8.0 |]; hs_counts = [| 0; 3; 1 |]; hs_count = 4; hs_sum = 26.2 } );
      ];
  }

let test_bench_json_round_trip () =
  let doc = sample_doc () in
  let doc' = Bench_json.of_string (Bench_json.to_string doc) in
  Alcotest.(check bool) "round-trips" true (doc = doc')

let test_bench_json_rejects_wrong_schema () =
  Alcotest.(check bool) "wrong schema tag rejected" true
    (try
       ignore (Bench_json.of_string "{\"schema\": \"other\", \"schema_version\": 1}");
       false
     with Json.Parse_error _ -> true);
  Alcotest.(check bool) "future version rejected" true
    (try
       ignore
         (Bench_json.of_string
            "{\"schema\": \"smod-bench\", \"schema_version\": 999, \"mode\": \"quick\", \
             \"experiments\": [], \"metrics\": []}");
       false
     with Json.Parse_error _ -> true)

let test_compare_within_tolerance () =
  let baseline = sample_doc () in
  let current = sample_doc ~smod_mean:(6.407 *. 1.01) () in
  let c = Bench_json.compare_docs ~rel_tol:0.02 ~baseline ~current () in
  Alcotest.(check int) "all rows compared" 3 c.Bench_json.compared;
  Alcotest.(check bool) "1% drift passes at 2%" true (Bench_json.comparison_ok c)

let test_compare_flags_drift () =
  let baseline = sample_doc () in
  let current = sample_doc ~smod_mean:(6.407 *. 1.05) () in
  let c = Bench_json.compare_docs ~rel_tol:0.02 ~baseline ~current () in
  Alcotest.(check bool) "5% drift fails at 2%" false (Bench_json.comparison_ok c);
  let failed = List.filter (fun d -> not d.Bench_json.d_ok) c.Bench_json.drifts in
  Alcotest.(check (list string)) "only the drifted row" [ "SMOD(test-incr)" ]
    (List.map (fun d -> d.Bench_json.d_label) failed)

let test_compare_zero_row_epsilon () =
  (* E12 private-handle rows are exactly 0.0; a pure relative test would
     fail on any change and pass on none.  The additive epsilon absorbs
     rounding while still catching real movement. *)
  let baseline = sample_doc () in
  let perturbed =
    {
      baseline with
      Bench_json.experiments =
        [
          Bench_json.experiment ~id:"e12" ~title:"queueing"
            [ Bench_json.row ~label:"1 clients, own handles" ~unit_:"depth" ~mean:0.25 ~stdev:0.0 () ];
        ];
    }
  in
  let c = Bench_json.compare_docs ~rel_tol:0.02 ~baseline ~current:perturbed () in
  Alcotest.(check bool) "0.0 -> 0.25 caught" false (Bench_json.comparison_ok c)

let test_quantiles () =
  (* 10 observations spread as 4 in (0,1], 4 in (1,2], 2 in (2,4]:
     ranks interpolate linearly inside their bucket. *)
  let r = Metrics.create () in
  let h = Metrics.histogram ~registry:r ~edges:[| 1.0; 2.0; 4.0 |] "q" in
  List.iter (Metrics.Histogram.observe h)
    [ 0.2; 0.4; 0.6; 0.8; 1.2; 1.4; 1.6; 1.8; 2.5; 3.5 ];
  let q p = Metrics.Histogram.quantile h p in
  (* p50: rank 5 is the 1st of 4 observations in (1,2] -> 1 + 1/4. *)
  Alcotest.(check (float 1e-9)) "p50" 1.25 (q 0.5);
  (* p90: rank 9 is the 1st of 2 observations in (2,4] -> 2 + 2/2. *)
  Alcotest.(check (float 1e-9)) "p90" 3.0 (q 0.9);
  (* p10: rank 1 is the 1st of 4 in the first bucket, lower bound 0. *)
  Alcotest.(check (float 1e-9)) "p10" 0.25 (q 0.1);
  (* q clamps to [0,1]. *)
  Alcotest.(check (float 1e-9)) "q>1 clamps" (q 1.0) (q 2.5)

let test_quantile_overflow_and_empty () =
  let r = Metrics.create () in
  let h = Metrics.histogram ~registry:r ~edges:[| 1.0; 2.0 |] "q" in
  Alcotest.(check (float 1e-9)) "empty histogram reports 0" 0.0
    (Metrics.Histogram.quantile h 0.5);
  (* Everything lands in the overflow bucket: the estimate clamps to the
     last edge — the histogram cannot see past it. *)
  List.iter (Metrics.Histogram.observe h) [ 10.0; 20.0; 30.0 ];
  Alcotest.(check (float 1e-9)) "overflow clamps to last edge" 2.0
    (Metrics.Histogram.quantile h 0.99);
  (* Snapshot-side computation agrees with the live instrument. *)
  match Metrics.histogram_sample ~registry:r "q" with
  | Some hs ->
      Alcotest.(check (float 1e-9)) "snapshot_quantile agrees"
        (Metrics.Histogram.quantile h 0.5)
        (Metrics.snapshot_quantile hs 0.5)
  | None -> Alcotest.fail "histogram not registered"

let test_bench_json_emits_quantiles () =
  (* Histogram metrics in the artifact carry p50/p90/p99 fields derived
     from the buckets; of_json ignores them (counts stay the source of
     truth), so the round-trip test above is unaffected. *)
  let doc = sample_doc () in
  let j = Bench_json.to_json doc in
  let metric =
    match Json.member_exn "metrics" j with
    | Json.Arr ms ->
        List.find
          (fun m -> Json.get_string (Json.member_exn "name" m) = "secmodule.call_us")
          ms
    | _ -> Alcotest.fail "metrics not an array"
  in
  let hs =
    { Metrics.hs_edges = [| 1.0; 8.0 |]; hs_counts = [| 0; 3; 1 |]; hs_count = 4; hs_sum = 26.2 }
  in
  List.iter
    (fun (field, q) ->
      Alcotest.(check (float 1e-9))
        field
        (Metrics.snapshot_quantile hs q)
        (Json.get_float (Json.member_exn field metric)))
    [ ("p50", 0.5); ("p90", 0.9); ("p99", 0.99) ]

let test_compare_abs_eps_override () =
  (* A 0.0 -> 0.25 jump fails under the document-wide epsilon but passes
     when e12 runs under a looser per-experiment override; rows record
     which epsilon judged them. *)
  let baseline = sample_doc () in
  let current =
    {
      baseline with
      Bench_json.experiments =
        [
          Bench_json.experiment ~id:"e1" ~title:"Figure 8"
            [ Bench_json.row ~label:"getpid()" ~mean:0.658 ~stdev:0.005 () ];
          Bench_json.experiment ~id:"e12" ~title:"queueing"
            [ Bench_json.row ~label:"1 clients, own handles" ~unit_:"depth" ~mean:0.25 ~stdev:0.0 () ];
        ];
    }
  in
  let strict = Bench_json.compare_docs ~rel_tol:0.02 ~baseline ~current () in
  Alcotest.(check bool) "fails without override" false (Bench_json.comparison_ok strict);
  let eased =
    Bench_json.compare_docs ~rel_tol:0.02 ~abs_eps_for:[ ("e12", 0.5) ] ~baseline ~current ()
  in
  Alcotest.(check bool) "passes with e12 override" true (Bench_json.comparison_ok eased);
  List.iter
    (fun (d : Bench_json.drift) ->
      let expected = if d.Bench_json.d_experiment = "e12" then 0.5 else 1e-9 in
      Alcotest.(check (float 0.0))
        (Printf.sprintf "%s/%s judged with its epsilon" d.Bench_json.d_experiment
           d.Bench_json.d_label)
        expected d.Bench_json.d_abs_eps)
    eased.Bench_json.drifts

let test_compare_subset_and_empty () =
  let baseline = sample_doc () in
  let subset = { baseline with Bench_json.experiments = [ List.hd baseline.Bench_json.experiments ] } in
  let c = Bench_json.compare_docs ~baseline ~current:subset () in
  Alcotest.(check bool) "subset run passes" true (Bench_json.comparison_ok c);
  Alcotest.(check (list string)) "missing rows reported" [ "e12/1 clients, own handles" ]
    c.Bench_json.missing;
  let disjoint = { baseline with Bench_json.experiments = [] } in
  let c0 = Bench_json.compare_docs ~baseline ~current:disjoint () in
  Alcotest.(check bool) "nothing compared fails" false (Bench_json.comparison_ok c0)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "metrics"
    [
      ( "counters",
        [
          tc "basics" test_counter_basics;
          tc "find-or-create" test_counter_find_or_create;
          tc "scopes" test_scope_naming;
        ] );
      ( "histograms",
        [
          tc "buckets" test_histogram_buckets;
          tc "snapshot/delta/reset" test_snapshot_delta_reset;
          tc "quantiles interpolate" test_quantiles;
          tc "quantile overflow and empty" test_quantile_overflow_and_empty;
        ] );
      ( "json",
        [
          tc "round-trip" test_json_round_trip;
          tc "float fidelity" test_json_float_fidelity;
          tc "rejects garbage" test_json_rejects_garbage;
        ] );
      ( "bench documents",
        [
          tc "round-trip" test_bench_json_round_trip;
          tc "schema guard" test_bench_json_rejects_wrong_schema;
          tc "within tolerance" test_compare_within_tolerance;
          tc "flags drift" test_compare_flags_drift;
          tc "zero-row epsilon" test_compare_zero_row_epsilon;
          tc "emits quantiles" test_bench_json_emits_quantiles;
          tc "per-experiment epsilon override" test_compare_abs_eps_override;
          tc "subset and empty" test_compare_subset_and_empty;
        ] );
    ]
