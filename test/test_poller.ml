(* Zero-trap data path tests (E22): the SQPOLL-style kernel poller and
   the effects-based handle multiplexer.  Trust-model cases first — a
   stale Submitted slot forged after detach is dropped, not executed;
   geometry forgery stays EINVAL when the doorbell (not the batch trap)
   does the binding — then the park/wake accounting and the headline
   integration twin: one batch served end to end with zero client
   traps. *)

module M = Smod_kern.Machine
module Proc = Smod_kern.Proc
module Errno = Smod_kern.Errno
module Sysno = Smod_kern.Sysno
module Sched = Smod_kern.Sched
module Aspace = Smod_vmem.Aspace
module Ring = Smod_ring.Ring
open Smod_bench_kit
open Secmodule

(* A world with the whole zero-trap path switched on: kernel poller
   sweeping rings, new sessions routed onto the effects multiplexer. *)
let poller_world () =
  let world = World.create ~with_rpc:false () in
  Smod.set_kernel_poller world.World.smod true;
  Smod.set_session_mux world.World.smod true;
  world

let all_ok rs =
  List.iteri
    (fun i r ->
      match r with Ok _ -> () | Error (_, msg) -> Alcotest.failf "slot %d: %s" i msg)
    rs

(* ------------------------- knob plumbing --------------------------- *)

let test_spin_budget_knob () =
  let world = World.create ~with_rpc:false () in
  let smod = world.World.smod in
  Alcotest.(check int) "default spin budget" 4 (Smod.spin_budget smod);
  Smod.set_spin_budget smod 9;
  Alcotest.(check int) "updated" 9 (Smod.spin_budget smod);
  (match Smod.set_spin_budget smod 0 with
  | () -> Alcotest.fail "spin budget 0 accepted"
  | exception Invalid_argument _ -> ());
  Alcotest.(check int) "rejected value did not stick" 9 (Smod.spin_budget smod)

(* ------------------------- trust model ----------------------------- *)

let test_stale_submit_after_detach_dropped () =
  (* A client batches, detaches, then forges a fresh Submitted slot into
     the old ring memory.  The registration died with the session, so
     the poller never rebinds the ring: the forged slot must rot in
     Submitted, never execute, never complete. *)
  let world = poller_world () in
  let smod = world.World.smod in
  let slots_before = ref (-1) and slots_after = ref (-2) in
  let stale = ref (-1) and completed = ref (-1) in
  World.spawn_seclibc_client world ~name:"stale-forger" (fun p conn ->
      let r = Stub.arm_ring ~nslots:8 conn in
      let m_id = (Stub.conn_info conn).Wire.m_id in
      all_ok (Stub.call_batch conn ~func:"test_incr" [ [| 1 |]; [| 2 |]; [| 3 |]; [| 4 |] ]);
      (match Smod.poller_status smod with
      | Some ps -> slots_before := ps.Smod.ps_slots_stamped
      | None -> Alcotest.fail "poller not running");
      Stub.close conn;
      ignore
        (Ring.try_submit r ~m_id ~func_id:0 ~client_sp:p.Proc.sp ~client_fp:p.Proc.fp
           ~args:[| 99 |]);
      (* Give the poller every chance to (wrongly) pick the slot up. *)
      for _ = 1 to 64 do
        Sched.yield ()
      done;
      (match Smod.poller_status smod with
      | Some ps -> slots_after := ps.Smod.ps_slots_stamped
      | None -> ());
      stale := Ring.stale_submitted r;
      completed := Ring.completed r);
  World.run world;
  Alcotest.(check int) "poller stamped nothing after detach" !slots_before !slots_after;
  Alcotest.(check int) "forged slot rots in Submitted" 1 !stale;
  Alcotest.(check int) "no completion beyond the real batch" 4 !completed

let test_geometry_forgery_einval_under_poller () =
  (* Same forgery as test_ring's batch-trap case, but against the
     doorbell: grow the header's nslots word after setup, then ring the
     doorbell.  The bind validates against the geometry pinned at setup
     and must refuse — EINVAL, not a widened poller view.  The ring is
     hand-armed because Stub.arm_ring would doorbell (and bind) while
     the header is still honest. *)
  let world = poller_world () in
  let err = ref None in
  World.spawn_seclibc_client world ~name:"geom-forger" (fun p conn ->
      ignore conn;
      let nslots = 8 in
      let base = (Aspace.brk p.Proc.aspace + 63) land lnot 63 in
      ignore
        (M.syscall world.World.machine p Sysno.obreak [| base + Ring.size_bytes ~nslots |]);
      ignore (Ring.init p.Proc.aspace ~base ~nslots);
      ignore (M.syscall world.World.machine p Sysno.smod_ring_setup [| base; nslots |]);
      Aspace.write_word p.Proc.aspace ~addr:(base + 4) 65536;
      match M.syscall world.World.machine p Sysno.smod_poll_doorbell [||] with
      | _ -> err := Some `No_error
      | exception Errno.Error (e, _) -> err := Some (`Errno e));
  World.run world;
  Alcotest.(check bool) "doorbell refused forged geometry with EINVAL" true
    (!err = Some (`Errno Errno.EINVAL))

(* ---------------------- park/wake accounting ----------------------- *)

let test_park_wake_counted () =
  let world = poller_world () in
  let smod = world.World.smod in
  (* Phase A: no sessions.  The poller burns exactly its spin budget in
     empty sweeps, then parks once. *)
  World.run world;
  let ps = Option.get (Smod.poller_status smod) in
  Alcotest.(check bool) "parked" true ps.Smod.ps_parked;
  Alcotest.(check int) "spin-budget empty sweeps" (Smod.spin_budget smod) ps.Smod.ps_sweeps;
  Alcotest.(check int) "one park" 1 ps.Smod.ps_parks;
  Alcotest.(check int) "no wakes yet" 0 ps.Smod.ps_wakes;
  (* Phase B: one client, one 8-call batch.  The arm-time doorbell
     unparks the poller exactly once; it stamps the batch in one sweep,
     burns its budget again, and re-parks. *)
  let sid = ref (-1) in
  World.spawn_seclibc_client world ~name:"waker" (fun _p conn ->
      sid := Stub.session_id conn;
      all_ok (Stub.call_batch conn ~func:"test_incr" (List.init 8 (fun i -> [| i |]))));
  World.run world;
  let ps = Option.get (Smod.poller_status smod) in
  Alcotest.(check int) "exactly one doorbell" 1 ps.Smod.ps_doorbells;
  Alcotest.(check int) "exactly one wake" 1 ps.Smod.ps_wakes;
  Alcotest.(check int) "re-parked exactly once more" 2 ps.Smod.ps_parks;
  Alcotest.(check bool) "parked again" true ps.Smod.ps_parked;
  Alcotest.(check int) "whole batch stamped by the poller" 8 ps.Smod.ps_slots_stamped;
  Alcotest.(check int) "one stamping sweep plus two spin budgets" 9 ps.Smod.ps_sweeps;
  Alcotest.(check int) "all other sweeps empty" 8 ps.Smod.ps_empty_sweeps;
  Alcotest.(check (list (pair int int)))
    "per-session slot accounting" [ (!sid, 8) ] ps.Smod.ps_session_slots

(* --------------------- zero-trap integration twin ------------------ *)

let test_zero_trap_batch () =
  (* The "one batch, counted" twin of the E22 headline: after warm-up,
     a full 16-call batch runs end to end — submit, admission stamps,
     fiber execution, completion, reap — with zero traps machine-wide,
     and every call still lands in the session's metering. *)
  let world = poller_world () in
  let smod = world.World.smod in
  (* Keep the poller from parking across the measured window. *)
  Smod.set_spin_budget smod 64;
  let traps = ref (-1) and calls_delta = ref (-1) in
  World.spawn_seclibc_client world ~name:"zero-trap" (fun p conn ->
      all_ok (Stub.call_batch conn ~func:"test_incr" [ [| 1 |]; [| 2 |] ]);
      let session =
        match Smod.session_of_client smod ~client_pid:p.Proc.pid with
        | Some s -> s
        | None -> Alcotest.fail "session vanished"
      in
      let calls0 = session.Smod.calls in
      let traps0 = M.syscall_count world.World.machine in
      all_ok (Stub.call_batch conn ~func:"test_incr" (List.init 16 (fun i -> [| i |])));
      traps := M.syscall_count world.World.machine - traps0;
      calls_delta := session.Smod.calls - calls0);
  World.run world;
  Alcotest.(check int) "zero traps machine-wide across the batch" 0 !traps;
  Alcotest.(check int) "all 16 calls executed and metered" 16 !calls_delta

(* ---------------------- effects multiplexing ----------------------- *)

let test_mux_many_sessions_one_domain () =
  (* 64 concurrent ring-only sessions served by the single mux daemon:
     every client completes, the fiber high-water mark shows they were
     live simultaneously, and every fiber retires on detach. *)
  let world = poller_world () in
  let smod = world.World.smod in
  Smod.set_spin_budget smod 256;
  let n = 64 in
  let finished = ref 0 in
  for i = 1 to n do
    World.spawn_seclibc_client world
      ~name:(Printf.sprintf "mux-%d" i)
      (fun _p conn ->
        all_ok (Stub.call_batch conn ~func:"test_incr" [ [| i |]; [| i + 1 |] ]);
        incr finished)
  done;
  World.run world;
  Alcotest.(check int) "all clients completed" n !finished;
  let ms = Option.get (Smod.mux_status smod) in
  Alcotest.(check int) "sessions attached" n ms.Smod.mxs_attached;
  Alcotest.(check int) "peak fibers live on one domain" n ms.Smod.mxs_peak;
  Alcotest.(check int) "all fibers retired" 0 ms.Smod.mxs_live

let test_mux_call_syscall_rejected () =
  (* Mux sessions are ring-only: the legacy per-call trap has no handle
     process to bounce to and must fail crisply, not hang. *)
  let world = poller_world () in
  let err = ref None in
  World.spawn_seclibc_client world ~name:"legacy-caller" (fun _p conn ->
      match Stub.call conn ~func:"test_incr" [| 1 |] with
      | _ -> err := Some `No_error
      | exception Errno.Error (e, _) -> err := Some (`Errno e));
  World.run world;
  Alcotest.(check bool) "smod_call on a mux session is EPERM" true
    (!err = Some (`Errno Errno.EPERM))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "poller"
    [
      ("spin knob", [ tc "shared spin budget" test_spin_budget_knob ]);
      ( "trust model",
        [
          tc "stale submit after detach dropped" test_stale_submit_after_detach_dropped;
          tc "geometry forgery stays EINVAL" test_geometry_forgery_einval_under_poller;
        ] );
      ("park/wake", [ tc "transitions counted exactly" test_park_wake_counted ]);
      ( "zero-trap path",
        [
          tc "one batch, zero client traps" test_zero_trap_batch;
          tc "1 domain, 64 fibers" test_mux_many_sessions_one_domain;
          tc "legacy call rejected on mux session" test_mux_call_syscall_rejected;
        ] );
    ]
