(* lib/pool: the smodd session-multiplexing service layer — handle reuse,
   secret scrubbing between tenants, admission-queue overflow, the
   policy-decision cache, and invalidation on module removal. *)

module M = Smod_kern.Machine
module Proc = Smod_kern.Proc
module Sched = Smod_kern.Sched
module Errno = Smod_kern.Errno
module Sysno = Smod_kern.Sysno
module Aspace = Smod_vmem.Aspace
module Layout = Smod_vmem.Layout
module Clock = Smod_sim.Clock
module Cost = Smod_sim.Cost_model
module Keystore = Smod_keynote.Keystore
module Smof = Smod_modfmt.Smof
module World = Smod_bench_kit.World
module Smodd = Smod_pool.Smodd
module Policy_cache = Smod_pool.Policy_cache
open Secmodule

let counter name =
  match Smod_metrics.counter_value name with
  | Some v -> v
  | None -> Alcotest.failf "counter %s not registered" name

(* One handle total: every session after the first must reuse it. *)
let one_handle overflow =
  { Smodd.default_config with max_handles_per_module = 1; max_total_handles = 1; overflow }

let handle_pid_of smod p =
  match Smod.session_of_client smod ~client_pid:p.Proc.pid with
  | Some s -> s.Smod.handle_pid
  | None -> Alcotest.fail "no session for client"

(* ----------------------------- reuse -------------------------------- *)

let test_attach_detach_reuse () =
  let world = World.create ~pool:(one_handle Smodd.Wait) ~with_rpc:false () in
  let hit0 = counter "pool.hit"
  and miss0 = counter "pool.miss"
  and scrubs0 = counter "secmodule.handle_scrubs" in
  let pids = ref [] in
  for round = 1 to 3 do
    ignore
      (M.spawn world.World.machine
         ~name:(Printf.sprintf "tenant-%d" round)
         (fun p ->
           let conn =
             Stub.connect world.World.smod p ~module_name:Smod_libc.Seclibc.module_name
               ~version:Smod_libc.Seclibc.version
               ~credential:(Credential.make ~principal:"client" ())
           in
           pids := handle_pid_of world.World.smod p :: !pids;
           Alcotest.(check int) "call works" (round + 1)
             (Smod_libc.Seclibc.Client.test_incr conn round);
           Stub.close conn));
    World.run world
  done;
  (match !pids with
  | [ a; b; c ] ->
      Alcotest.(check int) "round 2 reuses the handle" a b;
      Alcotest.(check int) "round 3 reuses the handle" b c
  | _ -> Alcotest.fail "expected three sessions");
  Alcotest.(check int) "exactly one pool.miss (the first fork)" 1 (counter "pool.miss" - miss0);
  Alcotest.(check int) "exactly two pool.hits (the reuses)" 2 (counter "pool.hit" - hit0);
  Alcotest.(check int) "one scrub per detach" 3 (counter "secmodule.handle_scrubs" - scrubs0);
  let st = Smodd.status (Option.get world.World.pool) in
  Alcotest.(check int) "one live handle" 1 st.Smodd.st_total_handles;
  match st.Smodd.st_modules with
  | [ ms ] ->
      Alcotest.(check int) "3 tenants served" 3 ms.Smodd.ms_tenants;
      Alcotest.(check int) "parked between tenants" 1 ms.Smodd.ms_parked;
      Alcotest.(check int) "single fork" 1 ms.Smodd.ms_spawned
  | _ -> Alcotest.fail "expected one module row"

(* ------------------------ secret scrubbing --------------------------- *)

(* A module whose natives read and write a fixed slot in the handle's
   secret segment plus a mutable global in its own data segment: tenant A
   plants values in both, tenant B on the same pooled handle must read
   the secret slot back as zero and the global back at its pristine
   image value — cold-fork semantics, not last-tenant leftovers. *)
let secret_slot = Layout.secret_base + 512
let pristine_global = 0x5EED1234

let secret_module smod =
  let b = Smof.Builder.create ~name:"secretmod" ~version:1 in
  ignore (Smof.Builder.add_native_function b ~name:"poke" ~native:"poke" ~size_hint:32 ());
  ignore (Smof.Builder.add_native_function b ~name:"peek" ~native:"peek" ~size_hint:32 ());
  ignore (Smof.Builder.add_native_function b ~name:"gpoke" ~native:"gpoke" ~size_hint:32 ());
  ignore (Smof.Builder.add_native_function b ~name:"gpeek" ~native:"gpeek" ~size_hint:32 ());
  let global_off =
    let init = Bytes.create 4 in
    Bytes.set_int32_le init 0 (Int32.of_int pristine_global);
    Smof.Builder.add_data b init
  in
  let entry = Toolchain.package smod ~image:(Smof.Builder.finish b) () in
  let global_addr h =
    match Smod.session_of_handle smod ~handle_pid:h.Proc.pid with
    | Some s -> s.Smod.module_data_base + global_off
    | None -> Alcotest.fail "native ran outside a session"
  in
  Smod.bind_native smod ~m_id:entry.Registry.m_id ~name:"poke" (fun _m h ~args_base ->
      Aspace.write_word h.Proc.aspace ~addr:secret_slot
        (Aspace.read_word h.Proc.aspace ~addr:args_base);
      0);
  Smod.bind_native smod ~m_id:entry.Registry.m_id ~name:"peek" (fun _m h ~args_base:_ ->
      Aspace.read_word h.Proc.aspace ~addr:secret_slot);
  Smod.bind_native smod ~m_id:entry.Registry.m_id ~name:"gpoke" (fun _m h ~args_base ->
      Aspace.write_word h.Proc.aspace ~addr:(global_addr h)
        (Aspace.read_word h.Proc.aspace ~addr:args_base);
      0);
  Smod.bind_native smod ~m_id:entry.Registry.m_id ~name:"gpeek" (fun _m h ~args_base:_ ->
      Aspace.read_word h.Proc.aspace ~addr:(global_addr h));
  entry

let test_secret_scrubbed_between_tenants () =
  let machine = M.create ~jitter:0.0 () in
  let smod = Smod.install machine () in
  let pool = Smodd.install smod ~config:(one_handle Smodd.Wait) () in
  ignore (secret_module smod);
  let seen = ref (-1) and seen_global = ref (-1) in
  ignore
    (M.spawn machine ~name:"tenant-a" (fun p ->
         let conn =
           Stub.connect smod p ~module_name:"secretmod" ~version:1
             ~credential:(Credential.make ~principal:"alice" ())
         in
         ignore (Stub.call conn ~func:"poke" [| 0xBEEF |]);
         Alcotest.(check int) "tenant A sees its own secret" 0xBEEF
           (Stub.call conn ~func:"peek" [||]);
         Alcotest.(check int) "tenant A sees the pristine global" pristine_global
           (Stub.call conn ~func:"gpeek" [||]);
         ignore (Stub.call conn ~func:"gpoke" [| 0xFACE |]);
         Alcotest.(check int) "tenant A sees its own global write" 0xFACE
           (Stub.call conn ~func:"gpeek" [||]);
         Stub.close conn));
  M.run machine;
  ignore
    (M.spawn machine ~name:"tenant-b" (fun p ->
         let conn =
           Stub.connect smod p ~module_name:"secretmod" ~version:1
             ~credential:(Credential.make ~principal:"bob" ())
         in
         seen := Stub.call conn ~func:"peek" [||];
         seen_global := Stub.call conn ~func:"gpeek" [||];
         Stub.close conn));
  M.run machine;
  Alcotest.(check int) "tenant B reads a scrubbed slot" 0 !seen;
  Alcotest.(check int) "tenant B reads the re-installed global, not tenant A's"
    pristine_global !seen_global;
  let st = Smodd.status pool in
  Alcotest.(check int) "same single handle served both" 1 st.Smodd.st_total_handles;
  Alcotest.(check bool) "scrub bytes counted" true (counter "secmodule.scrub_bytes" > 0)

(* ------------------------- admission queue --------------------------- *)

(* A holds the only handle and blocks inside a call so B's start_session
   runs while the pool is saturated. *)
let overflow_world overflow ~on_b =
  let world = World.create ~pool:(one_handle overflow) ~with_rpc:false () in
  ignore
    (M.spawn world.World.machine ~name:"holder" (fun p ->
         let conn =
           Stub.connect world.World.smod p ~module_name:Smod_libc.Seclibc.module_name
             ~version:Smod_libc.Seclibc.version
             ~credential:(Credential.make ~principal:"holder" ())
         in
         let holder_handle = handle_pid_of world.World.smod p in
         ignore
           (M.spawn world.World.machine ~name:"second" (fun q ->
                on_b world q ~holder_handle));
         (* The reply block inside this call is where "second" runs. *)
         ignore (Smod_libc.Seclibc.Client.test_incr conn 1);
         Stub.close conn));
  World.run world

let test_admission_reject () =
  let rejects0 = counter "pool.rejects" in
  let outcome = ref `Nothing in
  overflow_world Smodd.Reject ~on_b:(fun world q ~holder_handle:_ ->
      match
        Stub.connect world.World.smod q ~module_name:Smod_libc.Seclibc.module_name
          ~version:Smod_libc.Seclibc.version
          ~credential:(Credential.make ~principal:"second" ())
      with
      | _ -> outcome := `Connected
      | exception Errno.Error (Errno.EAGAIN, msg) -> outcome := `Rejected msg);
  (match !outcome with
  | `Rejected msg ->
      Alcotest.(check bool) "smodd names itself in the error" true
        (String.length msg >= 5 && String.sub msg 0 5 = "smodd")
  | `Connected -> Alcotest.fail "saturated pool accepted a session"
  | `Nothing -> Alcotest.fail "second client never ran");
  Alcotest.(check int) "one pool.reject" 1 (counter "pool.rejects" - rejects0)

let test_admission_wait () =
  let waits0 = counter "pool.waits" in
  let second_handle = ref (-1) and holder = ref (-1) in
  overflow_world Smodd.Wait ~on_b:(fun world q ~holder_handle ->
      holder := holder_handle;
      let conn =
        Stub.connect world.World.smod q ~module_name:Smod_libc.Seclibc.module_name
          ~version:Smod_libc.Seclibc.version
          ~credential:(Credential.make ~principal:"second" ())
      in
      second_handle := handle_pid_of world.World.smod q;
      Alcotest.(check int) "queued client's calls work" 8
        (Smod_libc.Seclibc.Client.test_incr conn 7);
      Stub.close conn);
  Alcotest.(check int) "waiter got the holder's recycled handle" !holder !second_handle;
  Alcotest.(check int) "one pool.wait" 1 (counter "pool.waits" - waits0)

(* A waiter queued because the global cap binds must be served when a
   handle of a *different* module parks: the parking handle is retired
   and the freed slot spawned for the starved module — parking it idle
   would strand the waiter forever. *)
let ping_module smod ~name =
  let b = Smof.Builder.create ~name ~version:1 in
  ignore (Smof.Builder.add_native_function b ~name:"ping" ~native:"ping" ~size_hint:32 ());
  let entry = Toolchain.package smod ~image:(Smof.Builder.finish b) () in
  Smod.bind_native smod ~m_id:entry.Registry.m_id ~name:"ping" (fun _m _h ~args_base:_ -> 7);
  entry

let test_parked_handle_yields_to_starved_module () =
  let machine = M.create ~jitter:0.0 () in
  let smod = Smod.install machine () in
  let pool = Smodd.install smod ~config:(one_handle Smodd.Wait) () in
  ignore (ping_module smod ~name:"alpha");
  ignore (ping_module smod ~name:"beta");
  let reclaims0 = counter "pool.reclaims" in
  let beta_result = ref (-1) in
  ignore
    (M.spawn machine ~name:"alpha-client" (fun p ->
         let conn =
           Stub.connect smod p ~module_name:"alpha" ~version:1
             ~credential:(Credential.make ~principal:"alice" ())
         in
         ignore
           (M.spawn machine ~name:"beta-client" (fun q ->
                let conn =
                  Stub.connect smod q ~module_name:"beta" ~version:1
                    ~credential:(Credential.make ~principal:"bob" ())
                in
                beta_result := Stub.call conn ~func:"ping" [||];
                Stub.close conn));
         (* beta-client queues inside this call's reply block (alpha's
            handle holds the only global slot); closing parks the handle,
            which must yield the slot rather than idle. *)
         ignore (Stub.call conn ~func:"ping" [||]);
         Stub.close conn));
  M.run machine;
  Alcotest.(check int) "starved beta client was served" 7 !beta_result;
  Alcotest.(check int) "alpha's parking handle was reclaimed" 1
    (counter "pool.reclaims" - reclaims0);
  let st = Smodd.status pool in
  Alcotest.(check int) "global cap still respected" 1 st.Smodd.st_total_handles;
  Alcotest.(check int) "nobody left queued" 0 st.Smodd.st_total_waiters

(* A client SIGKILLed while blocked in the admission queue must drop out
   of the waiter accounting, and any handle granted but never attached
   must return to the pool — no leaked capacity either way. *)
let test_killed_waiter_releases_capacity () =
  let world = World.create ~pool:(one_handle Smodd.Wait) ~with_rpc:false () in
  let machine = world.World.machine and smod = world.World.smod in
  let cancelled0 = counter "pool.cancelled" in
  ignore
    (M.spawn machine ~name:"holder" (fun p ->
         let conn =
           Stub.connect smod p ~module_name:Smod_libc.Seclibc.module_name
             ~version:Smod_libc.Seclibc.version
             ~credential:(Credential.make ~principal:"holder" ())
         in
         let victim =
           M.spawn machine ~name:"victim" (fun q ->
               ignore
                 (Stub.connect smod q ~module_name:Smod_libc.Seclibc.module_name
                    ~version:Smod_libc.Seclibc.version
                    ~credential:(Credential.make ~principal:"victim" ()));
               Alcotest.fail "killed waiter must never attach")
         in
         (* The victim queues inside this call's reply block. *)
         ignore (Smod_libc.Seclibc.Client.test_incr conn 1);
         M.kill machine ~pid:victim.Proc.pid ~signal:Smod_kern.Signal.sigkill;
         Stub.close conn));
  World.run world;
  Alcotest.(check int) "victim uncounted" 1 (counter "pool.cancelled" - cancelled0);
  let st = Smodd.status (Option.get world.World.pool) in
  Alcotest.(check int) "no waiter left on the books" 0 st.Smodd.st_total_waiters;
  Alcotest.(check int) "handle survived" 1 st.Smodd.st_total_handles;
  (* The slot the victim would have consumed is still usable. *)
  let hit0 = counter "pool.hit" in
  ignore
    (M.spawn machine ~name:"after" (fun p ->
         let conn =
           Stub.connect smod p ~module_name:Smod_libc.Seclibc.module_name
             ~version:Smod_libc.Seclibc.version
             ~credential:(Credential.make ~principal:"after" ())
         in
         Alcotest.(check int) "pool still serves" 3
           (Smod_libc.Seclibc.Client.test_incr conn 2);
         Stub.close conn));
  World.run world;
  Alcotest.(check int) "later client reuses the parked handle" 1 (counter "pool.hit" - hit0)

(* A pooled tenant killed mid-batch — ring slots Submitted but the batch
   trap never issued, so the kernel never stamped them and the handle
   never claimed them — must not leak those slots into the next tenancy:
   the recycle path counts and drops them, and the next tenant's ring
   starts zeroed. *)
let test_killed_mid_batch_scrubs_ring () =
  let world = World.create ~pool:(one_handle Smodd.Wait) ~with_rpc:false () in
  let machine = world.World.machine and smod = world.World.smod in
  let stale0 = counter "ring.stale_drops" in
  let victim_handle = ref (-1) in
  let victim =
    M.spawn machine ~name:"ring-victim" (fun p ->
        let conn =
          Stub.connect smod p ~module_name:Smod_libc.Seclibc.module_name
            ~version:Smod_libc.Seclibc.version
            ~credential:(Credential.make ~principal:"victim" ())
        in
        victim_handle := handle_pid_of smod p;
        let r = Stub.arm_ring conn in
        (* One clean batch proves the fast path is live for this tenant. *)
        ignore (Stub.call_batch conn ~func:"test_incr" (List.init 4 (fun i -> [| i |])));
        (* Now die mid-batch: fill slots by hand, never trap. *)
        let info = Stub.conn_info conn in
        let fid = Option.get (Stub.func_id conn "test_incr") in
        for i = 1 to 3 do
          ignore
            (Smod_ring.Ring.try_submit r ~m_id:info.Wire.m_id ~func_id:fid
               ~client_sp:p.Proc.sp ~client_fp:0 ~args:[| i |])
        done;
        Alcotest.(check int) "3 slots left in flight" 3 (Smod_ring.Ring.stale_submitted r);
        (* Park so the kill lands while the slots are still Submitted. *)
        p.Proc.daemon <- true;
        Effect.perform (Sched.Block (Sched.Custom "mid-batch")))
  in
  M.run machine;
  M.kill machine ~pid:victim.Proc.pid ~signal:Smod_kern.Signal.sigkill;
  M.run machine;
  Alcotest.(check int) "3 stale slots counted at recycle" 3
    (counter "ring.stale_drops" - stale0);
  let st = Smodd.status (Option.get world.World.pool) in
  Alcotest.(check int) "handle survived the kill" 1 st.Smodd.st_total_handles;
  Alcotest.(check int) "status surfaces the drops" 3
    (st.Smodd.st_ring_stale_drops - stale0);
  (* The recycled handle serves the next tenant, whose ring starts
     zeroed and whose batch sees only its own results. *)
  ignore
    (M.spawn machine ~name:"ring-next" (fun p ->
         let conn =
           Stub.connect smod p ~module_name:Smod_libc.Seclibc.module_name
             ~version:Smod_libc.Seclibc.version
             ~credential:(Credential.make ~principal:"next" ())
         in
         Alcotest.(check int) "recycled the victim's handle" !victim_handle
           (handle_pid_of smod p);
         let r = Stub.arm_ring conn in
         Alcotest.(check int) "fresh ring: head 0" 0 (Smod_ring.Ring.head r);
         Alcotest.(check int) "fresh ring: occupancy 0" 0 (Smod_ring.Ring.occupancy r);
         let results =
           Stub.call_batch conn ~func:"test_incr" (List.init 8 (fun i -> [| i * 2 |]))
         in
         List.iteri
           (fun i res ->
             match res with
             | Ok v -> Alcotest.(check int) (Printf.sprintf "slot %d" i) ((i * 2) + 1) v
             | Error (_, m) -> Alcotest.failf "slot %d: %s" i m)
           results;
         Alcotest.(check int) "nothing stale after the batch" 0
           (Smod_ring.Ring.stale_submitted r);
         Stub.close conn));
  M.run machine

(* uninstall must wake queued clients (ENOENT, as on module removal),
   deregister its module-remove hook, and leave the subsystem clean
   enough that a fresh smodd can be installed. *)
let test_uninstall_wakes_waiters () =
  let world = World.create ~pool:(one_handle Smodd.Wait) ~with_rpc:false () in
  let machine = world.World.machine and smod = world.World.smod in
  let pool = Option.get world.World.pool in
  let outcome = ref `Nothing in
  ignore
    (M.spawn machine ~name:"holder" (fun p ->
         let conn =
           Stub.connect smod p ~module_name:Smod_libc.Seclibc.module_name
             ~version:Smod_libc.Seclibc.version
             ~credential:(Credential.make ~principal:"holder" ())
         in
         ignore
           (M.spawn machine ~name:"queued" (fun q ->
                match
                  Stub.connect smod q ~module_name:Smod_libc.Seclibc.module_name
                    ~version:Smod_libc.Seclibc.version
                    ~credential:(Credential.make ~principal:"queued" ())
                with
                | _ -> outcome := `Connected
                | exception Errno.Error (Errno.ENOENT, _) -> outcome := `Enoent));
         ignore (Smod_libc.Seclibc.Client.test_incr conn 1);
         (* "queued" is blocked in the admission queue; tear smodd down
            from under both of us. *)
         Smodd.uninstall pool));
  World.run world;
  Alcotest.(check bool) "queued client woken with ENOENT" true (!outcome = `Enoent);
  let st = Smodd.status pool in
  Alcotest.(check int) "no handles left" 0 st.Smodd.st_total_handles;
  Alcotest.(check int) "no waiters left" 0 st.Smodd.st_total_waiters;
  (* A fresh smodd installs cleanly and module removal touches only it —
     the old pool's remove hook is gone. *)
  let pool2 = Smodd.install smod ~config:(one_handle Smodd.Wait) () in
  ignore
    (M.spawn machine ~name:"fresh" (fun p ->
         let conn =
           Stub.connect smod p ~module_name:Smod_libc.Seclibc.module_name
             ~version:Smod_libc.Seclibc.version
             ~credential:(Credential.make ~principal:"fresh" ())
         in
         ignore (Smod_libc.Seclibc.Client.test_incr conn 1);
         Stub.close conn));
  M.run machine;
  Alcotest.(check int) "reinstalled pool serves" 1
    (Smodd.status pool2).Smodd.st_total_handles;
  ignore
    (M.spawn machine ~name:"admin" (fun p ->
         let bytes = Credential.to_bytes (Credential.make ~principal:"root" ()) in
         let addr = Layout.data_base + 512 in
         Aspace.write_bytes p.Proc.aspace ~addr bytes;
         ignore
           (M.syscall machine p Sysno.smod_remove
              [| world.World.libc_entry.Registry.m_id; addr; Bytes.length bytes |])));
  M.run machine;
  Alcotest.(check int) "removal drains only the live pool" 0
    (Smodd.status pool2).Smodd.st_total_handles;
  Smodd.uninstall pool2

(* ---------------------- one pooled dispatch, counted ----------------- *)

let test_one_pooled_dispatch_deltas () =
  let watched =
    [
      "secmodule.calls";
      "secmodule.policy_checks";
      "policy_cache.hits";
      "policy_cache.misses";
      "policy_cache.inserts";
      "kern.syscalls";
      "kern.msgq_sends";
      "kern.msgq_recvs";
    ]
  in
  let deltas = ref [] in
  let world = World.create ~pool:Smodd.default_config ~with_rpc:false () in
  World.spawn_seclibc_client world ~name:"cache-client" (fun _p conn ->
      (* Call 1 probes (miss) and populates the cache; call 2 is the
         steady state being pinned here. *)
      ignore (Smod_libc.Seclibc.Client.test_incr conn 1);
      let before = List.map (fun n -> (n, counter n)) watched in
      ignore (Smod_libc.Seclibc.Client.test_incr conn 2);
      deltas := List.map (fun (n, b) -> (n, counter n - b)) before);
  World.run world;
  let delta name =
    match List.assoc_opt name !deltas with
    | Some d -> d
    | None -> Alcotest.failf "no delta for %s" name
  in
  Alcotest.(check int) "1 dispatched call" 1 (delta "secmodule.calls");
  Alcotest.(check int) "1 cache hit" 1 (delta "policy_cache.hits");
  Alcotest.(check int) "0 cache misses" 0 (delta "policy_cache.misses");
  Alcotest.(check int) "0 inserts" 0 (delta "policy_cache.inserts");
  Alcotest.(check int) "policy evaluation replaced by the probe" 0
    (delta "secmodule.policy_checks");
  Alcotest.(check int) "1 kernel trap" 1 (delta "kern.syscalls");
  Alcotest.(check int) "2 msgq sends" 2 (delta "kern.msgq_sends");
  Alcotest.(check int) "2 msgq recvs" 2 (delta "kern.msgq_recvs")

let test_quota_policy_never_cached () =
  let world =
    World.create ~policy:(Policy.Call_quota 1_000) ~pool:Smodd.default_config ~with_rpc:false ()
  in
  let deltas = ref (0, 0) in
  World.spawn_seclibc_client world ~name:"quota-client" (fun _p conn ->
      (* Baseline after connect: the establishment-phase policy check is
         not the per-call evaluation being pinned here. *)
      let inserts0 = counter "policy_cache.inserts" in
      let checks0 = counter "secmodule.policy_checks" in
      ignore (Smod_libc.Seclibc.Client.test_incr conn 1);
      ignore (Smod_libc.Seclibc.Client.test_incr conn 2);
      deltas :=
        (counter "policy_cache.inserts" - inserts0, counter "secmodule.policy_checks" - checks0));
  World.run world;
  let inserts, checks = !deltas in
  Alcotest.(check int) "stateful policy bypasses the cache" 0 inserts;
  Alcotest.(check int) "every call fully evaluated" 2 checks

(* --------------------------- cache unit ------------------------------ *)

let test_cache_ttl_and_eviction () =
  let clock = Clock.create ~jitter:0.0 () in
  let cache = Policy_cache.create ~clock ~ttl_us:100.0 ~capacity:2 in
  let exp0 = counter "policy_cache.expirations" and ev0 = counter "policy_cache.evictions" in
  let probe d =
    Policy_cache.lookup cache ~cred_digest:d ~func_name:"f" ~m_id:1 ~policy_rev:1
      ~keystore_gen:0
  in
  let put d =
    Policy_cache.store cache ~cred_digest:d ~func_name:"f" ~m_id:1 ~policy_rev:1 ~keystore_gen:0
      Policy_cache.Allow
  in
  put "a";
  Alcotest.(check bool) "fresh entry hits" true (probe "a" = Some Policy_cache.Allow);
  Clock.charge_cycles clock (200.0 *. Cost.cycles_per_us);
  Alcotest.(check bool) "expired after the TTL" true (probe "a" = None);
  Alcotest.(check int) "expiration counted" 1 (counter "policy_cache.expirations" - exp0);
  (* FIFO eviction at capacity 2. *)
  put "a";
  put "b";
  put "c";
  Alcotest.(check int) "capacity bound holds" 2 (Policy_cache.size cache);
  Alcotest.(check bool) "oldest evicted" true (probe "a" = None);
  Alcotest.(check bool) "newest kept" true (probe "c" = Some Policy_cache.Allow);
  Alcotest.(check int) "eviction counted" 1 (counter "policy_cache.evictions" - ev0);
  (* A denial round-trips with its reason. *)
  Policy_cache.store cache ~cred_digest:"d" ~func_name:"g" ~m_id:2 ~policy_rev:1 ~keystore_gen:0
    (Policy_cache.Deny "quota");
  Alcotest.(check bool) "denial cached" true
    (Policy_cache.lookup cache ~cred_digest:"d" ~func_name:"g" ~m_id:2 ~policy_rev:1
       ~keystore_gen:0
    = Some (Policy_cache.Deny "quota"));
  Alcotest.(check int) "invalidate_module drops only module 2" 1
    (Policy_cache.invalidate_module cache ~m_id:2);
  Alcotest.(check bool) "flush empties" true (Policy_cache.flush cache >= 0);
  Alcotest.(check int) "empty after flush" 0 (Policy_cache.size cache)

(* A key that left the table (expiry, invalidation) and was re-stored
   must occupy its *new* FIFO position: eviction skips the stale order
   record instead of dropping the freshly refreshed entry. *)
let test_cache_refresh_keeps_fifo_order () =
  let clock = Clock.create ~jitter:0.0 () in
  let cache = Policy_cache.create ~clock ~ttl_us:0.0 ~capacity:2 in
  let probe d m =
    Policy_cache.lookup cache ~cred_digest:d ~func_name:"f" ~m_id:m ~policy_rev:1
      ~keystore_gen:0
  in
  let put d m =
    Policy_cache.store cache ~cred_digest:d ~func_name:"f" ~m_id:m ~policy_rev:1 ~keystore_gen:0
      Policy_cache.Allow
  in
  put "a" 1;
  put "b" 2;
  (* "a" leaves the table (module 1 invalidated) and is re-stored: it is
     now the *newest* entry even though a stale order record for it still
     sits at the head of the queue. *)
  Alcotest.(check int) "invalidation drops a" 1 (Policy_cache.invalidate_module cache ~m_id:1);
  put "a" 1;
  put "c" 3;
  Alcotest.(check int) "capacity bound holds" 2 (Policy_cache.size cache);
  Alcotest.(check bool) "refreshed a survives (not evicted via its stale record)" true
    (probe "a" 1 = Some Policy_cache.Allow);
  Alcotest.(check bool) "b, the oldest live entry, was evicted" true (probe "b" 2 = None);
  Alcotest.(check bool) "c kept" true (probe "c" 3 = Some Policy_cache.Allow)

let test_keystore_change_flushes () =
  let world = World.create ~pool:Smodd.default_config ~with_rpc:false () in
  let flushes0 = counter "policy_cache.flushes" in
  World.spawn_seclibc_client world ~name:"ks-client" (fun _p conn ->
      ignore (Smod_libc.Seclibc.Client.test_incr conn 1);
      Keystore.add_principal (Smod.keystore world.World.smod) ~name:"newkey" ~secret:"s";
      (* Generation moved: the next call re-evaluates and re-populates. *)
      ignore (Smod_libc.Seclibc.Client.test_incr conn 2));
  World.run world;
  Alcotest.(check int) "keystore change flushed the cache" 1
    (counter "policy_cache.flushes" - flushes0);
  let st = Smodd.status (Option.get world.World.pool) in
  Alcotest.(check (option int)) "repopulated under the new generation" (Some 1)
    st.Smodd.st_cache_size

(* ----------------------- module removal ------------------------------ *)

let test_remove_module_retires_pool () =
  let world = World.create ~pool:(one_handle Smodd.Wait) ~with_rpc:false () in
  let machine = world.World.machine and smod = world.World.smod in
  let pool = Option.get world.World.pool in
  let parked_pid = ref (-1) in
  ignore
    (M.spawn machine ~name:"warm" (fun p ->
         let conn =
           Stub.connect smod p ~module_name:Smod_libc.Seclibc.module_name
             ~version:Smod_libc.Seclibc.version
             ~credential:(Credential.make ~principal:"client" ())
         in
         parked_pid := handle_pid_of smod p;
         ignore (Smod_libc.Seclibc.Client.test_incr conn 1);
         Stub.close conn));
  World.run world;
  let inval0 = counter "policy_cache.invalidations" in
  let m_id = world.World.libc_entry.Registry.m_id in
  ignore
    (M.spawn machine ~name:"admin" (fun p ->
         let bytes = Credential.to_bytes (Credential.make ~principal:"root" ()) in
         let addr = Layout.data_base + 512 in
         Aspace.write_bytes p.Proc.aspace ~addr bytes;
         ignore (M.syscall machine p Sysno.smod_remove [| m_id; addr; Bytes.length bytes |])));
  World.run world;
  Alcotest.(check int) "no pooled handles survive removal" 0
    (Smodd.status pool).Smodd.st_total_handles;
  Alcotest.(check bool) "cached decisions evicted" true
    (counter "policy_cache.invalidations" - inval0 >= 1);
  Alcotest.(check bool) "parked handle process is gone" true
    (match M.proc machine !parked_pid with None -> true | Some h -> Proc.is_zombie h);
  (* A client arriving after removal must see ENOENT, never a stale
     handle for the dead module. *)
  let outcome = ref `Nothing in
  ignore
    (M.spawn machine ~name:"late" (fun p ->
         match
           Stub.connect smod p ~module_name:Smod_libc.Seclibc.module_name
             ~version:Smod_libc.Seclibc.version
             ~credential:(Credential.make ~principal:"late" ())
         with
         | _ -> outcome := `Connected
         | exception Errno.Error (Errno.ENOENT, _) -> outcome := `Enoent));
  World.run world;
  Alcotest.(check bool) "late client gets ENOENT" true (!outcome = `Enoent)

(* ------------------------------ hygiene ------------------------------ *)

let test_pooled_churn_no_frame_leak () =
  let world = World.create ~pool:(one_handle Smodd.Wait) ~with_rpc:false () in
  let machine = world.World.machine in
  let baseline = ref 0 in
  for round = 1 to 5 do
    ignore
      (M.spawn machine ~name:(Printf.sprintf "churn-%d" round) (fun p ->
           let conn =
             Stub.connect world.World.smod p ~module_name:Smod_libc.Seclibc.module_name
               ~version:Smod_libc.Seclibc.version
               ~credential:(Credential.make ~principal:"client" ())
           in
           ignore (Smod_libc.Seclibc.Client.malloc conn 128);
           Stub.close conn));
    World.run world;
    let live = Smod_vmem.Phys.live_frames (M.phys machine) in
    if round = 1 then baseline := live
    else
      Alcotest.(check bool)
        (Printf.sprintf "round %d: %d frames vs baseline %d" round live !baseline)
        true
        (live <= !baseline + 8)
  done

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "pool"
    [
      ( "pooled sessions",
        [
          tc "attach/detach reuses the handle" test_attach_detach_reuse;
          tc "secret scrubbed between tenants" test_secret_scrubbed_between_tenants;
          tc "admission overflow: Reject" test_admission_reject;
          tc "admission overflow: Wait" test_admission_wait;
          tc "parked handle yields to a starved module" test_parked_handle_yields_to_starved_module;
          tc "killed waiter releases its capacity" test_killed_waiter_releases_capacity;
          tc "kill mid-batch scrubs the ring" test_killed_mid_batch_scrubs_ring;
        ] );
      ( "policy cache",
        [
          tc "one pooled dispatch, counted" test_one_pooled_dispatch_deltas;
          tc "stateful policies bypass the cache" test_quota_policy_never_cached;
          tc "TTL, FIFO eviction, invalidation" test_cache_ttl_and_eviction;
          tc "re-stored key keeps FIFO order" test_cache_refresh_keeps_fifo_order;
          tc "keystore change flushes" test_keystore_change_flushes;
        ] );
      ( "lifecycle",
        [
          tc "sys_smod_remove retires pooled handles" test_remove_module_retires_pool;
          tc "uninstall wakes queued waiters" test_uninstall_wakes_waiters;
          tc "no frame leaks across pooled churn" test_pooled_churn_no_frame_leak;
        ] );
    ]
