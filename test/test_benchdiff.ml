(* The benchdiff comparison core (lib/bench_kit/diff.ml) and the
   trajectory record (lib/bench_kit/trajectory.ml): per-metric gates —
   means tighter than p99 — skipped-row accounting, gates.json parsing,
   and headline history ordering. *)

module Json = Smod_util.Json
module Bench_json = Smod_bench_kit.Bench_json
module Diff = Smod_bench_kit.Diff
module Trajectory = Smod_bench_kit.Trajectory

(* A small two-experiment document shaped like the real artifact: a mean
   row, a p99 row (label marks the metric class), and an exact-zero E12
   row for the additive-epsilon cases. *)
let doc ?(smod_mean = 6.407) ?(ring_p99 = 1.9326) ?(queue_depth = 0.0) () =
  {
    Bench_json.mode = "quick";
    meta = None;
    experiments =
      [
        Bench_json.experiment ~id:"e1" ~title:"Figure 8"
          [
            Bench_json.row ~label:"getpid()" ~mean:0.658 ~stdev:0.005 ();
            Bench_json.row ~label:"SMOD(test-incr)" ~mean:smod_mean ~stdev:0.06 ();
          ];
        Bench_json.experiment ~id:"e18" ~title:"rings"
          [
            Bench_json.row ~label:"ring batch 16 (mean)" ~mean:0.9663 ~stdev:0.01 ();
            Bench_json.row ~label:"ring batch 16 (p99)" ~mean:ring_p99 ~stdev:0.0 ();
          ];
        Bench_json.experiment ~id:"e12" ~title:"queueing"
          [
            Bench_json.row ~label:"1 clients, own handles" ~unit_:"depth" ~mean:queue_depth
              ~stdev:0.0 ();
          ];
      ];
    metrics = [];
  }

let statuses r =
  List.map
    (fun (rr : Diff.row_result) -> (rr.Diff.rr_experiment ^ "/" ^ rr.rr_label, rr.rr_status))
    r.Diff.rows

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let test_within_tolerance () =
  let baseline = doc () in
  let current = doc ~smod_mean:(6.407 *. 1.01) () in
  let r = Diff.compare_docs ~baseline ~current () in
  Alcotest.(check int) "all rows compared" 5 r.Diff.compared;
  Alcotest.(check int) "no skips" 0 r.Diff.skipped;
  Alcotest.(check bool) "1% mean drift passes at 2%" true (Diff.ok r)

let test_mean_regression_fails () =
  let baseline = doc () in
  let current = doc ~smod_mean:(6.407 *. 1.05) () in
  let r = Diff.compare_docs ~baseline ~current () in
  Alcotest.(check bool) "5% mean drift fails at 2%" false (Diff.ok r);
  let failed =
    List.filter (fun (rr : Diff.row_result) -> rr.Diff.rr_status = Diff.Fail) r.Diff.rows
  in
  Alcotest.(check (list string)) "only the drifted row"
    [ "SMOD(test-incr)" ]
    (List.map (fun (rr : Diff.row_result) -> rr.Diff.rr_label) failed)

let test_p99_looser_gate () =
  (* A 3% drift on a p99 row: over the 2% mean gate, inside the 5% p99
     gate — it must be classified P99 and pass.  At 7% it fails even the
     looser gate. *)
  let baseline = doc () in
  let wobble = doc ~ring_p99:(1.9326 *. 1.03) () in
  let r = Diff.compare_docs ~baseline ~current:wobble () in
  Alcotest.(check bool) "3% p99 drift passes at 5%" true (Diff.ok r);
  (match
     List.find
       (fun (rr : Diff.row_result) -> rr.Diff.rr_label = "ring batch 16 (p99)")
       r.Diff.rows
   with
  | rr ->
      Alcotest.(check bool) "classified p99" true (rr.Diff.rr_metric = Diff.P99);
      Alcotest.(check (float 0.0)) "judged at the p99 tolerance" 0.05 rr.Diff.rr_rel_tol);
  let spike = doc ~ring_p99:(1.9326 *. 1.07) () in
  let r = Diff.compare_docs ~baseline ~current:spike () in
  Alcotest.(check bool) "7% p99 drift fails at 5%" false (Diff.ok r);
  (* The same 3% drift on the mean row fails: means are gated tighter. *)
  let mean_wobble = doc ~smod_mean:(6.407 *. 1.03) () in
  let r = Diff.compare_docs ~baseline ~current:mean_wobble () in
  Alcotest.(check bool) "3% mean drift fails at 2%" false (Diff.ok r)

let test_missing_row_skipped () =
  (* A smoke run carrying only e1: the e18/e12 baseline rows are
     reported skipped — visible, not a silent pass — and the gate still
     passes on what was compared. *)
  let baseline = doc () in
  let subset =
    { baseline with Bench_json.experiments = [ List.hd baseline.Bench_json.experiments ] }
  in
  let r = Diff.compare_docs ~baseline ~current:subset () in
  Alcotest.(check int) "two rows compared" 2 r.Diff.compared;
  Alcotest.(check int) "three rows skipped" 3 r.Diff.skipped;
  Alcotest.(check bool) "subset run passes" true (Diff.ok r);
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " skipped") true
        (List.assoc_opt key (statuses r) = Some Diff.Skipped))
    [ "e18/ring batch 16 (mean)"; "e18/ring batch 16 (p99)"; "e12/1 clients, own handles" ];
  (* The report renders the skip so CI logs show it. *)
  let rendered = Diff.render r in
  Alcotest.(check bool) "render mentions skips" true (contains ~affix:"3 skipped" rendered);
  (* Disjoint documents compare nothing — that is a failure, not a pass. *)
  let disjoint = { baseline with Bench_json.experiments = [] } in
  let r0 = Diff.compare_docs ~baseline ~current:disjoint () in
  Alcotest.(check bool) "nothing compared fails" false (Diff.ok r0)

let test_zero_row_epsilon_and_override () =
  (* E12 rows are exactly 0.0; a pure relative gate would fail on any
     change.  The tight default epsilon catches 0.0 -> 0.25; a looser
     per-experiment override waves it through and is recorded per row. *)
  let baseline = doc () in
  let current = doc ~queue_depth:0.25 () in
  let strict = Diff.compare_docs ~baseline ~current () in
  Alcotest.(check bool) "0.0 -> 0.25 caught" false (Diff.ok strict);
  let gates = { Diff.default_gates with Diff.g_abs_eps_for = [ ("e12", 0.5) ] } in
  let eased = Diff.compare_docs ~gates ~baseline ~current () in
  Alcotest.(check bool) "passes with e12 override" true (Diff.ok eased);
  List.iter
    (fun (rr : Diff.row_result) ->
      let expected = if rr.Diff.rr_experiment = "e12" then 0.5 else 1e-9 in
      Alcotest.(check (float 0.0))
        (rr.Diff.rr_experiment ^ "/" ^ rr.Diff.rr_label ^ " judged with its epsilon")
        expected rr.Diff.rr_abs_eps)
    eased.Diff.rows

let test_rel_for_override () =
  (* A per-experiment tolerance override loosens only that experiment's
     rows: a 4% mean drift on e1 fails under the global 2% gate but
     passes once e1 carries a 5%/10% override — and the override is
     recorded in the row it judged. *)
  let baseline = doc () in
  let current = doc ~smod_mean:(6.407 *. 1.04) () in
  let strict = Diff.compare_docs ~baseline ~current () in
  Alcotest.(check bool) "4% mean drift fails globally" false (Diff.ok strict);
  let gates = { Diff.default_gates with Diff.g_rel_for = [ ("e1", (0.05, 0.10)) ] } in
  let eased = Diff.compare_docs ~gates ~baseline ~current () in
  Alcotest.(check bool) "passes with e1 override" true (Diff.ok eased);
  List.iter
    (fun (rr : Diff.row_result) ->
      let expected =
        match (rr.Diff.rr_experiment, rr.Diff.rr_metric) with
        | "e1", Diff.Mean -> 0.05
        | "e1", Diff.P99 -> 0.10
        | _, Diff.Mean -> 0.02
        | _, Diff.P99 -> 0.05
      in
      Alcotest.(check (float 0.0))
        (rr.Diff.rr_experiment ^ "/" ^ rr.Diff.rr_label ^ " judged with its tolerance")
        expected rr.Diff.rr_rel_tol)
    eased.Diff.rows;
  (* An inverted override (mean looser than p99) is rejected up front. *)
  Alcotest.(check bool) "inverted rel_for rejected" true
    (match
       Diff.gates_of_string
         "{\"schema\": \"smod-bench-gates\", \"schema_version\": 1, \"mean_rel\": 0.02, \
          \"p99_rel\": 0.05, \"abs_eps\": 0, \"rel_for\": {\"e21\": {\"mean_rel\": 0.2, \
          \"p99_rel\": 0.1}}}"
     with
    | _ -> false
    | exception Json.Parse_error _ -> true)

let test_schema_mismatch_hard_error () =
  (* A v1 snapshot (or any other version) is a hard parse error with a
     regeneration hint, never a best-effort read. *)
  let check_rejected name s =
    match Bench_json.of_string s with
    | _ -> Alcotest.fail (name ^ ": expected Parse_error")
    | exception Json.Parse_error msg ->
        Alcotest.(check bool) (name ^ " hints at regeneration") true
          (contains ~affix:"bench capture" msg)
  in
  check_rejected "v1"
    "{\"schema\": \"smod-bench\", \"schema_version\": 1, \"mode\": \"quick\", \
     \"experiments\": [], \"metrics\": []}";
  check_rejected "future"
    "{\"schema\": \"smod-bench\", \"schema_version\": 999, \"mode\": \"quick\", \
     \"experiments\": [], \"metrics\": []}"

let test_gates_json () =
  let g =
    Diff.gates_of_string
      "{\"schema\": \"smod-bench-gates\", \"schema_version\": 1, \"mean_rel\": 0.02, \
       \"p99_rel\": 0.05, \"abs_eps\": 1e-9, \"abs_eps_for\": {\"e12\": 0.5}, \
       \"rel_for\": {\"e21\": {\"mean_rel\": 0.05, \"p99_rel\": 0.1}}}"
  in
  Alcotest.(check (float 0.0)) "mean_rel" 0.02 g.Diff.g_mean_rel;
  Alcotest.(check (float 0.0)) "p99_rel" 0.05 g.Diff.g_p99_rel;
  Alcotest.(check bool) "override parsed" true (g.Diff.g_abs_eps_for = [ ("e12", 0.5) ]);
  Alcotest.(check bool) "rel override parsed" true (g.Diff.g_rel_for = [ ("e21", (0.05, 0.1)) ]);
  (* Pre-e21 gates files omit rel_for entirely; still schema_version 1. *)
  let old =
    Diff.gates_of_string
      "{\"schema\": \"smod-bench-gates\", \"schema_version\": 1, \"mean_rel\": 0.02, \
       \"p99_rel\": 0.05, \"abs_eps\": 1e-9}"
  in
  Alcotest.(check bool) "absent rel_for defaults empty" true (old.Diff.g_rel_for = []);
  (* Round-trip through the emitter. *)
  Alcotest.(check bool) "round-trips" true (Diff.gates_of_string (Diff.gates_to_string g) = g);
  (* mean looser than p99 contradicts the design and is rejected. *)
  Alcotest.(check bool) "mean > p99 rejected" true
    (match
       Diff.gates_of_string
         "{\"schema\": \"smod-bench-gates\", \"schema_version\": 1, \"mean_rel\": 0.08, \
          \"p99_rel\": 0.05, \"abs_eps\": 0}"
     with
    | _ -> false
    | exception Json.Parse_error _ -> true)

let entry ~date ~commit ~snapshot =
  let meta =
    { Bench_json.mt_date = date; mt_commit = commit; mt_jobs = 2; mt_sections = [ "e1" ] }
  in
  Trajectory.entry_of_doc ~snapshot { (doc ()) with Bench_json.meta = Some meta }

let test_trajectory_ordering_and_headlines () =
  (* Entries render and serialise in date order regardless of append
     order; appending the same snapshot twice is idempotent. *)
  let a = entry ~date:"2026-08-01" ~commit:"aaaaaaa" ~snapshot:"2026-08-01_aaaaaaa.json" in
  let b = entry ~date:"2026-08-08" ~commit:"bbbbbbb" ~snapshot:"2026-08-08_bbbbbbb.json" in
  let c = entry ~date:"2026-07-15" ~commit:"ccccccc" ~snapshot:"2026-07-15_ccccccc.json" in
  let history = List.fold_left Trajectory.append [] [ b; a; c; a ] in
  Alcotest.(check (list string)) "sorted by date, duplicate dropped"
    [ "2026-07-15"; "2026-08-01"; "2026-08-08" ]
    (List.map (fun (e : Trajectory.entry) -> e.Trajectory.t_date) history);
  let history' = Trajectory.of_string (Trajectory.to_string history) in
  Alcotest.(check bool) "round-trips" true (history = history');
  (* Headlines from the fixture doc: e1 present, the rest null — a
     partial capture records honest gaps, not zeros. *)
  let values = a.Trajectory.t_values in
  Alcotest.(check bool) "e1 headline extracted" true
    (List.assoc "e1_test_incr_us" values = Some 6.407);
  Alcotest.(check bool) "absent section is None" true
    (List.assoc "e16_attach_us" values = None);
  Alcotest.(check (list string)) "every headline key present" Trajectory.headline_keys
    (List.map fst values)

let test_trajectory_slope () =
  (* The E9 headline is a least-squares slope over the assertion-count
     sweep; with means lying exactly on a line the fit is exact. *)
  let e9 =
    Bench_json.experiment ~id:"e9" ~title:"policy complexity"
      [
        Bench_json.row ~label:"keynote-1" ~mean:(6.5 +. (0.7 *. 1.0)) ~stdev:0.0 ();
        Bench_json.row ~label:"keynote-4" ~mean:(6.5 +. (0.7 *. 4.0)) ~stdev:0.0 ();
        Bench_json.row ~label:"keynote-16" ~mean:(6.5 +. (0.7 *. 16.0)) ~stdev:0.0 ();
      ]
  in
  let d = { (doc ()) with Bench_json.experiments = [ e9 ] } in
  let e = Trajectory.entry_of_doc ~snapshot:"s.json" d in
  (match List.assoc "e9_slope_us" e.Trajectory.t_values with
  | Some slope -> Alcotest.(check (float 1e-9)) "slope" 0.7 slope
  | None -> Alcotest.fail "slope missing");
  (* The compiled sweep is absent from the fixture -> None, not 0. *)
  Alcotest.(check bool) "compiled slope is None" true
    (List.assoc "e9_slope_compiled_us" e.Trajectory.t_values = None)

(* Entries serialized before a headline existed (e.g. pre-E24 history)
   lack its key entirely: they must parse, mix with new entries, and
   render "-" for the absent metric — a skipped cell, never an error. *)
let test_trajectory_old_entries_tolerated () =
  let old_json =
    {|{"schema":"smod-bench-trajectory","schema_version":1,"entries":[{"date":"2026-07-01","commit":"0ldc0mm","mode":"quick","jobs":4,"snapshot":"2026-07-01_0ldc0mm.json","values":{"e1_test_incr_us":6.407}}]}|}
  in
  let history = Trajectory.of_string old_json in
  let e24 =
    Bench_json.experiment ~id:"e24" ~title:"fused batch"
      [ Bench_json.row ~label:"ring b64 kn-16 fused (mean)" ~mean:0.963 ~stdev:0.0 () ]
  in
  let d = { (doc ()) with Bench_json.experiments = [ e24 ] } in
  let e = Trajectory.entry_of_doc ~snapshot:"2026-08-08_fffffff.json" d in
  (match List.assoc "e24_fused_batch64_kn16" e.Trajectory.t_values with
  | Some v -> Alcotest.(check (float 1e-9)) "e24 headline extracted" 0.963 v
  | None -> Alcotest.fail "e24 headline missing from a doc that has the row");
  let history = Trajectory.append history e in
  let rendered = Trajectory.render history in
  Alcotest.(check bool) "old entry renders" true (contains ~affix:"0ldc0mm" rendered);
  Alcotest.(check bool) "old entry's e1 value renders" true
    (contains ~affix:"6.4070" rendered);
  Alcotest.(check bool) "new entry's e24 value renders" true
    (contains ~affix:"0.9630" rendered);
  (* The old entry's row ends in "-" cells for every post-dating headline
     (the e24 column included); rendering must not have invented a value. *)
  let old_row =
    List.find (fun l -> contains ~affix:"0ldc0mm" l) (String.split_on_char '\n' rendered)
  in
  Alcotest.(check bool) "absent e24 metric shows a dash" true
    (contains ~affix:"-" old_row && not (contains ~affix:"0.9630" old_row))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "benchdiff"
    [
      ( "gates",
        [
          tc "within tolerance" test_within_tolerance;
          tc "mean regression fails" test_mean_regression_fails;
          tc "p99 judged at looser gate" test_p99_looser_gate;
          tc "zero-row epsilon and override" test_zero_row_epsilon_and_override;
          tc "per-experiment tolerance override" test_rel_for_override;
          tc "gates.json parse and validate" test_gates_json;
        ] );
      ( "skips and schema",
        [
          tc "missing row skipped, not passed" test_missing_row_skipped;
          tc "schema mismatch is a hard error" test_schema_mismatch_hard_error;
        ] );
      ( "trajectory",
        [
          tc "ordering, idempotence, headlines" test_trajectory_ordering_and_headlines;
          tc "e9 least-squares slope" test_trajectory_slope;
          tc "old entries tolerate new headlines" test_trajectory_old_entries_tolerated;
        ] );
    ]
