(* Randomized round-trip and corruption tests for the wire codecs
   (PR 3 satellite): every encoder/decoder pair is exercised over
   Rng-seeded inputs, and the total [_res] decoders must return [Error]
   — never raise — on truncated or corrupt buffers, since an escaped
   exception on a kernel-side decode aborts the whole simulation. *)

module Rng = Smod_util.Rng
open Secmodule

let rounds = 500
let seed = 0x5EC0_0DE3L

(* Wire words are u32: keep generated ints in range so round-trips are
   exact. *)
let word rng = Rng.int rng 0x4000_0000

let random_bytes rng len = Bytes.init len (fun _ -> Char.chr (Rng.int rng 256))

let test_request_roundtrip () =
  let rng = Rng.create seed in
  for _ = 1 to rounds do
    let r =
      {
        Wire.func_id = word rng;
        args_base = word rng;
        client_sp = word rng;
        client_fp = word rng;
      }
    in
    Alcotest.(check bool) "request round-trip" true
      (Wire.request_of_bytes (Wire.request_to_bytes r) = r)
  done

let test_reply_roundtrip () =
  let rng = Rng.create seed in
  for _ = 1 to rounds do
    let r = { Wire.status = Rng.int rng 16; retval = word rng } in
    Alcotest.(check bool) "reply round-trip" true
      (Wire.reply_of_bytes (Wire.reply_to_bytes r) = r)
  done

let test_descriptor_roundtrip () =
  let rng = Rng.create seed in
  for _ = 1 to rounds do
    let d =
      {
        Wire.module_name = String.init (Rng.int rng 40) (fun _ -> Char.chr (Rng.int_in rng 32 126));
        module_version = Rng.int rng 100;
        credential = random_bytes rng (Rng.int rng 200);
      }
    in
    match Wire.descriptor_of_bytes_res (Wire.descriptor_to_bytes d) with
    | Ok d' -> Alcotest.(check bool) "descriptor round-trip" true (d = d')
    | Error m -> Alcotest.failf "descriptor round-trip failed: %s" m
  done

let test_handle_info_roundtrip () =
  let rng = Rng.create seed in
  for _ = 1 to rounds do
    let h =
      {
        Wire.m_id = word rng;
        handle_pid = word rng;
        req_qid = word rng;
        rep_qid = word rng;
      }
    in
    Alcotest.(check bool) "handle_info round-trip" true
      (Wire.handle_info_of_bytes (Wire.handle_info_to_bytes h) = h)
  done

(* Every prefix (strict truncation) and a batch of random corruptions of
   a valid encoding must come back [Error] or [Ok], never raise. *)
let total_on_garbage (type a) name (decode : bytes -> (a, string) result) valid =
  (* Truncations: every strict prefix. *)
  for len = 0 to Bytes.length valid - 1 do
    match decode (Bytes.sub valid 0 len) with
    | Ok _ | Error _ -> ()
    | exception e ->
        Alcotest.failf "%s raised %s on a %d-byte truncation" name (Printexc.to_string e) len
  done;
  (* Extensions and random byte flips. *)
  let rng = Rng.create seed in
  for _ = 1 to rounds do
    let b = Bytes.copy valid in
    let b =
      if Rng.bool rng then Bytes.cat b (random_bytes rng (1 + Rng.int rng 32)) else b
    in
    let flips = 1 + Rng.int rng 4 in
    for _ = 1 to flips do
      Bytes.set b (Rng.int rng (Bytes.length b)) (Char.chr (Rng.int rng 256))
    done;
    match decode b with
    | Ok _ | Error _ -> ()
    | exception e -> Alcotest.failf "%s raised %s on corrupt input" name (Printexc.to_string e)
  done;
  (* Pure noise, including lengths that embed absurd inner sizes. *)
  for _ = 1 to rounds do
    let b = random_bytes rng (Rng.int rng 64) in
    match decode b with
    | Ok _ | Error _ -> ()
    | exception e -> Alcotest.failf "%s raised %s on noise" name (Printexc.to_string e)
  done

let test_decoders_total () =
  total_on_garbage "request_of_bytes_res" Wire.request_of_bytes_res
    (Wire.request_to_bytes { Wire.func_id = 1; args_base = 2; client_sp = 3; client_fp = 4 });
  total_on_garbage "reply_of_bytes_res" Wire.reply_of_bytes_res
    (Wire.reply_to_bytes { Wire.status = 0; retval = 7 });
  total_on_garbage "descriptor_of_bytes_res" Wire.descriptor_of_bytes_res
    (Wire.descriptor_to_bytes
       { Wire.module_name = "seclibc"; module_version = 1; credential = Bytes.create 32 });
  total_on_garbage "handle_info_of_bytes_res" Wire.handle_info_of_bytes_res
    (Wire.handle_info_to_bytes { Wire.m_id = 1; handle_pid = 2; req_qid = 3; rep_qid = 4 })

let test_truncated_descriptor_is_error () =
  (* The specific historical hazard: a name length larger than the
     buffer.  Must be [Error], and the raising variant must raise
     [Invalid_argument] (not an out-of-bounds exception). *)
  let b = Bytes.create 4 in
  Bytes.set b 0 '\xff';
  Bytes.set b 1 '\xff';
  Bytes.set b 2 '\x00';
  Bytes.set b 3 '\x00';
  (match Wire.descriptor_of_bytes_res b with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized name length accepted");
  match Wire.descriptor_of_bytes b with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "raising variant did not raise Invalid_argument"

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "wire"
    [
      ( "round-trips",
        [
          tc "request" test_request_roundtrip;
          tc "reply" test_reply_roundtrip;
          tc "descriptor" test_descriptor_roundtrip;
          tc "handle_info" test_handle_info_roundtrip;
        ] );
      ( "total decoding",
        [
          tc "truncation/corruption/noise" test_decoders_total;
          tc "oversized name length" test_truncated_descriptor_is_error;
        ] );
    ]
