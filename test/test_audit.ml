(* smodctl audit's scoring core (lib/secmodule/audit.ml): an
   over-privileged module — broad grants, Always_allow, unfiltered,
   mostly-unused surface — must score strictly below a tightly-scoped
   one, and the evidence columns (unused grants, denials) must match
   what actually happened on the dispatch path. *)

module M = Smod_kern.Machine
module Errno = Smod_kern.Errno
module Smof = Smod_modfmt.Smof
module Systrace = Smod_systrace.Systrace
open Secmodule

let image ~name funcs =
  let b = Smof.Builder.create ~name ~version:1 in
  List.iter
    (fun fname ->
      ignore
        (Smof.Builder.add_function b ~name:fname
           ~code:(Smod_svm.Asm.assemble "loadarg 0\npush 1\nadd\nret")
           ()))
    funcs;
  Smof.Builder.finish b

let cred name = Credential.make ~principal:name ()

(* The fixture world: "vault" exports two functions under a quota policy
   (both called, quota exhausted so denials exist, live handle under a
   default-deny syscall filter at audit time); "blob" exports six under
   Always_allow, of which clients ever touch one. *)
let with_fixture f =
  Smod_metrics.with_registry (Smod_metrics.create ()) (fun () ->
      let m = M.create ~jitter:0.0 () in
      let smod = Smod.install m () in
      let systrace = Systrace.install m in
      let vault_entry =
        Toolchain.package smod
          ~image:(image ~name:"vault" [ "seal"; "unseal" ])
          ~policy:(Policy.All_of [ Policy.Session_lifetime; Policy.Call_quota 3 ])
          ()
      in
      let _blob_entry =
        Toolchain.package smod
          ~image:(image ~name:"blob" [ "f0"; "f1"; "f2"; "f3"; "f4"; "f5" ])
          ~policy:Policy.Always_allow ()
      in
      (* Exercise blob first: one of six grants, once. *)
      ignore
        (M.spawn m ~name:"blob-client" (fun p ->
             Crt0.run_client smod p ~module_name:"blob" ~version:1 ~credential:(cred "bob")
               (fun conn -> ignore (Stub.call conn ~func:"f0" [| 1 |]))));
      M.run m;
      (* Then audit from inside a live vault session. *)
      let reports = ref [] in
      ignore
        (M.spawn m ~name:"vault-client" (fun p ->
             Crt0.run_client smod p ~module_name:"vault" ~version:1
               ~credential:(cred "alice") (fun conn ->
                 ignore (Stub.call conn ~func:"seal" [| 1 |]);
                 ignore (Stub.call conn ~func:"unseal" [| 2 |]);
                 ignore (Stub.call conn ~func:"seal" [| 3 |]);
                 (* Quota is 3: the fourth call must be denied. *)
                 (match Stub.call conn ~func:"seal" [| 4 |] with
                 | _ -> Alcotest.fail "quota not enforced"
                 | exception Errno.Error (Errno.EACCES, _) -> ());
                 let session =
                   match
                     List.find_opt
                       (fun (s : Smod.session) ->
                         s.Smod.m_id = vault_entry.Registry.m_id)
                       (Smod.active_sessions smod)
                   with
                   | Some s -> s
                   | None -> Alcotest.fail "no live vault session"
                 in
                 (* The handle sits blocked in msgrcv while the audit runs
                    host-side, so a default-deny filter can be attached
                    for the measurement and removed before the next
                    dispatch ever traps. *)
                 Systrace.attach systrace ~pid:session.Smod.handle_pid
                   (Systrace.parse_policy "policy: audit-fixture\ndefault: deny\n");
                 reports := Audit.score ~systrace smod;
                 Systrace.detach systrace ~pid:session.Smod.handle_pid)));
      M.run m;
      f !reports)

let find name reports =
  match List.find_opt (fun (r : Audit.report) -> r.Audit.a_module = name) reports with
  | Some r -> r
  | None -> Alcotest.fail ("no report for " ^ name)

let test_over_privileged_scores_worse () =
  with_fixture (fun reports ->
      Alcotest.(check int) "two modules scored" 2 (List.length reports);
      let vault = find "vault" reports and blob = find "blob" reports in
      Alcotest.(check bool)
        (Printf.sprintf "over-privileged strictly worse (blob %.1f < vault %.1f)"
           blob.Audit.a_score vault.Audit.a_score)
        true
        (blob.Audit.a_score < vault.Audit.a_score);
      (* And not by a hair: the gap spans the breadth + usage weights. *)
      Alcotest.(check bool) "gap is structural" true
        (vault.Audit.a_score -. blob.Audit.a_score > 20.0))

let test_unused_grants_detected () =
  with_fixture (fun reports ->
      let vault = find "vault" reports and blob = find "blob" reports in
      Alcotest.(check (list string)) "blob: five of six grants unused"
        [ "f1"; "f2"; "f3"; "f4"; "f5" ]
        blob.Audit.a_unused;
      Alcotest.(check (list string)) "blob: only f0 dispatched" [ "f0" ]
        blob.Audit.a_dispatched;
      Alcotest.(check (list string)) "vault: no unused grants" [] vault.Audit.a_unused;
      Alcotest.(check int) "vault: three allowed calls" 3 vault.Audit.a_calls;
      Alcotest.(check int) "vault: one denial" 1 vault.Audit.a_denied;
      Alcotest.(check int) "blob: one call, no denials" 1 blob.Audit.a_calls;
      Alcotest.(check int) "blob denials" 0 blob.Audit.a_denied)

let test_components_and_json () =
  with_fixture (fun reports ->
      let vault = find "vault" reports and blob = find "blob" reports in
      let component name (r : Audit.report) =
        match
          List.find_opt (fun (c : Audit.component) -> c.Audit.c_name = name)
            r.Audit.a_components
        with
        | Some c -> c
        | None -> Alcotest.fail ("missing component " ^ name)
      in
      (* Weights sum to 1 so the 0..100 scale is honest. *)
      List.iter
        (fun r ->
          let sum =
            List.fold_left
              (fun a (c : Audit.component) -> a +. c.Audit.c_weight)
              0.0 r.Audit.a_components
          in
          Alcotest.(check (float 1e-9)) "weights sum to 1" 1.0 sum)
        reports;
      Alcotest.(check (float 1e-9)) "Always_allow breadth is zero" 0.0
        (component "policy breadth" blob).Audit.c_score;
      Alcotest.(check bool) "vault breadth positive" true
        ((component "policy breadth" vault).Audit.c_score > 0.0);
      Alcotest.(check (float 1e-9)) "vault fully filtered" 1.0
        (component "systrace coverage" vault).Audit.c_score;
      Alcotest.(check (float 1e-9)) "blob unfiltered" 0.0
        (component "systrace coverage" blob).Audit.c_score;
      (* The --json document round-trips through the parser and carries
         one entry per module. *)
      let j = Smod_util.Json.of_string (Audit.to_string reports) in
      Alcotest.(check string) "schema" "smod-audit"
        (Smod_util.Json.get_string (Smod_util.Json.member_exn "schema" j));
      match Smod_util.Json.member_exn "modules" j with
      | Smod_util.Json.Arr ms -> Alcotest.(check int) "two modules in JSON" 2 (List.length ms)
      | _ -> Alcotest.fail "modules not an array")

(* The origin-coverage component: a module whose compiled policy tests an
   origin_* attribute scores full marks even when ring-3 clients can
   reach it; an equally reachable module whose compiled program carries
   no origin guard is flagged at 0.0.  The flag comes from static
   introspection of the compiled programs (Policy.compiled_stats), never
   from client-supplied attributes. *)
let test_origin_coverage_component () =
  Smod_metrics.with_registry (Smod_metrics.create ()) (fun () ->
      let m = M.create ~jitter:0.0 () in
      let smod = Smod.install m () in
      Smod.set_policy_compile smod true;
      let keynote conds =
        Policy.Keynote
          {
            policy =
              [
                Smod_keynote.Parse.assertion_of_string
                  (Printf.sprintf
                     "keynote-version: 2\nauthorizer: \"POLICY\"\n\
                      licensees: \"alice\"\nconditions: %s\n"
                     conds);
              ];
            levels = [| "deny"; "allow" |];
            min_level = "allow";
            attrs = [];
          }
      in
      ignore
        (Toolchain.package smod
           ~image:(image ~name:"guarded" [ "g" ])
           ~policy:(keynote "origin_ring <= 3 -> \"allow\";")
           ());
      ignore
        (Toolchain.package smod
           ~image:(image ~name:"openmod" [ "h" ])
           ~policy:(keynote "module == \"openmod\" -> \"allow\";")
           ());
      (* One call each so the registry holds a compiled program to
         introspect. *)
      List.iter
        (fun (mod_name, fn) ->
          ignore
            (M.spawn m ~name:(mod_name ^ "-client") (fun p ->
                 Crt0.run_client smod p ~module_name:mod_name ~version:1
                   ~credential:(cred "alice") (fun conn ->
                     ignore (Stub.call conn ~func:fn [| 1 |])))))
        [ ("guarded", "g"); ("openmod", "h") ];
      M.run m;
      let reports = Audit.score smod in
      let component name (r : Audit.report) =
        match
          List.find_opt
            (fun (c : Audit.component) -> c.Audit.c_name = name)
            r.Audit.a_components
        with
        | Some c -> c
        | None -> Alcotest.fail ("missing component " ^ name)
      in
      let origin name = component "origin coverage" (find name reports) in
      Alcotest.(check (float 1e-9)) "origin-guarded module scores full" 1.0
        (origin "guarded").Audit.c_score;
      Alcotest.(check (float 1e-9)) "unguarded reachable module flagged" 0.0
        (origin "openmod").Audit.c_score;
      Alcotest.(check bool) "flag carries the evidence" true
        (String.length (origin "openmod").Audit.c_detail > 0))

(* Without policy compilation there is no program to introspect: the
   component stays neutral rather than rewarding or flagging blindly. *)
let test_origin_coverage_neutral_without_programs () =
  with_fixture (fun reports ->
      let component (r : Audit.report) =
        match
          List.find_opt
            (fun (c : Audit.component) -> c.Audit.c_name = "origin coverage")
            r.Audit.a_components
        with
        | Some c -> c
        | None -> Alcotest.fail "missing origin coverage component"
      in
      List.iter
        (fun name ->
          Alcotest.(check (float 1e-9))
            (name ^ ": neutral with no compiled program")
            0.5
            (component (find name reports)).Audit.c_score)
        [ "vault"; "blob" ])

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "audit"
    [
      ( "least privilege",
        [
          tc "over-privileged scores strictly worse" test_over_privileged_scores_worse;
          tc "unused grants detected" test_unused_grants_detected;
          tc "components and json" test_components_and_json;
          tc "origin coverage component" test_origin_coverage_component;
          tc "origin coverage neutral without programs"
            test_origin_coverage_neutral_without_programs;
        ] );
    ]
