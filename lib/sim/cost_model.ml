type op =
  | Trap_enter
  | Trap_exit
  | Getpid_body
  | Getpid_client_fixup
  | Context_switch
  | Sched_enqueue
  | Sched_wakeup
  | Msgq_send
  | Msgq_recv
  | Copy_bytes of int
  | Page_map
  | Page_unmap
  | Page_protect
  | Tlb_flush
  | Page_fault_resolve
  | Peer_share_fault
  | Cred_check
  | Registry_lookup
  | Policy_always_allow
  | Policy_counter_check
  | Keynote_assertion_eval
  | Policy_compiled_op
  | Policy_fused_setup
  | Policy_vector_op
  | Policy_compile_assertion
  | Stub_push_args of int
  | Stub_receive
  | Stub_return
  | Fork_base
  | Exec_base
  | Aes_block
  | Aes_key_schedule
  | Sha256_block
  | Xdr_encode_word
  | Xdr_decode_word
  | Xdr_bytes of int
  | Udp_send_stack
  | Udp_recv_stack
  | Socket_op
  | Rpc_dispatch
  | Svm_instr
  | Native_call_overhead
  | Pool_admission
  | Handle_recycle
  | Policy_cache_probe
  | Policy_cache_insert
  | Ring_submit
  | Ring_claim
  | Ring_complete
  | Ring_reap
  | Ring_stamp
  | Ring_spin
  | Poll_sweep
  | Poll_slot_scan
  | Poll_doorbell
  | Coord_epoch_check
  | Coord_ctrl_recv
  | Coord_sync_fetch
  | Coord_apply_op
  | Migrate_drain
  | Migrate_reattach

let mhz = 599.0
let cycles_per_us = mhz
let us_of_cycles c = c /. cycles_per_us

(* Calibration anchor: native getpid = trap_enter + getpid_body + trap_exit
   = 170 + 54 + 170 = 394 cycles = 0.658 us at 599 MHz, matching Figure 8
   row 1.  Everything else is an estimate of the same machine's cost for
   that category of work, in the same unit. *)
let cycles = function
  | Trap_enter -> 170.0
  | Trap_exit -> 170.0
  | Getpid_body -> 54.0
  | Getpid_client_fixup -> 75.0
  | Context_switch -> 800.0
  | Sched_enqueue -> 60.0
  | Sched_wakeup -> 140.0
  | Msgq_send -> 260.0
  | Msgq_recv -> 260.0
  | Copy_bytes n -> 40.0 +. (0.3 *. float_of_int n)
  | Page_map -> 130.0
  | Page_unmap -> 110.0
  | Page_protect -> 90.0
  | Tlb_flush -> 220.0
  | Page_fault_resolve -> 1400.0
  | Peer_share_fault -> 1750.0
  | Cred_check -> 150.0
  | Registry_lookup -> 80.0
  | Policy_always_allow -> 25.0
  | Policy_counter_check -> 60.0
  | Keynote_assertion_eval -> 420.0
  | Policy_compiled_op -> 12.0
  | Policy_fused_setup -> 40.0
  | Policy_vector_op -> 12.0
  | Policy_compile_assertion -> 700.0
  | Stub_push_args n -> 18.0 +. (6.0 *. float_of_int n)
  | Stub_receive -> 120.0
  | Stub_return -> 70.0
  | Fork_base -> 28000.0
  | Exec_base -> 95000.0
  | Aes_block -> 360.0
  | Aes_key_schedule -> 1100.0
  | Sha256_block -> 900.0
  | Xdr_encode_word -> 22.0
  | Xdr_decode_word -> 26.0
  | Xdr_bytes n -> 30.0 +. (0.45 *. float_of_int n)
  | Udp_send_stack -> 7600.0
  | Udp_recv_stack -> 8200.0
  | Socket_op -> 420.0
  | Rpc_dispatch -> 240.0
  | Svm_instr -> 3.0
  | Native_call_overhead -> 8.0
  | Pool_admission -> 180.0
  | Handle_recycle -> 420.0
  | Policy_cache_probe -> 55.0
  | Policy_cache_insert -> 95.0
  | Ring_submit -> 70.0
  | Ring_claim -> 40.0
  | Ring_complete -> 40.0
  | Ring_reap -> 30.0
  | Ring_stamp -> 30.0
  | Ring_spin -> 20.0
  | Poll_sweep -> 120.0
  | Poll_slot_scan -> 8.0
  | Poll_doorbell -> 30.0
  | Coord_epoch_check -> 15.0
  | Coord_ctrl_recv -> 2600.0
  | Coord_sync_fetch -> 1200.0
  | Coord_apply_op -> 600.0
  | Migrate_drain -> 900.0
  | Migrate_reattach -> 700.0

let describe = function
  | Trap_enter -> "trap-enter"
  | Trap_exit -> "trap-exit"
  | Getpid_body -> "getpid-body"
  | Getpid_client_fixup -> "getpid-client-fixup"
  | Context_switch -> "context-switch"
  | Sched_enqueue -> "sched-enqueue"
  | Sched_wakeup -> "sched-wakeup"
  | Msgq_send -> "msgq-send"
  | Msgq_recv -> "msgq-recv"
  | Copy_bytes n -> Printf.sprintf "copy-bytes[%d]" n
  | Page_map -> "page-map"
  | Page_unmap -> "page-unmap"
  | Page_protect -> "page-protect"
  | Tlb_flush -> "tlb-flush"
  | Page_fault_resolve -> "page-fault"
  | Peer_share_fault -> "peer-share-fault"
  | Cred_check -> "cred-check"
  | Registry_lookup -> "registry-lookup"
  | Policy_always_allow -> "policy-always-allow"
  | Policy_counter_check -> "policy-counter"
  | Keynote_assertion_eval -> "keynote-assertion"
  | Policy_compiled_op -> "policy-compiled-op"
  | Policy_fused_setup -> "policy-fused-setup"
  | Policy_vector_op -> "policy-vector-op"
  | Policy_compile_assertion -> "policy-compile-assertion"
  | Stub_push_args n -> Printf.sprintf "stub-push-args[%d]" n
  | Stub_receive -> "stub-receive"
  | Stub_return -> "stub-return"
  | Fork_base -> "fork"
  | Exec_base -> "exec"
  | Aes_block -> "aes-block"
  | Aes_key_schedule -> "aes-key-schedule"
  | Sha256_block -> "sha256-block"
  | Xdr_encode_word -> "xdr-encode-word"
  | Xdr_decode_word -> "xdr-decode-word"
  | Xdr_bytes n -> Printf.sprintf "xdr-bytes[%d]" n
  | Udp_send_stack -> "udp-send-stack"
  | Udp_recv_stack -> "udp-recv-stack"
  | Socket_op -> "socket-op"
  | Rpc_dispatch -> "rpc-dispatch"
  | Svm_instr -> "svm-instr"
  | Native_call_overhead -> "native-call"
  | Pool_admission -> "pool-admission"
  | Handle_recycle -> "handle-recycle"
  | Policy_cache_probe -> "policy-cache-probe"
  | Policy_cache_insert -> "policy-cache-insert"
  | Ring_submit -> "ring-submit"
  | Ring_claim -> "ring-claim"
  | Ring_complete -> "ring-complete"
  | Ring_reap -> "ring-reap"
  | Ring_stamp -> "ring-stamp"
  | Ring_spin -> "ring-spin"
  | Poll_sweep -> "poll-sweep"
  | Poll_slot_scan -> "poll-slot-scan"
  | Poll_doorbell -> "poll-doorbell"
  | Coord_epoch_check -> "coord-epoch-check"
  | Coord_ctrl_recv -> "coord-ctrl-recv"
  | Coord_sync_fetch -> "coord-sync-fetch"
  | Coord_apply_op -> "coord-apply-op"
  | Migrate_drain -> "migrate-drain"
  | Migrate_reattach -> "migrate-reattach"
