(** The cycle-cost model.

    Every primitive event in the simulated machine is charged a number of
    CPU cycles here.  The constants are calibrated against the paper's
    testbed (Figure 7: Pentium III "Katmai", 599 MHz, 512 KB L2,
    OpenBSD 3.6) such that the *native getpid* path lands near the paper's
    0.658 µs/call.  Every other benchmark number is emergent: it is the sum
    of the events that path actually executes, not a hard-coded answer.

    Keeping all constants in this one module is deliberate — it is the
    single place where "how expensive is the machine" is decided, and the
    place DESIGN.md points reviewers at. *)

type op =
  | Trap_enter  (** user → kernel transition: int/sysenter + kernel prologue *)
  | Trap_exit  (** kernel → user return path *)
  | Getpid_body  (** the work of [sys_getpid] proper *)
  | Getpid_client_fixup
      (** SecModule special handling: map the handle-side getpid result back
          to the client's pid (§4.3) *)
  | Context_switch  (** scheduler switch between two processes *)
  | Sched_enqueue
  | Sched_wakeup
  | Msgq_send  (** SysV [msgsnd], excluding any blocking *)
  | Msgq_recv  (** SysV [msgrcv], excluding any blocking *)
  | Copy_bytes of int  (** kernel/user or cross-process copy of [n] bytes *)
  | Page_map
  | Page_unmap
  | Page_protect
  | Tlb_flush
  | Page_fault_resolve  (** ordinary fault: look up entry, map page *)
  | Peer_share_fault
      (** the paper's modified [uvm_fault]: consult the SecModule peer's map
          and share its page (§4.1) *)
  | Cred_check  (** per-call credential revalidation in [sys_smod_call] *)
  | Registry_lookup  (** find a registered SecModule by id *)
  | Policy_always_allow
  | Policy_counter_check  (** quota / rate-limit style counters *)
  | Keynote_assertion_eval  (** evaluating one KeyNote assertion *)
  | Policy_compiled_op
      (** one opcode of a compiled decision program
          ([Smod_keynote.Compile]) — the tight-loop replacement for
          {!Keynote_assertion_eval} *)
  | Policy_fused_setup
      (** fused batch engine ([Smod_keynote.Fuse]): building or re-arming
          the batch-invariant snapshot before a batch — prefix opcodes are
          charged as {!Policy_compiled_op} on top; per-slot residue opcodes
          are the only per-slot charge *)
  | Policy_vector_op
      (** one {e pass} of the batch-major residue executor
          ([Smod_keynote.Vexec]) over up to W lanes: same per-unit price
          as {!Policy_compiled_op} (the opcode work is the same), but a
          pass over N live lanes is charged [ceil(N/W)] units — the
          SIMD-style lane-width discount the accelerator guides price.
          At one live lane it degenerates to exactly one compiled op *)
  | Policy_compile_assertion
      (** flattening one assertion into a decision program: delegation
          walk share, constant folding, opcode emission (one-time, cached
          per (credential, policy revision, keystore generation)) *)
  | Stub_push_args of int  (** client stub: push [n] argument words + ids *)
  | Stub_receive  (** handle-side stack repointing ([smod_stub_receive]) *)
  | Stub_return  (** frame restoration on the way back *)
  | Fork_base
  | Exec_base
  | Aes_block  (** one 16-byte AES block (encrypt or decrypt) *)
  | Aes_key_schedule
  | Sha256_block
  | Xdr_encode_word
  | Xdr_decode_word
  | Xdr_bytes of int  (** XDR opaque/string body of [n] bytes *)
  | Udp_send_stack  (** socket → IP → loopback driver, one datagram out *)
  | Udp_recv_stack  (** driver → IP → socket buffer, one datagram in *)
  | Socket_op  (** socket bookkeeping around send/recv *)
  | Rpc_dispatch  (** server-side program/procedure lookup *)
  | Svm_instr  (** one interpreted module-VM instruction *)
  | Native_call_overhead  (** plain user-level call/ret, for baselines *)
  | Pool_admission
      (** smodd (lib/pool): admission-queue bookkeeping when a client asks
          for a pooled handle — free-list probe, fairness cursor, waiter
          enqueue/dequeue *)
  | Handle_recycle
      (** smodd: resetting a parked handle for its next tenant — queue
          flush, stack re-point, pid-cache rewrite (the secret scrub is
          charged separately as {!Copy_bytes}) *)
  | Policy_cache_probe
      (** smodd: one lookup in the policy-decision cache (hash of the
          credential digest + module + revision key) *)
  | Policy_cache_insert  (** smodd: storing a freshly computed decision *)
  | Ring_submit
      (** dispatch ring (lib/ring): client fills one submission slot —
          sequence bump, state store, argument words already in shared
          memory so no copy is charged *)
  | Ring_claim  (** handle side: acquire one stamped Submitted slot *)
  | Ring_complete  (** handle side: store status/retval, flip to Completed *)
  | Ring_reap  (** client side: read one Completed slot and free it *)
  | Ring_stamp
      (** kernel: validate one slot's (module, func) pair and write the
          admission verdict into it during [sys_smod_call_batch] *)
  | Ring_spin
      (** one iteration of the adaptive spin before falling back to a
          blocking wait (both sides of the ring) *)
  | Poll_sweep
      (** kernel poller (SQPOLL mode): fixed overhead of one sweep over
          the registered rings — cursor reload, liveness snapshot.  Charged
          to the poller, never to a client, which is exactly why the
          zero-trap path is honest: the work moved, it did not vanish *)
  | Poll_slot_scan
      (** kernel poller: examining one submission-queue slot during a
          sweep (state load + sequence compare); stamping an admitted slot
          is still charged as {!Ring_stamp} on top *)
  | Poll_doorbell
      (** kernel body of [sys_smod_poll_doorbell]: re-arming a parked
          poller — clear the need-wakeup flag and wake the poller proc
          (the trap itself is charged as usual; this is the only trap the
          client pays while the poller naps) *)
  | Coord_epoch_check
      (** cluster (lib/cluster): one load-and-compare of the shard's
          cached cluster epoch against the coordinator's — the lazy-mode
          per-dispatch tax *)
  | Coord_ctrl_recv
      (** cluster: receiving and acknowledging one eager-broadcast
          control message on a shard — msgq round-trip plus the
          invalidation work it triggers *)
  | Coord_sync_fetch
      (** cluster: a stale shard fetching the coordinator's op log tail
          on its next dispatch (lazy mode) — one fetch amortises a whole
          storm of coalesced ops *)
  | Coord_apply_op
      (** cluster: applying one replicated control op (keystore rotation
          or policy update) to a shard's local kernel *)
  | Migrate_drain
      (** cluster: draining one session off its source shard during live
          migration — detach signalling and pool bookkeeping (the handle
          scrub itself is charged by the pooled path as usual) *)
  | Migrate_reattach
      (** cluster: re-admitting one migrated session on the destination
          shard over and above the normal pooled attach *)

val cycles : op -> float
(** Cycle charge for one occurrence of [op]. *)

val mhz : float
(** Simulated CPU clock: 599.0 (Figure 7). *)

val cycles_per_us : float
val us_of_cycles : float -> float
val describe : op -> string
(** Short human-readable label, used by traces. *)
