module Clock = Smod_sim.Clock
module Cost = Smod_sim.Cost_model

(* Observability (lib/metrics): the paper's modified-UVM events —
   ordinary fault resolutions, faults resolved by mapping the peer's
   frame (modified uvm_fault), and uvmspace_force_share calls. *)
let m_scope = Smod_metrics.scope "vmem"
let m_faults = Smod_metrics.Scope.counter m_scope "faults"
let m_peer_share_faults = Smod_metrics.Scope.counter m_scope "peer_share_faults"
let m_pages_mapped = Smod_metrics.Scope.counter m_scope "pages_mapped"
let m_pages_unmapped = Smod_metrics.Scope.counter m_scope "pages_unmapped"
let m_force_shares = Smod_metrics.Scope.counter m_scope "force_share_calls"
let m_pages_force_shared = Smod_metrics.Scope.counter m_scope "pages_force_shared"

type kind = Text | Data | Heap | Stack | Secret | Mmap

type entry = {
  mutable start_addr : int;
  mutable end_addr : int;
  mutable prot : Prot.t;
  kind : kind;
  name : string;
  mutable inherited_from_peer : bool;
}

exception Segv of { addr : int; access : Prot.access }
exception Prot_violation of { addr : int; access : Prot.access }
exception Overlap of { start_addr : int; end_addr : int }
exception Bad_range of string

type mapping = { mutable frame : Phys.frame; mutable shared : bool }

type t = {
  phys : Phys.t;
  clock : Clock.t;
  name : string;
  mutable entries : entry list;  (* sorted by start_addr *)
  pages : (int, mapping) Hashtbl.t;  (* vpn -> mapping *)
  mutable heap_base_addr : int;
  mutable brk_addr : int;
  mutable peer : t option;
  mutable share_lo : int;
  mutable share_hi : int;
}

let create ~phys ~clock ~name =
  {
    phys;
    clock;
    name;
    entries = [];
    pages = Hashtbl.create 256;
    heap_base_addr = Layout.data_base;
    brk_addr = Layout.data_base;
    peer = None;
    share_lo = 0;
    share_hi = 0;
  }

let name t = t.name
let phys t = t.phys
let clock t = t.clock
let entries t = t.entries
let peer t = t.peer

let in_share_range t addr = t.peer <> None && addr >= t.share_lo && addr < t.share_hi

let check_range ~start_addr ~size =
  if size <= 0 then raise (Bad_range "empty region");
  if not (Layout.is_page_aligned start_addr) then raise (Bad_range "unaligned start");
  if not (Layout.is_page_aligned size) then raise (Bad_range "unaligned size")

let overlaps e lo hi = e.start_addr < hi && lo < e.end_addr

let add_entry t ~start_addr ~size ~prot ~kind ~name =
  check_range ~start_addr ~size;
  let end_addr = start_addr + size in
  List.iter
    (fun e -> if overlaps e start_addr end_addr then raise (Overlap { start_addr; end_addr }))
    t.entries;
  let entry = { start_addr; end_addr; prot; kind; name; inherited_from_peer = false } in
  t.entries <- List.sort (fun a b -> compare a.start_addr b.start_addr) (entry :: t.entries)

let find_entry t addr =
  List.find_opt (fun e -> addr >= e.start_addr && addr < e.end_addr) t.entries

(* The entry that governs [addr] for protection purposes: a local one, or —
   inside the forced-share range — the peer's (the paper's modified
   uvm_fault consults the other process's map). *)
let governing_entry t addr =
  match find_entry t addr with
  | Some _ as found -> found
  | None ->
      if in_share_range t addr then
        match t.peer with Some p -> find_entry p addr | None -> None
      else None

let drop_page t vpn =
  match Hashtbl.find_opt t.pages vpn with
  | None -> ()
  | Some m ->
      Phys.decref t.phys m.frame;
      Hashtbl.remove t.pages vpn;
      Smod_metrics.Counter.incr m_pages_unmapped;
      Clock.charge t.clock Cost.Page_unmap

let remove_range t ~start_addr ~size =
  check_range ~start_addr ~size;
  let end_addr = start_addr + size in
  let lo_vpn = Layout.vpn_of_addr start_addr and hi_vpn = Layout.vpn_of_addr (end_addr - 1) in
  if hi_vpn - lo_vpn + 1 <= Hashtbl.length t.pages then
    for vpn = lo_vpn to hi_vpn do
      drop_page t vpn
    done
  else begin
    (* Sparse mapping under a huge range (e.g. the ~3 GB force-share
       window): walk the page table rather than every vpn in the range. *)
    let victims =
      Hashtbl.fold
        (fun vpn _ acc -> if vpn >= lo_vpn && vpn <= hi_vpn then vpn :: acc else acc)
        t.pages []
    in
    List.iter (drop_page t) victims
  end;
  Clock.charge t.clock Cost.Tlb_flush;
  let adjust acc e =
    if not (overlaps e start_addr end_addr) then e :: acc
    else if e.start_addr >= start_addr && e.end_addr <= end_addr then acc (* fully covered *)
    else if e.start_addr < start_addr && e.end_addr > end_addr then begin
      (* split in two *)
      let right =
        {
          start_addr = end_addr;
          end_addr = e.end_addr;
          prot = e.prot;
          kind = e.kind;
          name = e.name;
          inherited_from_peer = e.inherited_from_peer;
        }
      in
      e.end_addr <- start_addr;
      right :: e :: acc
    end
    else if e.start_addr < start_addr then begin
      e.end_addr <- start_addr;
      e :: acc
    end
    else begin
      e.start_addr <- end_addr;
      e :: acc
    end
  in
  t.entries <-
    List.sort (fun a b -> compare a.start_addr b.start_addr) (List.fold_left adjust [] t.entries)

let protect_range t ~start_addr ~size ~prot =
  check_range ~start_addr ~size;
  let end_addr = start_addr + size in
  List.iter
    (fun e ->
      if overlaps e start_addr end_addr then begin
        if e.start_addr < start_addr || e.end_addr > end_addr then
          raise (Bad_range "protect_range must cover whole entries");
        e.prot <- prot;
        Clock.charge t.clock Cost.Page_protect
      end)
    t.entries;
  Clock.charge t.clock Cost.Tlb_flush

let install_shared t vpn frame =
  Phys.incref frame;
  Hashtbl.replace t.pages vpn { frame; shared = true };
  Smod_metrics.Counter.incr m_pages_mapped;
  Clock.charge t.clock Cost.Page_map

let fault t ~addr ~access =
  let vpn = Layout.vpn_of_addr addr in
  match governing_entry t addr with
  | None -> raise (Segv { addr; access })
  | Some entry ->
      if not (Prot.allows entry.prot access) then raise (Prot_violation { addr; access });
      if not (Hashtbl.mem t.pages vpn) then begin
        let peer_mapping =
          if in_share_range t addr then
            match t.peer with
            | Some p -> Hashtbl.find_opt p.pages vpn
            | None -> None
          else None
        in
        Smod_metrics.Counter.incr m_faults;
        match peer_mapping with
        | Some pm ->
            (* Modified uvm_fault: the peer already has this page — map the
               same frame here as a share. *)
            Clock.charge t.clock Cost.Peer_share_fault;
            Smod_metrics.Counter.incr m_peer_share_faults;
            pm.shared <- true;
            install_shared t vpn pm.frame
        | None ->
            Clock.charge t.clock Cost.Page_fault_resolve;
            let frame = Phys.alloc t.phys in
            let shared = in_share_range t addr in
            Hashtbl.replace t.pages vpn { frame; shared };
            Smod_metrics.Counter.incr m_pages_mapped;
            Clock.charge t.clock Cost.Page_map
      end

let is_mapped t addr = Hashtbl.mem t.pages (Layout.vpn_of_addr addr)

let is_shared_with_peer t addr =
  match (Hashtbl.find_opt t.pages (Layout.vpn_of_addr addr), t.peer) with
  | Some m, Some p -> (
      match Hashtbl.find_opt p.pages (Layout.vpn_of_addr addr) with
      | Some pm -> m.frame == pm.frame
      | None -> false)
  | _ -> false

let frame_id t addr =
  Option.map (fun m -> m.frame.Phys.id) (Hashtbl.find_opt t.pages (Layout.vpn_of_addr addr))

let set_peer t p = t.peer <- p

let force_share ~client ~handle ~lo ~hi =
  if not (Layout.is_page_aligned lo && Layout.is_page_aligned hi && lo < hi) then
    raise (Bad_range "force_share range");
  Smod_metrics.Counter.incr m_force_shares;
  (* 1. Unmap everything the handle holds in the range. *)
  remove_range handle ~start_addr:lo ~size:(hi - lo);
  (* 2. Duplicate the client's entries over the range into the handle. *)
  List.iter
    (fun e ->
      if overlaps e lo hi then begin
        let s = max e.start_addr lo and f = min e.end_addr hi in
        handle.entries <-
          {
            start_addr = s;
            end_addr = f;
            prot = e.prot;
            kind = e.kind;
            name = e.name;
            inherited_from_peer = true;
          }
          :: handle.entries
      end)
    client.entries;
  handle.entries <-
    List.sort (fun a b -> compare a.start_addr b.start_addr) handle.entries;
  (* 3. Share every page the client has already materialised. *)
  Hashtbl.iter
    (fun vpn (m : mapping) ->
      let addr = Layout.addr_of_vpn vpn in
      if addr >= lo && addr < hi then begin
        m.shared <- true;
        Smod_metrics.Counter.incr m_pages_force_shared;
        install_shared handle vpn m.frame
      end)
    client.pages;
  (* 4. Wire the pair up for future faults and heap growth. *)
  client.peer <- Some handle;
  handle.peer <- Some client;
  client.share_lo <- lo;
  client.share_hi <- hi;
  handle.share_lo <- lo;
  handle.share_hi <- hi;
  handle.heap_base_addr <- client.heap_base_addr;
  handle.brk_addr <- client.brk_addr;
  Clock.charge client.clock Cost.Tlb_flush

let heap_base t = t.heap_base_addr
let brk t = t.brk_addr

let set_heap_base t base =
  if not (Layout.is_page_aligned base) then raise (Bad_range "heap base unaligned");
  t.heap_base_addr <- base;
  t.brk_addr <- base

let heap_entry t = List.find_opt (fun e -> e.kind = Heap) t.entries

let rec obreak t new_brk =
  if new_brk < t.heap_base_addr then raise (Bad_range "break below heap base");
  if new_brk >= Layout.stack_top - (Layout.default_stack_pages * Layout.page_size) then
    raise (Bad_range "break collides with stack");
  let old_end = Layout.page_align_up t.brk_addr in
  let new_end = Layout.page_align_up new_brk in
  let grow_entry () =
    match heap_entry t with
    | Some e ->
        if new_end > e.end_addr then e.end_addr <- new_end
        else if new_end < e.end_addr && new_end > e.start_addr then begin
          remove_range t ~start_addr:new_end ~size:(e.end_addr - new_end);
          ()
        end
        else if new_end <= e.start_addr then
          remove_range t ~start_addr:e.start_addr ~size:(e.end_addr - e.start_addr)
    | None ->
        if new_end > t.heap_base_addr then
          add_entry t ~start_addr:t.heap_base_addr
            ~size:(new_end - t.heap_base_addr)
            ~prot:Prot.rw ~kind:Heap ~name:"heap"
  in
  ignore old_end;
  grow_entry ();
  t.brk_addr <- new_brk;
  (* Modified sys_obreak: keep the paired space's heap converged so that
     faults on either side can resolve through the share. *)
  match t.peer with
  | Some p when p.brk_addr <> new_brk -> obreak p new_brk
  | Some _ | None -> ()

(* --------------------------------------------------------------- *)
(* Byte access                                                      *)
(* --------------------------------------------------------------- *)

let ensure_mapped t addr access =
  let vpn = Layout.vpn_of_addr addr in
  (match Hashtbl.find_opt t.pages vpn with
  | Some _ -> (
      (* Page present: still verify protection via the governing entry. *)
      match governing_entry t addr with
      | Some e -> if not (Prot.allows e.prot access) then raise (Prot_violation { addr; access })
      | None -> raise (Segv { addr; access }))
  | None -> fault t ~addr ~access);
  Hashtbl.find t.pages vpn

let read_bytes t ~addr ~len =
  if len < 0 then raise (Bad_range "negative length");
  let out = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let m = ensure_mapped t a Prot.Read in
    let page_off = a land (Layout.page_size - 1) in
    let chunk = min (Layout.page_size - page_off) (len - !pos) in
    Bytes.blit m.frame.Phys.data page_off out !pos chunk;
    pos := !pos + chunk
  done;
  out

let write_bytes t ~addr data =
  let len = Bytes.length data in
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let m = ensure_mapped t a Prot.Write in
    let page_off = a land (Layout.page_size - 1) in
    let chunk = min (Layout.page_size - page_off) (len - !pos) in
    Bytes.blit data !pos m.frame.Phys.data page_off chunk;
    pos := !pos + chunk
  done

let read_u8 t ~addr =
  let m = ensure_mapped t addr Prot.Read in
  Char.code (Bytes.get m.frame.Phys.data (addr land (Layout.page_size - 1)))

let write_u8 t ~addr v =
  let m = ensure_mapped t addr Prot.Write in
  Bytes.set m.frame.Phys.data (addr land (Layout.page_size - 1)) (Char.chr (v land 0xff))

let read_word t ~addr =
  let off = addr land (Layout.page_size - 1) in
  if off <= Layout.page_size - 4 then begin
    let m = ensure_mapped t addr Prot.Read in
    let d = m.frame.Phys.data in
    Char.code (Bytes.get d off)
    lor (Char.code (Bytes.get d (off + 1)) lsl 8)
    lor (Char.code (Bytes.get d (off + 2)) lsl 16)
    lor (Char.code (Bytes.get d (off + 3)) lsl 24)
  end
  else begin
    let b = read_bytes t ~addr ~len:4 in
    Char.code (Bytes.get b 0)
    lor (Char.code (Bytes.get b 1) lsl 8)
    lor (Char.code (Bytes.get b 2) lsl 16)
    lor (Char.code (Bytes.get b 3) lsl 24)
  end

let write_word t ~addr v =
  let v = v land 0xFFFFFFFF in
  let off = addr land (Layout.page_size - 1) in
  if off <= Layout.page_size - 4 then begin
    let m = ensure_mapped t addr Prot.Write in
    let d = m.frame.Phys.data in
    Bytes.set d off (Char.chr (v land 0xff));
    Bytes.set d (off + 1) (Char.chr ((v lsr 8) land 0xff));
    Bytes.set d (off + 2) (Char.chr ((v lsr 16) land 0xff));
    Bytes.set d (off + 3) (Char.chr ((v lsr 24) land 0xff))
  end
  else begin
    let b = Bytes.create 4 in
    Bytes.set b 0 (Char.chr (v land 0xff));
    Bytes.set b 1 (Char.chr ((v lsr 8) land 0xff));
    Bytes.set b 2 (Char.chr ((v lsr 16) land 0xff));
    Bytes.set b 3 (Char.chr ((v lsr 24) land 0xff));
    write_bytes t ~addr b
  end

let read_string t ~addr ~max_len =
  let buf = Buffer.create 32 in
  let rec loop i =
    if i >= max_len then Buffer.contents buf
    else begin
      let c = read_u8 t ~addr:(addr + i) in
      if c = 0 then Buffer.contents buf
      else begin
        Buffer.add_char buf (Char.chr c);
        loop (i + 1)
      end
    end
  in
  loop 0

let write_string t ~addr s =
  write_bytes t ~addr (Bytes.of_string (s ^ "\000"))

let zero_materialized t ~start_addr ~size =
  check_range ~start_addr ~size;
  let end_addr = start_addr + size in
  let lo_vpn = Layout.vpn_of_addr start_addr and hi_vpn = Layout.vpn_of_addr (end_addr - 1) in
  let zeroed = ref 0 in
  Hashtbl.iter
    (fun vpn (m : mapping) ->
      if vpn >= lo_vpn && vpn <= hi_vpn then begin
        Bytes.fill m.frame.Phys.data 0 Layout.page_size '\000';
        zeroed := !zeroed + Layout.page_size
      end)
    t.pages;
  !zeroed

let mapped_page_count t = Hashtbl.length t.pages

let shared_page_count t =
  Hashtbl.fold (fun _ m acc -> if m.shared then acc + 1 else acc) t.pages 0

let destroy t =
  Hashtbl.iter (fun _ m -> Phys.decref t.phys m.frame) t.pages;
  Hashtbl.reset t.pages;
  t.entries <- [];
  t.peer <- None

let clone t ~name =
  let child = create ~phys:t.phys ~clock:t.clock ~name in
  child.heap_base_addr <- t.heap_base_addr;
  child.brk_addr <- t.brk_addr;
  child.entries <-
    List.map
      (fun e ->
        {
          start_addr = e.start_addr;
          end_addr = e.end_addr;
          prot = e.prot;
          kind = e.kind;
          name = e.name;
          inherited_from_peer = e.inherited_from_peer;
        })
      t.entries;
  Hashtbl.iter
    (fun vpn (m : mapping) ->
      if m.shared then begin
        Phys.incref m.frame;
        Hashtbl.replace child.pages vpn { frame = m.frame; shared = true }
      end
      else begin
        let f = Phys.alloc t.phys in
        Bytes.blit m.frame.Phys.data 0 f.Phys.data 0 Layout.page_size;
        Hashtbl.replace child.pages vpn { frame = f; shared = false };
        Clock.charge t.clock (Cost.Copy_bytes Layout.page_size)
      end)
    t.pages;
  child

let pp_kind ppf = function
  | Text -> Format.pp_print_string ppf "text"
  | Data -> Format.pp_print_string ppf "data"
  | Heap -> Format.pp_print_string ppf "heap"
  | Stack -> Format.pp_print_string ppf "stack"
  | Secret -> Format.pp_print_string ppf "secret"
  | Mmap -> Format.pp_print_string ppf "mmap"

let pp_layout ppf t =
  Format.fprintf ppf "address space %S (brk=0x%08x, %d pages mapped, %d shared)@\n" t.name
    t.brk_addr (mapped_page_count t) (shared_page_count t);
  List.iter
    (fun e ->
      let kind = Format.asprintf "%a" pp_kind e.kind in
      Format.fprintf ppf "  0x%08x-0x%08x %a %-6s %s%s@\n" e.start_addr e.end_addr Prot.pp
        e.prot kind e.name
        (if e.inherited_from_peer then " (shared-from-peer)" else ""))
    t.entries
