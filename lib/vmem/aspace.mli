(** Virtual address spaces, in the style of OpenBSD's UVM.

    This module carries the paper's three UVM modifications (Figure 6):

    - {!force_share} — [uvmspace_force_share]: forcibly unmap a range of the
      handle's space and re-map the client's pages into it as shares;
    - {!fault} — the modified [uvm_fault]: on an unavailable mapping, if the
      faulting process is half of a SecModule pair and the address lies in
      the shared range, consult the peer's map and install its page as a
      share;
    - {!obreak} — the modified [sys_obreak]/[uvm_map]: heap growth on either
      side of a pair materialises as shared mappings.

    Addresses are byte addresses; regions are page aligned. *)

type kind = Text | Data | Heap | Stack | Secret | Mmap

type entry = private {
  mutable start_addr : int;
  mutable end_addr : int;  (** exclusive *)
  mutable prot : Prot.t;
  kind : kind;
  name : string;
  mutable inherited_from_peer : bool;
}

exception Segv of { addr : int; access : Prot.access }
exception Prot_violation of { addr : int; access : Prot.access }
exception Overlap of { start_addr : int; end_addr : int }
exception Bad_range of string

type t

val create : phys:Phys.t -> clock:Smod_sim.Clock.t -> name:string -> t
val name : t -> string
val phys : t -> Phys.t
val clock : t -> Smod_sim.Clock.t

val add_entry :
  t -> start_addr:int -> size:int -> prot:Prot.t -> kind:kind -> name:string -> unit
(** Registers a region.  Pages are materialised on demand by {!fault}.
    Raises {!Overlap} if the range intersects an existing entry and
    {!Bad_range} if not page aligned or empty. *)

val remove_range : t -> start_addr:int -> size:int -> unit
(** Unmaps every page and truncates/splits/drops entries in the range. *)

val protect_range : t -> start_addr:int -> size:int -> prot:Prot.t -> unit
val find_entry : t -> int -> entry option
val entries : t -> entry list
(** Sorted by start address. *)

val fault : t -> addr:int -> access:Prot.access -> unit
(** Resolve a page fault at [addr].  Raises {!Segv} when no entry (local or
    shareable peer) covers the address, {!Prot_violation} when the entry
    forbids the access. *)

val is_mapped : t -> int -> bool
(** True if the page containing the address currently has a frame. *)

val is_shared_with_peer : t -> int -> bool
(** True if this page's frame is also mapped by the peer. *)

val frame_id : t -> int -> int option
(** Physical frame backing the page, if materialised. *)

val set_peer : t -> t option -> unit
(** Establish (or break) the SecModule pairing consulted by {!fault}. *)

val peer : t -> t option

val force_share : client:t -> handle:t -> lo:int -> hi:int -> unit
(** [uvmspace_force_share]: unmap everything the handle holds in
    [\[lo, hi)], duplicate the client's entries over that range into the
    handle, share every page the client has already materialised, and set
    up the peer links so that later faults and heap growth keep the two
    spaces converged. *)

val heap_base : t -> int
val brk : t -> int

val set_heap_base : t -> int -> unit
(** Defines where the heap entry starts; also resets the break. *)

val obreak : t -> int -> unit
(** Grow or shrink the heap to the new break address (modified
    [sys_obreak]: growth inside a pair is installed as shared in both
    spaces). Raises {!Bad_range} if the break leaves the data/heap area. *)

val read_bytes : t -> addr:int -> len:int -> bytes
(** Demand-pages via {!fault} as needed. *)

val write_bytes : t -> addr:int -> bytes -> unit
val read_u8 : t -> addr:int -> int
val write_u8 : t -> addr:int -> int -> unit

val read_word : t -> addr:int -> int
(** 32-bit little-endian load (i386 flavour); result in [\[0, 2^32)]. *)

val write_word : t -> addr:int -> int -> unit
(** 32-bit little-endian store; the value is truncated to 32 bits. *)

val read_string : t -> addr:int -> max_len:int -> string
(** NUL-terminated string. *)

val write_string : t -> addr:int -> string -> unit
(** Writes the bytes plus a terminating NUL. *)

val zero_materialized : t -> start_addr:int -> size:int -> int
(** Overwrite every already-materialised page in the range with zeros and
    return the number of bytes cleared.  Pages never touched are skipped —
    they demand-zero on their next fault anyway.  This is the secret-segment
    scrub a pooled handle performs between tenants (the caller charges the
    copy cost); no entries or frames are released. *)

val mapped_page_count : t -> int
val shared_page_count : t -> int

val destroy : t -> unit
(** Release every frame.  The space must not be used afterwards. *)

val clone : t -> name:string -> t
(** Fork-style duplicate: entries copied; private pages deep-copied into
    fresh frames; pages marked shared stay shared (they keep referencing
    the same frame). Peer links are not cloned. *)

val pp_layout : Format.formatter -> t -> unit
(** Figure-2-style layout listing. *)
