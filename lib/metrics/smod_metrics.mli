(** Observability for the simulated kernel: monotonic counters and
    fixed-bucket histograms in named registries.

    Every subsystem registers its instruments in {!default} at module
    initialisation; the bench harness serialises {!snapshot}s into the
    machine-readable bench JSON (see [lib/bench_kit/bench_json.ml]) and
    tests assert on {!counter_value} deltas. *)

type t
(** A registry: a flat namespace of instruments keyed by dotted name. *)

val create : unit -> t

val default : t
(** The process-wide registry all built-in instrumentation reports to. *)

val default_edges : float array
(** Default latency bucket edges, in simulated microseconds. *)

module Counter : sig
  type t

  val name : t -> string
  val value : t -> int
  val incr : t -> unit

  val add : t -> int -> unit
  (** Raises [Invalid_argument] on a negative increment: counters are
      monotonic. *)
end

module Histogram : sig
  type t

  val name : t -> string
  val edges : t -> float array
  val bucket_counts : t -> int array
  (** One count per edge, plus a final overflow bucket. Bucket [i] holds
      observations [v] with [edges.(i-1) < v <= edges.(i)]. *)

  val count : t -> int
  val sum : t -> float
  val mean : t -> float
  val observe : t -> float -> unit

  val quantile : t -> float -> float
  (** [quantile h q] estimates the q-quantile ([0.0..1.0]) from the
      bucketed counts, interpolating linearly inside the bucket holding
      the rank; ranks in the overflow bucket clamp to the last edge, and
      an empty histogram reports 0. *)
end

val counter : ?registry:t -> string -> Counter.t
(** Find-or-create. Raises [Invalid_argument] if the name is registered as
    a histogram or contains characters outside [[A-Za-z0-9._-]]. *)

val histogram : ?registry:t -> ?edges:float array -> string -> Histogram.t
(** Find-or-create; [edges] (default {!default_edges}) must be strictly
    increasing and is only consulted on first registration. *)

(** Namespaced instrument factories: [Scope.counter (scope "kern") "traps"]
    registers ["kern.traps"]. *)
module Scope : sig
  type scope

  val make : ?registry:t -> string -> scope
  val sub : scope -> string -> scope
  val name : scope -> string
  val counter : scope -> string -> Counter.t
  val histogram : ?edges:float array -> scope -> string -> Histogram.t
end

val scope : ?registry:t -> string -> Scope.scope

(** {1 Snapshots} *)

type histogram_snapshot = {
  hs_edges : float array;
  hs_counts : int array;
  hs_count : int;
  hs_sum : float;
}

type sample = Counter_sample of int | Histogram_sample of histogram_snapshot

type snapshot = (string * sample) list
(** Sorted by name; deterministic across runs. *)

val snapshot_quantile : histogram_snapshot -> float -> float
(** {!Histogram.quantile} over a snapshot — what bench JSON emission and
    report renderers use for p50/p90/p99. *)

val snapshot : ?registry:t -> unit -> snapshot
val counter_value : ?registry:t -> string -> int option
val histogram_sample : ?registry:t -> string -> histogram_snapshot option
val names : ?registry:t -> unit -> string list

val reset : ?registry:t -> unit -> unit
(** Zero every instrument, keeping registrations (call sites hold direct
    references). *)

val delta : before:snapshot -> after:snapshot -> snapshot
(** Instrument-wise difference of two snapshots of the same registry. *)

val pp : Format.formatter -> ?registry:t -> unit -> unit
