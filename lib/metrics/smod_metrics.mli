(** Observability for the simulated kernel: monotonic counters and
    fixed-bucket histograms in named registries.

    Registries are {b domain-local}: every OCaml domain reports into its
    own registry ({!current}), the main domain's being {!default}.
    Instruments created without an explicit [?registry] are {e handles}
    that re-resolve against the calling domain's registry, so module-level
    instrument bindings work from any domain — each domain's updates land
    in its own registry, and a parallel harness combines worker
    {!snapshot}s into a root registry with {!merge}.

    A registry is single-owner mutable state: only one domain may mutate
    it at a time ({!with_registry} transfers ownership for the duration of
    a callback; mutating entry points enforce the discipline by raising
    [Invalid_argument]).  The genuinely-shared cross-domain path uses
    {!Shared_counter}. *)

type t
(** A registry: a flat namespace of instruments keyed by dotted name. *)

val create : unit -> t

val default : t
(** The main domain's initial registry — what all built-in instrumentation
    reports to in a single-domain program. *)

val current : unit -> t
(** The calling domain's registry. On the main domain this starts as
    {!default}; on any other domain it starts empty. *)

val with_registry : t -> (unit -> 'a) -> 'a
(** [with_registry t f] runs [f] with [t] as the calling domain's
    {!current} registry, restoring the previous registry (and releasing
    ownership of [t]) on exit, including on exceptions.  Raises
    [Invalid_argument] if [t] is currently owned by another domain. *)

val default_edges : float array
(** Default latency bucket edges, in simulated microseconds. *)

module Counter : sig
  type t

  val name : t -> string
  val value : t -> int
  val incr : t -> unit

  val add : t -> int -> unit
  (** Raises [Invalid_argument] on a negative increment: counters are
      monotonic. *)
end

module Histogram : sig
  type t

  val name : t -> string
  val edges : t -> float array

  val bucket_counts : t -> int array
  (** One count per edge, plus a final overflow bucket. Bucket [i] holds
      observations [v] with [edges.(i-1) < v <= edges.(i)]. *)

  val count : t -> int
  val sum : t -> float
  val mean : t -> float
  val observe : t -> float -> unit

  val quantile : t -> float -> float
  (** [quantile h q] estimates the q-quantile ([0.0..1.0]) from the
      bucketed counts, interpolating linearly inside the bucket holding
      the rank; ranks in the overflow bucket clamp to the last edge, and
      an empty histogram reports 0. *)
end

val counter : ?registry:t -> string -> Counter.t
(** Find-or-create. Without [?registry] the result is a dynamic handle
    that follows {!current}; with [?registry] it is pinned to that
    registry. Raises [Invalid_argument] if the name is registered as a
    histogram or contains characters outside [[A-Za-z0-9._-]]. *)

val histogram : ?registry:t -> ?edges:float array -> string -> Histogram.t
(** Find-or-create; [edges] (default {!default_edges}) must be strictly
    increasing and is only consulted on first registration (per registry,
    for dynamic handles). *)

(** Atomic-backed counters for the rare genuinely cross-domain path (e.g.
    live progress accounting in the parallel bench runner). They live
    outside every registry and never appear in snapshots. *)
module Shared_counter : sig
  type t

  val make : string -> t
  val name : t -> string
  val value : t -> int
  val incr : t -> unit

  val add : t -> int -> unit
  (** Raises [Invalid_argument] on a negative increment. *)
end

(** Namespaced instrument factories: [Scope.counter (scope "kern") "traps"]
    registers ["kern.traps"]. *)
module Scope : sig
  type scope

  val make : ?registry:t -> string -> scope
  val sub : scope -> string -> scope
  val name : scope -> string
  val counter : scope -> string -> Counter.t
  val histogram : ?edges:float array -> scope -> string -> Histogram.t
end

val scope : ?registry:t -> string -> Scope.scope

(** {1 Snapshots} *)

type histogram_snapshot = {
  hs_edges : float array;
  hs_counts : int array;
  hs_count : int;
  hs_sum : float;
}

type sample = Counter_sample of int | Histogram_sample of histogram_snapshot

type snapshot = (string * sample) list
(** Sorted by name; deterministic across runs. *)

val snapshot_quantile : histogram_snapshot -> float -> float
(** {!Histogram.quantile} over a snapshot — what bench JSON emission and
    report renderers use for p50/p90/p99. *)

val snapshot : ?registry:t -> unit -> snapshot
val counter_value : ?registry:t -> string -> int option
val histogram_sample : ?registry:t -> string -> histogram_snapshot option
val names : ?registry:t -> unit -> string list

val counters_with_prefix : ?registry:t -> string -> (string * int) list
(** Every counter whose name starts with the prefix, sorted by name —
    the read-only scan [Secmodule.Audit] derives per-function dispatch
    sets (unused grants) from. *)

val reset : ?registry:t -> unit -> unit
(** Zero every instrument, keeping registrations (call sites hold handles
    resolving to them). *)

val merge : ?registry:t -> snapshot -> unit
(** Add a snapshot into a registry (default {!current}): counters sum,
    histograms add bucket-wise. Instruments absent from the target are
    created. Merging worker snapshots in a fixed task order keeps float
    sums — and emitted JSON — bit-identical for any job count. Raises
    [Invalid_argument] if a histogram's bucket edges disagree with the
    target's. *)

val delta : before:snapshot -> after:snapshot -> snapshot
(** Instrument-wise difference of two snapshots of the same registry. *)

val pp : Format.formatter -> ?registry:t -> unit -> unit
