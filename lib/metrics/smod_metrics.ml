(* Process-wide observability: monotonic counters and fixed-bucket
   histograms, grouped in registries with dot-separated named scopes.

   The simulated kernel is single-threaded (one scheduler loop driving
   effect-based coroutines), so plain mutable state is safe.  All hot-path
   call sites register their instruments once at module-initialisation
   time; per-event cost is a single field update (counters) or a short
   bucket scan (histograms), cheap enough for the 1,000,000-call trials
   the paper runs.

   Instruments live in a registry keyed by name.  [default] is the
   process-wide registry every subsystem reports into; bench and test code
   read it with [snapshot]/[counter_value] and may [reset] it between
   experiments. *)

type counter = { c_name : string; mutable c_value : int }

type histogram = {
  h_name : string;
  h_edges : float array;  (* strictly increasing bucket upper bounds *)
  h_counts : int array;  (* length edges+1; the last bucket is overflow *)
  mutable h_total : int;
  mutable h_sum : float;
}

type metric = M_counter of counter | M_histogram of histogram

type t = { metrics : (string, metric) Hashtbl.t }

let create () = { metrics = Hashtbl.create 64 }
let default = create ()

(* Simulated-microsecond latencies: 1 us .. ~1 ms, then overflow. *)
let default_edges = [| 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0; 128.0; 256.0; 512.0; 1024.0 |]

let validate_name name =
  if name = "" then invalid_arg "Metrics: empty metric name";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> ()
      | _ -> invalid_arg (Printf.sprintf "Metrics: invalid character in name %S" name))
    name

let validate_edges edges =
  if Array.length edges = 0 then invalid_arg "Metrics: histogram needs at least one edge";
  Array.iteri
    (fun i e ->
      if not (Float.is_finite e) then invalid_arg "Metrics: non-finite histogram edge";
      if i > 0 && e <= edges.(i - 1) then
        invalid_arg "Metrics: histogram edges must be strictly increasing")
    edges

module Counter = struct
  type t = counter

  let name c = c.c_name
  let value c = c.c_value
  let incr c = c.c_value <- c.c_value + 1

  let add c n =
    if n < 0 then
      invalid_arg (Printf.sprintf "Counter.add %s: counters are monotonic" c.c_name);
    c.c_value <- c.c_value + n
end

(* Quantile estimate from bucketed counts: find the bucket holding the
   q-rank observation and interpolate linearly inside it.  The first
   bucket's lower bound is 0 (latencies and sizes are non-negative);
   ranks landing in the overflow bucket clamp to the last edge — the
   histogram cannot know how far beyond it the tail reaches. *)
let quantile_of ~edges ~counts ~total q =
  if total = 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = q *. float_of_int total in
    let n = Array.length edges in
    let rec go i seen =
      if i >= Array.length counts then edges.(n - 1)
      else
        let c = counts.(i) in
        let seen' = seen + c in
        if c > 0 && float_of_int seen' >= rank then
          if i >= n then edges.(n - 1)
          else
            let lo = if i = 0 then 0.0 else edges.(i - 1) in
            let hi = edges.(i) in
            lo +. ((hi -. lo) *. ((rank -. float_of_int seen) /. float_of_int c))
        else go (i + 1) seen'
    in
    go 0 0
  end

module Histogram = struct
  type t = histogram

  let name h = h.h_name
  let edges h = Array.copy h.h_edges
  let bucket_counts h = Array.copy h.h_counts
  let count h = h.h_total
  let sum h = h.h_sum
  let mean h = if h.h_total = 0 then 0.0 else h.h_sum /. float_of_int h.h_total

  (* Index of the bucket holding [v]: the first edge >= v, or the overflow
     bucket when v exceeds every edge. *)
  let bucket_index h v =
    let n = Array.length h.h_edges in
    let rec find i = if i >= n then n else if v <= h.h_edges.(i) then i else find (i + 1) in
    find 0

  let observe h v =
    let i = bucket_index h v in
    h.h_counts.(i) <- h.h_counts.(i) + 1;
    h.h_total <- h.h_total + 1;
    h.h_sum <- h.h_sum +. v

  let quantile h q = quantile_of ~edges:h.h_edges ~counts:h.h_counts ~total:h.h_total q
end

let find_or_register registry name build project =
  match Hashtbl.find_opt registry.metrics name with
  | Some m -> project m
  | None ->
      validate_name name;
      let m = build () in
      Hashtbl.replace registry.metrics name m;
      project m

let counter ?(registry = default) name =
  find_or_register registry name
    (fun () -> M_counter { c_name = name; c_value = 0 })
    (function
      | M_counter c -> c
      | M_histogram _ ->
          invalid_arg (Printf.sprintf "Metrics.counter %s: already a histogram" name))

let histogram ?(registry = default) ?(edges = default_edges) name =
  validate_edges edges;
  find_or_register registry name
    (fun () ->
      M_histogram
        {
          h_name = name;
          h_edges = Array.copy edges;
          h_counts = Array.make (Array.length edges + 1) 0;
          h_total = 0;
          h_sum = 0.0;
        })
    (function
      | M_histogram h -> h
      | M_counter _ ->
          invalid_arg (Printf.sprintf "Metrics.histogram %s: already a counter" name))

(* ------------------------------------------------------------------ *)
(* Scopes: namespaced instrument factories                             *)
(* ------------------------------------------------------------------ *)

module Scope = struct
  type scope = { s_registry : t; prefix : string }

  let full_name s name = s.prefix ^ "." ^ name
  let make ?(registry = default) prefix =
    validate_name prefix;
    { s_registry = registry; prefix }

  let sub s name =
    validate_name name;
    { s with prefix = full_name s name }

  let name s = s.prefix
  let counter s n = counter ~registry:s.s_registry (full_name s n)
  let histogram ?edges s n = histogram ~registry:s.s_registry ?edges (full_name s n)
end

let scope = Scope.make

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type histogram_snapshot = {
  hs_edges : float array;
  hs_counts : int array;
  hs_count : int;
  hs_sum : float;
}

type sample = Counter_sample of int | Histogram_sample of histogram_snapshot
type snapshot = (string * sample) list

let snapshot_quantile hs q =
  quantile_of ~edges:hs.hs_edges ~counts:hs.hs_counts ~total:hs.hs_count q

let sample_of = function
  | M_counter c -> Counter_sample c.c_value
  | M_histogram h ->
      Histogram_sample
        {
          hs_edges = Array.copy h.h_edges;
          hs_counts = Array.copy h.h_counts;
          hs_count = h.h_total;
          hs_sum = h.h_sum;
        }

let snapshot ?(registry = default) () =
  Hashtbl.fold (fun name m acc -> (name, sample_of m) :: acc) registry.metrics []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counter_value ?(registry = default) name =
  match Hashtbl.find_opt registry.metrics name with
  | Some (M_counter c) -> Some c.c_value
  | Some (M_histogram _) | None -> None

let histogram_sample ?(registry = default) name =
  match Hashtbl.find_opt registry.metrics name with
  | Some (M_histogram h) -> (
      match sample_of (M_histogram h) with Histogram_sample s -> Some s | _ -> None)
  | Some (M_counter _) | None -> None

let names ?(registry = default) () =
  Hashtbl.fold (fun name _ acc -> name :: acc) registry.metrics [] |> List.sort compare

(* Zero every instrument but keep the registrations (call sites hold
   direct references to the instruments, so dropping entries would
   silently disconnect them). *)
let reset ?(registry = default) () =
  Hashtbl.iter
    (fun _ -> function
      | M_counter c -> c.c_value <- 0
      | M_histogram h ->
          Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
          h.h_total <- 0;
          h.h_sum <- 0.0)
    registry.metrics

(* Delta between two snapshots of the same registry: counters subtract,
   histograms subtract bucket-wise.  Metrics absent from [before] are
   reported at their [after] value. *)
let delta ~before ~after =
  List.filter_map
    (fun (name, sa) ->
      match (List.assoc_opt name before, sa) with
      | None, _ -> Some (name, sa)
      | Some (Counter_sample b), Counter_sample a -> Some (name, Counter_sample (a - b))
      | Some (Histogram_sample b), Histogram_sample a
        when Array.length b.hs_counts = Array.length a.hs_counts ->
          Some
            ( name,
              Histogram_sample
                {
                  hs_edges = a.hs_edges;
                  hs_counts = Array.mapi (fun i c -> c - b.hs_counts.(i)) a.hs_counts;
                  hs_count = a.hs_count - b.hs_count;
                  hs_sum = a.hs_sum -. b.hs_sum;
                } )
      | Some _, _ -> Some (name, sa))
    after

let pp ppf ?(registry = default) () =
  List.iter
    (fun (name, s) ->
      match s with
      | Counter_sample v -> Format.fprintf ppf "%-40s %d@\n" name v
      | Histogram_sample h ->
          Format.fprintf ppf "%-40s count=%d sum=%.3f p50=%.3f p90=%.3f p99=%.3f@\n" name
            h.hs_count h.hs_sum (snapshot_quantile h 0.5) (snapshot_quantile h 0.9)
            (snapshot_quantile h 0.99))
    (snapshot ~registry ())
