(* Observability: monotonic counters and fixed-bucket histograms, grouped
   in registries with dot-separated named scopes.

   Concurrency model (PR 5): the harness runs whole simulated worlds on
   separate OCaml 5 domains, so "one process-wide mutable registry" is no
   longer safe.  Instead every domain reports into a DOMAIN-LOCAL registry:

   - [current ()] is the calling domain's registry, held in domain-local
     storage.  The main domain's initial registry is [default], so
     single-domain programs (tests, smodctl, --jobs 1) behave exactly as
     before.
   - Instrument handles ([Counter.t], [Histogram.t]) are cheap names, not
     raw cells.  A handle created without an explicit registry re-resolves
     against [current ()] and caches the resolution, so module-level
     [let m_calls = Scope.counter scope "calls"] bindings keep working
     from any domain: each domain's increments land in its own registry.
     The hot path is one domain-local read, one physical-equality check
     and a plain (unsynchronised) field update — no locks, no atomics.
   - A worker publishes its results by taking a [snapshot] of its registry
     and handing it to whoever owns the root; [merge] adds a snapshot into
     a registry (counters sum, histograms add bucket-wise).  Merging in a
     fixed task order keeps float sums — and therefore emitted JSON —
     bit-identical regardless of how many domains ran the work.
   - The rare genuinely-shared path (cross-domain progress accounting in
     the bench runner) uses [Shared_counter], an [Atomic]-backed counter
     that lives outside any registry.

   Single-owner discipline: a registry's Hashtbl (and its instruments') is
   plain mutable state, NOT thread-safe.  Exactly one domain may mutate a
   registry at a time.  [with_registry] transfers ownership to the
   executing domain for the duration of the callback, and every mutating
   entry point asserts the discipline (see [claim_owner]); reads from
   another domain are only meaningful after a happens-before edge such as
   [Domain.join] — which is what the bench runner relies on when it merges
   worker snapshots after the join. *)

type counter = { c_name : string; mutable c_value : int }

type histogram = {
  h_name : string;
  h_edges : float array;  (* strictly increasing bucket upper bounds *)
  h_counts : int array;  (* length edges+1; the last bucket is overflow *)
  mutable h_total : int;
  mutable h_sum : float;
}

type metric = M_counter of counter | M_histogram of histogram

type t = {
  metrics : (string, metric) Hashtbl.t;
  (* Domain currently allowed to mutate [metrics] and the instruments in
     it.  [None] = unclaimed: the next mutating domain takes ownership.
     [with_registry] releases ownership on exit so a registry built by one
     domain can be filled by a worker and then merged by the parent. *)
  mutable owner : int option;
}

let domain_id () = (Domain.self () :> int)

(* Assert and (if unclaimed) take the single-owner discipline on a
   mutation path.  Raising instead of corrupting: a cross-domain mutation
   here is always a harness bug. *)
let claim_owner t =
  let me = domain_id () in
  match t.owner with
  | Some o when o <> me ->
      invalid_arg
        (Printf.sprintf "Metrics: registry owned by domain %d mutated from domain %d" o me)
  | Some _ -> ()
  | None -> t.owner <- Some me

let create () = { metrics = Hashtbl.create 64; owner = None }

let default = create ()

(* The calling domain's registry.  The main domain (the one that
   initialised this module) starts on [default]; any other domain starts
   on a private empty registry. *)
let dls_registry : t Domain.DLS.key = Domain.DLS.new_key create
let () = Domain.DLS.set dls_registry default

let current () = Domain.DLS.get dls_registry

let with_registry t f =
  claim_owner t;
  let previous = Domain.DLS.get dls_registry in
  Domain.DLS.set dls_registry t;
  Fun.protect
    ~finally:(fun () ->
      Domain.DLS.set dls_registry previous;
      (* Release so the parent domain may merge / reset it after a
         happens-before edge (e.g. Domain.join). *)
      t.owner <- None)
    f

(* Simulated-microsecond latencies: 1 us .. ~1 ms, then overflow. *)
let default_edges = [| 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0; 128.0; 256.0; 512.0; 1024.0 |]

let validate_name name =
  if name = "" then invalid_arg "Metrics: empty metric name";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> ()
      | _ -> invalid_arg (Printf.sprintf "Metrics: invalid character in name %S" name))
    name

let validate_edges edges =
  if Array.length edges = 0 then invalid_arg "Metrics: histogram needs at least one edge";
  Array.iteri
    (fun i e ->
      if not (Float.is_finite e) then invalid_arg "Metrics: non-finite histogram edge";
      if i > 0 && e <= edges.(i - 1) then
        invalid_arg "Metrics: histogram edges must be strictly increasing")
    edges

(* Find-or-create in one registry.  Mutates the registry's Hashtbl on
   first registration, hence the ownership claim. *)
let find_or_register registry name build project =
  match Hashtbl.find_opt registry.metrics name with
  | Some m -> project m
  | None ->
      claim_owner registry;
      validate_name name;
      let m = build () in
      Hashtbl.replace registry.metrics name m;
      project m

let raw_counter registry name =
  find_or_register registry name
    (fun () -> M_counter { c_name = name; c_value = 0 })
    (function
      | M_counter c -> c
      | M_histogram _ ->
          invalid_arg (Printf.sprintf "Metrics.counter %s: already a histogram" name))

let raw_histogram registry ~edges name =
  find_or_register registry name
    (fun () ->
      M_histogram
        {
          h_name = name;
          h_edges = Array.copy edges;
          h_counts = Array.make (Array.length edges + 1) 0;
          h_total = 0;
          h_sum = 0.0;
        })
    (function
      | M_histogram h -> h
      | M_counter _ ->
          invalid_arg (Printf.sprintf "Metrics.histogram %s: already a counter" name))

(* ------------------------------------------------------------------ *)
(* Handles                                                             *)
(* ------------------------------------------------------------------ *)

(* A handle names an instrument; the cell it updates depends on where it
   is used.  [fixed = Some reg] pins it to one registry (explicit
   [~registry] at creation — test fixtures, tools).  Otherwise it tracks
   [current ()], caching the last resolution as one immutable pair so the
   fast path is a read + physical-equality check.  The cache write is
   intentionally unsynchronised: handles are shared across domains, but
   the pair is immutable, so a racing reader sees either the old or the
   new resolution — both are valid — and re-resolves at worst. *)
type 'cell handle = {
  hd_name : string;
  hd_fixed : t option;
  mutable hd_cache : (t * 'cell) option;
}

let resolve_in reg resolve_raw h =
  match h.hd_cache with
  | Some (r, cell) when r == reg -> cell
  | _ ->
      let cell = resolve_raw reg h.hd_name in
      h.hd_cache <- Some (reg, cell);
      cell

let target h = match h.hd_fixed with Some r -> r | None -> current ()
let resolve resolve_raw h = resolve_in (target h) resolve_raw h

(* Mutating accesses assert (and take) the single-owner discipline before
   touching the cell; the cost on the hot path is one domain-id read and
   one comparison on top of the plain field update. *)
let resolve_mut resolve_raw h =
  let reg = target h in
  claim_owner reg;
  resolve_in reg resolve_raw h

module Counter = struct
  type t = counter handle

  let resolve (h : t) = resolve raw_counter h
  let name (h : t) = h.hd_name
  let value h = (resolve h).c_value

  let incr h =
    let c = resolve_mut raw_counter h in
    c.c_value <- c.c_value + 1

  let add h n =
    let c = resolve_mut raw_counter h in
    if n < 0 then
      invalid_arg (Printf.sprintf "Counter.add %s: counters are monotonic" c.c_name);
    c.c_value <- c.c_value + n
end

let counter ?registry name =
  (* Resolve eagerly so the name is registered (and visible in snapshots,
     even at zero) in the creating domain's registry — module-init
     registration on the main domain keeps [default]'s instrument set
     complete, as single-domain baselines expect. *)
  let h = { hd_name = name; hd_fixed = registry; hd_cache = None } in
  ignore (Counter.resolve h);
  h

(* Quantile estimate from bucketed counts: find the bucket holding the
   q-rank observation and interpolate linearly inside it.  The first
   bucket's lower bound is 0 (latencies and sizes are non-negative);
   ranks landing in the overflow bucket clamp to the last edge — the
   histogram cannot know how far beyond it the tail reaches. *)
let quantile_of ~edges ~counts ~total q =
  if total = 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = q *. float_of_int total in
    let n = Array.length edges in
    let rec go i seen =
      if i >= Array.length counts then edges.(n - 1)
      else
        let c = counts.(i) in
        let seen' = seen + c in
        if c > 0 && float_of_int seen' >= rank then
          if i >= n then edges.(n - 1)
          else
            let lo = if i = 0 then 0.0 else edges.(i - 1) in
            let hi = edges.(i) in
            lo +. ((hi -. lo) *. ((rank -. float_of_int seen) /. float_of_int c))
        else go (i + 1) seen'
    in
    go 0 0
  end

(* A histogram handle also carries the edges it registers with, so lazy
   re-resolution in a fresh domain-local registry creates an identical
   instrument. *)
type histogram_handle = { hh_edges : float array; hh_handle : histogram handle }

module Histogram = struct
  type t = histogram_handle

  let resolve (h : t) =
    resolve (fun reg name -> raw_histogram reg ~edges:h.hh_edges name) h.hh_handle

  let name (h : t) = h.hh_handle.hd_name
  let edges h = Array.copy (resolve h).h_edges
  let bucket_counts h = Array.copy (resolve h).h_counts
  let count h = (resolve h).h_total
  let sum h = (resolve h).h_sum

  let mean h =
    let h = resolve h in
    if h.h_total = 0 then 0.0 else h.h_sum /. float_of_int h.h_total

  (* Index of the bucket holding [v]: the first edge >= v, or the overflow
     bucket when v exceeds every edge. *)
  let bucket_index h v =
    let n = Array.length h.h_edges in
    let rec find i = if i >= n then n else if v <= h.h_edges.(i) then i else find (i + 1) in
    find 0

  let observe hh v =
    let h =
      resolve_mut (fun reg name -> raw_histogram reg ~edges:hh.hh_edges name) hh.hh_handle
    in
    let i = bucket_index h v in
    h.h_counts.(i) <- h.h_counts.(i) + 1;
    h.h_total <- h.h_total + 1;
    h.h_sum <- h.h_sum +. v

  let quantile h q =
    let h = resolve h in
    quantile_of ~edges:h.h_edges ~counts:h.h_counts ~total:h.h_total q
end

let histogram ?registry ?(edges = default_edges) name =
  validate_edges edges;
  let h =
    { hh_edges = Array.copy edges; hh_handle = { hd_name = name; hd_fixed = registry; hd_cache = None } }
  in
  ignore (Histogram.resolve h);
  h

(* ------------------------------------------------------------------ *)
(* Shared counters: the cross-domain exception                         *)
(* ------------------------------------------------------------------ *)

(* Atomic-backed and deliberately outside every registry: for live
   progress accounting that several domains genuinely update at once
   (e.g. the bench runner's tasks-completed count).  Not for hot paths —
   an atomic RMW per simulated event would serialise the domains. *)
module Shared_counter = struct
  type t = { sc_name : string; sc_value : int Atomic.t }

  let make name =
    validate_name name;
    { sc_name = name; sc_value = Atomic.make 0 }

  let name t = t.sc_name
  let value t = Atomic.get t.sc_value
  let incr t = Atomic.incr t.sc_value

  let add t n =
    if n < 0 then
      invalid_arg (Printf.sprintf "Shared_counter.add %s: counters are monotonic" t.sc_name);
    ignore (Atomic.fetch_and_add t.sc_value n)
end

(* ------------------------------------------------------------------ *)
(* Scopes: namespaced instrument factories                             *)
(* ------------------------------------------------------------------ *)

module Scope = struct
  (* [s_registry = None] makes the scope's instruments domain-local, like
     bare [counter]/[histogram] without [~registry]. *)
  type scope = { s_registry : t option; prefix : string }

  let full_name s name = s.prefix ^ "." ^ name

  let make ?registry prefix =
    validate_name prefix;
    { s_registry = registry; prefix }

  let sub s name =
    validate_name name;
    { s with prefix = full_name s name }

  let name s = s.prefix
  let counter s n = counter ?registry:s.s_registry (full_name s n)
  let histogram ?edges s n = histogram ?registry:s.s_registry ?edges (full_name s n)
end

let scope = Scope.make

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type histogram_snapshot = {
  hs_edges : float array;
  hs_counts : int array;
  hs_count : int;
  hs_sum : float;
}

type sample = Counter_sample of int | Histogram_sample of histogram_snapshot
type snapshot = (string * sample) list

let snapshot_quantile hs q =
  quantile_of ~edges:hs.hs_edges ~counts:hs.hs_counts ~total:hs.hs_count q

let sample_of = function
  | M_counter c -> Counter_sample c.c_value
  | M_histogram h ->
      Histogram_sample
        {
          hs_edges = Array.copy h.h_edges;
          hs_counts = Array.copy h.h_counts;
          hs_count = h.h_total;
          hs_sum = h.h_sum;
        }

let snapshot ?registry () =
  let registry = match registry with Some r -> r | None -> current () in
  Hashtbl.fold (fun name m acc -> (name, sample_of m) :: acc) registry.metrics []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counter_value ?registry name =
  let registry = match registry with Some r -> r | None -> current () in
  match Hashtbl.find_opt registry.metrics name with
  | Some (M_counter c) -> Some c.c_value
  | Some (M_histogram _) | None -> None

let histogram_sample ?registry name =
  let registry = match registry with Some r -> r | None -> current () in
  match Hashtbl.find_opt registry.metrics name with
  | Some (M_histogram h) -> (
      match sample_of (M_histogram h) with Histogram_sample s -> Some s | _ -> None)
  | Some (M_counter _) | None -> None

let names ?registry () =
  let registry = match registry with Some r -> r | None -> current () in
  Hashtbl.fold (fun name _ acc -> name :: acc) registry.metrics [] |> List.sort compare

let counters_with_prefix ?registry prefix =
  let registry = match registry with Some r -> r | None -> current () in
  let plen = String.length prefix in
  Hashtbl.fold
    (fun name m acc ->
      match m with
      | M_counter c
        when String.length name >= plen && String.sub name 0 plen = prefix ->
          (name, c.c_value) :: acc
      | M_counter _ | M_histogram _ -> acc)
    registry.metrics []
  |> List.sort compare

(* Zero every instrument but keep the registrations (call sites hold
   handles resolving to the instruments, so dropping entries would
   silently disconnect live caches). *)
let reset ?registry () =
  let registry = match registry with Some r -> r | None -> current () in
  claim_owner registry;
  Hashtbl.iter
    (fun _ -> function
      | M_counter c -> c.c_value <- 0
      | M_histogram h ->
          Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
          h.h_total <- 0;
          h.h_sum <- 0.0)
    registry.metrics

(* Add a snapshot into a registry: counters sum, histograms add
   bucket-wise.  The workhorse of the domain-local model — each worker's
   registry is merged into the root in a fixed task order, which keeps
   the root's float sums (and so the emitted JSON) bit-identical for any
   job count.  Instruments absent from the target are created; a
   histogram whose bucket edges disagree with the target's is a schema
   clash and raises. *)
let merge ?registry (snap : snapshot) =
  let registry = match registry with Some r -> r | None -> current () in
  claim_owner registry;
  List.iter
    (fun (name, sample) ->
      match sample with
      | Counter_sample v ->
          let c = raw_counter registry name in
          c.c_value <- c.c_value + v
      | Histogram_sample hs ->
          let h = raw_histogram registry ~edges:hs.hs_edges name in
          if
            Array.length h.h_edges <> Array.length hs.hs_edges
            || not (Array.for_all2 Float.equal h.h_edges hs.hs_edges)
          then
            invalid_arg
              (Printf.sprintf "Metrics.merge %s: histogram bucket edges disagree" name);
          Array.iteri (fun i c -> h.h_counts.(i) <- h.h_counts.(i) + c) hs.hs_counts;
          h.h_total <- h.h_total + hs.hs_count;
          h.h_sum <- h.h_sum +. hs.hs_sum)
    snap

(* Delta between two snapshots of the same registry: counters subtract,
   histograms subtract bucket-wise.  Metrics absent from [before] are
   reported at their [after] value. *)
let delta ~before ~after =
  List.filter_map
    (fun (name, sa) ->
      match (List.assoc_opt name before, sa) with
      | None, _ -> Some (name, sa)
      | Some (Counter_sample b), Counter_sample a -> Some (name, Counter_sample (a - b))
      | Some (Histogram_sample b), Histogram_sample a
        when Array.length b.hs_counts = Array.length a.hs_counts ->
          Some
            ( name,
              Histogram_sample
                {
                  hs_edges = a.hs_edges;
                  hs_counts = Array.mapi (fun i c -> c - b.hs_counts.(i)) a.hs_counts;
                  hs_count = a.hs_count - b.hs_count;
                  hs_sum = a.hs_sum -. b.hs_sum;
                } )
      | Some _, _ -> Some (name, sa))
    after

let pp ppf ?registry () =
  List.iter
    (fun (name, s) ->
      match s with
      | Counter_sample v -> Format.fprintf ppf "%-40s %d@\n" name v
      | Histogram_sample h ->
          Format.fprintf ppf "%-40s count=%d sum=%.3f p50=%.3f p90=%.3f p99=%.3f@\n" name
            h.hs_count h.hs_sum (snapshot_quantile h 0.5) (snapshot_quantile h 0.9)
            (snapshot_quantile h 0.99))
    (snapshot ?registry ())
