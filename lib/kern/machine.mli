(** The simulated machine: one kernel, one CPU, many processes.

    Processes are cooperative coroutines driven by a FIFO scheduler.
    Kernel facilities needed by SecModule — SysV message queues, syscall
    dispatch with trap accounting, forced forks, ptrace and core-dump
    restrictions — live here.  The SecModule syscalls themselves (numbers
    301–320) are registered by the [secmodule] library through
    {!register_syscall}, mirroring how the paper extends
    [syscalls.master] (Figure 4). *)

exception Deadlock of string

type t

type syscall_handler = t -> Proc.t -> int array -> int

val create : ?seed:int64 -> ?jitter:float -> ?limit_frames:int -> unit -> t
val clock : t -> Smod_sim.Clock.t
val trace : t -> Smod_sim.Trace.t
val phys : t -> Smod_vmem.Phys.t

(** {1 Processes} *)

val standard_aspace : t -> name:string -> Smod_vmem.Aspace.t
(** Fresh address space with the conventional text / data / stack entries
    of Figure 2 and the break set just above the static data. *)

val spawn :
  t ->
  ?daemon:bool ->
  ?aspace:Smod_vmem.Aspace.t ->
  ?uid:int ->
  name:string ->
  (Proc.t -> unit) ->
  Proc.t
(** Create a process (initially ready).  Without [?aspace] a standard one
    is built.  The body runs when the scheduler reaches it. *)

val spawn_thread : t -> Proc.t -> name:string -> (Proc.t -> unit) -> Proc.t
(** A second flow of control in the {e same} address space — the paper's
    multi-threaded client (§4.4). *)

val proc : t -> int -> Proc.t option
val proc_exn : t -> int -> Proc.t
val current : t -> Proc.t option
val live_procs : t -> Proc.t list

(** {1 Scheduling} *)

val step : t -> bool
(** Run one ready process until it blocks, yields or exits.  False when
    the ready queue is empty. *)

val run : t -> unit
(** Run until the ready queue drains.  Raises {!Deadlock} if a non-daemon
    process is still blocked at that point. *)

val wakeup : t -> int -> unit
(** Move a blocked process to the ready queue. *)

val wake : t -> Sched.waitq -> int
(** Drain a {!Sched.waitq}, waking every pid on it; returns how many were
    woken.  The blocking half is [Sched.wait_on] — together they are the
    dispatch ring's spin-then-block slow path. *)

val suspend_address_space : t -> Smod_vmem.Aspace.t -> except:int -> int list
(** TOCTOU mitigation 2 (§4.4): forcibly remove every runnable process
    sharing the address space (except [except]) from the ready queue.
    Returns the suspended pids. *)

val resume_pids : t -> int list -> unit

(** {1 Process lifecycle} *)

val sys_exit : t -> Proc.t -> int -> 'a
val kill : t -> pid:int -> signal:int -> unit
(** SIGKILL terminates (discontinuing any stored continuation); other
    signals are left pending on the target. *)

val sys_wait : t -> Proc.t -> Sched.exit_status * int
(** Blocks until a child exits; returns (status, pid) and reaps it. *)

val sys_fork : t -> Proc.t -> name:string -> child_body:(Proc.t -> unit) -> Proc.t
(** Forks: the child receives a clone of the parent's address space.
    (Simulator note: the child runs [child_body] rather than resuming the
    parent's continuation — one-shot continuations cannot be resumed
    twice.  Call sites pass the post-fork behaviour explicitly.) *)

val forced_fork :
  t ->
  Proc.t ->
  name:string ->
  daemon:bool ->
  role:Proc.role ->
  aspace:Smod_vmem.Aspace.t ->
  body:(Proc.t -> unit) ->
  Proc.t
(** The kernel-initiated fork used by [sys_smod_start_session] (paper §4,
    step 2): the kernel "forcibly forks the child process" with an
    explicitly prepared address space, role and body. *)

val sys_execve : t -> Proc.t -> image:string -> unit
(** Runs registered exec hooks (SecModule uses one to detach the session
    and kill the handle, §4.3), resets the address space, and charges the
    exec cost.  The caller-supplied body keeps running afterwards,
    representing the new image. *)

val add_exec_hook : t -> (t -> Proc.t -> string -> unit) -> unit

(** {1 Syscall dispatch} *)

val register_syscall : t -> int -> name:string -> syscall_handler -> unit
val syscall : t -> Proc.t -> int -> int array -> int
(** Trap into the kernel: charges trap enter/exit around the handler.
    Raises {!Errno.Error} as the handler does. *)

val set_syscall_filter :
  t -> (Proc.t -> int -> int array -> [ `Allow | `Deny of Errno.t ]) option -> unit
(** Interpose on every trap before the handler runs (the hook the
    Systrace substrate uses).  A [`Deny e] decision makes the syscall fail
    with [e]; trap costs are charged either way. *)

val sys_getpid : t -> Proc.t -> int
(** Via the numeric table; for a handle process this returns the client's
    pid (paper §4.3). *)

val sys_obreak : t -> Proc.t -> int -> unit
val sys_ptrace_attach : t -> Proc.t -> target_pid:int -> unit

(** {1 SysV message queues} *)

val msgget : t -> Proc.t -> key:int -> int
(** Returns the queue id, creating the queue if needed. *)

val msgsnd : t -> Proc.t -> qid:int -> mtype:int -> bytes -> unit
(** Blocks while the queue is full.  [mtype] must be positive. *)

val msgrcv : t -> Proc.t -> qid:int -> mtype:int -> int * bytes
(** Blocks until a matching message arrives.  [mtype] = 0 takes the head;
    positive takes the first of that type; negative takes the lowest type
    ≤ [-mtype].  Returns (mtype, payload). *)

val msgctl_remove : t -> Proc.t -> qid:int -> unit

val msgq_flush : t -> qid:int -> int
(** Discard every pending message and wake blocked senders, keeping the
    queue itself alive.  Used when a pooled handle is recycled between
    tenants so no stale request or reply can leak across sessions.
    Returns the number of messages dropped (kernel bookkeeping; the
    recycle cost is charged by the caller). *)

val msgq_depth : t -> qid:int -> int
(** Messages currently queued (introspection; no charge). *)

(** {1 Dispatch rings}

    [sys_smod_ring_setup] (syscall 321, registered by {!create}) pins one
    shared-memory dispatch ring per client pid: it validates that the
    ring lies wholly inside the force-share window and is mapped, then
    re-arms it zeroed so nothing the client pre-wrote survives
    registration.  Everything admission-relevant lives kernel-side: at
    stamp time [sys_smod_call_batch] (lib/secmodule) records each slot's
    (seq, moduleID, funcID, verdict) in a kernel-private shadow, and the
    handle claims from that shadow via {!ring_claim_next} — never from
    the client-writable ring words — so post-stamp rewrites of a slot's
    identity, verdict, or state, and rewinds of the shared cursor words,
    cannot change what executes or replay an executed slot. *)

val ring_registration : t -> pid:int -> (int * int) option
(** [(base, nslots)] of the ring registered to this client, if any.
    This pinned geometry — not the client-writable header word — is what
    kernel and handle views of the ring must be built from. *)

val ring_stamped : t -> pid:int -> int
(** Kernel-private admission cursor (0 when no ring is registered). *)

val ring_record_stamp :
  t -> pid:int -> seq:int -> m_id:int -> func_id:int -> allow:bool -> unit
(** Record the kernel's admission decision for slot [seq] and advance the
    stamped cursor past it.  Kernel-side callers only (the batch
    syscall's stamping loop); denied and malformed slots are recorded
    with [allow:false] so the handle's claim walks over them. *)

val ring_claim_next : t -> pid:int -> (int * int * int) option
(** Hand the handle the next allow-stamped slot as [(seq, m_id, func_id)]
    from the kernel-private shadow, advancing the kernel-private claim
    cursor (skipping denied/malformed/stale records).  [None] when the
    handle has caught up with the stamped cursor. *)

val ring_claimable : t -> pid:int -> bool
(** Whether the claim cursor is behind the stamped cursor (cheap
    work-available probe for the handle's spin loop). *)

val ring_teardown : t -> pid:int -> unit
(** Drop the registration (detach, scrub, or client death).  The memory
    itself belongs to the client and is scrubbed by the caller. *)

val max_ring_slots : int

(** {1 Introspection} *)

val context_switches : t -> int
val syscall_count : t -> int
val core_dumps : t -> (int * string) list
(** (pid, name) of processes that dumped core. *)

val pp_procs : Format.formatter -> t -> unit
