type wait_reason =
  | Msgq_receive of int
  | Msgq_full of int
  | Wait_child
  | Suspended
  | Pool_park of int
  | Waitq of string
  | Custom of string

type waitq = { wq_label : string; mutable wq_pids : int list }

let waitq label = { wq_label = label; wq_pids = [] }

type exit_status = Exited of int | Signaled of int

exception Proc_exit of int
exception Proc_killed of int

type _ Effect.t += Block : wait_reason -> unit Effect.t | Yield : unit Effect.t

let yield () = Effect.perform Yield

let wait_on wq pid =
  if not (List.mem pid wq.wq_pids) then wq.wq_pids <- wq.wq_pids @ [ pid ];
  Effect.perform (Block (Waitq wq.wq_label))

let pp_wait_reason ppf = function
  | Msgq_receive q -> Format.fprintf ppf "msgq-receive(%d)" q
  | Msgq_full q -> Format.fprintf ppf "msgq-full(%d)" q
  | Wait_child -> Format.pp_print_string ppf "wait-child"
  | Suspended -> Format.pp_print_string ppf "suspended"
  | Pool_park m -> Format.fprintf ppf "pool-park(module %d)" m
  | Waitq l -> Format.fprintf ppf "waitq(%s)" l
  | Custom s -> Format.fprintf ppf "custom(%s)" s

let pp_exit_status ppf = function
  | Exited n -> Format.fprintf ppf "exited(%d)" n
  | Signaled s -> Format.fprintf ppf "signaled(%s)" (Signal.name s)
