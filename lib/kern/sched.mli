(** Scheduling effects.

    Simulated processes are OCaml coroutines: a blocking kernel operation
    performs {!Block}, which the machine's scheduler captures as a one-shot
    continuation.  This gives real interleaving — enough to reproduce the
    paper's client/handle handshake, multi-client handles, and the §4.4
    multi-threaded TOCTOU attack. *)

type wait_reason =
  | Msgq_receive of int  (** blocked in [msgrcv] on this queue id *)
  | Msgq_full of int  (** blocked in [msgsnd] on a full queue *)
  | Wait_child
  | Suspended  (** forcibly dequeued (TOCTOU mitigation 2, §4.4) *)
  | Pool_park of int
      (** a reusable pooled handle parked between tenants, waiting for the
          smodd service layer (lib/pool) to attach the next session to the
          module with this id *)
  | Waitq of string
      (** blocked on a named {!waitq} — the dispatch ring's spin-then-block
          slow path parks here until the peer calls [Machine.wake] *)
  | Custom of string

type waitq = { wq_label : string; mutable wq_pids : int list }
(** A minimal wait queue: an ordered set of blocked pids under a label.
    Enqueue + block with {!wait_on}; drain with [Machine.wake] (the wake
    half lives in the machine, which owns the ready queue). *)

val waitq : string -> waitq
(** Fresh empty wait queue with the given label. *)

type exit_status = Exited of int | Signaled of int

exception Proc_exit of int
(** Raised by [sys_exit]; caught by the scheduler. *)

exception Proc_killed of int
(** Used to discontinue a killed process; carries the signal number. *)

type _ Effect.t +=
  | Block : wait_reason -> unit Effect.t
  | Yield : unit Effect.t

val yield : unit -> unit
(** Voluntarily give up the CPU (goes to the back of the ready queue). *)

val wait_on : waitq -> int -> unit
(** [wait_on wq pid] enqueues the calling process (which must be [pid])
    on [wq] and blocks it until [Machine.wake] drains the queue.  Must be
    performed from inside a simulated process body. *)

val pp_wait_reason : Format.formatter -> wait_reason -> unit
val pp_exit_status : Format.formatter -> exit_status -> unit
