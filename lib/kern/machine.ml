module Clock = Smod_sim.Clock
module Cost = Smod_sim.Cost_model
module Trace = Smod_sim.Trace
module Aspace = Smod_vmem.Aspace
module Layout = Smod_vmem.Layout
module Phys = Smod_vmem.Phys
module Prot = Smod_vmem.Prot
module Ring = Smod_ring.Ring

exception Deadlock of string

(* Observability (lib/metrics): the dispatch and IPC paths the paper's
   Figure-8 numbers are made of.  One SMOD call is 2 context switches,
   2 msgq sends and 2 receives; the counters let tests assert exactly
   that (test_integration.ml) and the bench JSON track it over time. *)
let m_scope = Smod_metrics.scope "kern"
let m_context_switches = Smod_metrics.Scope.counter m_scope "context_switches"
let m_syscalls = Smod_metrics.Scope.counter m_scope "syscalls"
let m_msgq_sends = Smod_metrics.Scope.counter m_scope "msgq_sends"
let m_msgq_recvs = Smod_metrics.Scope.counter m_scope "msgq_recvs"
let m_msgq_bytes = Smod_metrics.Scope.counter m_scope "msgq_bytes"
let m_sched_wakeups = Smod_metrics.Scope.counter m_scope "sched_wakeups"
let m_procs_spawned = Smod_metrics.Scope.counter m_scope "procs_spawned"

let m_msgq_message_bytes =
  Smod_metrics.Scope.histogram m_scope "msgq_message_bytes"
    ~edges:[| 16.0; 64.0; 256.0; 1024.0; 4096.0; 16384.0 |]

(* Dispatch-ring lifecycle (the rest of the ring.* scope lives in
   lib/secmodule where submission/claiming happen). *)
let m_ring_scope = Smod_metrics.scope "ring"
let m_ring_setups = Smod_metrics.Scope.counter m_ring_scope "setups"
let m_ring_teardowns = Smod_metrics.Scope.counter m_ring_scope "teardowns"

type msgq = {
  key : int;
  mutable messages : (int * bytes) list;  (* in arrival order *)
  mutable wait_recv : int list;
  mutable wait_send : int list;
  mutable cur_bytes : int;
  max_bytes : int;
  mutable removed : bool;
}

(* What the kernel decided about one stamped slot, recorded at stamp
   time in kernel-private memory.  The handle claims from these records
   — never from the (client-writable) ring slots — so a client that
   rewrites a slot's m_id/func_id/verdict/state words after admission
   can neither change which function runs nor resurrect a denied or
   already-executed slot.  [sr_seq] disambiguates a stale record whose
   ring index has since wrapped. *)
type stamp_rec = { sr_seq : int; sr_m_id : int; sr_func_id : int; sr_allow : bool }

(* One registered dispatch ring per client pid.  [rr_stamped] is the
   kernel-private admission cursor: the handle may only claim slots with
   seq below it, and it only advances through [sys_smod_call_batch]'s
   stamping loop.  [rr_claimed] is the handle's claim cursor, also
   kernel-private — header words in the (client-writable) ring memory
   are never trusted for admission, ordering, or replay protection. *)
type ring_reg = {
  rr_base : int;
  rr_nslots : int;
  mutable rr_stamped : int;
  mutable rr_claimed : int;
  rr_shadow : stamp_rec option array;  (* length rr_nslots, index seq mod nslots *)
}

type t = {
  clock : Clock.t;
  trace : Trace.t;
  phys : Phys.t;
  procs : (int, Proc.t) Hashtbl.t;
  mutable next_pid : int;
  ready_queue : int Queue.t;
  mutable cur : int option;
  mutable last_dispatched : int option;
  syscalls : (int, string * (t -> Proc.t -> int array -> int)) Hashtbl.t;
  msgqs : (int, msgq) Hashtbl.t;
  mutable next_qid : int;
  mutable exec_hooks : (t -> Proc.t -> string -> unit) list;
  mutable syscall_filter : (Proc.t -> int -> int array -> allow_deny) option;
  mutable n_context_switches : int;
  mutable n_syscalls : int;
  mutable cores : (int * string) list;
  rings : (int, ring_reg) Hashtbl.t;  (* client pid -> registration *)
}

and allow_deny = [ `Allow | `Deny of Errno.t ]

type syscall_handler = t -> Proc.t -> int array -> int

let clock t = t.clock
let trace t = t.trace
let phys t = t.phys
let proc t pid = Hashtbl.find_opt t.procs pid

let proc_exn t pid =
  match proc t pid with
  | Some p -> p
  | None -> Errno.raise_errno Errno.ESRCH (Printf.sprintf "pid %d" pid)

let current t = Option.bind t.cur (proc t)

let live_procs t =
  Hashtbl.fold (fun _ p acc -> if Proc.is_zombie p then acc else p :: acc) t.procs []

let enqueue_ready t (p : Proc.t) =
  p.state <- Proc.Ready;
  Queue.add p.pid t.ready_queue;
  Clock.charge t.clock Cost.Sched_enqueue

(* ------------------------------------------------------------------ *)
(* Address spaces                                                      *)
(* ------------------------------------------------------------------ *)

let standard_aspace t ~name =
  let a = Aspace.create ~phys:t.phys ~clock:t.clock ~name in
  let text_pages = 64 and data_pages = 16 in
  Aspace.add_entry a ~start_addr:Layout.text_base
    ~size:(text_pages * Layout.page_size)
    ~prot:Prot.rx ~kind:Aspace.Text ~name:"text";
  Aspace.add_entry a ~start_addr:Layout.data_base
    ~size:(data_pages * Layout.page_size)
    ~prot:Prot.rw ~kind:Aspace.Data ~name:"data";
  let stack_size = Layout.default_stack_pages * Layout.page_size in
  Aspace.add_entry a
    ~start_addr:(Layout.stack_top - stack_size)
    ~size:stack_size ~prot:Prot.rw ~kind:Aspace.Stack ~name:"stack";
  Aspace.set_heap_base a (Layout.data_base + (data_pages * Layout.page_size));
  a

(* ------------------------------------------------------------------ *)
(* Process lifecycle                                                   *)
(* ------------------------------------------------------------------ *)

let alloc_pid t =
  let pid = t.next_pid in
  t.next_pid <- t.next_pid + 1;
  pid

let send_signal (p : Proc.t) signal = p.pending_signals <- p.pending_signals @ [ signal ]

let finish t (p : Proc.t) status =
  p.state <- Proc.Zombie status;
  p.resume <- Proc.Finished;
  List.iter (fun hook -> hook p) p.exit_hooks;
  p.exit_hooks <- [];
  Trace.emitf t.trace ~clock:t.clock ~actor:p.name "exit %s"
    (Format.asprintf "%a" Sched.pp_exit_status status);
  (* Release the address space unless a live sibling (thread) shares it;
     the zombie only needs its exit status for the reaper. *)
  let shared_with_live =
    Hashtbl.fold
      (fun _ (q : Proc.t) acc ->
        acc || (q != p && (not (Proc.is_zombie q)) && q.aspace == p.aspace))
      t.procs false
  in
  if not shared_with_live then Aspace.destroy p.aspace;
  (* Notify the parent: SIGCHLD plus a wakeup if it is in wait(). *)
  match proc t p.ppid with
  | None -> ()
  | Some parent -> (
      send_signal parent Signal.sigchld;
      match parent.state with
      | Proc.Blocked Sched.Wait_child ->
          parent.state <- Proc.Ready;
          Queue.add parent.pid t.ready_queue;
          Clock.charge t.clock Cost.Sched_wakeup
      | _ -> ())

let crash t (p : Proc.t) signal =
  if not p.no_core_dump then begin
    p.core_dumped <- true;
    t.cores <- (p.pid, p.name) :: t.cores;
    Trace.emitf t.trace ~clock:t.clock ~actor:p.name "core dumped (%s)" (Signal.name signal)
  end;
  finish t p (Sched.Signaled signal)

let handle_body_exn t (p : Proc.t) = function
  | Sched.Proc_exit code -> finish t p (Sched.Exited code)
  | Sched.Proc_killed signal -> finish t p (Sched.Signaled signal)
  | Aspace.Segv _ | Aspace.Prot_violation _ -> crash t p Signal.sigsegv
  | Errno.Error (e, ctx) ->
      (* An unhandled syscall failure aborts the simulated program. *)
      Trace.emitf t.trace ~clock:t.clock ~actor:p.name "abort: %s in %s" (Errno.to_string e) ctx;
      crash t p Signal.sigterm
  | exn -> raise exn

let run_body t (p : Proc.t) body () =
  let open Effect.Deep in
  match_with body p
    {
      retc = (fun () -> finish t p (Sched.Exited 0));
      exnc = (fun exn -> handle_body_exn t p exn);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sched.Block reason ->
              Some
                (fun (k : (a, unit) continuation) ->
                  p.resume <- Proc.Cont k;
                  p.state <- Proc.Blocked reason)
          | Sched.Yield ->
              Some
                (fun (k : (a, unit) continuation) ->
                  p.resume <- Proc.Cont k;
                  enqueue_ready t p)
          | _ -> None);
    }

let make_proc t ?(daemon = false) ?aspace ?(uid = 1000) ~ppid ~role ~name body =
  let aspace = match aspace with Some a -> a | None -> standard_aspace t ~name in
  let pid = alloc_pid t in
  let p : Proc.t =
    {
      pid;
      ppid;
      name;
      aspace;
      state = Proc.Ready;
      resume = Proc.Finished;
      killed = None;
      sp = Layout.stack_top - 64;
      fp = Layout.stack_top - 64;
      uid;
      gid = uid;
      no_core_dump = false;
      no_ptrace = false;
      ring = 3;
      role;
      daemon;
      pending_signals = [];
      children = [];
      traced_by = None;
      core_dumped = false;
      exit_hooks = [];
    }
  in
  p.resume <- Proc.Start (run_body t p body);
  Hashtbl.replace t.procs pid p;
  Queue.add pid t.ready_queue;
  Smod_metrics.Counter.incr m_procs_spawned;
  p

let spawn t ?daemon ?aspace ?uid ~name body =
  make_proc t ?daemon ?aspace ?uid ~ppid:0 ~role:Proc.Standalone ~name body

let spawn_thread t (parent : Proc.t) ~name body =
  let child = make_proc t ~aspace:parent.aspace ~uid:parent.uid ~ppid:parent.ppid
      ~role:parent.role ~name body
  in
  (* Threads share the stack region but get their own stack cursor. *)
  child.sp <- parent.sp - 8192;
  child.fp <- child.sp;
  child

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)
(* ------------------------------------------------------------------ *)

let dispatch t (p : Proc.t) =
  if t.last_dispatched <> Some p.pid then begin
    Clock.charge t.clock Cost.Context_switch;
    t.n_context_switches <- t.n_context_switches + 1;
    Smod_metrics.Counter.incr m_context_switches
  end;
  t.last_dispatched <- Some p.pid;
  t.cur <- Some p.pid;
  let cell = p.resume in
  p.resume <- Proc.Finished;
  p.state <- Proc.Running;
  (match (cell, p.killed) with
  | Proc.Finished, _ -> ()
  | _, Some signal -> (
      p.killed <- None;
      match cell with
      | Proc.Cont k -> Effect.Deep.discontinue k (Sched.Proc_killed signal)
      | Proc.Start _ | Proc.Finished -> finish t p (Sched.Signaled signal))
  | Proc.Start f, None -> f ()
  | Proc.Cont k, None -> Effect.Deep.continue k ());
  t.cur <- None

let rec step t =
  match Queue.take_opt t.ready_queue with
  | None -> false
  | Some pid -> (
      match proc t pid with
      | None -> step t
      | Some p -> (
          match p.state with
          | Proc.Ready ->
              dispatch t p;
              true
          | Proc.Running | Proc.Blocked _ | Proc.Zombie _ ->
              (* Stale queue entry (e.g. the process was suspended or killed
                 after being enqueued). *)
              step t))

let run t =
  while step t do
    ()
  done;
  let stuck =
    List.filter (fun (p : Proc.t) -> Proc.is_blocked p && not p.daemon) (live_procs t)
  in
  match stuck with
  | [] -> ()
  | ps ->
      let desc =
        String.concat ", "
          (List.map
             (fun (p : Proc.t) -> Format.asprintf "%s(pid %d): %a" p.name p.pid Proc.pp_state p.state)
             ps)
      in
      raise (Deadlock desc)

let wakeup t pid =
  match proc t pid with
  | Some p when Proc.is_blocked p ->
      p.state <- Proc.Ready;
      Queue.add pid t.ready_queue;
      Clock.charge t.clock Cost.Sched_wakeup;
      Smod_metrics.Counter.incr m_sched_wakeups
  | Some _ | None -> ()

let wake t (wq : Sched.waitq) =
  (* Drain a Sched wait queue: the wake half of wait_on/wake lives here
     because the machine owns the ready queue. *)
  let pids = wq.Sched.wq_pids in
  wq.Sched.wq_pids <- [];
  List.iter (wakeup t) pids;
  List.length pids

let block_current t (p : Proc.t) reason =
  assert (t.cur = Some p.pid);
  Effect.perform (Sched.Block reason)

let suspend_address_space t aspace ~except =
  (* The kernel walks the process table looking for siblings — cheap, as
     §4.4 notes, but not free. *)
  Clock.charge_cycles t.clock (150.0 +. (35.0 *. float_of_int (Hashtbl.length t.procs)));
  let suspended = ref [] in
  Hashtbl.iter
    (fun pid (p : Proc.t) ->
      if pid <> except && p.aspace == aspace then
        match p.state with
        | Proc.Ready ->
            p.state <- Proc.Blocked Sched.Suspended;
            suspended := pid :: !suspended
        | Proc.Running | Proc.Blocked _ | Proc.Zombie _ -> ())
    t.procs;
  (* Ready-queue entries for suspended pids are now stale; [step] skips
     them because the state is no longer [Ready]. *)
  !suspended

let resume_pids t pids =
  List.iter
    (fun pid ->
      match proc t pid with
      | Some p when p.state = Proc.Blocked Sched.Suspended -> enqueue_ready t p
      | Some _ | None -> ())
    pids

(* ------------------------------------------------------------------ *)
(* Lifecycle syscalls                                                  *)
(* ------------------------------------------------------------------ *)

let sys_exit _t _p code = raise (Sched.Proc_exit code)

let kill t ~pid ~signal =
  let target = proc_exn t pid in
  if Proc.is_zombie target then ()
  else if signal = Signal.sigkill then begin
    match t.cur with
    | Some cur_pid when cur_pid = pid -> raise (Sched.Proc_killed signal)
    | _ ->
        target.killed <- Some signal;
        (match target.state with
        | Proc.Blocked _ ->
            target.state <- Proc.Ready;
            Queue.add pid t.ready_queue
        | Proc.Ready | Proc.Running | Proc.Zombie _ -> ());
        (* A killed process that never ran, or whose continuation is gone,
           can be finished immediately. *)
        if target.resume = Proc.Finished && t.cur <> Some pid then begin
          target.killed <- None;
          finish t target (Sched.Signaled signal)
        end
  end
  else send_signal target signal

let sys_wait t (p : Proc.t) =
  let find_zombie () =
    List.find_map
      (fun child_pid ->
        match proc t child_pid with
        | Some child when Proc.is_zombie child -> (
            match child.state with
            | Proc.Zombie status -> Some (child, status)
            | _ -> None)
        | _ -> None)
      p.children
  in
  if p.children = [] then Errno.raise_errno Errno.ECHILD "wait";
  let rec loop () =
    match find_zombie () with
    | Some (child, status) ->
        p.children <- List.filter (fun c -> c <> child.pid) p.children;
        Hashtbl.remove t.procs child.pid;
        (status, child.pid)
    | None ->
        block_current t p Sched.Wait_child;
        loop ()
  in
  loop ()

let sys_fork t (p : Proc.t) ~name ~child_body =
  Clock.charge t.clock Cost.Fork_base;
  let child_aspace = Aspace.clone p.aspace ~name in
  let child =
    make_proc t ~aspace:child_aspace ~uid:p.uid ~ppid:p.pid ~role:Proc.Standalone ~name
      child_body
  in
  child.sp <- p.sp;
  child.fp <- p.fp;
  p.children <- child.pid :: p.children;
  Trace.emitf t.trace ~clock:t.clock ~actor:p.name "fork -> pid %d (%s)" child.pid name;
  child

let forced_fork t (p : Proc.t) ~name ~daemon ~role ~aspace ~body =
  Clock.charge t.clock Cost.Fork_base;
  let child = make_proc t ~daemon ~aspace ~uid:p.uid ~ppid:p.pid ~role ~name body in
  p.children <- child.pid :: p.children;
  Trace.emitf t.trace ~clock:t.clock ~actor:"kernel" "forced fork of %s -> pid %d (%s)" p.name
    child.pid name;
  child

let add_exec_hook t hook = t.exec_hooks <- t.exec_hooks @ [ hook ]

let sys_execve t (p : Proc.t) ~image =
  Clock.charge t.clock Cost.Exec_base;
  List.iter (fun hook -> hook t p image) t.exec_hooks;
  (* Tear down the old image and build a pristine address space. *)
  Aspace.destroy p.aspace;
  p.aspace <- standard_aspace t ~name:(p.name ^ ":" ^ image);
  p.sp <- Layout.stack_top - 64;
  p.fp <- p.sp;
  Trace.emitf t.trace ~clock:t.clock ~actor:p.name "execve %s" image

(* ------------------------------------------------------------------ *)
(* Syscall table                                                       *)
(* ------------------------------------------------------------------ *)

let register_syscall t nr ~name handler =
  if Hashtbl.mem t.syscalls nr then
    invalid_arg (Printf.sprintf "syscall %d (%s) already registered" nr name);
  Hashtbl.replace t.syscalls nr (name, handler)

let set_syscall_filter t f = t.syscall_filter <- f

let syscall t p nr args =
  Clock.charge t.clock Cost.Trap_enter;
  t.n_syscalls <- t.n_syscalls + 1;
  Smod_metrics.Counter.incr m_syscalls;
  Fun.protect
    ~finally:(fun () -> Clock.charge t.clock Cost.Trap_exit)
    (fun () ->
      (match t.syscall_filter with
      | Some filter -> (
          match filter p nr args with
          | `Allow -> ()
          | `Deny e -> Errno.raise_errno e (Sysno.name nr ^ ": denied by syscall policy"))
      | None -> ());
      match Hashtbl.find_opt t.syscalls nr with
      | None -> Errno.raise_errno Errno.ENOSYS (Sysno.name nr)
      | Some (_, handler) -> handler t p args)

let getpid_handler _t (p : Proc.t) _args =
  Clock.charge _t.clock Cost.Getpid_body;
  match p.role with
  | Proc.Smod_handle { client_pid } ->
      (* §4.3: pid-related calls must report the client, not the handle. *)
      Clock.charge _t.clock Cost.Getpid_client_fixup;
      client_pid
  | Proc.Standalone | Proc.Smod_client _ -> p.pid

let sys_getpid t p = syscall t p Sysno.getpid [||]

let sys_obreak t p new_brk =
  ignore (syscall t p Sysno.obreak [| new_brk |])

let sys_ptrace_attach t p ~target_pid =
  ignore (syscall t p Sysno.ptrace [| 10 (* PT_ATTACH *); target_pid |])

(* ------------------------------------------------------------------ *)
(* SysV message queues                                                 *)
(* ------------------------------------------------------------------ *)

let msgq_exn t qid =
  match Hashtbl.find_opt t.msgqs qid with
  | Some q when not q.removed -> q
  | Some _ -> Errno.raise_errno Errno.EIDRM "msgq"
  | None -> Errno.raise_errno Errno.EINVAL "msgq"

let msgget t _p ~key =
  let existing =
    Hashtbl.fold
      (fun qid q acc -> if q.key = key && not q.removed then Some qid else acc)
      t.msgqs None
  in
  match existing with
  | Some qid -> qid
  | None ->
      let qid = t.next_qid in
      t.next_qid <- t.next_qid + 1;
      Hashtbl.replace t.msgqs qid
        {
          key;
          messages = [];
          wait_recv = [];
          wait_send = [];
          cur_bytes = 0;
          max_bytes = 16384;
          removed = false;
        };
      qid

let msgsnd t (p : Proc.t) ~qid ~mtype payload =
  if mtype <= 0 then Errno.raise_errno Errno.EINVAL "msgsnd: mtype";
  if Bytes.length payload > (msgq_exn t qid).max_bytes then
    Errno.raise_errno Errno.EINVAL "msgsnd: message larger than queue limit";
  let rec attempt () =
    let q = msgq_exn t qid in
    if q.cur_bytes + Bytes.length payload > q.max_bytes then begin
      q.wait_send <- q.wait_send @ [ p.pid ];
      block_current t p (Sched.Msgq_full qid);
      attempt ()
    end
    else begin
      Clock.charge t.clock Cost.Msgq_send;
      Clock.charge t.clock (Cost.Copy_bytes (Bytes.length payload));
      Smod_metrics.Counter.incr m_msgq_sends;
      Smod_metrics.Counter.add m_msgq_bytes (Bytes.length payload);
      Smod_metrics.Histogram.observe m_msgq_message_bytes (float_of_int (Bytes.length payload));
      q.messages <- q.messages @ [ (mtype, payload) ];
      q.cur_bytes <- q.cur_bytes + Bytes.length payload;
      match q.wait_recv with
      | [] -> ()
      | waiter :: rest ->
          q.wait_recv <- rest;
          wakeup t waiter
    end
  in
  attempt ()

let msg_matches mtype (mt, _) =
  if mtype = 0 then true
  else if mtype > 0 then mt = mtype
  else mt <= -mtype

let take_message q mtype =
  if mtype >= 0 then begin
    (* First matching message in arrival order. *)
    let rec split acc = function
      | [] -> None
      | msg :: rest ->
          if msg_matches mtype msg then Some (msg, List.rev_append acc rest)
          else split (msg :: acc) rest
    in
    split [] q.messages
  end
  else begin
    (* Lowest type <= -mtype. *)
    let candidates = List.filter (msg_matches mtype) q.messages in
    match candidates with
    | [] -> None
    | first :: _ ->
        let best =
          List.fold_left (fun (bt, bp) (mt, pl) -> if mt < bt then (mt, pl) else (bt, bp))
            first candidates
        in
        let removed = ref false in
        let rest =
          List.filter
            (fun msg ->
              if (not !removed) && msg == best then begin
                removed := true;
                false
              end
              else true)
            q.messages
        in
        Some (best, rest)
  end

let msgrcv t (p : Proc.t) ~qid ~mtype =
  let rec attempt () =
    let q = msgq_exn t qid in
    match take_message q mtype with
    | Some ((mt, payload), rest) ->
        Clock.charge t.clock Cost.Msgq_recv;
        Clock.charge t.clock (Cost.Copy_bytes (Bytes.length payload));
        Smod_metrics.Counter.incr m_msgq_recvs;
        Smod_metrics.Counter.add m_msgq_bytes (Bytes.length payload);
        q.messages <- rest;
        q.cur_bytes <- q.cur_bytes - Bytes.length payload;
        (match q.wait_send with
        | [] -> ()
        | waiter :: others ->
            q.wait_send <- others;
            wakeup t waiter);
        (mt, payload)
    | None ->
        q.wait_recv <- q.wait_recv @ [ p.pid ];
        block_current t p (Sched.Msgq_receive qid);
        attempt ()
  in
  attempt ()

let msgq_depth t ~qid =
  match Hashtbl.find_opt t.msgqs qid with Some q -> List.length q.messages | None -> 0

let msgq_flush t ~qid =
  let q = msgq_exn t qid in
  let dropped = List.length q.messages in
  q.messages <- [];
  q.cur_bytes <- 0;
  let senders = q.wait_send in
  q.wait_send <- [];
  List.iter (wakeup t) senders;
  dropped

let msgctl_remove t _p ~qid =
  let q = msgq_exn t qid in
  q.removed <- true;
  let waiters = q.wait_recv @ q.wait_send in
  q.wait_recv <- [];
  q.wait_send <- [];
  List.iter (wakeup t) waiters

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let context_switches t = t.n_context_switches
let syscall_count t = t.n_syscalls
let core_dumps t = t.cores

(* --------------------------- dispatch rings ------------------------ *)

let ring_registration t ~pid =
  Hashtbl.find_opt t.rings pid |> Option.map (fun r -> (r.rr_base, r.rr_nslots))

let ring_stamped t ~pid =
  match Hashtbl.find_opt t.rings pid with Some r -> r.rr_stamped | None -> 0

let ring_record_stamp t ~pid ~seq ~m_id ~func_id ~allow =
  match Hashtbl.find_opt t.rings pid with
  | None -> ()
  | Some r ->
      r.rr_shadow.(seq mod r.rr_nslots) <-
        Some { sr_seq = seq; sr_m_id = m_id; sr_func_id = func_id; sr_allow = allow };
      if seq + 1 > r.rr_stamped then r.rr_stamped <- seq + 1

let ring_claim_next t ~pid =
  match Hashtbl.find_opt t.rings pid with
  | None -> None
  | Some r ->
      (* Walk the kernel-private claim cursor towards the stamped cursor,
         skipping slots the kernel already completed (denied/malformed)
         and stale wrapped records; only an allow record stamped for
         exactly this seq is handed to the handle. *)
      let rec go () =
        if r.rr_claimed >= r.rr_stamped then None
        else begin
          let seq = r.rr_claimed in
          r.rr_claimed <- seq + 1;
          match r.rr_shadow.(seq mod r.rr_nslots) with
          | Some sr when sr.sr_seq = seq && sr.sr_allow ->
              Some (seq, sr.sr_m_id, sr.sr_func_id)
          | Some _ | None -> go ()
        end
      in
      go ()

let ring_claimable t ~pid =
  match Hashtbl.find_opt t.rings pid with
  | Some r -> r.rr_claimed < r.rr_stamped
  | None -> false

let ring_teardown t ~pid =
  if Hashtbl.mem t.rings pid then begin
    Hashtbl.remove t.rings pid;
    Smod_metrics.Counter.incr m_ring_teardowns
  end

let max_ring_slots = 1024

let sys_smod_ring_setup t (p : Proc.t) args =
  if Array.length args < 2 then Errno.raise_errno Errno.EINVAL "smod_ring_setup";
  let base = args.(0) and nslots = args.(1) in
  match Hashtbl.find_opt t.rings p.pid with
  | Some r when r.rr_base = base && r.rr_nslots = nslots -> 0 (* idempotent *)
  | Some _ ->
      Errno.raise_errno Errno.EEXIST "smod_ring_setup: geometry already pinned"
  | None ->
      if nslots <= 0 || nslots > max_ring_slots then
        Errno.raise_errno Errno.EINVAL "smod_ring_setup: slot count";
      if base land 3 <> 0 then
        Errno.raise_errno Errno.EINVAL "smod_ring_setup: alignment";
      let size = Ring.size_bytes ~nslots in
      if base < Layout.share_lo || base + size > Layout.share_hi then
        Errno.raise_errno Errno.EINVAL
          "smod_ring_setup: ring must live inside the share window";
      (* Every page of the ring must already be mapped by the caller. *)
      let check addr =
        match Aspace.find_entry p.aspace addr with
        | Some _ -> ()
        | None ->
            Errno.raise_errno Errno.EFAULT "smod_ring_setup: unmapped ring memory"
      in
      let pos = ref base in
      while !pos < base + size do
        check !pos;
        pos := !pos + Layout.page_size
      done;
      check (base + size - 1);
      (* Re-arm zeroed under kernel control: nothing the client pre-wrote
         (forged verdicts, fake cursors) survives registration. *)
      ignore (Ring.init p.aspace ~base ~nslots);
      Clock.charge t.clock (Cost.Copy_bytes size);
      Hashtbl.replace t.rings p.pid
        {
          rr_base = base;
          rr_nslots = nslots;
          rr_stamped = 0;
          rr_claimed = 0;
          rr_shadow = Array.make nslots None;
        };
      Smod_metrics.Counter.incr m_ring_setups;
      0

let pp_procs ppf t =
  Hashtbl.iter
    (fun pid (p : Proc.t) ->
      Format.fprintf ppf "pid %3d %-16s %a@\n" pid p.name Proc.pp_state p.state)
    t.procs

let create ?seed ?jitter ?limit_frames () =
  let clock = Clock.create ?seed ?jitter () in
  let t =
    {
      clock;
      trace = Trace.create ();
      phys = Phys.create ?limit_frames ();
      procs = Hashtbl.create 64;
      next_pid = 1;
      ready_queue = Queue.create ();
      cur = None;
      last_dispatched = None;
      syscalls = Hashtbl.create 64;
      msgqs = Hashtbl.create 16;
      next_qid = 1;
      exec_hooks = [];
      syscall_filter = None;
      n_context_switches = 0;
      n_syscalls = 0;
      cores = [];
      rings = Hashtbl.create 8;
    }
  in
  register_syscall t Sysno.getpid ~name:"getpid" getpid_handler;
  register_syscall t Sysno.exit ~name:"exit" (fun _t p args ->
      sys_exit _t p (if Array.length args > 0 then args.(0) else 0));
  register_syscall t Sysno.obreak ~name:"obreak" (fun _t p args ->
      if Array.length args < 1 then Errno.raise_errno Errno.EINVAL "obreak";
      (try Aspace.obreak p.aspace args.(0)
       with Aspace.Bad_range msg -> Errno.raise_errno Errno.ENOMEM ("obreak: " ^ msg));
      0);
  register_syscall t Sysno.kill ~name:"kill" (fun t p args ->
      if Array.length args < 2 then Errno.raise_errno Errno.EINVAL "kill";
      let target_pid = args.(0) and signal = args.(1) in
      let target = proc_exn t target_pid in
      if p.uid <> 0 && target.uid <> p.uid then Errno.raise_errno Errno.EPERM "kill";
      (* Ring ordering (paper section 2): less privileged code cannot
         signal more privileged code, root or not. *)
      if target.ring < p.ring then
        Errno.raise_errno Errno.EPERM "kill: target runs in a more privileged ring";
      kill t ~pid:target_pid ~signal;
      0);
  register_syscall t Sysno.ptrace ~name:"ptrace" (fun t p args ->
      if Array.length args < 2 then Errno.raise_errno Errno.EINVAL "ptrace";
      let target = proc_exn t args.(1) in
      (* §3.1 item 4: no tracing of any process associated with a handle. *)
      if target.no_ptrace then Errno.raise_errno Errno.EPERM "ptrace: target protected";
      if target.ring < p.ring then
        Errno.raise_errno Errno.EPERM "ptrace: target runs in a more privileged ring";
      if p.uid <> 0 && target.uid <> p.uid then Errno.raise_errno Errno.EPERM "ptrace";
      target.traced_by <- Some p.pid;
      0);
  register_syscall t Sysno.smod_ring_setup ~name:"smod_ring_setup"
    sys_smod_ring_setup;
  register_syscall t Sysno.msgget ~name:"msgget" (fun t p args ->
      msgget t p ~key:args.(0));
  (* Trap-level msgsnd/msgrcv move the payload through user memory:
     msgsnd(qid, mtype, addr, len) / msgrcv(qid, mtype, addr, maxlen). *)
  register_syscall t Sysno.msgsnd ~name:"msgsnd" (fun t p args ->
      if Array.length args < 4 then Errno.raise_errno Errno.EINVAL "msgsnd";
      let len = args.(3) in
      if len < 0 then Errno.raise_errno Errno.EINVAL "msgsnd: length";
      let payload = Aspace.read_bytes p.Proc.aspace ~addr:args.(2) ~len in
      msgsnd t p ~qid:args.(0) ~mtype:args.(1) payload;
      0);
  register_syscall t Sysno.msgrcv ~name:"msgrcv" (fun t p args ->
      if Array.length args < 4 then Errno.raise_errno Errno.EINVAL "msgrcv";
      let _, payload = msgrcv t p ~qid:args.(0) ~mtype:args.(1) in
      let n = min (Bytes.length payload) args.(3) in
      if n > 0 then Aspace.write_bytes p.Proc.aspace ~addr:args.(2) (Bytes.sub payload 0 n);
      n);
  t
