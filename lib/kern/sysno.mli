(** Syscall numbers.  The standard ones follow OpenBSD 3.6's
    [syscalls.master]; 301–320 are the SecModule additions from the
    paper's Figure 4. *)

val exit : int
val fork : int
val obreak : int
val getpid : int
val ptrace : int
val kill : int
val execve : int
val wait4 : int
val msgget : int
val msgsnd : int
val msgrcv : int

(** 301 *)
val smod_find : int

(** 303: handle side only *)
val smod_session_info : int

(** 304: client side only *)
val smod_handle_info : int

(** 305 *)
val smod_add : int

(** 306 *)
val smod_remove : int

(** 307 *)
val smod_call : int

(** 320 *)
val smod_start_session : int

(** 321: register a shared-memory dispatch ring for the caller's session *)
val smod_ring_setup : int

(** 322: submit a batch of calls through the dispatch ring in one trap *)
val smod_call_batch : int

(** 323: re-arm a parked SQPOLL kernel poller — the only trap the
    zero-trap ring path ever pays, and only while the poller naps *)
val smod_poll_doorbell : int

val name : int -> string
