module Aspace = Smod_vmem.Aspace
module Layout = Smod_vmem.Layout
module Prot = Smod_vmem.Prot
module Clock = Smod_sim.Clock
module Cost = Smod_sim.Cost_model

exception Fault of { pc : int; reason : string }

(* Observability (lib/metrics): module-VM work executed inside handles. *)
let m_instructions = Smod_metrics.counter "svm.instructions"
let m_runs = Smod_metrics.counter "svm.runs"

type env = {
  aspace : Aspace.t;
  clock : Clock.t;
  syscall : (nr:int -> int array -> int) option;
  fuel : int;
  mutable executed : int;
}

let make_env ~aspace ~clock ?syscall ?(fuel = 10_000_000) () =
  { aspace; clock; syscall; fuel; executed = 0 }

let instructions_executed env = env.executed

let mask32 = 0xFFFFFFFF
let to_signed v = if v land 0x80000000 <> 0 then v - 0x100000000 else v

let run env ~code_base ~code_len ?(entry = 0) ~args_base () =
  Smod_metrics.Counter.incr m_runs;
  let aspace = env.aspace in
  (* Instruction fetch happens through the address space with execute
     access: verify each touched code page once, then read the bytes. *)
  let verified_pages = Hashtbl.create 8 in
  let fetch_check addr =
    let vpn = Layout.vpn_of_addr addr in
    if not (Hashtbl.mem verified_pages vpn) then begin
      Aspace.fault aspace ~addr ~access:Prot.Exec;
      Hashtbl.replace verified_pages vpn ()
    end
  in
  (* Pull the image once page-by-page (each page exec-checked); real
     hardware would fetch incrementally but the protection consequence is
     identical and decode stays simple. *)
  let code =
    let out = Bytes.create code_len in
    let pos = ref 0 in
    while !pos < code_len do
      let addr = code_base + !pos in
      fetch_check addr;
      let page_off = addr land (Layout.page_size - 1) in
      let chunk = min (Layout.page_size - page_off) (code_len - !pos) in
      Bytes.blit (Aspace.read_bytes aspace ~addr ~len:chunk) 0 out !pos chunk;
      pos := !pos + chunk
    done;
    out
  in
  let stack = ref [] in
  let return_stack = ref [] in
  let max_call_depth = 256 in
  let locals = Array.make 16 0 in
  let push v = stack := v land mask32 :: !stack in
  let pop pc =
    match !stack with
    | v :: rest ->
        stack := rest;
        v
    | [] -> raise (Fault { pc; reason = "operand stack underflow" })
  in
  let rec exec pc fuel =
    if fuel <= 0 then raise (Fault { pc; reason = "out of fuel" });
    if pc < 0 || pc >= code_len then raise (Fault { pc; reason = "pc out of code range" });
    let instr, next =
      try Isa.decode_at code pc
      with Invalid_argument msg -> raise (Fault { pc; reason = msg })
    in
    env.executed <- env.executed + 1;
    Smod_metrics.Counter.incr m_instructions;
    Clock.charge env.clock Cost.Svm_instr;
    let binop f =
      let b = pop pc in
      let a = pop pc in
      push (f a b);
      exec next (fuel - 1)
    in
    match instr with
    | Isa.Nop -> exec next (fuel - 1)
    | Isa.Push v -> (
        push v;
        exec next (fuel - 1))
    | Isa.Loadarg k ->
        push (Aspace.read_word aspace ~addr:(args_base + (4 * k)));
        exec next (fuel - 1)
    | Isa.Loadw ->
        let addr = pop pc in
        push (Aspace.read_word aspace ~addr);
        exec next (fuel - 1)
    | Isa.Storew ->
        let addr = pop pc in
        let v = pop pc in
        Aspace.write_word aspace ~addr v;
        exec next (fuel - 1)
    | Isa.Loadb ->
        let addr = pop pc in
        push (Aspace.read_u8 aspace ~addr);
        exec next (fuel - 1)
    | Isa.Storeb ->
        let addr = pop pc in
        let v = pop pc in
        Aspace.write_u8 aspace ~addr v;
        exec next (fuel - 1)
    | Isa.Add -> binop (fun a b -> a + b)
    | Isa.Sub -> binop (fun a b -> a - b)
    | Isa.Mul -> binop (fun a b -> a * b)
    | Isa.Divu ->
        let b = pop pc in
        let a = pop pc in
        if b = 0 then raise (Fault { pc; reason = "division by zero" });
        push (a / b);
        exec next (fuel - 1)
    | Isa.And -> binop ( land )
    | Isa.Or -> binop ( lor )
    | Isa.Xor -> binop ( lxor )
    | Isa.Shl -> binop (fun a b -> a lsl (b land 31))
    | Isa.Shr -> binop (fun a b -> a lsr (b land 31))
    | Isa.Eq -> binop (fun a b -> if a = b then 1 else 0)
    | Isa.Lt -> binop (fun a b -> if to_signed a < to_signed b then 1 else 0)
    | Isa.Ltu -> binop (fun a b -> if a < b then 1 else 0)
    | Isa.Jmp d -> exec (next + d) (fuel - 1)
    | Isa.Jz d ->
        let v = pop pc in
        exec (if v = 0 then next + d else next) (fuel - 1)
    | Isa.Jnz d ->
        let v = pop pc in
        exec (if v <> 0 then next + d else next) (fuel - 1)
    | Isa.Dup ->
        let v = pop pc in
        push v;
        push v;
        exec next (fuel - 1)
    | Isa.Drop ->
        ignore (pop pc);
        exec next (fuel - 1)
    | Isa.Swap ->
        let b = pop pc in
        let a = pop pc in
        push b;
        push a;
        exec next (fuel - 1)
    | Isa.Localget k ->
        if k >= Array.length locals then raise (Fault { pc; reason = "local index" });
        push locals.(k);
        exec next (fuel - 1)
    | Isa.Localset k ->
        if k >= Array.length locals then raise (Fault { pc; reason = "local index" });
        locals.(k) <- pop pc;
        exec next (fuel - 1)
    | Isa.Sys (nr, nargs) -> (
        match env.syscall with
        | None -> raise (Fault { pc; reason = "syscall from module code not permitted here" })
        | Some sys ->
            let args = Array.make nargs 0 in
            for i = nargs - 1 downto 0 do
              args.(i) <- pop pc
            done;
            push (sys ~nr args);
            exec next (fuel - 1))
    | Isa.Call target ->
        let tgt_off = target - code_base in
        if tgt_off < 0 || tgt_off >= code_len then
          raise (Fault { pc; reason = Printf.sprintf "call target 0x%x outside module" target });
        if List.length !return_stack >= max_call_depth then
          raise (Fault { pc; reason = "call depth overflow" });
        return_stack := next :: !return_stack;
        exec tgt_off (fuel - 1)
    | Isa.Ret -> (
        match !return_stack with
        | ret :: rest ->
            (* intra-module return: the result stays on the operand stack *)
            return_stack := rest;
            exec ret (fuel - 1)
        | [] -> pop pc)
  in
  if entry < 0 || entry >= code_len then
    raise (Fault { pc = entry; reason = "entry point outside code" });
  exec entry env.fuel
