(** Client-side stubs.

    {!connect} performs the crt0 initialization sequence of Figure 1
    (find → start_session → handle_info); {!call} performs the stack
    choreography of Figure 3: push the arguments, the return address and
    the saved frame pointer, push the [(moduleID, funcID)] pair, duplicate
    the two words the kernel needs, then trap into [sys_smod_call].
    On return the stub unwinds exactly what it pushed. *)

type conn

val connect :
  Smod.t ->
  Smod_kern.Proc.t ->
  module_name:string ->
  version:int ->
  credential:Credential.t ->
  conn
(** Raises {!Smod_kern.Errno.Error} as the underlying syscalls do
    (ENOENT unknown module, EACCES bad credential, ...). *)

val conn_info : conn -> Wire.handle_info
val session_id : conn -> int
val func_id : conn -> string -> int option
(** From the stub table generated off the module's symbol table. *)

val call : ?on_step:(int -> unit) -> conn -> func:string -> int array -> int
(** Invoke a module function with word arguments.  [on_step] fires after
    Figure 3 states 1 (frame built), 2 (kernel view pushed) and 4
    (frame restored) so tests can inspect the simulated stack.  Raises
    [Invalid_argument] for an unknown function name and
    {!Smod_kern.Errno.Error} for kernel-side failures. *)

val call_id : ?on_step:(int -> unit) -> conn -> func_id:int -> int array -> int

(** {1 Dispatch-ring fast path}

    {!arm_ring} grows the heap by one ring (obreak inside an established
    pair maps the new pages on both sides), then registers it with
    [sys_smod_ring_setup] — the kernel re-zeros the region and pins the
    geometry.  {!call_batch} then submits N calls with one trap per
    ring-capacity chunk: the kernel stamps admission verdicts (one policy
    evaluation per distinct function per batch for cacheable policies),
    the handle drains the ring in one wakeup, and the client reaps
    completions in submission order with an adaptive spin-then-block
    wait.  No message-queue traffic on the steady-state path. *)

val arm_ring : ?nslots:int -> conn -> Smod_ring.Ring.t
(** Idempotent; default 64 slots.  Raises {!Smod_kern.Errno.Error} as
    [sys_smod_ring_setup] does (EEXIST on conflicting geometry, EINVAL
    on bad placement). *)

val ring : conn -> Smod_ring.Ring.t option
(** The client's view of the armed ring, if any. *)

val call_batch :
  conn -> func:string -> int array list -> (int, Smod_kern.Errno.t * string) result list
(** Submit every argument vector as one batched call to [func]; results
    come back in submission order, [Ok retval] or [Error (errno, msg)]
    per slot — a denied slot fails alone instead of failing the batch.
    Arms a default ring on first use.  Raises [Invalid_argument] for an
    unknown function name, {!Smod_kern.Errno.Error} EIDRM if the session
    detaches mid-batch, EPERM if a TOCTOU mitigation is active. *)

val call_batch_id :
  conn -> func_id:int -> int array list -> (int, Smod_kern.Errno.t * string) result list

val call_batch_funcs :
  conn -> (int * int array) list -> (int, Smod_kern.Errno.t * string) result list
(** Like {!call_batch_id}, but each element names its own [(func_id,
    args)] — one batch carrying a mixed function column, the shape the
    vectorized admission path (E25) gathers into SoA lanes.  Unknown
    function ids fail their slot alone ([Error (EINVAL, _)]), exactly as
    a denied slot does. *)

val close : conn -> unit
(** Detach the session (kills the handle). *)
