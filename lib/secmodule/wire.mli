(** Fixed little-endian codecs for the kernel↔handle message-queue
    protocol and for the descriptors that cross the user/kernel boundary
    through simulated memory. *)

type request = {
  func_id : int;
  args_base : int;  (** address of arg1 on the shared stack *)
  client_sp : int;
  client_fp : int;
}

type reply = { status : int; retval : int }

val request_to_bytes : request -> bytes
val request_of_bytes : bytes -> request
val reply_to_bytes : reply -> bytes
val reply_of_bytes : bytes -> reply

val request_of_bytes_res : bytes -> (request, string) result
(** Total decoder: truncated or oversized buffers return [Error] instead
    of raising — the form kernel-side paths must use, since an escaped
    [Invalid_argument] would abort the whole simulation rather than fail
    the one call. *)

val reply_of_bytes_res : bytes -> (reply, string) result

type session_descriptor = {
  module_name : string;
  module_version : int;
  credential : bytes;  (** serialised {!Credential.t} *)
}

val descriptor_to_bytes : session_descriptor -> bytes
val descriptor_of_bytes : bytes -> session_descriptor
(** Raises [Invalid_argument] on truncation. *)

val descriptor_of_bytes_res : bytes -> (session_descriptor, string) result

type handle_info = {
  m_id : int;
  handle_pid : int;
  req_qid : int;
  rep_qid : int;
}
(** What [sys_smod_handle_info] writes back into client memory. *)

val handle_info_to_bytes : handle_info -> bytes
val handle_info_of_bytes : bytes -> handle_info
val handle_info_of_bytes_res : bytes -> (handle_info, string) result
val handle_info_size : int
