module Clock = Smod_sim.Clock
module Cost = Smod_sim.Cost_model
module Eval = Smod_keynote.Eval

type t =
  | Always_allow
  | Session_lifetime
  | Call_quota of int
  | Rate_limit of { max_calls : int; window_us : float }
  | Time_window of { not_before_us : float; not_after_us : float }
  | Keynote of {
      policy : Smod_keynote.Ast.assertion list;
      levels : string array;
      min_level : string;
      attrs : (string * string) list;
    }
  | All_of of t list

type state =
  | S_none
  | S_quota of int ref
  | S_rate of { mutable window_start : float; mutable in_window : int }
  | S_list of state list

type denial = { reason : string; policy : t }

let rec initial_state = function
  | Always_allow | Session_lifetime | Time_window _ | Keynote _ -> S_none
  | Call_quota n -> S_quota (ref n)
  | Rate_limit _ -> S_rate { window_start = 0.0; in_window = 0 }
  | All_of ps -> S_list (List.map initial_state ps)

let rec describe = function
  | Always_allow -> "always-allow"
  | Session_lifetime -> "session-lifetime"
  | Call_quota n -> Printf.sprintf "call-quota(%d)" n
  | Rate_limit { max_calls; window_us } ->
      Printf.sprintf "rate-limit(%d per %.0fus)" max_calls window_us
  | Time_window _ -> "time-window"
  | Keynote { policy; _ } -> Printf.sprintf "keynote(%d assertions)" (List.length policy)
  | All_of ps -> "all-of[" ^ String.concat "; " (List.map describe ps) ^ "]"

let deny policy reason = Error { reason; policy }

(* Cacheability for the smodd policy-decision cache (lib/pool).  A decision
   may be reused across calls only when it is a pure function of
   (credential, module, function, policy revision): no per-session mutable
   state, no clock dependence, and no condition guard that reads an action
   attribute that varies call to call. *)
let volatile_attrs = [ "calls_so_far" ]

let rec term_volatile = function
  | Smod_keynote.Ast.Attr name -> List.mem name volatile_attrs
  | Smod_keynote.Ast.Str _ | Smod_keynote.Ast.Int _ -> false

and expr_volatile = function
  | Smod_keynote.Ast.True | Smod_keynote.Ast.False -> false
  | Smod_keynote.Ast.Cmp (a, _, b) -> term_volatile a || term_volatile b
  | Smod_keynote.Ast.Not e -> expr_volatile e
  | Smod_keynote.Ast.And (a, b) | Smod_keynote.Ast.Or (a, b) ->
      expr_volatile a || expr_volatile b

let assertion_volatile (a : Smod_keynote.Ast.assertion) =
  List.exists (fun (c : Smod_keynote.Ast.clause) -> expr_volatile c.guard) a.conditions

let rec cacheable = function
  | Always_allow | Session_lifetime -> true
  | Call_quota _ | Rate_limit _ | Time_window _ -> false
  | Keynote { policy; _ } -> not (List.exists assertion_volatile policy)
  | All_of ps -> List.for_all cacheable ps

let credential_cacheable (c : Credential.t) =
  not (List.exists assertion_volatile c.Credential.assertions)

(* Observability (lib/metrics): per-call policy evaluation volume and
   outcome, matching the paper's "access control check per call" step. *)
let m_scope = Smod_metrics.scope "secmodule"
let m_policy_checks = Smod_metrics.Scope.counter m_scope "policy_checks"
let m_policy_denials = Smod_metrics.Scope.counter m_scope "policy_denials"

let rec check_inner ~clock ~now_us ~credential ~attrs policy state =
  match (policy, state) with
  | Always_allow, S_none ->
      Clock.charge clock Cost.Policy_always_allow;
      Ok ()
  | Session_lifetime, S_none ->
      (* Granted at session establishment; per-call it is free beyond the
         baseline credential check the dispatcher already performed. *)
      Clock.charge clock Cost.Policy_always_allow;
      Ok ()
  | Call_quota _, S_quota remaining ->
      Clock.charge clock Cost.Policy_counter_check;
      if !remaining > 0 then begin
        decr remaining;
        Ok ()
      end
      else deny policy "call quota exhausted"
  | Rate_limit { max_calls; window_us }, S_rate r ->
      Clock.charge clock Cost.Policy_counter_check;
      if now_us -. r.window_start > window_us then begin
        r.window_start <- now_us;
        r.in_window <- 0
      end;
      if r.in_window < max_calls then begin
        r.in_window <- r.in_window + 1;
        Ok ()
      end
      else deny policy "rate limit exceeded"
  | Time_window { not_before_us; not_after_us }, S_none ->
      Clock.charge clock Cost.Policy_counter_check;
      if now_us >= not_before_us && now_us <= not_after_us then Ok ()
      else deny policy "outside permitted time window"
  | Keynote { policy = assertions; levels; min_level; attrs = static_attrs }, S_none -> (
      let result =
        Eval.query ~policy:assertions ~credentials:credential.Credential.assertions
          ~attrs:(attrs @ static_attrs)
          ~requesters:[ credential.Credential.principal ]
          ~levels
      in
      Clock.charge_n clock Cost.Keynote_assertion_eval result.assertions_evaluated;
      let min_index =
        let rec find i =
          if i >= Array.length levels then 0 else if levels.(i) = min_level then i else find (i + 1)
        in
        find 0
      in
      match result.index >= min_index with
      | true -> Ok ()
      | false ->
          deny policy
            (Printf.sprintf "keynote compliance %S below required %S" result.level min_level))
  | All_of ps, S_list states ->
      let rec all ps states =
        match (ps, states) with
        | [], [] -> Ok ()
        | p :: ps', s :: ss' -> (
            match check_inner ~clock ~now_us ~credential ~attrs p s with
            | Ok () -> all ps' ss'
            | Error _ as e -> e)
        | _ -> deny policy "policy/state shape mismatch"
      in
      all ps states
  | _ -> deny policy "policy/state shape mismatch"

let check ~clock ~now_us ~credential ~attrs policy state =
  Smod_metrics.Counter.incr m_policy_checks;
  match check_inner ~clock ~now_us ~credential ~attrs policy state with
  | Ok () as ok -> ok
  | Error _ as e ->
      Smod_metrics.Counter.incr m_policy_denials;
      e
