module Clock = Smod_sim.Clock
module Cost = Smod_sim.Cost_model
module Eval = Smod_keynote.Eval
module Compile = Smod_keynote.Compile
module Fuse = Smod_keynote.Fuse
module Vexec = Smod_keynote.Vexec

type t =
  | Always_allow
  | Session_lifetime
  | Call_quota of int
  | Rate_limit of { max_calls : int; window_us : float }
  | Time_window of { not_before_us : float; not_after_us : float }
  | Keynote of {
      policy : Smod_keynote.Ast.assertion list;
      levels : string array;
      min_level : string;
      attrs : (string * string) list;
    }
  | All_of of t list

type state =
  | S_none
  | S_quota of int ref
  | S_rate of { mutable window_start : float; mutable in_window : int }
  | S_list of state list

type denial = { reason : string; policy : t }

let rec initial_state = function
  | Always_allow | Session_lifetime | Time_window _ | Keynote _ -> S_none
  | Call_quota n -> S_quota (ref n)
  | Rate_limit _ -> S_rate { window_start = 0.0; in_window = 0 }
  | All_of ps -> S_list (List.map initial_state ps)

let rec describe = function
  | Always_allow -> "always-allow"
  | Session_lifetime -> "session-lifetime"
  | Call_quota n -> Printf.sprintf "call-quota(%d)" n
  | Rate_limit { max_calls; window_us } ->
      Printf.sprintf "rate-limit(%d per %.0fus)" max_calls window_us
  | Time_window _ -> "time-window"
  | Keynote { policy; _ } -> Printf.sprintf "keynote(%d assertions)" (List.length policy)
  | All_of ps -> "all-of[" ^ String.concat "; " (List.map describe ps) ^ "]"

let deny policy reason = Error { reason; policy }

(* Cacheability for the smodd policy-decision cache (lib/pool).  A decision
   may be reused across calls only when it is a pure function of
   (credential, module, function, policy revision): no per-session mutable
   state, no clock dependence, and no condition guard that reads an action
   attribute that varies call to call. *)
let volatile_attrs = [ "calls_so_far" ]

(* Attributes that change from slot to slot within one batch: the called
   function, plus everything already too volatile to cache.  This is the
   [varying] set the fused planner partitions against — an opcode reading
   any of these (directly or through a value node) stays per-slot. *)
let batch_varying_attrs = "function" :: volatile_attrs

let rec term_volatile = function
  | Smod_keynote.Ast.Attr name -> List.mem name volatile_attrs
  | Smod_keynote.Ast.Str _ | Smod_keynote.Ast.Int _ -> false

and expr_volatile = function
  | Smod_keynote.Ast.True | Smod_keynote.Ast.False -> false
  | Smod_keynote.Ast.Cmp (a, _, b) -> term_volatile a || term_volatile b
  | Smod_keynote.Ast.Not e -> expr_volatile e
  | Smod_keynote.Ast.And (a, b) | Smod_keynote.Ast.Or (a, b) ->
      expr_volatile a || expr_volatile b

let assertion_volatile (a : Smod_keynote.Ast.assertion) =
  List.exists (fun (c : Smod_keynote.Ast.clause) -> expr_volatile c.guard) a.conditions

let rec cacheable = function
  | Always_allow | Session_lifetime -> true
  | Call_quota _ | Rate_limit _ | Time_window _ -> false
  | Keynote { policy; _ } -> not (List.exists assertion_volatile policy)
  | All_of ps -> List.for_all cacheable ps

let credential_cacheable (c : Credential.t) =
  not (List.exists assertion_volatile c.Credential.assertions)

(* Observability (lib/metrics): per-call policy evaluation volume and
   outcome, matching the paper's "access control check per call" step. *)
let m_scope = Smod_metrics.scope "secmodule"
let m_policy_checks = Smod_metrics.Scope.counter m_scope "policy_checks"
let m_policy_denials = Smod_metrics.Scope.counter m_scope "policy_denials"

let rec check_inner ~clock ~now_us ~credential ~attrs policy state =
  match (policy, state) with
  | Always_allow, S_none ->
      Clock.charge clock Cost.Policy_always_allow;
      Ok ()
  | Session_lifetime, S_none ->
      (* Granted at session establishment; per-call it is free beyond the
         baseline credential check the dispatcher already performed. *)
      Clock.charge clock Cost.Policy_always_allow;
      Ok ()
  | Call_quota _, S_quota remaining ->
      Clock.charge clock Cost.Policy_counter_check;
      if !remaining > 0 then begin
        decr remaining;
        Ok ()
      end
      else deny policy "call quota exhausted"
  | Rate_limit { max_calls; window_us }, S_rate r ->
      Clock.charge clock Cost.Policy_counter_check;
      if now_us -. r.window_start > window_us then begin
        r.window_start <- now_us;
        r.in_window <- 0
      end;
      if r.in_window < max_calls then begin
        r.in_window <- r.in_window + 1;
        Ok ()
      end
      else deny policy "rate limit exceeded"
  | Time_window { not_before_us; not_after_us }, S_none ->
      Clock.charge clock Cost.Policy_counter_check;
      if now_us >= not_before_us && now_us <= not_after_us then Ok ()
      else deny policy "outside permitted time window"
  | Keynote { policy = assertions; levels; min_level; attrs = static_attrs }, S_none -> (
      let result =
        Eval.query ~policy:assertions ~credentials:credential.Credential.assertions
          ~attrs:(attrs @ static_attrs)
          ~requesters:[ credential.Credential.principal ]
          ~levels
      in
      Clock.charge_n clock Cost.Keynote_assertion_eval result.assertions_evaluated;
      let min_index =
        let rec find i =
          if i >= Array.length levels then 0 else if levels.(i) = min_level then i else find (i + 1)
        in
        find 0
      in
      match result.index >= min_index with
      | true -> Ok ()
      | false ->
          deny policy
            (Printf.sprintf "keynote compliance %S below required %S" result.level min_level))
  | All_of ps, S_list states ->
      let rec all ps states =
        match (ps, states) with
        | [], [] -> Ok ()
        | p :: ps', s :: ss' -> (
            match check_inner ~clock ~now_us ~credential ~attrs p s with
            | Ok () -> all ps' ss'
            | Error _ as e -> e)
        | _ -> deny policy "policy/state shape mismatch"
      in
      all ps states
  | _ -> deny policy "policy/state shape mismatch"

let check ~clock ~now_us ~credential ~attrs policy state =
  Smod_metrics.Counter.incr m_policy_checks;
  match check_inner ~clock ~now_us ~credential ~attrs policy state with
  | Ok () as ok -> ok
  | Error _ as e ->
      Smod_metrics.Counter.incr m_policy_denials;
      e

(* ------------------------------------------------------------------ *)
(* Compiled policies                                                   *)
(* ------------------------------------------------------------------ *)

(* KeyNote arms flattened into decision programs, with the credential
   chain verified once here instead of per call.  Non-KeyNote arms keep
   their interpreted (and stateful) evaluation — they are already a single
   counter check.  A compiled policy is valid for exactly one (credential,
   policy revision, keystore generation) triple; the caches in
   [Registry]/[Smod.policy_of] and [Pool.Policy_cache] key on that. *)
type compiled =
  | C_pass of t
  | C_keynote of {
      program : Compile.t;
      plan : Fuse.t option;  (* fused lowering, built when the kernel opts in *)
      min_index : int;
      min_level : string;
      static_attrs : (string * string) list;
      policy : t;
    }
  | C_deny of { reason : string; policy : t }
  | C_all of compiled list * t

let m_policy_compiles = Smod_metrics.Scope.counter m_scope "policy_compiles"
let m_policy_compile_denials = Smod_metrics.Scope.counter m_scope "policy_compile_denials"

let compile ?(fuse = false) ?origin_env ~clock ~keystore ~credential policy =
  Smod_metrics.Counter.incr m_policy_compiles;
  (* Hoisted credential-chain verification: one signature check per
     credential assertion now, none per call. *)
  Clock.charge_n clock Cost.Cred_check
    (max 1 (List.length credential.Credential.assertions));
  let verified = Credential.verify_signatures keystore credential in
  let rec arm p =
    match p with
    | Keynote { policy = assertions; levels; min_level; attrs = static_attrs } ->
        if not verified then begin
          Smod_metrics.Counter.incr m_policy_compile_denials;
          C_deny { reason = "credential signature verification failed"; policy = p }
        end
        else begin
          Clock.charge_n clock Cost.Policy_compile_assertion
            (List.length assertions + List.length credential.Credential.assertions);
          match
            Compile.compile ?origin:origin_env ~policy:assertions
              ~credentials:credential.Credential.assertions
              ~requesters:[ credential.Credential.principal ]
              ~levels ()
          with
          | Ok program ->
              let min_index =
                let rec find i =
                  if i >= Array.length levels then 0
                  else if levels.(i) = min_level then i
                  else find (i + 1)
                in
                find 0
              in
              let plan =
                if fuse then Some (Fuse.plan program ~varying:batch_varying_attrs)
                else None
              in
              C_keynote { program; plan; min_index; min_level; static_attrs; policy = p }
          | Error reason ->
              Smod_metrics.Counter.incr m_policy_compile_denials;
              C_deny { reason; policy = p }
        end
    | All_of ps -> C_all (List.map arm ps, p)
    | p -> C_pass p
  in
  arm policy

let rec check_compiled_inner ~clock ~now_us ~credential ~attrs compiled state =
  match (compiled, state) with
  | C_pass p, s -> check_inner ~clock ~now_us ~credential ~attrs p s
  | C_keynote { program; min_index; min_level; static_attrs; policy; plan = _ }, S_none -> (
      let outcome = Compile.run program ~attrs:(attrs @ static_attrs) in
      Clock.charge_n clock Cost.Policy_compiled_op outcome.Compile.ops;
      match outcome.Compile.index >= min_index with
      | true -> Ok ()
      | false ->
          deny policy
            (Printf.sprintf "keynote compliance %S below required %S"
               outcome.Compile.level min_level))
  | C_deny { reason; policy }, _ ->
      Clock.charge clock Cost.Policy_compiled_op;
      deny policy reason
  | C_all (cs, policy), S_list states ->
      let rec all cs states =
        match (cs, states) with
        | [], [] -> Ok ()
        | c :: cs', s :: ss' -> (
            match check_compiled_inner ~clock ~now_us ~credential ~attrs c s with
            | Ok () -> all cs' ss'
            | Error _ as e -> e)
        | _ -> deny policy "policy/state shape mismatch"
      in
      all cs states
  | C_keynote { policy; _ }, _ | C_all (_, policy), _ ->
      deny policy "policy/state shape mismatch"

let check_compiled ~clock ~now_us ~credential ~attrs compiled state =
  Smod_metrics.Counter.incr m_policy_checks;
  match check_compiled_inner ~clock ~now_us ~credential ~attrs compiled state with
  | Ok () as ok -> ok
  | Error _ as e ->
      Smod_metrics.Counter.incr m_policy_denials;
      e

(* ------------------------------------------------------------------ *)
(* Fused batch checking                                                 *)
(* ------------------------------------------------------------------ *)

(* A fused context is a compiled tree armed for one batch: every planned
   KeyNote arm carries the snapshot its batch-invariant prefix produced.
   Stateful arms ([C_pass] quotas, rate limits) keep their per-slot
   interpreted evaluation — batching must not change when a quota
   decrements.  Arms compiled without a plan (fusion off at compile time)
   fall back to per-slot [Compile.run], so a context is always total. *)
type fused_ctx =
  | FC_pass of t
  | FC_keynote of {
      plan : Fuse.t;
      snapshot : Fuse.snapshot;
      min_index : int;
      min_level : string;
      static_attrs : (string * string) list;
      policy : t;
    }
  | FC_slow of compiled  (* no plan: per-slot compiled execution *)
  | FC_deny of { reason : string; policy : t }
  | FC_all of fused_ctx list * t

let rec fusible = function
  | C_keynote { plan = Some _; _ } -> true
  | C_all (cs, _) -> List.exists fusible cs
  | C_pass _ | C_keynote { plan = None; _ } | C_deny _ -> false

(* Arm the compiled tree for a batch: run each planned arm's invariant
   prefix once, charging the amortized setup ([Policy_fused_setup] plus
   the prefix opcodes) to the caller — the per-slot loop then pays only
   residue opcodes.  [attrs] are the batch-invariant attributes (module,
   phase, origin pairs); no prefix opcode reads a varying attribute. *)
let begin_fused ~clock ~origin ~attrs compiled =
  let rec arm = function
    | C_pass p -> FC_pass p
    | C_deny { reason; policy } -> FC_deny { reason; policy }
    | C_keynote { plan = None; _ } as c -> FC_slow c
    | C_keynote { plan = Some plan; min_index; min_level; static_attrs; policy; _ } ->
        Clock.charge clock Cost.Policy_fused_setup;
        let snapshot = Fuse.begin_batch plan ~origin ~attrs:(attrs @ static_attrs) in
        Clock.charge_n clock Cost.Policy_compiled_op snapshot.Fuse.s_setup_ops;
        FC_keynote { plan; snapshot; min_index; min_level; static_attrs; policy }
    | C_all (cs, p) -> FC_all (List.map arm cs, p)
  in
  arm compiled

let rec check_fused_inner ~clock ~now_us ~credential ~origin ~attrs ctx state =
  match (ctx, state) with
  | FC_pass p, s -> check_inner ~clock ~now_us ~credential ~attrs p s
  | FC_slow c, s -> check_compiled_inner ~clock ~now_us ~credential ~attrs c s
  | FC_keynote { plan; snapshot; min_index; min_level; static_attrs; policy }, S_none -> (
      let outcome =
        Fuse.run_slot plan snapshot ~origin ~attrs:(attrs @ static_attrs)
      in
      Clock.charge_n clock Cost.Policy_compiled_op outcome.Compile.ops;
      match outcome.Compile.index >= min_index with
      | true -> Ok ()
      | false ->
          deny policy
            (Printf.sprintf "keynote compliance %S below required %S"
               outcome.Compile.level min_level))
  | FC_deny { reason; policy }, _ ->
      Clock.charge clock Cost.Policy_compiled_op;
      deny policy reason
  | FC_all (cs, policy), S_list states ->
      let rec all cs states =
        match (cs, states) with
        | [], [] -> Ok ()
        | c :: cs', s :: ss' -> (
            match check_fused_inner ~clock ~now_us ~credential ~origin ~attrs c s with
            | Ok () -> all cs' ss'
            | Error _ as e -> e)
        | _ -> deny policy "policy/state shape mismatch"
      in
      all cs states
  | FC_keynote { policy; _ }, _ | FC_all (_, policy), _ ->
      deny policy "policy/state shape mismatch"

let check_fused ~clock ~now_us ~credential ~origin ~attrs ctx state =
  Smod_metrics.Counter.incr m_policy_checks;
  match check_fused_inner ~clock ~now_us ~credential ~origin ~attrs ctx state with
  | Ok () as ok -> ok
  | Error _ as e ->
      Smod_metrics.Counter.incr m_policy_denials;
      e

(* ------------------------------------------------------------------ *)
(* Vectorized (batch-major) checking — E25                              *)
(* ------------------------------------------------------------------ *)

(* Arm-major evaluation of a whole batch: each arm of the fused tree is
   evaluated over all lanes before the next arm runs, with a shared
   alive mask so an arm never touches a lane an earlier arm already
   denied.  KeyNote arms run batch-major through [Vexec]; stateful arms
   (quotas) are delegated per lane *in lane order*, which reproduces the
   slot-major path's counter semantics exactly: a quota verdict for lane
   k depends only on how many earlier lanes reached that arm, and the
   alive mask is precisely "reached".

   Eligibility is conservative and decided per batch from the armed
   context:

   - a residue that reads a volatile attribute ([calls_so_far]) has a
     lane-order data dependency — lane k's value depends on earlier
     lanes' overall verdicts — so it stays slot-major;
   - clock-dependent arms ([Rate_limit], [Time_window]) are excluded
     because arm-major charge reordering shifts [now_us] at evaluation
     relative to the slot-major path;
   - unplanned arms ([FC_slow]) have no residue to vectorize.

   An ineligible tree simply keeps the fused slot-major path — the
   dispatcher falls back wholesale, never per arm. *)

type vector_lane = { vl_origin : Fuse.origin; vl_attrs : (string * string) list }

let rec vector_eligible = function
  | FC_pass (Always_allow | Session_lifetime | Call_quota _) -> true
  | FC_pass _ -> false
  | FC_keynote { plan; _ } -> not (Fuse.residue_reads plan volatile_attrs)
  | FC_slow _ -> false
  | FC_deny _ -> true
  | FC_all (cs, _) -> List.for_all vector_eligible cs

let check_vector ~clock ~now_us ~credential ~width ~(lanes : vector_lane array) ctx state =
  let n = Array.length lanes in
  let alive = Array.make n true in
  let results : (unit, denial) result array = Array.make n (Ok ()) in
  let kill k d =
    alive.(k) <- false;
    results.(k) <- Error d
  in
  let live () = Array.fold_left (fun a b -> if b then a + 1 else a) 0 alive in
  let rec arm ctx state =
    match (ctx, state) with
    | FC_pass p, s ->
        Array.iteri
          (fun k lane ->
            if alive.(k) then
              match check_inner ~clock ~now_us ~credential ~attrs:lane.vl_attrs p s with
              | Ok () -> ()
              | Error d -> kill k d)
          lanes
    | FC_slow c, s ->
        (* Unreachable under [vector_eligible], but stay total. *)
        Array.iteri
          (fun k lane ->
            if alive.(k) then
              match
                check_compiled_inner ~clock ~now_us ~credential ~attrs:lane.vl_attrs c s
              with
              | Ok () -> ()
              | Error d -> kill k d)
          lanes
    | FC_deny { reason; policy }, _ ->
        let l = live () in
        if l > 0 then begin
          Clock.charge_n clock Cost.Policy_vector_op ((l + width - 1) / width);
          for k = 0 to n - 1 do
            if alive.(k) then kill k { reason; policy }
          done
        end
    | FC_keynote { plan; snapshot; min_index; min_level; static_attrs; policy }, S_none ->
        (* Lane compaction: only still-alive lanes enter the vector walk,
           so an early-denied lane drops out of the ceil(L/W) charge. *)
        let packed_idx =
          let l = ref [] in
          for k = n - 1 downto 0 do
            if alive.(k) then l := k :: !l
          done;
          Array.of_list !l
        in
        let packed = Array.map (fun k -> lanes.(k)) packed_idx in
        if Array.length packed > 0 then begin
          let vlanes =
            Array.map
              (fun (l : vector_lane) ->
                Vexec.{ l_origin = l.vl_origin; l_attrs = l.vl_attrs @ static_attrs })
              packed
          in
          let res = Vexec.run_residue plan snapshot ~width ~lanes:vlanes in
          Clock.charge_n clock Cost.Policy_vector_op res.Vexec.vr_units;
          Array.iteri
            (fun j k ->
              let index = res.Vexec.vr_indices.(j) in
              if index < min_index then
                kill k
                  {
                    reason =
                      Printf.sprintf "keynote compliance %S below required %S"
                        (Vexec.level_of plan index) min_level;
                    policy;
                  })
            packed_idx
        end
    | FC_all (cs, policy), S_list states ->
        let rec all cs states =
          match (cs, states) with
          | [], [] -> ()
          | c :: cs', s :: ss' ->
              arm c s;
              all cs' ss'
          | _ ->
              for k = 0 to n - 1 do
                if alive.(k) then kill k { reason = "policy/state shape mismatch"; policy }
              done
        in
        all cs states
    | FC_keynote { policy; _ }, _ | FC_all (_, policy), _ ->
        for k = 0 to n - 1 do
          if alive.(k) then kill k { reason = "policy/state shape mismatch"; policy }
        done
  in
  arm ctx state;
  (* Metrics parity with the slot-major paths: one check per lane, one
     denial per denied lane. *)
  Smod_metrics.Counter.add m_policy_checks n;
  Array.iter
    (function Error _ -> Smod_metrics.Counter.incr m_policy_denials | Ok () -> ())
    results;
  results

type compiled_stats = {
  programs : int;
  opcodes : int;
  value_nodes : int;
  opcode_counts : (string * int) list;
  denied : string option;
  origin_guarded : bool;
}

(* Does any Test opcode compare an origin_* attribute?  Purely static
   introspection over the already-compiled program — the audit's
   origin-coverage component reads this instead of re-walking the policy
   AST. *)
let program_origin_guarded program =
  let is_origin = function
    | Compile.O_attr n -> List.mem n Compile.origin_attrs
    | Compile.O_str _ -> false
  in
  Array.exists
    (function
      | Compile.Test (a, _, b) -> is_origin a || is_origin b
      | _ -> false)
    (Compile.instrs program)

let compiled_stats compiled =
  let merge counts extra =
    List.fold_left
      (fun acc (m, n) ->
        let prev = Option.value ~default:0 (List.assoc_opt m acc) in
        (m, prev + n) :: List.remove_assoc m acc)
      counts extra
  in
  let rec fold acc = function
    | C_pass _ -> acc
    | C_keynote { program; _ } ->
        {
          acc with
          programs = acc.programs + 1;
          opcodes = acc.opcodes + Compile.length program;
          value_nodes = acc.value_nodes + Compile.node_count program;
          opcode_counts = merge acc.opcode_counts (Compile.op_counts program);
          origin_guarded = acc.origin_guarded || program_origin_guarded program;
        }
    | C_deny { reason; _ } ->
        if acc.denied = None then { acc with denied = Some reason } else acc
    | C_all (cs, _) -> List.fold_left fold acc cs
  in
  let acc =
    fold
      {
        programs = 0;
        opcodes = 0;
        value_nodes = 0;
        opcode_counts = [];
        denied = None;
        origin_guarded = false;
      }
      compiled
  in
  {
    acc with
    opcode_counts =
      List.sort
        (fun (ma, na) (mb, nb) -> if na <> nb then compare nb na else compare ma mb)
        acc.opcode_counts;
  }

(* Merged fusion statistics over every planned KeyNote arm; [None] when
   nothing in the tree was compiled with fusion on. *)
let fusion_stats compiled =
  let merge_assoc a b =
    List.fold_left
      (fun acc (m, n) ->
        let prev = Option.value ~default:0 (List.assoc_opt m acc) in
        (m, prev + n) :: List.remove_assoc m acc)
      a b
  in
  let add (a : Fuse.stats) (b : Fuse.stats) =
    Fuse.
      {
        segments = a.segments + b.segments;
        invariant_segments = a.invariant_segments + b.invariant_segments;
        total_fops = a.total_fops + b.total_fops;
        invariant_fops = a.invariant_fops + b.invariant_fops;
        superops = merge_assoc a.superops b.superops;
        origin_fops = a.origin_fops + b.origin_fops;
      }
  in
  let rec fold acc = function
    | C_keynote { plan = Some plan; _ } -> (
        let s = Fuse.stats plan in
        match acc with None -> Some s | Some a -> Some (add a s))
    | C_all (cs, _) -> List.fold_left fold acc cs
    | C_pass _ | C_keynote { plan = None; _ } | C_deny _ -> acc
  in
  match fold None compiled with
  | None -> None
  | Some s ->
      Some
        Fuse.
          {
            s with
            superops =
              List.sort
                (fun (ma, na) (mb, nb) ->
                  if na <> nb then compare nb na else compare ma mb)
                s.superops;
          }
