module Ast = Smod_keynote.Ast
module Parse = Smod_keynote.Parse
module Keystore = Smod_keynote.Keystore

type t = { principal : string; assertions : Ast.assertion list }

exception Malformed of string

let make ~principal ?(assertions = []) () = { principal; assertions }

let assertion_to_text (a : Ast.assertion) =
  let body = Ast.canonical_body a in
  match a.signature with
  | Some s -> body ^ Printf.sprintf "signature: %S\n" s
  | None -> body

let to_bytes t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf t.principal;
  Buffer.add_char buf '\n';
  List.iter
    (fun a ->
      Buffer.add_string buf (assertion_to_text a);
      Buffer.add_char buf '\n')
    t.assertions;
  Buffer.to_bytes buf

let of_bytes data =
  let text = Bytes.to_string data in
  match String.index_opt text '\n' with
  | None -> raise (Malformed "credential: missing principal line")
  | Some i -> (
      let principal = String.sub text 0 i in
      if principal = "" then raise (Malformed "credential: empty principal");
      let rest = String.sub text (i + 1) (String.length text - i - 1) in
      match Parse.assertions_of_string_res rest with
      | Ok assertions -> { principal; assertions }
      | Error d ->
          raise (Malformed (Format.asprintf "credential assertion %a" Parse.pp_diagnostic d)))

let verify_signatures keystore t =
  List.for_all (fun a -> Keystore.verify keystore a) t.assertions
