(** Per-module access policies.

    The paper implements only the "always allowed" policy and predicts
    that richer policies cost time in proportion to their complexity (§5).
    This module supplies that ladder: from the free [Always_allow] through
    counters up to full KeyNote compliance queries, so the prediction can
    be measured (bench E9). *)

type t =
  | Always_allow
  | Session_lifetime
      (** the paper's default: access for the lifetime of the client *)
  | Call_quota of int  (** at most n calls per session *)
  | Rate_limit of { max_calls : int; window_us : float }
  | Time_window of { not_before_us : float; not_after_us : float }
  | Keynote of {
      policy : Smod_keynote.Ast.assertion list;
      levels : string array;
      min_level : string;
      attrs : (string * string) list;  (** static action attributes *)
    }
  | All_of of t list

type state
(** Mutable per-session evaluation state (quota counters, rate windows). *)

type denial = {
  reason : string;
  policy : t;
}

val initial_state : t -> state

val check :
  clock:Smod_sim.Clock.t ->
  now_us:float ->
  credential:Credential.t ->
  attrs:(string * string) list ->
  t ->
  state ->
  (unit, denial) result
(** Evaluate one access request.  Charges the cost model per the policy's
    complexity (counter checks, KeyNote assertion evaluations).  Updates
    [state] (consumes quota, records the call for rate limiting) only on
    success. *)

type compiled
(** A policy compiled for one (credential, policy revision, keystore
    generation) triple: KeyNote arms flattened into decision programs
    ([Smod_keynote.Compile]) with the credential's signature chain
    verified once at compile time; counter-style arms keep their
    interpreted per-call check.  Kernel-side only — a compiled policy is
    never serialized into client-shared memory. *)

val compile :
  ?fuse:bool ->
  ?origin_env:Smod_keynote.Compile.origin_env ->
  clock:Smod_sim.Clock.t ->
  keystore:Smod_keynote.Keystore.t ->
  credential:Credential.t ->
  t ->
  compiled
(** Charges {!Smod_sim.Cost_model.Cred_check} per credential assertion
    (the hoisted chain verification) and
    {!Smod_sim.Cost_model.Policy_compile_assertion} per assertion
    flattened.  Never raises: a failed signature chain or an
    uncompilable KeyNote arm (unknown compliance level — or, when
    [origin_env] is supplied, an origin predicate naming an unknown
    module, ring, or transport) yields a policy that denies every call
    with the reason recorded — EACCES at the dispatch layer, not a
    crash.  [fuse] additionally lowers each KeyNote arm into a fused
    batch plan ({!Smod_keynote.Fuse}) partitioned against
    {!batch_varying_attrs}; planning is folded into the compile charge. *)

val check_compiled :
  clock:Smod_sim.Clock.t ->
  now_us:float ->
  credential:Credential.t ->
  attrs:(string * string) list ->
  compiled ->
  state ->
  (unit, denial) result
(** The compiled counterpart of {!check}: same verdicts over the same
    [state] (asserted by test/test_compile.ml), but KeyNote arms charge
    {!Smod_sim.Cost_model.Policy_compiled_op} per executed opcode instead
    of 420-cycle assertion evaluations, and no per-call credential
    revalidation is needed (the chain was pre-verified). *)

type fused_ctx
(** A compiled policy armed for one batch: every fused KeyNote arm
    carries the node snapshot its batch-invariant prefix produced.  Valid
    exactly as long as the compiled policy it was built from — the
    dispatcher caches it under the same (policy revision, keystore
    generation) key, further split by transport because the origin
    differs per path. *)

val fusible : compiled -> bool
(** True when at least one KeyNote arm carries a fused plan (i.e. was
    compiled with [~fuse:true]). *)

val begin_fused :
  clock:Smod_sim.Clock.t ->
  origin:Smod_keynote.Fuse.origin ->
  attrs:(string * string) list ->
  compiled ->
  fused_ctx
(** Run every fused arm's batch-invariant prefix once, charging
    {!Smod_sim.Cost_model.Policy_fused_setup} plus one
    {!Smod_sim.Cost_model.Policy_compiled_op} per prefix opcode.  [attrs]
    are the batch-invariant attributes (module, phase, origin pairs). *)

val check_fused :
  clock:Smod_sim.Clock.t ->
  now_us:float ->
  credential:Credential.t ->
  origin:Smod_keynote.Fuse.origin ->
  attrs:(string * string) list ->
  fused_ctx ->
  state ->
  (unit, denial) result
(** The per-slot residue check: same verdicts over the same [state] as
    {!check_compiled} and {!check} (asserted by the fused differential
    suite in test/test_compile.ml), but fused KeyNote arms charge only
    residue opcodes.  Stateful arms (quotas, rate limits) still evaluate
    per slot — batching never changes when a counter moves. *)

type vector_lane = {
  vl_origin : Smod_keynote.Fuse.origin;
  vl_attrs : (string * string) list;
      (** the lane's full per-slot attribute list, function and origin
          pairs included — exactly what the slot-major path would pass *)
}

val vector_eligible : fused_ctx -> bool
(** True when the armed tree can be evaluated batch-major with verdicts,
    state transitions, and total charge order all matching the
    slot-major path: every KeyNote arm is planned and its residue reads
    no volatile attribute (a [calls_so_far] read makes lane k's input
    depend on earlier lanes' verdicts), and no arm is clock-dependent
    ([Rate_limit]/[Time_window] — arm-major evaluation would shift
    [now_us] at their evaluation points).  Quota arms are fine: the
    alive-mask discipline reproduces their counter order exactly. *)

val check_vector :
  clock:Smod_sim.Clock.t ->
  now_us:float ->
  credential:Credential.t ->
  width:int ->
  lanes:vector_lane array ->
  fused_ctx ->
  state ->
  (unit, denial) result array
(** Evaluate one whole batch arm-major (E25): each arm of the fused tree
    runs over all still-alive lanes before the next arm, KeyNote arms
    batch-major through {!Smod_keynote.Vexec} (charging
    {!Smod_sim.Cost_model.Policy_vector_op} per [ceil(live/width)]-unit
    pass, compacted as lanes are denied), stateful quota arms per lane
    in lane order.  Returns one verdict per lane, positionally: the same
    verdict, against the same [state], that [check_fused] would return
    slot-major — asserted by the four-way differential in
    test/test_compile.ml.  The caller is responsible for only invoking
    this on {!vector_eligible} trees (it stays total regardless). *)

type compiled_stats = {
  programs : int;  (** KeyNote arms compiled to decision programs *)
  opcodes : int;  (** total static program size *)
  value_nodes : int;
  opcode_counts : (string * int) list;  (** by mnemonic, most frequent first *)
  denied : string option;
      (** when the compiled policy is a deny-all stub, why *)
  origin_guarded : bool;
      (** some Test opcode compares an [origin_*] attribute — the policy
          discriminates on call provenance.  Static introspection over
          the compiled programs; consumed by the audit's origin-coverage
          component. *)
}

val compiled_stats : compiled -> compiled_stats
(** Introspection for [smodctl policy status]. *)

val fusion_stats : compiled -> Smod_keynote.Fuse.stats option
(** Merged fusion statistics over every planned KeyNote arm — superop
    mix, batch-invariant prefix fraction inputs — or [None] when the
    policy was compiled without fusion. *)

val batch_varying_attrs : string list
(** Action attributes that differ slot to slot within one batch
    (["function"] plus the volatile attributes) — the partition the
    fused planner hoists against. *)

val cacheable : t -> bool
(** True when a decision under this policy is a pure function of
    (credential, module, function, policy revision) — safe for the smodd
    policy-decision cache (lib/pool).  Stateful policies (quotas, rate
    limits), clock-dependent ones (time windows) and KeyNote policies whose
    condition guards read per-call action attributes ([calls_so_far]) are
    not cacheable. *)

val credential_cacheable : Credential.t -> bool
(** Same volatility scan over the credential's own assertions: delegated
    conditions can also reference per-call attributes. *)

val describe : t -> string
