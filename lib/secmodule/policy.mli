(** Per-module access policies.

    The paper implements only the "always allowed" policy and predicts
    that richer policies cost time in proportion to their complexity (§5).
    This module supplies that ladder: from the free [Always_allow] through
    counters up to full KeyNote compliance queries, so the prediction can
    be measured (bench E9). *)

type t =
  | Always_allow
  | Session_lifetime
      (** the paper's default: access for the lifetime of the client *)
  | Call_quota of int  (** at most n calls per session *)
  | Rate_limit of { max_calls : int; window_us : float }
  | Time_window of { not_before_us : float; not_after_us : float }
  | Keynote of {
      policy : Smod_keynote.Ast.assertion list;
      levels : string array;
      min_level : string;
      attrs : (string * string) list;  (** static action attributes *)
    }
  | All_of of t list

type state
(** Mutable per-session evaluation state (quota counters, rate windows). *)

type denial = {
  reason : string;
  policy : t;
}

val initial_state : t -> state

val check :
  clock:Smod_sim.Clock.t ->
  now_us:float ->
  credential:Credential.t ->
  attrs:(string * string) list ->
  t ->
  state ->
  (unit, denial) result
(** Evaluate one access request.  Charges the cost model per the policy's
    complexity (counter checks, KeyNote assertion evaluations).  Updates
    [state] (consumes quota, records the call for rate limiting) only on
    success. *)

val cacheable : t -> bool
(** True when a decision under this policy is a pure function of
    (credential, module, function, policy revision) — safe for the smodd
    policy-decision cache (lib/pool).  Stateful policies (quotas, rate
    limits), clock-dependent ones (time windows) and KeyNote policies whose
    condition guards read per-call action attributes ([calls_so_far]) are
    not cacheable. *)

val credential_cacheable : Credential.t -> bool
(** Same volatility scan over the credential's own assertions: delegated
    conditions can also reference per-call attributes. *)

val describe : t -> string
