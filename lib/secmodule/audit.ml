(* smodctl audit — a least-privilege posture score per installed module,
   derived entirely from introspection the subsystem already exposes
   (registry entries, compile status, live sessions, metric counters,
   systrace attachments).  No new instrumentation is charged to the
   dispatch path: the audit is a read-only scan, so the simulated
   timings the baselines measured are untouched (see DESIGN.md §10).

   The score is 0..100, higher = tighter.  Five weighted components:

   - policy breadth (0.40): how much the access policy can actually
     refuse — Always_allow scores 0, counter policies the middle,
     KeyNote climbs with assertion count, All_of takes its strongest arm.
   - grant usage (0.30): fraction of granted functions ever dispatched
     (allowed or denied).  A module exporting six functions of which
     clients touch one is carrying five unused grants.
   - systrace coverage (0.15): fraction of the module's live handle
     processes running under a syscall filter, default-deny counting
     double what default-permit does.
   - enforcement evidence (0.10): has the policy ever said no (denial
     ratio), and are decisions served from the compiled/decision caches.
   - origin coverage (0.05): modules reachable from ring 3 whose
     policies never test an origin_* attribute are flagged — any user
     process holding a credential is then indistinguishable from a
     trusted inner-ring caller.  Read off the compiled programs'
     Test operands (Policy.compiled_stats.origin_guarded), nothing new
     on the dispatch path.

   An over-privileged module (broad grants, Always_allow, no filter)
   scores strictly below a tight one on every component — the property
   test/test_audit.ml pins. *)

module Smof = Smod_modfmt.Smof
module Json = Smod_util.Json
module Table = Smod_util.Table
module Systrace = Smod_systrace.Systrace

type component = {
  c_name : string;
  c_weight : float;
  c_score : float;  (* 0..1, higher = tighter *)
  c_detail : string;
}

type report = {
  a_m_id : int;
  a_module : string;
  a_policy : string;  (* Policy.describe of the module's policy *)
  a_score : float;  (* 0..100, higher = tighter *)
  a_components : component list;
  a_granted : string list;  (* exported functions, funcID order *)
  a_dispatched : string list;  (* functions with any dispatch evidence *)
  a_unused : string list;  (* granted but never dispatched *)
  a_calls : int;  (* allowed dispatches, from secmodule.func_calls.* *)
  a_denied : int;  (* denied dispatches, from secmodule.func_denied.* *)
}

(* ------------------------------------------------------------------ *)
(* Components                                                          *)
(* ------------------------------------------------------------------ *)

(* How much of the request space the policy can refuse, 0..1.  The
   ladder mirrors bench E9's complexity ordering; All_of is as tight as
   its tightest arm (every arm must agree to allow). *)
let rec policy_tightness = function
  | Policy.Always_allow -> 0.0
  | Policy.Session_lifetime -> 0.15
  | Policy.Time_window _ -> 0.5
  | Policy.Call_quota _ | Policy.Rate_limit _ -> 0.55
  | Policy.Keynote { policy; _ } ->
      0.6 +. Float.min 0.3 (0.05 *. float_of_int (List.length policy))
  | Policy.All_of arms ->
      List.fold_left (fun acc p -> Float.max acc (policy_tightness p)) 0.0 arms

let breadth_component entry compile_status =
  let policy = entry.Registry.policy in
  let opcode_note =
    match compile_status with
    | Some { Smod.cs_stats = Some (st : Policy.compiled_stats); _ } ->
        Printf.sprintf ", compiled: %d program(s), %d opcode(s)%s" st.Policy.programs
          st.Policy.opcodes
          (match st.Policy.opcode_counts with
          | (m, n) :: _ -> Printf.sprintf ", top op %s x%d" m n
          | [] -> "")
    | _ -> ""
  in
  {
    c_name = "policy breadth";
    c_weight = 0.40;
    c_score = policy_tightness policy;
    c_detail = Policy.describe policy ^ opcode_note;
  }

(* Per-function dispatch evidence from the metric registry: the dynamic
   counters Smod.count_func maintains, scanned by prefix. *)
let func_counts ?registry ~kind mod_name =
  let prefix = "secmodule." ^ kind ^ "." ^ mod_name ^ "." in
  let plen = String.length prefix in
  Smod_metrics.counters_with_prefix ?registry prefix
  |> List.map (fun (name, v) -> (String.sub name plen (String.length name - plen), v))

let usage_component ?registry entry =
  let mod_name = entry.Registry.image.Smof.mod_name in
  let called = func_counts ?registry ~kind:"func_calls" mod_name in
  let denied = func_counts ?registry ~kind:"func_denied" mod_name in
  let granted =
    Array.to_list (Array.map (fun s -> s.Smof.sym_name) entry.Registry.functions)
  in
  let touched f =
    let hit l = match List.assoc_opt f l with Some n -> n > 0 | None -> false in
    hit called || hit denied
  in
  let dispatched = List.filter touched granted in
  let unused = List.filter (fun f -> not (touched f)) granted in
  let calls = List.fold_left (fun a (_, n) -> a + n) 0 called in
  let denials = List.fold_left (fun a (_, n) -> a + n) 0 denied in
  let score =
    match granted with
    | [] -> 1.0  (* nothing granted = nothing over-granted *)
    | _ -> float_of_int (List.length dispatched) /. float_of_int (List.length granted)
  in
  let c =
    {
      c_name = "grant usage";
      c_weight = 0.30;
      c_score = score;
      c_detail =
        Printf.sprintf "%d/%d granted function(s) dispatched%s"
          (List.length dispatched) (List.length granted)
          (match unused with
          | [] -> ""
          | fs -> "; unused: " ^ String.concat ", " fs);
    }
  in
  (c, granted, dispatched, unused, calls, denials)

let systrace_component ?systrace sessions =
  let score, detail =
    match (systrace, sessions) with
    | None, _ -> (0.0, "systrace not installed")
    | Some _, [] -> (0.0, "no live handle to inspect")
    | Some st, sessions ->
        let weight_of (s : Smod.session) =
          match Systrace.attached_policy st ~pid:s.Smod.handle_pid with
          | None -> 0.0
          | Some p -> (
              match p.Systrace.default with
              | Systrace.Deny _ -> 1.0
              | Systrace.Permit -> 0.5)
        in
        let n = List.length sessions in
        let covered = List.filter (fun s -> weight_of s > 0.0) sessions in
        let sum = List.fold_left (fun a s -> a +. weight_of s) 0.0 sessions in
        ( sum /. float_of_int n,
          Printf.sprintf "%d/%d live handle(s) filtered" (List.length covered) n )
  in
  { c_name = "systrace coverage"; c_weight = 0.15; c_score = score; c_detail = detail }

let evidence_component ?registry entry ~calls ~denied =
  let deny_signal =
    if calls + denied = 0 then 0.0
    else Float.min 1.0 (10.0 *. float_of_int denied /. float_of_int (calls + denied))
  in
  let hits, misses =
    if entry.Registry.compile_hits + entry.Registry.compile_misses > 0 then
      (entry.Registry.compile_hits, entry.Registry.compile_misses)
    else
      let v name =
        Option.value ~default:0 (Smod_metrics.counter_value ?registry name)
      in
      (v "policy_cache.hits" + v "policy_cache.compiled_hits",
       v "policy_cache.misses" + v "policy_cache.compiled_misses")
  in
  let cache_rate =
    if hits + misses = 0 then 0.5  (* no cache traffic: neutral, not damning *)
    else float_of_int hits /. float_of_int (hits + misses)
  in
  {
    c_name = "enforcement evidence";
    c_weight = 0.10;
    c_score = (0.7 *. deny_signal) +. (0.3 *. cache_rate);
    c_detail =
      Printf.sprintf "%d denied / %d dispatched; cache %d hit(s), %d miss(es)" denied
        (calls + denied) hits misses;
  }

(* Reachable-from-ring-3 x origin-unguarded.  Reachability is what the
   live proc table shows: a session whose client runs at ring 3, or no
   session at all (nothing stops a ring-3 attach, so an idle module is
   conservatively reachable).  Guardedness comes from the compiled
   programs only — no compiled program yet means unknown, scored
   neutral like the evidence component's no-traffic case. *)
let origin_component machine compile_status sessions =
  let ring_of (s : Smod.session) =
    match Smod_kern.Machine.proc machine s.Smod.client_pid with
    | Some p -> p.Smod_kern.Proc.ring
    | None -> 3
  in
  let reachable = sessions = [] || List.exists (fun s -> ring_of s = 3) sessions in
  let guarded =
    match compile_status with
    | Some { Smod.cs_stats = Some (st : Policy.compiled_stats); _ } ->
        Some st.Policy.origin_guarded
    | _ -> None
  in
  let score, detail =
    match (reachable, guarded) with
    | false, _ -> (1.0, "inner-ring clients only; origin exposure moot")
    | true, Some true -> (1.0, "ring-3 reachable, policy tests origin_* attributes")
    | true, Some false -> (0.0, "ring-3 reachable, compiled policy carries no origin_* guard")
    | true, None -> (0.5, "ring-3 reachable, no compiled program to introspect")
  in
  { c_name = "origin coverage"; c_weight = 0.05; c_score = score; c_detail = detail }

(* ------------------------------------------------------------------ *)
(* The report                                                          *)
(* ------------------------------------------------------------------ *)

let score ?registry ?systrace (t : Smod.t) =
  let compile_status = Smod.policy_compile_status t in
  Registry.entries (Smod.registry t)
  |> List.map (fun (entry : Registry.entry) ->
         let sessions =
           List.filter
             (fun (s : Smod.session) -> s.Smod.m_id = entry.Registry.m_id)
             (Smod.active_sessions t)
         in
         let cs =
           List.find_opt
             (fun (c : Smod.compile_status) -> c.Smod.cs_m_id = entry.Registry.m_id)
             compile_status
         in
         let usage, granted, dispatched, unused, calls, denied =
           usage_component ?registry entry
         in
         let components =
           [
             breadth_component entry cs;
             usage;
             systrace_component ?systrace sessions;
             evidence_component ?registry entry ~calls ~denied;
             origin_component (Smod.machine t) cs sessions;
           ]
         in
         let total =
           100.0
           *. List.fold_left (fun a c -> a +. (c.c_weight *. c.c_score)) 0.0 components
         in
         {
           a_m_id = entry.Registry.m_id;
           a_module = entry.Registry.image.Smof.mod_name;
           a_policy = Policy.describe entry.Registry.policy;
           a_score = total;
           a_components = components;
           a_granted = granted;
           a_dispatched = dispatched;
           a_unused = unused;
           a_calls = calls;
           a_denied = denied;
         })
  |> List.sort (fun a b -> compare a.a_m_id b.a_m_id)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let render reports =
  let buf = Buffer.create 4096 in
  let t =
    Table.create
      ~aligns:[ Table.Right; Table.Left; Table.Left; Table.Right; Table.Right; Table.Right ]
      [ "m_id"; "module"; "policy"; "score"; "unused"; "denied" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          string_of_int r.a_m_id;
          r.a_module;
          r.a_policy;
          Printf.sprintf "%.1f" r.a_score;
          string_of_int (List.length r.a_unused);
          string_of_int r.a_denied;
        ])
    reports;
  Buffer.add_string buf (Table.render t);
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "\n%s (m_id %d): %.1f/100\n" r.a_module r.a_m_id r.a_score);
      List.iter
        (fun c ->
          Buffer.add_string buf
            (Printf.sprintf "  %-22s %5.1f%% x %.2f  %s\n" c.c_name (100.0 *. c.c_score)
               c.c_weight c.c_detail))
        r.a_components)
    reports;
  Buffer.contents buf

let schema_name = "smod-audit"
let schema_version = 1

let to_json reports =
  let json_of_component c =
    Json.Obj
      [
        ("name", Json.String c.c_name);
        ("weight", Json.Float c.c_weight);
        ("score", Json.Float c.c_score);
        ("detail", Json.String c.c_detail);
      ]
  in
  let strings l = Json.Arr (List.map (fun s -> Json.String s) l) in
  Json.Obj
    [
      ("schema", Json.String schema_name);
      ("schema_version", Json.Int schema_version);
      ( "modules",
        Json.Arr
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("m_id", Json.Int r.a_m_id);
                   ("module", Json.String r.a_module);
                   ("policy", Json.String r.a_policy);
                   ("score", Json.Float r.a_score);
                   ("components", Json.Arr (List.map json_of_component r.a_components));
                   ("granted", strings r.a_granted);
                   ("dispatched", strings r.a_dispatched);
                   ("unused", strings r.a_unused);
                   ("calls", Json.Int r.a_calls);
                   ("denied", Json.Int r.a_denied);
                 ])
             reports) );
    ]

let to_string reports = Json.to_string (to_json reports) ^ "\n"
