module Smof = Smod_modfmt.Smof

type protection = Encrypted | Unmap_only

type native_fn = Smod_kern.Machine.t -> Smod_kern.Proc.t -> args_base:int -> int

type entry = {
  m_id : int;
  image : Smof.t;
  protection : protection;
  mutable policy : Policy.t;
  mutable policy_rev : int;
  admin_principal : string;
  mutable kernel_key : string option;
  mutable kernel_nonce : bytes option;
  natives : (string, native_fn) Hashtbl.t;
  functions : Smof.symbol array;
  (* Compiled-policy cache: Policy.compiled keyed by
     "<credential digest>\x00<policy_rev>\x00<keystore generation>", so a
     stale program can never be returned — but stale entries are also
     flushed eagerly (policy change here, keystore change and module
     removal in Smod) to keep the table bounded and the invalidation
     counters honest. *)
  compiled_cache : (string, Policy.compiled) Hashtbl.t;
  mutable compile_hits : int;
  mutable compile_misses : int;
  mutable compile_invalidations : int;
}

type t = { mutable next_id : int; by_id : (int, entry) Hashtbl.t }

exception Not_registered of string
exception Already_registered of string

let create () = { next_id = 1; by_id = Hashtbl.create 16 }

let find t ~name ~version =
  Hashtbl.fold
    (fun _ e acc ->
      if e.image.Smof.mod_name = name && e.image.Smof.mod_version = version then Some e else acc)
    t.by_id None

let add t ~image ~protection ~policy ~admin_principal ?kernel_key ?kernel_nonce () =
  (match find t ~name:image.Smof.mod_name ~version:image.Smof.mod_version with
  | Some _ ->
      raise
        (Already_registered
           (Printf.sprintf "%s v%d" image.Smof.mod_name image.Smof.mod_version))
  | None -> ());
  if image.Smof.encrypted && kernel_key = None then
    invalid_arg "Registry.add: encrypted image requires a kernel key";
  let entry =
    {
      m_id = t.next_id;
      image;
      protection;
      policy;
      policy_rev = 1;
      admin_principal;
      kernel_key;
      kernel_nonce;
      natives = Hashtbl.create 8;
      functions = Array.of_list (Smof.function_symbols image);
      compiled_cache = Hashtbl.create 8;
      compile_hits = 0;
      compile_misses = 0;
      compile_invalidations = 0;
    }
  in
  t.next_id <- t.next_id + 1;
  Hashtbl.replace t.by_id entry.m_id entry;
  entry

let remove t ~m_id =
  if not (Hashtbl.mem t.by_id m_id) then
    raise (Not_registered (Printf.sprintf "m_id %d" m_id));
  Hashtbl.remove t.by_id m_id

let find_by_id t m_id = Hashtbl.find_opt t.by_id m_id
let entries t = Hashtbl.fold (fun _ e acc -> e :: acc) t.by_id []

let plaintext_image e =
  if not e.image.Smof.encrypted then e.image
  else begin
    match (e.kernel_key, e.kernel_nonce) with
    | Some key, Some nonce -> Smof.decrypt_text e.image ~key ~nonce
    | _ -> raise (Smof.Malformed "encrypted module has no kernel key")
  end

let func_id e name =
  let rec scan i =
    if i >= Array.length e.functions then None
    else if e.functions.(i).Smof.sym_name = name then Some i
    else scan (i + 1)
  in
  scan 0

let symbol_of_func_id e id =
  if id >= 0 && id < Array.length e.functions then Some e.functions.(id) else None

let flush_compiled e =
  let n = Hashtbl.length e.compiled_cache in
  if n > 0 then begin
    Hashtbl.reset e.compiled_cache;
    e.compile_invalidations <- e.compile_invalidations + n
  end;
  n

let compiled_key ~cred_digest ~policy_rev ~keystore_gen =
  Printf.sprintf "%s\x00%d\x00%d" cred_digest policy_rev keystore_gen

let find_compiled e key =
  match Hashtbl.find_opt e.compiled_cache key with
  | Some c ->
      e.compile_hits <- e.compile_hits + 1;
      Some c
  | None -> None

let store_compiled e key compiled =
  e.compile_misses <- e.compile_misses + 1;
  Hashtbl.replace e.compiled_cache key compiled

let set_policy e policy =
  e.policy <- policy;
  e.policy_rev <- e.policy_rev + 1;
  ignore (flush_compiled e)

let bind_native e ~name fn = Hashtbl.replace e.natives name fn
let native e name = Hashtbl.find_opt e.natives name
