module Machine = Smod_kern.Machine
module Proc = Smod_kern.Proc
module Errno = Smod_kern.Errno
module Sysno = Smod_kern.Sysno
module Sched = Smod_kern.Sched
module Aspace = Smod_vmem.Aspace
module Clock = Smod_sim.Clock
module Cost = Smod_sim.Cost_model
module Smof = Smod_modfmt.Smof
module Ring = Smod_ring.Ring

type conn = {
  smod : Smod.t;
  proc : Proc.t;
  info : Wire.handle_info;
  stub_table : (string, int) Hashtbl.t;
  session : Smod.session;
  mutable ring : Ring.t option;  (** the client's view, armed by {!arm_ring} *)
}

(* A recognisable synthetic return address for the frames the stub builds. *)
let synthetic_return_address = 0x0000BEE4

let write_to_stack (p : Proc.t) data =
  p.Proc.sp <- p.Proc.sp - ((Bytes.length data + 3) land lnot 3);
  Aspace.write_bytes p.Proc.aspace ~addr:p.Proc.sp data;
  p.Proc.sp

let connect smod proc ~module_name ~version ~credential =
  let machine = Smod.machine smod in
  (* Step 1 (Figure 1): ask the kernel whether the module exists. *)
  let saved_sp = proc.Proc.sp in
  let name_addr = write_to_stack proc (Bytes.of_string (module_name ^ "\000")) in
  let m_id = Machine.syscall machine proc Sysno.smod_find [| name_addr; version |] in
  ignore m_id;
  (* Write the session descriptor into client memory and start the
     session; the kernel forcibly forks the handle. *)
  let desc =
    Wire.descriptor_to_bytes
      {
        Wire.module_name;
        module_version = version;
        credential = Credential.to_bytes credential;
      }
  in
  let desc_addr = write_to_stack proc desc in
  let _sid = Machine.syscall machine proc Sysno.smod_start_session [| desc_addr |] in
  (* Complete the handshake; the kernel writes the handle info back. *)
  let info_addr = write_to_stack proc (Bytes.make Wire.handle_info_size '\000') in
  ignore (Machine.syscall machine proc Sysno.smod_handle_info [| info_addr |]);
  let info =
    Wire.handle_info_of_bytes
      (Aspace.read_bytes proc.Proc.aspace ~addr:info_addr ~len:Wire.handle_info_size)
  in
  proc.Proc.sp <- saved_sp;
  let session =
    match Smod.session_of_client smod ~client_pid:proc.Proc.pid with
    | Some s -> s
    | None -> assert false
  in
  (* Stub table: one client stub per ' F ' symbol (§4.2). *)
  let stub_table = Hashtbl.create 32 in
  List.iteri
    (fun id (sym : Smof.symbol) -> Hashtbl.replace stub_table sym.Smof.sym_name id)
    (Smof.function_symbols session.Smod.entry.Registry.image);
  { smod; proc; info; stub_table; session; ring = None }

let conn_info c = c.info
let session_id c = c.session.Smod.sid
let func_id c name = Hashtbl.find_opt c.stub_table name

let call_id ?on_step c ~func_id args =
  let machine = Smod.machine c.smod in
  let clock = Machine.clock machine in
  let p = c.proc in
  let nargs = Array.length args in
  Clock.charge clock (Cost.Stub_push_args nargs);
  let entry_sp = p.Proc.sp and entry_fp = p.Proc.fp in
  (* State 1: argN..arg1, return address, saved FP (which FP now names). *)
  for i = nargs - 1 downto 0 do
    Proc.push_word p args.(i)
  done;
  Proc.push_word p synthetic_return_address;
  Proc.push_word p entry_fp;
  p.Proc.fp <- p.Proc.sp;
  (match on_step with Some f -> f 1 | None -> ());
  (* State 2: moduleID, funcID, then the duplicated return address and
     client FP so the kernel sees the relevant words at the stack top. *)
  Proc.push_word p c.info.Wire.m_id;
  Proc.push_word p func_id;
  Proc.push_word p synthetic_return_address;
  Proc.push_word p entry_fp;
  (match on_step with Some f -> f 2 | None -> ());
  let result =
    Machine.syscall machine p Sysno.smod_call
      [| p.Proc.fp; synthetic_return_address; c.info.Wire.m_id; func_id |]
  in
  (* Unwind: drop the duplicates and ids, restore FP, drop the frame. *)
  ignore (Proc.pop_word p);
  ignore (Proc.pop_word p);
  ignore (Proc.pop_word p);
  ignore (Proc.pop_word p);
  let saved_fp = Proc.pop_word p in
  ignore (Proc.pop_word p) (* return address *);
  p.Proc.sp <- p.Proc.sp + (4 * nargs);
  p.Proc.fp <- saved_fp;
  (match on_step with Some f -> f 4 | None -> ());
  assert (p.Proc.sp = entry_sp);
  result

let call ?on_step c ~func args =
  match func_id c func with
  | Some id -> call_id ?on_step c ~func_id:id args
  | None -> invalid_arg (Printf.sprintf "Stub.call: no function %S in module" func)

(* ------------------------------------------------------------------ *)
(* Dispatch-ring fast path (PR 3)                                      *)
(* ------------------------------------------------------------------ *)

let default_ring_slots = 64
let client_spin_budget = 4

let arm_ring ?(nslots = default_ring_slots) c =
  match c.ring with
  | Some r -> r
  | None ->
      let machine = Smod.machine c.smod in
      let p = c.proc in
      (* Carve the ring out of the heap, cache-line aligned: obreak
         growth inside an established pair installs shared mappings on
         both sides, so the handle addresses the same frames. *)
      let base = (Aspace.brk p.Proc.aspace + 63) land lnot 63 in
      let size = Ring.size_bytes ~nslots in
      ignore (Machine.syscall machine p Sysno.obreak [| base + size |]);
      (* Materialize the pages client-side, then register with the
         kernel — which re-zeros the region (nothing pre-written is
         trusted) and pins the geometry. *)
      let ring = Ring.init p.Proc.aspace ~base ~nslots in
      ignore (Machine.syscall machine p Sysno.smod_ring_setup [| base; nslots |]);
      c.ring <- Some ring;
      (* SQPOLL mode: one doorbell at arm time binds the ring kernel-side
         and wakes the poller if it was parked before this session
         existed.  After this, submits are trap-free unless the ring's
         need-wakeup flag says the poller napped. *)
      if Smod.kernel_poller_enabled c.smod then
        ignore (Machine.syscall machine p Sysno.smod_poll_doorbell [||]);
      ring

let ring c = c.ring

let decode_slot ~status ~retval =
  match status with
  | 0 -> Ok retval
  | 1 -> Error (Errno.EFAULT, "module function faulted")
  | 2 -> Error (Errno.EINVAL, "no such function")
  | 3 -> Error (Errno.ENOSYS, "native body not bound")
  | 4 -> Error (Errno.EACCES, "module text integrity check failed")
  | 5 -> Error (Errno.EINVAL, "malformed slot")
  | 6 -> Error (Errno.EACCES, "policy denied")
  | s -> Error (Errno.EINVAL, Printf.sprintf "bad completion status %d" s)

(* Wait for the next in-order completion: spin (yielding the CPU each
   iteration so the handle can run), then block on the session's ring
   wait queue until the handle's next drain wakes us. *)
let reap_blocking c ring =
  let machine = Smod.machine c.smod in
  let clock = Machine.clock machine in
  let p = c.proc in
  let check_detached () =
    if c.session.Smod.detached then
      Errno.raise_errno Errno.EIDRM "smod_call_batch: session detached mid-batch"
  in
  let rec wait budget =
    check_detached ();
    match Ring.reap ring with
    | Some (_seq, status, retval) -> decode_slot ~status ~retval
    | None ->
        if budget > 0 then begin
          Clock.charge clock Cost.Ring_spin;
          Sched.yield ();
          wait (budget - 1)
        end
        else begin
          Smod.ring_client_wait c.smod c.session p;
          wait client_spin_budget
        end
  in
  wait client_spin_budget

(* The general batch loop: each element names its own function, so one
   batch can carry a mixed function column — what the vectorized
   admission path (E25) gathers into its SoA lanes. *)
let call_batch_funcs c calls =
  let machine = Smod.machine c.smod in
  let clock = Machine.clock machine in
  let p = c.proc in
  let ring = arm_ring c in
  let calls = Array.of_list calls in
  let n_total = Array.length calls in
  let results = Array.make n_total (Error (Errno.EINVAL, "not completed")) in
  let next = ref 0 and reaped = ref 0 in
  while !reaped < n_total do
    (* Fill as many slots as the ring has room for. *)
    let chunk = ref 0 in
    let full = ref false in
    while (not !full) && !next < n_total do
      let func_id, args = calls.(!next) in
      Clock.charge clock (Cost.Stub_push_args (Array.length args));
      match
        Ring.try_submit ring ~m_id:c.info.Wire.m_id ~func_id ~client_sp:p.Proc.sp
          ~client_fp:p.Proc.fp ~args
      with
      | Some _seq ->
          incr next;
          incr chunk
      | None -> full := true
    done;
    (* One trap stamps the whole chunk and wakes the handle — unless the
       kernel poller is sweeping for us, in which case the submit is
       trap-free: the only reason to enter the kernel is a raised
       need-wakeup flag (a trap-free shared-memory read; the poller
       parked and wants its doorbell). *)
    if !chunk > 0 then begin
      if Smod.kernel_poller_enabled c.smod then begin
        if Ring.need_wakeup ring then
          ignore (Machine.syscall machine p Sysno.smod_poll_doorbell [||])
      end
      else
        ignore
          (Machine.syscall machine p Sysno.smod_call_batch [| c.info.Wire.m_id; !chunk |])
    end;
    (* Drain this chunk's completions in submission order before
       submitting more — frees the slots for the next chunk. *)
    let target = !reaped + !chunk in
    while !reaped < target do
      results.(!reaped) <- reap_blocking c ring;
      incr reaped
    done
  done;
  Array.to_list results

let call_batch_id c ~func_id argss =
  call_batch_funcs c (List.map (fun args -> (func_id, args)) argss)

let call_batch c ~func argss =
  match func_id c func with
  | Some id -> call_batch_id c ~func_id:id argss
  | None -> invalid_arg (Printf.sprintf "Stub.call_batch: no function %S in module" func)

let close c = Smod.detach_session c.smod c.session
