(** [smodctl audit]: a least-privilege posture score per installed
    module, 0..100, higher = tighter.

    Derived entirely from existing introspection — registry entries,
    {!Smod.policy_compile_status}, live sessions, the
    [secmodule.func_calls.*] / [secmodule.func_denied.*] counters, and
    systrace attachments.  Nothing new is charged on the dispatch path
    (DESIGN.md §10).

    Weighted components: policy breadth (0.45), grant usage (0.30),
    systrace coverage of live handles (0.15), enforcement evidence
    (0.10).  An over-privileged module — broad grants, [Always_allow],
    unfiltered handle — scores strictly below a tight one
    (test/test_audit.ml). *)

type component = {
  c_name : string;
  c_weight : float;
  c_score : float;  (** 0..1, higher = tighter *)
  c_detail : string;
}

type report = {
  a_m_id : int;
  a_module : string;
  a_policy : string;  (** {!Policy.describe} of the module's policy *)
  a_score : float;  (** 0..100, higher = tighter *)
  a_components : component list;
  a_granted : string list;  (** exported functions, funcID order *)
  a_dispatched : string list;  (** functions with any dispatch evidence *)
  a_unused : string list;  (** granted but never dispatched *)
  a_calls : int;  (** allowed dispatches, from the per-function counters *)
  a_denied : int;  (** denied dispatches *)
}

val score :
  ?registry:Smod_metrics.t -> ?systrace:Smod_systrace.Systrace.t -> Smod.t -> report list
(** One report per registry entry, sorted by [m_id].  [registry]
    defaults to the calling domain's current metric registry;
    [systrace], when absent, scores the coverage component 0. *)

val render : report list -> string
(** Summary table plus a per-module component breakdown. *)

val schema_name : string
val schema_version : int

val to_json : report list -> Smod_util.Json.t
val to_string : report list -> string
(** The ["smod-audit"] document ([smodctl audit --json]). *)
