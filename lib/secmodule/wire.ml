let u32_at b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

let set_u32 b off v =
  Bytes.set b off (Char.chr (v land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 3) (Char.chr ((v lsr 24) land 0xff))

type request = { func_id : int; args_base : int; client_sp : int; client_fp : int }

type reply = { status : int; retval : int }

let request_to_bytes r =
  let b = Bytes.create 16 in
  set_u32 b 0 r.func_id;
  set_u32 b 4 r.args_base;
  set_u32 b 8 r.client_sp;
  set_u32 b 12 r.client_fp;
  b

let request_of_bytes_res b =
  if Bytes.length b <> 16 then
    Error (Printf.sprintf "request: expected 16 bytes, got %d" (Bytes.length b))
  else
    Ok
      {
        func_id = u32_at b 0;
        args_base = u32_at b 4;
        client_sp = u32_at b 8;
        client_fp = u32_at b 12;
      }

let request_of_bytes b =
  match request_of_bytes_res b with
  | Ok r -> r
  | Error m -> invalid_arg ("Wire.request_of_bytes: " ^ m)

let reply_to_bytes r =
  let b = Bytes.create 8 in
  set_u32 b 0 r.status;
  set_u32 b 4 r.retval;
  b

let reply_of_bytes_res b =
  if Bytes.length b <> 8 then
    Error (Printf.sprintf "reply: expected 8 bytes, got %d" (Bytes.length b))
  else Ok { status = u32_at b 0; retval = u32_at b 4 }

let reply_of_bytes b =
  match reply_of_bytes_res b with
  | Ok r -> r
  | Error m -> invalid_arg ("Wire.reply_of_bytes: " ^ m)

type session_descriptor = { module_name : string; module_version : int; credential : bytes }

let descriptor_to_bytes d =
  let name = Bytes.of_string d.module_name in
  let total = 4 + Bytes.length name + 4 + 4 + Bytes.length d.credential in
  let b = Bytes.create total in
  set_u32 b 0 (Bytes.length name);
  Bytes.blit name 0 b 4 (Bytes.length name);
  let off = 4 + Bytes.length name in
  set_u32 b off d.module_version;
  set_u32 b (off + 4) (Bytes.length d.credential);
  Bytes.blit d.credential 0 b (off + 8) (Bytes.length d.credential);
  b

let descriptor_of_bytes_res b =
  let ( let* ) = Result.bind in
  let need off n =
    if n < 0 then Error "descriptor: negative length"
    else if off + n > Bytes.length b then Error "descriptor: truncated"
    else Ok ()
  in
  let* () = need 0 4 in
  let name_len = u32_at b 0 in
  let* () = need 4 name_len in
  let module_name = Bytes.sub_string b 4 name_len in
  let off = 4 + name_len in
  let* () = need off 8 in
  let module_version = u32_at b off in
  let cred_len = u32_at b (off + 4) in
  let* () = need (off + 8) cred_len in
  let credential = Bytes.sub b (off + 8) cred_len in
  Ok { module_name; module_version; credential }

let descriptor_of_bytes b =
  match descriptor_of_bytes_res b with
  | Ok d -> d
  | Error m -> invalid_arg ("Wire.descriptor_of_bytes: " ^ m)

type handle_info = { m_id : int; handle_pid : int; req_qid : int; rep_qid : int }

let handle_info_size = 16

let handle_info_to_bytes h =
  let b = Bytes.create handle_info_size in
  set_u32 b 0 h.m_id;
  set_u32 b 4 h.handle_pid;
  set_u32 b 8 h.req_qid;
  set_u32 b 12 h.rep_qid;
  b

let handle_info_of_bytes_res b =
  if Bytes.length b <> handle_info_size then
    Error
      (Printf.sprintf "handle_info: expected %d bytes, got %d" handle_info_size
         (Bytes.length b))
  else
    Ok { m_id = u32_at b 0; handle_pid = u32_at b 4; req_qid = u32_at b 8; rep_qid = u32_at b 12 }

let handle_info_of_bytes b =
  match handle_info_of_bytes_res b with
  | Ok h -> h
  | Error m -> invalid_arg ("Wire.handle_info_of_bytes: " ^ m)
