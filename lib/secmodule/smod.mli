(** The SecModule kernel subsystem.

    [install] registers the paper's seven syscalls (Figure 4) with a
    simulated machine and returns the subsystem handle used by the trusted
    tool chain (module registration, native binding) and by tests.

    The session life cycle follows §3–§4 exactly:

    + the client traps [sys_smod_start_session] with a descriptor naming
      the module and carrying its credential;
    + the kernel validates the credential, {e forcibly forks} a handle
      co-process whose address space holds the (decrypted) module text and
      a secret stack/heap segment, and connects the pair with two SysV
      message queues;
    + the handle's first act is [sys_smod_session_info], which force-shares
      the client's data/heap/stack range into the handle (Figure 2) and
      marks the session established;
    + the client completes the handshake with [sys_smod_handle_info];
    + each call then goes through [sys_smod_call]: per-call credential and
      policy revalidation, a request message to the handle, the handle
      executing the function on the shared stack from its secret stack,
      and a reply message carrying the return value (Figure 3). *)

type t

type toctou_mitigation =
  | No_mitigation
  | Unmap_during_call  (** §4.4 approach 1: client loses data/stack access *)
  | Dequeue_client_threads  (** §4.4 approach 2: sibling threads descheduled *)

type ring_state
(** Per-session dispatch-ring binding (PR 3): the kernel's view of the
    client's ring plus the two wait queues of the spin-then-block
    protocol.  Bound lazily on the first [sys_smod_call_batch]. *)

type session = {
  sid : int;
  m_id : int;
  entry : Registry.entry;
  client_pid : int;
  mutable handle_pid : int;
  req_qid : int;
  rep_qid : int;
  credential : Credential.t;
  policy_state : Policy.state;
  module_text_base : int;  (** in the handle's address space *)
  module_data_base : int;
  mutable established : bool;
  mutable detached : bool;
  mutable calls : int;
  mutable denied_calls : int;  (** per-call policy denials (section 1's metering motivation) *)
  mutable faulted_calls : int;
  mutable handle_exec_us : float;
      (** simulated time spent executing module code in the handle *)
  mutable client_waiting_handshake : bool;
  pooled : bool;  (** served by a smodd pooled handle, not a private fork *)
  mux : bool;
      (** served as a fiber of the effects multiplexer (E22): no handle
          process of its own, ring-only dispatch *)
  mutable ring : ring_state option;
  mutable cred_digest : string option;
      (** lazily computed SHA-256 of the wire credential; part of every
          compiled-program cache key *)
  mutable compiled_memo : (int * int * Policy.compiled) option;
      (** the session's compiled policy, valid while the stamped
          (policy_rev, keystore generation) pair still matches *)
  mutable fused_memo : (int * int * string * Policy.fused_ctx) option;
      (** the armed fused-batch context, additionally keyed by transport
          (["msgq"]/["ring"]/["poller"]) because [origin_transport]
          differs per admission path; same invalidation discipline as
          [compiled_memo] *)
}

exception Access_denied of string

val install : Smod_kern.Machine.t -> ?keystore:Smod_keynote.Keystore.t -> unit -> t
val machine : t -> Smod_kern.Machine.t
val keystore : t -> Smod_keynote.Keystore.t
val registry : t -> Registry.t

val set_toctou_mitigation : t -> toctou_mitigation -> unit
val toctou_mitigation : t -> toctou_mitigation

val set_call_fast_path : t -> bool -> unit
(** The §5 future-work optimisation: "reducing redundant error checks and
    cross-address copies in kernel-to-kernel calls".  When enabled,
    [sys_smod_call] skips the per-call credential re-verification for
    sessions whose policy is stateless-permissive ([Always_allow] or
    [Session_lifetime]) — the check cannot change its answer after
    establishment.  Policies with per-call state (quotas, rate limits,
    KeyNote conditions over call attributes) are still evaluated every
    time.  Default: off, matching the measured prototype. *)

val call_fast_path : t -> bool

val set_dispatch_gate : t -> (unit -> unit) option -> unit
(** Install a hook that runs at the very top of [sys_smod_start_session],
    [sys_smod_call], and [sys_smod_call_batch], before any credential or
    session state is consulted.  The cluster control plane (lib/cluster)
    uses it to settle pending coherence work — charging eager-broadcast
    handling debt, or performing the lazy epoch check and sync — so no
    dispatch ever executes under a revoked keystore generation or a stale
    policy revision.  Default: none (zero cost on the dispatch path). *)

(** {1 Trusted tool-chain interface (host level, not via traps)} *)

val register :
  t ->
  image:Smod_modfmt.Smof.t ->
  ?protection:Registry.protection ->
  ?policy:Policy.t ->
  ?admin_principal:string ->
  ?kernel_key:string ->
  ?kernel_nonce:bytes ->
  unit ->
  Registry.entry
(** Defaults: [Unmap_only], [Session_lifetime], admin "root".  For
    [Encrypted] protection the key/nonce must be supplied and stay
    kernel-side. *)

val bind_native : t -> m_id:int -> name:string -> Registry.native_fn -> unit

val session_of_client : t -> client_pid:int -> session option
val session_of_handle : t -> handle_pid:int -> session option
val active_sessions : t -> session list

val detach_session : t -> session -> unit
(** Kill the handle, unlink the pair, remove the queues.  Idempotent.
    Runs automatically when the client exits or execs (§4.3). *)

(** {1 Syscall-level operations (what the stubs invoke)} *)

val sys_find : t -> Smod_kern.Proc.t -> name_addr:int -> version:int -> int
(** Returns m_id.  [name_addr] points at a NUL-terminated module name in
    the caller's memory. *)

val sys_start_session : t -> Smod_kern.Proc.t -> desc_addr:int -> int
(** Returns the session id. *)

val sys_handle_info : t -> Smod_kern.Proc.t -> info_addr:int -> unit
(** Client side: blocks until the handle is ready, then writes a
    {!Wire.handle_info} at [info_addr]. *)

val sys_call : t -> Smod_kern.Proc.t -> framep:int -> rtnaddr:int -> m_id:int -> func_id:int -> int
(** The indirect dispatch.  Raises {!Smod_kern.Errno.Error} EACCES on
    policy denial, EFAULT if the module function faulted. *)

val sys_call_batch : t -> Smod_kern.Proc.t -> m_id:int -> max_slots:int -> int
(** The dispatch-ring fast path (syscall 322): stamp an admission verdict
    into every submitted-but-unstamped slot of the caller's registered
    ring (at most [max_slots] of them), evaluating cacheable policies
    once per distinct function per batch, then wake the handle.  Denied
    or malformed slots are completed kernel-side with an error status
    rather than failing the whole batch.  Returns the number of slots
    processed.  Raises EINVAL when no ring is registered, EPERM when a
    TOCTOU mitigation is active (those semantics need the per-call
    path). *)

val ring_client_wait : t -> session -> Smod_kern.Proc.t -> unit
(** Client-side slow path while waiting for completions: block on the
    session's ring wait queue until the handle's next drain (or detach)
    wakes it.  Returns immediately if the session has no bound ring —
    callers recheck [session.detached] after every wake. *)

val session_ring : session -> Smod_ring.Ring.t option
(** The kernel's view of the session's bound dispatch ring, for
    introspection ([smodctl ring status], tests). *)

(** {1 Session pooling (the smodd service layer, lib/pool)}

    A pooled handle is a handle co-process that outlives any single
    session: between tenants it scrubs its secret segment, restores the
    module's data segment to its pristine image (cold-fork semantics:
    module globals never carry state across sessions), unshares the
    departed client's range, and parks on {!Smod_kern.Sched.Pool_park}
    until the pool layer attaches the next client.  The per-session costs
    that remain are exactly the safety-relevant ones — [force_share]
    against the new client and the handshake — while the fork, module
    image installation and decryption are paid once at spawn. *)

type pooled_handle

val spawn_pooled_handle :
  t ->
  entry:Registry.entry ->
  on_park:(pooled_handle -> unit) ->
  on_death:(pooled_handle -> unit) ->
  pooled_handle
(** Pre-fork a reusable handle for [entry].  [on_park] fires (in handle
    context) each time the handle becomes free — including right after
    spawn if no tenant is attached before it first runs — unless the
    handle was {!reserve_pooled_handle}d for a specific client.
    [on_death] fires from the handle's exit hook after its queues are
    removed and any live session detached. *)

val attach_pooled : t -> Smod_kern.Proc.t -> pooled_handle -> credential:Credential.t -> int
(** Bind a new session for this client to a free pooled handle and wake
    it; returns the session id.  The caller (smodd's broker) must have
    validated the credential and policy — this is the post-validation
    half of [sys_start_session].  Raises [Invalid_argument] if the handle
    is busy or dead. *)

val retire_pooled_handle : t -> pooled_handle -> unit
(** Mark the handle dead and SIGKILL it; its exit hook detaches any live
    session, removes the queues and fires [on_death].  Idempotent. *)

val reserve_pooled_handle : pooled_handle -> unit
(** Claim a free handle for a specific incoming client so the park
    callback is not re-fired (and the handle not double-assigned) before
    {!attach_pooled} runs. *)

val unreserve_pooled_handle : pooled_handle -> unit
(** Release a reservation whose client went away before {!attach_pooled}
    (killed while queued) so the handle can be re-parked or re-granted. *)

val pooled_handle_pid : pooled_handle -> int
val pooled_handle_entry : pooled_handle -> Registry.entry
val pooled_handle_busy : pooled_handle -> bool
val pooled_handle_dead : pooled_handle -> bool

val pooled_handle_tenants : pooled_handle -> int
(** Sessions this handle has served so far. *)

val pooled_handle_aspace : pooled_handle -> Smod_vmem.Aspace.t

val set_session_broker :
  t -> (Smod_kern.Proc.t -> Registry.entry -> Credential.t -> int option) option -> unit
(** Interpose on [sys_start_session] after validation: [Some sid] means
    the broker placed the session on a pooled handle; [None] falls back
    to the paper's cold fork-per-session path. *)

val add_module_remove_hook : t -> (m_id:int -> unit) -> unit
(** Fired by [sys_smod_remove] after active sessions are detached and
    before the registry entry disappears — smodd kills the module's
    parked handles and evicts its policy-cache entries here. *)

val remove_module_remove_hook : t -> (m_id:int -> unit) -> unit
(** Deregister a hook previously passed to {!add_module_remove_hook}
    (matched by physical equality) — smodd's [uninstall] path, so a
    reinstalled pool does not leave the stale hook firing. *)

type cached_decision = Cache_allow | Cache_deny of string

type policy_cache_hooks = {
  cache_lookup : session -> func_name:string -> cached_decision option;
  cache_store : session -> func_name:string -> cached_decision -> unit;
  compiled_lookup : session -> Policy.compiled option;
      (** probe smodd's compiled-program table — so a decision-cache miss
          (or an uncacheable policy) still runs the compiled program
          instead of re-verifying and re-interpreting *)
  compiled_store : session -> Policy.compiled -> unit;
}

val set_policy_cache : t -> policy_cache_hooks option -> unit
(** Install smodd's policy-decision cache on the [sys_smod_call] path.
    Only consulted when {!Policy.cacheable} holds for the session's policy
    and {!Policy.credential_cacheable} for its credential; a hit replaces
    the per-call credential re-verification and policy evaluation, a miss
    evaluates as usual and stores the outcome (denials included — they
    still count and raise exactly as uncached ones do). *)

val set_policy_compile : t -> bool -> unit
(** Switch admission onto compiled decision programs ({!Policy.compile}):
    on the first policy evaluation for a session the KeyNote arms are
    flattened once — signature chain verified, delegation graph resolved,
    conditions lowered to opcodes — and every subsequent evaluation for
    that (credential, policy revision, keystore generation) runs the
    program at {!Smod_sim.Cost_model.Policy_compiled_op} per opcode with
    no per-call [Cred_check].  Programs are cached per registry entry and
    (when smodd is installed) in the pool, and are invalidated by
    [Registry.set_policy], keystore changes and [sys_smod_remove].
    Default: off — the interpreted path is byte-for-byte what the
    baselines measured. *)

val policy_compile_enabled : t -> bool

val set_policy_fuse : t -> bool -> unit
(** Layer the fused batch engine ({!Smod_keynote.Fuse}) on top of
    compiled policies (requires {!set_policy_compile} on to take
    effect): each KeyNote arm is additionally lowered into
    superoperator-fused segments partitioned into a batch-invariant
    prefix and a per-slot residue.  The prefix runs once per (session,
    policy revision, keystore generation, transport) — charged
    {!Smod_sim.Cost_model.Policy_fused_setup} plus its opcodes — and
    every admission (scalar call, ring batch slot, poller slot) then
    pays residue opcodes only.  Origin predicates ([origin_module],
    [origin_ring], [origin_transport]) resolve against kernel-held
    session state on every engine; compilation fails closed when one
    names an unknown module, ring, or transport.  Stateful arms
    (quotas, rate limits) still evaluate per slot.  Default: off. *)

val policy_fuse_enabled : t -> bool

val set_policy_vectorize : t -> bool -> unit
(** Layer batch-major residue execution (E25, {!Smod_keynote.Vexec}) on
    top of fused policies (requires both {!set_policy_compile} and
    {!set_policy_fuse} on to take effect): before the stamp loop of a
    ring batch or a poller sweep, the varying attributes of every
    evaluable submitted slot are gathered into struct-of-arrays columns
    and the residue executes one pass per opcode over all lanes,
    charging {!Smod_sim.Cost_model.Policy_vector_op} at
    [ceil(live_lanes/W)] units per pass.  Per-lane verdict masks keep
    denied lanes out of later passes; verdicts, quota state transitions,
    and denial reasons are identical to the slot-major path (the
    four-way differential in test/test_compile.ml asserts it).  The
    pre-pass declines — falling back to slot-major fused evaluation
    wholesale — for batches under two lanes, single-function batches of
    cacheable policies (the per-batch memo is already cheaper),
    vector-ineligible trees ({!Policy.vector_eligible}), and sessions
    served by the smodd decision cache.  The msgq path stays scalar —
    there is nothing to vectorize.  Default: off. *)

val policy_vectorize_enabled : t -> bool

val set_vector_width : t -> int -> unit
(** Lane width W for the vector cost discount (default 8, the
    {!Smod_keynote.Vexec.default_width}).  Raises [Invalid_argument]
    below 1.  Width 1 prices every pass like a scalar compiled op —
    useful for differential tests that want vectorized execution with
    scalar-identical charging. *)

val vector_width : t -> int

type compile_status = {
  cs_m_id : int;
  cs_module : string;
  cs_policy : string;
  cs_policy_rev : int;
  cs_cached : int;  (** programs currently cached for this entry *)
  cs_hits : int;
  cs_misses : int;
  cs_invalidations : int;
  cs_stats : Policy.compiled_stats option;
      (** a representative cached program's size/opcode breakdown *)
  cs_fusion : Smod_keynote.Fuse.stats option;
      (** fusion statistics (superop mix, invariant prefix size) for a
          representative cached program compiled with fusion on *)
}

val policy_compile_status : t -> compile_status list
(** Per-module compile state for [smodctl policy status], sorted by
    m_id. *)

(** {1 The zero-trap data path (E22)}

    Two coupled halves.  The {e kernel poller} is an io_uring-SQPOLL
    analogue: a kernel daemon sweeps every live session's registered ring
    and stamps admission verdicts itself, so the steady-state submit path
    needs no trap at all — sweep and per-slot scan costs are charged to
    the poller ({!Smod_sim.Cost_model.Poll_sweep} /
    [Poll_slot_scan]), never to a client; the work moved, it did not
    vanish.  After {!spin_budget} consecutive empty sweeps the poller
    raises each ring's need-wakeup flag and parks; a submitter that sees
    the flag (a trap-free shared-memory read) traps
    [sys_smod_poll_doorbell] (323) once to re-arm it.  The {e effects
    multiplexer} replaces one-blocked-process-per-session service with
    fibers: a single daemon domain multiplexes thousands of ring-only
    sessions, suspending each on an empty ring via an OCaml effect and
    resuming it when the stamp path (trap or poller) hands it work.

    Both are opt-in and default off; with them off, every dispatch path
    charges byte-for-byte what the baselines measured. *)

val set_spin_budget : t -> int -> unit
(** Yield-and-recheck iterations the handle serve loop burns before
    blocking, and equally the empty sweeps the kernel poller tolerates
    before parking.  Raises [Invalid_argument] below 1.  Default 4 — the
    constant every baseline was measured with. *)

val spin_budget : t -> int

val set_kernel_poller : t -> bool -> unit
(** Start (or stop) the SQPOLL-style kernel poller daemon.  Idempotent in
    both directions; stopping wakes a parked poller so its process
    exits. *)

val kernel_poller_enabled : t -> bool

type poller_status = {
  ps_parked : bool;
  ps_spin_budget : int;
  ps_sweeps : int;
  ps_empty_sweeps : int;  (** sweeps that stamped nothing (total) *)
  ps_parks : int;
  ps_wakes : int;  (** doorbell (or shutdown-independent) unparks *)
  ps_slots_stamped : int;
  ps_geometry_rejects : int;
      (** kernel-side binds refused because the pinned geometry no longer
          matches the header — the poller-path analogue of the batch
          trap's EINVAL *)
  ps_doorbells : int;
  ps_session_slots : (int * int) list;  (** (sid, slots stamped), sorted *)
}

val poller_status : t -> poller_status option
(** Live poller state for [smodctl poller status]; [None] when the poller
    is not running. *)

val set_session_mux : t -> bool -> unit
(** Route new sessions onto the effects multiplexer (spawning its daemon
    on first enable).  Disabling stops routing new sessions; existing
    fibers keep running until their clients detach. *)

val session_mux_enabled : t -> bool

type mux_status = {
  mxs_live : int;
  mxs_peak : int;  (** high-water mark of concurrently live fibers *)
  mxs_attached : int;  (** sessions ever attached *)
  mxs_suspended : int;  (** fibers currently parked on an empty ring *)
}

val mux_status : t -> mux_status option

(** {1 Introspection for tests and the layout example} *)

val handle_aspace : t -> session -> Smod_vmem.Aspace.t
val client_pid_cache_addr : int
(** Address (in the secret segment) where the kernel caches the client's
    pid for the converted getpid (§4.3). *)
