(** The kernel's table of registered SecModules.

    "A separate tool chain registers the SecModule m with the kernel,
    which must keep track of the registered SecModules" (§3).  Entries
    carry the module image (possibly text-encrypted), the access policy,
    the kernel-held decryption key (§4.4: "the secret keys for each
    encrypted segment in m exist only in kernel space"), and the bound
    native implementations for native-backed symbols. *)

type protection =
  | Encrypted  (** §4.1 approach 1: AES-encrypted text, key in kernel *)
  | Unmap_only  (** §4.1 approach 2: plaintext, but never mapped in clients *)

type native_fn = Smod_kern.Machine.t -> Smod_kern.Proc.t -> args_base:int -> int
(** Runs in handle context: the proc is the handle, whose address space
    shares the client's data/heap/stack. *)

type entry = {
  m_id : int;
  image : Smod_modfmt.Smof.t;
  protection : protection;
  mutable policy : Policy.t;  (** swap with {!set_policy}, never directly *)
  mutable policy_rev : int;
      (** revision counter keying cached policy decisions (lib/pool);
          bumped by {!set_policy} *)
  admin_principal : string;  (** who may [sys_smod_remove] this module *)
  mutable kernel_key : string option;
  mutable kernel_nonce : bytes option;
  natives : (string, native_fn) Hashtbl.t;
  functions : Smod_modfmt.Smof.symbol array;  (** index = funcID *)
  compiled_cache : (string, Policy.compiled) Hashtbl.t;
      (** compiled decision programs, keyed with {!compiled_key} *)
  mutable compile_hits : int;
  mutable compile_misses : int;
  mutable compile_invalidations : int;
}

type t

exception Not_registered of string
exception Already_registered of string

val create : unit -> t

val add :
  t ->
  image:Smod_modfmt.Smof.t ->
  protection:protection ->
  policy:Policy.t ->
  admin_principal:string ->
  ?kernel_key:string ->
  ?kernel_nonce:bytes ->
  unit ->
  entry
(** Raises {!Already_registered} on a (name, version) collision and
    [Invalid_argument] if an encrypted image is added without a key. *)

val remove : t -> m_id:int -> unit
val find : t -> name:string -> version:int -> entry option
val find_by_id : t -> int -> entry option
val entries : t -> entry list

val plaintext_image : entry -> Smod_modfmt.Smof.t
(** Decrypts with the kernel-held key when the entry is [Encrypted]
    (raises {!Smod_modfmt.Smof.Malformed} if the key is wrong). *)

val set_policy : entry -> Policy.t -> unit
(** Replace the module's access policy and bump [policy_rev] so stale
    cached decisions can never be served against the new policy; also
    flushes the compiled-program cache. *)

val compiled_key : cred_digest:string -> policy_rev:int -> keystore_gen:int -> string
(** Cache key for one compiled policy: everything a program's verdicts
    depend on besides per-call action attributes. *)

val find_compiled : entry -> string -> Policy.compiled option
(** Probe the compiled-program cache (counts a hit). *)

val store_compiled : entry -> string -> Policy.compiled -> unit
(** Insert a freshly compiled program (counts a miss). *)

val flush_compiled : entry -> int
(** Drop every cached program, e.g. after a keystore rotation; returns
    how many entries were evicted (added to [compile_invalidations]). *)

val func_id : entry -> string -> int option
val symbol_of_func_id : entry -> int -> Smod_modfmt.Smof.symbol option
val bind_native : entry -> name:string -> native_fn -> unit
val native : entry -> string -> native_fn option
